package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 2, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x1ffc, 0xdeadbeefcafef00d, 8); f != nil {
		t.Fatalf("cross-page write: %v", f)
	}
	v, f := as.Read(0x1ffc, 8)
	if f != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("cross-page read: %v %#x", f, v)
	}
	if _, f := as.Read(0x3000, 1); f == nil || f.Kind != FaultNotMapped {
		t.Fatalf("expected not-mapped fault, got %v", f)
	}
}

func TestMapErrors(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1001, 1, PermRW); err == nil {
		t.Error("unaligned map should fail")
	}
	if _, err := as.Map(0x1000, 2, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x1000, 1, PermR); err == nil {
		t.Error("double map should fail")
	}
	if err := as.Unmap(0x3000, 1); err == nil {
		t.Error("unmap of hole should fail")
	}
	if err := as.Protect(0x3000, 1, PermR); err == nil {
		t.Error("protect of hole should fail")
	}
}

func TestXImpliesRead(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermX); err != nil {
		t.Fatal(err)
	}
	// Plain x86 semantics: an execute-only mapping is still readable by
	// data loads. This is the paper's core problem statement.
	if _, f := as.Read(0x1000, 8); f != nil {
		t.Fatalf("x86 semantics: X page must be data-readable, got %v", f)
	}
	// But never writable.
	if f := as.Write(0x1000, 1, 8); f == nil || f.Kind != FaultNoWrite {
		t.Fatalf("X page must not be writable, got %v", f)
	}
}

func TestEPTExecuteOnly(t *testing.T) {
	as := NewAddressSpace()
	as.EPT = true
	if _, err := as.Map(0x1000, 1, PermX); err != nil {
		t.Fatal(err)
	}
	// EPT (hypervisor) semantics: true execute-only memory.
	if _, f := as.Read(0x1000, 1); f == nil || f.Kind != FaultNoRead {
		t.Fatalf("EPT semantics: X page must not be readable, got %v", f)
	}
	var buf [4]byte
	if _, f := as.Fetch(0x1000, buf[:]); f != nil {
		t.Fatalf("EPT semantics: X page must be fetchable, got %v", f)
	}
}

func TestFetchSemantics(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	var buf [2]byte
	if _, f := as.Fetch(0x1000, buf[:]); f == nil || f.Kind != FaultNoExec {
		t.Fatalf("fetch from non-X page must fault, got %v", f)
	}
	if _, err := as.Map(0x2000, 1, PermX); err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(0x2ffe, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	// Fetch straddling the end of the mapped X region stops early.
	var buf4 [4]byte
	n, f := as.Fetch(0x2ffe, buf4[:])
	if f != nil || n != 2 || buf4[0] != 0xAA || buf4[1] != 0xBB {
		t.Fatalf("partial fetch: n=%d f=%v buf=%v", n, f, buf4)
	}
	// Fetch from a hole faults immediately.
	if _, f := as.Fetch(0x5000, buf4[:]); f == nil || f.Kind != FaultNotMapped {
		t.Fatalf("fetch from hole: %v", f)
	}
}

func TestSynonymAliasing(t *testing.T) {
	as := NewAddressSpace()
	frames, err := as.Map(0x10000, 2, PermX)
	if err != nil {
		t.Fatal(err)
	}
	// Map the same frames at a physmap-style second address, read-write.
	if err := as.MapFrames(0x80000, frames, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x80004, 0xc3, 1); f != nil {
		t.Fatal(f)
	}
	// The write is visible through the original (executable) mapping.
	var buf [1]byte
	if _, f := as.Fetch(0x10004, buf[:]); f != nil || buf[0] != 0xc3 {
		t.Fatalf("alias write not visible: %v %v", f, buf)
	}
	// Unmapping the synonym removes the data window but not the code.
	if err := as.Unmap(0x80000, 2); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(0x80000) {
		t.Error("synonym still mapped")
	}
	if !as.Mapped(0x10000) {
		t.Error("original mapping must survive")
	}
}

func TestProtectAndPermAt(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(0x1000, 1, PermR); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x1000, 1, 1); f == nil {
		t.Error("write to read-only page should fault")
	}
	p, ok := as.PermAt(0x1234)
	if !ok || p != PermR {
		t.Fatalf("PermAt: %v %v", p, ok)
	}
}

func TestPokePeekIgnorePerms(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermX); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4}
	if err := as.Poke(0x1000, want); err != nil {
		t.Fatal(err)
	}
	got, err := as.Peek(0x1000, 4)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("peek: %v %v", err, got)
	}
	if err := as.Poke(0x9000, []byte{1}); err == nil {
		t.Error("poke of unmapped page should error")
	}
}

func TestRanges(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 2, PermRW)
	mustMap(t, as, 0x3000, 1, PermRX)
	mustMap(t, as, 0x8000, 1, PermRW)
	r := as.Ranges()
	if len(r) != 3 {
		t.Fatalf("got %d ranges: %+v", len(r), r)
	}
	if r[0].Start != 0x1000 || r[0].End != 0x3000 || r[0].Perm != PermRW {
		t.Errorf("range 0: %+v", r[0])
	}
	if r[1].Start != 0x3000 || r[1].End != 0x4000 || r[1].Perm != PermRX {
		t.Errorf("range 1: %+v", r[1])
	}
	if r[2].Start != 0x8000 {
		t.Errorf("range 2: %+v", r[2])
	}
}

func TestHighCanonicalAddresses(t *testing.T) {
	as := NewAddressSpace()
	// Kernel-space addresses in the upper canonical half must work.
	const va = 0xffffffff80000000
	mustMap(t, as, va, 1, PermRW)
	if f := as.Write(va+8, 42, 8); f != nil {
		t.Fatal(f)
	}
	v, f := as.Read(va+8, 8)
	if f != nil || v != 42 {
		t.Fatalf("high address rw: %v %v", f, v)
	}
}

func TestPagesFor(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, PageSize: 1, PageSize + 1: 2, 3 * PageSize: 3}
	for in, want := range cases {
		if got := PagesFor(in); got != want {
			t.Errorf("PagesFor(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x1234, Kind: FaultNoWrite, Write: true}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
	for _, k := range []FaultKind{FaultNone, FaultNotMapped, FaultNoRead, FaultNoWrite, FaultNoExec} {
		if k.String() == "unknown" {
			t.Errorf("missing name for kind %d", k)
		}
	}
}

// Property: a value written with Write is read back identically by Read for
// all sizes and in-page offsets.
func TestQuickReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 4, PermRW)
	f := func(off uint16, val uint64, szSel uint8) bool {
		size := []uint8{1, 2, 4, 8}[szSel%4]
		va := 0x1000 + uint64(off)%(4*PageSize-8)
		if fault := as.Write(va, val, size); fault != nil {
			return false
		}
		got, fault := as.Read(va, size)
		if fault != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * size)) - 1
		}
		return got == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func mustMap(t *testing.T, as *AddressSpace, va uint64, n int, p Perm) {
	t.Helper()
	if _, err := as.Map(va, n, p); err != nil {
		t.Fatal(err)
	}
}

func TestShadowDataSplitTLB(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 2, PermX)
	if err := as.Poke(0x1000, []byte{0xC3, 0x90}); err != nil {
		t.Fatal(err)
	}
	if err := as.ShadowData(0x1000, 2, nil); err != nil {
		t.Fatal(err)
	}
	// Data view: the zero shadow.
	b, f := as.LoadByte(0x1000)
	if f != nil || b != 0 {
		t.Fatalf("shadowed read: %v %#x", f, b)
	}
	// Instruction view: the real bytes.
	var buf [2]byte
	if _, f := as.Fetch(0x1000, buf[:]); f != nil || buf[0] != 0xC3 {
		t.Fatalf("fetch must see real code: %v % x", f, buf)
	}
	// Unshadow restores the unified view.
	as.Unshadow(0x1000, 2)
	b, f = as.LoadByte(0x1000)
	if f != nil || b != 0xC3 {
		t.Fatalf("unshadowed read: %v %#x", f, b)
	}
	// Errors.
	if err := as.ShadowData(0x1001, 1, nil); err == nil {
		t.Error("unaligned shadow must fail")
	}
	if err := as.ShadowData(0x9000, 1, nil); err == nil {
		t.Error("shadow of unmapped page must fail")
	}
}
