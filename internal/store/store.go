// Package store is the content-addressed artifact store behind every cache
// in the harness: compiled kernel images, fuzz corpora with their coverage
// sets, and block-engine heat profiles all persist through one layered
// Store interface instead of process-private maps.
//
// Keys are structured (Key{ProgID, BuildKey}) and hash to content
// addresses; values are versioned, checksummed blobs. The two concrete
// layers — Mem (a byte-quota LRU in memory) and Disk (crash-safe files
// written via temp-file + rename) — compose through Layered, so a consumer
// sees one Get/Put surface whether it is running purely in memory (the
// pre-store behaviour) or warm-starting from a shared on-disk store across
// processes.
//
// Crash safety is detection, not durability: a kill mid-write leaves only a
// *.tmp file (reaped on the next Open) because the final name appears
// atomically via rename; a torn or bit-rotted blob fails its checksum on
// read and is deleted and reported as a miss, so the worst a crash can do
// is cost one rebuild — never serve corrupt artifacts.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Well-known artifact kinds. A kind namespaces the key space (and, on disk,
// the directory tree), so an image and a corpus checkpoint under the same
// key never collide.
const (
	// KindImage holds serialized core.BuildResult blobs (linked kernel
	// images plus pass statistics and post-pass IR).
	KindImage = "image"
	// KindCorpus holds fuzz campaign ledger checkpoints: the corpus, the
	// coverage set, and the crash buckets at a batch boundary.
	KindCorpus = "corpus"
	// KindHeat holds block-engine heat profiles: the entry RIPs of the
	// superblocks a prior campaign formed, used to skip the hotness ramp.
	KindHeat = "heat"
)

// Key identifies one artifact: the program (corpus) identity and the
// canonical build-affecting configuration string. It replaces the old
// `progID + "\x00" + buildKey` string concatenation — structured, usable as
// a map key, and printable in logs without escape soup.
type Key struct {
	ProgID   string
	BuildKey string
}

// String renders the key for logs and error messages.
func (k Key) String() string { return k.ProgID + "+" + k.BuildKey }

// Hash returns the key's content address: a sha256 over the
// length-prefixed fields (so no two distinct keys can collide by field
// boundary ambiguity), rendered as lowercase hex.
func (k Key) Hash() string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(k.ProgID)))
	h.Write(n[:])
	h.Write([]byte(k.ProgID))
	binary.LittleEndian.PutUint64(n[:], uint64(len(k.BuildKey)))
	h.Write(n[:])
	h.Write([]byte(k.BuildKey))
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is the uniform counter set every layer (and the build cache on top
// of them) reports — the replacement for the deleted ad-hoc
// Builds()/Hits()/Reset() accessors. The obs registry publishes these as
// the store.* gauges.
type Stats struct {
	Hits      uint64 // Gets served
	Misses    uint64 // Gets that found nothing
	Puts      uint64 // blobs written
	Evictions uint64 // blobs evicted under the byte quota
	Corrupt   uint64 // blobs rejected by checksum/container validation
	Bytes     uint64 // payload bytes currently resident
	Pins      uint64 // currently pinned entries
	Builds    uint64 // real compilations performed on behalf of this store
}

// Add returns the field-wise sum — how a layered store folds its layers'
// counters into one snapshot.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Puts:      s.Puts + o.Puts,
		Evictions: s.Evictions + o.Evictions,
		Corrupt:   s.Corrupt + o.Corrupt,
		Bytes:     s.Bytes + o.Bytes,
		Pins:      s.Pins + o.Pins,
		Builds:    s.Builds + o.Builds,
	}
}

// StatsSource is anything that can report store statistics — a layer, a
// composed store, or the build cache. The obs registry registers against
// this interface.
type StatsSource interface {
	Stats() Stats
}

// Store is the layered cache API: content-addressed blobs under
// (kind, key), with byte quotas, LRU eviction, and pinning for artifacts
// that must survive eviction while a build is in flight. Implementations
// are safe for concurrent use.
type Store interface {
	StatsSource

	// Get returns the blob stored under (kind, key), or a *NotFoundError.
	// A blob that fails validation is removed and reported as not found
	// (with Corrupt set) — the caller's recovery for both is the same:
	// rebuild and Put.
	Get(kind string, key Key) ([]byte, error)

	// Put stores data under (kind, key), evicting least-recently-used
	// unpinned entries if the byte quota would be exceeded.
	Put(kind string, key Key, data []byte) error

	// Pin marks (kind, key) unevictable until the returned release func is
	// called. Pinning a key before it exists is allowed — it protects the
	// window between a Put and the dependent Get of an in-flight build.
	Pin(kind string, key Key) (release func())

	// Close releases any resources (file handles, background state).
	Close() error
}

// NotFoundError reports a Get that found no (valid) blob.
type NotFoundError struct {
	Kind string
	Key  Key
	// Corrupt marks a blob that existed but failed validation and was
	// discarded; the miss then costs a rebuild, never a bad artifact.
	Corrupt bool
}

func (e *NotFoundError) Error() string {
	if e.Corrupt {
		return fmt.Sprintf("store: %s/%s: blob failed validation (discarded)", e.Kind, e.Key)
	}
	return fmt.Sprintf("store: %s/%s: not found", e.Kind, e.Key)
}

// IsNotFound reports whether err is a *NotFoundError (corrupt or plain).
func IsNotFound(err error) bool {
	_, ok := err.(*NotFoundError)
	return ok
}

// ParseBytes parses a human byte quantity for the -cache-quota flag:
// a plain number is bytes; K/M/G (and KB/MB/GB, KiB/MiB/GiB) suffixes are
// binary multiples. 0 means no quota.
func ParseBytes(s string) (uint64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("store: empty byte quantity")
	}
	mult := uint64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		s string
		m uint64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(upper, suf.s) {
			mult = suf.m
			t = t[:len(t)-len(suf.s)]
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad byte quantity %q: %v", s, err)
	}
	return n * mult, nil
}
