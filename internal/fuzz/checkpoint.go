package fuzz

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/store"
)

// Campaign checkpointing: the ledger's merge state — corpus, coverage set,
// crash buckets, counters — serialized to the artifact store at batch
// boundaries, so a campaign killed mid-run (or a -serve worker fleet
// warm-starting) resumes from the last completed batch instead of
// iteration zero. Because Fold order is canonical and the checkpoint cuts
// at a batch boundary, a resumed campaign finalizes to the byte-identical
// report a single uninterrupted run would have produced.
//
// The checkpoint key deliberately excludes Iters and Workers: a longer
// rerun extends the same campaign, and worker count never changes the
// ledger (the determinism contract). Everything that does change the
// iteration stream — seed, config build key, fault plan, minimization
// budget — is in the key, so mismatched campaigns can never cross-resume.

// CampaignKey returns the store key identifying this campaign's checkpoint
// and heat-profile artifacts.
func (o *Options) CampaignKey() store.Key {
	plan := "none"
	if o.Plan != nil {
		plan = fmt.Sprintf("%+v", *o.Plan)
	}
	return store.Key{
		ProgID: "fuzz-campaign",
		BuildKey: fmt.Sprintf("seed=%d,cfg=%s,plan=%s,minimize=%d",
			o.Seed, o.Config.BuildKey(), plan, o.MaxMinimize),
	}
}

// ledgerState is the gob image of a Ledger at a batch boundary. Cover is a
// sorted slice, not the live map: gob map encoding order is random, and a
// checkpoint blob should be stable for identical state.
type ledgerState struct {
	Done            int
	Corpus          []*Prog
	Cover           []uint64
	Crashes         []*Crash // sorted by bucket
	Executed        int
	Faults          int
	AuditViolations map[string]int
}

// SaveCheckpoint writes the ledger's current merge state to the campaign's
// checkpoint store. No-op without one. Callers must invoke it only at
// batch boundaries — the invariant LoadCheckpoint's resume depends on.
func (l *Ledger) SaveCheckpoint() error {
	if l.opts.Checkpoint == nil {
		return nil
	}
	st := ledgerState{
		Done:            l.done,
		Corpus:          l.corpus,
		Cover:           make([]uint64, 0, len(l.cover)),
		Executed:        l.report.Executed,
		Faults:          l.report.Faults,
		AuditViolations: l.report.AuditViolations,
	}
	for rip := range l.cover {
		st.Cover = append(st.Cover, rip)
	}
	sort.Slice(st.Cover, func(i, j int) bool { return st.Cover[i] < st.Cover[j] })
	for _, c := range l.crashes {
		st.Crashes = append(st.Crashes, c)
	}
	sort.Slice(st.Crashes, func(i, j int) bool { return st.Crashes[i].Bucket < st.Crashes[j].Bucket })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("fuzz: encode checkpoint: %w", err)
	}
	if err := l.opts.Checkpoint.Put(store.KindCorpus, l.opts.CampaignKey(), buf.Bytes()); err != nil {
		return fmt.Errorf("fuzz: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores the ledger from the campaign's stored checkpoint,
// returning whether one was found. A corrupt or missing blob is a clean
// cold start, never an error — the store already discarded anything that
// failed validation.
func (l *Ledger) LoadCheckpoint() (bool, error) {
	if l.opts.Checkpoint == nil {
		return false, nil
	}
	data, err := l.opts.Checkpoint.Get(store.KindCorpus, l.opts.CampaignKey())
	if err != nil {
		if store.IsNotFound(err) {
			return false, nil
		}
		return false, fmt.Errorf("fuzz: load checkpoint: %w", err)
	}
	var st ledgerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		// Schema drift inside a checksum-valid blob: cold-start and let the
		// next SaveCheckpoint overwrite it.
		return false, nil
	}
	l.done = st.Done
	l.corpus = st.Corpus
	l.cover = make(map[uint64]struct{}, len(st.Cover))
	for _, rip := range st.Cover {
		l.cover[rip] = struct{}{}
	}
	l.crashes = make(map[string]*Crash, len(st.Crashes))
	for _, c := range st.Crashes {
		l.crashes[c.Bucket] = c
	}
	l.report.Executed = st.Executed
	l.report.Faults = st.Faults
	if st.AuditViolations != nil {
		l.report.AuditViolations = st.AuditViolations
	}
	return true, nil
}
