package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mem"
)

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Inc()
	r.Gauge("mid", func() uint64 { return 7 })

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	wantOrder := []string{"alpha", "mid", "zeta"}
	wantValue := []uint64{1, 7, 3}
	for i, m := range snap {
		if m.Name != wantOrder[i] || m.Value != wantValue[i] {
			t.Errorf("snapshot[%d] = %s=%d, want %s=%d", i, m.Name, m.Value, wantOrder[i], wantValue[i])
		}
	}
}

func TestRegistryCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("aliased counter reads %d, want 2", b.Value())
	}
}

func TestRegistryCrossKindPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c")
	r.Gauge("g", func() uint64 { return 0 })
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	expectPanic("counter-as-gauge", func() { r.Gauge("c", func() uint64 { return 0 }) })
	expectPanic("gauge-as-counter", func() { r.Counter("g") })
}

func TestRegistryConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", got)
	}
}

func TestRegistryFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(5)
	if s := r.Format(); !strings.Contains(s, "events") || !strings.Contains(s, "5") {
		t.Errorf("format missing metric: %q", s)
	}
}

func TestRegisterFork(t *testing.T) {
	as := mem.NewAddressSpace()
	if _, err := as.Map(0x1000, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Freeze(); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	RegisterFork(r, "fork", func() uint64 { return 5 }, func() *mem.AddressSpace { return as })
	got := map[string]uint64{}
	for _, m := range r.Snapshot() {
		got[m.Name] = m.Value
	}
	want := map[string]uint64{
		"fork.forks": 5, "fork.shared_frames": 1,
		"fork.cow_breaks": 0, "fork.private_frames": 0,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	if fa := as.StoreByte(0x1008, 0xAA); fa != nil {
		t.Fatal(fa)
	}
	if v := as.CowStats().Breaks; v != 1 {
		t.Fatalf("cow breaks after write = %d, want 1", v)
	}
}
