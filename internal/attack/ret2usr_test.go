package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/sfi"
)

func TestRet2usrSucceedsWithoutSMEP(t *testing.T) {
	// The legacy configuration (§1): shared address space, no supervisor
	// mode execution prevention.
	target := boot(t, core.Vanilla)
	target.CPU.SMEP = false
	r := Ret2usr(target)
	if !r.Success {
		t.Fatalf("ret2usr must succeed without SMEP: %v", r)
	}
}

func TestRet2usrBlockedBySMEP(t *testing.T) {
	// §3 hardening assumption: SMEP (or KERNEXEC/kGuard) blocks the
	// kernel-to-user control transfer; kR^X builds on top of this.
	target := boot(t, core.Vanilla) // SMEP on by default
	r := Ret2usr(target)
	if r.Success {
		t.Fatalf("SMEP must stop ret2usr: %v", r)
	}
}

func TestRet2usrBlockedUnderFullKRX(t *testing.T) {
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 801})
	if r := Ret2usr(target); r.Success {
		t.Fatalf("ret2usr must stay dead under full kR^X: %v", r)
	}
}
