// Package module implements the kR^X-KAS-aware module loader-linker
// (§5.1.1 "Kernel Modules" and §6): module objects are compiled through the
// same krx/kaslr pipeline as the kernel, their .text is sliced into the
// modules_text region (execute-only, physmap synonym closed) while all
// other allocatable sections land in modules_data, relocation and symbol
// binding are eager, per-module xkeys are replenished at load time, and
// unloading zaps the text frames before the physmap synonym is restored.
package module

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/kas"
	"repro/internal/kernel"
	"repro/internal/link"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sfi"
)

// Object is an on-disk module: its IR program (the ELF sections before
// load-time slicing).
type Object struct {
	Name string
	Prog *ir.Program

	// Unprotected requests that the module skip the krx/kaslr passes.
	// kR^X supports mixed code — protected and unprotected modules side
	// by side — for incremental deployment and selective hardening (§6);
	// the cost is that the unprotected module's own reads can reach the
	// code region.
	Unprotected bool
}

// Loaded describes a live module.
type Loaded struct {
	Name     string
	TextAddr uint64
	TextSize uint64
	DataAddr uint64
	DataSize uint64
	Symbols  map[string]uint64

	frames  []*mem.Frame
	pfn     int
	dataVA  uint64
	dataPgs int
}

// Loader places modules into a booted kernel's address space.
type Loader struct {
	K *kernel.Kernel

	nextText uint64
	nextData uint64
	loaded   map[string]*Loaded
}

// NewLoader creates a loader for the kernel.
func NewLoader(k *kernel.Kernel) *Loader {
	l := &Loader{K: k, loaded: make(map[string]*Loaded)}
	if k.Img.Layout.Kind == kas.KRX {
		l.nextText = k.Sym("__start_modules_text")
		l.nextData = k.Sym("__start_modules_data")
	} else {
		// Vanilla: text and data interleave in the single modules area.
		l.nextText = kas.ModulesBase
		l.nextData = kas.ModulesBase + 256<<20
	}
	return l
}

// Load compiles obj under the kernel's protection configuration, links it
// against the kernel's exported symbols, maps text and data into their
// regions, and replenishes the module's xkeys.
func (l *Loader) Load(obj *Object) (*Loaded, error) {
	if _, dup := l.loaded[obj.Name]; dup {
		return nil, fmt.Errorf("module: %s already loaded", obj.Name)
	}
	cfg := l.K.Cfg
	if obj.Unprotected {
		// Mixed-code support (§6): load without the plugin passes.
		cfg = core.Config{Seed: cfg.Seed}
	}
	prog := obj.Prog.Clone()

	// The same plugin pipeline the kernel image went through.
	switch cfg.XOM {
	case core.XOMSFI:
		if _, err := sfi.InstrumentProgram(prog, sfi.Config{Mode: sfi.ModeSFI, Level: cfg.SFILevel}); err != nil {
			return nil, err
		}
	case core.XOMMPX:
		if _, err := sfi.InstrumentProgram(prog, sfi.Config{Mode: sfi.ModeMPX}); err != nil {
			return nil, err
		}
	}
	if cfg.Diversify {
		seed := cfg.Seed ^ int64(len(obj.Name))<<32 ^ int64(l.nextText)
		if _, err := diversify.DiversifyProgram(prog, diversify.Config{
			K: cfg.K, RAProt: cfg.RAProt, Rand: rand.New(rand.NewSource(seed)),
		}); err != nil {
			return nil, err
		}
	}

	img, err := link.LinkObject(prog, l.nextText, l.nextData, l.K.Img.Symbols)
	if err != nil {
		return nil, err
	}

	// The module_alloc() sanity check (with the Appendix A fix).
	if !pgtable.ModuleFits(img.TotalTextSize() + uint64(len(img.Data)) + img.BssSize) {
		return nil, fmt.Errorf("module: %s exceeds the modules region", obj.Name)
	}

	// Slice: .text (plus trailing xkeys) into modules_text.
	textBytes := make([]byte, img.TotalTextSize())
	copy(textBytes, img.Text)
	frames, pfn, err := l.K.Space.MapModuleText(l.nextText, textBytes)
	if err != nil {
		return nil, err
	}
	// Replenish the module xkeys (load-time key installation; Poke models
	// the loader writing through its privileged mapping before the
	// synonym is closed — MapModuleText already unmapped it, so write via
	// the text mapping directly).
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6d6f64)) // "mod"
	for _, addr := range img.KeyAddrs {
		var b [8]byte
		v := rng.Uint64() | 1
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		if err := l.K.Space.AS.Poke(addr, b[:]); err != nil {
			return nil, err
		}
	}

	// All other allocatable sections into modules_data.
	dataSize := uint64(len(img.Data)) + img.BssSize
	dataPgs := mem.PagesFor(dataSize)
	if dataPgs == 0 {
		dataPgs = 1
	}
	if _, err := l.K.Space.AS.Map(l.nextData, dataPgs, mem.PermRW); err != nil {
		return nil, err
	}
	if len(img.Data) > 0 {
		if err := l.K.Space.AS.Poke(l.nextData, img.Data); err != nil {
			return nil, err
		}
	}

	m := &Loaded{
		Name:     obj.Name,
		TextAddr: l.nextText,
		TextSize: img.TotalTextSize(),
		DataAddr: l.nextData,
		DataSize: dataSize,
		Symbols:  img.Symbols,
		frames:   frames,
		pfn:      pfn,
		dataVA:   l.nextData,
		dataPgs:  dataPgs,
	}
	l.loaded[obj.Name] = m
	l.nextText += uint64(len(frames)) << mem.PageShift
	l.nextData += uint64(dataPgs) << mem.PageShift
	return m, nil
}

// Unload removes a module: text frames are zapped (preventing code-layout
// inference through recycled pages — §5.1.1), the text mapping is removed,
// the physmap synonym is restored, and the data mapping is dropped.
func (l *Loader) Unload(name string) error {
	m, ok := l.loaded[name]
	if !ok {
		return fmt.Errorf("module: %s not loaded", name)
	}
	if err := l.K.Space.UnmapModuleText(m.TextAddr, m.frames, m.pfn); err != nil {
		return err
	}
	if err := l.K.Space.AS.Unmap(m.dataVA, m.dataPgs); err != nil {
		return err
	}
	delete(l.loaded, name)
	return nil
}

// Loaded reports whether the named module is currently loaded.
func (l *Loader) IsLoaded(name string) bool {
	_, ok := l.loaded[name]
	return ok
}
