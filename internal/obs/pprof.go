package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartPprof arms the host-side pprof outputs behind the commands'
// -cpuprofile/-memprofile flags and returns the flush function. Either
// path may be empty to skip that profile. The returned stop must run on
// every exit path — including error exits — or the CPU profile is
// truncated; it is idempotent, so calling it from both a defer and an
// explicit error path is safe.
//
// These profile the HOST process (the emulator, the compiler, the fuzzer
// scheduler), not the emulated kernel — the emulated side's profiler is
// obs.Profiler, which attributes emulated cycles. The pair is how a
// dispatch-path optimization is validated: the emulated-cycle totals must
// not move while the host CPU profile does.
func StartPprof(cpuOut, memOut string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuOut != "" {
		cpuFile, err = os.Create(cpuOut)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memOut != "" {
			f, err := os.Create(memOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // heap profile of live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}
