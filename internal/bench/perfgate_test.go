package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestProbesDisabledStepPerfGate is the benchmark smoke from ISSUE 4's CI
// satellite: the probes-disabled Step path must not regress more than 2%
// against the committed BENCH_emulator.json baseline.
//
// Two gates run, one per metric class:
//
//   - Emulated cycles are deterministic and must match the baseline exactly;
//     a divergence means the emulator's semantics changed, not its speed.
//   - Host ns/op is machine- and load-dependent, so the measurement takes
//     the minimum over three EmuBench repetitions (the standard
//     noise-robust estimator) and the tolerance is configurable via
//     KRX_PERF_GATE_PCT (default 2, the ISSUE's gate; hosted CI runners
//     with noisy neighbors need a wider band).
//
// The whole test only arms when KRX_PERF_GATE is set and the baseline's
// goos/goarch match the host; anything else skips with the reason.
func TestProbesDisabledStepPerfGate(t *testing.T) {
	if os.Getenv("KRX_PERF_GATE") == "" {
		t.Skip("perf gate disarmed (set KRX_PERF_GATE=1 to compare against BENCH_emulator.json)")
	}
	tolerance := 2.0
	if s := os.Getenv("KRX_PERF_GATE_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("KRX_PERF_GATE_PCT: %v", err)
		}
		tolerance = v
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_emulator.json"))
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base EmuReport
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	if base.SchemaVersion != EmuSchemaVersion {
		t.Fatalf("baseline schema_version %d, want %d: regenerate with krxbench -json",
			base.SchemaVersion, EmuSchemaVersion)
	}
	if base.GoOS != runtime.GOOS || base.GoArch != runtime.GOARCH {
		t.Skipf("baseline is %s/%s, running on %s/%s: host ns/op is not comparable",
			base.GoOS, base.GoArch, runtime.GOOS, runtime.GOARCH)
	}
	baseline := make(map[string]EmuResult)
	for _, r := range base.Results {
		baseline[r.Name] = r
	}

	// EmuBench is itself min-of-emuReps per mode (scheduling noise only
	// ever adds time), so one call is the noise-robust estimate.
	cur, err := EmuBench(5)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range cur.Results {
		name := r.Name
		want, ok := baseline[name]
		if !ok || want.HostNsOn <= 0 {
			t.Logf("%s: no baseline entry, skipping", name)
			continue
		}
		ratio := float64(r.HostNsOn) / float64(want.HostNsOn)
		t.Logf("%s: %d ns/op vs baseline %d ns/op (%.3fx)", name, r.HostNsOn, want.HostNsOn, ratio)
		// The table1-suite workloads repeat one identical instruction stream
		// per op — the probes-disabled Step path this gate protects, directly
		// comparable across iteration counts. Fuzz workloads execute a
		// different program each iteration, so their ns/op only compares at
		// equal iteration counts; they are informational here and gated
		// relatively (blocks vs cache-only) in TestBlockEnginePerfGate.
		if !strings.HasPrefix(name, "table1-suite/") {
			continue
		}
		// Deterministic gate: per-iteration emulated cycles must match the
		// baseline exactly (iteration counts may differ; every suite pass
		// executes the identical stream, so cycles scale linearly).
		if r.Iters > 0 && want.Iters > 0 &&
			r.Cycles/uint64(r.Iters) != want.Cycles/uint64(want.Iters) {
			t.Errorf("%s: emulated cycles/op diverge from baseline: %d vs %d — semantics changed",
				name, r.Cycles/uint64(r.Iters), want.Cycles/uint64(want.Iters))
		}
		if 100*(ratio-1) > tolerance {
			t.Errorf("%s: probes-disabled Step path regressed %.1f%% (> %.1f%% gate): %d ns/op vs baseline %d",
				name, 100*(ratio-1), tolerance, r.HostNsOn, want.HostNsOn)
		}
	}
}

// TestBlockEnginePerfGate gates the superblock engine against its own
// fallback on EVERY workload: block dispatch (with hotness-gated formation
// and chaining) must be at least as fast as the decode-cache-only path
// (block_speedup >= 1.0, within the KRX_PERF_GATE_PCT band). The fuzz rows
// run probe-free (fuzz.Options.NoCoverage), so block dispatch is genuinely
// armed there — the fuzz-iteration/Vanilla row is exactly the regression
// this gate exists to hold down. Each mode is min-of-emuReps inside
// EmuBench, and the exact emulated-cycles equality across all three modes
// is enforced inside measureEmu on every repetition — a divergence fails
// the run before any timing is reported.
//
// Like the Step gate, this only arms under KRX_PERF_GATE: it is a relative
// same-host comparison, so no goos/goarch check is needed.
func TestBlockEnginePerfGate(t *testing.T) {
	if os.Getenv("KRX_PERF_GATE") == "" {
		t.Skip("perf gate disarmed (set KRX_PERF_GATE=1 to gate block-engine speedup)")
	}
	tolerance := 2.0
	if s := os.Getenv("KRX_PERF_GATE_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("KRX_PERF_GATE_PCT: %v", err)
		}
		tolerance = v
	}

	cur, err := EmuBench(5)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range cur.Results {
		t.Logf("%s: blocks %d ns/op vs cache-only %d ns/op (block speedup %.3fx)",
			r.Name, r.HostNsBlocks, r.HostNsOn, r.BlockSpeedup)
		speedup := float64(r.HostNsOn) / float64(r.HostNsBlocks)
		if speedup < 1.0-tolerance/100 {
			t.Errorf("%s: block engine slower than decode-cache-only: %.3fx (< 1.0 - %.1f%% band)",
				r.Name, speedup, tolerance)
		}
	}
}

// compiledSpeedupFloor returns the compiled_speedup floor for a benchmark
// row: the ISSUE's acceptance bar is >= 1.15x on the table1-suite rows
// (steady-state block dispatch, where thunk specialization is the whole
// cost) and >= 1.0 everywhere else (fuzz rows amortize compilation over
// fresh programs, so break-even is the contract).
func compiledSpeedupFloor(name string) float64 {
	if strings.HasPrefix(name, "table1-suite/") {
		return 1.15
	}
	return 1.0
}

// TestCompiledEnginePerfGate gates the compiled-thunk dispatcher against
// the interpreted block engine it replaces, in two layers:
//
//   - Static (always on): every row of the committed BENCH_emulator.json
//     must carry compiled_speedup >= its floor. This holds the committed
//     baseline honest — a PR cannot land a benchmark file in which the
//     compiler loses to the interpreter it is supposed to beat.
//   - Live (under KRX_PERF_GATE): the same floors re-measured on this
//     host, within the KRX_PERF_GATE_PCT band. Like TestBlockEnginePerfGate
//     it is a relative same-host comparison, so no goos/goarch check.
func TestCompiledEnginePerfGate(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_emulator.json"))
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base EmuReport
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	if base.SchemaVersion != EmuSchemaVersion {
		t.Fatalf("baseline schema_version %d, want %d: regenerate with krxbench -json",
			base.SchemaVersion, EmuSchemaVersion)
	}
	if len(base.Results) == 0 {
		t.Fatal("baseline has no emulator results")
	}
	for _, r := range base.Results {
		floor := compiledSpeedupFloor(r.Name)
		t.Logf("%s: baseline compiled %d ns/op vs blocks %d ns/op (compiled speedup %.3fx, floor %.2fx)",
			r.Name, r.HostNsCompiled, r.HostNsBlocks, r.CompiledSpeedup, floor)
		if r.CompiledSpeedup < floor {
			t.Errorf("%s: committed baseline compiled_speedup %.3fx below the %.2fx floor: regenerate or fix the compiler",
				r.Name, r.CompiledSpeedup, floor)
		}
	}

	if os.Getenv("KRX_PERF_GATE") == "" {
		t.Skip("live perf gate disarmed (set KRX_PERF_GATE=1 to re-measure compiled_speedup on this host)")
	}
	tolerance := 2.0
	if s := os.Getenv("KRX_PERF_GATE_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("KRX_PERF_GATE_PCT: %v", err)
		}
		tolerance = v
	}
	cur, err := EmuBench(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cur.Results {
		floor := compiledSpeedupFloor(r.Name)
		t.Logf("%s: compiled %d ns/op vs blocks %d ns/op (compiled speedup %.3fx, floor %.2fx)",
			r.Name, r.HostNsCompiled, r.HostNsBlocks, r.CompiledSpeedup, floor)
		if r.CompiledSpeedup < floor-tolerance/100 {
			t.Errorf("%s: compiled dispatch speedup %.3fx below the %.2fx floor (band %.1f%%)",
				r.Name, r.CompiledSpeedup, floor, tolerance)
		}
	}
}
