package link

import (
	"bytes"
	"testing"
)

// FuzzReadImage: untrusted image files must never panic or over-allocate.
func FuzzReadImage(f *testing.F) {
	f.Add([]byte("KRXIMG01"))
	f.Add(append(append([]byte{}, imageMagic[:]...), make([]byte, 64)...))
	f.Fuzz(func(t *testing.T, b []byte) {
		img, err := ReadImage(bytes.NewReader(b))
		if err != nil {
			return
		}
		_ = len(img.Text) + len(img.Data)
	})
}
