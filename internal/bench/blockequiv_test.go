// Block-engine bit-identity enforcement at system scale: the superblock
// engine must not change any architecturally visible outcome of the Table 1
// suite, the paper's attack scenarios, or a fuzzing campaign — and the fuzz
// report must stay byte-identical across worker counts with the engine on.
// These runs are probe-free (probes disarm the block fast path), so the
// on-side genuinely executes through block dispatch; each test asserts so
// via BlockStats.
package bench

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/kernel"
)

func bootBlocks(t *testing.T, cfg core.Config, blocksOn bool) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg, kernel.WithCache())
	if err != nil {
		t.Fatal(err)
	}
	k.CPU.SetBlockEngine(blocksOn)
	return k
}

// TestTable1SuiteBlockEquivalence: every micro-op under block dispatch must
// produce the identical cycle and instruction totals as single-step, on the
// unprotected and the fully protected columns.
func TestTable1SuiteBlockEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		type outcome struct {
			cycles, instrs uint64
		}
		run := func(blocksOn bool) outcome {
			k := bootBlocks(t, cfg, blocksOn)
			instrs0 := k.CPU.Instrs
			cycles, err := RunTable1Suite(k)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			if bs := k.CPU.BlockStats(); blocksOn && bs.Dispatches == 0 {
				t.Fatalf("%s: block engine never dispatched", cfg.Name())
			} else if !blocksOn && bs.Dispatches != 0 {
				t.Fatalf("%s: disabled engine dispatched: %+v", cfg.Name(), bs)
			}
			return outcome{cycles: cycles, instrs: k.CPU.Instrs - instrs0}
		}
		on, off := run(true), run(false)
		if on != off {
			t.Errorf("%s: blocks on/off diverge: %+v vs %+v", cfg.Name(), on, off)
		}
	}
}

// TestAttackScenariosBlockEquivalence: the paper's three attack scenarios —
// including JIT-ROP gadget harvesting, exactly the adversarial control flow
// and text-reading a block engine could corrupt — end identically with the
// engine on and off.
func TestAttackScenariosBlockEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(cfg core.Config, blocksOn bool) (attack.Result, *kernel.Kernel)
	}{
		{"DirectROP", func(cfg core.Config, blocksOn bool) (attack.Result, *kernel.Kernel) {
			target := bootBlocks(t, cfg, blocksOn)
			ref := bootBlocks(t, cfg, blocksOn)
			return attack.DirectROP(target, ref), target
		}},
		{"JITROP", func(cfg core.Config, blocksOn bool) (attack.Result, *kernel.Kernel) {
			target := bootBlocks(t, cfg, blocksOn)
			return attack.JITROP(target), target
		}},
		{"IndirectJITROP", func(cfg core.Config, blocksOn bool) (attack.Result, *kernel.Kernel) {
			target := bootBlocks(t, cfg, blocksOn)
			return attack.IndirectJITROP(target), target
		}},
	}
	for _, cfg := range equivConfigs() {
		for _, sc := range scenarios {
			rOn, kOn := sc.run(cfg, true)
			rOff, kOff := sc.run(cfg, false)
			if rOn != rOff {
				t.Errorf("%s/%s: results diverge:\n on: %v\noff: %v", cfg.Name(), sc.name, rOn, rOff)
			}
			if kOn.CPU.Instrs != kOff.CPU.Instrs || kOn.CPU.Cycles != kOff.CPU.Cycles {
				t.Errorf("%s/%s: counters diverge: instrs %d/%d cycles %d/%d",
					cfg.Name(), sc.name, kOn.CPU.Instrs, kOff.CPU.Instrs, kOn.CPU.Cycles, kOff.CPU.Cycles)
			}
			// On the unprotected column the attack genuinely executes its
			// payload; there the engine must have been in the loop. Protected
			// columns may fault before a single block dispatches.
			if bs := kOn.CPU.BlockStats(); cfg.Name() == core.Vanilla.Name() && bs.Dispatches == 0 {
				t.Errorf("%s/%s: block engine never dispatched on the target", cfg.Name(), sc.name)
			}
		}
	}
}

// TestFuzzReportBlockInvariance: campaign reports must be byte-identical
// across block engine on/off AND across -workers 1 and 4 with the engine
// on — the worker-count invariance the deterministic scheduler guarantees
// must survive the new dispatch path.
func TestFuzzReportBlockInvariance(t *testing.T) {
	run := func(workers int, blocksOn bool) string {
		f, err := fuzz.New(fuzz.Options{Iters: 96, Seed: 17, Config: core.Vanilla, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ks, err := f.Kernels()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			k.CPU.SetBlockEngine(blocksOn)
		}
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	base := run(1, true)
	for _, tc := range []struct {
		workers  int
		blocksOn bool
	}{{4, true}, {1, false}, {4, false}} {
		if got := run(tc.workers, tc.blocksOn); got != base {
			t.Errorf("workers=%d blocks=%v: report diverges from workers=1 blocks=on",
				tc.workers, tc.blocksOn)
		}
	}
}
