package link

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/kas"
)

func TestImageRoundTrip(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Text, img.Text) || !bytes.Equal(got.Rodata, img.Rodata) || !bytes.Equal(got.Data, img.Data) {
		t.Fatal("section bytes differ after round trip")
	}
	if !reflect.DeepEqual(got.Symbols, img.Symbols) {
		t.Fatal("symbols differ")
	}
	if !reflect.DeepEqual(got.Funcs, img.Funcs) {
		t.Fatal("functions differ")
	}
	if !reflect.DeepEqual(got.KeyAddrs, img.KeyAddrs) {
		t.Fatal("keys differ")
	}
	if got.Layout.Kind != img.Layout.Kind || got.BssSize != img.BssSize {
		t.Fatal("header fields differ")
	}
	if len(got.Layout.Regions) != len(img.Layout.Regions) {
		t.Fatal("regions differ")
	}
	// The reloaded image installs and still validates.
	if err := got.Layout.Validate(); err != nil {
		t.Fatal(err)
	}
	pool := kas.NewPhysPool(8 << 20)
	sp, err := kas.Install(got.Layout, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Install(sp); err != nil {
		t.Fatal(err)
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte("not an image at all"))); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Truncated file.
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadImage(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated image must be rejected")
	}
}

func TestReadImageBoundsHostileLengths(t *testing.T) {
	// A hostile header claiming a gigantic string must not OOM.
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	buf.WriteByte(1)                          // kind
	buf.Write(make([]byte, 16))               // guard + bss
	buf.Write([]byte{1, 0, 0, 0})             // one region
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // str length 2^32-1
	if _, err := ReadImage(&buf); err == nil {
		t.Fatal("hostile string length must be rejected")
	}
}

func TestCompressedImageRoundTrip(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.WriteCompressedImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressedImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Text, img.Text) {
		t.Fatal("text differs after compressed round trip")
	}
	// The reader also accepts the uncompressed container.
	var plain bytes.Buffer
	if err := img.WriteImage(&plain); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCompressedImage(&plain); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleFunc(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	out, err := img.DisassembleFunc("kmain")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<kmain>:", "callq", "<helper>", "retq", "cmp $(_krx_edata"} {
		if want == "cmp $(_krx_edata" {
			// The symbolic form is resolved at link time; the immediate
			// shows as a concrete value. Skip this marker.
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	if _, err := img.DisassembleFunc("nope"); err == nil {
		t.Fatal("unknown function must fail")
	}
}
