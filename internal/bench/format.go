package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
)

// Format renders a table in the paper's style: one row per benchmark, one
// column per configuration, cells in percent ("~0%" for sub-0.05%).
func (t *Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	fmt.Fprintf(&sb, "%-22s", "Benchmark")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " %10s", c)
	}
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("-", 22+11*len(t.Configs)) + "\n")
	section := OpKind(-1)
	for ri, name := range t.RowNames {
		if len(t.RowKinds) > ri && t.RowKinds[ri] != section {
			section = t.RowKinds[ri]
			if section == Bandwidth {
				sb.WriteString("-- bandwidth --\n")
			}
		}
		fmt.Fprintf(&sb, "%-22s", name)
		for ci := range t.Configs {
			sb.WriteString(" " + cell(t.Overhead[ri][ci]))
		}
		sb.WriteByte('\n')
	}
	// Column averages (the paper reports them for Table 2).
	fmt.Fprintf(&sb, "%-22s", "Average")
	for ci := range t.Configs {
		var sum float64
		for ri := range t.RowNames {
			sum += t.Overhead[ri][ci]
		}
		sb.WriteString(" " + cell(sum/float64(len(t.RowNames))))
	}
	sb.WriteByte('\n')
	return sb.String()
}

func cell(v float64) string {
	if v > -0.05 && v < 0.05 {
		return fmt.Sprintf("%10s", "~0%")
	}
	return fmt.Sprintf("%9.2f%%", v)
}

// StatsReport renders the §7.2 instrumentation/diversification statistics
// for one built kernel (the text claims: pushfq elimination rate, lea
// elimination rate, coalescing rate, safe-read fraction, single-block
// function fraction, per-function entropy floor).
func StatsReport(k *kernel.Kernel) string {
	var sb strings.Builder
	s := k.Build.SFIStats
	d := k.Build.DivStats
	fmt.Fprintf(&sb, "configuration: %s\n", k.Cfg.Name())
	if s.ReadsTotal > 0 {
		fmt.Fprintf(&sb, "memory reads analyzed:      %d\n", s.ReadsTotal)
		fmt.Fprintf(&sb, "  safe (abs/%%rip-relative): %d (%.1f%%)\n",
			s.SafeReads, 100*float64(s.SafeReads)/float64(s.ReadsTotal))
		fmt.Fprintf(&sb, "  %%rsp+disp (guard):        %d (max disp %#x)\n", s.StackReads, s.MaxStackDisp)
		fmt.Fprintf(&sb, "  string-op sites:          %d\n", s.StringReads)
		fmt.Fprintf(&sb, "range checks: %d candidates -> %d emitted (%d coalesced, %.1f%%)\n",
			s.RCCandidates, s.RCEmitted, s.RCCoalesced,
			100*float64(s.RCCoalesced)/float64(max(1, s.RCCandidates)))
		fmt.Fprintf(&sb, "  lea-eliminated (O2 form): %d of %d (%.1f%%)\n",
			s.LeaEliminated, s.LeaEliminated+s.LeaForm,
			100*float64(s.LeaEliminated)/float64(max(1, s.LeaEliminated+s.LeaForm)))
		fmt.Fprintf(&sb, "  pushfq pairs: %d kept, %d eliminated (%.1f%% eliminated)\n",
			s.PushfqPairs, s.PushfqEliminated,
			100*float64(s.PushfqEliminated)/float64(max(1, s.PushfqPairs+s.PushfqEliminated)))
	}
	if d.Funcs > 0 {
		fmt.Fprintf(&sb, "functions diversified:      %d\n", d.Funcs)
		fmt.Fprintf(&sb, "  single basic block:       %d (%.1f%%)\n",
			d.SingleBlockFuncs, 100*float64(d.SingleBlockFuncs)/float64(d.Funcs))
		fmt.Fprintf(&sb, "  call-site slicing enough: %d, basic-block sliced: %d, phantom-padded: %d\n",
			d.CallSliceEnough, d.BasicSliced, d.Padded)
		fmt.Fprintf(&sb, "  phantom blocks added:     %d\n", d.PhantomBlocks)
		fmt.Fprintf(&sb, "  tripwire carriers:        %d\n", d.TripwireBlocks)
		fmt.Fprintf(&sb, "  entropy floor:            %.1f bits (k=%d)\n", d.MinEntropyBits, defaultK(k.Cfg))
	}
	return sb.String()
}

func defaultK(c core.Config) int {
	if c.K == 0 {
		return 30
	}
	return c.K
}
