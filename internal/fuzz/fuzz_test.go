package fuzz

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/inject"
	"repro/internal/sfi"
)

func campaignOpts(iters int) Options {
	plan := inject.DefaultPlan(42)
	return Options{
		Iters: iters,
		Seed:  42,
		Config: core.Config{
			XOM: core.XOMSFI, SFILevel: sfi.O3,
			Diversify: true, RAProt: diversify.RAEncrypt,
			Seed: 42,
		},
		Plan: &plan,
	}
}

// TestDeterministicReport is the acceptance property: two campaigns under
// identical options — fresh kernels, fresh PRNGs — render byte-identical
// reports, crash buckets and minimized reproducers included.
func TestDeterministicReport(t *testing.T) {
	r1, err := Fuzz(campaignOpts(150))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fuzz(campaignOpts(150))
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatalf("reports differ across same-seed campaigns:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1, r2)
	}
}

// TestWorkerCountInvariance is the sharding acceptance property: the same
// campaign executed by 1, 2, 3, and 4 workers renders byte-identical
// reports — parallelism must never change what the fuzzer finds.
func TestWorkerCountInvariance(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 3, 4} {
		opts := campaignOpts(150)
		opts.Workers = workers
		r, err := Fuzz(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = r.String()
			continue
		}
		if got := r.String(); got != want {
			t.Fatalf("workers=%d report diverges from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestCrashTriage checks the triage pipeline end to end on a campaign large
// enough to crash: buckets are deduplicated, sorted, and every minimized
// reproducer is no longer than what it minimizes.
func TestCrashTriage(t *testing.T) {
	r, err := Fuzz(campaignOpts(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Crashes) == 0 {
		t.Fatal("200 hostile iterations produced no crashes")
	}
	seen := map[string]bool{}
	prev := ""
	for _, c := range r.Crashes {
		if seen[c.Bucket] {
			t.Errorf("bucket %q appears twice (dedup broken)", c.Bucket)
		}
		seen[c.Bucket] = true
		if c.Bucket < prev {
			t.Errorf("buckets not sorted: %q after %q", c.Bucket, prev)
		}
		prev = c.Bucket
		if c.Min == nil || len(c.Min.Calls) == 0 {
			t.Errorf("bucket %q: missing minimized repro", c.Bucket)
		} else if len(c.Min.Calls) > len(c.Prog.Calls) {
			t.Errorf("bucket %q: minimized repro longer than original (%d > %d)",
				c.Bucket, len(c.Min.Calls), len(c.Prog.Calls))
		}
	}
}

// TestMinimizedReproReplays re-executes each minimized reproducer under its
// crash's iteration seed and requires the same bucket — the repro actually
// reproduces.
func TestMinimizedReproReplays(t *testing.T) {
	f, err := New(campaignOpts(200))
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Crashes {
		res, err := f.exec(c.Min, f.injSeed(c.Iter))
		if err != nil {
			t.Fatalf("bucket %q: replay: %v", c.Bucket, err)
		}
		if res.Bucket != c.Bucket {
			t.Errorf("bucket %q: minimized repro lands in %q on replay", c.Bucket, res.Bucket)
		}
	}
}

// TestCleanKernelNoInjection: without a fault plan, the vanilla kernel's
// benign surface alone should not produce harness errors, and audit
// violations should be impossible (nothing perturbs the machine but the
// syscalls themselves).
func TestCleanKernelNoInjection(t *testing.T) {
	opts := campaignOpts(100)
	opts.Plan = nil
	r, err := Fuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 0 {
		t.Fatalf("injected %d faults with no plan", r.Faults)
	}
	for _, c := range r.Crashes {
		if c.Bucket == "harness-panic" {
			t.Fatalf("uncontained panic bucket on a clean campaign: %s", c.Min)
		}
	}
}
