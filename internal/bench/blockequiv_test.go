// Block-engine bit-identity enforcement at system scale: the superblock
// engine — interpreted or compiled to per-opcode thunks — must not change
// any architecturally visible outcome of the Table 1 suite, the paper's
// attack scenarios, or a fuzzing campaign — and the fuzz report must stay
// byte-identical across worker counts with the engine on. These runs are
// probe-free (probes disarm the block fast path), so the on-side genuinely
// executes through block dispatch; each test asserts so via BlockStats.
package bench

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/kernel"
)

// blockMode names one (blocksOn, compileOn) engine configuration. compiled
// is the default shipping configuration; interp exercises the interpreted
// block dispatcher the compiler replaced; off is the single-step baseline.
type blockMode struct {
	name      string
	blocksOn  bool
	compileOn bool
}

var blockModes = []blockMode{
	{"compiled", true, true},
	{"interp", true, false},
	{"off", false, false},
}

func bootBlocks(t *testing.T, cfg core.Config, m blockMode) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg, kernel.WithCache())
	if err != nil {
		t.Fatal(err)
	}
	k.CPU.SetBlockEngine(m.blocksOn)
	k.CPU.SetBlockCompile(m.compileOn)
	return k
}

// TestTable1SuiteBlockEquivalence: every micro-op under block dispatch —
// compiled and interpreted — must produce the identical cycle and
// instruction totals as single-step, on the unprotected and the fully
// protected columns.
func TestTable1SuiteBlockEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		type outcome struct {
			cycles, instrs uint64
		}
		run := func(m blockMode) outcome {
			k := bootBlocks(t, cfg, m)
			instrs0 := k.CPU.Instrs
			cycles, err := RunTable1Suite(k)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name(), m.name, err)
			}
			bs := k.CPU.BlockStats()
			if m.blocksOn && bs.Dispatches == 0 {
				t.Fatalf("%s/%s: block engine never dispatched", cfg.Name(), m.name)
			} else if !m.blocksOn && bs.Dispatches != 0 {
				t.Fatalf("%s/%s: disabled engine dispatched: %+v", cfg.Name(), m.name, bs)
			}
			if m.compileOn && bs.Compiled == 0 {
				t.Fatalf("%s/%s: compiler never ran", cfg.Name(), m.name)
			} else if !m.compileOn && bs.Compiled != 0 {
				t.Fatalf("%s/%s: disabled compiler ran: %+v", cfg.Name(), m.name, bs)
			}
			return outcome{cycles: cycles, instrs: k.CPU.Instrs - instrs0}
		}
		base := run(blockModes[0])
		for _, m := range blockModes[1:] {
			if got := run(m); got != base {
				t.Errorf("%s: %s diverges from %s: %+v vs %+v",
					cfg.Name(), m.name, blockModes[0].name, got, base)
			}
		}
	}
}

// TestAttackScenariosBlockEquivalence: the paper's three attack scenarios —
// including JIT-ROP gadget harvesting, exactly the adversarial control flow
// and text-reading a block engine could corrupt — end identically in every
// engine mode.
func TestAttackScenariosBlockEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(cfg core.Config, m blockMode) (attack.Result, *kernel.Kernel)
	}{
		{"DirectROP", func(cfg core.Config, m blockMode) (attack.Result, *kernel.Kernel) {
			target := bootBlocks(t, cfg, m)
			ref := bootBlocks(t, cfg, m)
			return attack.DirectROP(target, ref), target
		}},
		{"JITROP", func(cfg core.Config, m blockMode) (attack.Result, *kernel.Kernel) {
			target := bootBlocks(t, cfg, m)
			return attack.JITROP(target), target
		}},
		{"IndirectJITROP", func(cfg core.Config, m blockMode) (attack.Result, *kernel.Kernel) {
			target := bootBlocks(t, cfg, m)
			return attack.IndirectJITROP(target), target
		}},
	}
	for _, cfg := range equivConfigs() {
		for _, sc := range scenarios {
			rBase, kBase := sc.run(cfg, blockModes[0])
			// On the unprotected column the attack genuinely executes its
			// payload; there the engine must have been in the loop. Protected
			// columns may fault before a single block dispatches.
			if bs := kBase.CPU.BlockStats(); cfg.Name() == core.Vanilla.Name() && bs.Dispatches == 0 {
				t.Errorf("%s/%s: block engine never dispatched on the target", cfg.Name(), sc.name)
			}
			for _, m := range blockModes[1:] {
				r, k := sc.run(cfg, m)
				if r != rBase {
					t.Errorf("%s/%s: %s result diverges from %s:\n%v\nvs\n%v",
						cfg.Name(), sc.name, m.name, blockModes[0].name, r, rBase)
				}
				if k.CPU.Instrs != kBase.CPU.Instrs || k.CPU.Cycles != kBase.CPU.Cycles {
					t.Errorf("%s/%s: %s counters diverge: instrs %d/%d cycles %d/%d",
						cfg.Name(), sc.name, m.name, k.CPU.Instrs, kBase.CPU.Instrs,
						k.CPU.Cycles, kBase.CPU.Cycles)
				}
			}
		}
	}
}

// TestFuzzReportBlockInvariance: campaign reports must be byte-identical
// across engine modes (compiled, interpreted, off) AND across -workers 1
// and 4 — the worker-count invariance the deterministic scheduler
// guarantees must survive the compiled dispatch path.
func TestFuzzReportBlockInvariance(t *testing.T) {
	run := func(workers int, m blockMode) string {
		f, err := fuzz.New(fuzz.Options{Iters: 96, Seed: 17, Config: core.Vanilla, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ks, err := f.Kernels()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			k.CPU.SetBlockEngine(m.blocksOn)
			k.CPU.SetBlockCompile(m.compileOn)
		}
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	base := run(1, blockModes[0])
	for _, workers := range []int{1, 4} {
		for _, m := range blockModes {
			if workers == 1 && m == blockModes[0] {
				continue
			}
			if got := run(workers, m); got != base {
				t.Errorf("workers=%d mode=%s: report diverges from workers=1 mode=%s",
					workers, m.name, blockModes[0].name)
			}
		}
	}
}
