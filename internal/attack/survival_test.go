package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func TestGadgetSurvivalVanillaIsTotal(t *testing.T) {
	a := boot(t, core.Vanilla)
	b := boot(t, core.Vanilla)
	total, surviving := GadgetSurvival(a, b)
	if total == 0 {
		t.Fatal("no gadgets found")
	}
	if surviving != total {
		t.Fatalf("identical builds must share all gadgets: %d/%d", surviving, total)
	}
}

func TestGadgetSurvivalDiversifiedIsNegligible(t *testing.T) {
	// §7.3: "no gadget remained at its original location".
	a := boot(t, core.Config{Diversify: true, Seed: 201})
	b := boot(t, core.Config{Diversify: true, Seed: 202})
	total, surviving := GadgetSurvival(a, b)
	if total == 0 {
		t.Fatal("no gadgets found")
	}
	frac := float64(surviving) / float64(total)
	if frac > 0.02 {
		t.Fatalf("gadget survival %.3f (%d/%d) too high under diversification", frac, surviving, total)
	}
}

func TestRaceHazardWindowExists(t *testing.T) {
	// §5.3 "Race Hazards": the cleartext window between the callq and the
	// prologue encryption is real and observable.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 203})
	r := RaceHazard(k)
	if !r.Success {
		t.Fatalf("the race window should be observable: %v", r)
	}
}

func TestRegRandChangesScratchAssignments(t *testing.T) {
	// The §5.3 register-randomization complement: the same function uses
	// different scratch registers across seeds.
	a := boot(t, core.Config{Diversify: true, RegRand: true, Seed: 301})
	b := boot(t, core.Config{Diversify: true, RegRand: true, Seed: 302})
	fa := a.Build.Prog.Func("sys_null")
	fb := b.Build.Prog.Func("sys_null")
	if fa == nil || fb == nil {
		t.Fatal("sys_null missing")
	}
	if fa.String() == fb.String() {
		t.Fatal("register randomization produced identical code across seeds")
	}
	if a.Build.DivStats.RegRandFuncs == 0 {
		t.Fatal("no functions register-randomized")
	}
	// And semantics are preserved: the kernel still works.
	if r := a.Syscall(kernel.SysNull); r.Failed || r.Ret != 0 {
		t.Fatalf("regrand kernel broken: %v", r.Run.Reason)
	}
}

func TestRegRandKernelFullyFunctional(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true,
		RAProt: diversify.RADecoy, RegRand: true, Seed: 303})
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	fd := k.Syscall(kernel.SysOpen, kernel.UserBuf)
	if fd.Failed || int64(fd.Ret) < 0 {
		t.Fatalf("open under regrand: %v ret=%d", fd.Run.Reason, int64(fd.Ret))
	}
	r := k.Syscall(kernel.SysRead, fd.Ret, kernel.UserBuf+4096, 64)
	if r.Failed || r.Ret != 64 {
		t.Fatalf("read under regrand: %v ret=%d trap=%v", r.Run.Reason, int64(r.Ret), r.Run.Trap)
	}
}

func TestFullCoverageInstrumentsStubs(t *testing.T) {
	// §6 future work: assembler-level instrumentation covers the entry
	// stubs too; the accessor clones stay exempt.
	normal := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 401})
	full := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, FullCoverage: true, Seed: 401})
	if full.Build.SFIStats.ReadsTotal <= normal.Build.SFIStats.ReadsTotal {
		t.Fatalf("full coverage must analyze more reads: %d vs %d",
			full.Build.SFIStats.ReadsTotal, normal.Build.SFIStats.ReadsTotal)
	}
	// The syscall surface still works end to end.
	if r := full.Syscall(kernel.SysNull); r.Failed {
		t.Fatalf("full-coverage kernel broken: %v %v", r.Run.Reason, r.Run.Trap)
	}
	if err := full.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	if r := full.Syscall(kernel.SysOpen, kernel.UserBuf); r.Failed || int64(r.Ret) < 0 {
		t.Fatalf("open under full coverage failed")
	}
	// Clones remain uninstrumented: the ftrace peek still reads code.
	if r := full.Syscall(kernel.SysFtracePeek, full.Sym("_text")+16); r.Failed {
		t.Fatalf("accessor clone must stay exempt: %v", r.Run.Trap)
	}
	// And the leak is still blocked.
	if r := full.Syscall(kernel.SysLeak, full.Sym("_text")+16); !full.Violated(r) {
		t.Fatal("R^X must still hold under full coverage")
	}
}
