package ir

import (
	"testing"

	"repro/internal/isa"
)

// diamond builds:
//
//	entry: cmp; jcc E -> right
//	left:  add; jmp join
//	right: sub           (fallthrough)
//	join:  ret
func diamond(t *testing.T) *Function {
	t.Helper()
	f, err := NewBuilder("diamond").
		I(isa.CmpRI(isa.RAX, 0), isa.Jcc(isa.CondE, "right")).
		Label("left").
		I(isa.AddRI(isa.RAX, 1), isa.Jmp("join")).
		Label("right").
		I(isa.SubRI(isa.RAX, 1)).
		Label("join").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuilderAndValidate(t *testing.T) {
	f := diamond(t)
	if len(f.Blocks) != 4 {
		t.Fatalf("got %d blocks", len(f.Blocks))
	}
	if f.Blocks[0].Label != "entry" {
		t.Fatalf("entry label: %q", f.Blocks[0].Label)
	}
	if f.NumInstrs() != 6 {
		t.Fatalf("NumInstrs = %d", f.NumInstrs())
	}
}

func TestBuilderRejectsDeadCode(t *testing.T) {
	_, err := NewBuilder("bad").
		I(isa.Ret(), isa.Nop()).
		Func()
	if err == nil {
		t.Fatal("instruction after terminator must be rejected")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Function{
		{Name: "", Blocks: []*Block{{Label: "entry", Ins: []isa.Instr{isa.Ret()}}}},
		{Name: "noblocks"},
		{Name: "emptyblock", Blocks: []*Block{{Label: "entry"}}},
		{Name: "dup", Blocks: []*Block{
			{Label: "a", Ins: []isa.Instr{isa.Nop()}},
			{Label: "a", Ins: []isa.Instr{isa.Ret()}},
		}},
		{Name: "badtarget", Blocks: []*Block{
			{Label: "entry", Ins: []isa.Instr{isa.Jmp("nowhere")}},
		}},
		{Name: "fallsoff", Blocks: []*Block{
			{Label: "entry", Ins: []isa.Instr{isa.Nop()}},
		}},
		{Name: "jccatend", Blocks: []*Block{
			{Label: "entry", Ins: []isa.Instr{isa.Jcc(isa.CondE, "entry")}},
		}},
	}
	for _, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%s) should fail", f.Name)
		}
	}
}

func TestSuccessors(t *testing.T) {
	f := diamond(t)
	check := func(i int, want ...int) {
		t.Helper()
		got := f.Successors(i)
		if len(got) != len(want) {
			t.Fatalf("Successors(%d) = %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Successors(%d) = %v, want %v", i, got, want)
			}
		}
	}
	check(0, 2, 1) // jcc target, then fallthrough
	check(1, 3)    // jmp join
	check(2, 3)    // fallthrough
	check(3)       // ret
}

func TestClone(t *testing.T) {
	f := diamond(t)
	c := f.Clone()
	c.Blocks[0].Ins[0] = isa.Nop()
	c.Blocks = append(c.Blocks[:1], c.Blocks[1:]...)
	if f.Blocks[0].Ins[0].Op == isa.NOP {
		t.Fatal("clone aliases original instructions")
	}
}

func TestFlagsLivenessStraightLine(t *testing.T) {
	f, err := NewBuilder("f").
		I(
			isa.Load(isa.RCX, isa.Mem(isa.RSI, 0)), // 0: flags dead before (cmp follows... no)
			isa.CmpRI(isa.RCX, 7),                  // 1: defines flags
			isa.Jcc(isa.CondG, "out"),              // 2: uses flags
		).
		Label("mid").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSI, 8)), // flags dead here
			isa.OrRI(isa.RAX, 0x400000),            // redefines flags
			isa.Ret(),
		).
		Label("out").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	fl := ComputeFlagsLiveness(f)
	// Before instr 0 of entry: next flags event is the cmp write -> dead.
	if fl.LiveBefore(0, 0) {
		t.Error("flags must be dead before the load (cmp redefines them)")
	}
	// Before the jcc: live (jcc reads).
	if !fl.LiveBefore(0, 2) {
		t.Error("flags must be live before jcc")
	}
	// Between cmp and jcc: inserting a flags-clobber there would break the
	// branch, so flags are live there too.
	if !fl.LiveBefore(0, 2) || !fl.LiveBefore(0, 1) == false {
		// LiveBefore(0,1): from the cmp onward, first event is the cmp
		// write -> dead before the cmp itself.
		t.Error("liveness before cmp computed incorrectly")
	}
	// In "mid" before the load: the or redefines flags -> dead.
	if fl.LiveBefore(1, 0) {
		t.Error("flags must be dead at start of mid block")
	}
}

func TestFlagsLivenessAcrossBlocks(t *testing.T) {
	// entry: cmp; (fallthrough) mid: load; jcc -> the jcc in mid reads the
	// flags set in entry, so flags are live-in at mid and live after the
	// cmp in entry.
	f, err := NewBuilder("g").
		I(isa.CmpRI(isa.RAX, 0)).
		Label("mid").
		I(
			isa.Load(isa.RCX, isa.Mem(isa.RSI, 0)),
			isa.Jcc(isa.CondE, "mid"),
		).
		Label("done").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	fl := ComputeFlagsLiveness(f)
	if !fl.LiveBefore(1, 0) {
		t.Error("flags live-in at mid (jcc reads them)")
	}
	// Inserting an RC before the load in mid would clobber live flags, so
	// that insertion point needs pushfq/popfq.
	if !fl.LiveBefore(1, 0) {
		t.Error("RC before load in mid must preserve flags")
	}
	// Before entry's cmp the flags are dead (cmp writes them).
	if fl.LiveBefore(0, 0) {
		t.Error("flags dead before entry cmp")
	}
}

func TestFlagsLivenessCallClobbers(t *testing.T) {
	f, err := NewBuilder("h").
		I(
			isa.CmpRI(isa.RAX, 0),
			isa.Call("helper"), // clobbers flags
			isa.Jcc(isa.CondE, "entry"),
		).
		Label("done").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	fl := ComputeFlagsLiveness(f)
	// Before the call: the next flags event along the path is the call
	// clobber, so flags are dead (the jcc after the call reads *post-call*
	// flags — nonsensical code, but the analysis must be consistent).
	if fl.LiveBefore(0, 1) {
		t.Error("flags dead before call (call clobbers)")
	}
}

func TestDominators(t *testing.T) {
	f := diamond(t)
	dom := Dominators(f)
	// Entry dominates everything.
	for i := range f.Blocks {
		if !dom[i][0] {
			t.Errorf("entry must dominate block %d", i)
		}
	}
	// Neither branch arm dominates the join.
	if dom[3][1] || dom[3][2] {
		t.Error("branch arms must not dominate join")
	}
	// Every block dominates itself.
	for i := range f.Blocks {
		if !dom[i][i] {
			t.Errorf("block %d must dominate itself", i)
		}
	}
}

func TestReachableBetween(t *testing.T) {
	f := diamond(t)
	if !ReachableBetween(f, 0, 3) {
		t.Error("join reachable from entry")
	}
	if ReachableBetween(f, 1, 2) {
		t.Error("right arm not reachable from left arm")
	}
	if !ReachableBetween(f, 0, 1) || !ReachableBetween(f, 0, 2) {
		t.Error("arms reachable from entry")
	}
}

func TestProgramValidate(t *testing.T) {
	f := diamond(t)
	p := &Program{
		Funcs:  []*Function{f},
		Data:   []DataSym{{Name: "tbl", Bytes: []byte{1, 2}}},
		Rodata: []DataSym{{Name: "msg", Bytes: []byte("hi")}},
		BSS:    []BSSSym{{Name: "buf", Size: 64}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Data = append(p.Data, DataSym{Name: "diamond"})
	if err := p.Validate(); err == nil {
		t.Error("duplicate symbol must be rejected")
	}
	if p.Func("diamond") != f || p.Func("nope") != nil {
		t.Error("Func lookup broken")
	}
	c := p.Clone()
	c.Funcs[0].Blocks[0].Ins[0] = isa.Nop()
	if f.Blocks[0].Ins[0].Op == isa.NOP {
		t.Error("program clone aliases functions")
	}
}

func TestBuilderRelabelEmptyEntry(t *testing.T) {
	f, err := NewBuilder("x").
		Label("start").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 || f.Blocks[0].Label != "start" {
		t.Fatalf("relabel of empty entry failed: %+v", f.Blocks)
	}
}

func TestDominatorsOnLoop(t *testing.T) {
	// entry -> head -> body -> head (back edge); head -> exit.
	f, err := NewBuilder("loop").
		I(isa.XorRR(isa.RAX, isa.RAX)).
		Label("head").
		I(isa.CmpRI(isa.RAX, 10), isa.Jcc(isa.CondAE, "exit")).
		Label("body").
		I(isa.Inc(isa.RAX), isa.Jmp("head")).
		Label("exit").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	dom := Dominators(f)
	head, body, exit := f.BlockIndex("head"), f.BlockIndex("body"), f.BlockIndex("exit")
	if !dom[body][head] || !dom[exit][head] {
		t.Error("loop head must dominate body and exit")
	}
	if dom[exit][body] {
		t.Error("loop body must not dominate the exit")
	}
	if dom[head][body] {
		t.Error("back edge must not make the body dominate the head")
	}
}
