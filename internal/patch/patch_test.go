package patch

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/module"
	"repro/internal/sfi"
)

func fullKRX() core.Config {
	return core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 61}
}

func boot(t *testing.T, cfg core.Config) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestTextPokeThroughTemporaryAlias(t *testing.T) {
	k := boot(t, fullKRX())
	addr := k.Sym("_text") + 128
	orig, err := ReadText(k, addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := TextPoke(k, addr, []byte{0x90, 0x90, 0x90, 0x90}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(k, addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x90, 0x90, 0x90, 0x90}) {
		t.Fatalf("poke not visible: % x", got)
	}
	// The scratch alias is gone; the text mapping stays execute-only
	// (instrumented reads still blocked).
	r := k.Syscall(kernel.SysLeak, addr)
	if !k.Violated(r) {
		t.Fatal("text must stay unreadable after poking")
	}
	if err := TextPoke(k, addr, orig); err != nil {
		t.Fatal(err)
	}
}

func TestTextPokeCrossPage(t *testing.T) {
	k := boot(t, fullKRX())
	// Straddle a page boundary inside .text.
	addr := (k.Sym("_text") + 4096*2) - 2
	if err := TextPoke(k, addr, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(k, addr, 4)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("cross-page poke: %v % x", err, got)
	}
}

func TestProbeInstallRemove(t *testing.T) {
	k := boot(t, fullKRX())
	orig, addr, err := InstallProbe(k, "sys_getpid")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ReadText(k, addr, 1)
	if b[0] != 0xCC {
		t.Fatal("probe byte not planted")
	}
	// Hitting the probe in kernel mode traps (#BP).
	r := k.Syscall(kernel.SysGetpid)
	if !r.Failed || r.Run.Trap == nil || r.Run.Trap.Kind != cpu.TrapBreakpoint {
		t.Fatalf("probe must trap: %v %v", r.Run.Reason, r.Run.Trap)
	}
	if err := RemoveProbe(k, addr, orig); err != nil {
		t.Fatal(err)
	}
	if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 1 {
		t.Fatalf("probe removal broken: %v ret=%d", r.Run.Reason, r.Ret)
	}
}

// TestLivepatchClosesEscalation is the marquee scenario: a vulnerable
// kernel function (do_set_uid escalates to any uid) is live-patched with a
// fixed version delivered as a module, closing the hijack channel without
// a reboot — all while kR^X protections stay intact.
func TestLivepatchClosesEscalation(t *testing.T) {
	k := boot(t, fullKRX())

	// The fixed function: refuse uid 0, clamp to 1000.
	fixed, err := ir.NewBuilder("do_set_uid_v2").
		I(
			isa.CmpRI(isa.RDI, 0),
			isa.Jcc(isa.CondNE, "ok"),
			isa.MovRI(isa.RDI, 1000),
		).
		Label("ok").
		I(
			isa.MovSym(isa.R8, "cred"),
			isa.Store(isa.Mem(isa.R8, 0), isa.RDI),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	loader := module.NewLoader(k)
	m, err := loader.Load(&module.Object{
		Name: "cred-fix",
		Prog: &ir.Program{Funcs: []*ir.Function{fixed}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before the patch: host-addressed hijack escalates to uid 0.
	a := &attack.Attacker{K: k}
	a.Hijack(k.Sym("do_set_uid"), 0)
	if a.UID() != 0 {
		t.Fatal("pre-patch hijack should escalate (residual channel)")
	}
	// Reset the cred.
	a.Hijack(k.Sym("do_set_uid"), 1000)

	revert, err := Livepatch(k, "do_set_uid", m.Symbols["do_set_uid_v2"])
	if err != nil {
		t.Fatal(err)
	}
	// After the patch: the same hijack lands in v2, which refuses uid 0.
	a.Hijack(k.Sym("do_set_uid"), 0)
	if a.UID() == 0 {
		t.Fatal("live patch failed to close the escalation")
	}
	if a.UID() != 1000 {
		t.Fatalf("uid = %d, want clamped 1000", a.UID())
	}
	// Revert restores the original behaviour.
	if err := Revert(k, "do_set_uid", revert); err != nil {
		t.Fatal(err)
	}
	a.Hijack(k.Sym("do_set_uid"), 0)
	if a.UID() != 0 {
		t.Fatal("revert failed")
	}
}

func TestLivepatchUnknownFunction(t *testing.T) {
	k := boot(t, core.Vanilla)
	if _, err := Livepatch(k, "nope", 0x1000); err == nil {
		t.Fatal("unknown function must fail")
	}
	if err := Revert(k, "nope", []byte{0x90}); err == nil {
		t.Fatal("revert of unknown function must fail")
	}
}
