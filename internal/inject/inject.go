// Package inject is a deterministic fault-injection layer for the emulated
// machine. Attached to a running CPU, it perturbs the system at seeded,
// replayable points: flipping bytes in mapped data pages, revoking or
// altering page permissions mid-run, corrupting MPX bound registers,
// clobbering xkey slots, and forcing spurious traps. Every decision flows
// from a single seeded PRNG sampled at fixed instruction strides, so a given
// (seed, workload) pair always produces the same fault sequence — the
// property that makes fuzzer crashes reproducible and lets the robustness
// harness assert that the same seed yields the same crash bucket.
package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Plan configures an injection campaign. Probabilities are evaluated once
// per opportunity (every Every executed instructions), independently per
// fault class, in a fixed order; zero values disable a class.
type Plan struct {
	// Seed drives every injection decision. Two runs of the same workload
	// under the same seed inject identical faults at identical points.
	Seed int64

	// Every is the instruction stride between injection opportunities
	// (default 512).
	Every uint64

	// MaxFaults caps the number of injected faults per attachment
	// (default 16; negative means unlimited).
	MaxFaults int

	// ByteFlip is the per-opportunity probability of flipping one random
	// bit of one random byte in a mapped target page (memory corruption).
	ByteFlip float64
	// PermFlip is the probability of rewriting a random target page's
	// permissions to a random value among {---, r--, rw-} (a corrupted
	// page-table entry).
	PermFlip float64
	// BndCorrupt is the probability of loading a random MPX bound register
	// with garbage bounds.
	BndCorrupt float64
	// KeyClobber is the probability of overwriting one xkey slot with a
	// random value (desynchronizing return-address encryption).
	KeyClobber float64
	// SpuriousTrap is the probability of forcing an unprovoked exception
	// (#PF, #BR, #UD, or #GP) before the next instruction.
	SpuriousTrap float64
}

// DefaultPlan returns a moderate all-classes campaign for the given seed.
func DefaultPlan(seed int64) Plan {
	return Plan{
		Seed:         seed,
		Every:        512,
		MaxFaults:    16,
		ByteFlip:     0.05,
		PermFlip:     0.02,
		BndCorrupt:   0.02,
		KeyClobber:   0.02,
		SpuriousTrap: 0.02,
	}
}

// Range is a half-open virtual address interval [Start, End).
type Range struct {
	Start, End uint64
}

// Targets names the memory the injector may perturb. Data ranges are
// candidates for byte flips and permission flips; KeyAddrs are the xkey
// slots. Callers must supply deterministic ordering (no map iteration).
type Targets struct {
	Data     []Range
	KeyAddrs []uint64
}

// Event records one injected fault, for triage and replay verification.
type Event struct {
	Instr uint64 // cumulative CPU instruction count at injection time
	Kind  string // "byte-flip", "perm-flip", "bnd-corrupt", "key-clobber", "spurious-trap"
	Addr  uint64 // affected address (0 when not applicable)
	Note  string
}

func (e Event) String() string {
	return fmt.Sprintf("@%d %s addr=%#x %s", e.Instr, e.Kind, e.Addr, e.Note)
}

// Injector drives one campaign over one CPU. It is a cpu.ExecProbe:
// attaching installs it on the CPU's probe list, so injection points are
// tied to the instruction stream — not wall-clock or scheduling noise —
// and it composes with any other installed observer (coverage bitmaps,
// profilers, tracers) without hook chaining.
type Injector struct {
	plan    Plan
	rng     *rand.Rand
	c       *cpu.CPU
	as      *mem.AddressSpace
	targets Targets

	// Events is the log of injected faults, in injection order.
	Events []Event

	// Sink, when set, receives each injected fault as it is logged — the
	// bridge into the observability tracer (obs.EvFault events).
	Sink func(e Event)

	since uint64 // instructions since the last opportunity
}

// New creates an injector for the plan. Zero-valued stride and cap take
// their defaults.
func New(plan Plan) *Injector {
	if plan.Every == 0 {
		plan.Every = 512
	}
	if plan.MaxFaults == 0 {
		plan.MaxFaults = 16
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Attach installs the injector as an execution probe on the CPU. Probes
// dispatch in installation order, so observers installed earlier (e.g. the
// fuzzer's coverage bitmap) still see each instruction before the injection
// logic runs — the same ordering the old OnExec chaining provided.
func (inj *Injector) Attach(c *cpu.CPU, as *mem.AddressSpace, t Targets) {
	inj.c, inj.as, inj.targets = c, as, t
	c.AddProbe(inj)
}

// OnExec implements cpu.ExecProbe: every Plan.Every instructions, one
// injection opportunity.
func (inj *Injector) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	inj.since++
	if inj.since < inj.plan.Every {
		return
	}
	inj.since = 0
	inj.opportunity(rip)
}

// Detach uninstalls the injector's probe.
func (inj *Injector) Detach() {
	if inj.c != nil {
		inj.c.RemoveProbe(inj)
	}
	inj.c = nil
}

// Fired reports whether any fault has been injected so far.
func (inj *Injector) Fired() bool { return len(inj.Events) > 0 }

func (inj *Injector) budgetLeft() bool {
	return inj.plan.MaxFaults < 0 || len(inj.Events) < inj.plan.MaxFaults
}

// opportunity evaluates every fault class once, in fixed order. Each class
// always consumes the same number of PRNG draws whether or not it fires, so
// the decision stream is independent of prior outcomes — the replay
// guarantee.
func (inj *Injector) opportunity(rip uint64) {
	p := inj.plan
	fire := [5]bool{
		inj.rng.Float64() < p.ByteFlip,
		inj.rng.Float64() < p.PermFlip,
		inj.rng.Float64() < p.BndCorrupt,
		inj.rng.Float64() < p.KeyClobber,
		inj.rng.Float64() < p.SpuriousTrap,
	}
	if fire[0] && inj.budgetLeft() {
		inj.byteFlip()
	}
	if fire[1] && inj.budgetLeft() {
		inj.permFlip()
	}
	if fire[2] && inj.budgetLeft() {
		inj.bndCorrupt()
	}
	if fire[3] && inj.budgetLeft() {
		inj.keyClobber()
	}
	if fire[4] && inj.budgetLeft() {
		inj.spuriousTrap(rip)
	}
}

func (inj *Injector) log(kind string, addr uint64, note string) {
	e := Event{Instr: inj.c.Instrs, Kind: kind, Addr: addr, Note: note}
	inj.Events = append(inj.Events, e)
	if inj.Sink != nil {
		inj.Sink(e)
	}
}

// pickAddr draws a uniform address from the target data ranges.
func (inj *Injector) pickAddr() (uint64, bool) {
	if len(inj.targets.Data) == 0 {
		return 0, false
	}
	r := inj.targets.Data[inj.rng.Intn(len(inj.targets.Data))]
	if r.End <= r.Start {
		return 0, false
	}
	return r.Start + uint64(inj.rng.Int63n(int64(r.End-r.Start))), true
}

func (inj *Injector) byteFlip() {
	addr, ok := inj.pickAddr()
	bit := uint(inj.rng.Intn(8))
	if !ok {
		return
	}
	b, err := inj.as.Peek(addr, 1)
	if err != nil {
		return
	}
	flipped := b[0] ^ (1 << bit)
	if err := inj.as.Poke(addr, []byte{flipped}); err != nil {
		return
	}
	inj.log("byte-flip", addr, fmt.Sprintf("bit %d: %#02x -> %#02x", bit, b[0], flipped))
}

func (inj *Injector) permFlip() {
	addr, ok := inj.pickAddr()
	perms := []mem.Perm{0, mem.PermR, mem.PermRW}
	perm := perms[inj.rng.Intn(len(perms))]
	if !ok {
		return
	}
	page := addr &^ uint64(mem.PageMask)
	old, mapped := inj.as.PermAt(page)
	if !mapped {
		return
	}
	if err := inj.as.Protect(page, 1, perm); err != nil {
		return
	}
	inj.log("perm-flip", page, fmt.Sprintf("%s -> %s", old, perm))
}

func (inj *Injector) bndCorrupt() {
	i := inj.rng.Intn(isa.NumBnd)
	lb, ub := inj.rng.Uint64(), inj.rng.Uint64()
	inj.c.Bnd[i] = cpu.Bound{LB: lb, UB: ub}
	inj.log("bnd-corrupt", 0, fmt.Sprintf("bnd%d = [%#x, %#x]", i, lb, ub))
}

func (inj *Injector) keyClobber() {
	if len(inj.targets.KeyAddrs) == 0 {
		// Burn the draws a firing clobber would use, keeping the PRNG
		// stream aligned across kernels with and without xkeys.
		inj.rng.Uint64()
		return
	}
	addr := inj.targets.KeyAddrs[inj.rng.Intn(len(inj.targets.KeyAddrs))]
	v := inj.rng.Uint64() | 1
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	if err := inj.as.Poke(addr, b[:]); err != nil {
		return
	}
	inj.log("key-clobber", addr, fmt.Sprintf("= %#x", v))
}

var trapKinds = []cpu.TrapKind{
	cpu.TrapPageFault, cpu.TrapBoundRange, cpu.TrapUndefined, cpu.TrapProtection,
}

func (inj *Injector) spuriousTrap(rip uint64) {
	kind := trapKinds[inj.rng.Intn(len(trapKinds))]
	inj.c.Pending = &cpu.Trap{Kind: kind, Addr: rip, RIP: rip, Mode: inj.c.Mode}
	inj.log("spurious-trap", rip, kind.String())
}
