package kernel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
)

// countingProbe counts OnExec callbacks (boot-option plumbing test double).
type countingProbe struct {
	execs  int
	cycles uint64
}

func (p *countingProbe) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	p.execs++
	p.cycles += cycles
}

func TestBootOptionConflicts(t *testing.T) {
	prog, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(prog, core.Vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Boot(core.Vanilla, WithImage(res), WithCache()); err == nil {
		t.Error("WithImage+WithCache: want error")
	}
	if _, err := Boot(core.Vanilla, WithImage(res), WithProgram(prog)); err == nil {
		t.Error("WithImage+WithProgram: want error")
	}
	if _, err := Boot(core.Vanilla, WithCache(), WithProgram(prog)); err == nil {
		t.Error("WithCache+WithProgram: want error")
	}
}

// TestBootOptionSourcesEquivalent: the three image sources (fresh compile,
// cached compile, pre-built image) produce kernels that execute
// identically.
func TestBootOptionSourcesEquivalent(t *testing.T) {
	cfg := core.Config{XOM: core.XOMSFI, Seed: 3}
	prog, err := sharedCorpus()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boots := map[string][]BootOption{
		"default":   nil,
		"WithCache": {WithCache()},
		"WithImage": {WithImage(res)},
	}
	type outcome struct {
		ret    uint64
		cycles uint64
	}
	var want *outcome
	for name, opts := range boots {
		k, err := Boot(cfg, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := k.Syscall(SysGetpid)
		if r.Failed {
			t.Fatalf("%s: getpid failed: %v", name, r.Run.Reason)
		}
		got := &outcome{ret: r.Ret, cycles: k.CPU.Cycles}
		if want == nil {
			want = got
		} else if *got != *want {
			t.Errorf("%s: outcome %+v, want %+v", name, got, want)
		}
	}
}

func TestBootWithProbes(t *testing.T) {
	p := &countingProbe{}
	k, err := Boot(core.Vanilla, WithCache(), WithProbes(p))
	if err != nil {
		t.Fatal(err)
	}
	r := k.Syscall(SysNull)
	if r.Failed {
		t.Fatalf("sys_null failed: %v", r.Run.Reason)
	}
	if uint64(p.execs) != k.CPU.Instrs || p.cycles != k.CPU.Cycles {
		t.Errorf("probe saw %d instrs / %d cycles, CPU %d / %d",
			p.execs, p.cycles, k.CPU.Instrs, k.CPU.Cycles)
	}
}

func TestBootWithTracer(t *testing.T) {
	tr := obs.NewTracer(0)
	k, err := Boot(core.Vanilla, WithCache(), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	snap := k.Snapshot()
	k.Syscall(SysGetpid)
	if err := k.Restore(snap); err != nil {
		t.Fatal(err)
	}
	text := obs.TraceText(tr.Events())
	for _, want := range []string{"snapshot", "syscall-enter sys_getpid", "syscall-exit sys_getpid", "restore"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q:\n%s", want, text)
		}
	}
	// A user-mode fault must surface as a trap event via the CPU hook.
	tr.Reset()
	k.TriggerFault(0xdead0000)
	if !strings.Contains(obs.TraceText(tr.Events()), "trap #PF") {
		t.Errorf("trace missing trap event:\n%s", obs.TraceText(tr.Events()))
	}
}
