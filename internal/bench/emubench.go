// Emulator host-performance benchmarks: unlike every other measurement in
// this package (which reports emulated cycles — numbers the decode cache is
// forbidden to change), these measure host wall-clock of the emulator
// itself, with the predecoded translation cache on and off. Each workload
// runs both ways and the harness asserts the emulated cycle totals are
// identical — the cache's bit-identical-semantics invariant — before
// reporting the speedup.

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/kernel"
)

// EmuResult is one workload measured with the decode cache on and off.
// Cycles is the emulated total over the timed iterations; it is asserted
// equal in both modes, so a single field suffices.
type EmuResult struct {
	Name      string  `json:"name"`
	Iters     int     `json:"iters"`
	HostNsOn  int64   `json:"host_ns_per_op_cache_on"`
	HostNsOff int64   `json:"host_ns_per_op_cache_off"`
	Speedup   float64 `json:"speedup"`
	Cycles    uint64  `json:"emulated_cycles"`
}

// EmuSchemaVersion identifies the JSON layout of EmuReport. Bump it on any
// field change so downstream consumers can detect the format.
const EmuSchemaVersion = 2

// EmuReport is the machine-readable emulator benchmark baseline
// (BENCH_emulator.json).
type EmuReport struct {
	Schema        string      `json:"schema"`
	SchemaVersion int         `json:"schema_version"`
	GoOS          string      `json:"goos"`
	GoArch        string      `json:"goarch"`
	Results       []EmuResult `json:"results"`
}

// JSON renders the report for the BENCH_emulator.json trajectory file.
func (r *EmuReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// emuWorkload builds a closure that executes one unit of emulated work and
// returns its cycle cost. make is called once per cache mode, so each mode
// gets a fresh kernel and an identical iteration sequence.
type emuWorkload struct {
	name string
	make func(cacheOn bool) (func() (uint64, error), error)
}

// RunTable1Suite executes every Table 1 micro-op once against k and returns
// the total emulated cycles (the per-op suite BenchmarkTable1 sweeps; also
// the workload krxbench traces and profiles).
func RunTable1Suite(k *kernel.Kernel) (uint64, error) {
	var total uint64
	for _, op := range MicroOps() {
		for fd := uint64(0); fd < 64; fd++ {
			k.Syscall(kernel.SysClose, fd)
		}
		if op.Setup != nil {
			if err := op.Setup(k); err != nil {
				return 0, fmt.Errorf("%s: %w", op.Name, err)
			}
		}
		c, err := op.Run(k)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", op.Name, err)
		}
		total += c
	}
	return total, nil
}

func table1Workload(cfg core.Config) emuWorkload {
	return emuWorkload{
		name: "table1-suite/" + cfg.Name(),
		make: func(cacheOn bool) (func() (uint64, error), error) {
			k, err := kernel.Boot(cfg, kernel.WithCache())
			if err != nil {
				return nil, err
			}
			k.CPU.SetDecodeCache(cacheOn)
			return func() (uint64, error) { return RunTable1Suite(k) }, nil
		},
	}
}

func fuzzWorkload(cfg core.Config, seed int64) emuWorkload {
	return emuWorkload{
		name: "fuzz-iteration/" + cfg.Name(),
		make: func(cacheOn bool) (func() (uint64, error), error) {
			f, err := fuzz.New(fuzz.Options{Iters: 1, Seed: seed, Config: cfg, Workers: 1})
			if err != nil {
				return nil, err
			}
			f.Kernel().CPU.SetDecodeCache(cacheOn)
			// The iteration counter restarts per mode, so both modes execute
			// the identical (seed, i)-derived program sequence.
			i := 0
			return func() (uint64, error) {
				c, err := f.ExecIteration(i)
				i++
				return c, err
			}, nil
		},
	}
}

// measureEmu times one workload in both cache modes and enforces the
// bit-identical-cycles invariant.
func measureEmu(w emuWorkload, iters int) (EmuResult, error) {
	res := EmuResult{Name: w.name, Iters: iters}
	var cycles [2]uint64
	var host [2]time.Duration
	for m, on := range []bool{true, false} {
		run, err := w.make(on)
		if err != nil {
			return res, fmt.Errorf("bench: %s: %w", w.name, err)
		}
		if _, err := run(); err != nil { // warmup (populates the cache)
			return res, fmt.Errorf("bench: %s: %w", w.name, err)
		}
		start := time.Now()
		for n := 0; n < iters; n++ {
			c, err := run()
			if err != nil {
				return res, fmt.Errorf("bench: %s: %w", w.name, err)
			}
			cycles[m] += c
		}
		host[m] = time.Since(start)
	}
	if cycles[0] != cycles[1] {
		return res, fmt.Errorf("bench: %s: emulated cycles diverge with cache on/off: %d vs %d",
			w.name, cycles[0], cycles[1])
	}
	res.Cycles = cycles[0]
	res.HostNsOn = host[0].Nanoseconds() / int64(iters)
	res.HostNsOff = host[1].Nanoseconds() / int64(iters)
	if res.HostNsOn > 0 {
		res.Speedup = float64(res.HostNsOff) / float64(res.HostNsOn)
	}
	return res, nil
}

// EmuBench measures the emulator's host performance with the decode cache
// on and off: the Table 1 micro-op suite under vanilla and a fully
// protected column, and a fuzzing iteration (restore + program execution).
func EmuBench(iters int) (*EmuReport, error) {
	if iters <= 0 {
		iters = 20
	}
	presets := core.Presets()
	full := presets[len(presets)-1] // the most protected preset column
	workloads := []emuWorkload{
		table1Workload(core.Vanilla),
		table1Workload(full),
		fuzzWorkload(core.Vanilla, 42),
		fuzzWorkload(full, 42),
	}
	rep := &EmuReport{
		Schema:        "krx-emubench",
		SchemaVersion: EmuSchemaVersion,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
	}
	for _, w := range workloads {
		r, err := measureEmu(w, iters)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// DecodeCacheReport formats a kernel CPU's decode-cache statistics — the
// observability line krxstats prints after the invariant audit.
func DecodeCacheReport(k *kernel.Kernel) string {
	if !k.CPU.DecodeCacheEnabled() {
		return "decode-cache: disabled"
	}
	s := k.CPU.DecodeCacheStats()
	return fmt.Sprintf(
		"decode-cache: pages=%d entries=%d hits=%d misses=%d decoded=%d invalidations=%d remaps=%d",
		s.Pages, s.Entries, s.Hits, s.Misses, s.Decoded, s.Invalidations, s.Remaps)
}
