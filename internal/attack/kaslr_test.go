package attack

import (
	"testing"

	"repro/internal/core"
)

func TestKernelBaseActuallySlides(t *testing.T) {
	a := boot(t, core.Config{KASLR: true, Seed: 501})
	b := boot(t, core.Config{KASLR: true, Seed: 502})
	if a.Sym("_text") == b.Sym("_text") {
		t.Fatal("different seeds must yield different slides (w.h.p.)")
	}
	if a.Sym("_text") < 0xffffffff80000000 {
		t.Fatalf("slide went backwards: %#x", a.Sym("_text"))
	}
	// And the slid kernel works.
	if r := a.Syscall(0); r.Failed {
		t.Fatalf("slid kernel broken: %v", r.Run.Reason)
	}
}

func TestCoarseKASLRFallsToOneLeak(t *testing.T) {
	// §1: "code diversification can be circumvented by leveraging memory
	// disclosure vulnerabilities" — for base randomization, one pointer
	// is enough.
	target := boot(t, core.Config{KASLR: true, Seed: 503})
	ref := boot(t, core.Config{KASLR: true, Seed: 604})
	r := CoarseKASLRBypass(target, ref)
	if !r.Success {
		t.Fatalf("coarse KASLR must fall to a single pointer leak: %v", r)
	}
}

func TestFineGrainedSurvivesTheSameLeak(t *testing.T) {
	// The identical attack against coarse+fine-grained KASLR: the slide is
	// recovered just as easily, but the rebased chain points at shuffled
	// code.
	target := boot(t, core.Config{KASLR: true, Diversify: true, Seed: 505})
	ref := boot(t, core.Config{KASLR: true, Diversify: true, Seed: 606})
	r := CoarseKASLRBypass(target, ref)
	if r.Success {
		t.Fatalf("fine-grained KASLR must survive the slide recovery: %v", r)
	}
}
