package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// The basic-block superblock engine.
//
// The decode cache (dcache.go) removed per-instruction decode cost, but the
// Run loop still paid a full dispatch per instruction: a decode-cache lookup
// (TLB slot, map-generation compare, frame-generation compare, index load),
// the fetch privilege checks, the limit check, and the probe check. Classic
// DBT systems (QEMU's translation-block chaining, Embra's fast paths)
// amortize that dispatch over straight-line regions; this engine does the
// same on top of the cached decodes.
//
// A block is a maximal run of consecutively cached instructions on one page,
// ending at (and including) the first terminator: any control transfer
// (jmp/jcc/call/ret/iret/syscall/sysret), a trapping or serializing
// instruction (hlt/int3/ud2), or a string operation (whose REP cost is
// dynamic — the static per-block cost precomputation cannot cover it).
// Formation also stops short of a cached deterministic-#UD slot and at the
// page-tail boundary (offsets the decode cache leaves undecided), so every
// entry in a block is a fully decoded instruction of this frame's bytes.
//
// Validation is hoisted to block granularity: the page's frame is resolved
// and its MapGen/Frame.Gen generations are checked ONCE at block entry (by
// blockLookup, through the same resolve path the per-instruction cache
// uses), and the block then executes in a tight loop with no per-instruction
// lookups. Three things make that sound:
//
//   - Control flow cannot leave the block silently: every instruction that
//     can set RIP anywhere but the next sequential address is a terminator,
//     so entry k+1 is always the instruction at entry k's end.
//
//   - The privilege mode cannot change mid-block: mode switches happen only
//     in terminators (syscall/sysret/iret) or through trap delivery, which
//     exits the block. The fetch privilege checks (user/upper-half, SMEP)
//     done once at block entry therefore hold for every instruction in it.
//
//   - Self-modification cannot outrun invalidation: after every instruction
//     that can store to memory (flagged dcStore at decode time), the frame
//     generation is re-checked; a mismatch means the block just overwrote
//     its own page, so execution aborts back to the dispatch loop, whose
//     next lookup flushes and redecodes. Stores to *other* pages need no
//     mid-block check — their cached blocks revalidate at next entry.
//
// Accounting stays per-instruction (Instrs++/Cycles+=cost before each
// exec), not per-block: a mid-block trap must observe exactly the counter
// state the single-step path would, or the bit-identical invariant breaks.
// The precomputed block cost and count feed the limit guard and the stats.

// BlockStats reports superblock-engine behaviour for one CPU.
type BlockStats struct {
	Formed     uint64 // blocks ever formed (cumulative, survives flushes)
	Dispatches uint64 // block executions entered via the Run fast path
	Instrs     uint64 // instructions executed inside dispatched blocks
	Aborts     uint64 // mid-block self-modification resyncs
	Blocks     uint64 // blocks currently live in the cache
}

// Entry flag bits, computed once at decode time (dcache.fill).
const (
	// dcEnd marks a block terminator: control transfer, trapping or
	// serializing instruction, or a dynamic-cost string operation.
	dcEnd uint8 = 1 << iota
	// dcStore marks an instruction that can write memory on the straight-
	// line path (isa.Instr.WritesMemory minus the string ops, which are
	// terminators, plus the implicit stack/bound-table stores it excludes).
	dcStore
)

// entryFlags classifies one decoded instruction for block formation.
func entryFlags(op isa.Opcode) uint8 {
	switch op {
	case isa.JMP, isa.JMPR, isa.JMPM, isa.JCC,
		isa.CALL, isa.CALLR, isa.CALLM,
		isa.RET, isa.RETI, isa.IRET,
		isa.SYSCALL, isa.SYSRET,
		isa.HLT, isa.INT3, isa.UD2,
		isa.MOVS, isa.STOS, isa.LODS, isa.CMPS, isa.SCAS:
		return dcEnd
	case isa.MOVmr, isa.MOVmi, isa.XORmr, isa.PUSH, isa.PUSHFQ, isa.BNDSTX:
		return dcStore
	}
	return 0
}

// blkEnt is one instruction of a formed block: a dense copy of the decode
// cache's entry, laid out contiguously so the dispatch loop walks a single
// cache-friendly array instead of chasing indices into dcPage.entries.
// Copies are safe because any event that could stale the decoded form
// (frame content change, remap) flushes the page's blocks wholesale.
type blkEnt struct {
	in    isa.Instr
	cost  uint64
	ilen  uint8
	flags uint8
}

// dcBlock is one superblock: consecutive instructions of its page,
// terminator (if any) last.
type dcBlock struct {
	ents  []blkEnt
	count uint64 // len(ents): the Run fast path's limit guard
	cost  uint64 // cumulative static cycle cost of the block
}

// formBlock builds (and registers) the block starting at page offset off,
// decoding forward as needed. It returns the blkIdx value for off: >0 for
// blocks[i-1], -1 when no block can start here (a cached #UD or an
// undecidable page-tail offset — the single-step path owns those).
func (p *dcPage) formBlock(off int, dc *decodeCache) int32 {
	start := off
	var ents []blkEnt
	var cost uint64
	for off < mem.PageSize {
		i := p.idx[off]
		if i == 0 {
			dc.stats.Misses++
			p.fill(off, &dc.stats)
			i = p.idx[off]
		}
		if i <= 0 {
			// #UD slot or page-tail straddler: the block ends before it;
			// the dispatch loop falls back to Step for the offset itself.
			break
		}
		e := &p.entries[i-1]
		ents = append(ents, blkEnt{in: e.in, cost: e.cost, ilen: e.ilen, flags: e.flags})
		cost += e.cost
		if e.flags&dcEnd != 0 {
			break
		}
		off += int(e.ilen)
	}
	if len(ents) == 0 {
		p.blkIdx[start] = -1
		return -1
	}
	p.blocks = append(p.blocks, dcBlock{ents: ents, count: uint64(len(ents)), cost: cost})
	bi := int32(len(p.blocks))
	p.blkIdx[start] = bi
	dc.bstats.Formed++
	return bi
}

// blockLookup resolves rip to a formed superblock, validating the page's
// generations exactly as the per-instruction lookup does. It returns
// (nil, nil) when no block starts at rip — not executable, a cached #UD, or
// a page-tail offset — and the caller must fall back to single-step.
func (dc *decodeCache) blockLookup(as *mem.AddressSpace, rip uint64) (*dcPage, *dcBlock) {
	p := dc.resolvePage(as, rip)
	if p == nil {
		return nil, nil
	}
	off := int(rip & uint64(mem.PageMask))
	bi := p.blkIdx[off]
	if bi == 0 {
		bi = p.formBlock(off, dc)
	}
	if bi < 0 {
		return nil, nil
	}
	return p, &p.blocks[bi-1]
}

// runBlock executes one superblock in a tight loop. exec() is shared with
// Step and every instruction is charged individually, so a trap anywhere in
// the block observes exactly the Instrs/Cycles/register state the
// single-step path would have produced.
func (c *CPU) runBlock(p *dcPage, b *dcBlock) (stop StopReason, trap *Trap) {
	dc := c.dc
	fgen := p.fgen
	frame := p.frame
	var done uint64
	for i := range b.ents {
		e := &b.ents[i]
		c.Instrs++
		c.Cycles += e.cost
		done++
		stop, trap = c.exec(&e.in, c.RIP+uint64(e.ilen))
		if trap != nil || stop != StepContinue {
			break
		}
		if e.flags&dcStore != 0 && frame.Gen() != fgen {
			// The store landed on this very frame (directly or through an
			// alias): the rest of the block is stale. Resync through the
			// dispatch loop — its next lookup flushes and redecodes.
			dc.bstats.Aborts++
			break
		}
	}
	// Batched bookkeeping: each executed instruction is a decode-cache hit
	// and a block-engine instruction. Nothing inside exec reads these, so
	// deferring them off the hot loop cannot be observed mid-block.
	dc.stats.Hits += done
	dc.bstats.Instrs += done
	dc.bstats.Dispatches++
	return stop, trap
}

// SetBlockEngine enables or disables the superblock engine (on by default).
// Blocks are a pure dispatch optimization layered on the decode cache:
// disabling it reverts Run to per-instruction Step dispatch, with
// bit-identical Instrs/Cycles/traps/probe streams either way. It has no
// effect while the decode cache is off.
func (c *CPU) SetBlockEngine(on bool) {
	c.blocks = on
	if !on && c.dc != nil {
		// Drop formed blocks so Blocks/live stats read zero; the decoded
		// entries stay (they belong to the decode cache).
		for _, p := range c.dc.pages {
			p.blocks = nil
			p.blkIdx = [mem.PageSize]int32{}
		}
	}
}

// BlockEngineEnabled reports whether the superblock engine is active (it
// also requires the decode cache to be enabled to take effect).
func (c *CPU) BlockEngineEnabled() bool { return c.blocks && c.dc != nil }

// BlockStats returns a snapshot of the superblock-engine counters. Blocks
// reflects the current live footprint; the rest are cumulative.
func (c *CPU) BlockStats() BlockStats {
	if c.dc == nil {
		return BlockStats{}
	}
	s := c.dc.bstats
	for _, p := range c.dc.pages {
		s.Blocks += uint64(len(p.blocks))
	}
	return s
}
