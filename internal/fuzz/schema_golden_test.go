package fuzz

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestReportSchemaGolden pins the krxfuzz -json wire format: any field
// addition, removal, or rename changes these bytes and must come with a
// ReportSchemaVersion bump (and a regenerated golden file —
// `KRX_UPDATE_GOLDEN=1 go test ./internal/fuzz/`).
func TestReportSchemaGolden(t *testing.T) {
	prog := &Prog{Calls: []Call{{Nr: 3, Args: [3]uint64{1, 2, 0}}}}
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		Partial:       false,
		Iters:         8,
		Seed:          42,
		Config:        "Vanilla",
		Crashes: []*Crash{{
			Bucket: "#PF/sys_read",
			Count:  2,
			Iter:   3,
			Prog:   prog,
			Min:    prog,
		}},
		Cover:           100,
		Faults:          1,
		Executed:        9,
		AuditViolations: map[string]int{"wxorkx": 1},
		Trace: []obs.Event{{
			Seq: 0, Instrs: 10, Cycles: 40,
			Kind: obs.EvSyscallEnter, Name: "sys_read", Addr: 0, Arg: 3,
		}},
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report.golden.json")
	if os.Getenv("KRX_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with KRX_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON changed without a ReportSchemaVersion bump.\n got: %s\nwant: %s", got, want)
	}
}
