// Quickstart: build a kR^X-protected kernel, boot it on the emulator, and
// issue a few syscalls — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func main() {
	// Full kR^X protection: software R^X enforcement at the highest
	// optimization level, fine-grained KASLR, return-address encryption.
	cfg := core.Config{
		XOM:       core.XOMSFI,
		SFILevel:  sfi.O3,
		Diversify: true,
		RAProt:    diversify.RAEncrypt,
		Seed:      2026,
	}
	k, err := kernel.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s kernel: %d functions, %d bytes of .text, _krx_edata=%#x\n\n",
		cfg.Name(), len(k.Img.Funcs), len(k.Img.Text), k.Sym("_krx_edata"))

	// Ordinary work: open a file, write, read it back.
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		log.Fatal(err)
	}
	fd := k.Syscall(kernel.SysOpen, kernel.UserBuf)
	fmt.Printf("open(\"testfile\")      = fd %d   (%d cycles)\n", int64(fd.Ret), fd.Run.Cycles)

	if err := k.WriteUser(512, []byte("hello, kernel world!----------------------------")); err != nil {
		log.Fatal(err)
	}
	w := k.Syscall(kernel.SysWrite, fd.Ret, kernel.UserBuf+512, 48)
	fmt.Printf("write(fd, buf, 48)    = %d    (%d cycles)\n", int64(w.Ret), w.Run.Cycles)

	fd2 := k.Syscall(kernel.SysOpen, kernel.UserBuf)
	r := k.Syscall(kernel.SysRead, fd2.Ret, kernel.UserBuf+1024, 48)
	back, _ := k.ReadUser(1024, 20)
	fmt.Printf("read(fd2, buf, 48)    = %d    -> %q...\n\n", int64(r.Ret), back)

	// The R^X policy at work: data reads fine, code reads fatal.
	leak := k.Syscall(kernel.SysLeak, k.Sym("cred"))
	fmt.Printf("leak(cred)            = %#x  (data: allowed)\n", leak.Ret)
	leak = k.Syscall(kernel.SysLeak, k.Sym("_text")+64)
	fmt.Printf("leak(_text+64)        -> violation=%v (code: blocked, system halted)\n\n", k.Violated(leak))

	// Instrumentation statistics for this build.
	fmt.Println(bench.StatsReport(k))
}
