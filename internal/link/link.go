// Package link assembles IR programs into linked kernel images: it lays out
// functions into a .text section, merges per-function XOR keys into the
// contiguous .krxkeys region, places data sections, plans the address-space
// layout (vanilla or kR^X-KAS, via the kas package), resolves symbols and
// intra-function labels to rel32/imm displacements, and encodes the final
// bytes. It is also reused by the module loader-linker for .ko objects.
package link

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/mem"
)

// KeyPrefix is the symbol-name prefix of per-function return-address
// encryption keys. References to "xkey.<fn>" are collected at link time and
// materialized as 8-byte slots in the .krxkeys section (replenished with
// random values at boot/load time, never statically initialized).
const KeyPrefix = "xkey."

// FuncAlign is the alignment of function entry points. Padding bytes are
// 0xCC (int3), so falling into padding trips immediately.
const FuncAlign = 16

// FuncSym describes one placed function.
type FuncSym struct {
	Name string
	Addr uint64
	Size uint64
}

// Image is a fully linked kernel image ready to be installed into an
// address space.
type Image struct {
	Layout *kas.Layout

	Text    []byte
	Rodata  []byte
	Data    []byte
	BssSize uint64

	// Symbols maps every defined symbol (functions, data, layout symbols,
	// xkeys) to its virtual address.
	Symbols map[string]uint64
	// Funcs lists the placed functions in final (possibly permuted) order.
	Funcs []FuncSym
	// KeyAddrs maps xkey symbols to their .krxkeys slot addresses.
	KeyAddrs map[string]uint64
	// NumKeys is the number of 8-byte xkey slots in .krxkeys.
	NumKeys int
}

// FuncAddr returns the address of a function symbol.
func (img *Image) FuncAddr(name string) (uint64, bool) {
	a, ok := img.Symbols[name]
	return a, ok
}

// Options controls linking.
type Options struct {
	// Layout selects the address-space layout (kas.Vanilla or kas.KRX).
	Layout kas.Kind
	// GuardSize overrides the .krx_phantom guard size (0 = default).
	GuardSize uint64
	// Slide shifts the kernel image base upward by a page-aligned delta
	// (coarse KASLR — the standard kernel base randomization the paper
	// assumes as a baseline in §3). Must be < kas.MaxSlide.
	Slide uint64
}

// textPlan is the result of the first assembly pass: section-relative
// offsets for every function and label.
type textPlan struct {
	size    uint64
	funcOff map[string]uint64
	funcSz  map[string]uint64
	// labelOff is keyed by function name + "\x00" + label.
	labelOff map[string]uint64
	// keys lists the referenced xkey symbols in first-use order.
	keys []string
}

func labelKey(fn, label string) string { return fn + "\x00" + label }

// planText computes the layout of functions within .text.
func planText(funcs []*ir.Function) (*textPlan, error) {
	tp := &textPlan{
		funcOff:  make(map[string]uint64, len(funcs)),
		funcSz:   make(map[string]uint64, len(funcs)),
		labelOff: make(map[string]uint64),
	}
	seenKeys := make(map[string]bool)
	var off uint64
	for _, f := range funcs {
		// Align the entry point; the gap is int3 padding.
		off = (off + FuncAlign - 1) &^ uint64(FuncAlign-1)
		tp.funcOff[f.Name] = off
		start := off
		for _, b := range f.Blocks {
			tp.labelOff[labelKey(f.Name, b.Label)] = off
			for _, in := range b.Ins {
				off += uint64(in.Length())
				// Collect xkey references.
				if m := memRefOf(in); m != nil && m.Sym != "" && len(m.Sym) > len(KeyPrefix) && m.Sym[:len(KeyPrefix)] == KeyPrefix {
					if !seenKeys[m.Sym] {
						seenKeys[m.Sym] = true
						tp.keys = append(tp.keys, m.Sym)
					}
				}
			}
		}
		tp.funcSz[f.Name] = off - start
	}
	tp.size = off
	return tp, nil
}

func memRefOf(in isa.Instr) *isa.MemRef {
	switch in.Op {
	case isa.MOVrm, isa.MOVmr, isa.MOVmi, isa.LEA, isa.ADDrm, isa.SUBrm,
		isa.XORrm, isa.XORmr, isa.CMPrm, isa.CMPmi, isa.CALLM, isa.JMPM,
		isa.BNDCU, isa.BNDCL, isa.BNDMK, isa.BNDSTX, isa.BNDLDX:
		m := in.M
		return &m
	}
	return nil
}

// dataPlan lays out data symbols in a section and returns
// (offsets, total size).
func dataPlan(syms []ir.DataSym) (map[string]uint64, uint64) {
	offs := make(map[string]uint64, len(syms))
	var off uint64
	for _, d := range syms {
		align := d.Align
		if align == 0 {
			align = 8
		}
		off = (off + align - 1) &^ (align - 1)
		offs[d.Name] = off
		off += uint64(len(d.Bytes))
	}
	return offs, off
}

func bssPlan(syms []ir.BSSSym) (map[string]uint64, uint64) {
	offs := make(map[string]uint64, len(syms))
	var off uint64
	for _, d := range syms {
		align := d.Align
		if align == 0 {
			align = 8
		}
		off = (off + align - 1) &^ (align - 1)
		offs[d.Name] = off
		off += d.Size
	}
	return offs, off
}

// Link assembles and links prog into an image under the requested layout.
// The order of prog.Funcs is preserved (function permutation is performed
// upstream by the diversification pass).
func Link(prog *ir.Program, opt Options) (*Image, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	tp, err := planText(prog.Funcs)
	if err != nil {
		return nil, err
	}
	rodataOff, rodataSize := dataPlan(prog.Rodata)
	dataOff, dataSize := dataPlan(prog.Data)
	bssOff, bssSize := bssPlan(prog.BSS)

	sizes := kas.SectionSizes{
		Text:    tp.size,
		KrxKeys: uint64(len(tp.keys)) * 8,
		Rodata:  rodataSize,
		Data:    dataSize,
		Bss:     bssSize,
		Brk:     mem.PageSize,
	}
	if opt.Slide >= kas.MaxSlide || opt.Slide&uint64(mem.PageMask) != 0 {
		if opt.Slide != 0 {
			return nil, fmt.Errorf("link: invalid KASLR slide %#x", opt.Slide)
		}
	}
	var layout *kas.Layout
	switch opt.Layout {
	case kas.KRX:
		layout = kas.PlanKRXAt(sizes, kas.KernelBase+opt.Slide, opt.GuardSize)
	default:
		layout = kas.PlanVanillaAt(sizes, kas.KernelBase+opt.Slide)
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}

	img := &Image{
		Layout:   layout,
		Symbols:  make(map[string]uint64),
		KeyAddrs: make(map[string]uint64),
		NumKeys:  len(tp.keys),
		BssSize:  bssSize,
	}
	// Layout-derived symbols first.
	for name, addr := range layout.Symbols {
		img.Symbols[name] = addr
	}

	textBase := img.Symbols["_text"]
	for _, f := range prog.Funcs {
		addr := textBase + tp.funcOff[f.Name]
		img.Symbols[f.Name] = addr
		img.Funcs = append(img.Funcs, FuncSym{Name: f.Name, Addr: addr, Size: tp.funcSz[f.Name]})
	}

	// xkeys: merged into a contiguous region (.krxkeys) at link time.
	if len(tp.keys) > 0 {
		keysBase, ok := layout.Symbols["_krxkeys"]
		if !ok {
			// Vanilla layout: keys live at the end of .text.
			keysBase = textBase + ((tp.size + 7) &^ 7)
		}
		for i, k := range tp.keys {
			a := keysBase + uint64(i)*8
			img.Symbols[k] = a
			img.KeyAddrs[k] = a
		}
	}

	var rodataBase, dataBase, bssBase uint64
	if r := layout.Region(".rodata"); r != nil {
		rodataBase = r.Start
	}
	if r := layout.Region(".data"); r != nil {
		dataBase = r.Start
	}
	if r := layout.Region(".bss"); r != nil {
		bssBase = r.Start
	}
	for _, d := range prog.Rodata {
		img.Symbols[d.Name] = rodataBase + rodataOff[d.Name]
	}
	for _, d := range prog.Data {
		img.Symbols[d.Name] = dataBase + dataOff[d.Name]
	}
	for _, d := range prog.BSS {
		img.Symbols[d.Name] = bssBase + bssOff[d.Name]
	}

	// Second pass: resolve and encode.
	text := make([]byte, 0, tp.size)
	for _, f := range prog.Funcs {
		// int3 padding up to the function's aligned offset.
		for uint64(len(text)) < tp.funcOff[f.Name] {
			text = append(text, 0xCC)
		}
		enc, err := encodeFunc(f, textBase, tp, img.Symbols)
		if err != nil {
			return nil, err
		}
		text = append(text, enc...)
	}
	img.Text = text

	img.Rodata = make([]byte, rodataSize)
	for _, d := range prog.Rodata {
		copy(img.Rodata[rodataOff[d.Name]:], d.Bytes)
	}
	img.Data = make([]byte, dataSize)
	for _, d := range prog.Data {
		copy(img.Data[dataOff[d.Name]:], d.Bytes)
	}
	// Data sections may contain absolute pointers to symbols: apply data
	// relocations.
	for _, rel := range prog.DataRelocs() {
		target, ok := img.Symbols[rel.Sym]
		if !ok {
			return nil, fmt.Errorf("link: data relocation against undefined symbol %q", rel.Sym)
		}
		base, section := dataOff, img.Data
		if rel.Rodata {
			base, section = rodataOff, img.Rodata
		}
		off := base[rel.In] + rel.Off
		v := target + rel.Addend
		for i := 0; i < 8; i++ {
			section[off+uint64(i)] = byte(v >> (8 * i))
		}
	}
	return img, nil
}

// signExt32OK reports whether v is representable as a sign-extended 32-bit
// immediate (the -mcmodel=kernel constraint: the kernel lives in the
// negative 2GB so _krx_edata-style immediates fit).
func signExt32OK(v uint64) bool {
	return uint64(int64(int32(uint32(v)))) == v
}

func encodeFunc(f *ir.Function, textBase uint64, tp *textPlan, syms map[string]uint64) ([]byte, error) {
	resolveTarget := func(in isa.Instr) (uint64, error) {
		if in.Label != "" {
			off, ok := tp.labelOff[labelKey(f.Name, in.Label)]
			if !ok {
				return 0, fmt.Errorf("link: %s: undefined label %q", f.Name, in.Label)
			}
			return textBase + off, nil
		}
		addr, ok := syms[in.Sym]
		if !ok {
			return 0, fmt.Errorf("link: %s: undefined symbol %q", f.Name, in.Sym)
		}
		return addr, nil
	}

	var out []byte
	pc := textBase + tp.funcOff[f.Name]
	for _, b := range f.Blocks {
		for _, in := range b.Ins {
			next := pc + uint64(in.Length())
			r := in // resolved copy
			switch {
			case in.Op == isa.JMP || in.Op == isa.JCC || in.Op == isa.CALL:
				if in.Label != "" || in.Sym != "" {
					t, err := resolveTarget(in)
					if err != nil {
						return nil, err
					}
					rel := int64(t) - int64(next)
					if rel > 1<<31-1 || rel < -(1<<31) {
						return nil, fmt.Errorf("link: %s: rel32 overflow to %q", f.Name, in.Label+in.Sym)
					}
					r.Imm = rel
					r.Label, r.Sym = "", ""
				}
			case in.TripSym != "":
				off, ok := tp.labelOff[labelKey(f.Name, in.TripSym)]
				if !ok {
					return nil, fmt.Errorf("link: %s: undefined tripwire label %q", f.Name, in.TripSym)
				}
				r.Imm = int64(textBase + off + uint64(in.TripOff))
				r.TripSym = ""
			case in.Sym != "" && in.Op == isa.MOVri:
				addr, ok := syms[in.Sym]
				if !ok {
					return nil, fmt.Errorf("link: %s: undefined symbol %q", f.Name, in.Sym)
				}
				r.Imm = int64(addr) + in.Imm
				r.Sym = ""
			case in.Sym != "" && (in.Op == isa.CMPri || in.Op == isa.ADDri || in.Op == isa.SUBri):
				addr, ok := syms[in.Sym]
				if !ok {
					return nil, fmt.Errorf("link: %s: undefined symbol %q", f.Name, in.Sym)
				}
				var v uint64
				if in.SymNeg {
					v = addr - uint64(in.Imm)
				} else {
					v = addr + uint64(in.Imm)
				}
				if !signExt32OK(v) {
					return nil, fmt.Errorf("link: %s: immediate %#x for %q does not fit sign-extended imm32", f.Name, v, in.Sym)
				}
				r.Imm = int64(v)
				r.Sym, r.SymNeg = "", false
			}
			if m := r.MemOperand(); m != nil && m.Sym != "" {
				addr, ok := syms[m.Sym]
				if !ok {
					return nil, fmt.Errorf("link: %s: undefined symbol %q in memory operand", f.Name, m.Sym)
				}
				target := addr + uint64(int64(m.Disp))
				if m.RIPRel {
					rel := int64(target) - int64(next)
					if rel > 1<<31-1 || rel < -(1<<31) {
						return nil, fmt.Errorf("link: %s: rip-relative overflow to %q", f.Name, m.Sym)
					}
					m.Disp = int32(rel)
				} else {
					if !signExt32OK(target) {
						return nil, fmt.Errorf("link: %s: absolute reference %#x to %q does not fit disp32", f.Name, target, m.Sym)
					}
					m.Disp = int32(uint32(target))
				}
				m.Sym = ""
			}
			var err error
			out, err = r.Encode(out)
			if err != nil {
				return nil, fmt.Errorf("link: %s: %w", f.Name, err)
			}
			pc = next
		}
	}
	return out, nil
}

// Install pokes the image's bytes into an installed address space. The
// space must have been created from img.Layout.
func (img *Image) Install(sp *kas.Space) error {
	put := func(region string, b []byte) error {
		r := img.Layout.Region(region)
		if r == nil {
			if len(b) == 0 {
				return nil
			}
			return fmt.Errorf("link: image has %s bytes but layout lacks the region", region)
		}
		if uint64(len(b)) > r.Size {
			return fmt.Errorf("link: %s overflows its region", region)
		}
		return sp.AS.Poke(r.Start, b)
	}
	if err := put(".text", img.Text); err != nil {
		return err
	}
	if err := put(".rodata", img.Rodata); err != nil {
		return err
	}
	if err := put(".data", img.Data); err != nil {
		return err
	}
	return nil
}

// RIPRelativeTo computes the final rel32 displacement to be encoded in a
// %rip-relative memory operand located in an instruction ending at
// nextInstrAddr and referring to target.
func RIPRelativeTo(target, nextInstrAddr uint64) (int32, error) {
	rel := int64(target) - int64(nextInstrAddr)
	if rel > 1<<31-1 || rel < -(1<<31) {
		return 0, fmt.Errorf("link: rip-relative displacement overflow")
	}
	return int32(rel), nil
}
