package kernel

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/mem"
	"repro/internal/sfi"
)

// cacheTestConfigs spans the install paths that diverge at boot time: the
// SFI accessor path, the MPX bound registers, and the HideM shadow pages.
func cacheTestConfigs() []core.Config {
	return []core.Config{
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1},
		{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RADecoy, Seed: 1},
		{XOM: core.XOMHideM, Seed: 1},
	}
}

// TestBootCachedEquivalentToBoot is the cache acceptance property: a kernel
// booted through the cache must be indistinguishable from one built from
// scratch — identical image bytes, symbol table, pass statistics, boot-time
// xkeys, and syscall behavior.
func TestBootCachedEquivalentToBoot(t *testing.T) {
	for _, cfg := range cacheTestConfigs() {
		direct, err := Boot(cfg)
		if err != nil {
			t.Fatalf("%s: uncached boot: %v", cfg.Name(), err)
		}
		cached, err := Boot(cfg, WithCache())
		if err != nil {
			t.Fatalf("%s: cached boot: %v", cfg.Name(), err)
		}
		if !bytes.Equal(direct.Img.Text, cached.Img.Text) {
			t.Errorf("%s: image text differs between cached and uncached boots", cfg.Name())
		}
		if len(direct.Img.Symbols) != len(cached.Img.Symbols) {
			t.Errorf("%s: symbol table sizes differ", cfg.Name())
		}
		for name, addr := range direct.Img.Symbols {
			if cached.Img.Symbols[name] != addr {
				t.Errorf("%s: symbol %s: %#x uncached vs %#x cached", cfg.Name(), name, addr, cached.Img.Symbols[name])
			}
		}
		if direct.Build.SFIStats != cached.Build.SFIStats {
			t.Errorf("%s: SFI stats differ", cfg.Name())
		}
		if direct.Build.DivStats != cached.Build.DivStats {
			t.Errorf("%s: diversification stats differ", cfg.Name())
		}
		if len(direct.Keys) != len(cached.Keys) {
			t.Errorf("%s: xkey counts differ", cfg.Name())
		}
		for sym, v := range direct.Keys {
			if cached.Keys[sym] != v {
				t.Errorf("%s: xkey %s differs (seeded replenishment broke)", cfg.Name(), sym)
			}
		}
		exerciseSyscalls(t, direct)
		exerciseSyscalls(t, cached)
	}
}

// TestBootCachedBuildsOnce: many boots of one configuration — sequential
// and racing — compile exactly once; a different configuration compiles
// exactly once more.
func TestBootCachedBuildsOnce(t *testing.T) {
	// A fresh cache isolates the counters; restore the shared one after.
	defer SetBuildCache(SetBuildCache(core.NewImageCache(nil)))
	cfg := core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 99}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Boot(cfg, WithCache()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := BuildCache().Stats().Builds; got != 1 {
		t.Fatalf("8 racing boots of one config ran %d builds, want 1", got)
	}
	other := cfg
	other.Seed = 100
	if _, err := Boot(other, WithCache()); err != nil {
		t.Fatal(err)
	}
	if got := BuildCache().Stats().Builds; got != 2 {
		t.Fatalf("second config: Stats().Builds = %d, want 2", got)
	}
	// Runtime-only knobs must hit the same entry.
	budgeted := cfg
	budgeted.WatchdogBudget = 1 << 22
	if _, err := Boot(budgeted, WithCache()); err != nil {
		t.Fatal(err)
	}
	if got := BuildCache().Stats().Builds; got != 2 {
		t.Fatalf("watchdog budget fragmented the cache: Stats().Builds = %d, want 2", got)
	}
}

// TestSnapshotRestoreHideM exercises Snapshot/Restore on a shadow-paged
// XOMHideM kernel booted through the cache: rollback must preserve both the
// syscall behavior and the split-TLB property (data reads of code pages see
// the zero-filled shadow while execution keeps running the real bytes).
func TestSnapshotRestoreHideM(t *testing.T) {
	k, err := Boot(core.Config{XOM: core.XOMHideM, Seed: 1}, WithCache())
	if err != nil {
		t.Fatal(err)
	}
	checkShadow := func(when string) {
		t.Helper()
		entry := k.Sym("syscall_entry")
		v, f := k.CPU.AS.Read(entry&^uint64(mem.PageMask), 8)
		if f != nil {
			t.Fatalf("%s: data read of code page faulted: %v", when, f)
		}
		if v != 0 {
			t.Fatalf("%s: data view of code page is %#x, want zero-filled shadow", when, v)
		}
	}
	checkShadow("before snapshot")

	snap := k.Snapshot()
	r1 := k.Syscall(SysGetpid)
	if r1.Failed {
		t.Fatalf("getpid before restore: %v", r1.Run.Reason)
	}
	// Perturb state past the snapshot: open a file (fd table + file data).
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	if r := k.Syscall(SysOpen, UserBuf); r.Failed {
		t.Fatalf("open: %v", r.Run.Reason)
	}

	if err := k.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	checkShadow("after restore")
	r2 := k.Syscall(SysGetpid)
	if r2.Failed {
		t.Fatalf("getpid after restore: %v", r2.Run.Reason)
	}
	if r1.Ret != r2.Ret || r1.Run.Instrs != r2.Run.Instrs || r1.Run.Cycles != r2.Run.Cycles {
		t.Fatalf("replay after restore diverges: ret %d/%d instrs %d/%d cycles %d/%d",
			r1.Ret, r2.Ret, r1.Run.Instrs, r2.Run.Instrs, r1.Run.Cycles, r2.Run.Cycles)
	}
	// Restore is repeatable on the same snapshot.
	if err := k.Restore(snap); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	checkShadow("after second restore")
	exerciseSyscalls(t, k)
}
