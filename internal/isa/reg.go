// Package isa defines the KX64 instruction set architecture: an
// x86-64-flavoured, variable-length, byte-encoded instruction set used by the
// kR^X simulation stack. KX64 deliberately mirrors the properties of x86-64
// that the kR^X paper depends on: a one-byte RET (0xC3) and INT3 (0xCC) so
// that unaligned decoding yields gadgets and tripwires, a single %rflags
// register clobbered by comparisons (motivating the O1 pushfq/popfq
// elimination), %rip-relative and absolute addressing (safe reads), string
// operations with REP prefixes, and MPX-style bound registers with a BNDCU
// upper-bound check.
package isa

import "fmt"

// Reg identifies a KX64 register. The first sixteen values are the
// general-purpose registers in x86-64 encoding order.
type Reg uint8

// General-purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumGPR is the number of general-purpose registers.
	NumGPR = 16
)

// NoReg marks an absent base or index register in a memory reference.
const NoReg Reg = 0xFF

var regNames = [NumGPR]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the AT&T-style name of the register (without the % sigil).
func (r Reg) String() string {
	if r < NumGPR {
		return regNames[r]
	}
	if r == NoReg {
		return "noreg"
	}
	return fmt.Sprintf("reg%d", uint8(r))
}

// Valid reports whether r names a general-purpose register.
func (r Reg) Valid() bool { return r < NumGPR }

// BndReg identifies an MPX bound register (%bnd0–%bnd3). Each holds a lower
// and an upper bound; kR^X-MPX uses %bnd0 with ub = _krx_edata.
type BndReg uint8

// MPX bound registers.
const (
	BND0 BndReg = iota
	BND1
	BND2
	BND3

	// NumBnd is the number of MPX bound registers.
	NumBnd = 4
)

// String returns the name of the bound register.
func (b BndReg) String() string {
	if b < NumBnd {
		return fmt.Sprintf("bnd%d", uint8(b))
	}
	return fmt.Sprintf("bnd?%d", uint8(b))
}

// Valid reports whether b names a bound register.
func (b BndReg) Valid() bool { return b < NumBnd }

// Flag bits within the %rflags register. Only the bits the simulation needs
// are modelled; they use the genuine x86 bit positions for familiarity.
const (
	FlagCF uint64 = 1 << 0  // carry
	FlagPF uint64 = 1 << 2  // parity
	FlagZF uint64 = 1 << 6  // zero
	FlagSF uint64 = 1 << 7  // sign
	FlagDF uint64 = 1 << 10 // direction (string ops)
	FlagOF uint64 = 1 << 11 // overflow

	// FlagsArith is the set of status flags written by arithmetic and
	// comparison instructions. The kR^X O1 optimization tracks %rflags as
	// a single unit (the paper over-preserves, see its footnote 6), and so
	// do we.
	FlagsArith = FlagCF | FlagPF | FlagZF | FlagSF | FlagOF
)

// Cond is a branch condition code, in x86 encoding order.
type Cond uint8

// Branch condition codes.
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (unsigned <)
	CondAE             // above or equal (unsigned >=)
	CondE              // equal
	CondNE             // not equal
	CondBE             // below or equal (unsigned <=)
	CondA              // above (unsigned >)
	CondS              // sign
	CondNS             // not sign
	CondP              // parity
	CondNP             // not parity
	CondL              // less (signed <)
	CondGE             // greater or equal (signed >=)
	CondLE             // less or equal (signed <=)
	CondG              // greater (signed >)

	// NumCond is the number of condition codes.
	NumCond = 16
)

var condNames = [NumCond]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the x86 mnemonic suffix for the condition.
func (c Cond) String() string {
	if c < NumCond {
		return condNames[c]
	}
	return fmt.Sprintf("cc%d", uint8(c))
}

// Valid reports whether c is a defined condition code.
func (c Cond) Valid() bool { return c < NumCond }

// Negate returns the logical complement of the condition (e.g. E <-> NE).
// x86 condition codes pair even/odd, so flipping the low bit negates.
func (c Cond) Negate() Cond { return c ^ 1 }

// Eval evaluates the condition against a %rflags value.
func (c Cond) Eval(flags uint64) bool {
	cf := flags&FlagCF != 0
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	pf := flags&FlagPF != 0
	switch c {
	case CondO:
		return of
	case CondNO:
		return !of
	case CondB:
		return cf
	case CondAE:
		return !cf
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondS:
		return sf
	case CondNS:
		return !sf
	case CondP:
		return pf
	case CondNP:
		return !pf
	case CondL:
		return sf != of
	case CondGE:
		return sf == of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	}
	return false
}
