// Command krxfuzz runs the syscall fuzzer with fault injection against the
// simulated kernel: seeded program generation, corpus-guided mutation,
// deterministic fault injection, crash triage with deduplication, and
// reproducer minimization. The same -seed always yields a byte-identical
// report.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/fuzz"
	"repro/internal/inject"
	"repro/internal/sfi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "krxfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	iters := flag.Int("iters", 1000, "programs to execute")
	seed := flag.Int64("seed", 42, "master seed (generation, mutation, injection)")
	noInject := flag.Bool("no-inject", false, "disable fault injection")
	vanilla := flag.Bool("vanilla", false, "fuzz the unprotected kernel instead of SFI+X")
	budget := flag.Uint64("budget", 0, "per-syscall instruction watchdog budget (0 = default)")
	workers := flag.Int("workers", 1, "parallel execution workers (report is byte-identical for any count)")
	flag.Parse()

	cfg := core.Config{
		XOM: core.XOMSFI, SFILevel: sfi.O3,
		Diversify: true, RAProt: diversify.RAEncrypt,
		Seed:           *seed,
		WatchdogBudget: *budget,
	}
	if *vanilla {
		cfg = core.Config{Seed: *seed, WatchdogBudget: *budget}
	}
	opts := fuzz.Options{Iters: *iters, Seed: *seed, Config: cfg, Workers: *workers}
	if !*noInject {
		plan := inject.DefaultPlan(*seed)
		opts.Plan = &plan
	}
	rep, err := fuzz.Fuzz(opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	return nil
}
