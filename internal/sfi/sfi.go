// Package sfi implements the "krx" compiler plugin: R^X enforcement by
// range-check (RC) instrumentation of memory reads (§5.1.2) with the O0–O3
// optimization ladder, and the MPX-based variant (§5.1.3).
//
//	O0  basic scheme: every unsafe read is preceded by
//	    pushfq; lea EA, %r11; cmp $_krx_edata, %r11; ja viol; popfq
//	O1  pushfq/popfq elimination via %rflags liveness analysis
//	O2  lea elimination: base+disp reads become
//	    cmp $(_krx_edata-disp), %base; ja viol
//	O3  cmp/ja coalescing: RCs with the same base register merge into the
//	    dominating check against the maximum displacement, provided the
//	    base is never redefined or spilled on any path in between
//
// MPX mode replaces the triplet with a single bndcu instruction checking the
// effective address against %bnd0.ub (= _krx_edata); O1/O2 are moot (bndcu
// neither touches %rflags nor needs a scratch register) and O3 applies
// unchanged.
package sfi

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Level is the SFI optimization level.
type Level int

// Optimization levels.
const (
	O0 Level = iota
	O1
	O2
	O3
)

func (l Level) String() string { return fmt.Sprintf("O%d", int(l)) }

// Mode selects the R^X enforcement mechanism.
type Mode int

// Enforcement modes.
const (
	ModeSFI Mode = iota
	ModeMPX
)

func (m Mode) String() string {
	if m == ModeMPX {
		return "MPX"
	}
	return "SFI"
}

// DefaultEdataSym is the symbol marking the end of the readable data region.
const DefaultEdataSym = "_krx_edata"

// DefaultHandlerSym is the R^X violation handler invoked by SFI checks.
const DefaultHandlerSym = "krx_handler"

// ViolLabel is the label of the per-function violation block.
const ViolLabel = "krx.viol"

// Config parameterizes the instrumentation.
type Config struct {
	Mode    Mode
	Level   Level      // SFI optimization level (ignored for MPX except O3 coalescing, always on)
	Edata   string     // boundary symbol (default _krx_edata)
	Handler string     // violation handler symbol (default krx_handler)
	Bnd     isa.BndReg // MPX bound register (default %bnd0)
}

func (c Config) withDefaults() Config {
	if c.Edata == "" {
		c.Edata = DefaultEdataSym
	}
	if c.Handler == "" {
		c.Handler = DefaultHandlerSym
	}
	return c
}

// Stats aggregates instrumentation statistics (the §7.2 text claims).
type Stats struct {
	Funcs            int   // functions instrumented
	ReadsTotal       int   // memory-read sites considered
	SafeReads        int   // absolute/%rip-relative (not instrumented)
	StackReads       int   // %rsp+disp reads covered by the guard section
	StringReads      int   // string-op sites (RC on %rsi/%rdi)
	RCCandidates     int   // sites requiring an RC before coalescing
	RCEmitted        int   // RCs actually emitted
	RCCoalesced      int   // RCs removed by O3
	LeaForm          int   // RCs needing the lea triplet (index present)
	LeaEliminated    int   // RCs in O2 cmp-only form
	PushfqPairs      int   // pushfq/popfq pairs emitted
	PushfqEliminated int   // pairs elided by O1
	MaxStackDisp     int32 // largest uninstrumented %rsp displacement seen
}

// Add merges other into s.
func (s *Stats) Add(o Stats) {
	s.Funcs += o.Funcs
	s.ReadsTotal += o.ReadsTotal
	s.SafeReads += o.SafeReads
	s.StackReads += o.StackReads
	s.StringReads += o.StringReads
	s.RCCandidates += o.RCCandidates
	s.RCEmitted += o.RCEmitted
	s.RCCoalesced += o.RCCoalesced
	s.LeaForm += o.LeaForm
	s.LeaEliminated += o.LeaEliminated
	s.PushfqPairs += o.PushfqPairs
	s.PushfqEliminated += o.PushfqEliminated
	if o.MaxStackDisp > s.MaxStackDisp {
		s.MaxStackDisp = o.MaxStackDisp
	}
}

// site describes one memory-read site needing a range check.
type site struct {
	bi, ii  int        // block and instruction index (original coordinates)
	base    isa.Reg    // base register being checked
	disp    int32      // displacement against which to check
	maxDisp int32      // after coalescing: the displacement to emit
	lea     bool       // needs the full lea triplet (index register present)
	mref    isa.MemRef // full reference for lea-form checks
	after   bool       // RC goes after the instruction (rep-prefixed string op)
	dead    bool       // removed by coalescing
}

// classify inspects one instruction and appends the range-check sites it
// requires. It returns the updated stats fields via s.
func classify(in isa.Instr, bi, ii int, s *Stats) []site {
	var out []site
	if !in.ReadsMemory() {
		return nil
	}
	switch in.Op {
	case isa.MOVS, isa.LODS, isa.CMPS, isa.SCAS:
		s.ReadsTotal++
		s.StringReads++
		rep := in.SF.Rep()
		switch in.Op {
		case isa.MOVS, isa.LODS:
			out = append(out, site{bi: bi, ii: ii, base: isa.RSI, after: rep})
		case isa.SCAS:
			out = append(out, site{bi: bi, ii: ii, base: isa.RDI, after: rep})
		case isa.CMPS:
			// cmps reads through both %rsi and %rdi.
			out = append(out, site{bi: bi, ii: ii, base: isa.RSI, after: rep})
			out = append(out, site{bi: bi, ii: ii, base: isa.RDI, after: rep})
		}
		return out
	}
	m := in.MemOperand()
	if m == nil {
		return nil
	}
	s.ReadsTotal++
	if m.IsSafe() {
		// Absolute or %rip-relative: encoded in the (W^X-protected)
		// instruction itself; cannot be influenced at runtime.
		s.SafeReads++
		return nil
	}
	if m.Base == isa.RSP && !m.HasIndex() {
		// Covered by the .krx_phantom guard section spacing.
		s.StackReads++
		if m.Disp > s.MaxStackDisp {
			s.MaxStackDisp = m.Disp
		}
		return nil
	}
	st := site{bi: bi, ii: ii, base: m.Base, disp: m.Disp, mref: *m}
	if m.HasIndex() || !m.HasBase() {
		// Scaled-index (or pathological) forms keep the lea triplet.
		st.lea = true
	}
	return append(out, st)
}

// Instrument applies R^X instrumentation to fn in place and returns the
// per-function statistics. Functions marked NoInstrument are skipped (the
// kR^X clone functions for ftrace/KProbes/module loading).
func Instrument(fn *ir.Function, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	var s Stats
	if fn.NoInstrument {
		return s, nil
	}
	if fn.BlockIndex(ViolLabel) >= 0 {
		return s, fmt.Errorf("sfi: %s already instrumented", fn.Name)
	}
	s.Funcs = 1

	// Collect sites in original coordinates.
	var sites []site
	for bi, b := range fn.Blocks {
		for ii, in := range b.Ins {
			sites = append(sites, classify(in, bi, ii, &s)...)
		}
	}
	for i := range sites {
		sites[i].maxDisp = sites[i].disp
	}
	s.RCCandidates = len(sites)

	// O3: coalesce (also used by MPX; the paper applies coalescing to both).
	if cfg.Level >= O3 || cfg.Mode == ModeMPX {
		coalesce(fn, sites, &s)
	}

	// Liveness for O1 (SFI only).
	var fl *ir.FlagsLiveness
	if cfg.Mode == ModeSFI && cfg.Level >= O1 {
		fl = ir.ComputeFlagsLiveness(fn)
	}

	// Emit: rebuild each block's instruction list, inserting RCs.
	// Group sites by block for O(1) lookup.
	byBlock := make(map[int][]site)
	for _, st := range sites {
		if st.dead {
			continue
		}
		byBlock[st.bi] = append(byBlock[st.bi], st)
	}
	emitted := false
	for bi, b := range fn.Blocks {
		blockSites := byBlock[bi]
		if len(blockSites) == 0 {
			continue
		}
		var out []isa.Instr
		for ii, in := range b.Ins {
			// RCs placed before the instruction.
			for _, st := range blockSites {
				if st.ii == ii && !st.after {
					out = appendRC(out, st, cfg, fl, &s)
					emitted = true
				}
			}
			out = append(out, in)
			// RCs placed after (rep-prefixed string ops): the check is
			// postmortem but still catches code-region reads (§5.1.2).
			for _, st := range blockSites {
				if st.ii == ii && st.after {
					// Liveness after the instruction = before ii+1.
					stAfter := st
					stAfter.ii = ii + 1
					out = appendRC(out, stAfter, cfg, fl, &s)
					emitted = true
				}
			}
		}
		b.Ins = out
	}

	// The SFI violation block: ja branches here; the handler logs and
	// halts the system. (MPX needs no explicit handler: bndcu raises #BR.)
	if emitted && cfg.Mode == ModeSFI {
		fn.Blocks = append(fn.Blocks, &ir.Block{
			Label: ViolLabel,
			Ins: []isa.Instr{
				isa.Call(cfg.Handler),
				isa.Hlt(),
			},
		})
	}
	return s, nil
}

// appendRC emits one range check for the site.
func appendRC(out []isa.Instr, st site, cfg Config, fl *ir.FlagsLiveness, s *Stats) []isa.Instr {
	s.RCEmitted++
	if cfg.Mode == ModeMPX {
		// bndcu EA, %bnd0 — faults via #BR if EA > ub. The effective
		// address is encoded in the instruction; no scratch register and
		// no %rflags interaction, so O1/O2 are moot.
		m := isa.Mem(st.base, st.maxDisp)
		if st.lea {
			// bndcu supports the full addressing mode directly.
			m = st.mref
		}
		return append(out, isa.Bndcu(cfg.Bnd, m))
	}
	needFlags := true
	if cfg.Level >= O1 && fl != nil {
		needFlags = fl.LiveBefore(st.bi, st.ii)
		if !needFlags {
			s.PushfqEliminated++
		}
	}
	if needFlags {
		s.PushfqPairs++
		out = append(out, isa.Pushfq())
	}
	if cfg.Level >= O2 && !st.lea {
		// cmp $(_krx_edata - disp), %base ; ja viol
		s.LeaEliminated++
		out = append(out, isa.CmpSymNeg(st.base, cfg.Edata, st.maxDisp))
	} else {
		s.LeaForm++
		m := isa.Mem(st.base, st.maxDisp)
		if st.lea {
			m = st.mref
		}
		out = append(out,
			isa.Lea(isa.R11, m),
			isa.Instr{Op: isa.CMPri, Dst: isa.R11, Sym: cfg.Edata},
		)
	}
	out = append(out, isa.Jcc(isa.CondA, ViolLabel))
	if needFlags {
		out = append(out, isa.Popfq())
	}
	return out
}

// InstrumentProgram instruments every function of the program and returns
// aggregate statistics.
func InstrumentProgram(prog *ir.Program, cfg Config) (Stats, error) {
	var total Stats
	for _, f := range prog.Funcs {
		st, err := Instrument(f, cfg)
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	return total, nil
}
