package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
)

// Workload is one Table 2 (Phoronix) row: a macro benchmark modelled as a
// transaction mix of syscalls plus a user-space compute share. The user
// share is self-calibrating: it is expressed as the fraction of total time
// the real benchmark spends in user mode, and converted to cycles against
// the measured vanilla kernel cost — so a workload that is 83% kernel time
// (PostMark) amplifies kernel overhead, and a CPU-bound one (OpenSSL)
// suppresses it, exactly as in the paper.
type Workload struct {
	Name       string
	Metric     string
	UserShare  float64 // fraction of total time spent in user mode (vanilla)
	Txn        func(k *kernel.Kernel) (uint64, error)
	Iterations int
}

func fileTxn(reads, writes int, size uint64) func(*kernel.Kernel) (uint64, error) {
	return func(k *kernel.Kernel) (uint64, error) {
		var total uint64
		fd, err := openTestFile(k)
		if err != nil {
			return 0, err
		}
		for i := 0; i < reads; i++ {
			c, err := timed(k.Syscall(kernel.SysRead, fd, kernel.UserBuf+4096, size%8192), "read")
			if err != nil {
				return 0, err
			}
			total += c
			// Keep the file position bounded.
			k.Syscall(kernel.SysClose, fd)
			fd, err = openTestFile(k)
			if err != nil {
				return 0, err
			}
		}
		for i := 0; i < writes; i++ {
			c, err := timed(k.Syscall(kernel.SysWrite, fd, kernel.UserBuf+4096, size%8192), "write")
			if err != nil {
				return 0, err
			}
			total += c
		}
		c, err := timed(k.Syscall(kernel.SysClose, fd), "close")
		if err != nil {
			return 0, err
		}
		return total + c, nil
	}
}

// Workloads returns the Table 2 rows. The user shares follow the
// characterizations in §7.2 (PostMark spends ~83% of its time in kernel
// mode, mostly read/write and open/close; GnuPG/OpenSSL/PyBench/PHPBench
// are CPU-bound; Apache and PostgreSQL sit in between).
func Workloads() []Workload {
	return []Workload{
		{
			Name: "Apache", Metric: "Req/s", UserShare: 0.88,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				var total uint64
				for _, step := range []struct {
					nr   uint64
					args []uint64
				}{
					{kernel.SysTCPRead, []uint64{kernel.UserBuf + 8192, 256}},
					{kernel.SysOpen, []uint64{kernel.UserBuf}},
					{kernel.SysRead, []uint64{0, kernel.UserBuf + 4096, 1024}},
					{kernel.SysTCPWrite, []uint64{kernel.UserBuf + 4096, 1024}},
					{kernel.SysClose, []uint64{0}},
					{kernel.SysSelect, []uint64{10}},
				} {
					c, err := timed(k.Syscall(step.nr, step.args...), "apache step")
					if err != nil {
						return 0, err
					}
					total += c
				}
				return total, nil
			},
		},
		{
			Name: "PostgreSQL", Metric: "Trans/s", UserShare: 0.72,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				var total uint64
				steps := [][]uint64{
					{kernel.SysUnixRead, kernel.UserBuf + 8192, 512},
					{kernel.SysRead, 0, kernel.UserBuf + 4096, 4096},
					{kernel.SysWrite, 0, kernel.UserBuf + 4096, 2048},
					{kernel.SysUnixWrite, kernel.UserBuf + 4096, 512},
					{kernel.SysFstat, 0, kernel.UserBuf + 2048},
				}
				fd, err := openTestFile(k)
				if err != nil {
					return 0, err
				}
				defer k.Syscall(kernel.SysClose, fd)
				for _, s := range steps {
					args := append([]uint64{}, s[1:]...)
					if s[0] == kernel.SysRead || s[0] == kernel.SysWrite || s[0] == kernel.SysFstat {
						args[0] = fd
					}
					c, err := timed(k.Syscall(s[0], args...), "pg step")
					if err != nil {
						return 0, err
					}
					total += c
				}
				return total, nil
			},
		},
		{
			Name: "Kbuild", Metric: "sec", UserShare: 0.80,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				var total uint64
				// Compile one unit: stat/open/read source, fork cc, exec.
				fd, err := openTestFile(k)
				if err != nil {
					return 0, err
				}
				for _, s := range [][]uint64{
					{kernel.SysFstat, fd, kernel.UserBuf + 2048},
					{kernel.SysRead, fd, kernel.UserBuf + 4096, 4096},
					{kernel.SysFork},
					{kernel.SysExecve, kernel.UserBuf},
					{kernel.SysWrite, fd, kernel.UserBuf + 4096, 2048},
					{kernel.SysClose, fd},
				} {
					c, err := timed(k.Syscall(s[0], s[1:]...), "kbuild step")
					if err != nil {
						return 0, err
					}
					total += c
				}
				return total, nil
			},
		},
		{
			Name: "Kextract", Metric: "sec", UserShare: 0.55,
			Txn: fileTxn(1, 4, 4096),
		},
		{
			Name: "GnuPG", Metric: "sec", UserShare: 0.995,
			Txn: fileTxn(2, 0, 4096),
		},
		{
			Name: "OpenSSL", Metric: "Sign/s", UserShare: 0.999,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysNull), "null")
			},
		},
		{
			Name: "PyBench", Metric: "msec", UserShare: 0.998,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysGetpid), "getpid")
			},
		},
		{
			Name: "PHPBench", Metric: "Score", UserShare: 0.997,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysGetpid), "getpid")
			},
		},
		{
			Name: "IOzone", Metric: "MB/s", UserShare: 0.35,
			Txn: fileTxn(4, 4, 8192),
		},
		{
			Name: "DBench", Metric: "MB/s", UserShare: 0.55,
			Txn: fileTxn(2, 2, 4096),
		},
		{
			Name: "PostMark", Metric: "Trans/s", UserShare: 0.17,
			Txn: func(k *kernel.Kernel) (uint64, error) {
				// Mail transactions: create/read/append/delete small files.
				var total uint64
				for i := 0; i < 2; i++ {
					fd, err := openTestFile(k)
					if err != nil {
						return 0, err
					}
					for _, s := range [][]uint64{
						{kernel.SysRead, fd, kernel.UserBuf + 4096, 512},
						{kernel.SysWrite, fd, kernel.UserBuf + 4096, 512},
						{kernel.SysClose, fd},
					} {
						c, err := timed(k.Syscall(s[0], s[1:]...), "postmark step")
						if err != nil {
							return 0, err
						}
						total += c
					}
				}
				return total, nil
			},
		},
	}
}

// Table2Configs returns the six protection columns of Table 2.
func Table2Configs() []core.Config {
	p := core.Presets()
	// SFI(O3), MPX, SFI+D, SFI+X, MPX+D, MPX+X.
	return []core.Config{p[4], p[5], p[8], p[9], p[10], p[11]}
}

// RunTable2 measures the macro workloads: for each configuration, the
// total (user + kernel) cycles per transaction relative to vanilla.
func RunTable2(iters int) (*Table, error) {
	if iters <= 0 {
		iters = 5
	}
	wls := Workloads()
	cfgs := Table2Configs()
	t := &Table{Title: "Table 2: Phoronix Test Suite overhead (%)"}

	measure := func(cfg core.Config) ([]float64, error) {
		k, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			return nil, err
		}
		wls := Workloads() // fresh closures per column (sweep runs concurrently)
		out := make([]float64, len(wls))
		for i, w := range wls {
			if _, err := w.Txn(k); err != nil { // warmup
				return nil, fmt.Errorf("%s (%s): %w", w.Name, cfg.Name(), err)
			}
			var total uint64
			for n := 0; n < iters; n++ {
				c, err := w.Txn(k)
				if err != nil {
					return nil, fmt.Errorf("%s (%s): %w", w.Name, cfg.Name(), err)
				}
				total += c
			}
			out[i] = float64(total) / float64(iters)
		}
		return out, nil
	}

	// All columns (baseline included) measured in parallel, one cached-build
	// kernel each, folded in column order — see sweep in table1.go.
	cols, err := sweep(append([]core.Config{core.Vanilla}, cfgs...), measure)
	if err != nil {
		return nil, err
	}
	base := cols[0]
	t.Baseline = base
	for _, w := range wls {
		t.RowNames = append(t.RowNames, w.Name)
		t.RowKinds = append(t.RowKinds, Latency)
	}
	t.Overhead = make([][]float64, len(wls))
	for i := range t.Overhead {
		t.Overhead[i] = make([]float64, len(cfgs))
	}
	for ci, cfg := range cfgs {
		t.Configs = append(t.Configs, cfg.Name())
		for ri, w := range wls {
			// Total time = kernel cycles + user cycles; the user share is
			// untouched by kernel hardening.
			user := base[ri] * w.UserShare / (1 - w.UserShare)
			totalBase := base[ri] + user
			totalCfg := cols[ci+1][ri] + user
			t.Overhead[ri][ci] = 100 * (totalCfg - totalBase) / totalBase
		}
	}
	return t, nil
}
