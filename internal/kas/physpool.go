package kas

import (
	"fmt"

	"repro/internal/mem"
)

// PhysPool models the machine's physical memory: a linear array of page
// frames. The entire pool is direct-mapped at PhysmapBase (the physmap), so
// any frame handed out for kernel image text, module text, kernel stacks, or
// heap objects is also — unless explicitly unmapped — readable and writable
// through its physmap synonym. That aliasing is precisely the hazard §5.1.1
// describes, and what UnmapSynonyms exists to close.
type PhysPool struct {
	frames []*mem.Frame
	next   int
}

// NewPhysPool creates a pool of the given size in bytes (page-rounded).
func NewPhysPool(size uint64) *PhysPool {
	n := mem.PagesFor(size)
	frames := make([]*mem.Frame, n)
	for i := range frames {
		frames[i] = new(mem.Frame)
	}
	return &PhysPool{frames: frames}
}

// NumPages returns the total number of frames in the pool.
func (p *PhysPool) NumPages() int { return len(p.frames) }

// Frames returns all frames (for installing the physmap).
func (p *PhysPool) Frames() []*mem.Frame { return p.frames }

// Alloc hands out n contiguous frames, returning the first frame's physical
// frame number.
func (p *PhysPool) Alloc(n int) (pfn int, frames []*mem.Frame, err error) {
	if p.next+n > len(p.frames) {
		return 0, nil, fmt.Errorf("kas: out of physical memory (%d pages requested, %d free)",
			n, len(p.frames)-p.next)
	}
	pfn = p.next
	frames = p.frames[p.next : p.next+n]
	p.next += n
	return pfn, frames, nil
}

// Mark returns the pool's current allocation watermark, for later Reset.
func (p *PhysPool) Mark() int { return p.next }

// Reset rewinds the allocation watermark to a previous Mark, releasing every
// frame handed out since (the Kernel.Snapshot/Restore machinery pairs this
// with the address-space rollback so post-snapshot allocations are reusable).
func (p *PhysPool) Reset(mark int) {
	if mark >= 0 && mark <= p.next {
		p.next = mark
	}
}

// PhysmapAddr returns the physmap virtual address of the given frame number.
func PhysmapAddr(pfn int) uint64 { return PhysmapBase + uint64(pfn)<<mem.PageShift }

// Space is an installed kernel address space: the layout mapped into an
// AddressSpace, backed by a physical pool with its physmap.
type Space struct {
	Layout *Layout
	AS     *mem.AddressSpace
	Pool   *PhysPool

	// regionPFN records the first physical frame of each mapped region so
	// synonyms can be located.
	regionPFN map[string]int
}

// Install maps the physmap and all of the layout's kernel-image regions into
// a fresh address space. Region frames come from the pool, so each region
// initially has a live physmap synonym (like a freshly booted kernel, before
// kR^X's synonym unmapping runs).
func Install(layout *Layout, pool *PhysPool) (*Space, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	as := mem.NewAddressSpace()
	if err := as.MapFrames(PhysmapBase, pool.Frames(), mem.PermRW); err != nil {
		return nil, fmt.Errorf("kas: mapping physmap: %w", err)
	}
	sp := &Space{Layout: layout, AS: as, Pool: pool, regionPFN: make(map[string]int)}
	for _, r := range layout.Regions {
		n := mem.PagesFor(r.Size)
		pfn, frames, err := pool.Alloc(n)
		if err != nil {
			return nil, err
		}
		if err := as.MapFrames(r.Start, frames, r.Perm); err != nil {
			return nil, fmt.Errorf("kas: mapping %s: %w", r.Name, err)
		}
		sp.regionPFN[r.Name] = pfn
	}
	return sp, nil
}

// RegionPFN returns the first physical frame number of a mapped region.
func (s *Space) RegionPFN(name string) (int, bool) {
	pfn, ok := s.regionPFN[name]
	return pfn, ok
}

// SynonymAddr returns the physmap alias of a kernel-image virtual address.
func (s *Space) SynonymAddr(va uint64) (uint64, bool) {
	for _, r := range s.Layout.Regions {
		if va >= r.Start && va < r.End() {
			pfn := s.regionPFN[r.Name]
			return PhysmapAddr(pfn) + (va - r.Start), true
		}
	}
	return 0, false
}

// UnmapCodeSynonyms removes the physmap aliases of every code-region page
// (the kR^X boot step: kernel code must not be readable through the data
// region). Returns the number of pages unmapped.
func (s *Space) UnmapCodeSynonyms() (int, error) {
	if s.Layout.Kind != KRX {
		return 0, nil
	}
	total := 0
	for _, r := range s.Layout.Regions {
		if !r.Code || r.Size == 0 {
			continue
		}
		pfn := s.regionPFN[r.Name]
		n := mem.PagesFor(r.Size)
		if err := s.AS.Unmap(PhysmapAddr(pfn), n); err != nil {
			return total, fmt.Errorf("kas: unmapping synonyms of %s: %w", r.Name, err)
		}
		total += n
	}
	return total, nil
}

// AllocMapped allocates n pages from the pool and returns their physmap
// virtual address (how the simulation models kmalloc-style allocations:
// kernel stacks and heap objects live in the readable physmap region, which
// is why return addresses on kernel stacks are harvestable — §5.2.2).
func (s *Space) AllocMapped(n int) (uint64, error) {
	pfn, _, err := s.Pool.Alloc(n)
	if err != nil {
		return 0, err
	}
	return PhysmapAddr(pfn), nil
}

// MapModuleText allocates frames, maps them at va in the modules_text
// region with execute permission, copies code in through the physmap
// synonym, and then unmaps the synonym. Returns the frames for later
// unloading.
func (s *Space) MapModuleText(va uint64, code []byte) ([]*mem.Frame, int, error) {
	n := mem.PagesFor(uint64(len(code)))
	pfn, frames, err := s.Pool.Alloc(n)
	if err != nil {
		return nil, 0, err
	}
	if err := s.AS.MapFrames(va, frames, mem.PermX); err != nil {
		return nil, 0, err
	}
	if f := s.AS.StoreBytes(PhysmapAddr(pfn), code); f != nil {
		return nil, 0, f
	}
	if s.Layout.Kind == KRX {
		if err := s.AS.Unmap(PhysmapAddr(pfn), n); err != nil {
			return nil, 0, err
		}
	}
	return frames, pfn, nil
}

// UnmapModuleText reverses MapModuleText: zaps the frames (preventing code
// inference through recycled pages), unmaps the text mapping, and restores
// the physmap synonym.
func (s *Space) UnmapModuleText(va uint64, frames []*mem.Frame, pfn int) error {
	for _, f := range frames {
		f.Zap()
	}
	if err := s.AS.Unmap(va, len(frames)); err != nil {
		return err
	}
	if s.Layout.Kind == KRX {
		if err := s.AS.MapFrames(PhysmapAddr(pfn), frames, mem.PermRW); err != nil {
			return err
		}
	}
	return nil
}
