package kas

import "fmt"

// Fork returns a pool sharing this pool's frames but with an independent
// allocation watermark. The frames slice is never mutated after NewPhysPool,
// so sharing it is safe; allocations in the fork hand out the same *frames*
// a sibling's allocations would, which is exactly the copy-on-write model —
// a forked kernel that maps and writes a pool frame breaks CoW on it like
// any other shared frame (and frames past the golden parent's watermark were
// never frozen, so post-fork allocations are private until a future fork).
func (p *PhysPool) Fork() *PhysPool {
	return &PhysPool{frames: p.frames, next: p.next}
}

// Fork returns a copy-on-write child of the installed space: the address
// space is forked (sharing every frozen frame, see mem.AddressSpace.Fork),
// the pool watermark is carried over, and the layout plus region table —
// immutable after Install — are shared.
func (s *Space) Fork() (*Space, error) {
	as, err := s.AS.Fork()
	if err != nil {
		return nil, fmt.Errorf("kas: fork: %w", err)
	}
	pfn := make(map[string]int, len(s.regionPFN))
	for name, p := range s.regionPFN {
		pfn[name] = p
	}
	return &Space{Layout: s.Layout, AS: as, Pool: s.Pool.Fork(), regionPFN: pfn}, nil
}
