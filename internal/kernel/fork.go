package kernel

import (
	"fmt"
	"sync/atomic"

	"repro/internal/inject"
)

// forkCount is the process-wide fork counter behind Forks() — the obs
// gauge's data source. Atomic because fork-per-worker campaigns fork from
// goroutines (the fuzzd manager respawning workers mid-campaign).
var forkCount atomic.Uint64

// Forks returns the number of kernel forks performed process-wide.
func Forks() uint64 { return forkCount.Load() }

// Fork returns a copy-on-write fork of the kernel: an O(1)-ish child that
// shares every physical frame with this kernel until one side writes it
// (mem.AddressSpace.Fork), copies the CPU's architectural state by value,
// and clones the warm decode cache and superblocks so the child starts hot
// (cpu.CPU.Fork). Forking a freshly snapshotted, warmed golden kernel is
// the cheap way to stand up a fleet of identical workers: the child
// executes bit-identically to a kernel that booted and warmed up on its
// own, because emulated semantics cannot observe frame identity or host
// cache warmth.
//
// The parent should be quiescent at its snapshot point: forking with
// un-rolled-back writes after a checkpoint is an error (the undo log would
// have to restore frames the fork shares). The child carries no snapshot —
// take a new one on the child; the parent's Snapshots stay with the parent
// (Restore rejects them as foreign).
//
// Options are restricted to observers: WithProbes and WithTracer wire the
// child's per-worker instrumentation (probes and tracers never transfer
// across a fork). Image-selection options are meaningless here and
// rejected. When the parent booted with a Cfg.FaultPlan, the child arms its
// own injector over the same plan, like a fresh boot would.
func (k *Kernel) Fork(opts ...BootOption) (*Kernel, error) {
	var o bootOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.cached || o.prog != nil || o.image != nil {
		return nil, fmt.Errorf("kernel: Fork accepts only WithProbes and WithTracer")
	}
	sp, err := k.Space.Fork()
	if err != nil {
		return nil, fmt.Errorf("kernel: fork: %w", err)
	}
	nk := &Kernel{
		Cfg:             k.Cfg,
		Build:           k.Build,
		Img:             k.Img,
		Space:           sp,
		KernelStackBase: k.KernelStackBase,
		Keys:            make(map[string]uint64, len(k.Keys)),
	}
	for s, v := range k.Keys {
		nk.Keys[s] = v
	}
	nk.CPU = k.CPU.Fork(sp.AS)
	for _, p := range o.probes {
		nk.CPU.AddProbe(p)
	}
	if o.tracer != nil {
		nk.Trace = o.tracer
		o.tracer.Attach(nk.CPU)
	}
	if k.Cfg.FaultPlan != nil {
		nk.Inj = inject.New(*k.Cfg.FaultPlan)
		nk.Inj.Attach(nk.CPU, sp.AS, nk.FaultTargets())
	}
	forkCount.Add(1)
	return nk, nil
}
