// Observability acceptance gates (ISSUE 4): the profiler's conservation
// invariant and the observer-neutrality of tracing/profiling, verified over
// the Table 1 suite, the paper's three attack scenarios, and a seeded fuzz
// campaign — under the decode cache on and off, at -workers 1 and 4.
package bench

import (
	"encoding/binary"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fuzz"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// digestProbe folds the exec stream (rip, opcode, cycle delta) and the trap
// stream (kind, addr, rip) into separate order-sensitive hashes. It is the
// probe-API successor of hookDigest: installable several times over via
// AddProbe, alongside legacy OnExec, tracers, and profilers.
type digestProbe struct {
	exec, trap uint64
}

func newDigestProbe() *digestProbe {
	return &digestProbe{exec: fnv1aSeed, trap: fnv1aSeed}
}

const (
	fnv1aSeed  = 14695981039346656037
	fnv1aPrime = 1099511628211
)

func mix(h uint64, words ...uint64) uint64 {
	var buf [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		for _, b := range buf {
			h = (h ^ uint64(b)) * fnv1aPrime
		}
	}
	return h
}

func (d *digestProbe) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	d.exec = mix(d.exec, rip, uint64(in.Op), cycles)
}

func (d *digestProbe) OnTrap(t *cpu.Trap, cycles uint64) {
	d.trap = mix(d.trap, uint64(t.Kind), t.Addr, t.RIP)
}

// TestProfilerConservationTable1Suite: over the full micro-op suite, every
// cycle the CPU counts is attributed exactly once — with the decode cache on
// and off.
func TestProfilerConservationTable1Suite(t *testing.T) {
	for _, cfg := range equivConfigs() {
		for _, cacheOn := range []bool{true, false} {
			k, err := kernel.Boot(cfg, kernel.WithCache())
			if err != nil {
				t.Fatal(err)
			}
			k.CPU.SetDecodeCache(cacheOn)
			p := obs.NewProfiler(k.Img)
			p.Attach(k.CPU)
			if _, err := RunTable1Suite(k); err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			if err := p.CheckConservation(); err != nil {
				t.Errorf("%s cache=%v: %v", cfg.Name(), cacheOn, err)
			}
		}
	}
}

// TestProfilerConservationAttacks: conservation holds across the paper's
// three attack scenarios — ROP chains and JIT-ROP harvesting are exactly the
// adversarial control flow the attribution rules must survive.
func TestProfilerConservationAttacks(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(target, ref *kernel.Kernel) attack.Result
	}{
		{"DirectROP", func(target, ref *kernel.Kernel) attack.Result { return attack.DirectROP(target, ref) }},
		{"JITROP", func(target, _ *kernel.Kernel) attack.Result { return attack.JITROP(target) }},
		{"IndirectJITROP", func(target, _ *kernel.Kernel) attack.Result { return attack.IndirectJITROP(target) }},
	}
	for _, cfg := range equivConfigs() {
		for _, sc := range scenarios {
			target := bootEquiv(t, cfg, true)
			ref := bootEquiv(t, cfg, true)
			p := obs.NewProfiler(target.Img)
			p.Attach(target.CPU)
			sc.run(target, ref)
			if err := p.CheckConservation(); err != nil {
				t.Errorf("%s/%s: %v", cfg.Name(), sc.name, err)
			}
		}
	}
}

// TestProfilerConservationFuzz: one profiler per worker kernel, a seeded
// campaign with fault injection at -workers 1 and 4 — conservation holds on
// every worker CPU, and the campaign report stays byte-identical to an
// unprofiled run.
func TestProfilerConservationFuzz(t *testing.T) {
	plan := inject.DefaultPlan(17)
	opts := fuzz.Options{Iters: 64, Seed: 17, Config: core.Vanilla, Plan: &plan}
	baseline := ""
	for _, workers := range []int{1, 4} {
		o := opts
		o.Workers = workers
		f, err := fuzz.New(o)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := f.Kernels()
		if err != nil {
			t.Fatal(err)
		}
		profs := make([]*obs.Profiler, 0, workers)
		for _, k := range ks {
			p := obs.NewProfiler(k.Img)
			p.Attach(k.CPU)
			profs = append(profs, p)
		}
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		for wi, p := range profs {
			if err := p.CheckConservation(); err != nil {
				t.Errorf("workers=%d worker %d: %v", workers, wi, err)
			}
		}
		if baseline == "" {
			baseline = rep.String()
		} else if rep.String() != baseline {
			t.Errorf("workers=%d: profiled report diverges from workers=1", workers)
		}
	}
	// The profiled report must match an entirely unobserved campaign.
	o := opts
	o.Workers = 1
	rep, err := fuzz.Fuzz(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != baseline {
		t.Error("profiled campaign report diverges from unprofiled campaign")
	}
}

// TestTracedTable1SuiteBitIdentical: arming the tracer and the profiler must
// not change the emulated Instrs/Cycles or the exec/trap streams, with the
// decode cache on and off.
func TestTracedTable1SuiteBitIdentical(t *testing.T) {
	for _, cfg := range equivConfigs() {
		for _, cacheOn := range []bool{true, false} {
			type outcome struct {
				cycles, instrs, exec, trap uint64
			}
			run := func(traced bool) outcome {
				var bootOpts []kernel.BootOption
				bootOpts = append(bootOpts, kernel.WithCache())
				tr := obs.NewTracer(1 << 15)
				if traced {
					bootOpts = append(bootOpts, kernel.WithTracer(tr))
				}
				k, err := kernel.Boot(cfg, bootOpts...)
				if err != nil {
					t.Fatal(err)
				}
				k.CPU.SetDecodeCache(cacheOn)
				d := newDigestProbe()
				k.CPU.AddProbe(d)
				if traced {
					p := obs.NewProfiler(k.Img)
					p.Attach(k.CPU)
					defer func() {
						if err := p.CheckConservation(); err != nil {
							t.Errorf("%s cache=%v: %v", cfg.Name(), cacheOn, err)
						}
					}()
				}
				cycles, err := RunTable1Suite(k)
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name(), err)
				}
				return outcome{cycles: cycles, instrs: k.CPU.Instrs, exec: d.exec, trap: d.trap}
			}
			plain, traced := run(false), run(true)
			if plain != traced {
				t.Errorf("%s cache=%v: traced run diverges: %+v vs %+v", cfg.Name(), cacheOn, plain, traced)
			}
		}
	}
}

// TestAttackScenariosTracedBitIdentical: attack outcomes and the targets'
// counters are unchanged by an attached tracer.
func TestAttackScenariosTracedBitIdentical(t *testing.T) {
	cfg := equivConfigs()[1] // the fully protected column
	run := func(traced bool) (attack.Result, uint64, uint64) {
		var bootOpts []kernel.BootOption
		bootOpts = append(bootOpts, kernel.WithCache())
		if traced {
			bootOpts = append(bootOpts, kernel.WithTracer(obs.NewTracer(1<<15)))
		}
		target, err := kernel.Boot(cfg, bootOpts...)
		if err != nil {
			t.Fatal(err)
		}
		return attack.JITROP(target), target.CPU.Instrs, target.CPU.Cycles
	}
	r1, i1, c1 := run(false)
	r2, i2, c2 := run(true)
	if r1 != r2 || i1 != i2 || c1 != c2 {
		t.Errorf("traced attack diverges: %v/%d/%d vs %v/%d/%d", r1, i1, c1, r2, i2, c2)
	}
}

// TestFuzzTraceWorkerInvariance: the merged campaign event stream —
// snapshot/restore, syscall enter/exit, traps, injected faults — is
// byte-identical at -workers 1 and 4, and unchanged by the decode cache.
func TestFuzzTraceWorkerInvariance(t *testing.T) {
	plan := inject.DefaultPlan(17)
	run := func(workers int, cacheOn bool) (string, string) {
		f, err := fuzz.New(fuzz.Options{
			Iters: 64, Seed: 17, Config: core.Vanilla,
			Plan: &plan, Workers: workers, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ks, err := f.Kernels()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			k.CPU.SetDecodeCache(cacheOn)
		}
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Trace) == 0 {
			t.Fatal("traced campaign produced no events")
		}
		return obs.TraceText(rep.Trace), rep.String()
	}
	baseTrace, baseReport := run(1, true)
	for _, tc := range []struct {
		workers int
		cacheOn bool
	}{{4, true}, {1, false}, {4, false}} {
		gotTrace, gotReport := run(tc.workers, tc.cacheOn)
		if gotTrace != baseTrace {
			t.Errorf("workers=%d cache=%v: trace stream diverges from workers=1 cache=on",
				tc.workers, tc.cacheOn)
		}
		if gotReport != baseReport {
			t.Errorf("workers=%d cache=%v: report diverges", tc.workers, tc.cacheOn)
		}
	}
}

// TestMultiProbeCacheEquivalence extends the PR 3 cache-equivalence gate to
// multi-probe configurations: a func-adapted probe and two struct probes
// installed via AddProbe all observe the identical stream, cache on and off.
func TestMultiProbeCacheEquivalence(t *testing.T) {
	cfg := equivConfigs()[1]
	type outcome struct {
		fn, a, b, trap uint64
	}
	run := func(cacheOn bool) outcome {
		k, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			t.Fatal(err)
		}
		k.CPU.SetDecodeCache(cacheOn)
		fn := hookDigest(k.CPU)
		a, b := newDigestProbe(), newDigestProbe()
		k.CPU.AddProbe(a)
		k.CPU.AddProbe(b)
		if _, err := RunTable1Suite(k); err != nil {
			t.Fatal(err)
		}
		return outcome{fn: *fn, a: a.exec, b: b.exec, trap: a.trap}
	}
	on, off := run(true), run(false)
	if on != off {
		t.Errorf("multi-probe streams diverge with cache on/off: %+v vs %+v", on, off)
	}
	if on.a != on.b {
		t.Errorf("co-installed probes saw different streams: %#x vs %#x", on.a, on.b)
	}
}
