// Package patch implements kernel text patching under kR^X: the write-side
// counterpart of the §6 tracing support. ftrace, KProbes, and live
// patching all need to *modify* kernel code at runtime, but under kR^X-KAS
// the text is mapped execute-only and its physmap synonym is unmapped at
// boot — so, like Linux's text_poke(), the patcher creates a *temporary*
// writable alias of the affected frames in a scratch (fixmap-style) slot,
// writes through it, and tears it down again. The window is as short as
// the write itself, and the alias never coexists with an attacker-visible
// mapping (the scratch slot lives in the kernel's unreadable upper region).
package patch

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// pokeSlot is the scratch virtual address used for the temporary alias
// (the simulation's text_poke fixmap slot).
const pokeSlot uint64 = 0xffffffffff400000

// TextPoke writes bytes into kernel text at va through a temporary
// writable alias, never touching the execute-only mapping's permissions.
func TextPoke(k *kernel.Kernel, va uint64, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	first := va &^ uint64(mem.PageMask)
	n := mem.PagesFor(va + uint64(len(b)) - first)
	frames, err := k.Space.AS.FramesAt(first, n)
	if err != nil {
		return fmt.Errorf("patch: target not mapped: %w", err)
	}
	if err := k.Space.AS.MapFrames(pokeSlot, frames, mem.PermRW); err != nil {
		return fmt.Errorf("patch: scratch slot busy: %w", err)
	}
	defer k.Space.AS.Unmap(pokeSlot, n)
	off := va - first
	if f := k.Space.AS.StoreBytes(pokeSlot+off, b); f != nil {
		return fmt.Errorf("patch: write failed: %w", f)
	}
	return nil
}

// ReadText reads n bytes of kernel text (the clone-backed read path the
// tracing subsystems use — get_next/peek_next/memcpy clones in §6).
func ReadText(k *kernel.Kernel, va uint64, n int) ([]byte, error) {
	return k.Space.AS.Peek(va, n)
}

// Livepatch redirects every future call of the function named old to the
// code at newAddr (kpatch-style): the function's entry is overwritten with
// an unconditional jmp. The original entry bytes are returned so the patch
// can be reverted.
func Livepatch(k *kernel.Kernel, old string, newAddr uint64) (revert []byte, err error) {
	oldAddr, ok := k.Img.FuncAddr(old)
	if !ok {
		return nil, fmt.Errorf("patch: no function %q", old)
	}
	jmp := isa.Instr{Op: isa.JMP}
	jlen := jmp.Length()
	orig, err := ReadText(k, oldAddr, jlen)
	if err != nil {
		return nil, err
	}
	rel := int64(newAddr) - int64(oldAddr+uint64(jlen))
	if rel > 1<<31-1 || rel < -(1<<31) {
		return nil, fmt.Errorf("patch: target out of rel32 range")
	}
	jmp.Imm = rel
	enc, err := jmp.Encode(nil)
	if err != nil {
		return nil, err
	}
	if err := TextPoke(k, oldAddr, enc); err != nil {
		return nil, err
	}
	return orig, nil
}

// Revert undoes a Livepatch using the bytes it returned.
func Revert(k *kernel.Kernel, fn string, orig []byte) error {
	addr, ok := k.Img.FuncAddr(fn)
	if !ok {
		return fmt.Errorf("patch: no function %q", fn)
	}
	return TextPoke(k, addr, orig)
}

// InstallProbe plants a KProbe-style int3 at the entry of fn and returns
// the original byte. Under this simulation a kernel-mode #BP halts the
// machine (the kR^X tripwire semantics), so probes are used by tests to
// verify patch plumbing rather than as a live tracing vehicle.
func InstallProbe(k *kernel.Kernel, fn string) (orig byte, addr uint64, err error) {
	a, ok := k.Img.FuncAddr(fn)
	if !ok {
		return 0, 0, fmt.Errorf("patch: no function %q", fn)
	}
	b, err := ReadText(k, a, 1)
	if err != nil {
		return 0, 0, err
	}
	if err := TextPoke(k, a, []byte{0xCC}); err != nil {
		return 0, 0, err
	}
	return b[0], a, nil
}

// RemoveProbe restores the byte saved by InstallProbe.
func RemoveProbe(k *kernel.Kernel, addr uint64, orig byte) error {
	return TextPoke(k, addr, []byte{orig})
}

// ModulesTextEnd reports the top of the modules_text region (livepatch
// replacement code must be loaded below it for rel32 reachability).
func ModulesTextEnd() uint64 { return kas.ModulesBase + kas.ModulesTextSize }
