package obs

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(EvFault, fmt.Sprintf("f%d", i), uint64(i), 0)
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	// Oldest three overwritten: the ring holds f3..f6, oldest first.
	for i, e := range evs {
		if want := fmt.Sprintf("f%d", i+3); e.Name != want {
			t.Errorf("evs[%d].Name = %s, want %s", i, e.Name, want)
		}
	}
	// Seq keeps counting across overwrites.
	if evs[3].Seq != 6 {
		t.Errorf("last seq = %d, want 6", evs[3].Seq)
	}
}

func TestTracerTakeResetsSequence(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(EvSnapshot, "snapshot", 0, 0)
	first := tr.Take()
	if len(first) != 1 || tr.Len() != 0 {
		t.Fatalf("take returned %d events, ring holds %d", len(first), tr.Len())
	}
	tr.Emit(EvRestore, "restore", 0, 0)
	second := tr.Take()
	if second[0].Seq != 0 {
		t.Errorf("seq after Take = %d, want 0 (per-iteration streams must be self-contained)", second[0].Seq)
	}
}

func TestRenumberAndTraceText(t *testing.T) {
	evs := []Event{
		{Seq: 9, Kind: EvSyscallEnter, Name: "sys_null", Arg: 0},
		{Seq: 12, Kind: EvSyscallExit, Name: "sys_null", Cycles: 40},
	}
	Renumber(evs)
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("renumber: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	want := "#0 i=0 c=0 syscall-enter sys_null addr=0x0 arg=0x0\n" +
		"#1 i=0 c=40 syscall-exit sys_null addr=0x0 arg=0x0\n"
	if got := TraceText(evs); got != want {
		t.Errorf("TraceText:\n got %q\nwant %q", got, want)
	}
}

func TestChromeTraceShape(t *testing.T) {
	evs := []Event{
		{Seq: 0, Kind: EvSyscallEnter, Name: "sys_open", Cycles: 10},
		{Seq: 1, Kind: EvTrap, Name: "#PF", Cycles: 20, Addr: 0x1000},
		{Seq: 2, Kind: EvSyscallExit, Name: "sys_open", Cycles: 30},
	}
	b, err := ChromeTrace(evs)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	if out[0]["ph"] != "B" || out[2]["ph"] != "E" {
		t.Errorf("syscall pair phases = %v/%v, want B/E", out[0]["ph"], out[2]["ph"])
	}
	if out[1]["ph"] != "i" || out[1]["name"] != "trap:#PF" {
		t.Errorf("trap event = %v", out[1])
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	evs := []Event{{Seq: 0, Kind: EvFault, Name: "byte-flip", Addr: 0x40, Arg: 1}}
	a, err := ChromeTrace(evs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChromeTrace(evs)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("ChromeTrace output is not deterministic")
	}
}

func TestTracerNowStamp(t *testing.T) {
	tr := NewTracer(4)
	tr.Now = func() (uint64, uint64) { return 7, 9 }
	tr.Emit(EvLease, "worker-0", 0x40, 3)
	ev := tr.Events()[0]
	if ev.Instrs != 7 || ev.Cycles != 9 {
		t.Errorf("Now-stamped event = i=%d c=%d, want 7/9", ev.Instrs, ev.Cycles)
	}
}

func TestServiceEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvLease:       "lease",
		EvLeaseExpire: "lease-expire",
		EvWorkerDeath: "worker-death",
		EvRespawn:     "respawn",
		EvDeadLetter:  "dead-letter",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestChromeTraceTracks(t *testing.T) {
	b, err := ChromeTraceTracks(
		Track{Name: "campaign", Pid: 1, Events: []Event{
			{Kind: EvSyscallEnter, Name: "sys_open", Cycles: 10},
		}},
		Track{Name: "fuzzd", Pid: 2, Events: []Event{
			{Kind: EvLease, Name: "worker-0", Cycles: 20, Arg: 1},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("len = %d, want 4 (2 metadata + 2 events)", len(out))
	}
	if out[0]["ph"] != "M" || out[0]["name"] != "process_name" {
		t.Errorf("first record is not process_name metadata: %v", out[0])
	}
	if out[3]["name"] != "lease:worker-0" || out[3]["pid"] != float64(2) {
		t.Errorf("service event = %v, want lease:worker-0 on pid 2", out[3])
	}
}
