package sfi

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// coalesce implements the O3 cmp/ja coalescing: given two RCs confining
// reads off the same base register with different displacements, the
// dominated check is deleted and the dominating one raised to the maximum
// displacement — provided that on all paths between them the base register
// is never (a) redefined or (b) spilled to memory (the temporal-attack
// precaution of §5.1.2), and no call intervenes (the callee could do
// either). Applied recursively this leaves the minimum set of checks.
func coalesce(fn *ir.Function, sites []site, s *Stats) {
	dom := ir.Dominators(fn)
	for j := range sites {
		sj := &sites[j]
		if sj.dead || sj.lea || sj.after {
			continue
		}
		for i := range sites[:j] {
			si := &sites[i]
			if si.dead || si.lea || si.after || si.base != sj.base {
				continue
			}
			if !dominates(dom, si, sj) {
				continue
			}
			if !regStableBetween(fn, si, sj, sj.base) {
				continue
			}
			if sj.disp > si.maxDisp {
				si.maxDisp = sj.disp
			}
			sj.dead = true
			s.RCCoalesced++
			break
		}
	}
}

// dominates reports whether check a is executed before check b on every
// path reaching b.
func dominates(dom [][]bool, a, b *site) bool {
	if a.bi == b.bi {
		return a.ii < b.ii
	}
	return dom[b.bi][a.bi]
}

// regStableBetween reports whether reg provably keeps its value from check a
// to check b: no write to reg, no spill of reg, and no call on any path.
func regStableBetween(fn *ir.Function, a, b *site, reg isa.Reg) bool {
	unstable := func(in isa.Instr) bool {
		if in.IsCall() {
			return true
		}
		// Spill: storing reg to memory (it could later be reloaded from
		// attacker-reachable memory — the Conti et al. temporal attack).
		if in.Op == isa.MOVmr && in.Dst == reg {
			return true
		}
		for _, w := range in.RegsWritten(nil) {
			if w == reg {
				return true
			}
		}
		return false
	}
	scan := func(bi, from, to int) bool { // [from, to)
		ins := fn.Blocks[bi].Ins
		if to > len(ins) {
			to = len(ins)
		}
		for k := from; k < to; k++ {
			if unstable(ins[k]) {
				return false
			}
		}
		return true
	}
	if a.bi == b.bi {
		return scan(a.bi, a.ii, b.ii)
	}
	// a's block from the check to the end; b's block up to the check; and
	// every block on some a->b path, in full.
	if !scan(a.bi, a.ii, len(fn.Blocks[a.bi].Ins)) {
		return false
	}
	if !scan(b.bi, 0, b.ii) {
		return false
	}
	for x := range fn.Blocks {
		if x == a.bi || x == b.bi {
			continue
		}
		if ir.ReachableBetween(fn, a.bi, x) && ir.ReachableBetween(fn, x, b.bi) {
			if !scan(x, 0, len(fn.Blocks[x].Ins)) {
				return false
			}
		}
	}
	return true
}
