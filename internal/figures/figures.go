// Package figures regenerates the paper's figures: the address-space
// layouts of Figure 1, the instrumentation phases of Figure 2 on the
// paper's running example (nhm_uncore_msr_enable_event), and the decoy
// prologue variants of Figure 3.
package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/mem"
	"repro/internal/sfi"
)

// Figure2Source reconstructs nhm_uncore_msr_enable_event() — the example
// routine of Figure 2 (Linux v3.19, arch/x86/.../perf_event_intel_uncore_snb.c).
func Figure2Source() *ir.Function {
	f, err := ir.NewBuilder("nhm_uncore_msr_enable_event").
		I(
			isa.CmpMI(isa.Mem(isa.RSI, 0x154), 0x7),
			isa.Load(isa.RCX, isa.Mem(isa.RSI, 0x140)),
			isa.Jcc(isa.CondG, "L1"),
		).
		Label("body").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSI, 0x130)),
			isa.OrRI(isa.RAX, 0x400000),
			isa.MovRR(isa.RDX, isa.RAX),
			isa.ShrRI(isa.RDX, 0x20),
			isa.Jmp("L2"),
		).
		Label("L1").
		I(
			isa.XorRR(isa.RDX, isa.RDX),
			isa.MovRI(isa.RAX, 0x1),
		).
		Label("L2").
		I(isa.Wrmsr(), isa.Ret()).
		Func()
	if err != nil {
		panic(err) // static construction
	}
	return f
}

func renderFunc(f *ir.Function) string {
	var sb strings.Builder
	for _, b := range f.Blocks {
		if b.Label != "entry" {
			fmt.Fprintf(&sb, "%s:\n", b.Label)
		}
		for _, in := range b.Ins {
			fmt.Fprintf(&sb, "\t%s\n", in.String())
		}
	}
	return sb.String()
}

// Figure2 renders the instrumentation phases (a)–(e): SFI at O0–O3 and the
// MPX conversion.
func Figure2() string {
	var sb strings.Builder
	phases := []struct {
		title string
		cfg   sfi.Config
	}{
		{"(a) kR^X-SFI basic scheme (O0)", sfi.Config{Mode: sfi.ModeSFI, Level: sfi.O0}},
		{"(b) pushfq/popfq elimination (O1)", sfi.Config{Mode: sfi.ModeSFI, Level: sfi.O1}},
		{"(c) lea elimination (O2)", sfi.Config{Mode: sfi.ModeSFI, Level: sfi.O2}},
		{"(d) cmp/ja coalescing (O3)", sfi.Config{Mode: sfi.ModeSFI, Level: sfi.O3}},
		{"(e) kR^X-MPX conversion", sfi.Config{Mode: sfi.ModeMPX}},
	}
	sb.WriteString("Figure 2: optimization phases of kR^X-SFI and kR^X-MPX\n")
	sb.WriteString("on nhm_uncore_msr_enable_event() [Linux v3.19]\n\n")
	sb.WriteString("original:\n" + renderFunc(Figure2Source()) + "\n")
	for _, ph := range phases {
		f := Figure2Source()
		st, err := sfi.Instrument(f, ph.cfg)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&sb, "%s  [RCs emitted: %d, coalesced: %d, pushfq pairs: %d]\n",
			ph.title, st.RCEmitted, st.RCCoalesced, st.PushfqPairs)
		sb.WriteString(renderFunc(f) + "\n")
	}
	return sb.String()
}

// Figure1 renders the vanilla and kR^X-KAS layouts side by side for the
// given section sizes.
func Figure1(sizes kas.SectionSizes) string {
	if sizes == (kas.SectionSizes{}) {
		sizes = kas.SectionSizes{
			Text: 48 * mem.PageSize, KrxKeys: mem.PageSize,
			Rodata: 2 * mem.PageSize, Data: 4 * mem.PageSize,
			Bss: 40 * mem.PageSize, Brk: mem.PageSize,
		}
	}
	var sb strings.Builder
	sb.WriteString("Figure 1: the Linux kernel space layout in x86-64\n\n")
	for _, l := range []*kas.Layout{kas.PlanVanilla(sizes), kas.PlanKRX(sizes, 0)} {
		for _, line := range l.Describe() {
			sb.WriteString(line + "\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure3 renders the two decoy prologue variants by actually running the
// kaslr pass over a victim function with seeds that select each variant.
func Figure3() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: decoy return-address placement (function prologue)\n\n")
	seen := map[bool]bool{}
	for seed := int64(1); len(seen) < 2 && seed < 64; seed++ {
		f, err := ir.NewBuilder("victim").
			I(isa.MovRI(isa.RAX, 1), isa.Ret()).
			Func()
		if err != nil {
			panic(err)
		}
		if _, err := diversify.Diversify(f, diversify.Config{
			K: 1, RAProt: diversify.RADecoy, Rand: rand.New(rand.NewSource(seed)),
		}); err != nil {
			panic(err)
		}
		// The prologue is the start of the real entry block (the target
		// of the entry phantom jmp).
		entry := f.Blocks[0].Ins[0].Label
		bi := f.BlockIndex(entry)
		pro := f.Blocks[bi].Ins
		below := pro[0].Op == isa.PUSH
		if seen[below] {
			continue
		}
		seen[below] = true
		variant := "(b) decoy above the real return address"
		if below {
			variant = "(a) decoy below the real return address"
		}
		fmt.Fprintf(&sb, "%s:\n", variant)
		for _, in := range pro {
			fmt.Fprintf(&sb, "\t%s\n", in.String())
			if in.Op == isa.RET || in.Op == isa.RETI {
				break
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
