package fuzzd

import (
	"fmt"
	"time"

	"repro/internal/fuzz"
	"repro/internal/fuzzd/chaos"
	"repro/internal/kernel"
)

// Lease is one grant of work: execute iterations [Lo, Hi) of the campaign
// against the frozen corpus snapshot, then report back. Gen is the grant's
// fencing token — the manager bumps it on every grant, and a result is
// accepted only if its Gen matches the chunk's current grant, so a worker
// that stalled past its deadline cannot overwrite work the manager already
// reassigned.
type Lease struct {
	Gen    int
	Lo, Hi int
	Corpus []*fuzz.Prog
}

// MsgKind classifies worker-to-manager messages.
type MsgKind int

// Message kinds.
const (
	MsgResult    MsgKind = iota // lease completed; Iters carries the results
	MsgHeartbeat                // lease still in progress; renew the deadline
	MsgDeath                    // worker died (contained panic); Cause says why
)

// IterResult is one iteration's outcome in transit: the program the worker
// derived for the iteration plus its self-contained ExecResult, everything
// the ledger needs to fold the iteration without re-deriving it.
type IterResult struct {
	Iter int
	Prog *fuzz.Prog
	Res  fuzz.ExecResult
}

// Msg is one worker-to-manager message.
type Msg struct {
	Worker int
	Kind   MsgKind
	Gen    int
	Iters  []IterResult // MsgResult only
	Cause  string       // MsgDeath only
}

// Worker is the manager's handle on one spawned worker.
type Worker interface {
	// Send hands the worker a lease. The manager only sends to workers it
	// believes idle, so implementations may assume at most one outstanding
	// lease.
	Send(l Lease)
	// Stop tells the worker to exit after its current lease, if any.
	Stop()
}

// Transport spawns workers. The in-process LocalTransport below is the only
// implementation today; the interface is the seam where OS-process or
// socket-connected workers slot in — the Lease/Msg protocol is already
// value-only (no shared memory beyond the read-only corpus snapshot), so a
// remote transport is a marshalling exercise, not a redesign.
type Transport interface {
	// Spawn starts worker id, delivering its messages to msgs. Spawn is
	// called from the manager loop; implementations must not block on msgs
	// capacity from inside Spawn itself.
	Spawn(id int, msgs chan<- Msg) (Worker, error)
}

// LocalTransport runs workers as in-process goroutines, each owning a
// fuzz.Executor (its own booted kernel from the shared build cache). It is
// also where chaos schedules take effect: faults are self-injected by the
// worker at lease start, exactly as a genuinely flaky remote worker would
// misbehave from the manager's point of view.
type LocalTransport struct {
	Opts  fuzz.Options // campaign options (already normalized by the manager)
	Chaos chaos.Func   // nil = no faults
	// Heartbeat is the interval between renewal messages while executing.
	Heartbeat time.Duration
	// StallFor is how long an ActStall worker goes dark before delivering
	// its (now stale or late) result. The manager sets it comfortably past
	// the lease deadline.
	StallFor time.Duration
	// Tune, when non-nil, adjusts each worker's kernel after boot (e.g.
	// enabling the block engine) — mirroring what krxfuzz applies to the
	// in-process fuzzer's kernels.
	Tune func(*kernel.Kernel)

	// golden, when Opts.Fork is set, is the lazily booted fork source:
	// every spawned worker — initial fleet and respawns alike — is a
	// copy-on-write fork of this one pristine executor, which never runs an
	// iteration itself and so stays parked at its snapshot point. Spawn is
	// only called from the (single-goroutine) manager loop, so lazy
	// initialization and forking need no locking; the forks themselves are
	// safe to run concurrently because shared frames are frozen.
	golden *fuzz.Executor
}

// newExecutor stands up one worker executor: a fresh boot, or — in fork
// mode — a copy-on-write fork of the golden executor. Tune runs on each
// booted kernel; forks inherit the golden kernel's tuned state instead of
// re-running the hook, so both paths spawn identically tuned workers.
func (t *LocalTransport) newExecutor() (*fuzz.Executor, error) {
	if t.Opts.Fork && t.golden != nil {
		return t.golden.Fork()
	}
	ex, err := fuzz.NewExecutor(t.Opts)
	if err != nil {
		return nil, err
	}
	if t.Tune != nil {
		t.Tune(ex.Kernel())
	}
	if t.Opts.Fork {
		t.golden = ex
		return t.golden.Fork()
	}
	return ex, nil
}

// localWorker is one spawned goroutine worker.
type localWorker struct {
	leases chan Lease
	quit   chan struct{}
}

// Send implements Worker. The leases channel is buffered one deep and the
// manager only grants to idle workers, so this never blocks.
func (w *localWorker) Send(l Lease) { w.leases <- l }

// Stop implements Worker.
func (w *localWorker) Stop() { close(w.quit) }

// Spawn implements Transport: stand up an executor (boot, or a CoW fork of
// the golden one in fork mode), start the worker loop.
func (t *LocalTransport) Spawn(id int, msgs chan<- Msg) (Worker, error) {
	ex, err := t.newExecutor()
	if err != nil {
		return nil, fmt.Errorf("fuzzd: spawn worker %d: %w", id, err)
	}
	w := &localWorker{leases: make(chan Lease, 1), quit: make(chan struct{})}
	go t.run(id, ex, w, msgs)
	return w, nil
}

// run is the worker loop: wait for a lease, serve it, repeat. A panic while
// serving — real bug or chaos-injected — is contained in serve; the loop
// then exits, having already reported the death.
func (t *LocalTransport) run(id int, ex *fuzz.Executor, w *localWorker, msgs chan<- Msg) {
	nlease := 0 // per-worker lease ordinal, the chaos schedule's clock
	for {
		select {
		case <-w.quit:
			return
		case l := <-w.leases:
			if !t.serve(id, nlease, ex, l, msgs) {
				return
			}
			nlease++
		}
	}
}

// serve executes one lease and reports the result. It returns false when the
// worker died doing it: the deferred recover converts any panic — injected
// by a chaos schedule or raised by a genuine executor bug — into a MsgDeath,
// so a worker crash is an event the manager handles, never a torn campaign.
func (t *LocalTransport) serve(id, nlease int, ex *fuzz.Executor, l Lease, msgs chan<- Msg) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			msgs <- Msg{Worker: id, Kind: MsgDeath, Gen: l.Gen, Cause: fmt.Sprint(r)}
			ok = false
		}
	}()

	act := chaos.ActNone
	if t.Chaos != nil {
		act = t.Chaos(id, nlease)
	}
	switch act {
	case chaos.ActKill:
		panic(fmt.Sprintf("chaos: killed on lease %d", nlease))
	case chaos.ActStall:
		// Go dark: no heartbeats, deliver the result long after the manager
		// has expired the lease (and possibly regranted the chunk).
		time.Sleep(t.StallFor)
	}

	// Heartbeat on a timer, not at iteration boundaries: renewal must not
	// depend on how long one iteration takes (a slow machine is not a dead
	// worker). The ticker goroutine stops when the lease is served; a final
	// heartbeat racing past the result is fenced off harmlessly by Gen.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		tick := time.NewTicker(t.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				msgs <- Msg{Worker: id, Kind: MsgHeartbeat, Gen: l.Gen}
			}
		}
	}()

	iters := make([]IterResult, 0, l.Hi-l.Lo)
	for i := l.Lo; i < l.Hi; i++ {
		if act == chaos.ActDelay {
			// Run slow but stay alive: the manager should keep renewing the
			// lease rather than expiring it.
			time.Sleep(t.Heartbeat)
		}
		prog := fuzz.PickProg(t.Opts.Seed, i, l.Corpus, ex.Kaddrs())
		res, err := ex.Exec(prog, fuzz.InjSeed(t.Opts.Seed, i))
		if err != nil {
			// An executor that cannot run its kernel is as dead as a panicked
			// one — surface it through the same containment path.
			panic(fmt.Sprintf("exec iteration %d: %v", i, err))
		}
		iters = append(iters, IterResult{Iter: i, Prog: prog, Res: res})
	}
	msgs <- Msg{Worker: id, Kind: MsgResult, Gen: l.Gen, Iters: iters}
	return true
}
