package cpu

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/link"
	"repro/internal/mem"
)

// buildAndInstall links the program under kR^X-KAS, installs it, and returns
// a CPU positioned to call fn with a sentinel return address.
func buildAndInstall(t *testing.T, prog *ir.Program) (*CPU, *link.Image, *kas.Space) {
	t.Helper()
	img, err := link.Link(prog, link.Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	pool := kas.NewPhysPool(16 << 20)
	sp, err := kas.Install(img.Layout, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Install(sp); err != nil {
		t.Fatal(err)
	}
	c := New(sp.AS)
	return c, img, sp
}

// callKernelFunc positions the CPU at fn in kernel mode with a fresh stack.
func callKernelFunc(t *testing.T, c *CPU, img *link.Image, sp *kas.Space, fn string) {
	t.Helper()
	stack, err := sp.AllocMapped(4)
	if err != nil {
		t.Fatal(err)
	}
	top := stack + 4*mem.PageSize - 16
	c.Mode = Kernel
	c.Regs[isa.RSP] = top
	if f := c.AS.Write(top, StopMagic, 8); f != nil {
		t.Fatal(f)
	}
	addr, ok := img.FuncAddr(fn)
	if !ok {
		t.Fatalf("no function %s", fn)
	}
	c.RIP = addr
}

func mustFunc(t *testing.T, b *ir.Builder) *ir.Function {
	t.Helper()
	f, err := b.Func()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestArithmeticAndFlags(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("f").
		I(
			isa.MovRI(isa.RAX, 5),
			isa.AddRI(isa.RAX, 7), // 12
			isa.MovRI(isa.RBX, 4),
			isa.SubRR(isa.RAX, isa.RBX), // 8
			isa.ShlRI(isa.RAX, 2),       // 32
			isa.ShrRI(isa.RAX, 1),       // 16
			isa.OrRI(isa.RAX, 1),        // 17
			isa.XorRR(isa.RCX, isa.RCX),
			isa.Ret(),
		))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	res := c.Run(1000)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v trap=%v", res.Reason, res.Trap)
	}
	if c.Reg(isa.RAX) != 17 {
		t.Errorf("rax = %d, want 17", c.Reg(isa.RAX))
	}
	if c.Reg(isa.RCX) != 0 {
		t.Errorf("rcx = %d, want 0", c.Reg(isa.RCX))
	}
	if c.RFlags&isa.FlagZF == 0 {
		t.Error("xor rcx,rcx must set ZF")
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	f := mustFunc(t, ir.NewBuilder("sum").
		I(
			isa.XorRR(isa.RAX, isa.RAX),
			isa.MovRI(isa.RCX, 10),
		).
		Label("loop").
		I(
			isa.AddRR(isa.RAX, isa.RCX),
			isa.Dec(isa.RCX),
			isa.CmpRI(isa.RCX, 0),
			isa.Jcc(isa.CondNE, "loop"),
		).
		Label("done").
		I(isa.Ret()))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "sum")
	res := c.Run(1000)
	if res.Reason != StopReturn || c.Reg(isa.RAX) != 55 {
		t.Fatalf("sum: reason=%v rax=%d trap=%v", res.Reason, c.Reg(isa.RAX), res.Trap)
	}
}

func TestCallAndMemory(t *testing.T) {
	callee := mustFunc(t, ir.NewBuilder("double").
		I(isa.AddRR(isa.RDI, isa.RDI), isa.MovRR(isa.RAX, isa.RDI), isa.Ret()))
	caller := mustFunc(t, ir.NewBuilder("caller").
		I(
			isa.MovRI(isa.RDI, 21),
			isa.Call("double"),
			isa.Store(isa.MemAbs("result", 0), isa.RAX),
			isa.Load(isa.RBX, isa.MemAbs("result", 0)),
			isa.Ret(),
		))
	prog := &ir.Program{
		Funcs: []*ir.Function{caller, callee},
		Data:  []ir.DataSym{{Name: "result", Bytes: make([]byte, 8)}},
	}
	c, img, sp := buildAndInstall(t, prog)
	callKernelFunc(t, c, img, sp, "caller")
	res := c.Run(1000)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v trap=%v", res.Reason, res.Trap)
	}
	if c.Reg(isa.RBX) != 42 {
		t.Errorf("rbx = %d, want 42", c.Reg(isa.RBX))
	}
}

func TestIndirectCallThroughTable(t *testing.T) {
	target := mustFunc(t, ir.NewBuilder("target").
		I(isa.MovRI(isa.RAX, 0x1234), isa.Ret()))
	caller := mustFunc(t, ir.NewBuilder("caller").
		I(
			isa.MovSym(isa.RBX, "table"),
			isa.CallMem(isa.Mem(isa.RBX, 8)),
			isa.Ret(),
		))
	prog := &ir.Program{
		Funcs:  []*ir.Function{caller, target},
		Data:   []ir.DataSym{{Name: "table", Bytes: make([]byte, 16)}},
		Relocs: []ir.DataReloc{{In: "table", Off: 8, Sym: "target"}},
	}
	c, img, sp := buildAndInstall(t, prog)
	callKernelFunc(t, c, img, sp, "caller")
	res := c.Run(1000)
	if res.Reason != StopReturn || c.Reg(isa.RAX) != 0x1234 {
		t.Fatalf("indirect call: %v rax=%#x trap=%v", res.Reason, c.Reg(isa.RAX), res.Trap)
	}
}

func TestRepMovsCopiesAndCosts(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("copy").
		I(
			isa.MovSym(isa.RSI, "src"),
			isa.MovSym(isa.RDI, "dst"),
			isa.MovRI(isa.RCX, 8), // 8 quadwords = 64 bytes
			isa.Movs(8, true),
			isa.Ret(),
		))
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	prog := &ir.Program{
		Funcs: []*ir.Function{f},
		Data: []ir.DataSym{
			{Name: "src", Bytes: src},
			{Name: "dst", Bytes: make([]byte, 64)},
		},
	}
	c, img, sp := buildAndInstall(t, prog)
	callKernelFunc(t, c, img, sp, "copy")
	res := c.Run(1000)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v trap=%v", res.Reason, res.Trap)
	}
	got, err := sp.AS.Peek(img.Symbols["dst"], 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("dst[%d] = %d", i, got[i])
		}
	}
	if c.Reg(isa.RCX) != 0 {
		t.Error("rcx must be 0 after rep")
	}
}

func TestMPXBoundViolation(t *testing.T) {
	// bndcu against a low upper bound must raise #BR in kernel mode,
	// which is fatal (the kR^X violation path).
	f := mustFunc(t, ir.NewBuilder("f").
		I(
			isa.MovRI(isa.RSI, 0x5000),
			isa.Bndcu(isa.BND0, isa.Mem(isa.RSI, 0x154)),
			isa.Ret(),
		))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	c.Bnd[0] = Bound{LB: 0, UB: 0x5000}
	res := c.Run(1000)
	if res.Reason != StopTrap || res.Trap.Kind != TrapBoundRange {
		t.Fatalf("expected #BR, got %v %v", res.Reason, res.Trap)
	}
	// With a permissive bound the same code runs clean.
	callKernelFunc(t, c, img, sp, "f")
	c.Bnd[0] = Bound{LB: 0, UB: ^uint64(0)}
	res = c.Run(1000)
	if res.Reason != StopReturn {
		t.Fatalf("expected clean return, got %v %v", res.Reason, res.Trap)
	}
}

func TestInt3TripwireIsFatalInKernel(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("f").
		I(isa.Int3(), isa.Ret()))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	res := c.Run(100)
	if res.Reason != StopTrap || res.Trap.Kind != TrapBreakpoint {
		t.Fatalf("expected #BP trap, got %v %v", res.Reason, res.Trap)
	}
}

func TestHaltStopsRun(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("f").I(isa.Hlt()))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	res := c.Run(100)
	if res.Reason != StopHalt {
		t.Fatalf("expected halt, got %v", res.Reason)
	}
	if res.HaltRIP != img.Symbols["f"] {
		t.Errorf("HaltRIP = %#x, want %#x", res.HaltRIP, img.Symbols["f"])
	}
}

func TestInstrLimit(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("spin").
		Label("loop").
		I(isa.Jmp("loop")))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "spin")
	res := c.Run(50)
	if res.Reason != StopLimit || res.Instrs != 50 {
		t.Fatalf("limit: %v instrs=%d", res.Reason, res.Instrs)
	}
}

func TestSyscallRoundTrip(t *testing.T) {
	// Kernel entry: set rax=99, sysret.
	entry := mustFunc(t, ir.NewBuilder("entry").
		I(isa.MovRI(isa.RAX, 99), isa.Sysret()))
	// User program: syscall; hlt is privileged so end with a jmp self that
	// we catch by limit — instead store to user memory and loop.
	user := mustFunc(t, ir.NewBuilder("user").
		I(isa.Syscall()).
		Label("spin").
		I(isa.Jmp("spin")))
	prog := &ir.Program{Funcs: []*ir.Function{entry}}
	c, img, sp := buildAndInstall(t, prog)

	// Place user code in the lower half.
	uimg, err := link.Link(&ir.Program{Funcs: []*ir.Function{user}}, link.Options{Layout: kas.Vanilla})
	if err != nil {
		t.Fatal(err)
	}
	const userBase = 0x400000
	if _, err := sp.AS.Map(userBase, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := sp.AS.Poke(userBase, uimg.Text); err != nil {
		t.Fatal(err)
	}
	ustack, err := sp.AS.Map(0x7f0000000000, 2, mem.PermRW)
	_ = ustack
	if err != nil {
		t.Fatal(err)
	}

	kstack, err := sp.AllocMapped(2)
	if err != nil {
		t.Fatal(err)
	}
	c.SyscallEntry = img.Symbols["entry"]
	c.KernelStackTop = kstack + 2*mem.PageSize - 16
	c.Mode = User
	c.RIP = userBase + (uimg.Symbols["user"] - uimg.Symbols["_text"])
	c.Regs[isa.RSP] = 0x7f0000002000 - 16

	res := c.Run(20)
	if res.Reason != StopLimit {
		t.Fatalf("user spin expected limit, got %v trap=%v", res.Reason, res.Trap)
	}
	if c.Mode != User {
		t.Error("must be back in user mode after sysret")
	}
	if c.Reg(isa.RAX) != 99 {
		t.Errorf("syscall result rax = %d", c.Reg(isa.RAX))
	}
}

func TestSMEPBlocksRet2usr(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("f").
		I(isa.MovRI(isa.RAX, 0x400000), isa.CallReg(isa.RAX), isa.Ret()))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	// Map attacker-controlled user page with "shellcode".
	if _, err := sp.AS.Map(0x400000, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := sp.AS.Poke(0x400000, []byte{byte(isa.RET)}); err != nil {
		t.Fatal(err)
	}
	callKernelFunc(t, c, img, sp, "f")
	c.SMEP = true
	res := c.Run(100)
	if res.Reason != StopTrap || res.Trap.Kind != TrapProtection {
		t.Fatalf("SMEP must block kernel->user fetch: %v %v", res.Reason, res.Trap)
	}
	// Without SMEP the ret2usr fetch is allowed (legacy behaviour).
	callKernelFunc(t, c, img, sp, "f")
	c.SMEP = false
	res = c.Run(100)
	if res.Reason != StopReturn {
		t.Fatalf("without SMEP the call should succeed: %v %v", res.Reason, res.Trap)
	}
}

func TestUserCannotTouchKernelMemory(t *testing.T) {
	c := New(mem.NewAddressSpace())
	if _, err := c.AS.Map(0x400000, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	// mov kernel_addr -> load must #GP in user mode.
	ld := isa.Load(isa.RAX, isa.Mem(isa.RBX, 0))
	code, err := ld.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Poke(0x400000, code); err != nil {
		t.Fatal(err)
	}
	c.Mode = User
	c.RIP = 0x400000
	c.Regs[isa.RBX] = kas.KernelBase
	_, trap := c.Step()
	if trap == nil || trap.Kind != TrapProtection {
		t.Fatalf("user access to kernel memory must #GP, got %v", trap)
	}
}

func TestUserFaultDeliveredToKernelHandler(t *testing.T) {
	// Fault handler: count the fault, iret.
	handler := mustFunc(t, ir.NewBuilder("do_fault").
		I(
			isa.Load(isa.RAX, isa.MemAbs("fault_count", 0)),
			isa.Inc(isa.RAX),
			isa.Store(isa.MemAbs("fault_count", 0), isa.RAX),
			// Skip the faulting instruction: frame rip += instruction
			// length (the test's faulting load is 10 bytes).
			isa.Load(isa.RBX, isa.Mem(isa.RSP, 0)),
			isa.AddRI(isa.RBX, 10),
			isa.Store(isa.Mem(isa.RSP, 0), isa.RBX),
			isa.Iret(),
		))
	prog := &ir.Program{
		Funcs: []*ir.Function{handler},
		Data:  []ir.DataSym{{Name: "fault_count", Bytes: make([]byte, 8)}},
	}
	c, img, sp := buildAndInstall(t, prog)

	// User code: load from an unmapped user page, then spin.
	userLd := isa.Load(isa.RAX, isa.Mem(isa.RBX, 0))
	code, err := userLd.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	jmpSelf := isa.Instr{Op: isa.JMP, Imm: -5}
	code, err = jmpSelf.Encode(code)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.AS.Map(0x400000, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := sp.AS.Poke(0x400000, code); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.AS.Map(0x7f0000000000, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	kstack, err := sp.AllocMapped(2)
	if err != nil {
		t.Fatal(err)
	}
	c.FaultEntry = img.Symbols["do_fault"]
	c.KernelStackTop = kstack + 2*mem.PageSize
	c.Mode = User
	c.RIP = 0x400000
	c.Regs[isa.RSP] = 0x7f0000001000 - 16
	c.Regs[isa.RBX] = 0x500000 // unmapped user address

	res := c.Run(40)
	if res.Reason != StopLimit {
		t.Fatalf("expected spin after handled fault, got %v trap=%v", res.Reason, res.Trap)
	}
	v, err2 := sp.AS.Peek(img.Symbols["fault_count"], 8)
	if err2 != nil || v[0] != 1 {
		t.Fatalf("fault_count = %v (err %v), want 1", v, err2)
	}
	if c.Mode != User {
		t.Error("must resume in user mode after iret")
	}
}

func TestKernelFaultIsFatal(t *testing.T) {
	unmapped := kas.VmemmapBase // mapped by no test image
	f := mustFunc(t, ir.NewBuilder("f").
		I(isa.MovRI(isa.RBX, int64(unmapped)), isa.Load(isa.RAX, isa.Mem(isa.RBX, 0)), isa.Ret()))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	c.FaultEntry = 0x1 // even with a handler, kernel faults stop the run
	res := c.Run(100)
	if res.Reason != StopTrap || res.Trap.Kind != TrapPageFault {
		t.Fatalf("kernel fault must be fatal: %v %v", res.Reason, res.Trap)
	}
}

func TestMPXSpillFillAcrossModeSwitch(t *testing.T) {
	entry := mustFunc(t, ir.NewBuilder("entry").I(isa.Sysret()))
	prog := &ir.Program{Funcs: []*ir.Function{entry}}
	c, img, sp := buildAndInstall(t, prog)
	if _, err := sp.AS.Map(0x400000, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	sc, err := isa.Syscall().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err = isa.Nop().Encode(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AS.Poke(0x400000, sc); err != nil {
		t.Fatal(err)
	}
	kstack, _ := sp.AllocMapped(1)
	c.SyscallEntry = img.Symbols["entry"]
	c.KernelStackTop = kstack + mem.PageSize
	c.MPXKernel = true
	c.KernelBnd0 = Bound{LB: 0, UB: img.Symbols["_krx_edata"]}
	userBound := Bound{LB: 0x1000, UB: 0x2000}
	c.Bnd[0] = userBound
	c.Mode = User
	c.RIP = 0x400000
	if _, err := sp.AS.Map(0x7f0000000000, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c.Regs[isa.RSP] = 0x7f0000001000 - 16

	// Step the syscall: kernel bnd0 must be loaded.
	if _, trap := c.Step(); trap != nil {
		t.Fatal(trap)
	}
	if c.Bnd[0] != c.KernelBnd0 {
		t.Fatalf("kernel bnd0 not loaded: %+v", c.Bnd[0])
	}
	// Step the sysret: user bnd0 must be restored.
	if _, trap := c.Step(); trap != nil {
		t.Fatal(trap)
	}
	if c.Bnd[0] != userBound {
		t.Fatalf("user bnd0 not restored: %+v", c.Bnd[0])
	}
}

func TestCmpsRepeCompare(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("cmp").
		I(
			isa.MovSym(isa.RSI, "a"),
			isa.MovSym(isa.RDI, "b"),
			isa.MovRI(isa.RCX, 8),
			isa.Cmps(1, true),
			isa.Ret(),
		))
	prog := &ir.Program{
		Funcs: []*ir.Function{f},
		Data: []ir.DataSym{
			{Name: "a", Bytes: []byte("abcdefgh")},
			{Name: "b", Bytes: []byte("abcdXfgh")},
		},
	}
	c, img, sp := buildAndInstall(t, prog)
	callKernelFunc(t, c, img, sp, "cmp")
	res := c.Run(1000)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v %v", res.Reason, res.Trap)
	}
	// repe cmpsb stops at the mismatch ('e' vs 'X', index 4): rcx was
	// decremented 5 times -> 3 left, ZF clear.
	if c.Reg(isa.RCX) != 3 {
		t.Errorf("rcx = %d, want 3", c.Reg(isa.RCX))
	}
	if c.RFlags&isa.FlagZF != 0 {
		t.Error("ZF must be clear at mismatch")
	}
}

func TestWrmsrRdmsr(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("msr").
		I(
			isa.MovRI(isa.RCX, 0xC0000082), // MSR_LSTAR
			isa.MovRI(isa.RAX, 0x12345678),
			isa.MovRI(isa.RDX, 0x1),
			isa.Wrmsr(),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.XorRR(isa.RDX, isa.RDX),
			isa.Instr{Op: isa.RDMSR},
			isa.Ret(),
		))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "msr")
	res := c.Run(100)
	if res.Reason != StopReturn {
		t.Fatalf("%v %v", res.Reason, res.Trap)
	}
	if c.Reg(isa.RAX) != 0x12345678 || c.Reg(isa.RDX) != 1 {
		t.Errorf("rdmsr: rax=%#x rdx=%#x", c.Reg(isa.RAX), c.Reg(isa.RDX))
	}
}

func TestCyclesAccumulate(t *testing.T) {
	f := mustFunc(t, ir.NewBuilder("f").
		I(isa.Pushfq(), isa.Popfq(), isa.Ret()))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	res := c.Run(100)
	if res.Reason != StopReturn {
		t.Fatal(res.Reason)
	}
	want := isa.Pushfq().Cost() + isa.Popfq().Cost() + isa.Ret().Cost()
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
}

func TestRunawayRepIsBounded(t *testing.T) {
	// A hijacked rep with a garbage count must trap instead of hanging
	// the emulator inside one Step.
	f := mustFunc(t, ir.NewBuilder("f").
		I(
			isa.MovRI(isa.RCX, -1), // rcx = 2^64-1
			isa.MovSym(isa.RSI, "buf"),
			isa.Lods(1, true),
			isa.Ret(),
		))
	prog := &ir.Program{
		Funcs: []*ir.Function{f},
		// Enough mapped bytes that the per-instruction cap, not a page
		// fault, is what stops the runaway rep.
		BSS: []ir.BSSSym{{Name: "buf", Size: 5 << 20}},
	}
	c, img, sp := buildAndInstall(t, prog)
	callKernelFunc(t, c, img, sp, "f")
	res := c.Run(100)
	if res.Reason != StopTrap || res.Trap.Kind != TrapProtection {
		t.Fatalf("runaway rep must #GP, got %v %v", res.Reason, res.Trap)
	}
}
