// Artifact-store host-performance benchmark: what the persistent
// content-addressed store buys a booting process. A cold link runs the full
// build pipeline over the kernel corpus — SFI instrumentation,
// diversification, linking; a store hit is a fresh ImageCache (a new
// process) reading the blob back from a populated on-disk store. Both must
// produce the byte-identical image — the warm-start invariant the store
// tests and CI cmp gates enforce — so the rows report a pure host-time
// ratio. Kernel construction (bootImage) is identical either way and is
// deliberately outside both windows: it would only dilute the ratio with
// work the store cannot touch.

package bench

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/store"
)

// StoreResult is one configuration's artifact-store measurement: the cost
// of a cold link (image built from scratch) against a store hit (a fresh
// ImageCache over a populated on-disk store serving the same image — the
// second-process warm start). Both timings are min-of-emuReps.
type StoreResult struct {
	Name            string  `json:"name"`
	Reps            int     `json:"reps"`
	ColdNs          int64   `json:"host_ns_per_cold_link"`
	HitNs           int64   `json:"host_ns_per_store_hit"`
	StoreHitSpeedup float64 `json:"store_hit_speedup"`
}

// measureStore times cold-link vs store-hit image acquisition under one
// configuration. Every hit repetition uses a fresh ImageCache over the same
// disk store — the in-process memo starts empty, so the timed path is blob
// read + decode, never a hidden memory hit — and is checked for zero link
// builds and a byte-identical image.
func measureStore(cfg core.Config) (StoreResult, error) {
	res := StoreResult{Name: "store/" + cfg.Name(), Reps: emuReps}
	dir, err := os.MkdirTemp("", "krx-storebench-")
	if err != nil {
		return res, fmt.Errorf("bench: %s: %w", res.Name, err)
	}
	defer os.RemoveAll(dir)
	disk, err := store.OpenDisk(dir, 0)
	if err != nil {
		return res, fmt.Errorf("bench: %s: %w", res.Name, err)
	}
	defer disk.Close()
	prog, err := kernel.BuildCorpus()
	if err != nil {
		return res, fmt.Errorf("bench: %s: corpus: %w", res.Name, err)
	}

	// Populate the store once, untimed: the blob every hit repetition reads.
	ref, err := core.NewImageCache(disk).Build(prog, "kernel-corpus", cfg)
	if err != nil {
		return res, fmt.Errorf("bench: %s: populate: %w", res.Name, err)
	}

	var cold, hit time.Duration
	for rep := 0; rep < emuReps; rep++ {
		start := time.Now()
		r, err := core.Build(prog, cfg) // the full link pipeline
		if err != nil {
			return res, fmt.Errorf("bench: %s: cold link: %w", res.Name, err)
		}
		d := time.Since(start)
		if !bytes.Equal(r.Image.Text, ref.Image.Text) {
			return res, fmt.Errorf("bench: %s: cold-linked image differs from the stored one", res.Name)
		}
		if rep == 0 || d < cold {
			cold = d
		}
	}
	for rep := 0; rep < emuReps; rep++ {
		warm := core.NewImageCache(disk)
		start := time.Now()
		r, err := warm.Build(prog, "kernel-corpus", cfg)
		if err != nil {
			return res, fmt.Errorf("bench: %s: store hit: %w", res.Name, err)
		}
		d := time.Since(start)
		if got := warm.Stats().Builds; got != 0 {
			return res, fmt.Errorf("bench: %s: store hit ran %d link builds, want 0", res.Name, got)
		}
		if !bytes.Equal(r.Image.Text, ref.Image.Text) {
			return res, fmt.Errorf("bench: %s: store-hit image differs from the cold link", res.Name)
		}
		if rep == 0 || d < hit {
			hit = d
		}
	}
	res.ColdNs = cold.Nanoseconds()
	res.HitNs = hit.Nanoseconds()
	if res.HitNs > 0 {
		res.StoreHitSpeedup = float64(res.ColdNs) / float64(res.HitNs)
	}
	return res, nil
}
