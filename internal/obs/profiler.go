package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/link"
)

// Attribution rules (the determinism contract, DESIGN.md §"Observability"):
//
//   - Exclusive counts are exact: every executed instruction is charged to
//     the function whose symbol range contains its address (binary search
//     over the image's placed functions, with a last-hit fast path that
//     makes the straight-line common case O(1) and decode-cache friendly).
//     Addresses below the upper half are "[user]"; upper-half addresses
//     outside every placed function are "[other]".
//
//   - Trap-delivery cost (isa.TrapCost per delivery, charged by the CPU
//     outside any instruction) is attributed to the function containing the
//     faulting RIP, via the TrapProbe channel. With both channels the
//     conservation invariant is exact: the sum of attributed cycles equals
//     the CPU's cycle delta over the attachment window.
//
//   - Inclusive counts ride a shadow call stack: CALL/SYSCALL push a frame,
//     RET/SYSRET/IRET pop one, and a frame's subtree total is credited to
//     its function when the frame pops (propagating to the caller), with
//     recursion counted once. Control transfers that bypass call/ret
//     discipline — tail jumps, ROP chains, trap entries — do not move
//     frames, so inclusive numbers are best-effort under adversarial
//     control flow while exclusive numbers stay exact.
//
//   - The syscall dimension keys every attributed cycle by the syscall
//     number in %rax when the SYSCALL instruction executed, until the
//     matching SYSRET; cycles outside any syscall key to -1.
//
//   - Snapshot restores rewind the CPU's counters; the profiler detects
//     these as external counter jumps (every genuine charge arrives with
//     its exact cost in a callback) and excludes them from the conservation
//     target, so the invariant stays exact across restore-heavy workloads
//     like fuzzing campaigns.

// pseudo-function slots appended after the image's placed functions.
const (
	pseudoUser  = 0 // rip below the upper half
	pseudoOther = 1 // upper half, outside every placed function
	numPseudo   = 2
)

// NoSyscall keys profile cycles attributed outside any syscall window.
const NoSyscall int64 = -1

// pframe is one shadow-stack frame: the function it resolved to (-1 until
// the first instruction after the call executes) and the cycle/instruction
// subtree accumulated while it or any callee was on top.
type pframe struct {
	idx  int32
	sub  uint64
	subI uint64
}

// Profiler attributes every executed cycle to its owning function and
// syscall. It implements cpu.ExecProbe and cpu.TrapProbe; install with
// Attach (or cpu.AddProbe) and read results with Report.
type Profiler struct {
	c *cpu.CPU

	starts []uint64
	ends   []uint64
	names  []string // placed functions, then the pseudo slots
	nFuncs int

	exclC, exclI []uint64
	inclC, inclI []uint64
	onStack      []uint32
	stack        []pframe
	last         int // last lookup hit (locality fast path)

	sysC, sysI map[int64]uint64
	curSys     int64

	startCycles uint64
	startInstrs uint64
	attributedC uint64
	attributedI uint64

	// Counter-rewind tracking: kernel.Restore rewinds CPU.Cycles/Instrs to
	// snapshot values, which would break a naive "delta since Attach"
	// baseline. Every charge the CPU makes fires a probe callback carrying
	// its exact cost, so any difference between the observed counter and
	// (previous counter + charged cost) is an external jump — a restore —
	// accumulated here (mod 2^64, so either direction is exact) and excluded
	// from the conservation target.
	prevCycles uint64
	prevInstrs uint64
	jumpC      uint64
	jumpI      uint64
}

// NewProfiler builds a profiler over the image's placed functions.
func NewProfiler(img *link.Image) *Profiler {
	p := &Profiler{curSys: NoSyscall, last: -1}
	funcs := append([]link.FuncSym(nil), img.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Addr < funcs[j].Addr })
	for _, f := range funcs {
		p.starts = append(p.starts, f.Addr)
		p.ends = append(p.ends, f.Addr+f.Size)
		p.names = append(p.names, f.Name)
	}
	p.nFuncs = len(funcs)
	p.names = append(p.names, "[user]", "[other]")
	n := p.nFuncs + numPseudo
	p.exclC = make([]uint64, n)
	p.exclI = make([]uint64, n)
	p.inclC = make([]uint64, n)
	p.inclI = make([]uint64, n)
	p.onStack = make([]uint32, n)
	p.sysC = make(map[int64]uint64)
	p.sysI = make(map[int64]uint64)
	return p
}

// Attach installs the profiler on the CPU and anchors the conservation
// baseline at the CPU's current counters.
func (p *Profiler) Attach(c *cpu.CPU) {
	p.c = c
	p.startCycles = c.Cycles
	p.startInstrs = c.Instrs
	p.prevCycles = c.Cycles
	p.prevInstrs = c.Instrs
	c.AddProbe(p)
}

// Detach uninstalls the profiler. Accumulated counts are retained.
func (p *Profiler) Detach() {
	if p.c != nil {
		p.c.RemoveProbe(p)
	}
}

// lookup maps an instruction address to its function slot.
func (p *Profiler) lookup(rip uint64) int {
	if rip < cpu.UpperHalf {
		return p.nFuncs + pseudoUser
	}
	if l := p.last; l >= 0 && l < p.nFuncs && rip >= p.starts[l] && rip < p.ends[l] {
		return l
	}
	i := sort.Search(p.nFuncs, func(i int) bool { return p.ends[i] > rip })
	if i < p.nFuncs && rip >= p.starts[i] {
		p.last = i
		return i
	}
	return p.nFuncs + pseudoOther
}

// OnExec implements cpu.ExecProbe: exact exclusive attribution, the syscall
// dimension, and the shadow-stack bookkeeping for inclusive counts.
func (p *Profiler) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	p.jumpC += p.c.Cycles - (p.prevCycles + cycles)
	p.prevCycles = p.c.Cycles
	p.jumpI += p.c.Instrs - (p.prevInstrs + 1)
	p.prevInstrs = p.c.Instrs

	idx := p.lookup(rip)
	p.exclC[idx] += cycles
	p.exclI[idx]++
	p.attributedC += cycles
	p.attributedI++
	p.sysC[p.curSys] += cycles
	p.sysI[p.curSys]++

	if len(p.stack) == 0 {
		p.stack = append(p.stack, pframe{idx: int32(idx)})
		p.onStack[idx]++
	}
	top := &p.stack[len(p.stack)-1]
	if top.idx < 0 {
		top.idx = int32(idx)
		p.onStack[idx]++
	}
	top.sub += cycles
	top.subI++

	switch in.Op {
	case isa.CALL, isa.CALLR, isa.CALLM:
		p.stack = append(p.stack, pframe{idx: -1})
	case isa.SYSCALL:
		p.curSys = int64(p.c.Reg(isa.RAX))
		p.stack = append(p.stack, pframe{idx: -1})
	case isa.RET, isa.RETI:
		p.pop()
	case isa.SYSRET:
		p.curSys = NoSyscall
		p.pop()
	case isa.IRET:
		p.curSys = NoSyscall
		p.pop()
	}
}

// OnTrap implements cpu.TrapProbe: the delivery cost the CPU charges
// outside any instruction is attributed to the faulting function, keeping
// the conservation invariant exact.
func (p *Profiler) OnTrap(t *cpu.Trap, cycles uint64) {
	p.jumpC += p.c.Cycles - (p.prevCycles + cycles)
	p.prevCycles = p.c.Cycles
	p.jumpI += p.c.Instrs - p.prevInstrs
	p.prevInstrs = p.c.Instrs

	idx := p.lookup(t.RIP)
	p.exclC[idx] += cycles
	p.attributedC += cycles
	p.sysC[p.curSys] += cycles
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].sub += cycles
	}
}

// pop closes the top shadow frame, crediting its subtree to its function
// (once per recursion group) and propagating the subtree to the caller.
func (p *Profiler) pop() {
	if len(p.stack) == 0 {
		return
	}
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	if f.idx >= 0 {
		p.onStack[f.idx]--
		if p.onStack[f.idx] == 0 {
			p.inclC[f.idx] += f.sub
			p.inclI[f.idx] += f.subI
		}
	}
	if len(p.stack) > 0 {
		top := &p.stack[len(p.stack)-1]
		top.sub += f.sub
		top.subI += f.subI
	}
}

// Attributed returns the totals attributed so far (cycles, instructions).
func (p *Profiler) Attributed() (uint64, uint64) { return p.attributedC, p.attributedI }

// CheckConservation verifies the profiler's invariant against the CPU it is
// attached to: every cycle and instruction the CPU counted since Attach is
// attributed exactly once, on both the function and the syscall dimension.
func (p *Profiler) CheckConservation() error {
	wantC := p.c.Cycles - p.startCycles - p.jumpC
	wantI := p.c.Instrs - p.startInstrs - p.jumpI
	if p.attributedC != wantC || p.attributedI != wantI {
		return fmt.Errorf("obs: attribution leak: attributed %d cycles / %d instrs, CPU delta %d / %d",
			p.attributedC, p.attributedI, wantC, wantI)
	}
	var sumC, sumI uint64
	for i := range p.exclC {
		sumC += p.exclC[i]
		sumI += p.exclI[i]
	}
	if sumC != p.attributedC || sumI != p.attributedI {
		return fmt.Errorf("obs: function dimension diverges: sum %d/%d, attributed %d/%d",
			sumC, sumI, p.attributedC, p.attributedI)
	}
	sumC, sumI = 0, 0
	for _, v := range p.sysC {
		sumC += v
	}
	for _, v := range p.sysI {
		sumI += v
	}
	if sumC != p.attributedC || sumI != p.attributedI {
		return fmt.Errorf("obs: syscall dimension diverges: sum %d/%d, attributed %d/%d",
			sumC, sumI, p.attributedC, p.attributedI)
	}
	return nil
}

// FuncProfile is one function's attributed totals.
type FuncProfile struct {
	Name       string
	ExclCycles uint64
	ExclInstrs uint64
	InclCycles uint64
	InclInstrs uint64
}

// SyscallProfile is one syscall number's attributed totals. Nr is
// NoSyscall (-1) for cycles outside any syscall window.
type SyscallProfile struct {
	Nr     int64
	Cycles uint64
	Instrs uint64
}

// ProfileReport is a point-in-time rendering of the profiler's counts.
type ProfileReport struct {
	TotalCycles uint64 // CPU cycle delta over the attachment window
	TotalInstrs uint64
	Attributed  uint64 // attributed cycles (== TotalCycles when conserved)
	Funcs       []FuncProfile    // sorted by exclusive cycles desc, then name
	BySyscall   []SyscallProfile // sorted by syscall number
}

// Report snapshots the profiler. Frames still open on the shadow stack are
// virtually unwound so inclusive counts cover in-flight calls.
func (p *Profiler) Report() *ProfileReport {
	rep := &ProfileReport{
		TotalCycles: p.c.Cycles - p.startCycles - p.jumpC,
		TotalInstrs: p.c.Instrs - p.startInstrs - p.jumpI,
		Attributed:  p.attributedC,
	}
	inclC := append([]uint64(nil), p.inclC...)
	inclI := append([]uint64(nil), p.inclI...)
	onStack := append([]uint32(nil), p.onStack...)
	var carry, carryI uint64
	for i := len(p.stack) - 1; i >= 0; i-- {
		f := p.stack[i]
		sub, subI := f.sub+carry, f.subI+carryI
		if f.idx >= 0 {
			onStack[f.idx]--
			if onStack[f.idx] == 0 {
				inclC[f.idx] += sub
				inclI[f.idx] += subI
			}
		}
		carry, carryI = sub, subI
	}
	for i, name := range p.names {
		if p.exclI[i] == 0 && p.exclC[i] == 0 && inclC[i] == 0 {
			continue
		}
		rep.Funcs = append(rep.Funcs, FuncProfile{
			Name:       name,
			ExclCycles: p.exclC[i],
			ExclInstrs: p.exclI[i],
			InclCycles: inclC[i],
			InclInstrs: inclI[i],
		})
	}
	sort.Slice(rep.Funcs, func(i, j int) bool {
		if rep.Funcs[i].ExclCycles != rep.Funcs[j].ExclCycles {
			return rep.Funcs[i].ExclCycles > rep.Funcs[j].ExclCycles
		}
		return rep.Funcs[i].Name < rep.Funcs[j].Name
	})
	for nr, c := range p.sysC {
		rep.BySyscall = append(rep.BySyscall, SyscallProfile{Nr: nr, Cycles: c, Instrs: p.sysI[nr]})
	}
	sort.Slice(rep.BySyscall, func(i, j int) bool { return rep.BySyscall[i].Nr < rep.BySyscall[j].Nr })
	return rep
}

// Format renders the report: top functions by exclusive cycles, then the
// syscall dimension. namer maps syscall numbers to names (nil uses
// "sys_<nr>"); topN <= 0 prints every function.
func (r *ProfileReport) Format(topN int, namer func(nr int64) string) string {
	if namer == nil {
		namer = func(nr int64) string { return fmt.Sprintf("sys_%d", nr) }
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile: %d cycles / %d instrs attributed (%d total)\n",
		r.Attributed, r.TotalInstrs, r.TotalCycles)
	pct := func(v uint64) float64 {
		if r.TotalCycles == 0 {
			return 0
		}
		return 100 * float64(v) / float64(r.TotalCycles)
	}
	fmt.Fprintf(&sb, "  %-28s %12s %8s %12s %8s\n", "function", "excl-cyc", "excl%", "incl-cyc", "instrs")
	for i, f := range r.Funcs {
		if topN > 0 && i >= topN {
			fmt.Fprintf(&sb, "  ... %d more functions\n", len(r.Funcs)-i)
			break
		}
		fmt.Fprintf(&sb, "  %-28s %12d %7.1f%% %12d %8d\n",
			f.Name, f.ExclCycles, pct(f.ExclCycles), f.InclCycles, f.ExclInstrs)
	}
	for _, s := range r.BySyscall {
		name := "(outside syscall)"
		if s.Nr != NoSyscall {
			name = namer(s.Nr)
		}
		fmt.Fprintf(&sb, "  syscall %-24s %12d cycles %8d instrs\n", name, s.Cycles, s.Instrs)
	}
	return sb.String()
}
