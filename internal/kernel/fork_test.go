package kernel

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// warmup drives a short, deterministic syscall mix — enough to touch the
// dispatcher, the file layer, and the mm layer so the decode cache has real
// content to clone across a fork.
func warmup(t *testing.T, k *Kernel) {
	t.Helper()
	sysOK(t, k, SysNull)
	sysOK(t, k, SysGetpid)
	if err := k.WriteUser(0, append([]byte("forkfile"), 0)); err != nil {
		t.Fatal(err)
	}
	fd := sysOK(t, k, SysOpen, UserBuf)
	sysOK(t, k, SysWrite, fd, UserBuf+512, 32)
	sysOK(t, k, SysClose, fd)
	base := sysOK(t, k, SysMmap, 2)
	sysOK(t, k, SysMunmap, base, 2)
}

func TestRestoreStaleSnapshot(t *testing.T) {
	k := boot(t, core.Vanilla)
	old := k.Snapshot()
	cur := k.Snapshot()

	err := k.Restore(old)
	var stale *StaleSnapshotError
	if !errors.As(err, &stale) {
		t.Fatalf("Restore(superseded) = %v, want *StaleSnapshotError", err)
	}
	if stale.Foreign || stale.Seq != 1 || stale.Current != 2 {
		t.Fatalf("stale error = %+v, want {Seq:1 Current:2 Foreign:false}", stale)
	}
	// The current snapshot still restores, repeatedly.
	if err := k.Restore(cur); err != nil {
		t.Fatalf("Restore(current): %v", err)
	}
	if err := k.Restore(cur); err != nil {
		t.Fatalf("Restore(current) again: %v", err)
	}
}

func TestRestoreForeignSnapshot(t *testing.T) {
	k1 := boot(t, core.Vanilla)
	k2 := boot(t, core.Vanilla)
	s1 := k1.Snapshot()

	err := k2.Restore(s1)
	var stale *StaleSnapshotError
	if !errors.As(err, &stale) {
		t.Fatalf("Restore(foreign) = %v, want *StaleSnapshotError", err)
	}
	if !stale.Foreign {
		t.Fatalf("stale error = %+v, want Foreign", stale)
	}

	// A fork is a different kernel: the parent's snapshot is foreign to it.
	child, err := k1.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Restore(s1); !errors.As(err, &stale) || !stale.Foreign {
		t.Fatalf("child.Restore(parent snapshot) = %v, want foreign *StaleSnapshotError", err)
	}
	// And the parent still honors it.
	if err := k1.Restore(s1); err != nil {
		t.Fatalf("parent Restore after fork: %v", err)
	}
}

func TestForkRejectsImageOptions(t *testing.T) {
	k := boot(t, core.Vanilla)
	if _, err := k.Fork(WithCache()); err == nil {
		t.Fatal("Fork(WithCache()) succeeded, want error")
	}
}

// TestForkEquivalence is the core determinism claim: a syscall sequence run
// in a fork of a warmed golden kernel retires the same instruction and cycle
// counts, and returns the same values, as the identical sequence run on a
// kernel that booted and warmed up on its own.
func TestForkEquivalence(t *testing.T) {
	cfgs := []core.Config{core.Vanilla, core.Presets()[len(core.Presets())-1]}
	for _, cfg := range cfgs {
		t.Run(cfg.Name(), func(t *testing.T) {
			golden, err := Boot(cfg, WithCache())
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Boot(cfg, WithCache())
			if err != nil {
				t.Fatal(err)
			}
			warmup(t, golden)
			warmup(t, fresh)

			child, err := golden.Fork()
			if err != nil {
				t.Fatal(err)
			}
			if c, f := child.CPU.Cycles, fresh.CPU.Cycles; c != f {
				t.Fatalf("post-warmup cycles diverge before sequence: fork %d, fresh %d", c, f)
			}

			seq := func(k *Kernel) []uint64 {
				var out []uint64
				if err := k.WriteUser(0, append([]byte("forkfile"), 0)); err != nil {
					t.Fatal(err)
				}
				out = append(out, sysOK(t, k, SysOpen, UserBuf))
				out = append(out, sysOK(t, k, SysRead, out[0], UserBuf+1024, 32))
				out = append(out, sysOK(t, k, SysFork))
				out = append(out, sysOK(t, k, SysMmap, 4))
				out = append(out, sysOK(t, k, SysUname, UserBuf+2048))
				out = append(out, sysOK(t, k, SysGetdents, UserBuf+3072, 256))
				return out
			}
			got, want := seq(child), seq(fresh)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("syscall %d: fork ret %#x, fresh ret %#x", i, got[i], want[i])
				}
			}
			if child.CPU.Instrs != fresh.CPU.Instrs {
				t.Errorf("instrs: fork %d, fresh %d", child.CPU.Instrs, fresh.CPU.Instrs)
			}
			if child.CPU.Cycles != fresh.CPU.Cycles {
				t.Errorf("cycles: fork %d, fresh %d", child.CPU.Cycles, fresh.CPU.Cycles)
			}
		})
	}
}

// TestForkWarmCache asserts the point of cloning the decode cache: a fork
// replays the parent's warmed syscall path without decoding a single new
// instruction.
func TestForkWarmCache(t *testing.T) {
	k := boot(t, core.Vanilla)
	k.CPU.SetDecodeCache(true)
	warmup(t, k)
	warmup(t, k) // second pass so every path is fully decoded

	child, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	s0 := child.CPU.DecodeCacheStats()
	if s0.Pages == 0 || s0.Entries == 0 {
		t.Fatalf("fork carried no warm cache: %+v", s0)
	}
	warmup(t, child)
	s1 := child.CPU.DecodeCacheStats()
	if s1.Decoded != 0 {
		t.Errorf("fork re-decoded %d instructions on a warmed path", s1.Decoded)
	}
	if s1.Hits == 0 {
		t.Error("fork dispatched without any cache hits")
	}
}

// TestForkPhysmapAliasWrite writes kernel text through its physmap synonym
// inside a fork: both views of the child must agree on the new byte (one
// private frame behind two virtual addresses) while the parent's text — and
// its own synonym — keep the original bytes.
func TestForkPhysmapAliasWrite(t *testing.T) {
	k := boot(t, core.Vanilla)
	text := k.Sym("_text")
	syn, ok := k.Space.SynonymAddr(text)
	if !ok {
		t.Fatal("no physmap synonym for _text under vanilla")
	}
	orig, f := k.Space.AS.Peek(text, 1)
	if f != nil {
		t.Fatal(f)
	}

	child, err := k.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f := child.Space.AS.StoreBytes(syn, []byte{0xCC}); f != nil {
		t.Fatal(f)
	}
	if b, f := child.Space.AS.Peek(text, 1); f != nil || b[0] != 0xCC {
		t.Fatalf("child text view after synonym write = %v, %v; want CC", b, f)
	}
	if b, f := child.Space.AS.Peek(syn, 1); f != nil || b[0] != 0xCC {
		t.Fatalf("child synonym view = %v, %v; want CC", b, f)
	}
	if b, f := k.Space.AS.Peek(text, 1); f != nil || b[0] != orig[0] {
		t.Fatalf("parent text changed by child write: %v, %v; want %v", b, f, orig)
	}
	if b, f := k.Space.AS.Peek(syn, 1); f != nil || b[0] != orig[0] {
		t.Fatalf("parent synonym changed by child write: %v, %v; want %v", b, f, orig)
	}
	if st := child.Space.AS.CowStats(); st.Breaks == 0 || st.PrivateFrames == 0 {
		t.Errorf("child CowStats after aliased write = %+v, want a recorded break", st)
	}
}
