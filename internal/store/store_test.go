package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestKeyHashDistinguishesFieldBoundaries(t *testing.T) {
	// The length-prefixed hash must not collide keys whose concatenation is
	// identical — the exact weakness of the old "\x00" string scheme if a
	// field ever contained the separator.
	a := Key{ProgID: "ab", BuildKey: "c"}
	b := Key{ProgID: "a", BuildKey: "bc"}
	if a.Hash() == b.Hash() {
		t.Fatalf("boundary-shifted keys collide: %s", a.Hash())
	}
	if a.Hash() != a.Hash() {
		t.Fatal("hash not deterministic")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash length = %d, want 64 hex chars", len(a.Hash()))
	}
}

func TestKeyString(t *testing.T) {
	k := Key{ProgID: "prog", BuildKey: "xom=1"}
	if got := k.String(); got != "prog+xom=1" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		err  bool
	}{
		{"0", 0, false},
		{"1024", 1024, false},
		{"4K", 4096, false},
		{"4k", 4096, false},
		{"2M", 2 << 20, false},
		{"1G", 1 << 30, false},
		{"16MB", 16 << 20, false},
		{"16MiB", 16 << 20, false},
		{"8 K", 8192, false},
		{"", 0, true},
		{"twelve", 0, true},
		{"1.5G", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBytes(%q): want error, got %d", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMemLRUEviction(t *testing.T) {
	// Quota fits exactly two 8-byte blobs; the third Put must evict the
	// least recently used.
	m := NewMem(16)
	k1 := Key{ProgID: "p1"}
	k2 := Key{ProgID: "p2"}
	k3 := Key{ProgID: "p3"}
	blob := func(s string) []byte { return []byte(fmt.Sprintf("%-8s", s)[:8]) }

	if err := m.Put(KindImage, k1, blob("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(KindImage, k2, blob("two")); err != nil {
		t.Fatal(err)
	}
	// Touch k1 so k2 becomes the LRU victim.
	if _, err := m.Get(KindImage, k1); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(KindImage, k3, blob("three")); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Get(KindImage, k2); !IsNotFound(err) {
		t.Fatalf("k2 should have been evicted, got err=%v", err)
	}
	if _, err := m.Get(KindImage, k1); err != nil {
		t.Fatalf("k1 (recently used) evicted: %v", err)
	}
	if _, err := m.Get(KindImage, k3); err != nil {
		t.Fatalf("k3 (just written) evicted: %v", err)
	}
	s := m.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes != 16 {
		t.Fatalf("Bytes = %d, want 16", s.Bytes)
	}
}

func TestMemPinBlocksEviction(t *testing.T) {
	m := NewMem(8)
	k1 := Key{ProgID: "pinned"}
	k2 := Key{ProgID: "other"}
	release := m.Pin(KindImage, k1)
	if err := m.Put(KindImage, k1, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	// Over quota now; k1 is pinned so it must survive and k2 (newer but
	// unpinned) is the only legal victim.
	if err := m.Put(KindImage, k2, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(KindImage, k1); err != nil {
		t.Fatalf("pinned entry evicted: %v", err)
	}
	if s := m.Stats(); s.Pins != 1 {
		t.Fatalf("Pins = %d, want 1", s.Pins)
	}
	release()
	release() // double-release must be a no-op
	if s := m.Stats(); s.Pins != 0 {
		t.Fatalf("Pins after release = %d, want 0", s.Pins)
	}
	// Release re-runs eviction: if still over quota the ex-pinned entry may
	// now be evicted; either way the quota must hold.
	if s := m.Stats(); s.Bytes > 8 {
		t.Fatalf("Bytes = %d over quota 8 with nothing pinned", s.Bytes)
	}
}

func TestMemConcurrentAccess(t *testing.T) {
	// Race-detector fodder: hammer one Mem from many goroutines.
	m := NewMem(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := Key{ProgID: fmt.Sprintf("p%d", i%10)}
				switch i % 3 {
				case 0:
					m.Put(KindImage, k, []byte("payload"))
				case 1:
					m.Get(KindImage, k)
				case 2:
					release := m.Pin(KindImage, k)
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	m.Stats()
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Puts: 3, Evictions: 4, Corrupt: 5, Bytes: 6, Pins: 7, Builds: 8}
	b := Stats{Hits: 10, Misses: 20, Puts: 30, Evictions: 40, Corrupt: 50, Bytes: 60, Pins: 70, Builds: 80}
	got := a.Add(b)
	want := Stats{Hits: 11, Misses: 22, Puts: 33, Evictions: 44, Corrupt: 55, Bytes: 66, Pins: 77, Builds: 88}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func TestBlobRoundTrip(t *testing.T) {
	payload := []byte("the artifact payload")
	blob := wrapBlob(payload)
	got, err := unwrapBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if _, err := unwrapBlob(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := unwrapBlob(flipped); err == nil {
		t.Fatal("bit-flipped blob accepted")
	}
	badMagic := append([]byte(nil), blob...)
	badMagic[0] = 'X'
	if _, err := unwrapBlob(badMagic); err == nil {
		t.Fatal("bad-magic blob accepted")
	}
}
