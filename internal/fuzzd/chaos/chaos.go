// Package chaos provides replayable worker-fault schedules for the fuzzd
// service's self-testing — internal/inject's idea of seeded, deterministic
// fault plans, aimed at the service's own fleet instead of the emulated
// machine. A schedule decides, at the moment a worker begins its n-th
// lease, whether that worker should die, stall past its lease deadline, or
// slow down while keeping its lease alive. The decision is a pure function
// of (worker, lease ordinal), so a given worker's fault stream replays
// exactly — and the service's determinism contract is asserted against it:
// the campaign report must be byte-identical under ANY schedule, because
// the manager reassigns, retries, or quarantines whatever the schedule
// breaks.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
)

// Action is the fault a worker self-injects at a lease boundary.
type Action int

// Actions.
const (
	ActNone  Action = iota
	ActKill         // panic inside the worker (exercises containment + respawn)
	ActStall        // stop heartbeating past the lease deadline, deliver late (exercises expiry, reassignment, stale-result fencing)
	ActDelay        // run slowly but keep heartbeating (exercises lease renewal)
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActKill:
		return "kill"
	case ActStall:
		return "stall"
	case ActDelay:
		return "delay"
	}
	return "?"
}

// Func decides the fault a worker self-injects when it begins its n-th
// lease (0-based, counted per worker). Implementations must be safe for
// concurrent use from multiple workers; for replayability they should be
// pure in (worker, lease). Nil means no faults.
type Func func(worker, lease int) Action

// OnLease fires act exactly when worker `worker` begins its `lease`-th
// lease — the scripted building block ("kill worker 0 on its second
// lease").
func OnLease(worker, lease int, act Action) Func {
	return func(w, l int) Action {
		if w == worker && l == lease {
			return act
		}
		return ActNone
	}
}

// EveryNth fires act on every n-th lease a worker begins (its leases n-1,
// 2n-1, ...), for every worker — "expire every third lease" is
// EveryNth(3, ActStall).
func EveryNth(n int, act Action) Func {
	if n <= 0 {
		n = 1
	}
	return func(_, l int) Action {
		if l%n == n-1 {
			return act
		}
		return ActNone
	}
}

// Merge combines schedules: the first non-ActNone decision wins.
func Merge(fns ...Func) Func {
	return func(w, l int) Action {
		for _, fn := range fns {
			if fn == nil {
				continue
			}
			if a := fn(w, l); a != ActNone {
				return a
			}
		}
		return ActNone
	}
}

// Seeded draws each (worker, lease) decision from its own derived RNG —
// the internal/inject recipe: one master seed, per-point derivation, so a
// worker's fault stream never depends on scheduling order or on what other
// workers drew. kill, stall, and delay are per-lease probabilities
// evaluated in that order. maxFaults (>0) is a global safety valve bounding
// the total faults fired across the fleet, so a kill-heavy schedule cannot
// chew through the manager's whole respawn budget and leave the campaign
// grinding through its quarantine path; the cap is a shared counter, not
// part of the pure per-worker stream.
func Seeded(seed int64, kill, stall, delay float64, maxFaults int64) Func {
	var fired atomic.Int64
	return func(worker, lease int) Action {
		h := uint64(seed)
		h ^= (uint64(worker) + 1) * 0x9e3779b97f4a7c15
		h ^= (uint64(lease) + 1) * 0x2545f4914f6cdd1d
		x := rand.New(rand.NewSource(int64(h))).Float64()
		var act Action
		switch {
		case x < kill:
			act = ActKill
		case x < kill+stall:
			act = ActStall
		case x < kill+stall+delay:
			act = ActDelay
		default:
			return ActNone
		}
		if maxFaults > 0 && fired.Add(1) > maxFaults {
			return ActNone
		}
		return act
	}
}

// Parse builds a schedule from a CLI spec — the krxfuzz -chaos flag.
// Specs:
//
//	""              no faults (nil Func)
//	kill-one        kill worker 0 on its second lease
//	expire-third    every worker stalls on every third lease
//	stall-recover   worker 0 stalls once (lease 2), then recovers
//	seeded:<seed>   Seeded(seed, 0.2, 0.2, 0.2, 8)
func Parse(spec string) (Func, error) {
	switch {
	case spec == "":
		return nil, nil
	case spec == "kill-one":
		return OnLease(0, 1, ActKill), nil
	case spec == "expire-third":
		return EveryNth(3, ActStall), nil
	case spec == "stall-recover":
		return OnLease(0, 2, ActStall), nil
	case strings.HasPrefix(spec, "seeded:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(spec, "seeded:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad seed in %q: %w", spec, err)
		}
		return Seeded(seed, 0.2, 0.2, 0.2, 8), nil
	}
	return nil, fmt.Errorf("chaos: unknown schedule %q (want kill-one, expire-third, stall-recover, or seeded:<seed>)", spec)
}
