package cpu

// The composable execution-probe API.
//
// The CPU used to expose a single OnExec func field, and every observer —
// the fuzzer's coverage bitmap, the fault injector, the cycle profiler —
// fought over it by chaining closures. Probes replace that: any number of
// observers install independently via AddProbe/RemoveProbe, dispatch order
// is installation order, and the common cases stay cheap — zero probes is
// one predictable nil check per instruction, one probe is a single indirect
// call (no fan-out loop). An installed exec probe also disarms the Run
// loop's superblock fast path (bcache.go), which otherwise skips the
// per-instruction dispatch the callbacks ride on.

import "repro/internal/isa"

// ExecProbe observes executed instructions. OnExec is invoked after every
// executed instruction — including one that faults during execution — with
// the instruction's address, its decoded form, and the cycles it consumed
// (rep-string per-element charges included). Probes must not retain in
// beyond the call.
type ExecProbe interface {
	OnExec(rip uint64, in *isa.Instr, cycles uint64)
}

// TrapProbe is an optional extension: a probe (or trap-only observer) that
// also wants trap-delivery events. OnTrap fires when the CPU delivers an
// exception — before the handler runs or the run stops — with the trap and
// the delivery cost (isa.TrapCost) that was just added to CPU.Cycles.
// Together with OnExec this accounts for every emulated cycle: the cycle
// conservation the profiler's invariant rests on.
type TrapProbe interface {
	OnTrap(t *Trap, cycles uint64)
}

// ExecProbeFunc adapts a function to the ExecProbe interface. Func values
// are not comparable, so a probe installed this way cannot be removed with
// RemoveProbe — use a (pointer-typed) struct probe when the observer's
// lifetime is shorter than the CPU's.
type ExecProbeFunc func(rip uint64, in *isa.Instr, cycles uint64)

// OnExec implements ExecProbe.
func (f ExecProbeFunc) OnExec(rip uint64, in *isa.Instr, cycles uint64) { f(rip, in, cycles) }

// multiProbe fans one dispatch out to several probes, in install order. It
// exists so the single-probe case can stay one indirect call: the compiled
// dispatcher is nil, the probe itself, or a *multiProbe.
type multiProbe struct {
	ps []ExecProbe
}

func (m *multiProbe) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	for _, p := range m.ps {
		p.OnExec(rip, in, cycles)
	}
}

// AddProbe installs p at the end of the dispatch order. If p also
// implements TrapProbe it is registered for trap-delivery events too.
// Installing the same probe value twice dispatches it twice.
func (c *CPU) AddProbe(p ExecProbe) {
	c.probes = append(c.probes, p)
	c.recompileProbes()
	if tp, ok := p.(TrapProbe); ok {
		c.trapProbes = append(c.trapProbes, tp)
	}
}

// RemoveProbe uninstalls the most recently added occurrence of p (probes
// are typically attached/detached in LIFO pairs around a run). Removing a
// probe that is not installed is a no-op.
func (c *CPU) RemoveProbe(p ExecProbe) {
	for i := len(c.probes) - 1; i >= 0; i-- {
		if c.probes[i] == p {
			c.probes = append(c.probes[:i], c.probes[i+1:]...)
			break
		}
	}
	c.recompileProbes()
	if tp, ok := p.(TrapProbe); ok {
		c.removeTrapProbe(tp)
	}
}

// AddTrapProbe registers a trap-only observer (one that does not want the
// per-instruction OnExec stream — e.g. the event tracer). Probes installed
// via AddProbe that implement TrapProbe are registered automatically and
// must not be added here too.
func (c *CPU) AddTrapProbe(p TrapProbe) {
	c.trapProbes = append(c.trapProbes, p)
}

// RemoveTrapProbe uninstalls a trap-only observer added with AddTrapProbe.
func (c *CPU) RemoveTrapProbe(p TrapProbe) {
	c.removeTrapProbe(p)
}

func (c *CPU) removeTrapProbe(p TrapProbe) {
	for i := len(c.trapProbes) - 1; i >= 0; i-- {
		if c.trapProbes[i] == p {
			c.trapProbes = append(c.trapProbes[:i], c.trapProbes[i+1:]...)
			return
		}
	}
}

// Probes returns the installed exec probes in dispatch order (a copy).
func (c *CPU) Probes() []ExecProbe {
	return append([]ExecProbe(nil), c.probes...)
}

// recompileProbes rebuilds the dispatch path: nil for none, the probe
// itself for one (the fast path), a fan-out wrapper otherwise.
func (c *CPU) recompileProbes() {
	switch len(c.probes) {
	case 0:
		c.probe = nil
	case 1:
		c.probe = c.probes[0]
	default:
		c.probe = &multiProbe{ps: append([]ExecProbe(nil), c.probes...)}
	}
}

// notifyExec delivers one executed instruction to the installed probes.
// Kept out of line so Step's hot path only pays one nil check when nothing
// is attached.
func (c *CPU) notifyExec(rip uint64, in *isa.Instr, cycles uint64) {
	c.probe.OnExec(rip, in, cycles)
}

// notifyTrap delivers a trap-delivery event to the registered trap probes.
func (c *CPU) notifyTrap(t *Trap, cycles uint64) {
	for _, p := range c.trapProbes {
		p.OnTrap(t, cycles)
	}
}
