package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/diversify"
	"repro/internal/sfi"
)

// TestNameExhaustiveGrid pins Name() over the full XOM × Diversify × RAProt
// grid. The regression this guards: XOMHideM used to fall through the XOM
// switch and render as "Vanilla".
func TestNameExhaustiveGrid(t *testing.T) {
	xoms := []struct {
		cfg  Config
		name string
	}{
		{Config{}, ""},
		{Config{XOM: XOMSFI, SFILevel: sfi.O0}, "SFI(-O0)"},
		{Config{XOM: XOMSFI, SFILevel: sfi.O1}, "SFI(-O1)"},
		{Config{XOM: XOMSFI, SFILevel: sfi.O2}, "SFI(-O2)"},
		{Config{XOM: XOMSFI, SFILevel: sfi.O3}, "SFI"},
		{Config{XOM: XOMMPX}, "MPX"},
		{Config{XOM: XOMEPT}, "EPT"},
		{Config{XOM: XOMHideM}, "HideM"},
	}
	divs := []struct {
		diversify bool
		ra        diversify.RAProt
		name      string
	}{
		{false, diversify.RANone, ""},
		{true, diversify.RANone, "FG"},
		{true, diversify.RADecoy, "D"},
		{true, diversify.RAEncrypt, "X"},
	}
	seen := map[string]Config{}
	for _, x := range xoms {
		for _, d := range divs {
			cfg := x.cfg
			cfg.Diversify, cfg.RAProt = d.diversify, d.ra
			want := ""
			switch {
			case x.name == "" && d.name == "":
				want = "Vanilla"
			case x.name == "":
				want = d.name
			case d.name == "":
				want = x.name
			default:
				want = x.name + "+" + d.name
			}
			got := cfg.Name()
			if got != want {
				t.Errorf("Name(%+v) = %q, want %q", cfg, got, want)
			}
			if prev, dup := seen[got]; dup {
				t.Errorf("name %q ambiguous: %+v and %+v", got, prev, cfg)
			}
			seen[got] = cfg
		}
	}
}

// TestPresetSeedConvention pins the documented convention: Vanilla keeps
// Seed 0, every protected preset uses Seed 1, and preset names are unique
// (so the build-cache key space and the report columns cannot collide).
func TestPresetSeedConvention(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Presets() {
		if names[p.Name()] {
			t.Errorf("duplicate preset name %q", p.Name())
		}
		names[p.Name()] = true
		want := int64(1)
		if p.Name() == "Vanilla" {
			want = 0
		}
		if p.Seed != want {
			t.Errorf("preset %s: Seed = %d, want %d", p.Name(), p.Seed, want)
		}
	}
}

// TestBuildKeyDistinguishesConfigs: any two presets (and seed variants)
// must key differently, while runtime-only knobs (watchdog budget, fault
// plan) must not affect the key — they do not change the built image.
func TestBuildKeyDistinguishesConfigs(t *testing.T) {
	keys := map[string]string{}
	for _, p := range Presets() {
		k := p.BuildKey()
		if prev, dup := keys[k]; dup {
			t.Errorf("presets %s and %s share build key %q", prev, p.Name(), k)
		}
		keys[k] = p.Name()
	}
	a := Config{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, Seed: 1}
	b := a
	b.Seed = 2
	if a.BuildKey() == b.BuildKey() {
		t.Error("seed must participate in the build key")
	}
	c := a
	c.WatchdogBudget = 1 << 20
	if a.BuildKey() != c.BuildKey() {
		t.Error("watchdog budget is runtime-only and must not change the key")
	}
}

// TestCacheSingleflight: 16 goroutines racing on the same (program, config)
// must coalesce into exactly one build and share the identical result
// pointer; a second config builds once more.
func TestCacheSingleflight(t *testing.T) {
	src := miniProg(t)
	cache := NewCache()
	cfg := Config{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1}

	var wg sync.WaitGroup
	results := make([]*BuildResult, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cache.Build(src, "mini", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("goroutine %d got a different result pointer (cache did not coalesce)", i)
		}
	}
	if got := cache.Stats().Builds; got != 1 {
		t.Fatalf("16 concurrent requests ran %d builds, want 1", got)
	}
	if got := cache.Stats().Hits; got != 15 {
		t.Fatalf("Stats().Hits = %d, want 15", got)
	}

	other := cfg
	other.Seed = 2
	if _, err := cache.Build(src, "mini", other); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Builds; got != 2 {
		t.Fatalf("distinct config must build once more: Stats().Builds = %d, want 2", got)
	}
}

// TestCacheDistinguishesPrograms: the same config over two corpus
// identities must not share an image.
func TestCacheDistinguishesPrograms(t *testing.T) {
	cache := NewCache()
	cfg := Config{XOM: XOMSFI, SFILevel: sfi.O3}
	r1, err := cache.Build(miniProg(t), "a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.Build(miniProg(t), "b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("different program identities must not share a cache entry")
	}
	if got := cache.Stats().Builds; got != 2 {
		t.Fatalf("Stats().Builds = %d, want 2", got)
	}
}

// TestCachedBuildEquivalence: a cache hit must hand back a result
// indistinguishable from an uncached Build — identical image bytes, symbol
// table, and pass statistics.
func TestCachedBuildEquivalence(t *testing.T) {
	src := miniProg(t)
	for _, cfg := range []Config{
		{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1},
		{XOM: XOMMPX, Diversify: true, RAProt: diversify.RADecoy, Seed: 1},
		{XOM: XOMHideM, Seed: 1},
	} {
		cached, err := NewCache().Build(src, "mini", cfg)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Build(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%x", cached.Image.Text) != fmt.Sprintf("%x", direct.Image.Text) {
			t.Errorf("%s: cached image bytes differ from a direct build", cfg.Name())
		}
		if len(cached.Image.Symbols) != len(direct.Image.Symbols) {
			t.Errorf("%s: symbol tables differ", cfg.Name())
		}
		for name, addr := range direct.Image.Symbols {
			if cached.Image.Symbols[name] != addr {
				t.Errorf("%s: symbol %s at %#x cached vs %#x direct", cfg.Name(), name, cached.Image.Symbols[name], addr)
			}
		}
		if cached.SFIStats != direct.SFIStats {
			t.Errorf("%s: SFI stats differ: %+v vs %+v", cfg.Name(), cached.SFIStats, direct.SFIStats)
		}
		if cached.DivStats != direct.DivStats {
			t.Errorf("%s: diversification stats differ: %+v vs %+v", cfg.Name(), cached.DivStats, direct.DivStats)
		}
	}
}
