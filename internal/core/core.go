// Package core is the top-level kR^X facade: it assembles the compiler
// pipeline (the krx and kaslr plugin equivalents), producing hardened
// kernel images from IR programs under a declarative configuration.
//
// The pass order mirrors the paper's GCC plugin chaining (§6): krx (R^X
// range checks) runs first, kaslr (return-address protection, then code
// block slicing and permutation) runs after it, and linking/layout is last.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/diversify"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/kas"
	"repro/internal/link"
	"repro/internal/sfi"
)

// XOM selects how (and whether) execute-only memory is enforced.
type XOM int

// XOM enforcement mechanisms.
const (
	XOMNone  XOM = iota // no R^X (vanilla or diversification-only kernels)
	XOMSFI              // kR^X-SFI: software range checks (§5.1.2)
	XOMMPX              // kR^X-MPX: hardware-assisted bound checks (§5.1.3)
	XOMEPT              // hypervisor baseline: native X-only via EPT semantics
	XOMHideM            // split-TLB baseline: data reads of code see shadows (§2)
)

func (x XOM) String() string {
	switch x {
	case XOMSFI:
		return "SFI"
	case XOMMPX:
		return "MPX"
	case XOMEPT:
		return "EPT"
	case XOMHideM:
		return "HideM"
	}
	return "none"
}

// Config is a complete kR^X protection configuration.
type Config struct {
	XOM      XOM
	SFILevel sfi.Level // optimization level for XOMSFI

	// Diversify enables fine-grained KASLR (function + code block
	// permutation with phantom blocks).
	Diversify bool
	// K is the per-function entropy target in bits (0 = 30).
	K int
	// RAProt selects the return-address protection scheme (requires
	// Diversify).
	RAProt diversify.RAProt

	// RegRand enables the register-randomization complement suggested in
	// §5.3 for foiling call-preceded gadget chaining (requires Diversify).
	RegRand bool

	// FullCoverage extends R^X instrumentation to the hand-written
	// assembly stubs that the RTL-level plugins cannot normally see — the
	// assembler-level implementation §6 describes as work in progress for
	// "achieving 100% code coverage". The accessor clones stay exempt by
	// definition (they exist to read code legitimately).
	FullCoverage bool

	// Seed drives the diversification randomness. A real deployment draws
	// it from a CSPRNG at build time; the evaluation varies it to measure
	// across layouts.
	//
	// Convention: the unprotected Vanilla baseline keeps Seed 0 (no
	// randomness is consumed), every named protected configuration —
	// Presets(), the Table 1/2 columns, the root benchmarks — uses Seed 1
	// unless a sweep deliberately varies it. Seed participates in the
	// build-cache key, so two consumers asking for the same preset share
	// one compiled image.
	Seed int64

	// GuardSize overrides the .krx_phantom guard (0 = default).
	GuardSize uint64

	// KASLR enables coarse base randomization: the whole kernel image is
	// slid by a seed-derived page-aligned delta. This is the standard
	// KASLR the paper assumes deployed (§3) — and, unlike fine-grained
	// KASLR, it falls to a single pointer leak.
	KASLR bool

	// WatchdogBudget bounds the instructions one syscall round trip may
	// execute before the watchdog fires (0 = kernel default). Exhaustion
	// surfaces as a structured *cpu.BudgetError on the syscall result, so
	// a runaway emulator loop is a reportable finding, never a hang.
	WatchdogBudget uint64

	// FaultPlan, when non-nil, arms the deterministic fault injector on
	// the booted kernel (see internal/inject): the robustness harness'
	// seeded byte flips, permission flips, bound/xkey corruption, and
	// spurious traps.
	FaultPlan *inject.Plan
}

// Name renders the configuration in the paper's column naming: Vanilla,
// SFI(-O0..-O3), MPX, D, X, SFI+D, SFI+X, MPX+D, MPX+X, EPT...
func (c Config) Name() string {
	xom := ""
	switch c.XOM {
	case XOMSFI:
		xom = "SFI"
		if c.SFILevel < sfi.O3 {
			xom = fmt.Sprintf("SFI(-%s)", c.SFILevel)
		}
	case XOMMPX:
		xom = "MPX"
	case XOMEPT:
		xom = "EPT"
	case XOMHideM:
		xom = "HideM"
	}
	div := ""
	if c.Diversify {
		switch c.RAProt {
		case diversify.RAEncrypt:
			div = "X"
		case diversify.RADecoy:
			div = "D"
		default:
			div = "FG" // fine-grained KASLR without RA protection
		}
	}
	switch {
	case xom == "" && div == "":
		return "Vanilla"
	case xom == "":
		return div
	case div == "":
		return xom
	default:
		return xom + "+" + div
	}
}

// Layout returns the address-space layout the configuration requires:
// kR^X-KAS whenever any kR^X mechanism is active.
func (c Config) Layout() kas.Kind {
	if c.XOM != XOMNone || c.Diversify {
		return kas.KRX
	}
	return kas.Vanilla
}

// Vanilla is the unprotected baseline configuration.
var Vanilla = Config{}

// Presets returns the named configurations used across the evaluation
// (Table 1 columns plus the vanilla baseline). Protected presets follow
// the Seed-1 convention documented on Config.Seed.
func Presets() []Config {
	return []Config{
		Vanilla,
		{XOM: XOMSFI, SFILevel: sfi.O0, Seed: 1},
		{XOM: XOMSFI, SFILevel: sfi.O1, Seed: 1},
		{XOM: XOMSFI, SFILevel: sfi.O2, Seed: 1},
		{XOM: XOMSFI, SFILevel: sfi.O3, Seed: 1},
		{XOM: XOMMPX, Seed: 1},
		{Diversify: true, RAProt: diversify.RADecoy, Seed: 1},
		{Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1},
		{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 1},
		{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1},
		{XOM: XOMMPX, Diversify: true, RAProt: diversify.RADecoy, Seed: 1},
		{XOM: XOMMPX, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1},
	}
}

// BuildResult is a hardened, linked kernel image plus pass statistics.
type BuildResult struct {
	Config   Config
	Prog     *ir.Program // post-pass IR (diagnostics, Figure 2 dumps)
	Image    *link.Image
	SFIStats sfi.Stats
	DivStats diversify.Stats
}

// Build runs the kR^X pipeline over a copy of prog: krx instrumentation,
// kaslr diversification, then linking under the configured layout.
func Build(prog *ir.Program, cfg Config) (*BuildResult, error) {
	p := prog.Clone()
	res := &BuildResult{Config: cfg, Prog: p}

	if cfg.FullCoverage {
		// Assembler-level coverage: lift the RTL-pass exemption from the
		// hand-written stubs; the accessor clones remain exempt.
		for _, f := range p.Funcs {
			if f.NoInstrument && !f.AccessorClone {
				f.NoInstrument = false
			}
		}
	}

	switch cfg.XOM {
	case XOMSFI:
		st, err := sfi.InstrumentProgram(p, sfi.Config{Mode: sfi.ModeSFI, Level: cfg.SFILevel})
		if err != nil {
			return nil, fmt.Errorf("core: krx pass: %w", err)
		}
		res.SFIStats = st
	case XOMMPX:
		st, err := sfi.InstrumentProgram(p, sfi.Config{Mode: sfi.ModeMPX})
		if err != nil {
			return nil, fmt.Errorf("core: krx pass: %w", err)
		}
		res.SFIStats = st
	}

	if cfg.Diversify {
		st, err := diversify.DiversifyProgram(p, diversify.Config{
			K:       cfg.K,
			RAProt:  cfg.RAProt,
			RegRand: cfg.RegRand,
			Rand:    rand.New(rand.NewSource(cfg.Seed)),
		})
		if err != nil {
			return nil, fmt.Errorf("core: kaslr pass: %w", err)
		}
		res.DivStats = st
	}

	var slide uint64
	if cfg.KASLR {
		slide = uint64(rand.New(rand.NewSource(cfg.Seed^0x4b41534c)).Intn(int(kas.MaxSlide>>12))) << 12
	}
	img, err := link.Link(p, link.Options{Layout: cfg.Layout(), GuardSize: cfg.GuardSize, Slide: slide})
	if err != nil {
		return nil, fmt.Errorf("core: link: %w", err)
	}
	res.Image = img
	return res, nil
}
