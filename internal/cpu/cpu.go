// Package cpu emulates a KX64 processor: fetch/decode/execute over a paged
// address space, with user/kernel modes, SYSCALL/SYSRET and exception
// delivery, MPX bound registers, SMEP, and per-instruction cycle accounting
// (the evaluation's clock).
package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Mode is the CPU privilege mode.
type Mode uint8

// Privilege modes.
const (
	User Mode = iota
	Kernel
)

func (m Mode) String() string {
	if m == Kernel {
		return "kernel"
	}
	return "user"
}

// UpperHalf is the start of the kernel's canonical upper half.
const UpperHalf uint64 = 0xffff800000000000

// TrapKind classifies CPU exceptions.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone       TrapKind = iota
	TrapPageFault           // #PF
	TrapBoundRange          // #BR (MPX violation)
	TrapBreakpoint          // #BP (int3 — tripwires)
	TrapUndefined           // #UD
	TrapProtection          // #GP (SMEP, privilege violations)
)

func (k TrapKind) String() string {
	switch k {
	case TrapPageFault:
		return "#PF"
	case TrapBoundRange:
		return "#BR"
	case TrapBreakpoint:
		return "#BP"
	case TrapUndefined:
		return "#UD"
	case TrapProtection:
		return "#GP"
	}
	return "none"
}

// Trap describes a delivered exception.
type Trap struct {
	Kind  TrapKind
	Addr  uint64 // faulting data address (if applicable)
	RIP   uint64 // address of the faulting instruction
	Mode  Mode   // mode at the time of the fault
	Fault *mem.Fault
}

func (t *Trap) Error() string {
	return fmt.Sprintf("%s at rip=%#x addr=%#x (%s mode)", t.Kind, t.RIP, t.Addr, t.Mode)
}

// StopReason explains why Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopHalt   StopReason = iota // HLT executed in kernel mode
	StopReturn                   // RET popped the sentinel stop address
	StopTrap                     // unhandled exception (kernel-mode fault)
	StopLimit                    // instruction budget exhausted
	StopSysret                   // sysret executed with StopOnSysret set
	StopIret                     // iret executed with StopOnIret set
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopReturn:
		return "return"
	case StopTrap:
		return "trap"
	case StopLimit:
		return "limit"
	case StopSysret:
		return "sysret"
	case StopIret:
		return "iret"
	}
	return "?"
}

// StopMagic is the sentinel return address: a RET that pops this value stops
// the run cleanly (how the harness invokes a single kernel routine).
const StopMagic uint64 = 0xFFFF0FF0FF0FF0F0

// Bound is one MPX bound register.
type Bound struct {
	LB uint64
	UB uint64
}

// BudgetError is the structured watchdog verdict: a run consumed its whole
// instruction budget without reaching a stop condition. It replaces the old
// convention of silently returning StopLimit and letting callers misread a
// truncated run as a completed one.
type BudgetError struct {
	Budget uint64 // the instruction budget that was exhausted
	RIP    uint64 // where execution was parked when the watchdog fired
	Mode   Mode
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("watchdog: instruction budget (%d) exhausted at rip=%#x (%s mode)",
		e.Budget, e.RIP, e.Mode)
}

// RunResult summarizes a Run invocation.
type RunResult struct {
	Reason  StopReason
	Trap    *Trap
	Instrs  uint64
	Cycles  uint64
	HaltRIP uint64 // rip of the HLT when Reason == StopHalt
}

// CPU is the emulated processor.
type CPU struct {
	AS *mem.AddressSpace

	Regs   [isa.NumGPR]uint64
	RIP    uint64
	RFlags uint64
	Bnd    [isa.NumBnd]Bound
	Mode   Mode

	Cycles uint64
	Instrs uint64

	// SyscallEntry is the kernel's syscall entry point (MSR_LSTAR).
	SyscallEntry uint64
	// FaultEntry is the kernel's exception entry point: user-mode faults
	// are delivered here (kernel-mode faults stop the run — the kR^X
	// violation handler halts the system anyway).
	FaultEntry uint64
	// KernelStackTop is loaded into %rsp on mode switch into the kernel.
	KernelStackTop uint64
	// SMEP blocks kernel-mode instruction fetches from user addresses.
	SMEP bool

	// StopOnSysret makes Run return (StopSysret) right after a sysret
	// completes, and StopOnIret likewise for iret. The benchmark harness
	// uses these to bound one user->kernel->user round trip.
	StopOnSysret bool
	StopOnIret   bool

	// KernelBnd0, when MPXKernel is set, is loaded into %bnd0 on kernel
	// entry (ub = _krx_edata); the user value is spilled and restored on
	// exit, so kR^X-MPX does not interfere with user MPX usage (§5.1.3).
	MPXKernel  bool
	KernelBnd0 Bound

	// MSRs models wrmsr/rdmsr state (keyed by %rcx).
	MSRs map[uint64]uint64

	// probes are the installed exec probes (install order); probe is the
	// compiled dispatcher — nil, probes[0] (the single-probe fast path),
	// or a *multiProbe fan-out. trapProbes observe trap delivery.
	probes     []ExecProbe
	probe      ExecProbe
	trapProbes []TrapProbe

	// Pending is an externally forced exception: Run delivers it before the
	// next instruction, exactly as if the current instruction had trapped.
	// The fault injector uses it to model spurious #PF/#BR/#UD/#GP events
	// (machine-check-style noise the kernel must degrade gracefully under).
	Pending *Trap

	savedUserRSP  uint64
	savedUserBnd0 Bound
	inSyscall     bool

	fetchBuf [isa.MaxInstrLen]byte

	// dc is the predecoded translation cache (see dcache.go); nil when
	// disabled. blocks arms the superblock engine layered on it (see
	// bcache.go), compile the block compiler layered on THAT (see
	// thunk.go), blockHot the hotness-gate threshold, and bstats/dstats
	// the cumulative block-engine and decode-cache counters (on the CPU,
	// not the cache, so both survive cache toggles under one reset
	// contract — see BlockStats/DecodeCacheStats). All affect host
	// wall-clock only — Instrs, Cycles, traps, and probe callbacks are
	// bit-identical with them on or off.
	dc       *decodeCache
	blocks   bool
	compile  bool
	blockHot uint32
	seedHot  map[uint64]struct{} // entry RIPs exempt from the hotness ramp
	bstats   BlockStats
	dstats   DecodeCacheStats
}

// New creates a CPU over the given address space. The decode cache, the
// superblock engine, and the block compiler are on by default;
// SetDecodeCache(false) reverts to fetch+decode per instruction,
// SetBlockEngine(false) to per-instruction dispatch over cached decodes,
// and SetBlockCompile(false) to interpreted block dispatch.
func New(as *mem.AddressSpace) *CPU {
	c := &CPU{AS: as, MSRs: make(map[uint64]uint64),
		blocks: true, compile: true, blockHot: DefaultBlockHotThreshold}
	c.dc = newDecodeCache(&c.dstats)
	return c
}

// Reg returns a register value.
func (c *CPU) Reg(r isa.Reg) uint64 { return c.Regs[r] }

// SetReg sets a register value.
func (c *CPU) SetReg(r isa.Reg, v uint64) { c.Regs[r] = v }

// effAddr computes the effective address of a memory operand, given the
// address of the *next* instruction (for %rip-relative references).
func (c *CPU) effAddr(m isa.MemRef, next uint64) uint64 {
	ea := uint64(int64(m.Disp))
	if m.RIPRel {
		return next + ea
	}
	if m.HasBase() {
		ea += c.Regs[m.Base]
	}
	if m.HasIndex() {
		ea += c.Regs[m.Index] * uint64(m.Scale)
	}
	return ea
}

// checkDataAccess enforces the privilege rules for a data access at addr.
func (c *CPU) checkDataAccess(addr uint64) *Trap {
	if c.Mode == User && addr >= UpperHalf {
		return &Trap{Kind: TrapProtection, Addr: addr, RIP: c.RIP, Mode: c.Mode}
	}
	return nil
}

func (c *CPU) load(addr uint64, size uint8) (uint64, *Trap) {
	if t := c.checkDataAccess(addr); t != nil {
		return 0, t
	}
	v, f := c.AS.Read(addr, size)
	if f != nil {
		return 0, &Trap{Kind: TrapPageFault, Addr: addr, RIP: c.RIP, Mode: c.Mode, Fault: f}
	}
	return v, nil
}

func (c *CPU) store(addr uint64, v uint64, size uint8) *Trap {
	if t := c.checkDataAccess(addr); t != nil {
		return t
	}
	if f := c.AS.Write(addr, v, size); f != nil {
		return &Trap{Kind: TrapPageFault, Addr: addr, RIP: c.RIP, Mode: c.Mode, Fault: f}
	}
	return nil
}

func (c *CPU) push(v uint64) *Trap {
	c.Regs[isa.RSP] -= 8
	return c.store(c.Regs[isa.RSP], v, 8)
}

func (c *CPU) pop() (uint64, *Trap) {
	v, t := c.load(c.Regs[isa.RSP], 8)
	if t != nil {
		return 0, t
	}
	c.Regs[isa.RSP] += 8
	return v, nil
}

// FMask is the simulated IA32_FMASK: flag bits cleared on kernel entry.
// Clearing DF matters for correctness — kernel string operations assume
// ascending addresses (the paper's footnote 7) — and real kernels mask it
// for exactly this reason.
const FMask = isa.FlagDF | isa.FlagsArith

// EnterKernel performs the SYSCALL mode transition.
func (c *CPU) EnterKernel(returnRIP uint64) {
	c.Regs[isa.RCX] = returnRIP
	c.Regs[isa.R11] = c.RFlags
	c.RFlags &^= FMask
	c.savedUserRSP = c.Regs[isa.RSP]
	c.Regs[isa.RSP] = c.KernelStackTop
	c.Mode = Kernel
	c.inSyscall = true
	c.RIP = c.SyscallEntry
	if c.MPXKernel {
		c.savedUserBnd0 = c.Bnd[0]
		c.Bnd[0] = c.KernelBnd0
	}
}

// ExitKernel performs the SYSRET transition.
func (c *CPU) ExitKernel() {
	c.RIP = c.Regs[isa.RCX]
	c.RFlags = c.Regs[isa.R11]
	c.Regs[isa.RSP] = c.savedUserRSP
	c.Mode = User
	c.inSyscall = false
	if c.MPXKernel {
		c.Bnd[0] = c.savedUserBnd0
	}
}

// deliverTrap routes an exception: user-mode traps enter the kernel fault
// handler (if configured); kernel-mode traps are fatal for the run.
func (c *CPU) deliverTrap(t *Trap) *Trap {
	c.Cycles += isa.TrapCost
	if len(c.trapProbes) != 0 {
		c.notifyTrap(t, isa.TrapCost)
	}
	if t.Mode == User && c.FaultEntry != 0 {
		// Push an exception frame on the kernel stack: rip, rsp, rflags.
		c.savedUserRSP = c.Regs[isa.RSP]
		c.Regs[isa.RSP] = c.KernelStackTop
		c.Mode = Kernel
		if c.MPXKernel {
			c.savedUserBnd0 = c.Bnd[0]
			c.Bnd[0] = c.KernelBnd0
		}
		// The frame carries enough to iret.
		if tr := c.push(c.RFlags); tr != nil {
			return tr
		}
		if tr := c.push(c.savedUserRSP); tr != nil {
			return tr
		}
		if tr := c.push(t.RIP); tr != nil {
			return tr
		}
		// Fault address in %rdi-equivalent scratch for the handler (the
		// simulation's CR2).
		c.Regs[isa.R9] = t.Addr
		c.RIP = c.FaultEntry
		return nil
	}
	return t
}

// Run executes until a stop condition or the instruction limit. When the
// superblock engine is armed it dispatches whole basic blocks per loop
// iteration — and chains block-to-block across successor links without
// re-entering this loop (bcache.go) — falling back to single-step dispatch
// whenever an exec probe is installed (the per-instruction callback stream
// must be produced), a trap is pending, a fetch privilege check fails, the
// entry point is still cold under the hotness gate, no block starts at RIP,
// or the remaining limit budget is smaller than the block.
func (c *CPU) Run(limit uint64) *RunResult {
	res := &RunResult{}
	startInstrs, startCycles := c.Instrs, c.Cycles
	for {
		done := c.Instrs - startInstrs
		if limit > 0 && done >= limit {
			res.Reason = StopLimit
			break
		}
		if c.Pending != nil {
			t := c.Pending
			c.Pending = nil
			if t2 := c.deliverTrap(t); t2 != nil {
				res.Reason = StopTrap
				res.Trap = t2
				break
			}
			continue
		}
		var stop StopReason
		var trap *Trap
		if c.blocks && c.dc != nil && c.probe == nil &&
			!(c.Mode == User && c.RIP >= UpperHalf) &&
			!(c.SMEP && c.Mode == Kernel && c.RIP < UpperHalf) {
			// Fetch privilege holds for the whole block: the mode cannot
			// change mid-block (mode switches are terminators) and the
			// block never leaves its page.
			stop, trap = c.blockStep(limit, done, startInstrs)
		} else {
			stop, trap = c.Step()
		}
		if trap != nil {
			if t := c.deliverTrap(trap); t != nil {
				res.Reason = StopTrap
				res.Trap = t
				break
			}
			continue
		}
		if stop != StepContinue {
			res.Reason = stop
			if stop == StopHalt {
				res.HaltRIP = c.RIP
			}
			break
		}
	}
	res.Instrs = c.Instrs - startInstrs
	res.Cycles = c.Cycles - startCycles
	return res
}

// stepStop is an internal "keep going" sentinel distinct from the exported
// stop reasons.
const StepContinue StopReason = 0xFF

// Step executes one instruction. It returns a stop reason (StepContinue to
// keep going) or a trap.
func (c *CPU) Step() (StopReason, *Trap) {
	// Fetch.
	if c.Mode == User && c.RIP >= UpperHalf {
		return StepContinue, &Trap{Kind: TrapProtection, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
	}
	if c.SMEP && c.Mode == Kernel && c.RIP < UpperHalf {
		// SMEP: supervisor-mode execution prevention (blocks ret2usr).
		return StepContinue, &Trap{Kind: TrapProtection, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
	}
	if c.dc != nil {
		if e, ud, ok := c.dc.lookup(c.AS, c.RIP); ok {
			if ud {
				// Cached deterministic decode failure: same #UD the slow
				// path would raise, with no Instrs/Cycles side effects.
				return StepContinue, &Trap{Kind: TrapUndefined, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
			}
			c.Instrs++
			rip := c.RIP
			before := c.Cycles
			c.Cycles += e.cost
			stop, trap := c.exec(&e.in, c.RIP+uint64(e.ilen))
			if c.probe != nil {
				c.notifyExec(rip, &e.in, c.Cycles-before)
			}
			return stop, trap
		}
	}
	return c.stepSlow()
}

// stepSlow is the uncached fetch+decode+execute path: the fallback when the
// decode cache is off, the address is not executable (the Fetch fault is
// authoritative), or the instruction straddles a page boundary the cache
// cannot own. Callers have already passed the fetch privilege checks.
func (c *CPU) stepSlow() (StopReason, *Trap) {
	n, f := c.AS.Fetch(c.RIP, c.fetchBuf[:])
	if f != nil {
		return StepContinue, &Trap{Kind: TrapPageFault, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode, Fault: f}
	}
	in, ilen, err := isa.Decode(c.fetchBuf[:n])
	if err != nil {
		return StepContinue, &Trap{Kind: TrapUndefined, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
	}
	c.Instrs++
	rip := c.RIP
	before := c.Cycles
	c.Cycles += in.Cost()
	next := c.RIP + uint64(ilen)
	stop, trap := c.exec(&in, next)
	if c.probe != nil {
		c.notifyExec(rip, &in, c.Cycles-before)
	}
	return stop, trap
}

// State is a complete architectural snapshot of the CPU: everything Restore
// needs to resume as if the intervening execution never happened. The
// address space and the installed probes are deliberately excluded — memory
// has its own checkpoint machinery (mem.Checkpoint/Rollback) and observers
// belong to whoever installed them.
type State struct {
	Regs          [isa.NumGPR]uint64
	RIP           uint64
	RFlags        uint64
	Bnd           [isa.NumBnd]Bound
	Mode          Mode
	Cycles        uint64
	Instrs        uint64
	MSRs          map[uint64]uint64
	SavedUserRSP  uint64
	SavedUserBnd0 Bound
	InSyscall     bool
	Pending       *Trap
}

// SaveState captures the CPU's architectural state.
func (c *CPU) SaveState() State {
	s := State{
		Regs:          c.Regs,
		RIP:           c.RIP,
		RFlags:        c.RFlags,
		Bnd:           c.Bnd,
		Mode:          c.Mode,
		Cycles:        c.Cycles,
		Instrs:        c.Instrs,
		SavedUserRSP:  c.savedUserRSP,
		SavedUserBnd0: c.savedUserBnd0,
		InSyscall:     c.inSyscall,
		Pending:       c.Pending,
	}
	s.MSRs = make(map[uint64]uint64, len(c.MSRs))
	for k, v := range c.MSRs {
		s.MSRs[k] = v
	}
	return s
}

// RestoreState rewinds the CPU to a previously saved state.
func (c *CPU) RestoreState(s State) {
	c.Regs = s.Regs
	c.RIP = s.RIP
	c.RFlags = s.RFlags
	c.Bnd = s.Bnd
	c.Mode = s.Mode
	c.Cycles = s.Cycles
	c.Instrs = s.Instrs
	c.savedUserRSP = s.SavedUserRSP
	c.savedUserBnd0 = s.SavedUserBnd0
	c.inSyscall = s.InSyscall
	c.Pending = s.Pending
	c.MSRs = make(map[uint64]uint64, len(s.MSRs))
	for k, v := range s.MSRs {
		c.MSRs[k] = v
	}
}
