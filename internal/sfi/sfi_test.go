package sfi

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// figure2Func reconstructs the paper's running example,
// nhm_uncore_msr_enable_event() (Figure 2(e), minus instrumentation):
//
//	cmpl $0x7,0x154(%rsi)
//	mov  0x140(%rsi),%rcx
//	jg   L1
//	mov  0x130(%rsi),%rax
//	or   $0x400000,%rax
//	mov  %rax,%rdx
//	shr  $0x20,%rdx
//	jmp  L2
//	L1: xor %edx,%edx ; mov $0x1,%eax
//	L2: wrmsr ; retq
func figure2Func(t *testing.T) *ir.Function {
	t.Helper()
	f, err := ir.NewBuilder("nhm_uncore_msr_enable_event").
		I(
			isa.CmpMI(isa.Mem(isa.RSI, 0x154), 0x7),
			isa.Load(isa.RCX, isa.Mem(isa.RSI, 0x140)),
			isa.Jcc(isa.CondG, "L1"),
		).
		Label("body").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSI, 0x130)),
			isa.OrRI(isa.RAX, 0x400000),
			isa.MovRR(isa.RDX, isa.RAX),
			isa.ShrRI(isa.RDX, 0x20),
			isa.Jmp("L2"),
		).
		Label("L1").
		I(
			isa.XorRR(isa.RDX, isa.RDX),
			isa.MovRI(isa.RAX, 0x1),
		).
		Label("L2").
		I(isa.Wrmsr(), isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// render flattens a function to one mnemonic string per instruction.
func render(f *ir.Function) []string {
	var out []string
	for _, b := range f.Blocks {
		for _, in := range b.Ins {
			out = append(out, in.String())
		}
	}
	return out
}

func count(f *ir.Function, pred func(isa.Instr) bool) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Ins {
			if pred(in) {
				n++
			}
		}
	}
	return n
}

func isOp(op isa.Opcode) func(isa.Instr) bool {
	return func(in isa.Instr) bool { return in.Op == op }
}

func instrument(t *testing.T, f *ir.Function, cfg Config) (Stats, *ir.Function) {
	t.Helper()
	c := f.Clone()
	st, err := Instrument(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("instrumented function invalid: %v", err)
	}
	return st, c
}

func TestFigure2O0(t *testing.T) {
	st, f := instrument(t, figure2Func(t), Config{Mode: ModeSFI, Level: O0})
	// Three reads, three RCs, each wrapped in pushfq/popfq with a lea.
	if st.RCEmitted != 3 || st.PushfqPairs != 3 || st.LeaForm != 3 {
		t.Fatalf("O0 stats: %+v", st)
	}
	if n := count(f, isOp(isa.PUSHFQ)); n != 3 {
		t.Errorf("pushfq count = %d, want 3", n)
	}
	if n := count(f, isOp(isa.LEA)); n != 3 {
		t.Errorf("lea count = %d, want 3", n)
	}
	// All three RC cmps use the scratch register against $_krx_edata.
	asm := strings.Join(render(f), "\n")
	if strings.Count(asm, "cmp $_krx_edata, %r11") != 3 {
		t.Errorf("O0 cmp form missing:\n%s", asm)
	}
	// Violation block appended.
	if f.BlockIndex(ViolLabel) < 0 {
		t.Error("violation block missing")
	}
}

func TestFigure2O1PushfqElimination(t *testing.T) {
	st, f := instrument(t, figure2Func(t), Config{Mode: ModeSFI, Level: O1})
	// Per the paper: RC1 (before the cmpl) and RC3 (before the 0x130 load,
	// whose flags die at the or) lose their pushfq/popfq; RC2 (before the
	// 0x140 load, with the cmpl's flags still live for the jg) keeps them.
	if st.PushfqPairs != 1 || st.PushfqEliminated != 2 {
		t.Fatalf("O1 stats: %+v", st)
	}
	if n := count(f, isOp(isa.PUSHFQ)); n != 1 {
		t.Errorf("pushfq count = %d, want 1", n)
	}
}

func TestFigure2O2LeaElimination(t *testing.T) {
	st, f := instrument(t, figure2Func(t), Config{Mode: ModeSFI, Level: O2})
	if st.LeaEliminated != 3 || st.LeaForm != 0 {
		t.Fatalf("O2 stats: %+v", st)
	}
	if n := count(f, isOp(isa.LEA)); n != 0 {
		t.Errorf("lea count = %d, want 0", n)
	}
	asm := strings.Join(render(f), "\n")
	for _, want := range []string{
		"cmp $(_krx_edata-0x154), %rsi",
		"cmp $(_krx_edata-0x140), %rsi",
		"cmp $(_krx_edata-0x130), %rsi",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("missing %q in:\n%s", want, asm)
		}
	}
}

func TestFigure2O3Coalescing(t *testing.T) {
	st, f := instrument(t, figure2Func(t), Config{Mode: ModeSFI, Level: O3})
	// All three checks coalesce into a single check against the maximum
	// displacement (0x154), exactly Figure 2(d).
	if st.RCEmitted != 1 || st.RCCoalesced != 2 {
		t.Fatalf("O3 stats: %+v", st)
	}
	asm := strings.Join(render(f), "\n")
	if !strings.Contains(asm, "cmp $(_krx_edata-0x154), %rsi") {
		t.Errorf("coalesced check missing:\n%s", asm)
	}
	if n := count(f, isOp(isa.PUSHFQ)); n != 0 {
		t.Errorf("O3 figure function needs no pushfq, got %d", n)
	}
	// The single RC plus ja; no lea.
	if n := count(f, isOp(isa.LEA)); n != 0 {
		t.Errorf("lea count = %d", n)
	}
}

func TestFigure2MPX(t *testing.T) {
	st, f := instrument(t, figure2Func(t), Config{Mode: ModeMPX})
	// MPX: a single bndcu $0x154(%rsi), %bnd0 (Figure 2(e)).
	if st.RCEmitted != 1 || st.RCCoalesced != 2 {
		t.Fatalf("MPX stats: %+v", st)
	}
	if n := count(f, isOp(isa.BNDCU)); n != 1 {
		t.Fatalf("bndcu count = %d, want 1", n)
	}
	asm := strings.Join(render(f), "\n")
	if !strings.Contains(asm, "bndcu 0x154(%rsi), %bnd0") {
		t.Errorf("bndcu form missing:\n%s", asm)
	}
	// No pushfq, no lea, no violation block (bndcu raises #BR directly).
	if count(f, isOp(isa.PUSHFQ)) != 0 || count(f, isOp(isa.LEA)) != 0 {
		t.Error("MPX must not emit pushfq/lea")
	}
	if f.BlockIndex(ViolLabel) >= 0 {
		t.Error("MPX needs no violation block")
	}
}

func TestSafeReadsNotInstrumented(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.Load(isa.R11, isa.MemRIP("xkey.f", 0)),  // safe: rip-relative
			isa.Load(isa.RAX, isa.MemAbs("counter", 0)), // safe: absolute
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, g := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	if st.ReadsTotal != 2 || st.SafeReads != 2 || st.RCEmitted != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if g.NumInstrs() != f.NumInstrs() {
		t.Error("safe reads must not grow the function")
	}
}

func TestStackReadsUseGuard(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSP, 0x40)),             // guard-covered
			isa.Load(isa.RBX, isa.Mem(isa.RSP, 8)),                // guard-covered
			isa.Load(isa.RCX, isa.MemIdx(isa.RSP, isa.RDX, 8, 0)), // scaled index: instrumented
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, g := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	if st.StackReads != 2 || st.RCEmitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxStackDisp != 0x40 {
		t.Errorf("MaxStackDisp = %#x, want 0x40", st.MaxStackDisp)
	}
	// The scaled-index stack read keeps the lea triplet.
	if count(g, isOp(isa.LEA)) != 1 {
		t.Error("scaled-index stack read must use lea form")
	}
}

func TestRepStringCheckedAfter(t *testing.T) {
	f, err := ir.NewBuilder("copy").
		I(
			isa.Movs(8, true),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	_, g := instrument(t, f, Config{Mode: ModeSFI, Level: O2})
	ins := g.Blocks[0].Ins
	// Layout: [rep movsq][RC...][ret] — the check follows the instruction.
	if ins[0].Op != isa.MOVS {
		t.Fatalf("rep movs must come first, got %v", ins[0].Op)
	}
	foundCmp := false
	for _, in := range ins[1:] {
		if in.Op == isa.CMPri && in.Dst == isa.RSI {
			foundCmp = true
		}
	}
	if !foundCmp {
		t.Errorf("postmortem %%rsi check missing: %v", render(g))
	}
}

func TestNonRepStringCheckedBefore(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(isa.Lods(8, false), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	_, g := instrument(t, f, Config{Mode: ModeSFI, Level: O0})
	ins := g.Blocks[0].Ins
	if ins[len(ins)-2].Op != isa.LODS && ins[0].Op == isa.LODS {
		t.Errorf("non-rep string op must be preceded by its RC: %v", render(g))
	}
	if ins[0].Op == isa.LODS {
		t.Errorf("RC must precede lods: %v", render(g))
	}
}

func TestCmpsChecksBothPointers(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(isa.Cmps(1, true), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, g := instrument(t, f, Config{Mode: ModeSFI, Level: O2})
	if st.RCEmitted != 2 {
		t.Fatalf("cmps needs two RCs (rsi+rdi): %+v", st)
	}
	asm := strings.Join(render(g), "\n")
	if !strings.Contains(asm, "%rsi") || !strings.Contains(asm, "%rdi") {
		t.Errorf("both pointers must be checked:\n%s", asm)
	}
}

func TestCoalescingBlockedByRedefinition(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSI, 0x10)),
			isa.AddRI(isa.RSI, 8), // base redefined
			isa.Load(isa.RBX, isa.Mem(isa.RSI, 0x20)),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	if st.RCCoalesced != 0 || st.RCEmitted != 2 {
		t.Fatalf("redefinition must block coalescing: %+v", st)
	}
}

func TestCoalescingBlockedBySpill(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSI, 0x10)),
			isa.Store(isa.Mem(isa.RSP, 0x8), isa.RSI), // spill of the base
			isa.Load(isa.RBX, isa.Mem(isa.RSI, 0x20)),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	if st.RCCoalesced != 0 {
		t.Fatalf("spill must block coalescing (temporal attacks): %+v", st)
	}
}

func TestCoalescingBlockedByCall(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSI, 0x10)),
			isa.Call("g"),
			isa.Load(isa.RBX, isa.Mem(isa.RSI, 0x20)),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	if st.RCCoalesced != 0 {
		t.Fatalf("call must block coalescing: %+v", st)
	}
}

func TestCoalescingAcrossDivergingPathsBlocked(t *testing.T) {
	// A check in one branch arm must not absorb a check in the other arm.
	f, err := ir.NewBuilder("f").
		I(isa.CmpRI(isa.RAX, 0), isa.Jcc(isa.CondE, "right")).
		Label("left").
		I(isa.Load(isa.RBX, isa.Mem(isa.RSI, 0x10)), isa.Jmp("join")).
		Label("right").
		I(isa.Load(isa.RCX, isa.Mem(isa.RSI, 0x20))).
		Label("join").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	if st.RCCoalesced != 0 || st.RCEmitted != 2 {
		t.Fatalf("cross-arm coalescing must be blocked: %+v", st)
	}
}

func TestNoInstrumentExemption(t *testing.T) {
	f, err := ir.NewBuilder("memcpy_krx").
		I(isa.Movs(8, true), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	f.NoInstrument = true
	st, err := Instrument(f, Config{Mode: ModeSFI, Level: O3})
	if err != nil {
		t.Fatal(err)
	}
	if st.RCEmitted != 0 || f.NumInstrs() != 2 {
		t.Fatalf("NoInstrument function must stay untouched: %+v", st)
	}
}

func TestDoubleInstrumentRejected(t *testing.T) {
	f := figure2Func(t)
	if _, err := Instrument(f, Config{Mode: ModeSFI, Level: O0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(f, Config{Mode: ModeSFI, Level: O0}); err == nil {
		t.Fatal("re-instrumentation must be rejected")
	}
}

func TestWritesNotInstrumented(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.Store(isa.Mem(isa.RDI, 0x10), isa.RAX),
			isa.StoreImm(isa.Mem(isa.RDI, 0x18), 7),
			isa.Stos(8, true),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O0})
	if st.RCEmitted != 0 {
		t.Fatalf("pure writes must not be range-checked: %+v", st)
	}
}

func TestRMWIsInstrumented(t *testing.T) {
	// xor %reg, mem reads memory and must be checked.
	f, err := ir.NewBuilder("f").
		I(isa.XorMR(isa.Mem(isa.RDI, 0x10), isa.RAX), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O2})
	if st.RCEmitted != 1 {
		t.Fatalf("rmw must be instrumented: %+v", st)
	}
}

func TestIndirectMemBranchesInstrumented(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(
			isa.CallMem(isa.Mem(isa.RBX, 8)),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := instrument(t, f, Config{Mode: ModeSFI, Level: O2})
	if st.RCEmitted != 1 {
		t.Fatalf("callq *mem reads memory and must be checked: %+v", st)
	}
}

// Property: instrumentation is a no-op for functions without unsafe reads,
// and never produces an invalid function for randomly generated bodies.
func TestQuickInstrumentValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		b := ir.NewBuilder("f")
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				b.I(isa.Load(isa.RAX, isa.Mem(isa.RSI, int32(rng.Intn(512)))))
			case 1:
				b.I(isa.AddRI(isa.RBX, int32(rng.Intn(100))))
			case 2:
				b.I(isa.CmpRI(isa.RAX, int32(rng.Intn(10))))
			case 3:
				b.I(isa.Store(isa.Mem(isa.RDI, int32(rng.Intn(512))), isa.RAX))
			case 4:
				b.I(isa.Load(isa.RCX, isa.MemIdx(isa.RSI, isa.RDX, 8, int32(rng.Intn(64)))))
			case 5:
				b.I(isa.Movs(8, rng.Intn(2) == 0))
			}
		}
		b.I(isa.Ret())
		f, err := b.Func()
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Mode: ModeSFI, Level: O0}, {Mode: ModeSFI, Level: O1},
			{Mode: ModeSFI, Level: O2}, {Mode: ModeSFI, Level: O3},
			{Mode: ModeMPX},
		} {
			c := f.Clone()
			if _, err := Instrument(c, cfg); err != nil {
				t.Fatalf("trial %d cfg %+v: %v", trial, cfg, err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("trial %d cfg %+v: invalid: %v\n%s", trial, cfg, err, c.String())
			}
		}
	}
}

func TestOptimizationLadderMonotonic(t *testing.T) {
	// Each optimization level must not increase the instrumented size.
	f := figure2Func(t)
	var sizes [4]int
	for lvl := O0; lvl <= O3; lvl++ {
		_, g := instrument(t, f, Config{Mode: ModeSFI, Level: lvl})
		sizes[lvl] = g.NumInstrs()
	}
	for lvl := O1; lvl <= O3; lvl++ {
		if sizes[lvl] > sizes[lvl-1] {
			t.Errorf("size grew from %v (%d) to %v (%d)", lvl-1, sizes[lvl-1], lvl, sizes[lvl])
		}
	}
	_, m := instrument(t, f, Config{Mode: ModeMPX})
	if m.NumInstrs() > sizes[O3] {
		t.Error("MPX instrumentation must be the smallest")
	}
}

func TestMPXIndexFormKeepsFullAddressing(t *testing.T) {
	// bndcu encodes the complete effective address, including scaled
	// index registers — no lea needed even for index forms.
	f, err := ir.NewBuilder("f").
		I(isa.Load(isa.RAX, isa.MemIdx(isa.RSI, isa.RCX, 8, 0x20)), isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	_, g := instrument(t, f, Config{Mode: ModeMPX})
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Ins {
			if in.Op == isa.BNDCU {
				found = true
				if !in.M.HasIndex() || in.M.Index != isa.RCX || in.M.Scale != 8 || in.M.Disp != 0x20 {
					t.Fatalf("bndcu lost the addressing mode: %s", in.String())
				}
			}
		}
	}
	if !found {
		t.Fatal("no bndcu emitted")
	}
}

func TestSFILeaFormKeepsFullAddressing(t *testing.T) {
	f, err := ir.NewBuilder("f").
		I(isa.Load(isa.RAX, isa.MemIdx(isa.RSI, isa.RCX, 4, -8)), isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	_, g := instrument(t, f, Config{Mode: ModeSFI, Level: O3})
	for _, b := range g.Blocks {
		for _, in := range b.Ins {
			if in.Op == isa.LEA {
				if !in.M.HasIndex() || in.M.Scale != 4 || in.M.Disp != -8 {
					t.Fatalf("lea lost the addressing mode: %s", in.String())
				}
				return
			}
		}
	}
	t.Fatal("no lea emitted for the index form")
}
