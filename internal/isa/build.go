package isa

// Constructor helpers. These keep IR-building code (the mini-kernel sources,
// the instrumentation passes) readable and uniform.

// MovRI builds mov $imm64, %dst.
func MovRI(dst Reg, imm int64) Instr { return Instr{Op: MOVri, Dst: dst, Imm: imm} }

// MovSym builds mov $sym, %dst (address of a link-time symbol).
func MovSym(dst Reg, sym string) Instr { return Instr{Op: MOVri, Dst: dst, Sym: sym} }

// MovRR builds mov %src, %dst.
func MovRR(dst, src Reg) Instr { return Instr{Op: MOVrr, Dst: dst, Src: src} }

// Load builds mov mem, %dst.
func Load(dst Reg, m MemRef) Instr { return Instr{Op: MOVrm, Dst: dst, M: m} }

// LoadSz builds a load with explicit access size.
func LoadSz(dst Reg, m MemRef, size uint8) Instr {
	return Instr{Op: MOVrm, Dst: dst, M: m, Size: size}
}

// Store builds mov %src, mem.
func Store(m MemRef, src Reg) Instr { return Instr{Op: MOVmr, Dst: src, M: m} }

// StoreSz builds a store with explicit access size.
func StoreSz(m MemRef, src Reg, size uint8) Instr {
	return Instr{Op: MOVmr, Dst: src, M: m, Size: size}
}

// StoreImm builds movq $imm32, mem.
func StoreImm(m MemRef, imm int32) Instr { return Instr{Op: MOVmi, M: m, Imm: int64(imm)} }

// Lea builds lea mem, %dst.
func Lea(dst Reg, m MemRef) Instr { return Instr{Op: LEA, Dst: dst, M: m} }

// Push builds push %reg.
func Push(r Reg) Instr { return Instr{Op: PUSH, Dst: r} }

// Pop builds pop %reg.
func Pop(r Reg) Instr { return Instr{Op: POP, Dst: r} }

// Pushfq builds pushfq.
func Pushfq() Instr { return Instr{Op: PUSHFQ} }

// Popfq builds popfq.
func Popfq() Instr { return Instr{Op: POPFQ} }

// AddRI builds add $imm, %dst.
func AddRI(dst Reg, imm int32) Instr { return Instr{Op: ADDri, Dst: dst, Imm: int64(imm)} }

// AddRR builds add %src, %dst.
func AddRR(dst, src Reg) Instr { return Instr{Op: ADDrr, Dst: dst, Src: src} }

// SubRI builds sub $imm, %dst.
func SubRI(dst Reg, imm int32) Instr { return Instr{Op: SUBri, Dst: dst, Imm: int64(imm)} }

// SubRR builds sub %src, %dst.
func SubRR(dst, src Reg) Instr { return Instr{Op: SUBrr, Dst: dst, Src: src} }

// AndRI builds and $imm, %dst.
func AndRI(dst Reg, imm int32) Instr { return Instr{Op: ANDri, Dst: dst, Imm: int64(imm)} }

// OrRI builds or $imm, %dst.
func OrRI(dst Reg, imm int32) Instr { return Instr{Op: ORri, Dst: dst, Imm: int64(imm)} }

// OrRR builds or %src, %dst.
func OrRR(dst, src Reg) Instr { return Instr{Op: ORrr, Dst: dst, Src: src} }

// AndRR builds and %src, %dst.
func AndRR(dst, src Reg) Instr { return Instr{Op: ANDrr, Dst: dst, Src: src} }

// NotR builds not %dst.
func NotR(dst Reg) Instr { return Instr{Op: NOTr, Dst: dst} }

// XorRR builds xor %src, %dst.
func XorRR(dst, src Reg) Instr { return Instr{Op: XORrr, Dst: dst, Src: src} }

// XorMR builds xor %src, mem (read-modify-write).
func XorMR(m MemRef, src Reg) Instr { return Instr{Op: XORmr, Dst: src, M: m} }

// ShlRI builds shl $imm8, %dst.
func ShlRI(dst Reg, imm uint8) Instr { return Instr{Op: SHLri, Dst: dst, Imm: int64(imm)} }

// ShrRI builds shr $imm8, %dst.
func ShrRI(dst Reg, imm uint8) Instr { return Instr{Op: SHRri, Dst: dst, Imm: int64(imm)} }

// ImulRI builds imul $imm, %dst.
func ImulRI(dst Reg, imm int32) Instr { return Instr{Op: IMULri, Dst: dst, Imm: int64(imm)} }

// CmpRI builds cmp $imm, %reg.
func CmpRI(r Reg, imm int32) Instr { return Instr{Op: CMPri, Dst: r, Imm: int64(imm)} }

// CmpRR builds cmp %src, %dst (computes dst - src).
func CmpRR(dst, src Reg) Instr { return Instr{Op: CMPrr, Dst: dst, Src: src} }

// CmpRM builds cmp mem, %reg.
func CmpRM(r Reg, m MemRef) Instr { return Instr{Op: CMPrm, Dst: r, M: m} }

// CmpMI builds cmpq $imm, mem.
func CmpMI(m MemRef, imm int32) Instr { return Instr{Op: CMPmi, M: m, Imm: int64(imm)} }

// CmpSymNeg builds cmp $(sym-disp), %reg: the O2-optimized range check.
func CmpSymNeg(r Reg, sym string, disp int32) Instr {
	return Instr{Op: CMPri, Dst: r, Sym: sym, SymNeg: true, Imm: int64(disp)}
}

// TestRR builds test %src, %dst.
func TestRR(dst, src Reg) Instr { return Instr{Op: TESTrr, Dst: dst, Src: src} }

// Inc builds inc %reg.
func Inc(r Reg) Instr { return Instr{Op: INCr, Dst: r} }

// Dec builds dec %reg.
func Dec(r Reg) Instr { return Instr{Op: DECr, Dst: r} }

// Jmp builds jmp label (intra-function).
func Jmp(label string) Instr { return Instr{Op: JMP, Label: label} }

// JmpSym builds jmp sym (inter-function tail jump).
func JmpSym(sym string) Instr { return Instr{Op: JMP, Sym: sym} }

// Jcc builds a conditional jump to label.
func Jcc(cc Cond, label string) Instr { return Instr{Op: JCC, CC: cc, Label: label} }

// JccSym builds a conditional jump to a link-time symbol (used by range
// checks to branch to the violation handler).
func JccSym(cc Cond, sym string) Instr { return Instr{Op: JCC, CC: cc, Sym: sym} }

// Call builds callq sym.
func Call(sym string) Instr { return Instr{Op: CALL, Sym: sym} }

// CallReg builds callq *%reg.
func CallReg(r Reg) Instr { return Instr{Op: CALLR, Dst: r} }

// CallMem builds callq *mem.
func CallMem(m MemRef) Instr { return Instr{Op: CALLM, M: m} }

// Ret builds retq.
func Ret() Instr { return Instr{Op: RET} }

// RetImm builds retq $imm16 (pops the return address, then rsp += imm).
func RetImm(imm uint16) Instr { return Instr{Op: RETI, Imm: int64(imm)} }

// Movs builds a movs of the given element width, optionally REP-prefixed.
func Movs(width uint8, rep bool) Instr { return Instr{Op: MOVS, SF: MakeStrFlags(width, rep)} }

// Stos builds a stos of the given element width, optionally REP-prefixed.
func Stos(width uint8, rep bool) Instr { return Instr{Op: STOS, SF: MakeStrFlags(width, rep)} }

// Lods builds a lods of the given element width, optionally REP-prefixed.
func Lods(width uint8, rep bool) Instr { return Instr{Op: LODS, SF: MakeStrFlags(width, rep)} }

// Cmps builds a cmps of the given element width, optionally REP-prefixed.
func Cmps(width uint8, rep bool) Instr { return Instr{Op: CMPS, SF: MakeStrFlags(width, rep)} }

// Scas builds a scas of the given element width, optionally REP-prefixed.
func Scas(width uint8, rep bool) Instr { return Instr{Op: SCAS, SF: MakeStrFlags(width, rep)} }

// Bndcu builds bndcu mem, %bndN (fault if effective address > upper bound).
func Bndcu(b BndReg, m MemRef) Instr { return Instr{Op: BNDCU, Bnd: b, M: m} }

// Bndmk builds bndmk mem, %bndN (lb=0, ub=effective address).
func Bndmk(b BndReg, m MemRef) Instr { return Instr{Op: BNDMK, Bnd: b, M: m} }

// Int3 builds int3.
func Int3() Instr { return Instr{Op: INT3} }

// Nop builds nop.
func Nop() Instr { return Instr{Op: NOP} }

// Hlt builds hlt.
func Hlt() Instr { return Instr{Op: HLT} }

// Syscall builds syscall.
func Syscall() Instr { return Instr{Op: SYSCALL} }

// Sysret builds sysret.
func Sysret() Instr { return Instr{Op: SYSRET} }

// Iret builds iretq.
func Iret() Instr { return Instr{Op: IRET} }

// Wrmsr builds wrmsr.
func Wrmsr() Instr { return Instr{Op: WRMSR} }
