package diversify

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/sfi"
	"repro/internal/testkit"
)

// genProgram builds a random well-formed program: a few leaf helpers and a
// kmain that branches, loops boundedly, reads/writes a data blob, and calls
// the helpers. Execution is deterministic in (rdi, rsi).
func genProgram(t *testing.T, rng *rand.Rand) *ir.Program {
	t.Helper()
	nHelpers := 1 + rng.Intn(3)
	var funcs []*ir.Function
	for h := 0; h < nHelpers; h++ {
		b := ir.NewBuilder(fmt.Sprintf("helper%d", h))
		// Helpers compute on rdi and read the blob.
		b.I(
			isa.MovSym(isa.R8, "blob"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, int32(rng.Intn(8))*8)),
			isa.AddRR(isa.RAX, isa.RDI),
		)
		for j := 0; j < rng.Intn(4); j++ {
			switch rng.Intn(3) {
			case 0:
				b.I(isa.AddRI(isa.RAX, int32(rng.Intn(100))))
			case 1:
				b.I(isa.ShlRI(isa.RAX, uint8(1+rng.Intn(3))))
			case 2:
				b.I(isa.XorRR(isa.RAX, isa.RDI))
			}
		}
		b.I(isa.Ret())
		f, err := b.Func()
		if err != nil {
			t.Fatal(err)
		}
		funcs = append(funcs, f)
	}

	b := ir.NewBuilder("kmain").
		I(
			isa.MovRR(isa.RBX, isa.RDI), // rbx: accumulator (callee won't touch)
			isa.CmpRR(isa.RDI, isa.RSI),
			isa.Jcc(isa.CondA, "bigger"),
		).
		Label("smaller").
		I(
			isa.MovRR(isa.RDI, isa.RSI),
			isa.Call(funcs[rng.Intn(len(funcs))].Name),
			isa.AddRR(isa.RBX, isa.RAX),
			isa.Jmp("loop"),
		).
		Label("bigger").
		I(
			isa.Call(funcs[rng.Intn(len(funcs))].Name),
			isa.AddRR(isa.RBX, isa.RAX),
		).
		Label("loop").
		I(isa.MovRI(isa.RCX, int64(2+rng.Intn(5)))).
		Label("body").
		I(
			isa.MovSym(isa.R8, "blob"),
			isa.Load(isa.RDX, isa.Mem(isa.R8, 16)),
			isa.AddRR(isa.RBX, isa.RDX),
			isa.Store(isa.Mem(isa.R8, 24), isa.RBX),
			isa.Dec(isa.RCX),
			isa.CmpRI(isa.RCX, 0),
			isa.Jcc(isa.CondNE, "body"),
		).
		Label("out").
		I(isa.MovRR(isa.RAX, isa.RBX), isa.Ret())
	kmain, err := b.Func()
	if err != nil {
		t.Fatal(err)
	}

	blob := make([]byte, 64)
	rng.Read(blob)
	return &ir.Program{
		Funcs: append([]*ir.Function{kmain, testkit.KrxHandler()}, funcs...),
		Data:  []ir.DataSym{{Name: "blob", Bytes: blob}},
	}
}

// run executes kmain(a, b) on a fresh install and returns rax.
func runProg(t *testing.T, prog *ir.Program, a, b uint64) uint64 {
	t.Helper()
	env := testkit.Build(t, prog, kas.KRX)
	env.FillKeys(t, 0x9e3779b97f4a7c15)
	res := env.Call(t, "kmain", a, b)
	if res.Reason != cpu.StopReturn {
		t.Fatalf("run: %v trap=%v", res.Reason, res.Trap)
	}
	return env.CPU.Reg(isa.RAX)
}

// TestRandomProgramEquivalence: for random programs and random inputs, the
// full pipeline (SFI + every diversification variant + register
// randomization) preserves the computed result exactly.
func TestRandomProgramEquivalence(t *testing.T) {
	seedRng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 12; trial++ {
		src := genProgram(t, rand.New(rand.NewSource(int64(1000+trial))))
		a := uint64(seedRng.Intn(1 << 20))
		bArg := uint64(seedRng.Intn(1 << 20))
		// Data is mutated by kmain: every run needs a pristine program.
		want := runProg(t, src.Clone(), a, bArg)

		for _, raprot := range []RAProt{RANone, RAEncrypt, RADecoy} {
			for _, regrand := range []bool{false, true} {
				p := src.Clone()
				if _, err := sfi.InstrumentProgram(p, sfi.Config{Mode: sfi.ModeSFI, Level: sfi.O3}); err != nil {
					t.Fatal(err)
				}
				cfg := Config{
					K: 20, RAProt: raprot, RegRand: regrand,
					Rand: rand.New(rand.NewSource(int64(trial*10) + int64(raprot))),
				}
				if _, err := DiversifyProgram(p, cfg); err != nil {
					t.Fatal(err)
				}
				got := runProg(t, p, a, bArg)
				if got != want {
					t.Fatalf("trial %d ra=%v regrand=%v: kmain(%d,%d) = %d, want %d",
						trial, raprot, regrand, a, bArg, got, want)
				}
			}
		}
	}
}
