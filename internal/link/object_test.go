package link

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

func objProg(t *testing.T) *ir.Program {
	t.Helper()
	f, err := ir.NewBuilder("mod_fn").
		I(
			isa.Load(isa.R11, isa.MemRIP(KeyPrefix+"mod_fn", 0)),
			isa.MovSym(isa.RAX, "mod_data"),
			isa.Call("kernel_helper"),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	return &ir.Program{
		Funcs:  []*ir.Function{f},
		Data:   []ir.DataSym{{Name: "mod_data", Bytes: make([]byte, 16)}},
		Rodata: []ir.DataSym{{Name: "mod_ro", Bytes: []byte("ro!")}},
		BSS:    []ir.BSSSym{{Name: "mod_bss", Size: 64}},
		Relocs: []ir.DataReloc{{In: "mod_data", Off: 8, Sym: "mod_fn"}},
	}
}

const (
	objText = 0xffffffffa0000000
	objData = 0xffffffff5f000000
)

func externs() map[string]uint64 {
	return map[string]uint64{
		"kernel_helper": 0xffffffff80041000,
		"_krx_edata":    0xffffffff80030000,
	}
}

func TestLinkObjectPlacesSections(t *testing.T) {
	img, err := LinkObject(objProg(t), objText, objData, externs())
	if err != nil {
		t.Fatal(err)
	}
	if img.Symbols["mod_fn"] != objText {
		t.Errorf("mod_fn at %#x", img.Symbols["mod_fn"])
	}
	// rodata first, then data, then bss, all within the data allocation.
	ro, da, bss := img.Symbols["mod_ro"], img.Symbols["mod_data"], img.Symbols["mod_bss"]
	if !(objData <= ro && ro < da && da < bss) {
		t.Errorf("section ordering: ro=%#x data=%#x bss=%#x", ro, da, bss)
	}
	if img.BssSize != 64 {
		t.Errorf("bss size %d", img.BssSize)
	}
	// xkey slot appended after text.
	ka := img.KeyAddrs[KeyPrefix+"mod_fn"]
	if ka < objText+uint64(len(img.Text)) {
		t.Errorf("xkey at %#x inside code bytes", ka)
	}
	if img.TotalTextSize() != uint64(len(img.Text))+8 {
		t.Errorf("TotalTextSize %d", img.TotalTextSize())
	}
}

func TestLinkObjectResolvesExternsAndRelocs(t *testing.T) {
	img, err := LinkObject(objProg(t), objText, objData, externs())
	if err != nil {
		t.Fatal(err)
	}
	// Walk the code: the call must target the extern.
	pc := uint64(objText)
	found := false
	for off := 0; off < len(img.Text); {
		in, n, err := isa.Decode(img.Text[off:])
		if err != nil {
			t.Fatalf("decode at +%d: %v", off, err)
		}
		if in.Op == isa.CALL {
			target := pc + uint64(n) + uint64(int64(in.Imm))
			if target != externs()["kernel_helper"] {
				t.Errorf("call target %#x", target)
			}
			found = true
		}
		if in.Op == isa.RET {
			break
		}
		off += n
		pc += uint64(n)
	}
	if !found {
		t.Fatal("call not found")
	}
	// Data relocation: mod_data+8 holds mod_fn's address.
	off := img.Symbols["mod_data"] - objData
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(img.Data[off+8+uint64(i)]) << (8 * i)
	}
	if v != img.Symbols["mod_fn"] {
		t.Errorf("reloc: %#x want %#x", v, img.Symbols["mod_fn"])
	}
}

func TestLinkObjectUndefinedExtern(t *testing.T) {
	p := objProg(t)
	if _, err := LinkObject(p, objText, objData, map[string]uint64{"_krx_edata": 1}); err == nil {
		t.Fatal("undefined extern must fail")
	}
}

func TestLinkObjectSymbolCollision(t *testing.T) {
	p := objProg(t)
	ext := externs()
	ext["mod_fn"] = 0x1234 // collides with the module's own function
	if _, err := LinkObject(p, objText, objData, ext); err == nil {
		t.Fatal("symbol collision must fail")
	}
}

func TestLinkObjectRel32OutOfRange(t *testing.T) {
	p := objProg(t)
	ext := externs()
	ext["kernel_helper"] = 0x4000000000 // 256GB away from the module text
	if _, err := LinkObject(p, objText, objData, ext); err == nil {
		t.Fatal("rel32 overflow must fail the link")
	}
}
