package fuzz

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestOptionsValidation: negative counts are rejected with a typed
// *OptionsError naming the offending field; zero values still take their
// defaults.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative-iters", Options{Iters: -1}, "Iters"},
		{"negative-workers", Options{Workers: -2}, "Workers"},
		{"negative-minimize", Options{MaxMinimize: -64}, "MaxMinimize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts)
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("New(%+v) = %v, want *OptionsError", tc.opts, err)
			}
			if oe.Field != tc.field {
				t.Errorf("OptionsError.Field = %q, want %q", oe.Field, tc.field)
			}
		})
	}

	var o Options
	if err := o.Normalize(); err != nil {
		t.Fatalf("zero Options must normalize cleanly: %v", err)
	}
	if o.Iters != 1000 || o.Workers != 1 || o.MaxMinimize != 64 {
		t.Errorf("defaults = iters %d workers %d minimize %d, want 1000/1/64",
			o.Iters, o.Workers, o.MaxMinimize)
	}
}

// TestZeroWorkerGuards: a zero-value Fuzzer (never built by New) must fail
// every worker-touching entry point with a typed *NoWorkersError — not an
// index-out-of-range panic.
func TestZeroWorkerGuards(t *testing.T) {
	var f Fuzzer
	var nw *NoWorkersError

	if _, err := f.Run(); !errors.As(err, &nw) {
		t.Errorf("Run on zero-value Fuzzer = %v, want *NoWorkersError", err)
	}
	if _, err := f.Kernel(); !errors.As(err, &nw) {
		t.Errorf("Kernel on zero-value Fuzzer = %v, want *NoWorkersError", err)
	}
	if _, err := f.Kernels(); !errors.As(err, &nw) {
		t.Errorf("Kernels on zero-value Fuzzer = %v, want *NoWorkersError", err)
	}
	if _, err := f.ExecIteration(0); !errors.As(err, &nw) {
		t.Errorf("ExecIteration on zero-value Fuzzer = %v, want *NoWorkersError", err)
	}
}

// TestPartialReportPrefix is the graceful-shutdown contract: a campaign
// cancelled after batch k emits a Partial report that is byte-identical —
// bar the partial marker — to a full campaign requesting exactly those
// k*BatchSize iterations. Cancellation never tears a batch: the in-flight
// batch drains and merges before the ledger is finalized.
func TestPartialReportPrefix(t *testing.T) {
	const cutoff = 2 * BatchSize

	opts := campaignOpts(4 * BatchSize)
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.batchHook = func(done int) {
		if done >= cutoff {
			cancel()
		}
	}
	partial, err := f.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatal("cancelled campaign did not mark its report partial")
	}
	if partial.Iters != cutoff {
		t.Fatalf("partial report folded %d iters, want %d (batch-aligned drain)", partial.Iters, cutoff)
	}

	fullOpts := campaignOpts(cutoff)
	full, err := Fuzz(fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("uncancelled campaign marked partial")
	}
	got := strings.Replace(partial.String(), " partial=true", "", 1)
	if got != full.String() {
		t.Errorf("partial report is not the canonical prefix:\n--- partial (marker stripped) ---\n%s--- full %d iters ---\n%s",
			got, cutoff, full.String())
	}
}

// TestPreCancelledRun: a context cancelled before the first batch yields an
// empty partial report, not an error and not a hang.
func TestPreCancelledRun(t *testing.T) {
	f, err := New(campaignOpts(BatchSize))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := f.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.Iters != 0 || rep.Executed != 0 {
		t.Errorf("pre-cancelled run: partial=%v iters=%d executed=%d, want true/0/0",
			rep.Partial, rep.Iters, rep.Executed)
	}
}
