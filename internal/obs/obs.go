// Package obs is the observability layer for the emulated machine: a
// cycle-attributed profiler that maps every executed instruction to its
// owning kernel function, a bounded ring-buffer tracer for traps, syscalls,
// snapshot/restore, and injected faults, and a counter/gauge registry that
// unifies the statistics scattered across the build cache, the decode
// cache, and the fuzzer.
//
// Everything in this package is an observer: attaching any of it must never
// change an architecturally visible outcome (Instrs, Cycles, trap streams,
// syscall results). The profiler's conservation invariant — the sum of
// attributed cycles equals the CPU's cycle delta over the attachment window
// — and the tracer's deterministic text format are enforced by tests; both
// hold with the decode cache on or off and under any fuzzing worker count.
package obs
