package isa

import "fmt"

// Opcode identifies a KX64 instruction. The numeric value of each opcode is
// also its encoding byte; a handful of values are pinned to their x86-64
// equivalents (RET=0xC3, INT3=0xCC, CALL=0xE8, JMP=0xE9, NOP=0x90) so that
// byte-level gadget scanning and overlapping-instruction tripwires behave
// like they do on real x86.
type Opcode uint8

// Instruction opcodes.
const (
	// Control transfer.
	CALL  Opcode = 0xE8 // call rel32
	CALLR Opcode = 0x10 // call *%reg
	CALLM Opcode = 0x11 // call *mem
	JMP   Opcode = 0xE9 // jmp rel32
	JMPR  Opcode = 0x12 // jmp *%reg
	JMPM  Opcode = 0x13 // jmp *mem
	JCC   Opcode = 0x70 // jcc rel32 (condition byte follows opcode)
	RET   Opcode = 0xC3 // ret
	RETI  Opcode = 0xC2 // ret $imm16 (pop return address, then rsp += imm)

	// Data movement.
	MOVri Opcode = 0x20 // mov $imm64, %reg
	MOVrr Opcode = 0x21 // mov %src, %dst
	MOVrm Opcode = 0x22 // mov mem, %reg (load)
	MOVmr Opcode = 0x23 // mov %reg, mem (store)
	MOVmi Opcode = 0x24 // mov $imm32, mem (store, sign-extended)
	LEA   Opcode = 0x25 // lea mem, %reg

	// Stack.
	PUSH   Opcode = 0x26 // push %reg
	POP    Opcode = 0x27 // pop %reg
	PUSHFQ Opcode = 0x28 // push %rflags
	POPFQ  Opcode = 0x29 // pop %rflags

	// Arithmetic / logic.
	ADDri  Opcode = 0x30
	ADDrr  Opcode = 0x31
	ADDrm  Opcode = 0x32 // add mem, %reg (load + add)
	SUBri  Opcode = 0x33
	SUBrr  Opcode = 0x34
	SUBrm  Opcode = 0x35
	ANDri  Opcode = 0x36
	ANDrr  Opcode = 0x37
	ORri   Opcode = 0x38
	ORrr   Opcode = 0x39
	XORri  Opcode = 0x3A
	XORrr  Opcode = 0x3B
	XORrm  Opcode = 0x3C // xor mem, %reg (load + xor)
	XORmr  Opcode = 0x3D // xor %reg, mem (read-modify-write)
	SHLri  Opcode = 0x3E
	SHRri  Opcode = 0x3F
	SARri  Opcode = 0x40
	NOTr   Opcode = 0x41
	NEGr   Opcode = 0x42
	IMULrr        = Opcode(0x43)
	IMULri        = Opcode(0x44)

	// Comparison / test.
	CMPri  Opcode = 0x45
	CMPrr  Opcode = 0x46
	CMPrm  Opcode = 0x47 // cmp mem, %reg (load + compare)
	CMPmi  Opcode = 0x48 // cmp $imm32, mem (load + compare)
	TESTrr        = Opcode(0x49)
	TESTri        = Opcode(0x4A)
	INCr          = Opcode(0x4B)
	DECr          = Opcode(0x4C)

	// String operations (flags byte selects REP prefix and element width).
	MOVS Opcode = 0x50 // (%rsi) -> (%rdi)
	STOS Opcode = 0x51 // %rax -> (%rdi)
	LODS Opcode = 0x52 // (%rsi) -> %rax
	CMPS Opcode = 0x53 // compare (%rsi), (%rdi)
	SCAS Opcode = 0x54 // compare %rax, (%rdi)
	CLD  Opcode = 0x55 // clear direction flag
	STD  Opcode = 0x56 // set direction flag

	// System.
	SYSCALL Opcode = 0x05 // user -> kernel mode switch
	SYSRET  Opcode = 0x07 // kernel -> user mode switch
	IRET    Opcode = 0xCF // return from exception
	WRMSR   Opcode = 0x60
	RDMSR   Opcode = 0x61
	SWAPGS  Opcode = 0x62

	// MPX (Memory Protection Extensions).
	BNDCU  Opcode = 0x64 // check effective address against %bndN upper bound
	BNDCL  Opcode = 0x65 // check effective address against %bndN lower bound
	BNDMK  Opcode = 0x66 // make bounds: lb = 0, ub = effective address
	BNDSTX Opcode = 0x67 // spill %bndN to memory (16 bytes)
	BNDLDX Opcode = 0x68 // fill %bndN from memory (16 bytes)

	// Misc.
	NOP  Opcode = 0x90
	INT3 Opcode = 0xCC // breakpoint / tripwire
	HLT  Opcode = 0xF4
	UD2  Opcode = 0x0B // undefined instruction (guaranteed fault)
)

// opFormat describes how an opcode's operands are laid out in the byte
// stream following the opcode byte.
type opFormat uint8

const (
	fmtNone      opFormat = iota // [op]
	fmtReg                       // [op][reg]
	fmtRegImm64                  // [op][reg][imm64]
	fmtRegImm32                  // [op][reg][imm32]
	fmtRegImm8                   // [op][reg][imm8]
	fmtRegReg                    // [op][dst][src]
	fmtRegMem                    // [op][reg][mem]
	fmtMemReg                    // [op][mem][reg]
	fmtMemImm32                  // [op][mem][imm32]
	fmtMem                       // [op][mem]
	fmtRel32                     // [op][rel32]
	fmtCondRel32                 // [op][cc][rel32]
	fmtImm16                     // [op][imm16]
	fmtString                    // [op][flags]
	fmtBndMem                    // [op][bnd][mem]
)

// opInfo is static metadata about one opcode.
type opInfo struct {
	name   string
	format opFormat
	valid  bool
}

var opTable = [256]opInfo{
	CALL:    {"callq", fmtRel32, true},
	CALLR:   {"callq*r", fmtReg, true},
	CALLM:   {"callq*m", fmtMem, true},
	JMP:     {"jmp", fmtRel32, true},
	JMPR:    {"jmp*r", fmtReg, true},
	JMPM:    {"jmp*m", fmtMem, true},
	JCC:     {"j", fmtCondRel32, true},
	RET:     {"retq", fmtNone, true},
	RETI:    {"retq$", fmtImm16, true},
	MOVri:   {"mov", fmtRegImm64, true},
	MOVrr:   {"mov", fmtRegReg, true},
	MOVrm:   {"mov", fmtRegMem, true},
	MOVmr:   {"mov", fmtMemReg, true},
	MOVmi:   {"movq", fmtMemImm32, true},
	LEA:     {"lea", fmtRegMem, true},
	PUSH:    {"push", fmtReg, true},
	POP:     {"pop", fmtReg, true},
	PUSHFQ:  {"pushfq", fmtNone, true},
	POPFQ:   {"popfq", fmtNone, true},
	ADDri:   {"add", fmtRegImm32, true},
	ADDrr:   {"add", fmtRegReg, true},
	ADDrm:   {"add", fmtRegMem, true},
	SUBri:   {"sub", fmtRegImm32, true},
	SUBrr:   {"sub", fmtRegReg, true},
	SUBrm:   {"sub", fmtRegMem, true},
	ANDri:   {"and", fmtRegImm32, true},
	ANDrr:   {"and", fmtRegReg, true},
	ORri:    {"or", fmtRegImm32, true},
	ORrr:    {"or", fmtRegReg, true},
	XORri:   {"xor", fmtRegImm32, true},
	XORrr:   {"xor", fmtRegReg, true},
	XORrm:   {"xor", fmtRegMem, true},
	XORmr:   {"xor", fmtMemReg, true},
	SHLri:   {"shl", fmtRegImm8, true},
	SHRri:   {"shr", fmtRegImm8, true},
	SARri:   {"sar", fmtRegImm8, true},
	NOTr:    {"not", fmtReg, true},
	NEGr:    {"neg", fmtReg, true},
	IMULrr:  {"imul", fmtRegReg, true},
	IMULri:  {"imul", fmtRegImm32, true},
	CMPri:   {"cmp", fmtRegImm32, true},
	CMPrr:   {"cmp", fmtRegReg, true},
	CMPrm:   {"cmp", fmtRegMem, true},
	CMPmi:   {"cmpq", fmtMemImm32, true},
	TESTrr:  {"test", fmtRegReg, true},
	TESTri:  {"test", fmtRegImm32, true},
	INCr:    {"inc", fmtReg, true},
	DECr:    {"dec", fmtReg, true},
	MOVS:    {"movs", fmtString, true},
	STOS:    {"stos", fmtString, true},
	LODS:    {"lods", fmtString, true},
	CMPS:    {"cmps", fmtString, true},
	SCAS:    {"scas", fmtString, true},
	CLD:     {"cld", fmtNone, true},
	STD:     {"std", fmtNone, true},
	SYSCALL: {"syscall", fmtNone, true},
	SYSRET:  {"sysret", fmtNone, true},
	IRET:    {"iretq", fmtNone, true},
	WRMSR:   {"wrmsr", fmtNone, true},
	RDMSR:   {"rdmsr", fmtNone, true},
	SWAPGS:  {"swapgs", fmtNone, true},
	BNDCU:   {"bndcu", fmtBndMem, true},
	BNDCL:   {"bndcl", fmtBndMem, true},
	BNDMK:   {"bndmk", fmtBndMem, true},
	BNDSTX:  {"bndstx", fmtBndMem, true},
	BNDLDX:  {"bndldx", fmtBndMem, true},
	NOP:     {"nop", fmtNone, true},
	INT3:    {"int3", fmtNone, true},
	HLT:     {"hlt", fmtNone, true},
	UD2:     {"ud2", fmtNone, true},
}

// Valid reports whether op is a defined KX64 opcode.
func (op Opcode) Valid() bool { return opTable[op].valid }

// Name returns the assembler mnemonic for op.
func (op Opcode) Name() string {
	if !op.Valid() {
		return fmt.Sprintf(".byte 0x%02x", uint8(op))
	}
	return opTable[op].name
}

// Format returns the operand layout class of the opcode.
func (op Opcode) Format() opFormat { return opTable[op].format }

// String implements fmt.Stringer.
func (op Opcode) String() string { return op.Name() }
