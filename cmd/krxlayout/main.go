// Command krxlayout regenerates Figure 1: the vanilla and kR^X-KAS kernel
// address-space layouts, using either illustrative section sizes or the
// actual sizes of the built kernel corpus.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/kas"
	"repro/internal/kernel"
)

func main() {
	real := flag.Bool("corpus", false, "use the real kernel corpus section sizes")
	flag.Parse()

	var sizes kas.SectionSizes
	if *real {
		prog, err := kernel.BuildCorpus()
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxlayout:", err)
			os.Exit(1)
		}
		res, err := core.Build(prog, core.Config{XOM: core.XOMSFI})
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxlayout:", err)
			os.Exit(1)
		}
		img := res.Image
		sizes = kas.SectionSizes{
			Text:    uint64(len(img.Text)),
			KrxKeys: uint64(img.NumKeys) * 8,
			Rodata:  uint64(len(img.Rodata)),
			Data:    uint64(len(img.Data)),
			Bss:     img.BssSize,
		}
	}
	fmt.Print(figures.Figure1(sizes))
}
