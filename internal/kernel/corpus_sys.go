package kernel

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// emitFDEntry emits: %r8 = &fd_table[reg], clobbering %r10. Branches to
// failLabel if reg >= numFDs.
func emitFDEntry(b *ir.Builder, reg isa.Reg, failLabel string) {
	b.I(
		isa.CmpRI(reg, numFDs),
		isa.Jcc(isa.CondAE, failLabel),
		isa.MovSym(isa.R8, "fd_table"),
		isa.MovRR(isa.R10, reg),
		isa.ShlRI(isa.R10, 5),
		isa.AddRR(isa.R8, isa.R10),
	)
}

// sys_null(): the null syscall — touches the current task (two reads off
// one base: coalescible) and returns 0.
func fnSysNull() (*ir.Function, error) {
	return ir.NewBuilder("sys_null").
		I(
			isa.MovSym(isa.R8, "task_cur"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.Load(isa.R9, isa.Mem(isa.R8, 8)),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Func()
}

func fnSysGetpid() (*ir.Function, error) {
	return ir.NewBuilder("sys_getpid").
		I(
			isa.MovSym(isa.R8, "task_cur"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 8)),
			isa.Ret(),
		).
		Func()
}

// sys_open(%rdi=user path) -> fd or -1. Zeroes the name buffer, copies the
// path from user space, walks the dentry table, claims a free fd slot.
func fnSysOpen() (*ir.Function, error) {
	b := ir.NewBuilder("sys_open").
		I(
			// Zero name_buf (8 quads).
			isa.MovRR(isa.R9, isa.RDI), // stash user pointer
			isa.MovSym(isa.RDI, "name_buf"),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.MovRI(isa.RCX, 8),
			isa.Stos(8, true),
			// strncpy_from_user(name_buf, upath, 63).
			isa.MovRR(isa.RSI, isa.R9),
			isa.MovSym(isa.RDI, "name_buf"),
			isa.MovRI(isa.RDX, 63),
			isa.Call("strncpy_from_user"),
			// inode = path_lookup(name_buf).
			isa.MovSym(isa.RDI, "name_buf"),
			isa.Call("path_lookup"),
			isa.CmpRI(isa.RAX, -1),
			isa.Jcc(isa.CondE, "fail"),
			isa.MovRR(isa.R9, isa.RAX), // inode index
			isa.XorRR(isa.RCX, isa.RCX),
		).
		Label("findfd").
		I(
			isa.CmpRI(isa.RCX, numFDs),
			isa.Jcc(isa.CondAE, "fail"),
			isa.MovSym(isa.R8, "fd_table"),
			isa.MovRR(isa.R10, isa.RCX),
			isa.ShlRI(isa.R10, 5),
			isa.AddRR(isa.R8, isa.R10),
			isa.Load(isa.RDX, isa.Mem(isa.R8, 0)),
			isa.CmpRI(isa.RDX, 0),
			isa.Jcc(isa.CondE, "claim"),
			isa.Inc(isa.RCX),
			isa.Jmp("findfd"),
		).
		Label("claim").
		I(
			isa.StoreImm(isa.Mem(isa.R8, 0), 1),
			isa.Store(isa.Mem(isa.R8, 8), isa.R9),
			isa.StoreImm(isa.Mem(isa.R8, 16), 0),
			isa.StoreImm(isa.Mem(isa.R8, 24), 1), // ready flag
			// Mark the fd ready in the poll bitmap.
			isa.MovSym(isa.R10, "bit_masks"),
			isa.Load(isa.R9, isa.MemIdx(isa.R10, isa.RCX, 8, 0)),
			isa.MovSym(isa.R10, "poll_bitmap"),
			isa.Load(isa.RDX, isa.Mem(isa.R10, 0)),
			isa.OrRR(isa.RDX, isa.R9),
			isa.Store(isa.Mem(isa.R10, 0), isa.RDX),
			isa.MovRR(isa.RAX, isa.RCX),
			isa.Ret(),
		).
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret())
	return b.Func()
}

func fnSysClose() (*ir.Function, error) {
	b := ir.NewBuilder("sys_close")
	emitFDEntry(b, isa.RDI, "fail")
	return b.
		I(
			isa.Load(isa.RDX, isa.Mem(isa.R8, 0)),
			isa.CmpRI(isa.RDX, 0),
			isa.Jcc(isa.CondE, "fail"),
			isa.StoreImm(isa.Mem(isa.R8, 0), 0),
			isa.StoreImm(isa.Mem(isa.R8, 8), 0),
			// Clear the fd's poll-bitmap bit.
			isa.MovSym(isa.R10, "bit_masks"),
			isa.Load(isa.R9, isa.MemIdx(isa.R10, isa.RDI, 8, 0)),
			isa.NotR(isa.R9),
			isa.MovSym(isa.R10, "poll_bitmap"),
			isa.Load(isa.RDX, isa.Mem(isa.R10, 0)),
			isa.AndRR(isa.RDX, isa.R9),
			isa.Store(isa.Mem(isa.R10, 0), isa.RDX),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// emitInodePtr emits: %rcx = &inode_table[%r9], clobbering %r9.
func emitInodePtr(b *ir.Builder) {
	b.I(
		isa.MovSym(isa.RCX, "inode_table"),
		isa.ImulRI(isa.R9, inodeSize),
		isa.AddRR(isa.RCX, isa.R9),
	)
}

// sys_read(%rdi=fd, %rsi=user buf, %rdx=count) -> count or -1.
func fnSysRead() (*ir.Function, error) {
	b := ir.NewBuilder("sys_read")
	emitFDEntry(b, isa.RDI, "fail")
	b.I(
		// fd entry: three same-base loads (coalesce at O3).
		isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
		isa.CmpRI(isa.R9, 0),
		isa.Jcc(isa.CondE, "fail"),
		isa.Load(isa.R9, isa.Mem(isa.R8, 8)),   // inode
		isa.Load(isa.R10, isa.Mem(isa.R8, 16)), // pos
	)
	emitInodePtr(b)
	b.I(
		isa.Load(isa.R9, isa.Mem(isa.RCX, 40)), // cache offset
		// src = page_cache + offset + pos.
		isa.MovSym(isa.RAX, "page_cache"),
		isa.AddRR(isa.RAX, isa.R9),
		isa.AddRR(isa.RAX, isa.R10),
		// dst = user buf; copy count>>3 quads.
		isa.MovRR(isa.RDI, isa.RSI),
		isa.MovRR(isa.RSI, isa.RAX),
		isa.MovRR(isa.RCX, isa.RDX),
		isa.ShrRI(isa.RCX, 3),
		isa.Movs(8, true),
		// pos += count.
		isa.Load(isa.R9, isa.Mem(isa.R8, 16)),
		isa.AddRR(isa.R9, isa.RDX),
		isa.Store(isa.Mem(isa.R8, 16), isa.R9),
		isa.MovRR(isa.RAX, isa.RDX),
		isa.Ret(),
	)
	return b.
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// sys_write(%rdi=fd, %rsi=user buf, %rdx=count) -> count or -1.
func fnSysWrite() (*ir.Function, error) {
	b := ir.NewBuilder("sys_write")
	emitFDEntry(b, isa.RDI, "fail")
	b.I(
		isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
		isa.CmpRI(isa.R9, 0),
		isa.Jcc(isa.CondE, "fail"),
		isa.Load(isa.R9, isa.Mem(isa.R8, 8)),
		isa.Load(isa.R10, isa.Mem(isa.R8, 16)),
	)
	emitInodePtr(b)
	b.I(
		isa.Load(isa.R9, isa.Mem(isa.RCX, 40)),
		// dst = page_cache + offset + pos; src = user buf (already %rsi).
		isa.MovSym(isa.RDI, "page_cache"),
		isa.AddRR(isa.RDI, isa.R9),
		isa.AddRR(isa.RDI, isa.R10),
		isa.MovRR(isa.RCX, isa.RDX),
		isa.ShrRI(isa.RCX, 3),
		isa.Movs(8, true),
		isa.Load(isa.R9, isa.Mem(isa.R8, 16)),
		isa.AddRR(isa.R9, isa.RDX),
		isa.Store(isa.Mem(isa.R8, 16), isa.R9),
		isa.MovRR(isa.RAX, isa.RDX),
		isa.Ret(),
	)
	return b.
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// sys_select(%rdi=nfds) -> number of ready descriptors. Like the real
// select, the readiness state is an fd_set bitmap: one memory read covers
// 64 descriptors, and the per-fd work is pure register arithmetic — so the
// range-check overhead all but vanishes for large fd counts (the paper's
// select(100 TCP fds) column under O3).
func fnSysSelect() (*ir.Function, error) {
	return ir.NewBuilder("sys_select").
		I(
			isa.MovSym(isa.R8, "poll_bitmap"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.XorRR(isa.RCX, isa.RCX),
		).
		Label("loop").
		I(
			isa.CmpRR(isa.RCX, isa.RDI),
			isa.Jcc(isa.CondAE, "done"),
			isa.MovRR(isa.R10, isa.R9),
			isa.AndRI(isa.R10, 1),
			isa.AddRR(isa.RAX, isa.R10),
			isa.ShrRI(isa.R9, 1),
			isa.Inc(isa.RCX),
			isa.Jmp("loop"),
		).
		Label("done").
		I(isa.Ret()).
		Func()
}

// sys_fstat(%rdi=fd, %rsi=user stat buf) -> 0 or -1.
func fnSysFstat() (*ir.Function, error) {
	b := ir.NewBuilder("sys_fstat")
	emitFDEntry(b, isa.RDI, "fail")
	b.I(
		isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
		isa.CmpRI(isa.R9, 0),
		isa.Jcc(isa.CondE, "fail"),
		isa.Load(isa.R9, isa.Mem(isa.R8, 8)),
	)
	emitInodePtr(b)
	b.I(
		isa.Load(isa.R9, isa.Mem(isa.RCX, 32)), // size
		isa.Store(isa.Mem(isa.RSI, 0), isa.R9),
		isa.Load(isa.R9, isa.Mem(isa.RCX, 40)),
		isa.Store(isa.Mem(isa.RSI, 8), isa.R9),
		isa.Load(isa.R9, isa.Mem(isa.RCX, 48)), // mode
		isa.Store(isa.Mem(isa.RSI, 16), isa.R9),
		isa.Load(isa.R9, isa.Mem(isa.R8, 16)), // pos
		isa.Store(isa.Mem(isa.RSI, 24), isa.R9),
		isa.XorRR(isa.RAX, isa.RAX),
		isa.Ret(),
	)
	return b.
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// sys_mmap(%rdi=npages) -> first pte index or -1. Scans for a free run
// start (reads), then populates page-table entries (writes).
func fnSysMmap() (*ir.Function, error) {
	return ir.NewBuilder("sys_mmap").
		I(
			isa.MovSym(isa.R8, "pgtable_arr"),
			isa.XorRR(isa.RCX, isa.RCX),
		).
		Label("scan").
		I(
			isa.CmpRI(isa.RCX, numPTEs),
			isa.Jcc(isa.CondAE, "fail"),
			isa.Load(isa.R9, isa.MemIdx(isa.R8, isa.RCX, 8, 0)),
			isa.CmpRI(isa.R9, 0),
			isa.Jcc(isa.CondE, "found"),
			isa.Inc(isa.RCX),
			isa.Jmp("scan"),
		).
		Label("found").
		I(isa.XorRR(isa.R10, isa.R10)).
		Label("fill").
		I(
			isa.CmpRR(isa.R10, isa.RDI),
			isa.Jcc(isa.CondAE, "done"),
			isa.MovRR(isa.R9, isa.RCX),
			isa.AddRR(isa.R9, isa.R10),
			isa.StoreImm(isa.MemIdx(isa.R8, isa.R9, 8, 0), 0x87),
			isa.Inc(isa.R10),
			isa.Jmp("fill"),
		).
		Label("done").
		I(isa.MovRR(isa.RAX, isa.RCX), isa.Ret()).
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// sys_munmap(%rdi=first pte, %rsi=npages) -> 0.
func fnSysMunmap() (*ir.Function, error) {
	return ir.NewBuilder("sys_munmap").
		I(
			isa.MovSym(isa.R8, "pgtable_arr"),
			isa.XorRR(isa.R10, isa.R10),
		).
		Label("loop").
		I(
			isa.CmpRR(isa.R10, isa.RSI),
			isa.Jcc(isa.CondAE, "done"),
			isa.MovRR(isa.R9, isa.RDI),
			isa.AddRR(isa.R9, isa.R10),
			isa.Load(isa.RCX, isa.MemIdx(isa.R8, isa.R9, 8, 0)), // validate
			isa.StoreImm(isa.MemIdx(isa.R8, isa.R9, 8, 0), 0),
			isa.Inc(isa.R10),
			isa.Jmp("loop"),
		).
		Label("done").
		I(isa.XorRR(isa.RAX, isa.RAX), isa.Ret()).
		Func()
}

// sys_fork() -> child pid. Copies the task struct with an unrolled
// quad-copy loop (32 same-base reads: a coalescing showcase) and the page
// table with rep movsq.
func fnSysFork() (*ir.Function, error) {
	b := ir.NewBuilder("sys_fork").
		I(
			isa.MovSym(isa.R8, "pid_counter"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.Inc(isa.R9),
			isa.Store(isa.Mem(isa.R8, 0), isa.R9),
			isa.MovRR(isa.R10, isa.R9),
			isa.AndRI(isa.R10, 3),
			isa.ImulRI(isa.R10, taskSize),
			isa.MovSym(isa.RDI, "task_pool"),
			isa.AddRR(isa.RDI, isa.R10),
			isa.MovSym(isa.RSI, "task_cur"),
		)
	for q := int32(0); q < taskSize/8; q++ {
		b.I(
			isa.Load(isa.RCX, isa.Mem(isa.RSI, q*8)),
			isa.Store(isa.Mem(isa.RDI, q*8), isa.RCX),
		)
	}
	return b.I(
		isa.MovRR(isa.RAX, isa.R9), // child pid
		isa.MovSym(isa.RSI, "pgtable_arr"),
		isa.MovSym(isa.RDI, "pgtable_child"),
		isa.MovRI(isa.RCX, numPTEs),
		isa.Movs(8, true),
		isa.Ret(),
	).Func()
}

// sys_execve(%rdi=user path) -> 0 or -1. Resolves the path, "loads" the
// text segment from the page cache, zeroes the bss image, resets the task.
func fnSysExecve() (*ir.Function, error) {
	return ir.NewBuilder("sys_execve").
		I(
			isa.MovRR(isa.R9, isa.RDI),
			isa.MovSym(isa.RDI, "name_buf"),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.MovRI(isa.RCX, 8),
			isa.Stos(8, true),
			isa.MovRR(isa.RSI, isa.R9),
			isa.MovSym(isa.RDI, "name_buf"),
			isa.MovRI(isa.RDX, 63),
			isa.Call("strncpy_from_user"),
			isa.MovSym(isa.RDI, "name_buf"),
			isa.Call("path_lookup"),
			isa.CmpRI(isa.RAX, -1),
			isa.Jcc(isa.CondE, "fail"),
			// Load segments: copy 512 quads of "text" from the cache.
			isa.MovSym(isa.RSI, "page_cache"),
			isa.MovSym(isa.RDI, "exec_image"),
			isa.MovRI(isa.RCX, 512),
			isa.Movs(8, true),
			// Zero the bss image.
			isa.MovSym(isa.RDI, "pgtable_child"),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.MovRI(isa.RCX, numPTEs),
			isa.Stos(8, true),
			// Reset task state.
			isa.MovSym(isa.R8, "task_cur"),
			isa.StoreImm(isa.Mem(isa.R8, 0), 1),
			isa.StoreImm(isa.Mem(isa.R8, 24), 0),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

func fnSysExit() (*ir.Function, error) {
	return ir.NewBuilder("sys_exit").
		I(
			isa.MovSym(isa.R8, "task_cur"),
			isa.StoreImm(isa.Mem(isa.R8, 0), 0), // state = dead
			isa.StoreImm(isa.Mem(isa.R8, 24), 0),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Func()
}

// sys_sigaction(%rdi=sig, %rsi=handler) -> old handler or -1.
func fnSysSigaction() (*ir.Function, error) {
	return ir.NewBuilder("sys_sigaction").
		I(
			isa.CmpRI(isa.RDI, numSigs),
			isa.Jcc(isa.CondAE, "fail"),
			isa.MovSym(isa.R8, "sigactions"),
			isa.MovRR(isa.R10, isa.RDI),
			isa.ShlRI(isa.R10, 4),
			isa.AddRR(isa.R8, isa.R10),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 0)), // old handler
			isa.Store(isa.Mem(isa.R8, 0), isa.RSI),
			isa.StoreImm(isa.Mem(isa.R8, 8), 0),
			isa.Ret(),
		).
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// sys_kill(%rdi=sig) -> 0 or -1: signal delivery — reads the sigaction,
// reads the task context (coalescible), writes a signal frame to the user
// stack.
func fnSysKill() (*ir.Function, error) {
	return ir.NewBuilder("sys_kill").
		I(
			isa.CmpRI(isa.RDI, numSigs),
			isa.Jcc(isa.CondAE, "fail"),
			isa.MovSym(isa.R8, "sigactions"),
			isa.MovRR(isa.R10, isa.RDI),
			isa.ShlRI(isa.R10, 4),
			isa.AddRR(isa.R8, isa.R10),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.CmpRI(isa.R9, 0),
			isa.Jcc(isa.CondE, "out"),
			// Build the signal frame: context from the task struct...
			isa.MovSym(isa.R8, "task_cur"),
			isa.Load(isa.RCX, isa.Mem(isa.R8, 32)),
			isa.Load(isa.RDX, isa.Mem(isa.R8, 40)),
			isa.Load(isa.RSI, isa.Mem(isa.R8, 48)),
			isa.Load(isa.R10, isa.Mem(isa.R8, 56)),
			// ...pushed to a fixed user-stack frame area.
			isa.MovRI(isa.RAX, int64(UserStack+14*4096)),
			isa.Store(isa.Mem(isa.RAX, 0), isa.RCX),
			isa.Store(isa.Mem(isa.RAX, 8), isa.RDX),
			isa.Store(isa.Mem(isa.RAX, 16), isa.RSI),
			isa.Store(isa.Mem(isa.RAX, 24), isa.R10),
			isa.Store(isa.Mem(isa.RAX, 32), isa.R9), // handler address
		).
		Label("out").
		I(isa.XorRR(isa.RAX, isa.RAX), isa.Ret()).
		Label("fail").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// fnRingWrite builds sys_<ch>_write(%rdi=user buf, %rsi=count): checksum
// for INET channels, copy into the ring, advance the head.
func fnRingWrite(ch string, csum, acks bool) (*ir.Function, error) {
	name := "sys_" + ch + "_write"
	b := ir.NewBuilder(name)
	if csum {
		// csum_partial(buf, count>>3); stash the sum in state+16.
		b.I(
			isa.MovRR(isa.R9, isa.RDI),
			isa.MovRR(isa.R10, isa.RSI),
			isa.MovRR(isa.RSI, isa.R10),
			isa.ShrRI(isa.RSI, 3),
			// Save args across the call in callee-untouched user regs is
			// not possible (all scratch); re-derive instead: keep count
			// in %rdx and buf in %rdi around csum via stack.
			isa.Push(isa.RDI),
			isa.Push(isa.R10),
			isa.Call("csum_partial"),
			isa.Pop(isa.R10),
			isa.Pop(isa.RDI),
			isa.MovSym(isa.R9, "state_"+ch),
			isa.Store(isa.Mem(isa.R9, 16), isa.RAX),
			isa.MovRR(isa.RSI, isa.R10),
		)
	}
	if acks {
		b.I(
			isa.MovSym(isa.R9, "state_"+ch),
			isa.Load(isa.RCX, isa.Mem(isa.R9, 24)), // ack state
			isa.Inc(isa.RCX),
			isa.Store(isa.Mem(isa.R9, 24), isa.RCX),
		)
	}
	b.I(
		isa.MovSym(isa.R9, "state_"+ch),
		isa.Load(isa.R10, isa.Mem(isa.R9, 0)), // head
		isa.MovRR(isa.RDX, isa.RSI),           // count
		isa.MovRR(isa.RSI, isa.RDI),           // src = user buf
		isa.MovRR(isa.RDI, isa.R10),
		isa.AndRI(isa.RDI, ringMask),
		isa.MovSym(isa.RCX, "ring_"+ch),
		isa.AddRR(isa.RDI, isa.RCX), // dst = ring + (head & mask)
		isa.MovRR(isa.RCX, isa.RDX),
		isa.ShrRI(isa.RCX, 3),
		isa.Movs(8, true),
		isa.AddRR(isa.R10, isa.RDX),
		isa.Store(isa.Mem(isa.R9, 0), isa.R10), // head += count
		isa.MovRR(isa.RAX, isa.RDX),
		isa.Ret(),
	)
	return b.Func()
}

// fnRingRead builds sys_<ch>_read(%rdi=user buf, %rsi=count): copy from
// the ring to user space, advance the tail.
func fnRingRead(ch string, acks bool) (*ir.Function, error) {
	name := "sys_" + ch + "_read"
	b := ir.NewBuilder(name)
	if acks {
		b.I(
			isa.MovSym(isa.R9, "state_"+ch),
			isa.Load(isa.RCX, isa.Mem(isa.R9, 24)),
			isa.Load(isa.RCX, isa.Mem(isa.R9, 16)),
		)
	}
	b.I(
		isa.MovSym(isa.R9, "state_"+ch),
		isa.Load(isa.R10, isa.Mem(isa.R9, 8)), // tail
		isa.MovRR(isa.RDX, isa.RSI),           // count
		// dst = user buf (%rdi already), src = ring + (tail & mask).
		isa.MovRR(isa.RSI, isa.R10),
		isa.AndRI(isa.RSI, ringMask),
		isa.MovSym(isa.RCX, "ring_"+ch),
		isa.AddRR(isa.RSI, isa.RCX),
		isa.MovRR(isa.RCX, isa.RDX),
		isa.ShrRI(isa.RCX, 3),
		isa.Movs(8, true),
		isa.AddRR(isa.R10, isa.RDX),
		isa.Store(isa.Mem(isa.R9, 8), isa.R10),
		isa.MovRR(isa.RAX, isa.RDX),
		isa.Ret(),
	)
	return b.Func()
}

// sys_ftrace_peek(%rdi=address) -> the quad at address, read through the
// uninstrumented memcpy clone: the legitimate code-read path of §6.
func fnSysFtracePeek() (*ir.Function, error) {
	return ir.NewBuilder("sys_ftrace_peek").
		I(
			isa.MovRR(isa.RSI, isa.RDI),
			isa.MovSym(isa.RDI, "kbuf"),
			isa.MovRI(isa.RDX, 8),
			isa.Call("memcpy_krx"),
			isa.MovSym(isa.R8, "kbuf"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 0)),
			isa.Ret(),
		).
		Func()
}

// sys_leak(%rdi=address) -> the quad at address. The retrofitted
// debugfs-style arbitrary-read vulnerability of §7.3: "allows an attacker
// to set a pointer to an arbitrary kernel address and read 8 bytes by
// dereferencing it". The dereference is a normal instrumented read, so
// under kR^X it can only leak the data region.
func fnSysLeak() (*ir.Function, error) {
	return ir.NewBuilder("sys_leak").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)),
			isa.Ret(),
		).
		Func()
}

// sys_plant(%rdi=index, %rsi=value): the retrofitted pointer-corruption
// vulnerability — an unchecked write into the dev_ops dispatch table
// (modeling a memory-corruption primitive that overwrites a kernel
// function pointer).
func fnSysPlant() (*ir.Function, error) {
	return ir.NewBuilder("sys_plant").
		I(
			isa.MovSym(isa.R8, "dev_ops"),
			isa.Store(isa.MemIdx(isa.R8, isa.RDI, 8, 0), isa.RSI),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Func()
}

// sys_trigger(%rdi=argument passed through to the op): dereferences the
// dev_ops[0] function pointer — the hijackable indirect call.
func fnSysTrigger() (*ir.Function, error) {
	return ir.NewBuilder("sys_trigger").
		I(
			isa.MovSym(isa.R8, "dev_ops"),
			isa.CallMem(isa.Mem(isa.R8, 0)),
			isa.Ret(),
		).
		Func()
}

// sys_stack_smash(%rdi=user buf, %rsi=len): the retrofitted stack buffer
// overflow — copies len bytes into a 64-byte stack buffer without any
// bounds check, so a long payload overwrites the saved return address
// (and whatever return-address protection has placed next to it).
func fnSysStackSmash() (*ir.Function, error) {
	return ir.NewBuilder("sys_stack_smash").
		I(
			isa.SubRI(isa.RSP, 64),
			isa.MovRR(isa.RCX, isa.RSI), // length (bytes)
			isa.MovRR(isa.RSI, isa.RDI), // src = user buf
			isa.MovRR(isa.RDI, isa.RSP), // dst = stack buffer
			isa.Movs(1, true),
			isa.AddRI(isa.RSP, 64),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Func()
}

// sys_getdents(%rdi=user buf, %rsi=max entries) -> entries copied. Walks
// the dentry table copying 32-byte names plus the inode index to user
// space: a read-heavy loop whose four same-base loads per entry coalesce
// under O3.
func fnSysGetdents() (*ir.Function, error) {
	b := ir.NewBuilder("sys_getdents").
		I(isa.XorRR(isa.RAX, isa.RAX)). // entry count
		Label("loop").
		I(
			isa.CmpRR(isa.RAX, isa.RSI),
			isa.Jcc(isa.CondAE, "done"),
			isa.CmpRI(isa.RAX, numDentries),
			isa.Jcc(isa.CondAE, "done"),
			isa.MovSym(isa.R8, "dentry_table"),
			isa.MovRR(isa.R10, isa.RAX),
			isa.ImulRI(isa.R10, dentrySize),
			isa.AddRR(isa.R8, isa.R10),
			// Skip empty slots (first name byte zero).
			isa.LoadSz(isa.R9, isa.Mem(isa.R8, 0), 1),
			isa.CmpRI(isa.R9, 0),
			isa.Jcc(isa.CondE, "done"),
		)
	for q := int32(0); q < 4; q++ {
		b.I(
			isa.Load(isa.R9, isa.Mem(isa.R8, q*8)),
			isa.Store(isa.Mem(isa.RDI, q*8), isa.R9),
		)
	}
	return b.I(
		isa.Load(isa.R9, isa.Mem(isa.R8, 32)), // inode index
		isa.Store(isa.Mem(isa.RDI, 32), isa.R9),
		isa.AddRI(isa.RDI, 40),
		isa.Inc(isa.RAX),
		isa.Jmp("loop"),
	).
		Label("done").
		I(isa.Ret()).
		Func()
}

// sys_uname(%rdi=user buf) -> 0: copies the utsname string (rodata) out.
func fnSysUname() (*ir.Function, error) {
	return ir.NewBuilder("sys_uname").
		I(
			isa.MovSym(isa.RSI, "uname_str"),
			isa.MovRI(isa.RCX, 8), // 64 bytes
			isa.Movs(8, true),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Func()
}

// sys_yield() -> 0: the scheduler touch — reads the task state and flags
// (coalescible) and round-robins the state field.
func fnSysYield() (*ir.Function, error) {
	return ir.NewBuilder("sys_yield").
		I(
			isa.MovSym(isa.R8, "task_cur"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.Load(isa.R10, isa.Mem(isa.R8, 24)),
			isa.Store(isa.Mem(isa.R8, 0), isa.R9),
			isa.XorRR(isa.RAX, isa.RAX),
			isa.Ret(),
		).
		Func()
}

// sys_brk(%rdi=increment) -> new break.
func fnSysBrk() (*ir.Function, error) {
	return ir.NewBuilder("sys_brk").
		I(
			isa.MovSym(isa.R8, "brk_ptr"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 0)),
			isa.AddRR(isa.RAX, isa.RDI),
			isa.Store(isa.Mem(isa.R8, 0), isa.RAX),
			isa.Ret(),
		).
		Func()
}

// sys_trigger_jmp(%rdi=argument): the JOP-style dispatcher — transfers
// control to dev_ops[1] with an indirect jmp (not a call). The handler's
// ret then returns to this syscall's own caller, so the legitimate path is
// a clean tail call; a corrupted slot is a jump-oriented hijack (the JOP
// variant the paper groups with ROP throughout).
func fnSysTriggerJmp() (*ir.Function, error) {
	return ir.NewBuilder("sys_trigger_jmp").
		I(
			isa.MovSym(isa.R8, "dev_ops"),
			isa.Instr{Op: isa.JMPM, M: isa.Mem(isa.R8, 8)},
		).
		Func()
}
