// Command krxattack runs the §7.3 security evaluation: the direct ROP,
// direct JIT-ROP, indirect JIT-ROP, and substitution attack scenarios
// against a matrix of kernel protection configurations, reporting which
// attacks succeed where.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
	"repro/internal/store"
)

func main() {
	var (
		direct   = flag.Bool("direct", false, "direct ROP with precomputed addresses")
		jitrop   = flag.Bool("jitrop", false, "direct JIT-ROP (leak-driven code harvest)")
		indirect = flag.Bool("indirect", false, "indirect JIT-ROP (return-address harvest)")
		subst    = flag.Bool("substitution", false, "the §5.3 substitution attack")
		race     = flag.Bool("race", false, "the §5.3 race-hazard window probe")
		ret2usr  = flag.Bool("ret2usr", false, "legacy ret2usr with and without SMEP")
		survival = flag.Bool("survival", false, "gadget survival analysis across seeds")
		seed     = flag.Int64("seed", 101, "target kernel diversification seed")
		cacheDir = flag.String("cache-dir", "", "persistent artifact store directory: kernel images are reused across invocations instead of re-linked")
		quota    = flag.String("cache-quota", "1G", "artifact store byte quota, LRU-evicted (accepts K/M/G suffixes; 0 = unlimited)")
	)
	flag.Parse()
	if *cacheDir != "" {
		artifacts, err := store.Open(*cacheDir, *quota)
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxattack:", err)
			os.Exit(1)
		}
		defer artifacts.Close()
		kernel.SetBuildCache(core.NewImageCache(artifacts))
	}
	if !*direct && !*jitrop && !*indirect && !*subst && !*race && !*survival && !*ret2usr {
		*direct, *jitrop, *indirect, *subst, *race, *survival, *ret2usr = true, true, true, true, true, true, true
	}

	targets := []core.Config{
		core.Vanilla,
		{Diversify: true, RAProt: diversify.RAEncrypt, Seed: *seed},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, Seed: *seed},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: *seed},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: *seed},
		{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RAEncrypt, Seed: *seed},
	}

	boot := func(cfg core.Config) *kernel.Kernel {
		k, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxattack:", err)
			os.Exit(1)
		}
		return k
	}

	for _, cfg := range targets {
		fmt.Printf("=== target: %s ===\n", cfg.Name())
		if *direct {
			ref := boot(core.Config{XOM: cfg.XOM, SFILevel: cfg.SFILevel,
				Diversify: cfg.Diversify, RAProt: cfg.RAProt, Seed: *seed + 7919})
			fmt.Println(" ", attack.DirectROP(boot(cfg), ref))
		}
		if *jitrop {
			fmt.Println(" ", attack.JITROP(boot(cfg)))
		}
		if *indirect {
			fmt.Println(" ", attack.IndirectJITROP(boot(cfg)))
		}
		if *subst && cfg.RAProt == diversify.RAEncrypt && cfg.Diversify {
			fmt.Println(" ", attack.Substitution(boot(cfg)))
		}
		if *race && cfg.RAProt == diversify.RAEncrypt && cfg.Diversify {
			fmt.Println(" ", attack.RaceHazard(boot(cfg)))
		}
		fmt.Println()
	}

	if *ret2usr {
		fmt.Println("=== ret2usr (the §3 baseline kR^X builds upon) ===")
		legacy := boot(core.Vanilla)
		legacy.CPU.SMEP = false
		fmt.Println("  no SMEP: ", attack.Ret2usr(legacy))
		fmt.Println("  SMEP:    ", attack.Ret2usr(boot(core.Vanilla)))
		fmt.Println()
	}

	if *survival {
		fmt.Println("=== gadget survival across seeds (§7.3 byte-for-byte comparison) ===")
		a := boot(core.Config{Diversify: true, Seed: *seed})
		b := boot(core.Config{Diversify: true, Seed: *seed + 1})
		total, surviving := attack.GadgetSurvival(a, b)
		fmt.Printf("  diversified: %d/%d gadgets at their original location (%.2f%%)\n",
			surviving, total, 100*float64(surviving)/float64(total))
		v1, v2 := boot(core.Vanilla), boot(core.Vanilla)
		total, surviving = attack.GadgetSurvival(v1, v2)
		fmt.Printf("  vanilla:     %d/%d gadgets at their original location (%.2f%%)\n",
			surviving, total, 100*float64(surviving)/float64(total))
	}
}
