package isa

import (
	"errors"
	"testing"
)

// TestMaxInstrLenBound pins the contract the decode cache builds on: no
// defined opcode encodes to more than MaxInstrLen bytes, so a decode
// attempt over a full MaxInstrLen window can never fail with ErrTruncated.
func TestMaxInstrLenBound(t *testing.T) {
	for op := 0; op < 256; op++ {
		o := Opcode(op)
		if !o.Valid() {
			continue
		}
		if n := formatLength(o.Format()); n > MaxInstrLen {
			t.Errorf("%v: encoded length %d exceeds MaxInstrLen %d", o, n, MaxInstrLen)
		}
	}
}

// TestFullWindowNeverTruncated feeds every possible leading byte through
// Decode with exactly MaxInstrLen bytes available: whatever the outcome
// (success or bad encoding), it must never be ErrTruncated.
func TestFullWindowNeverTruncated(t *testing.T) {
	buf := make([]byte, MaxInstrLen)
	for b := 0; b < 256; b++ {
		buf[0] = byte(b)
		if _, _, err := Decode(buf); errors.Is(err, ErrTruncated) {
			t.Errorf("opcode byte %#02x: ErrTruncated over a full %d-byte window", b, MaxInstrLen)
		}
	}
}
