package cpu

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// The basic-block superblock engine.
//
// The decode cache (dcache.go) removed per-instruction decode cost, but the
// Run loop still paid a full dispatch per instruction: a decode-cache lookup
// (TLB slot, map-generation compare, frame-generation compare, index load),
// the fetch privilege checks, the limit check, and the probe check. Classic
// DBT systems (QEMU's translation-block chaining, Embra's fast paths)
// amortize that dispatch over straight-line regions; this engine does the
// same on top of the cached decodes.
//
// A block is a maximal run of consecutively cached instructions on one page,
// ending at (and including) the first terminator: any control transfer
// (jmp/jcc/call/ret/iret/syscall/sysret), a trapping or serializing
// instruction (hlt/int3/ud2), or a string operation (whose REP cost is
// dynamic — the static per-block cost precomputation cannot cover it).
// Formation also stops short of a cached deterministic-#UD slot and at the
// page-tail boundary (offsets the decode cache leaves undecided), so every
// entry in a block is a fully decoded instruction of this frame's bytes.
//
// Two layers keep the dispatch cost amortized:
//
//   - Hotness-gated formation. Forming a block is not free: it decodes
//     forward and copies a dense blkEnt slice. On short, snapshot/restore-
//     heavy runs (a fuzz iteration is a few hundred instructions), eager
//     formation at every executed RIP costs more than it saves. A per-offset
//     heat counter on the page defers formation until an entry point has
//     been dispatched BlockHotThreshold times (SetBlockHotThreshold; default
//     DefaultBlockHotThreshold); cold offsets keep single-stepping through
//     the decode cache. Heat survives page flushes and engine toggles — it
//     measures the workload, not the cached bytes — so hot code re-forms
//     immediately after an invalidation.
//
//   - Block chaining. Each block carries two successor links (taken /
//     fallthrough), resolved lazily the first time the block exits to that
//     successor. While a link validates, runChain executes block-to-block
//     in a single loop without returning to Run's dispatcher — no TLB
//     probe, no map lookup, no blkIdx load on the hot edge. Validation is
//     exactly what blockLookup would do (see chainNext): same frame
//     identity, same content generation, same map generation, and the
//     link's own resolution generation; any mismatch severs the link and
//     falls back to the full lookup, which revalidates (flushing and
//     re-forming as needed) before anything executes.
//
// Validation is hoisted to block granularity: the page's frame is resolved
// and its MapGen/Frame.Gen generations are checked ONCE at block entry (by
// blockLookup through resolvePage, or by chainNext's equivalent link
// checks), and the block then executes in a tight loop with no
// per-instruction lookups. Three things make that sound:
//
//   - Control flow cannot leave the block silently: every instruction that
//     can set RIP anywhere but the next sequential address is a terminator,
//     so entry k+1 is always the instruction at entry k's end.
//
//   - The privilege mode cannot change mid-block: mode switches happen only
//     in terminators (syscall/sysret/iret) or through trap delivery, which
//     exits the block. The fetch privilege checks (user/upper-half, SMEP)
//     done once at block entry therefore hold for every instruction in it —
//     and runChain re-checks them before every chained block entry, because
//     a terminator may have switched the mode.
//
//   - Self-modification cannot outrun invalidation: after every instruction
//     that can store to memory (flagged dcStore at decode time), the frame
//     generation is re-checked; a mismatch means the block just overwrote
//     its own page, so execution aborts back to the dispatch loop, whose
//     next lookup flushes and redecodes. Stores to *other* pages need no
//     mid-block check — their cached blocks revalidate at next entry, and
//     their inbound chain links fail the generation checks and sever.
//
// Accounting stays per-instruction (Instrs++/Cycles+=cost before each
// exec), not per-block: a mid-block trap must observe exactly the counter
// state the single-step path would, or the bit-identical invariant breaks.
// The precomputed block cost and count feed the limit guard and the stats.

// BlockStats reports superblock-engine behaviour for one CPU. All counters
// except Blocks are cumulative: they survive page flushes, SetBlockEngine
// toggles, and SetDecodeCache toggles (the counters live on the CPU, not on
// the cache they describe). Blocks is the current live footprint.
type BlockStats struct {
	Formed     uint64 // blocks ever formed (cumulative, survives flushes)
	Dispatches uint64 // block executions entered via the Run fast path or a chain
	Instrs     uint64 // instructions executed inside dispatched blocks
	Aborts     uint64 // mid-block self-modification resyncs
	Chained    uint64 // block-to-block transitions that bypassed the dispatcher
	Severed    uint64 // successor links invalidated by the generation checks
	Cold       uint64 // block dispatch attempts deferred by the hotness gate
	Compiled   uint64 // blocks lowered to specialized thunks (cumulative)
	Fused      uint64 // block entries whose flag computation the liveness pass elided
	Blocks     uint64 // blocks currently live (on pages that would still validate)
}

// DefaultBlockHotThreshold is the default number of times an entry offset
// must be dispatched before a superblock is formed over it. Small: a hot
// path crosses it within a handful of executions, but one-shot code (boot
// straight-lines, cold fuzz-program bytes) never pays formation.
const DefaultBlockHotThreshold = 4

// Entry flag bits, computed once at decode time (dcache.fill).
const (
	// dcEnd marks a block terminator: control transfer, trapping or
	// serializing instruction, or a dynamic-cost string operation.
	dcEnd uint8 = 1 << iota
	// dcStore marks an instruction that can write memory on the straight-
	// line path (isa.Instr.WritesMemory minus the string ops, which are
	// terminators, plus the implicit stack/bound-table stores it excludes).
	dcStore
	// dcFW marks an instruction that unconditionally overwrites ALL of the
	// arithmetic flags (CF/OF/SF/ZF/PF) and cannot trap — the only kind of
	// overwrite the flag-liveness pass (compileBlock) may count as killing
	// an earlier flag result. Memory-operand ALU forms are excluded: they
	// can fault before writing flags.
	dcFW
	// dcFR marks an instruction that reads arithmetic flags (jcc, pushfq,
	// syscall's %r11 spill, inc/dec's CF preservation, repe cmps/scas), so
	// flags must be architectural when it executes.
	dcFR
	// dcTrap marks an instruction that may raise a trap mid-block: the trap
	// path observes %rflags, so flags must be architectural at its entry.
	dcTrap
)

// entryFlags classifies one decoded instruction for block formation and for
// the block compiler's flag-liveness pass (thunk.go). The classification is
// conservative by construction: an opcode missing from the trap-free list is
// dcTrap, an opcode missing from the writer list never kills liveness, and
// an opcode missing from the reader list is protected by the block-exit and
// dcTrap rules. Only misclassifying an op as dcFW (claiming it always writes
// all arithmetic flags and cannot fault) or omitting a genuine flag reader
// from dcFR could break bit-identity — both lists below name exactly the
// exec.go cases with those properties.
func entryFlags(op isa.Opcode) uint8 {
	var f uint8

	// Trap-free instructions: no memory access, no privilege check, no
	// decode-dependent #UD (the decoder already proved the opcode valid).
	switch op {
	case isa.NOP, isa.SWAPGS, isa.MOVri, isa.MOVrr, isa.LEA,
		isa.ADDri, isa.ADDrr, isa.SUBri, isa.SUBrr,
		isa.ANDri, isa.ANDrr, isa.ORri, isa.ORrr, isa.XORri, isa.XORrr,
		isa.SHLri, isa.SHRri, isa.SARri,
		isa.NOTr, isa.NEGr, isa.IMULrr, isa.IMULri, isa.INCr, isa.DECr,
		isa.CMPri, isa.CMPrr, isa.TESTrr, isa.TESTri,
		isa.JMP, isa.JMPR, isa.JCC, isa.CLD, isa.STD, isa.BNDMK:
		// trap-free
	default:
		f |= dcTrap
	}

	// Unconditional full arithmetic-flag writers (trap-free by the list
	// above — the rm/mi forms are deliberately absent). Shifts qualify
	// because this ISA's shift semantics write CF/OF/SF/ZF/PF even for a
	// masked-to-zero count (unlike hardware x86).
	switch op {
	case isa.ADDri, isa.ADDrr, isa.SUBri, isa.SUBrr,
		isa.ANDri, isa.ANDrr, isa.ORri, isa.ORrr, isa.XORri, isa.XORrr,
		isa.SHLri, isa.SHRri, isa.SARri, isa.NEGr, isa.IMULrr, isa.IMULri,
		isa.CMPri, isa.CMPrr, isa.TESTrr, isa.TESTri:
		f |= dcFW
	}

	// Arithmetic-flag readers. JCC evaluates its condition; PUSHFQ spills
	// %rflags; SYSCALL saves %rflags into %r11 (EnterKernel); INC/DEC
	// preserve CF, which is a read; REPE CMPS/SCAS test ZF between
	// elements (and POPFQ/IRET swap the whole register — they are dcTrap
	// anyway, but the read is real).
	switch op {
	case isa.JCC, isa.PUSHFQ, isa.SYSCALL, isa.INCr, isa.DECr,
		isa.CMPS, isa.SCAS, isa.POPFQ, isa.IRET:
		f |= dcFR
	}

	switch op {
	case isa.JMP, isa.JMPR, isa.JMPM, isa.JCC,
		isa.CALL, isa.CALLR, isa.CALLM,
		isa.RET, isa.RETI, isa.IRET,
		isa.SYSCALL, isa.SYSRET,
		isa.HLT, isa.INT3, isa.UD2,
		isa.MOVS, isa.STOS, isa.LODS, isa.CMPS, isa.SCAS:
		f |= dcEnd
	case isa.MOVmr, isa.MOVmi, isa.XORmr, isa.PUSH, isa.PUSHFQ, isa.BNDSTX:
		f |= dcStore
	}
	return f
}

// blkEnt is one instruction of a formed block: a dense copy of the decode
// cache's entry, laid out contiguously so the dispatch loop walks a single
// cache-friendly array instead of chasing indices into dcPage.entries.
// Copies are safe because any event that could stale the decoded form
// (frame content change, remap) flushes the page's blocks wholesale.
type blkEnt struct {
	in    isa.Instr
	cost  uint64
	ilen  uint8
	flags uint8
}

// blkLink is one cached successor edge of a block, filled in lazily the
// first time the block exits toward that successor. Following it must be
// exactly as safe as a fresh blockLookup, which chainNext guarantees by
// re-deriving every generation blockLookup's resolvePage would check:
//
//   - frame must still be the page's resolved frame (identity, not just
//     generation — two frames' generation counters can coincide),
//   - fgen must equal both the page's decode generation (p.fgen) and the
//     frame's live generation: the page was neither flushed+re-formed nor
//     written since the link was resolved,
//   - the address space's MapGen must equal the page's mgen: no remap,
//     protect, shadow, or rollback has restructured the translation since
//     the page was last validated.
//
// A link can never dangle into wrong code: links live inside blocks, so
// every event that drops blocks (flush, SetBlockEngine(false)) destroys the
// links with them, and every event that re-forms a page's blocks bumps the
// generations the link pins.
type blkLink struct {
	p     *dcPage
	frame *mem.Frame
	bi    int32
	rip   uint64
	fgen  uint64
}

// dcBlock is one superblock: consecutive instructions of its page,
// terminator (if any) last, plus its lazily resolved successor links.
// When the block compiler is enabled, comp holds one specialized thunk per
// entry (same indices as ents), lowered lazily once the block has proved
// steady-state reuse (blockCompileHot dispatches); ents stays the decoded
// source of truth (nil-fn entries are interpreted from it, and so is the
// whole block while compilation is off or pending). Both slices are
// immutable once set, so COW forks share them; the dcBlock VALUE — links,
// execs, the comp slice header — is cloned per fork (fork.go), so the
// lazy lowering and the per-CPU dispatch count never race across forks.
type dcBlock struct {
	ents  []blkEnt
	comp  []cthunk // compiled thunks; nil while uncompiled (off, or still cold)
	count uint64   // len(ents): the Run fast path's limit guard
	cost  uint64   // cumulative static cycle cost of the block
	blen  uint64   // byte length: entry VA + blen = fallthrough VA
	execs uint32   // dispatches by this CPU, for the lazy-compile gate
	taken blkLink
	fall  blkLink
}

// blockCompileHot is how many times a formed block must dispatch before it
// is lowered to compiled thunks. Compilation allocates a closure per
// specialized entry — cheap against any reuse, pure waste on one-shot code.
// The fuzz workloads are exactly that worst case: a fresh program every
// iteration lands on page offsets the heat counters already proved hot (heat
// survives flushes by design), so its blocks FORM on first dispatch and then
// die at the next iteration's flush. At 2, such single-use blocks stay
// interpreted while anything with real reuse — kernel handlers, benchmark
// loops — is lowered on its second dispatch.
const blockCompileHot = 2

// formBlock builds (and registers) the block starting at page offset off,
// decoding forward as needed. It returns the blkIdx value for off: >0 for
// blocks[i-1], -1 when no block can start here (a cached #UD or an
// undecidable page-tail offset — the single-step path owns those).
// Compilation does NOT happen here: it is deferred to runBlock's
// lazy-compile gate, so one-shot blocks never pay it.
func (p *dcPage) formBlock(off int, c *CPU) int32 {
	dc := c.dc
	start := off
	var ents []blkEnt
	var cost, blen uint64
	for off < mem.PageSize {
		i := p.idx[off]
		if i == 0 {
			dc.stats.Misses++
			p.fill(off, dc.stats)
			i = p.idx[off]
		}
		if i <= 0 {
			// #UD slot or page-tail straddler: the block ends before it;
			// the dispatch loop falls back to Step for the offset itself.
			break
		}
		e := &p.entries[i-1]
		ents = append(ents, blkEnt{in: e.in, cost: e.cost, ilen: e.ilen, flags: e.flags})
		cost += e.cost
		blen += uint64(e.ilen)
		if e.flags&dcEnd != 0 {
			break
		}
		off += int(e.ilen)
	}
	if len(ents) == 0 {
		p.blkIdx[start] = -1
		return -1
	}
	b := dcBlock{ents: ents, count: uint64(len(ents)), cost: cost, blen: blen}
	p.blocks = append(p.blocks, b)
	bi := int32(len(p.blocks))
	p.blkIdx[start] = bi
	c.bstats.Formed++
	return bi
}

// blockLookup resolves rip to a formed superblock, validating the page's
// generations exactly as the per-instruction lookup does, and applying the
// hotness gate: an offset with no block yet must accumulate BlockHotThreshold
// dispatch attempts before formation happens; until then the caller single-
// steps (through the decode cache — the bytes are still cached, only the
// block-granular dispatch is deferred). It returns (nil, nil) when no block
// is available at rip — cold, not executable, a cached #UD, or a page-tail
// offset — and the caller must fall back to single-step.
func (c *CPU) blockLookup(rip uint64) (*dcPage, *dcBlock) {
	p := c.dc.resolvePage(c.AS, rip)
	if p == nil {
		return nil, nil
	}
	off := int(rip & uint64(mem.PageMask))
	bi := p.blkIdx[off]
	if bi == 0 {
		if c.coldGate(p, off, rip) {
			return nil, nil
		}
		bi = p.formBlock(off, c)
	}
	if bi < 0 {
		return nil, nil
	}
	return p, &p.blocks[bi-1]
}

// blockStep is Run's fast-path dispatch when the engine is armed: one page
// resolution decides between entering the chain executor and single-stepping
// the instruction at RIP from the already-resolved page. The single lookup
// matters — the hotness gate makes cold single-stepping the common case on
// short runs, and routing it through Step would pay the page resolution and
// the fetch privilege checks (already done by Run's guard) a second time per
// instruction, which is how the gate could cost more than it saves. The
// caller guarantees probe-free execution and the block-entry privilege
// preconditions.
func (c *CPU) blockStep(limit, done, startInstrs uint64) (StopReason, *Trap) {
	p := c.dc.resolvePage(c.AS, c.RIP)
	if p == nil {
		// Not executable (or unmapped): the slow fetch raises the
		// authoritative fault.
		return c.stepSlow()
	}
	off := int(c.RIP & uint64(mem.PageMask))
	bi := p.blkIdx[off]
	if bi == 0 {
		if c.coldGate(p, off, c.RIP) {
			return c.stepCached(p, off)
		}
		bi = p.formBlock(off, c)
	}
	if bi < 0 {
		return c.stepCached(p, off)
	}
	b := &p.blocks[bi-1]
	if limit != 0 && limit-done < b.count {
		return c.stepCached(p, off)
	}
	return c.runChain(p, b, limit, startInstrs)
}

// stepCached executes one instruction from a resolved, validated cache page
// — Step's decode-cache hit path minus the redundant page resolution and
// privilege checks the blockStep caller already performed. Only reached
// probe-free (Run's fast-path guard), so no exec notification is needed.
func (c *CPU) stepCached(p *dcPage, off int) (StopReason, *Trap) {
	dc := c.dc
	i := p.idx[off]
	if i != 0 {
		dc.stats.Hits++
	} else {
		dc.stats.Misses++
		p.fill(off, dc.stats)
		i = p.idx[off]
	}
	switch {
	case i > 0:
		e := &p.entries[i-1]
		c.Instrs++
		c.Cycles += e.cost
		return c.exec(&e.in, c.RIP+uint64(e.ilen))
	case i < 0:
		// Cached deterministic decode failure: same #UD the slow path
		// would raise, with no Instrs/Cycles side effects.
		return StepContinue, &Trap{Kind: TrapUndefined, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
	}
	// Page-tail straddler the cache cannot own: fetch across the boundary.
	return c.stepSlow()
}

// runBlock executes one superblock. When the block was compiled it walks
// the thunk array (runBlockCompiled); otherwise it interprets the entry
// array through the shared exec() switch. Either way every instruction is
// charged individually, so a trap anywhere in the block observes exactly
// the Instrs/Cycles/register state the single-step path would have
// produced. complete reports that every entry executed with no trap, stop,
// or self-modification abort — the only state from which chaining into a
// successor is allowed.
func (c *CPU) runBlock(p *dcPage, b *dcBlock) (stop StopReason, trap *Trap, complete bool) {
	if b.comp == nil && c.compile {
		// Lazy lowering: compile only blocks that prove steady-state reuse.
		// Every dispatcher enters a block at its entry, so c.RIP here is the
		// entry VA the compiler constant-folds successor addresses against.
		if b.execs++; b.execs >= blockCompileHot {
			var fused uint64
			b.comp, fused = compileBlock(b.ents, c.RIP)
			c.bstats.Compiled++
			c.bstats.Fused += fused
		}
	}
	if b.comp != nil {
		return c.runBlockCompiled(p, b)
	}
	dc := c.dc
	fgen := p.fgen
	frame := p.frame
	last := len(b.ents) - 1
	var done uint64
	for i := range b.ents {
		e := &b.ents[i]
		c.Instrs++
		c.Cycles += e.cost
		done++
		stop, trap = c.exec(&e.in, c.RIP+uint64(e.ilen))
		if trap != nil || stop != StepContinue {
			break
		}
		if i == last {
			// The block ran to completion; a store by this final entry needs
			// no generation re-check — there are no stale entries left to
			// execute, and both the dispatcher's next lookup and any chain
			// link revalidate before anything else runs.
			complete = true
			break
		}
		if e.flags&dcStore != 0 && (frame.Gen() != fgen || c.AS.MapGen() != p.mgen) {
			// The store landed on this very frame (directly or through an
			// alias) — or broke copy-on-write on a frozen executable page,
			// which repoints the mapping at a fresh frame under a mapGen
			// bump without touching the old frame's gen. Either way the
			// rest of the block is stale. Resync through the dispatch loop —
			// its next lookup re-resolves, flushes, and redecodes.
			c.bstats.Aborts++
			break
		}
	}
	// Batched bookkeeping: each executed instruction is a decode-cache hit
	// and a block-engine instruction. Nothing inside exec reads these, so
	// deferring them off the hot loop cannot be observed mid-block.
	dc.stats.Hits += done
	c.bstats.Instrs += done
	c.bstats.Dispatches++
	return stop, trap, complete
}

// runBlockCompiled is runBlock over the compiled thunk array: a direct call
// per instruction, no exec-switch dispatch, no operand re-resolution, and
// no per-instruction accounting — the whole (possibly partial) run is
// charged in one shot from the compiler's cumulative cycle sums. The
// control skeleton — trap/stop break, last-entry completion, post-store
// generation re-check — is identical to the interpreted loop, so both
// produce the same architectural trace by construction and differ only in
// host wall-clock.
func (c *CPU) runBlockCompiled(p *dcPage, b *dcBlock) (stop StopReason, trap *Trap, complete bool) {
	fgen := p.fgen
	frame := p.frame
	last := len(b.comp) - 1
	i := 0
	for {
		ct := &b.comp[i]
		if ct.fn != nil {
			stop, trap = ct.fn(c)
		} else {
			// Entry with no specialized form: interpret it exactly as the
			// interpreted loop would (base cost is covered by the batched
			// accounting below; variable extras, e.g. string-op units, are
			// added by exec itself). c.RIP is this instruction's VA — thunks
			// (and exec) advance RIP only on success.
			e := &b.ents[i]
			stop, trap = c.exec(&e.in, c.RIP+uint64(e.ilen))
		}
		if trap != nil || stop != StepContinue {
			break
		}
		if i == last {
			complete = true
			break
		}
		if ct.flags&dcStore != 0 && (frame.Gen() != fgen || c.AS.MapGen() != p.mgen) {
			// Self-modification resync — see the interpreted loop. The
			// liveness pass treated every dcStore entry as a possible block
			// exit, so flags are architectural here even when later entries
			// promised to overwrite them.
			c.bstats.Aborts++
			break
		}
		i++
	}
	// Batched accounting: every entry that began executing — including one
	// that trapped — is charged, exactly as the interpreted loop's
	// per-instruction preamble does. The cumulative fields (not i) supply
	// the totals because a tail-fused entry retires two instructions.
	// Nothing reads Instrs/Cycles mid-block (limit checks and chain
	// budgeting run between dispatches), so the deferral is unobservable.
	done := uint64(b.comp[i].ni)
	c.Instrs += done
	c.Cycles += b.comp[i].cyc
	c.dc.stats.Hits += done
	c.bstats.Instrs += done
	c.bstats.Dispatches++
	return stop, trap, complete
}

// chainNext resolves the successor of a just-completed block (entered at
// entry) to the next block to execute, or nil when the chain must break and
// control return to Run's dispatcher. The terminator's outcome picks the
// slot: c.RIP equal to the block's fallthrough address selects the fall
// link (jcc not taken, or a block cut at a formation boundary); anything
// else selects the taken link (jumps, calls, returns, mode switches). A
// cached link is followed only if every generation it pinned still holds
// (see blkLink); otherwise it is severed and re-resolved through the full
// hotness-gated blockLookup — so a stale link can never execute stale
// bytes, and a cold or invalidated successor falls back to single-step
// exactly as if the chain had never existed.
func (c *CPU) chainNext(b *dcBlock, entry uint64) (*dcPage, *dcBlock) {
	l := &b.taken
	if c.RIP == entry+b.blen {
		l = &b.fall
	}
	if l.p != nil && l.rip == c.RIP {
		p := l.p
		if p.frame == l.frame && l.frame != nil &&
			p.fgen == l.fgen && l.frame.Gen() == l.fgen &&
			p.mgen == c.AS.MapGen() &&
			l.bi > 0 && int(l.bi) <= len(p.blocks) {
			c.bstats.Chained++
			return p, &p.blocks[l.bi-1]
		}
		*l = blkLink{}
		c.bstats.Severed++
	}
	np, nb := c.blockLookup(c.RIP)
	if nb == nil {
		return nil, nil
	}
	*l = blkLink{p: np, frame: np.frame, bi: np.blkIdx[int(c.RIP&uint64(mem.PageMask))], rip: c.RIP, fgen: np.fgen}
	c.bstats.Chained++
	return np, nb
}

// runChain executes a chain of superblocks starting at b, following
// successor links until a block stops, traps, aborts, fails a fetch
// privilege precondition, exits to a cold or unformable successor, or
// would overrun the remaining instruction budget. Every condition Run's
// dispatcher would check between two blocks is re-checked here between two
// chained blocks — the chain is transparent: it only skips the dispatcher's
// redundant lookups, never its semantics.
func (c *CPU) runChain(p *dcPage, b *dcBlock, limit, startInstrs uint64) (StopReason, *Trap) {
	for {
		entry := c.RIP
		stop, trap, complete := c.runBlock(p, b)
		if !complete || trap != nil || stop != StepContinue || c.Pending != nil {
			return stop, trap
		}
		// A terminator may have switched the mode (syscall/sysret/iret):
		// re-establish the fetch privilege preconditions before chaining.
		if c.Mode == User && c.RIP >= UpperHalf {
			return stop, trap
		}
		if c.SMEP && c.Mode == Kernel && c.RIP < UpperHalf {
			return stop, trap
		}
		np, nb := c.chainNext(b, entry)
		if nb == nil {
			return stop, trap
		}
		if limit > 0 && limit-(c.Instrs-startInstrs) < nb.count {
			return stop, trap
		}
		p, b = np, nb
	}
}

// SetBlockEngine enables or disables the superblock engine (on by default).
// Blocks are a pure dispatch optimization layered on the decode cache:
// disabling it reverts Run to per-instruction Step dispatch, with
// bit-identical Instrs/Cycles/traps/probe streams either way. It has no
// effect while the decode cache is off.
func (c *CPU) SetBlockEngine(on bool) {
	c.blocks = on
	if !on && c.dc != nil {
		// Drop formed blocks so the live Blocks stat reads zero; the decoded
		// entries stay (they belong to the decode cache), and so do the heat
		// counters (hotness measures the workload, not the cached state).
		// Every successor link dies here with the block that holds it — a
		// re-enabled engine re-forms blocks with empty links, so no chain
		// can survive a disable/enable cycle and index into the rebuilt
		// block lists.
		for _, p := range c.dc.pages {
			p.blocks = nil
			p.blkIdx = [mem.PageSize]int32{}
		}
	}
}

// BlockEngineEnabled reports whether the superblock engine is active (it
// also requires the decode cache to be enabled to take effect).
func (c *CPU) BlockEngineEnabled() bool { return c.blocks && c.dc != nil }

// SetBlockCompile enables or disables the block compiler (on by default):
// with it on, superblocks that reach blockCompileHot dispatches are lowered
// to specialized per-opcode thunks with flag-dead arithmetic fusion
// (thunk.go); with it off, blocks dispatch through the exec interpreter
// switch exactly as in the pre-compiler engine. Toggling drops already-formed blocks so the whole engine runs in
// one mode (heat counters survive — hot code re-forms immediately); the
// cumulative Compiled/Fused counters live on the CPU and survive. Execution
// semantics are bit-identical either way — only host wall-clock changes. It
// has no effect while the block engine or decode cache is off.
func (c *CPU) SetBlockCompile(on bool) {
	if c.compile == on {
		return
	}
	c.compile = on
	if c.dc != nil {
		for _, p := range c.dc.pages {
			p.blocks = nil
			p.blkIdx = [mem.PageSize]int32{}
		}
	}
}

// BlockCompileEnabled reports whether newly formed superblocks are compiled
// to specialized thunks (it takes effect only while the block engine and
// decode cache are enabled).
func (c *CPU) BlockCompileEnabled() bool { return c.compile }

// SetBlockHotThreshold sets the number of times a block entry offset must
// be dispatched before a superblock is formed over it. 1 forms eagerly on
// first dispatch (the pre-gate behaviour); larger values defer formation
// cost on cold code at the price of single-stepping the first n-1 passes.
// 0 restores DefaultBlockHotThreshold; values above 255 are clamped (the
// per-offset counters are bytes).
func (c *CPU) SetBlockHotThreshold(n int) {
	switch {
	case n <= 0:
		n = DefaultBlockHotThreshold
	case n > 255:
		n = 255
	}
	c.blockHot = uint32(n)
}

// BlockHotThreshold reports the current hotness-gate threshold.
func (c *CPU) BlockHotThreshold() int { return int(c.blockHot) }

// coldGate applies the hotness gate to an unformed block entry offset:
// true means the dispatch stays cold (single-step) and the offset's heat
// counter ramps. Entry RIPs named by a seeded heat profile bypass the ramp
// entirely — a prior campaign already proved them hot, so formation
// happens on first dispatch, exactly as if the counters had been warmed.
// Bit-identity is unaffected: formation timing is host-side only (the
// invariant the hot=1 determinism gates prove).
func (c *CPU) coldGate(p *dcPage, off int, rip uint64) bool {
	if h := uint32(p.heat[off]); h+1 < c.blockHot {
		if c.seedHot != nil {
			if _, hot := c.seedHot[rip]; hot {
				return false
			}
		}
		p.heat[off]++
		c.bstats.Cold++
		return true
	}
	return false
}

// SeedHotProfile installs a heat profile — block entry RIPs a prior
// campaign formed superblocks at (HotProfile) — exempting them from the
// hotness ramp so warm-started runs skip the cold single-step passes.
// nil clears the profile.
func (c *CPU) SeedHotProfile(rips []uint64) {
	if len(rips) == 0 {
		c.seedHot = nil
		return
	}
	c.seedHot = make(map[uint64]struct{}, len(rips))
	for _, rip := range rips {
		c.seedHot[rip] = struct{}{}
	}
}

// HotProfile returns the entry RIPs of every currently formed superblock,
// sorted — the artifact a campaign persists (store.KindHeat) for the next
// run to SeedHotProfile with.
func (c *CPU) HotProfile() []uint64 {
	if c.dc == nil {
		return nil
	}
	var rips []uint64
	for base, p := range c.dc.pages {
		for off := 0; off < mem.PageSize; off++ {
			if p.blkIdx[off] > 0 {
				rips = append(rips, base+uint64(off))
			}
		}
	}
	sort.Slice(rips, func(i, j int) bool { return rips[i] < rips[j] })
	return rips
}

// BlockStats returns a snapshot of the superblock-engine counters. The
// cumulative counters survive flushes and SetBlockEngine/SetDecodeCache
// toggles; Blocks reflects the current live footprint and only counts
// blocks whose page would still pass content validation — a page whose
// frame was rewritten holds its stale blocks only until the next lookup
// flushes them, and they are already dead weight, not live cache.
func (c *CPU) BlockStats() BlockStats {
	s := c.bstats
	if c.dc == nil {
		return s
	}
	for _, p := range c.dc.pages {
		if p.frame == nil || p.frame.Gen() != p.fgen {
			continue
		}
		s.Blocks += uint64(len(p.blocks))
	}
	return s
}
