package link

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/mem"
	"strings"
)

// The on-disk image format ("vmlinux.krx"): a compact little-endian
// container for a linked kernel image — enough to reinstall it into an
// address space, inspect its symbols, or hand it to an offline attacker
// (the direct-ROP workflow starts from the adversary's own copy of the
// distribution image).
//
//	magic "KRXIMG01"
//	u8    layout kind (0 vanilla, 1 krx)
//	u64   guard size
//	u64   bss size
//	u32   region count { str name, u64 start, u64 size, u8 perm, u8 code }
//	u32   symbol count { str name, u64 addr }
//	u32   func count   { str name, u64 addr, u64 size }
//	u32   key count    { str name, u64 addr }
//	blob  text, rodata, data
//
// Strings are u32-length-prefixed; blobs are u64-length-prefixed.

var imageMagic = [8]byte{'K', 'R', 'X', 'I', 'M', 'G', '0', '1'}

type imgWriter struct {
	w   *bufio.Writer
	err error
}

func (w *imgWriter) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}
func (w *imgWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if w.err == nil {
		_, w.err = w.w.Write(b[:])
	}
}
func (w *imgWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if w.err == nil {
		_, w.err = w.w.Write(b[:])
	}
}
func (w *imgWriter) str(s string) {
	w.u32(uint32(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}
func (w *imgWriter) blob(b []byte) {
	w.u64(uint64(len(b)))
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

// WriteImage serializes the image.
func (img *Image) WriteImage(out io.Writer) error {
	w := &imgWriter{w: bufio.NewWriter(out)}
	if _, err := w.w.Write(imageMagic[:]); err != nil {
		return err
	}
	w.u8(uint8(img.Layout.Kind))
	w.u64(img.Layout.GuardSize)
	w.u64(img.BssSize)

	w.u32(uint32(len(img.Layout.Regions)))
	for _, r := range img.Layout.Regions {
		w.str(r.Name)
		w.u64(r.Start)
		w.u64(r.Size)
		w.u8(uint8(r.Perm))
		if r.Code {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}

	// Deterministic symbol order.
	names := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	w.u32(uint32(len(names)))
	for _, n := range names {
		w.str(n)
		w.u64(img.Symbols[n])
	}

	w.u32(uint32(len(img.Funcs)))
	for _, f := range img.Funcs {
		w.str(f.Name)
		w.u64(f.Addr)
		w.u64(f.Size)
	}

	keys := make([]string, 0, len(img.KeyAddrs))
	for n := range img.KeyAddrs {
		keys = append(keys, n)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, n := range keys {
		w.str(n)
		w.u64(img.KeyAddrs[n])
	}

	w.blob(img.Text)
	w.blob(img.Rodata)
	w.blob(img.Data)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type imgReader struct {
	r   *bufio.Reader
	err error
}

func (r *imgReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}
func (r *imgReader) u32() uint32 {
	var b [4]byte
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b[:])
	}
	return binary.LittleEndian.Uint32(b[:])
}
func (r *imgReader) u64() uint64 {
	var b [8]byte
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b[:])
	}
	return binary.LittleEndian.Uint64(b[:])
}

// maxImageStr and maxImageBlob bound allocations when reading untrusted
// image files.
const (
	maxImageStr  = 1 << 16
	maxImageBlob = 1 << 30
)

func (r *imgReader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxImageStr {
		r.err = fmt.Errorf("link: image string too long (%d)", n)
		return ""
	}
	b := make([]byte, n)
	_, r.err = io.ReadFull(r.r, b)
	return string(b)
}

func (r *imgReader) blob() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > maxImageBlob {
		r.err = fmt.Errorf("link: image blob too long (%d)", n)
		return nil
	}
	// Read in bounded chunks rather than allocating the claimed size up
	// front: a hostile header lying about the length costs at most one
	// chunk before the stream runs dry.
	const chunk = 1 << 20
	b := make([]byte, 0, min(n, chunk))
	for uint64(len(b)) < n {
		step := n - uint64(len(b))
		if step > chunk {
			step = chunk
		}
		old := len(b)
		b = append(b, make([]byte, step)...)
		if _, err := io.ReadFull(r.r, b[old:]); err != nil {
			r.err = err
			return nil
		}
	}
	return b
}

// ReadImage deserializes an image written by WriteImage.
func ReadImage(in io.Reader) (*Image, error) {
	r := &imgReader{r: bufio.NewReader(in)}
	var magic [8]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return nil, err
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("link: not a kR^X image (magic % x)", magic)
	}
	img := &Image{
		Layout:   &kas.Layout{Symbols: make(map[string]uint64)},
		Symbols:  make(map[string]uint64),
		KeyAddrs: make(map[string]uint64),
	}
	img.Layout.Kind = kas.Kind(r.u8())
	img.Layout.GuardSize = r.u64()
	img.BssSize = r.u64()

	nregions := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	for i := uint32(0); i < nregions && r.err == nil; i++ {
		reg := kas.Region{Name: r.str(), Start: r.u64(), Size: r.u64()}
		reg.Perm = mem.Perm(r.u8())
		reg.Code = r.u8() != 0
		img.Layout.Regions = append(img.Layout.Regions, reg)
	}
	nsyms := r.u32()
	for i := uint32(0); i < nsyms && r.err == nil; i++ {
		n := r.str()
		img.Symbols[n] = r.u64()
	}
	nfuncs := r.u32()
	for i := uint32(0); i < nfuncs && r.err == nil; i++ {
		img.Funcs = append(img.Funcs, FuncSym{Name: r.str(), Addr: r.u64(), Size: r.u64()})
	}
	nkeys := r.u32()
	for i := uint32(0); i < nkeys && r.err == nil; i++ {
		n := r.str()
		img.KeyAddrs[n] = r.u64()
	}
	img.NumKeys = len(img.KeyAddrs)
	img.Text = r.blob()
	img.Rodata = r.blob()
	img.Data = r.blob()
	if r.err != nil {
		return nil, r.err
	}
	// Rebuild the layout's derived symbol map from the full symbol table
	// (the layout symbols are a subset).
	for _, name := range []string{"_text", "_etext", "_sdata", "_krx_edata", "_guard", "_krxkeys",
		"__start_modules_text", "__end_modules_text", "__start_modules_data", "__end_modules_data", "_fixmap"} {
		if v, ok := img.Symbols[name]; ok {
			img.Layout.Symbols[name] = v
		}
	}
	return img, nil
}

// Compressed image support: the on-disk artifact kernels actually ship is
// a compressed vmlinuz that a boot stub decompresses into place; the
// "KRXZ" container wraps the KRXIMG format in gzip.

var compressedMagic = [4]byte{'K', 'R', 'X', 'Z'}

// WriteCompressedImage writes the gzip-wrapped (vmlinuz-style) form.
func (img *Image) WriteCompressedImage(out io.Writer) error {
	if _, err := out.Write(compressedMagic[:]); err != nil {
		return err
	}
	zw := gzip.NewWriter(out)
	if err := img.WriteImage(zw); err != nil {
		return err
	}
	return zw.Close()
}

// ReadCompressedImage reads either container: KRXZ (decompressing first,
// the boot stub's job) or a plain KRXIMG file.
func ReadCompressedImage(in io.Reader) (*Image, error) {
	br := bufio.NewReader(in)
	head, err := br.Peek(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(head) != compressedMagic {
		return ReadImage(br)
	}
	if _, err := br.Discard(4); err != nil {
		return nil, err
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return ReadImage(zr)
}

// DisassembleFunc renders a function from the image with symbolized
// control-transfer targets (the objdump view of a placed routine).
func (img *Image) DisassembleFunc(name string) (string, error) {
	var fs *FuncSym
	for i := range img.Funcs {
		if img.Funcs[i].Name == name {
			fs = &img.Funcs[i]
			break
		}
	}
	if fs == nil {
		return "", fmt.Errorf("link: no function %q in image", name)
	}
	textStart := img.Symbols["_text"]
	code := img.Text[fs.Addr-textStart : fs.Addr-textStart+fs.Size]

	// Reverse symbol lookup for branch targets.
	symAt := make(map[uint64]string, len(img.Funcs))
	for _, f := range img.Funcs {
		symAt[f.Addr] = f.Name
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%016x <%s>:\n", fs.Addr, name)
	for _, line := range isa.Disassemble(code, fs.Addr) {
		if line.Err != nil {
			fmt.Fprintf(&sb, "  %016x:  .byte 0x%02x\n", line.Addr, line.Bytes[0])
			continue
		}
		text := line.Instr.String()
		switch line.Instr.Op {
		case isa.JMP, isa.JCC, isa.CALL:
			target := line.Addr + uint64(len(line.Bytes)) + uint64(int64(line.Instr.Imm))
			label := fmt.Sprintf("%#x", target)
			if s, ok := symAt[target]; ok {
				label = fmt.Sprintf("%#x <%s>", target, s)
			} else if target >= fs.Addr && target < fs.Addr+fs.Size {
				label = fmt.Sprintf("%#x <%s+%#x>", target, name, target-fs.Addr)
			}
			mn := "jmp"
			if line.Instr.Op == isa.CALL {
				mn = "callq"
			} else if line.Instr.Op == isa.JCC {
				mn = "j" + line.Instr.CC.String()
			}
			text = mn + " " + label
		}
		fmt.Fprintf(&sb, "  %016x:  %s\n", line.Addr, text)
	}
	return sb.String(), nil
}
