package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

// smashWithKnownAddresses fires a chain built from host-known (omniscient)
// addresses — isolating the return-address protection from the address-
// discovery problem. raOffset picks which stack slot the chain starts at.
func smashWithKnownAddresses(t *testing.T, k *kernel.Kernel, raOffset int) bool {
	t.Helper()
	a := &Attacker{K: k}
	// Reset cred.
	a.Hijack(k.Sym("do_set_uid"), 1000)
	chain := []uint64{k.Sym("do_set_uid"), cpu.StopMagic}
	// do_set_uid reads its uid from %rdi, which at smash time holds the
	// stack-buffer address — nonzero — so success means "control reached
	// do_set_uid": uid changed away from 1000.
	a.SmashChain(chain, raOffset)
	return a.UID() != 1000
}

func TestSmashSucceedsWithoutRAProtection(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, Seed: 701})
	if !smashWithKnownAddresses(t, k, 64) {
		t.Fatal("with known addresses and no RA protection, the smash must land")
	}
}

func TestSmashGarbledByEncryption(t *testing.T) {
	// §5.2.2 (X): the epilogue decrypts whatever sits in the RA slot; the
	// attacker's raw address xored with the unknown key becomes garbage.
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 702})
	if smashWithKnownAddresses(t, k, 64) {
		t.Fatal("encryption must garble the smashed return address")
	}
}

func TestSmashAgainstDecoysIsACoinFlip(t *testing.T) {
	// §5.2.2 (D): the real RA slot sits at +64 or +72 depending on the
	// per-function compile-time variant. An attacker who must guess the
	// slot wins half the time; with both offsets tried, exactly one works.
	oneWorked, bothTried := 0, 0
	for seed := int64(710); seed < 722; seed++ {
		k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: seed})
		hit64 := smashWithKnownAddresses(t, k, 64)
		// Fresh kernel for the second guess (the first may have halted it).
		k2 := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: seed})
		hit72 := smashWithKnownAddresses(t, k2, 72)
		bothTried++
		if hit64 != hit72 {
			oneWorked++
		}
	}
	if oneWorked < bothTried*3/4 {
		t.Fatalf("decoy slot position should decide the smash: %d/%d", oneWorked, bothTried)
	}
	// And across seeds both variants must occur (otherwise it is not a
	// guessing game).
	var sawA, sawB bool
	for seed := int64(710); seed < 722 && !(sawA && sawB); seed++ {
		k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: seed})
		if smashWithKnownAddresses(t, k, 64) {
			sawA = true
		} else {
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Fatalf("both decoy variants must appear across seeds (a=%v b=%v)", sawA, sawB)
	}
}
