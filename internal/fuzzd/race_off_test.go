//go:build !race

package fuzzd

const raceEnabled = false
