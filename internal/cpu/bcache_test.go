package cpu

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// TestBlockSelfModAbort is the mid-block self-modification gate: a store
// inside a block overwrites a LATER instruction of the SAME block. The
// engine must abort at the store (frame generation moved), resync through
// the dispatch loop, and execute the overwritten instruction from its new
// bytes — exactly what per-instruction dispatch does.
func TestBlockSelfModAbort(t *testing.T) {
	// MOVri encodes [op][reg][imm64]: the victim's immediate low byte is at
	// victim+2. Program (one straight-line block until RET):
	//   mov rbx, 9
	//   mov rcx, <victim imm addr>
	//   store [rcx], bl          ; rewrites "mov rax, 1" into "mov rax, 9"
	//   mov rax, 1               ; victim
	//   ret
	prog := []isa.Instr{
		isa.MovRI(isa.RBX, 9),
		isa.MovRI(isa.RCX, 0), // patched below once offsets are known
		isa.StoreSz(isa.Mem(isa.RCX, 0), isa.RBX, 1),
		isa.MovRI(isa.RAX, 1),
		isa.Ret(),
	}
	// Compute the victim's immediate address from the encoded lengths.
	off := uint64(0)
	for _, in := range prog[:3] {
		b, err := in.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		off += uint64(len(b))
	}
	prog[1] = isa.MovRI(isa.RCX, int64(dcCodeVA+off+2))

	run := func(blocksOn bool) (uint64, BlockStats, *RunResult) {
		c := rawCPU(t, mem.PermRWX, prog...)
		c.SetBlockEngine(blocksOn)
		c.SetBlockHotThreshold(1) // form on first dispatch: the abort is the point
		res := mustReturn(t, c, 100)
		return c.Reg(isa.RAX), c.BlockStats(), res
	}

	raxOn, bsOn, resOn := run(true)
	raxOff, _, resOff := run(false)
	if raxOff != 9 {
		t.Fatalf("single-step reference: rax = %d, want 9", raxOff)
	}
	if raxOn != raxOff {
		t.Fatalf("block engine executed stale code: rax = %d, want %d", raxOn, raxOff)
	}
	if bsOn.Aborts == 0 {
		t.Errorf("self-modifying block must abort: %+v", bsOn)
	}
	if resOn.Instrs != resOff.Instrs || resOn.Cycles != resOff.Cycles {
		t.Errorf("counters diverge: %+v vs %+v", resOn, resOff)
	}
}

// TestBlockLimitExact: the fast path must not overrun a Run limit smaller
// than the pending block — the dispatcher falls back to single-step and
// stops after exactly `limit` instructions.
func TestBlockLimitExact(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 1),
		isa.MovRI(isa.RBX, 2),
		isa.MovRI(isa.RCX, 3),
		isa.MovRI(isa.RDX, 4),
		isa.Ret(),
	)
	res := c.Run(2)
	if res.Reason != StopLimit || res.Instrs != 2 {
		t.Fatalf("limit run: %+v", res)
	}
	if c.Reg(isa.RBX) != 2 || c.Reg(isa.RCX) == 3 {
		t.Fatalf("limit stopped at the wrong instruction: rbx=%d rcx=%d", c.Reg(isa.RBX), c.Reg(isa.RCX))
	}
	// Resuming finishes the program with the same totals a single run has.
	res2 := c.Run(100)
	if res2.Reason != StopReturn || res.Instrs+res2.Instrs != 5 {
		t.Fatalf("resume: %+v after %+v", res2, res)
	}
}

// TestBlockStatsAndToggle pins the SetBlockEngine/BlockStats contract: on by
// default, dispatching through blocks; disabling drops live blocks and
// reverts to single-step with identical results; re-enabling re-forms.
func TestBlockStatsAndToggle(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 5),
		isa.AddRI(isa.RAX, 7),
		isa.Ret(),
	)
	if !c.BlockEngineEnabled() {
		t.Fatal("block engine must default on")
	}
	if c.BlockHotThreshold() != DefaultBlockHotThreshold {
		t.Fatalf("hot threshold must default to %d, got %d",
			DefaultBlockHotThreshold, c.BlockHotThreshold())
	}
	c.SetBlockHotThreshold(1) // single pass must dispatch every instruction
	mustReturn(t, c, 100)
	s := c.BlockStats()
	if s.Formed == 0 || s.Dispatches == 0 || s.Instrs == 0 || s.Blocks == 0 {
		t.Fatalf("run must go through blocks: %+v", s)
	}
	if s.Instrs != c.Instrs {
		t.Fatalf("all %d instructions should dispatch via blocks, got %d", c.Instrs, s.Instrs)
	}

	c.SetBlockEngine(false)
	if c.BlockEngineEnabled() {
		t.Fatal("disable failed")
	}
	if got := c.BlockStats(); got.Blocks != 0 {
		t.Fatalf("disabling must drop live blocks: %+v", got)
	}
	rax := c.Reg(isa.RAX)
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if c.Reg(isa.RAX) != rax {
		t.Fatalf("single-step run diverged: rax=%d want %d", c.Reg(isa.RAX), rax)
	}
	d := c.BlockStats().Dispatches

	c.SetBlockEngine(true)
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if got := c.BlockStats(); got.Dispatches == d || got.Blocks == 0 {
		t.Fatalf("re-enabled engine must dispatch again: %+v", got)
	}

	// With the decode cache off the engine has nothing to run on, but the
	// cumulative counters live on the CPU and must survive the toggle; only
	// the live footprint goes to zero.
	cum := c.BlockStats()
	c.SetDecodeCache(false)
	if c.BlockEngineEnabled() {
		t.Fatal("no decode cache, no block engine")
	}
	got := c.BlockStats()
	if got.Blocks != 0 {
		t.Fatalf("no decode cache must report zero live blocks: %+v", got)
	}
	cum.Blocks = 0
	if got != cum {
		t.Fatalf("cumulative stats must survive SetDecodeCache(false): got %+v want %+v", got, cum)
	}
}

// blkCountProbe counts exec callbacks; a struct (not a func value) so
// RemoveProbe can find it by identity.
type blkCountProbe struct{ n int }

func (p *blkCountProbe) OnExec(rip uint64, in *isa.Instr, cycles uint64) { p.n++ }

// TestBlockProbeFallback: installing any exec probe must disarm the block
// fast path (probes observe per-instruction pre-state the block loop does
// not materialize); removing the last probe re-arms it.
func TestBlockProbeFallback(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 5),
		isa.Ret(),
	)
	c.SetBlockHotThreshold(1)
	p := &blkCountProbe{}
	c.AddProbe(p)
	mustReturn(t, c, 100)
	if d := c.BlockStats().Dispatches; d != 0 {
		t.Fatalf("probed run must not dispatch blocks: %d", d)
	}
	if p.n != 2 {
		t.Fatalf("probe saw %d instructions, want 2", p.n)
	}
	c.RemoveProbe(p)
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if d := c.BlockStats().Dispatches; d == 0 {
		t.Fatal("unprobed run must dispatch blocks again")
	}
}

// FuzzBlockEquivalence is the block-engine bit-identity oracle, the probe-
// free sibling of FuzzDecodeCacheEquivalence (probes would disarm the fast
// path): random bytes execute as code on writable+executable pages — so
// programs do overwrite themselves, mid-block — and every architecturally
// visible outcome must match between block-dispatch and single-step.
func FuzzBlockEquivalence(f *testing.F) {
	f.Add([]byte{byte(isa.NOP), byte(isa.RET)}, uint64(1))
	f.Add(encodeProgF(isa.MovRI(isa.RAX, 5), isa.AddRI(isa.RAX, 7), isa.Ret()), uint64(2))
	// Self-modifying seed: store a RET over our own first instruction.
	f.Add(encodeProgF(
		isa.MovRI(isa.RBX, int64(isa.RET)),
		isa.MovRI(isa.RCX, dcCodeVA),
		isa.StoreSz(isa.Mem(isa.RCX, 0), isa.RBX, 1),
		isa.Nop(),
	), uint64(3))
	// Same-block self-modification: the store rewrites the instruction
	// right after it (the TestBlockSelfModAbort shape).
	f.Add(encodeProgF(
		isa.MovRI(isa.RBX, 9),
		isa.MovRI(isa.RCX, dcCodeVA+32),
		isa.StoreSz(isa.Mem(isa.RCX, 0), isa.RBX, 1),
		isa.MovRI(isa.RAX, 1),
		isa.Ret(),
	), uint64(4))

	f.Fuzz(func(t *testing.T, code []byte, seed uint64) {
		if len(code) > 2*mem.PageSize {
			code = code[:2*mem.PageSize]
		}
		type outcome struct {
			res       RunResult
			trap      Trap
			faultKind mem.FaultKind
			faultAddr uint64
			regs      [isa.NumGPR]uint64
			rip       uint64
			flags     uint64
			instrs    uint64
			cycles    uint64
			memory    []byte
		}
		run := func(cacheOn, blocksOn, compileOn bool, hot int) outcome {
			as := mem.NewAddressSpace()
			for _, m := range []struct {
				va   uint64
				n    int
				perm mem.Perm
			}{
				{dcCodeVA, 2, mem.PermRWX}, // writable code: self-modification in play
				{dcDataVA, 1, mem.PermRW},
				{dcStackVA, 1, mem.PermRW},
			} {
				if _, err := as.Map(m.va, m.n, m.perm); err != nil {
					t.Fatal(err)
				}
			}
			if err := as.Poke(dcCodeVA, code); err != nil {
				t.Fatal(err)
			}
			c := New(as)
			c.SetDecodeCache(cacheOn)
			c.SetBlockEngine(blocksOn)
			c.SetBlockCompile(compileOn)
			c.SetBlockHotThreshold(hot)
			c.Mode = Kernel
			c.RIP = dcCodeVA
			rng := rand.New(rand.NewSource(int64(seed)))
			bases := []uint64{dcCodeVA, dcDataVA, dcStackVA}
			for i := range c.Regs {
				c.Regs[i] = bases[rng.Intn(len(bases))] + uint64(rng.Intn(mem.PageSize))
			}
			c.Regs[isa.RSP] = dcStackVA + mem.PageSize - 64
			if f := as.Write(c.Regs[isa.RSP], StopMagic, 8); f != nil {
				t.Fatal(f)
			}
			res := c.Run(512)
			o := outcome{
				res: *res, regs: c.Regs, rip: c.RIP, flags: c.RFlags,
				instrs: c.Instrs, cycles: c.Cycles,
			}
			if res.Trap != nil {
				o.trap = *res.Trap
				o.trap.Fault = nil // pointer field: compared via the two fields below
				o.res.Trap = nil
				if f := res.Trap.Fault; f != nil {
					o.faultKind, o.faultAddr = f.Kind, f.Addr
				}
			}
			for _, r := range []struct {
				va uint64
				n  int
			}{{dcCodeVA, 2 * mem.PageSize}, {dcDataVA, mem.PageSize}, {dcStackVA, mem.PageSize}} {
				b, err := as.Peek(r.va, r.n)
				if err != nil {
					t.Fatal(err)
				}
				o.memory = append(o.memory, b...)
			}
			return o
		}

		// The reference is the fully uncached interpreter (fetch+decode+exec
		// per instruction); against it: cached single-step, interpreted
		// blocks (eager and behind the default hotness gate — mixing
		// single-step and block dispatch of the same code), and compiled
		// blocks (same two gates — specialized thunks with flag-dead
		// fusion). All must be bit-identical.
		off := run(false, false, false, 1)
		for _, m := range []struct {
			name                     string
			cache, blocks, compileOn bool
			hot                      int
		}{
			{"cache-only", true, false, false, 1},
			{"blocks(hot=1)", true, true, false, 1},
			{"blocks(hot=default)", true, true, false, DefaultBlockHotThreshold},
			{"compiled(hot=1)", true, true, true, 1},
			{"compiled(hot=default)", true, true, true, DefaultBlockHotThreshold},
		} {
			on := run(m.cache, m.blocks, m.compileOn, m.hot)
			if on.res != off.res || on.trap != off.trap ||
				on.faultKind != off.faultKind || on.faultAddr != off.faultAddr ||
				on.regs != off.regs || on.rip != off.rip || on.flags != off.flags ||
				on.instrs != off.instrs || on.cycles != off.cycles {
				t.Fatalf("%s vs uncached diverge:\n on: %+v trap=%+v rip=%#x flags=%#x\noff: %+v trap=%+v rip=%#x flags=%#x",
					m.name, on.res, on.trap, on.rip, on.flags, off.res, off.trap, off.rip, off.flags)
			}
			if !bytes.Equal(on.memory, off.memory) {
				t.Fatalf("%s vs uncached diverge in final memory", m.name)
			}
		}
	})
}
