package attack

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kernel"
)

// Result is the outcome of one attack scenario.
type Result struct {
	Name    string
	Success bool   // the attacker reached uid 0 (or wielded a gadget)
	Stage   string // the stage reached (or where the attack died)
	Detail  string
}

func (r Result) String() string {
	v := "FAILED"
	if r.Success {
		v = "SUCCEEDED"
	}
	return fmt.Sprintf("%-16s %s at %s: %s", r.Name, v, r.Stage, r.Detail)
}

// Attacker drives a target kernel through its user-reachable interface.
type Attacker struct {
	K *kernel.Kernel
}

// Leak invokes the arbitrary-read vulnerability. ok=false means the read
// was blocked (the kernel halted or trapped — a kR^X violation).
func (a *Attacker) Leak(addr uint64) (uint64, bool) {
	r := a.K.Syscall(kernel.SysLeak, addr)
	if r.Failed {
		return 0, false
	}
	return r.Ret, true
}

// LeakRange reads n bytes starting at addr, 8 at a time. It stops at the
// first blocked read.
func (a *Attacker) LeakRange(addr uint64, n int) ([]byte, bool) {
	out := make([]byte, 0, n)
	for off := 0; off < n; off += 8 {
		v, ok := a.Leak(addr + uint64(off))
		if !ok {
			return out, false
		}
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	return out, true
}

// UID returns the current uid (host-side ground truth; the attacker's
// success criterion).
func (a *Attacker) UID() uint64 {
	b, err := a.K.Space.AS.Peek(a.K.Sym("cred"), 8)
	if err != nil {
		return ^uint64(0)
	}
	return binary.LittleEndian.Uint64(b)
}

// Hijack plants target into dev_ops[0] and triggers the indirect call with
// the given argument (the function-pointer corruption primitive).
func (a *Attacker) Hijack(target, arg uint64) *kernel.SyscallResult {
	if r := a.K.Syscall(kernel.SysPlant, 0, target); r.Failed {
		return r
	}
	return a.K.Syscall(kernel.SysTrigger, arg)
}

// SmashChain delivers a ROP chain through the kernel stack overflow: 64
// filler bytes, then the chain starting at raOffset bytes past the buffer
// (64 for an unprotected/X-encrypted frame, 64 or 72 when decoys shift the
// layout).
func (a *Attacker) SmashChain(chain []uint64, raOffset int) *kernel.SyscallResult {
	payload := make([]byte, raOffset)
	for i := range payload {
		payload[i] = 0x41
	}
	for _, w := range chain {
		payload = binary.LittleEndian.AppendUint64(payload, w)
	}
	if err := a.K.WriteUser(16384, payload); err != nil {
		return &kernel.SyscallResult{Failed: true}
	}
	return a.K.Syscall(kernel.SysStackSmash, kernel.UserBuf+16384, uint64(len(payload)))
}

// textWindow is how much code the JIT-ROP stage harvests.
const textWindow = 512 << 10

// DirectROP mounts the precomputed-address attack of §7.3 ("Direct
// ROP/JOP"): the attacker builds the ROP chain offline against a reference
// image (ref — same kernel, same configuration, different/unknown seed) and
// fires it blind at the target. This models the converted CVE-2013-2094
// exploit: it works when the target's layout matches the reference and
// collapses under fine-grained KASLR.
func DirectROP(target, ref *kernel.Kernel) Result {
	res := Result{Name: "direct-rop", Stage: "offline-prep"}
	a := &Attacker{K: target}

	// Offline: gadget discovery on the attacker's own copy.
	refText := ref.Img.Text
	gs := ScanGadgets(refText, ref.Sym("_text"))
	pop, ok := FindPopRet(gs, 7 /* %rdi */)
	if !ok {
		res.Detail = "no pop %rdi gadget in reference image"
		return res
	}
	chain := []uint64{pop.Addr, 0 /* uid */, ref.Sym("do_set_uid"), cpu.StopMagic}

	res.Stage = "payload-delivery"
	r := a.SmashChain(chain, 64)
	if a.UID() == 0 {
		res.Success = true
		res.Detail = "uid=0 via precomputed gadget chain"
		return res
	}
	how := "delivery failed"
	if r.Run != nil {
		how = fmt.Sprintf("run ended with %v", r.Run.Reason)
	}
	res.Detail = "chain landed nowhere useful (" + how + ")"
	return res
}

// JITROP mounts the direct JIT-ROP attack: use the arbitrary read to leak
// code pointers from the (readable, non-randomized) syscall table, harvest
// the surrounding code pages, locate do_set_uid by signature and a pop
// %rdi gadget by scanning, then exploit via the function-pointer hijack
// (whole-function/arity-matched reuse, unaffected by return-address
// protection — the residual data-only channel §7.3 documents).
func JITROP(target *kernel.Kernel) Result {
	res := Result{Name: "jit-rop", Stage: "pointer-harvest"}
	a := &Attacker{K: target}

	// Step 1: leak code pointers from the syscall dispatch table (data).
	tbl := target.Sym("sys_call_table") // data addresses are not randomized
	var minPtr uint64 = ^uint64(0)
	for i := 0; i < kernel.NumSyscalls; i++ {
		v, ok := a.Leak(tbl + uint64(i)*8)
		if !ok {
			res.Detail = "syscall table unreadable?!"
			return res
		}
		if v != 0 && v < minPtr {
			minPtr = v
		}
	}

	// Step 2: recursively harvest code around the leaked pointers.
	res.Stage = "code-harvest"
	// The attacker reads until blocked (R^X violation) or the window is
	// exhausted; running off the end of .text into unmapped space also
	// stops the harvest, but whatever was read stays usable.
	start := minPtr &^ 0xFFF
	code, _ := a.LeakRange(start, textWindow)
	if len(code) < 4096 {
		res.Detail = fmt.Sprintf("code read blocked after %d bytes (R^X)", len(code))
		return res
	}

	// Step 3: locate the privilege-escalation target and a gadget.
	res.Stage = "gadget-search"
	credAddr := target.Sym("cred")
	pat, err := MovR8ImmPattern(credAddr)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	hits := FindPattern(code, pat)
	if len(hits) == 0 {
		res.Detail = "do_set_uid signature not found in harvested code"
		return res
	}
	targetAddr := start + uint64(hits[0])

	// Step 4: exploit via the fptr hijack with a matching-arity call.
	res.Stage = "exploitation"
	a.Hijack(targetAddr, 0)
	if a.UID() == 0 {
		res.Success = true
		res.Detail = fmt.Sprintf("uid=0 via code harvested at %#x", targetAddr)
		return res
	}
	res.Detail = "hijacked call did not reach do_set_uid"
	return res
}

// HarvestStack leaks the kernel stack (ordinary readable data — §5.2.2)
// and returns every word that looks like a kernel-text pointer.
func (a *Attacker) HarvestStack(words int) ([]uint64, bool) {
	top := a.K.CPU.KernelStackTop
	raw, ok := a.LeakRange(top-uint64(words)*8, words*8)
	if !ok {
		return nil, false
	}
	var ptrs []uint64
	for off := 0; off+8 <= len(raw); off += 8 {
		v := binary.LittleEndian.Uint64(raw[off:])
		// Plausible kernel code pointer: inside the top 2GB.
		if v >= 0xffffffff80000000 && v != cpu.StopMagic {
			ptrs = append(ptrs, v)
		}
	}
	return ptrs, true
}

// IndirectJITROP mounts the Conti-style indirect attack: prime the kernel
// stack with deep call chains, harvest return addresses from the stack
// residue, and wield each harvested pointer through the fptr hijack. The
// returned result counts how many harvested pointers were usable (executed
// without tripping a tripwire or fault).
func IndirectJITROP(target *kernel.Kernel) Result {
	res := Result{Name: "indirect-jit-rop", Stage: "stack-priming"}
	a := &Attacker{K: target}

	// Prime: syscalls with nested calls leave return addresses behind.
	if err := target.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		res.Detail = "user setup failed"
		return res
	}
	target.Syscall(kernel.SysOpen, kernel.UserBuf)
	target.Syscall(kernel.SysExecve, kernel.UserBuf)

	res.Stage = "ra-harvest"
	ptrs, ok := a.HarvestStack(256)
	if !ok {
		res.Detail = "stack leak blocked"
		return res
	}
	if len(ptrs) == 0 {
		res.Detail = "no code pointers on the stack (encrypted or zapped)"
		return res
	}

	// Wield each candidate. A usable harvested pointer executes benignly
	// (a call-preceded gadget the attacker can chain); a decoy lands on
	// its int3 tripwire, which halts the system — one wrong guess burns
	// the exploit, hence P_succ = 1/2^n. Candidates that crash further
	// downstream are merely useless, not detections.
	res.Stage = "gadget-use"
	usable, tripwires, crashed := 0, 0, 0
	for _, p := range ptrs {
		r := a.Hijack(p, 7)
		switch {
		case !r.Failed:
			usable++
		case r.Run != nil && r.Run.Trap != nil &&
			r.Run.Trap.Kind == cpu.TrapBreakpoint && r.Run.Trap.RIP == p:
			tripwires++
		default:
			crashed++
		}
	}
	res.Detail = fmt.Sprintf("%d harvested, %d usable, %d tripwires, %d crashed",
		len(ptrs), usable, tripwires, crashed)
	res.Success = usable > 0 && tripwires == 0
	return res
}

// SmashWithHarvestedRA smashes the stack using a harvested return address
// as the (single-gadget) payload — the control-flow redirection building
// block of an indirect JIT-ROP chain. raOffset selects which slot of a
// possible decoy pair the attacker bets on. Success means the run ended on
// the sentinel stop address — the harvested gadget executed and returned
// into the rest of the chain, rather than trapping or halting. Alongside it
// the attempt's emulated cycle cost is reported: a failed bet is not free,
// and the per-attempt cost is what prices the 1/2^n decoy-guessing game.
func (a *Attacker) SmashWithHarvestedRA(ra uint64, raOffset int) (ok bool, cycles uint64) {
	before := a.K.CPU.Cycles
	r := a.SmashChain([]uint64{ra, cpu.StopMagic, cpu.StopMagic}, raOffset)
	ok = r.Run != nil && r.Run.Reason == cpu.StopReturn
	return ok, a.K.CPU.Cycles - before
}
