// Bit-identical-semantics enforcement: the decode cache must not change any
// architecturally visible outcome. These tests run the Table 1 micro-op
// suite, the paper's attack scenarios, and a fuzzing campaign with the
// cache on and off and require identical results — cycles, instruction
// counts, the full OnExec stream, attack outcomes, and fuzz report bytes.
package bench

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fuzz"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// equivConfigs: the unprotected baseline and the most protected preset
// column (diversification, RA protection, the works).
func equivConfigs() []core.Config {
	presets := core.Presets()
	return []core.Config{core.Vanilla, presets[len(presets)-1]}
}

// hookDigest installs an exec probe folding every OnExec callback (rip,
// opcode, cycle delta, in order) into a hash readable through the returned
// pointer.
func hookDigest(c *cpu.CPU) *uint64 {
	h := fnv.New64a()
	out := new(uint64)
	var buf [17]byte
	c.AddProbe(cpu.ExecProbeFunc(func(rip uint64, in *isa.Instr, cycles uint64) {
		binary.LittleEndian.PutUint64(buf[0:], rip)
		buf[8] = byte(in.Op)
		binary.LittleEndian.PutUint64(buf[9:], cycles)
		h.Write(buf[:])
		*out = h.Sum64()
	}))
	return out
}

// TestTable1SuiteCacheEquivalence is the acceptance gate for the Table 1
// suite: every micro-op under cache-on must execute the identical
// instruction stream as cache-off.
func TestTable1SuiteCacheEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		type outcome struct {
			cycles, instrs, digest uint64
		}
		run := func(cacheOn bool) outcome {
			k, err := kernel.Boot(cfg, kernel.WithCache())
			if err != nil {
				t.Fatal(err)
			}
			k.CPU.SetDecodeCache(cacheOn)
			digest := hookDigest(k.CPU)
			instrs0 := k.CPU.Instrs
			cycles, err := RunTable1Suite(k)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			return outcome{cycles: cycles, instrs: k.CPU.Instrs - instrs0, digest: *digest}
		}
		on, off := run(true), run(false)
		if on != off {
			t.Errorf("%s: cache on/off diverge: %+v vs %+v", cfg.Name(), on, off)
		}
	}
}

// TestAttackScenariosCacheEquivalence runs the paper's three attack
// scenarios against cache-on and cache-off kernels: outcomes, stages, and
// the targets' final instruction/cycle counters must match exactly —
// whether the attack succeeds (vanilla) or dies (full kR^X).
func TestAttackScenariosCacheEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(cfg core.Config, cacheOn bool) (attack.Result, *kernel.Kernel)
	}{
		{"DirectROP", func(cfg core.Config, cacheOn bool) (attack.Result, *kernel.Kernel) {
			target := bootEquiv(t, cfg, cacheOn)
			ref := bootEquiv(t, cfg, cacheOn)
			return attack.DirectROP(target, ref), target
		}},
		{"JITROP", func(cfg core.Config, cacheOn bool) (attack.Result, *kernel.Kernel) {
			target := bootEquiv(t, cfg, cacheOn)
			return attack.JITROP(target), target
		}},
		{"IndirectJITROP", func(cfg core.Config, cacheOn bool) (attack.Result, *kernel.Kernel) {
			target := bootEquiv(t, cfg, cacheOn)
			return attack.IndirectJITROP(target), target
		}},
	}
	for _, cfg := range equivConfigs() {
		for _, sc := range scenarios {
			rOn, kOn := sc.run(cfg, true)
			rOff, kOff := sc.run(cfg, false)
			if rOn != rOff {
				t.Errorf("%s/%s: results diverge:\n on: %v\noff: %v", cfg.Name(), sc.name, rOn, rOff)
			}
			if kOn.CPU.Instrs != kOff.CPU.Instrs || kOn.CPU.Cycles != kOff.CPU.Cycles {
				t.Errorf("%s/%s: counters diverge: instrs %d/%d cycles %d/%d",
					cfg.Name(), sc.name, kOn.CPU.Instrs, kOff.CPU.Instrs, kOn.CPU.Cycles, kOff.CPU.Cycles)
			}
		}
	}
}

func bootEquiv(t *testing.T, cfg core.Config, cacheOn bool) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg, kernel.WithCache())
	if err != nil {
		t.Fatal(err)
	}
	k.CPU.SetDecodeCache(cacheOn)
	return k
}

// TestFuzzReportCacheInvariance: a fuzzing campaign — generation, mutation,
// corpus growth, coverage, crash triage — must produce byte-identical
// reports with the cache on and off.
func TestFuzzReportCacheInvariance(t *testing.T) {
	run := func(cacheOn bool) string {
		f, err := fuzz.New(fuzz.Options{Iters: 96, Seed: 17, Config: core.Vanilla, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		k, err := f.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		k.CPU.SetDecodeCache(cacheOn)
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	on, off := run(true), run(false)
	if on != off {
		t.Errorf("fuzz reports diverge with cache on/off:\n on: %s\noff: %s", on, off)
	}
}
