package cpu

import (
	"math/bits"

	"repro/internal/isa"
)

// Flag computation helpers, shared by the exec interpreter switch (exec.go)
// and the compiled per-opcode thunks (thunk.go). All ALU operations are
// 64-bit. The block compiler's liveness pass elides calls to these entirely
// for arithmetic whose flag results are provably overwritten before any
// observable read (see compileBlock); everywhere else they define the
// architectural %rflags contents bit for bit.

func parity(v uint64) bool {
	return bits.OnesCount8(uint8(v))%2 == 0
}

func (c *CPU) setSZP(r uint64) {
	c.RFlags &^= isa.FlagZF | isa.FlagSF | isa.FlagPF
	if r == 0 {
		c.RFlags |= isa.FlagZF
	}
	if r>>63 != 0 {
		c.RFlags |= isa.FlagSF
	}
	if parity(r) {
		c.RFlags |= isa.FlagPF
	}
}

func (c *CPU) flagsAdd(a, b, r uint64) {
	c.RFlags &^= isa.FlagCF | isa.FlagOF
	if r < a {
		c.RFlags |= isa.FlagCF
	}
	if (^(a ^ b) & (a ^ r) >> 63) != 0 {
		c.RFlags |= isa.FlagOF
	}
	c.setSZP(r)
}

func (c *CPU) flagsSub(a, b, r uint64) {
	c.RFlags &^= isa.FlagCF | isa.FlagOF
	if a < b {
		c.RFlags |= isa.FlagCF
	}
	if ((a ^ b) & (a ^ r) >> 63) != 0 {
		c.RFlags |= isa.FlagOF
	}
	c.setSZP(r)
}

func (c *CPU) flagsLogic(r uint64) {
	c.RFlags &^= isa.FlagCF | isa.FlagOF
	c.setSZP(r)
}
