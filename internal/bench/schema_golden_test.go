package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites golden files when KRX_UPDATE_GOLDEN is set
// (`KRX_UPDATE_GOLDEN=1 go test ./internal/...`).
func updateGolden() bool { return os.Getenv("KRX_UPDATE_GOLDEN") != "" }

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if updateGolden() {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with KRX_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: serialized form changed without a SchemaVersion bump.\n got: %s\nwant: %s",
			path, got, want)
	}
}

// TestEmuReportSchemaGolden pins the krxbench -json wire format: any field
// addition, removal, or rename changes these bytes and must come with an
// EmuSchemaVersion bump (and a regenerated golden file).
func TestEmuReportSchemaGolden(t *testing.T) {
	rep := &EmuReport{
		Schema:        "krx-emubench",
		SchemaVersion: EmuSchemaVersion,
		GoOS:          "linux",
		GoArch:        "amd64",
		Results: []EmuResult{{
			Name:            "table1-suite/Vanilla",
			Iters:           10,
			Reps:            3,
			HostNsCompiled:  640,
			HostNsBlocks:    800,
			HostNsOn:        1000,
			HostNsOff:       2500,
			Speedup:         2.5,
			BlockSpeedup:    1.25,
			CompiledSpeedup: 1.25,
			Cycles:          123456,
		}},
		Fork: []ForkResult{{
			Name:         "fork/Vanilla",
			Reps:         3,
			BootNs:       20000000,
			ForkNs:       1500000,
			ForksPerSec:  666.67,
			BootOverFork: 13.33,
			IterNsFork:   50000,
			IterNsBoot:   51000,
			Cycles:       654321,
		}},
		Store: []StoreResult{{
			Name:            "store/Vanilla",
			Reps:            3,
			ColdNs:          20000000,
			HitNs:           4000000,
			StoreHitSpeedup: 5.0,
		}},
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "emureport.golden.json"), b)
}
