package attack

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// Substitution reproduces the §5.3 substitution attack against return-
// address encryption: ciphertexts of two return sites of the same function
// (hence encrypted under the same xkey) can be swapped, redirecting the
// return to the other — valid — return site without knowing the key.
//
// The attack needs to capture a ciphertext while the callee is live on the
// stack (the race-hazard window of §5.3); the simulation models that
// window by single-stepping the CPU and reading/writing the stack slot
// mid-call, which is exactly the capability a racing sibling thread with
// the leak/corruption primitives would have.
//
// Victim: strncpy_from_user, called by both sys_open (call site 1) and
// sys_execve (call site 2).
func Substitution(target *kernel.Kernel) Result {
	res := Result{Name: "substitution", Stage: "setup"}
	if err := target.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		res.Detail = "user setup failed"
		return res
	}
	fStart, fEnd, ok := funcRange(target, "strncpy_from_user")
	if !ok {
		res.Detail = "victim function not found"
		return res
	}

	// Capture the ciphertext stored by the victim's prologue when invoked
	// from each call site.
	res.Stage = "ciphertext-capture"
	c1, slot1, ok := captureCiphertext(target, kernel.SysOpen, fStart, fEnd, nil)
	if !ok {
		res.Detail = "no ciphertext captured from sys_open"
		return res
	}
	c2, _, ok := captureCiphertext(target, kernel.SysExecve, fStart, fEnd, nil)
	if !ok {
		res.Detail = "no ciphertext captured from sys_execve"
		return res
	}
	if c1 == c2 {
		res.Detail = "identical ciphertexts (unexpected)"
		return res
	}
	// Ground truth for verification only: RS2 = C2 ^ xkey.
	key := target.Keys[diversify.KeySym("strncpy_from_user")]
	rs2 := c2 ^ key

	// Replay the sys_open path, swapping C1 -> C2 mid-call, and watch
	// where the victim returns.
	res.Stage = "ciphertext-swap"
	swapped := false
	var landed uint64
	_, _, done := captureCiphertext(target, kernel.SysOpen, fStart, fEnd, func(c *cpu.CPU, slot uint64) bool {
		if !swapped && slot == slot1 {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], c2)
			if err := c.AS.Poke(slot, b[:]); err != nil {
				return true
			}
			swapped = true
		}
		// After the swap, run until the victim returns and record where
		// control lands.
		if swapped && (c.RIP < fStart || c.RIP >= fEnd) {
			landed = c.RIP
			return true
		}
		return false
	})
	// done reports whether the hook ever stopped the walk; combined with
	// swapped it separates the three failure modes that were previously
	// conflated under "swap window missed".
	switch {
	case done && !swapped:
		// The hook fired on the RA slot but the Poke failed.
		res.Detail = "ciphertext swap write failed"
		return res
	case !done && !swapped:
		res.Detail = "swap window missed"
		return res
	case swapped && !done:
		// We overwrote the slot but the victim never left the function
		// within the step budget — the callback never fired again.
		res.Detail = "victim never returned after swap"
		return res
	}
	if landed == rs2 {
		res.Success = true
		res.Detail = fmt.Sprintf("return redirected to the other call site's return site %#x", rs2)
	} else {
		res.Detail = fmt.Sprintf("landed at %#x, expected %#x", landed, rs2)
	}
	return res
}

// funcRange returns the placed address range of a function.
func funcRange(k *kernel.Kernel, name string) (uint64, uint64, bool) {
	for _, f := range k.Img.Funcs {
		if f.Name == name {
			return f.Addr, f.Addr + f.Size, true
		}
	}
	return 0, 0, false
}

// captureCiphertext single-steps one syscall; when execution first enters
// [fStart,fEnd), it records the return-address slot, lets the prologue run,
// and returns the (encrypted) slot contents. An optional hook runs after
// each step once inside the victim; returning true stops the walk.
func captureCiphertext(k *kernel.Kernel, nr uint64, fStart, fEnd uint64,
	hook func(*cpu.CPU, uint64) bool) (ciphertext, slot uint64, ok bool) {
	c := k.CPU
	c.Mode = cpu.User
	c.RIP = kernel.UserCode
	c.SetReg(isa.RSP, kernel.UserStack+kernel.UserStackPgs*mem.PageSize-128)
	c.SetReg(isa.RAX, nr)
	c.SetReg(isa.RDI, kernel.UserBuf)
	c.SetReg(isa.RSI, 0)
	c.SetReg(isa.RDX, 0)
	entered := false
	prologueSteps := 0
	for i := 0; i < 1<<20; i++ {
		inside := c.RIP >= fStart && c.RIP < fEnd
		if inside && !entered {
			entered = true
			slot = c.Reg(isa.RSP) // the RA slot at function entry
		}
		stop, trap := c.Step()
		if trap != nil || stop != cpu.StepContinue {
			return 0, 0, false
		}
		if entered {
			prologueSteps++
			if prologueSteps == 4 && ciphertext == 0 {
				v, f := c.AS.Read(slot, 8)
				if f != nil {
					return 0, 0, false
				}
				ciphertext = v
			}
			if hook != nil && prologueSteps >= 4 {
				if hook(c, slot) {
					return ciphertext, slot, true
				}
			}
			if ciphertext != 0 && hook == nil {
				return ciphertext, slot, true
			}
		}
	}
	return 0, 0, false
}
