package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// loadRef is the byte-at-a-time model the bulk LoadBytes fast path must
// match exactly: same bytes, or a fault naming the same first bad byte.
func loadRef(as *AddressSpace, va uint64, n int) ([]byte, *Fault) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, f := as.LoadByte(va + uint64(i))
		if f != nil {
			return nil, f
		}
		out[i] = b
	}
	return out, nil
}

// storeRef is the byte-at-a-time model for StoreBytes: bytes preceding the
// first unwritable byte persist, and the fault names that byte.
func storeRef(as *AddressSpace, va uint64, b []byte) *Fault {
	for i := range b {
		if f := as.StoreByte(va+uint64(i), b[i]); f != nil {
			return f
		}
	}
	return nil
}

func sameFault(a, b *Fault) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Addr == b.Addr && a.Kind == b.Kind
}

// layout builds the shared test topology: three RW pages at 0x1000..0x3fff,
// a hole at 0x4000, a read-only page at 0x5000.
func layout(t *testing.T) *AddressSpace {
	t.Helper()
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 3, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x5000, 1, PermR); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	fill := make([]byte, 3*PageSize)
	rng.Read(fill)
	if err := as.Poke(0x1000, fill); err != nil {
		t.Fatal(err)
	}
	return as
}

func TestBulkLoadEquivalence(t *testing.T) {
	as := layout(t)
	cases := []struct {
		va uint64
		n  int
	}{
		{0x1000, 1},
		{0x1ff0, 64},              // crosses one page boundary
		{0x1001, 2*PageSize + 17}, // unaligned, multi-page
		{0x3ff0, 32},              // runs into the hole at 0x4000
		{0x4000, 8},               // starts in the hole
		{0x3fff, 1},               // last mapped byte
	}
	for _, c := range cases {
		want, wf := loadRef(as, c.va, c.n)
		got, gf := as.LoadBytes(c.va, c.n)
		if !sameFault(wf, gf) {
			t.Errorf("LoadBytes(%#x,%d): fault %v, byte-loop %v", c.va, c.n, gf, wf)
			continue
		}
		if wf == nil && !bytes.Equal(got, want) {
			t.Errorf("LoadBytes(%#x,%d): data mismatch", c.va, c.n)
		}
	}
}

func TestBulkStoreEquivalence(t *testing.T) {
	cases := []struct {
		va uint64
		n  int
	}{
		{0x1000, 1},
		{0x1ff0, 64},
		{0x1003, 2*PageSize + 5},
		{0x3fc0, 128}, // faults at the hole boundary 0x4000
		{0x4ff0, 32},  // unmapped, then would hit read-only
	}
	for _, c := range cases {
		bulk, ref := layout(t), layout(t)
		data := make([]byte, c.n)
		rand.New(rand.NewSource(int64(c.va))).Read(data)

		gf := bulk.StoreBytes(c.va, data)
		wf := storeRef(ref, c.va, data)
		if !sameFault(wf, gf) {
			t.Errorf("StoreBytes(%#x,%d): fault %v, byte-loop %v", c.va, c.n, gf, wf)
			continue
		}
		// Partial progress must match byte for byte: compare every mapped
		// region in both spaces.
		for _, r := range []struct {
			va uint64
			n  int
		}{{0x1000, 3 * PageSize}, {0x5000, PageSize}} {
			b, err1 := bulk.Peek(r.va, r.n)
			w, err2 := ref.Peek(r.va, r.n)
			if err1 != nil || err2 != nil {
				t.Fatalf("peek: %v %v", err1, err2)
			}
			if !bytes.Equal(b, w) {
				t.Errorf("StoreBytes(%#x,%d): divergent memory at %#x", c.va, c.n, r.va)
			}
		}
	}
	// A store crossing into the read-only page faults with FaultNoWrite at
	// the page boundary, preceding bytes written.
	as := layout(t)
	if _, err := as.Map(0x4000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	f := as.StoreBytes(0x4ffe, []byte{1, 2, 3, 4})
	if f == nil || f.Kind != FaultNoWrite || f.Addr != 0x5000 {
		t.Fatalf("store into read-only: %v", f)
	}
	got, _ := as.Peek(0x4ffe, 2)
	if !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("bytes before the fault must persist: % x", got)
	}
}

func TestPokePeekBulk(t *testing.T) {
	as := layout(t)
	// Poke ignores permissions: the read-only page accepts it.
	if err := as.Poke(0x5000, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	got, err := as.Peek(0x5000, 3)
	if err != nil || !bytes.Equal(got, []byte{9, 9, 9}) {
		t.Fatalf("poke/peek round trip: %v % x", err, got)
	}
	// Cross-page poke, then peek the same window back.
	blob := make([]byte, PageSize+64)
	rand.New(rand.NewSource(3)).Read(blob)
	if err := as.Poke(0x1fc0, blob); err != nil {
		t.Fatal(err)
	}
	got, err = as.Peek(0x1fc0, len(blob))
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("cross-page poke/peek: %v", err)
	}
	// Poke into the hole: bytes on preceding pages persist, the error
	// names the first unmapped page.
	if err := as.Poke(0x3ffe, []byte{7, 7, 7, 7}); err == nil {
		t.Fatal("poke into hole must fail")
	}
	got, _ = as.Peek(0x3ffe, 2)
	if !bytes.Equal(got, []byte{7, 7}) {
		t.Fatalf("poke progress before the hole must persist: % x", got)
	}
	if _, err := as.Peek(0x3fff, 2); err == nil {
		t.Fatal("peek into hole must fail")
	}
}

// TestGenSemantics pins which operations bump the frame content generation
// and which must not — the decode cache invalidates on exactly these.
func TestGenSemantics(t *testing.T) {
	as := layout(t)
	frames, err := as.FramesAt(0x1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := frames[0]

	g := f.Gen()
	as.StoreByte(0x1000, 1)
	if f.Gen() == g {
		t.Error("StoreByte must bump Gen")
	}
	g = f.Gen()
	as.Write(0x1008, 42, 8)
	if f.Gen() == g {
		t.Error("Write must bump Gen")
	}
	g = f.Gen()
	as.StoreBytes(0x1010, []byte{1, 2, 3})
	if f.Gen() == g {
		t.Error("StoreBytes must bump Gen")
	}
	g = f.Gen()
	if err := as.Poke(0x1018, []byte{4}); err != nil {
		t.Fatal(err)
	}
	if f.Gen() == g {
		t.Error("Poke must bump Gen")
	}
	g = f.Gen()
	f.Zap()
	if f.Gen() == g {
		t.Error("Zap must bump Gen")
	}

	// Pure reads bump nothing.
	g = f.Gen()
	mg := as.MapGen()
	as.Read(0x1000, 8)
	as.LoadBytes(0x1000, 64)
	if _, err := as.Peek(0x1000, 64); err != nil {
		t.Fatal(err)
	}
	var buf [16]byte
	as.Fetch(0x1000, buf[:])
	if f.Gen() != g {
		t.Error("reads must not bump Gen")
	}
	if as.MapGen() != mg {
		t.Error("reads must not bump MapGen")
	}

	// Content writes must not bump the structural generation.
	mg = as.MapGen()
	as.StoreByte(0x1000, 2)
	if as.MapGen() != mg {
		t.Error("StoreByte must not bump MapGen")
	}
}

// TestMapGenSemantics pins which operations change the translation
// structure: the decode cache re-resolves frames on exactly these.
func TestMapGenSemantics(t *testing.T) {
	as := layout(t)

	bumps := []struct {
		name string
		op   func() error
	}{
		{"Map", func() error { _, err := as.Map(0x8000, 1, PermRW); return err }},
		{"Protect", func() error { return as.Protect(0x8000, 1, PermR) }},
		{"Unmap", func() error { return as.Unmap(0x8000, 1) }},
		{"MapFrames", func() error {
			fr, err := as.FramesAt(0x1000, 1)
			if err != nil {
				return err
			}
			return as.MapFrames(0x9000, fr, PermRW)
		}},
		{"ShadowData", func() error {
			return as.ShadowData(0x1000, 1, nil)
		}},
		{"Unshadow", func() error { as.Unshadow(0x1000, 1); return nil }},
	}
	for _, b := range bumps {
		mg := as.MapGen()
		if err := b.op(); err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if as.MapGen() == mg {
			t.Errorf("%s must bump MapGen", b.name)
		}
	}
}

// TestRollbackGenerations pins the incremental Rollback contract: a
// content-only rollback bumps the restored frames' generations but leaves
// the structure (and MapGen) alone; a structural rollback bumps MapGen.
func TestRollbackGenerations(t *testing.T) {
	as := layout(t)
	frames, err := as.FramesAt(0x1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := frames[0]
	orig, _ := as.Peek(0x1000, 8)

	as.Checkpoint()
	mg := as.MapGen()

	// Content-only dirtying.
	as.StoreByte(0x1000, 0xEE)
	g := f.Gen()
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	if as.MapGen() != mg {
		t.Error("content-only Rollback must not bump MapGen")
	}
	if f.Gen() == g {
		t.Error("Rollback restoring a frame must bump its Gen")
	}
	got, _ := as.Peek(0x1000, 8)
	if !bytes.Equal(got, orig) {
		t.Fatalf("rollback did not restore: % x want % x", got, orig)
	}

	// Rollback is repeatable on the same checkpoint: dirty, roll back,
	// dirty again, roll back again.
	as.StoreByte(0x1000, 0xAA)
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	as.StoreByte(0x1001, 0xBB)
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, _ = as.Peek(0x1000, 8)
	if !bytes.Equal(got, orig) {
		t.Fatalf("second rollback did not restore: % x", got)
	}

	// Structural dirtying: a map added after the checkpoint disappears and
	// MapGen moves.
	mg = as.MapGen()
	if _, err := as.Map(0xa000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(0xa000) {
		t.Error("structural rollback must drop the new mapping")
	}
	if as.MapGen() == mg {
		t.Error("structural Rollback must bump MapGen")
	}
}

// TestRangesCache: Ranges is cached keyed on MapGen — repeated calls return
// the same contents, and every structural mutation refreshes it.
func TestRangesCache(t *testing.T) {
	as := layout(t)
	r1 := as.Ranges()
	r2 := as.Ranges()
	if len(r1) != len(r2) {
		t.Fatalf("unstable ranges: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("unstable ranges at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	if _, err := as.Map(0x7000, 1, PermX); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range as.Ranges() {
		if r.Start <= 0x7000 && 0x7000 < r.End && r.Perm == PermX {
			found = true
		}
	}
	if !found {
		t.Fatal("Ranges stale after Map")
	}
	if err := as.Protect(0x7000, 1, PermR); err != nil {
		t.Fatal(err)
	}
	for _, r := range as.Ranges() {
		if r.Start <= 0x7000 && 0x7000 < r.End && r.Perm != PermR {
			t.Fatal("Ranges stale after Protect")
		}
	}
}
