package cpu

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// String-op semantics tests, pinned when execRepBulk replaced the hot path:
// the bulk page-run execution of ascending REP MOVS/STOS must be
// indistinguishable from the per-element loop in every architected
// observable — memory bytes, register finals, cycle accounting, trap kind
// and address, and partial progress at a faulting page.

// repCPU builds a raw CPU running prog with an extra RW data page adjacent
// to dcDataVA, so copies can cross a page boundary.
func repCPU(t *testing.T, prog ...isa.Instr) *CPU {
	t.Helper()
	c := rawCPU(t, mem.PermX, prog...)
	if _, err := c.AS.Map(dcDataVA+mem.PageSize, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRepMovsCrossPageUnaligned(t *testing.T) {
	// 16 8-byte elements starting 37 bytes before the source page boundary:
	// bulk runs cover the in-page elements, the straddling element falls
	// back to the per-element loop, and the copy resumes bulk on the next
	// page. 37 % 8 != 0, so one element genuinely spans the boundary.
	const n, w = 16, 8
	src := uint64(dcDataVA + mem.PageSize - 37)
	dst := uint64(dcStackVA + 64)

	pat := make([]byte, n*w)
	for i := range pat {
		pat[i] = byte(3*i + 1)
	}

	mk := func(rcx uint64) *CPU {
		c := repCPU(t, isa.Movs(w, true), isa.Ret())
		if err := c.AS.Poke(src, pat); err != nil {
			t.Fatal(err)
		}
		c.Regs[isa.RSI], c.Regs[isa.RDI], c.Regs[isa.RCX] = src, dst, rcx
		return c
	}

	c0 := mk(0)
	mustReturn(t, c0, 100)
	base := c0.Cycles

	c := mk(n)
	mustReturn(t, c, 100)
	got, err := c.AS.Peek(dst, n*w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Errorf("copied bytes diverge from source pattern")
	}
	if c.Regs[isa.RSI] != src+n*w || c.Regs[isa.RDI] != dst+n*w || c.Regs[isa.RCX] != 0 {
		t.Errorf("finals rsi=%#x rdi=%#x rcx=%d, want rsi=%#x rdi=%#x rcx=0",
			c.Regs[isa.RSI], c.Regs[isa.RDI], c.Regs[isa.RCX], src+n*w, dst+n*w)
	}
	// Element-exact accounting: n elements cost exactly n*StrUnitCost over
	// the zero-element run, however the elements were batched.
	if c.Cycles-base != n*isa.StrUnitCost {
		t.Errorf("cycles delta %d, want %d", c.Cycles-base, n*isa.StrUnitCost)
	}
}

func TestRepMovsOverlapReplicates(t *testing.T) {
	// dst = src+1 ascending: each element reads the byte the previous
	// element just wrote, smearing src[0] across the window. memmove-style
	// copying would preserve the original bytes instead — this is the case
	// that forbids a blind bulk copy() on overlap.
	const n = 64
	src := uint64(dcDataVA + 8)
	c := repCPU(t, isa.Movs(1, true), isa.Ret())
	seed := []byte{0xAA, 0xBB, 0xCC}
	if err := c.AS.Poke(src, seed); err != nil {
		t.Fatal(err)
	}
	c.Regs[isa.RSI], c.Regs[isa.RDI], c.Regs[isa.RCX] = src, src+1, n
	mustReturn(t, c, 100)
	got, err := c.AS.Peek(src+1, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAA {
			t.Fatalf("overlap copy byte %d = %#x, want the replicated %#x", i, b, 0xAA)
		}
	}
}

func TestRepStosFaultPartialProgress(t *testing.T) {
	// Fill runs into a read-only page: the trap names the first unwritable
	// byte, and the registers record exactly the elements that completed.
	c := rawCPU(t, mem.PermX, isa.Stos(1, true), isa.Ret())
	if _, err := c.AS.Map(dcDataVA+mem.PageSize, 1, mem.PermR); err != nil {
		t.Fatal(err)
	}
	const before = 24
	start := uint64(dcDataVA + mem.PageSize - before)
	c.Regs[isa.RAX] = 0x5C
	c.Regs[isa.RDI], c.Regs[isa.RCX] = start, before+10
	res := c.Run(100)
	if res.Trap == nil || res.Trap.Kind != TrapPageFault {
		t.Fatalf("want page-fault trap, got %+v", res)
	}
	if res.Trap.Addr != dcDataVA+mem.PageSize {
		t.Errorf("trap addr %#x, want first read-only byte %#x", res.Trap.Addr, uint64(dcDataVA+mem.PageSize))
	}
	if c.Regs[isa.RDI] != dcDataVA+mem.PageSize || c.Regs[isa.RCX] != 10 {
		t.Errorf("partial progress rdi=%#x rcx=%d, want rdi=%#x rcx=10",
			c.Regs[isa.RDI], c.Regs[isa.RCX], uint64(dcDataVA+mem.PageSize))
	}
	got, err := c.AS.Peek(start, before)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0x5C {
			t.Fatalf("byte %d = %#x not stored before the fault", i, b)
		}
	}
}

func TestRepStosDescending(t *testing.T) {
	// DF set: the bulk path is ascending-only, so this exercises the
	// per-element loop's descending walk end to end.
	const n = 32
	end := uint64(dcDataVA + 256)
	c := repCPU(t, isa.Instr{Op: isa.STD}, isa.Stos(1, true), isa.Ret())
	c.Regs[isa.RAX] = 0x7E
	c.Regs[isa.RDI], c.Regs[isa.RCX] = end, n
	mustReturn(t, c, 100)
	got, err := c.AS.Peek(end-n+1, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0x7E {
			t.Fatalf("descending fill byte %d = %#x", i, b)
		}
	}
	if c.Regs[isa.RDI] != end-n {
		t.Errorf("rdi = %#x, want %#x", c.Regs[isa.RDI], end-n)
	}
}

func TestRepStosUserKernelBoundary(t *testing.T) {
	// A user-mode fill whose second element lands exactly on UpperHalf must
	// trap #GP at UpperHalf with one element's progress — the bulk path may
	// never batch across the privilege boundary (pages are aligned to it,
	// so a run never straddles; the first kernel-half element falls back to
	// the element loop and takes its exact trap).
	as := mem.NewAddressSpace()
	codeVA := uint64(0x400000)
	if _, err := as.Map(codeVA, 1, mem.PermX); err != nil {
		t.Fatal(err)
	}
	lastUser := UpperHalf - mem.PageSize
	if _, err := as.Map(lastUser, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(codeVA, encodeProg(t, isa.Stos(8, true), isa.Ret())); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.Mode = User
	c.RIP = codeVA
	c.Regs[isa.RAX] = 1
	c.Regs[isa.RDI], c.Regs[isa.RCX] = UpperHalf-8, 2
	res := c.Run(100)
	if res.Trap == nil || res.Trap.Kind != TrapProtection {
		t.Fatalf("want protection trap, got %+v", res)
	}
	if res.Trap.Addr != UpperHalf {
		t.Errorf("trap addr %#x, want %#x", res.Trap.Addr, UpperHalf)
	}
	if c.Regs[isa.RDI] != UpperHalf || c.Regs[isa.RCX] != 1 {
		t.Errorf("partial progress rdi=%#x rcx=%d, want rdi=%#x rcx=1",
			c.Regs[isa.RDI], c.Regs[isa.RCX], UpperHalf)
	}
}
