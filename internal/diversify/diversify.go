// Package diversify implements the "kaslr" compiler plugin: fine-grained
// KASLR for the kernel setting (§5.2).
//
// Foundational diversification (§5.2.1): every function is sliced into code
// blocks — first at call sites, then (if the permutation entropy lg(B!) is
// still below the target k) at basic blocks, and finally padded with
// phantom blocks (random int3 runs, never executed thanks to explicit jmps)
// until at least k bits of entropy are reached. The blocks are then randomly
// permuted and the CFG re-wired with connector jmps. Functions always begin
// with an entry phantom block — a single jmp to the real first code block —
// so a leaked function pointer reveals no gadgets from the entry block.
// At the section level, function order is permuted by DiversifyProgram.
//
// Return address protection (§5.2.2): either XOR encryption against a
// per-function key in the unreadable .krxkeys region, or decoy return
// addresses paired with tripwire-carrying phantom instructions.
package diversify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// RAProt selects the return-address protection scheme.
type RAProt int

// Return-address protection schemes.
const (
	RANone    RAProt = iota
	RAEncrypt        // X: xor against per-function xkey (§5.2.2)
	RADecoy          // D: decoy return addresses + tripwires (§5.2.2)
)

func (p RAProt) String() string {
	switch p {
	case RAEncrypt:
		return "X"
	case RADecoy:
		return "D"
	}
	return "none"
}

// DefaultK is the default per-function randomization entropy in bits (the
// paper's default for the kaslr plugin).
const DefaultK = 30

// EntryLabel is the label of the entry phantom block prepended to every
// diversified function.
const EntryLabel = "krx.f0"

// Config parameterizes diversification.
type Config struct {
	K      int // entropy bits per function (0 = DefaultK)
	RAProt RAProt
	// RegRand permutes each function's free scratch registers (the §5.3
	// complement against call-preceded gadget chaining).
	RegRand bool
	Rand    *rand.Rand // randomness source; nil = fixed seed (tests only)
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// Stats aggregates diversification statistics.
type Stats struct {
	Funcs            int
	SingleBlockFuncs int // functions that were a single basic block (≈12% in Linux)
	CallSliceEnough  int // entropy target met by call-site slicing alone
	BasicSliced      int // functions needing basic-block granularity
	Padded           int // functions needing phantom padding
	PhantomBlocks    int // phantom padding blocks added
	TripwireBlocks   int // decoy phantom-instruction carriers added
	ChunksTotal      int
	MinEntropyBits   float64 // smallest per-function entropy achieved
	CallSites        int     // instrumented call sites (decoys)
	RetSites         int     // instrumented returns (epilogues)
	RegRandFuncs     int     // functions with permuted scratch registers
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Funcs += o.Funcs
	s.SingleBlockFuncs += o.SingleBlockFuncs
	s.CallSliceEnough += o.CallSliceEnough
	s.BasicSliced += o.BasicSliced
	s.Padded += o.Padded
	s.PhantomBlocks += o.PhantomBlocks
	s.TripwireBlocks += o.TripwireBlocks
	s.ChunksTotal += o.ChunksTotal
	s.CallSites += o.CallSites
	s.RetSites += o.RetSites
	s.RegRandFuncs += o.RegRandFuncs
	if s.MinEntropyBits == 0 || (o.MinEntropyBits > 0 && o.MinEntropyBits < s.MinEntropyBits) {
		s.MinEntropyBits = o.MinEntropyBits
	}
}

// LgFactorial returns log2(n!), the permutation entropy of n blocks.
func LgFactorial(n int) float64 {
	var s float64
	for i := 2; i <= n; i++ {
		s += math.Log2(float64(i))
	}
	return s
}

// chunksNeeded returns the minimal chunk count whose permutation entropy
// reaches k bits.
func chunksNeeded(k int) int {
	n := 1
	for LgFactorial(n) < float64(k) {
		n++
	}
	return n
}

// KeySym returns the xkey symbol name for a function.
func KeySym(fn string) string { return "xkey." + fn }

// Diversify applies fine-grained KASLR to fn in place. The sfi pass (if
// any) must run first: diversification rewires and permutes whatever it is
// given, and call-site instrumentation assumes no later pass inserts code
// between the tripwire load and the call.
func Diversify(fn *ir.Function, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	var s Stats
	if fn.NoDiversify {
		return s, nil
	}
	if fn.BlockIndex(EntryLabel) >= 0 {
		return s, fmt.Errorf("diversify: %s already diversified", fn.Name)
	}
	s.Funcs = 1
	if len(fn.Blocks) == 1 {
		s.SingleBlockFuncs = 1
	}

	if cfg.RegRand {
		applyRegRand(fn, cfg.Rand)
		s.RegRandFuncs++
	}

	// Return-address protection first (paper §6: slicing and permutation
	// are the final step).
	switch cfg.RAProt {
	case RAEncrypt:
		applyEncryption(fn, &s)
	case RADecoy:
		applyDecoys(fn, cfg.Rand, &s)
	}

	// Slice at call sites: split blocks so every call ends its block.
	splitAtCalls(fn)

	// Materialize fallthrough edges so block order becomes irrelevant.
	materializeFallthroughs(fn)

	// Choose granularity.
	entryLabel := fn.Blocks[0].Label
	chunks := callSiteChunks(fn)
	need := chunksNeeded(cfg.K)
	switch {
	case len(chunks) >= need:
		s.CallSliceEnough = 1
	default:
		// Basic-block granularity: every block its own chunk.
		chunks = make([][]*ir.Block, len(fn.Blocks))
		for i, b := range fn.Blocks {
			chunks[i] = []*ir.Block{b}
		}
		if len(chunks) >= need {
			s.BasicSliced = 1
		} else {
			// Pad with phantom blocks: random-length int3 runs, never
			// executed (no label references them; explicit jmps connect
			// all real blocks).
			s.Padded = 1
			for i := 0; len(chunks) < need; i++ {
				n := 1 + cfg.Rand.Intn(16)
				ins := make([]isa.Instr, n)
				for j := range ins {
					ins[j] = isa.Int3()
				}
				pb := &ir.Block{Label: fmt.Sprintf("krx.pad.%d", i), Ins: ins}
				chunks = append(chunks, []*ir.Block{pb})
				s.PhantomBlocks++
			}
		}
	}
	s.ChunksTotal = len(chunks)
	ent := LgFactorial(len(chunks))
	if s.MinEntropyBits == 0 || ent < s.MinEntropyBits {
		s.MinEntropyBits = ent
	}

	// Permute the chunks.
	cfg.Rand.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })

	// Rebuild: the entry phantom block (jmp to the real entry) comes
	// first so the function symbol leaks nothing but a jmp.
	blocks := []*ir.Block{{Label: EntryLabel, Ins: []isa.Instr{isa.Jmp(entryLabel)}}}
	for _, ch := range chunks {
		blocks = append(blocks, ch...)
	}
	fn.Blocks = blocks

	// Phantom padding blocks have no terminator and may now sit last;
	// terminate them so the function stays well-formed (an int3 run is
	// its own tripwire, but Validate wants explicit control flow).
	for _, b := range fn.Blocks {
		if len(b.Ins) > 0 && b.Ins[len(b.Ins)-1].Op == isa.INT3 {
			b.Ins = append(b.Ins, isa.Jmp(entryLabel))
		}
	}
	return s, fn.Validate()
}

// splitAtCalls splits every block after each call instruction, so calls
// always terminate their code block (needed both for slicing granularity
// and so decoy tripwires and return sites are perturbed independently).
func splitAtCalls(fn *ir.Function) {
	var out []*ir.Block
	n := 0
	for _, b := range fn.Blocks {
		cur := &ir.Block{Label: b.Label}
		for _, in := range b.Ins {
			cur.Ins = append(cur.Ins, in)
			if in.IsCall() {
				out = append(out, cur)
				cur = &ir.Block{Label: fmt.Sprintf("krx.cs.%d", n)}
				n++
			}
		}
		if len(cur.Ins) > 0 {
			out = append(out, cur)
		}
		// A block ending exactly at a call leaves an empty synthesized
		// continuation: drop it — nothing references its label, and the
		// fallthrough connector will target the next original block.
	}
	fn.Blocks = out
}

// materializeFallthroughs appends an explicit jmp to every block that falls
// through to its successor, making block order permutable.
func materializeFallthroughs(fn *ir.Function) {
	for i, b := range fn.Blocks {
		if _, hasTerm := b.Terminator(); hasTerm {
			if term, _ := b.Terminator(); term.Op == isa.JCC && i+1 < len(fn.Blocks) {
				// Conditional terminator still falls through.
				b.Ins = append(b.Ins, isa.Jmp(fn.Blocks[i+1].Label))
			}
			continue
		}
		if i+1 < len(fn.Blocks) {
			b.Ins = append(b.Ins, isa.Jmp(fn.Blocks[i+1].Label))
		}
	}
}

// callSiteChunks groups consecutive blocks into chunks delimited by calls
// (a chunk is a run of blocks ending with a call-terminated block).
func callSiteChunks(fn *ir.Function) [][]*ir.Block {
	var chunks [][]*ir.Block
	var cur []*ir.Block
	for _, b := range fn.Blocks {
		cur = append(cur, b)
		if len(b.Ins) > 0 {
			last := b.Ins[len(b.Ins)-1]
			// After materializeFallthroughs a call block ends
			// [call][jmp]; check the penultimate instruction too.
			isCallEnd := last.IsCall()
			if !isCallEnd && len(b.Ins) >= 2 && last.Op == isa.JMP {
				isCallEnd = b.Ins[len(b.Ins)-2].IsCall()
			}
			if isCallEnd {
				chunks = append(chunks, cur)
				cur = nil
			}
		}
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// DiversifyProgram diversifies every function and permutes the function
// order within the program (function permutation at the section level).
func DiversifyProgram(prog *ir.Program, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	var total Stats
	for _, f := range prog.Funcs {
		st, err := Diversify(f, cfg)
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	cfg.Rand.Shuffle(len(prog.Funcs), func(i, j int) {
		prog.Funcs[i], prog.Funcs[j] = prog.Funcs[j], prog.Funcs[i]
	})
	return total, nil
}
