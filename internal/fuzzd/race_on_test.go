//go:build race

package fuzzd

// raceEnabled scales the heavyweight determinism tests down when the race
// detector multiplies per-iteration cost: the same properties are asserted
// over a smaller grid.
const raceEnabled = true
