package store

import (
	"container/list"
	"sync"
)

// Mem is the in-memory layer: a byte-quota LRU over raw blobs. It is what
// a process-private cache looks like through the Store interface — and the
// upper layer of the usual Layered(Mem, Disk) composition, keeping hot
// artifacts decoded-distance from the consumer while the disk layer holds
// the cross-process truth.
type Mem struct {
	mu    sync.Mutex
	quota uint64 // 0 = unlimited
	bytes uint64
	lru   *list.List               // front = most recently used
	ents  map[string]*list.Element // addr -> element holding *memEnt
	stats Stats
	pins  map[string]int
}

type memEnt struct {
	addr string
	data []byte
}

// NewMem returns an empty in-memory store bounded by quota bytes
// (0 = unlimited).
func NewMem(quota uint64) *Mem {
	return &Mem{
		quota: quota,
		lru:   list.New(),
		ents:  make(map[string]*list.Element),
		pins:  make(map[string]int),
	}
}

func addr(kind string, key Key) string { return kind + "/" + key.Hash() }

// Get returns the blob under (kind, key) and marks it most recently used.
func (m *Mem) Get(kind string, key Key) ([]byte, error) {
	a := addr(kind, key)
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.ents[a]
	if !ok {
		m.stats.Misses++
		return nil, &NotFoundError{Kind: kind, Key: key}
	}
	m.stats.Hits++
	m.lru.MoveToFront(el)
	return el.Value.(*memEnt).data, nil
}

// Put stores data, evicting LRU unpinned entries if the quota would be
// exceeded. Callers must not mutate data afterwards (the store aliases it).
func (m *Mem) Put(kind string, key Key, data []byte) error {
	a := addr(kind, key)
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.ents[a]; ok {
		e := el.Value.(*memEnt)
		m.bytes -= uint64(len(e.data))
		e.data = data
		m.bytes += uint64(len(data))
		m.lru.MoveToFront(el)
	} else {
		el = m.lru.PushFront(&memEnt{addr: a, data: data})
		m.ents[a] = el
		m.bytes += uint64(len(data))
	}
	m.stats.Puts++
	m.evictLocked()
	return nil
}

// evictLocked removes LRU unpinned entries until the quota holds. Pinned
// entries are skipped; if only pinned entries remain the store runs over
// quota rather than tearing an in-flight artifact out from under a build.
func (m *Mem) evictLocked() {
	if m.quota == 0 {
		return
	}
	for el := m.lru.Back(); el != nil && m.bytes > m.quota; {
		prev := el.Prev()
		e := el.Value.(*memEnt)
		if m.pins[e.addr] == 0 {
			m.lru.Remove(el)
			delete(m.ents, e.addr)
			m.bytes -= uint64(len(e.data))
			m.stats.Evictions++
		}
		el = prev
	}
}

// Pin marks (kind, key) unevictable until released.
func (m *Mem) Pin(kind string, key Key) func() {
	a := addr(kind, key)
	m.mu.Lock()
	m.pins[a]++
	m.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			if m.pins[a]--; m.pins[a] == 0 {
				delete(m.pins, a)
			}
			m.evictLocked()
			m.mu.Unlock()
		})
	}
}

// Stats returns a snapshot of the layer's counters.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Bytes = m.bytes
	s.Pins = uint64(len(m.pins))
	return s
}

// Close is a no-op for the memory layer.
func (m *Mem) Close() error { return nil }
