package isa

// The cycle-cost model. Costs are calibrated, not measured silicon: they are
// chosen so that the *relative* penalties reported by the kR^X paper emerge
// from the simulation. The load-bearing relationships are:
//
//   - pushfq/popfq are expensive (spilling/filling %rflags; the reason the
//     O1 optimization exists and why SFI(-O0) overheads are enormous);
//   - a cmp+ja range-check pair costs two simple-ALU cycles;
//   - bndcu costs a single cycle (MPX "almost eliminates" the overhead);
//   - mode switches (syscall/sysret) dominate a null system call, so a few
//     range checks on the entry path produce a ~10% latency hit under
//     SFI(-O3) but well under 1% under MPX;
//   - rep string operations amortize: one range check per rep instruction,
//     so bulk-copy bandwidth suffers far less than per-call latency.
const (
	costALU      = 1   // register/immediate arithmetic, mov, lea, cmp, test
	costLoad     = 4   // memory load
	costStore    = 3   // memory store
	costRMW      = 6   // read-modify-write (xor mem)
	costPush     = 2   // push/pop
	costPushfq   = 16  // pushfq/popfq: %rflags spill/fill is expensive
	costBranch   = 2   // conditional/unconditional direct branch
	costIndirect = 6   // indirect call/jump (BTB-miss-ish)
	costCallRet  = 4   // direct call / ret
	costBndc     = 1   // MPX bound check
	costBndMove  = 3   // MPX bound make/spill/fill
	costStrBase  = 12  // string op setup
	costStrUnit  = 1   // per-element cost of a rep string op (per 8 bytes)
	costSyscall  = 120 // syscall/sysret mode switch (each way)
	costIret     = 220 // exception return
	costMSR      = 90  // wrmsr/rdmsr
	costTrap     = 600 // exception delivery (#PF, #BR, #BP)
	costHalt     = 10
)

// Cost returns the base cycle cost of executing the instruction once.
// For REP-prefixed string operations this is the setup cost; the CPU adds
// StrUnitCost per element executed.
func (in Instr) Cost() uint64 {
	switch in.Op {
	case NOP, CLD, STD, SWAPGS:
		return costALU
	case MOVri, MOVrr, LEA, ADDri, ADDrr, SUBri, SUBrr, ANDri, ANDrr,
		ORri, ORrr, XORri, XORrr, SHLri, SHRri, SARri, NOTr, NEGr,
		CMPri, CMPrr, TESTrr, TESTri, INCr, DECr:
		return costALU
	case IMULrr, IMULri:
		return 3
	case MOVrm, ADDrm, SUBrm, XORrm, CMPrm, CMPmi:
		return costLoad
	case MOVmr, MOVmi:
		return costStore
	case XORmr:
		return costRMW
	case PUSH, POP:
		return costPush
	case PUSHFQ, POPFQ:
		return costPushfq
	case JMP:
		return costBranch
	case JCC:
		return costBranch
	case JMPR, JMPM, CALLM:
		return costIndirect
	case CALLR:
		return costIndirect
	case CALL, RET, RETI:
		return costCallRet
	case MOVS, STOS, LODS, CMPS, SCAS:
		return costStrBase
	case SYSCALL, SYSRET:
		return costSyscall
	case IRET:
		return costIret
	case WRMSR, RDMSR:
		return costMSR
	case BNDCU, BNDCL:
		return costBndc
	case BNDMK, BNDSTX, BNDLDX:
		return costBndMove
	case HLT:
		return costHalt
	case INT3, UD2:
		return costALU
	}
	return costALU
}

// StrUnitCost is the per-element cost of a REP-prefixed string operation,
// charged by the CPU on top of the base cost.
const StrUnitCost = costStrUnit

// TrapCost is the cycle cost of delivering an exception to the kernel.
const TrapCost = costTrap
