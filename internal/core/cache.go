package core

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/store"
)

// BuildKey renders the canonical build-cache key of a configuration: every
// field that influences the compiled image, and nothing else. Runtime-only
// knobs (WatchdogBudget, FaultPlan) are deliberately excluded — two kernels
// that differ only in runtime policy share one compiled image.
func (c Config) BuildKey() string {
	return fmt.Sprintf("xom=%d,sfi=%d,div=%t,k=%d,ra=%d,rr=%t,fc=%t,seed=%d,guard=%d,kaslr=%t",
		c.XOM, c.SFILevel, c.Diversify, c.K, c.RAProt, c.RegRand, c.FullCoverage,
		c.Seed, c.GuardSize, c.KASLR)
}

// ImageCache memoizes Build results by typed store.Key{ProgID, BuildKey},
// optionally backed by a persistent store.Store: on a miss it first tries
// to decode a serialized BuildResult from the backing store, and only
// compiles (then Puts the encoded result) when the store misses too. With
// a nil backing store it behaves exactly like the old in-memory Cache.
//
// A BuildResult handed out by the cache is shared: callers must treat the
// Prog, Image, and stats as immutable, installing the image into fresh
// address spaces rather than mutating it (link.Image.Install only reads).
//
// Concurrent requests for the same key are single-flighted: exactly one
// build (or store fetch) runs, the rest block on it — Stats().Builds
// therefore counts distinct (corpus, config) compilations, which the sweep
// tests and the CI warm-start gate assert on.
type ImageCache struct {
	mu      sync.Mutex
	entries map[store.Key]*cacheEntry
	stats   store.Stats
	backing store.Store // may be nil: purely in-memory
}

type cacheEntry struct {
	once sync.Once
	res  *BuildResult
	err  error
}

// NewImageCache returns an empty build cache over an optional backing
// store (nil = in-memory only).
func NewImageCache(backing store.Store) *ImageCache {
	return &ImageCache{entries: make(map[store.Key]*cacheEntry), backing: backing}
}

// Cache is the deprecated name for ImageCache.
//
// Deprecated: use ImageCache with an explicit (possibly nil) backing
// store. This alias exists for one PR to keep external callers compiling
// and will be removed.
type Cache = ImageCache

// NewCache returns an empty in-memory build cache.
//
// Deprecated: use NewImageCache(nil), or NewImageCache(disk) to persist
// images across processes.
func NewCache() *Cache { return NewImageCache(nil) }

// Build returns the cached BuildResult for (progID, cfg), fetching it from
// the backing store or compiling prog on the first request. progID must
// identify the corpus contents: callers that reuse one in-memory program
// pass a stable name; callers with distinct programs must pass distinct
// IDs or the cache would alias them.
func (c *ImageCache) Build(prog *ir.Program, progID string, cfg Config) (*BuildResult, error) {
	key := store.Key{ProgID: progID, BuildKey: cfg.BuildKey()}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	} else {
		c.stats.Hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = c.load(prog, key, cfg)
	})
	return e.res, e.err
}

// load fills a cache entry: backing-store fetch first, compile on miss.
// The key is pinned for the duration so quota eviction cannot tear the
// blob out between the Put and a concurrent process's Get.
func (c *ImageCache) load(prog *ir.Program, key store.Key, cfg Config) (*BuildResult, error) {
	if c.backing != nil {
		release := c.backing.Pin(store.KindImage, key)
		defer release()
		if data, err := c.backing.Get(store.KindImage, key); err == nil {
			res, derr := DecodeBuildResult(data)
			if derr == nil {
				// The blob stores only build-affecting state; runtime-only
				// knobs come from the requesting config, matching the
				// first-caller semantics of the in-memory cache.
				res.Config = cfg
				return res, nil
			}
			// Undecodable payload inside a valid container (schema drift):
			// fall through to a rebuild, which overwrites the blob.
		}
	}
	res, err := Build(prog, cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Builds++
	c.mu.Unlock()
	if c.backing != nil {
		if data, eerr := EncodeBuildResult(res); eerr == nil {
			// A failed Put degrades persistence, not correctness.
			_ = c.backing.Put(store.KindImage, key, data)
		}
	}
	return res, nil
}

// Stats folds the cache's own counters (Builds, singleflight Hits) with
// the backing store's, giving one snapshot for the store.* gauges.
func (c *ImageCache) Stats() store.Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	if c.backing != nil {
		s = s.Add(c.backing.Stats())
	}
	return s
}
