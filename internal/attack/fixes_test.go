package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

// TestScanGadgetsShardedMatchesSequential pins the sharding contract: the
// parallel scan must reproduce the single-threaded scan byte for byte —
// same gadgets, same order — on a full kernel image.
func TestScanGadgetsShardedMatchesSequential(t *testing.T) {
	k := boot(t, core.Vanilla)
	code, base := k.Img.Text, k.Sym("_text")
	seq := scanRange(code, base, 0, len(code))
	par := ScanGadgets(code, base)
	if len(seq) != len(par) {
		t.Fatalf("sharded scan found %d gadgets, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].Addr != par[i].Addr || seq[i].String() != par[i].String() {
			t.Fatalf("gadget %d diverges: sequential %#x %q, sharded %#x %q",
				i, seq[i].Addr, seq[i], par[i].Addr, par[i])
		}
	}
}

// TestSmashWithHarvestedRACycleAccounting pins the repaired cycle
// accounting: every attempt — successful or not — reports the nonzero
// emulated cost of its syscalls, and the cost is measured per attempt, not
// cumulatively.
func TestSmashWithHarvestedRACycleAccounting(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, Seed: 731})
	a := &Attacker{K: k}
	ok, cycles := a.SmashWithHarvestedRA(k.Sym("do_set_uid"), 64)
	if !ok {
		t.Fatal("unprotected return address: harvested-RA smash must land")
	}
	if cycles == 0 {
		t.Fatal("attempt consumed zero cycles (accounting dropped)")
	}
	_, cycles2 := a.SmashWithHarvestedRA(k.Sym("do_set_uid"), 64)
	if cycles2 == 0 || cycles2 > 2*cycles {
		t.Fatalf("second attempt reports %d cycles vs %d for the first: not per-attempt accounting", cycles2, cycles)
	}
}

// TestSmashWithHarvestedRAFailsUnderEncryption: under X, the same bet is
// garbled but its cost is still charged.
func TestSmashWithHarvestedRAFailsUnderEncryption(t *testing.T) {
	k := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 732})
	a := &Attacker{K: k}
	before := a.UID()
	_, cycles := a.SmashWithHarvestedRA(k.Sym("do_set_uid"), 64)
	if a.UID() == 0 && before != 0 {
		t.Fatal("encrypted return address must garble the harvested pointer")
	}
	if cycles == 0 {
		t.Fatal("failed attempt must still report its cost")
	}
}

// TestSubstitutionFailureModesAreDistinguished pins the done/swapped
// discrimination in the substitution attack: the success path reports the
// redirected return site, and a failing run must name one of the three
// distinct failure modes instead of collapsing everything into "swap
// window missed".
func TestSubstitutionFailureModesAreDistinguished(t *testing.T) {
	k, err := kernel.Boot(core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 733})
	if err != nil {
		t.Fatal(err)
	}
	r := Substitution(k)
	if r.Success {
		return // the §5.3 race won: nothing to distinguish
	}
	valid := map[string]bool{
		"ciphertext swap write failed":     true,
		"swap window missed":               true,
		"victim never returned after swap": true,
	}
	if r.Stage == "ciphertext-swap" && !valid[r.Detail] {
		t.Fatalf("ciphertext-swap failure reports %q, not one of the three distinguished modes", r.Detail)
	}
}
