package cpu

import "repro/internal/mem"

// Fork returns a new CPU over as — a copy-on-write fork of this CPU's
// address space (mem.AddressSpace.Fork) — with identical architectural
// state and a clone of the warm decode cache and superblocks, so a forked
// worker starts hot instead of re-decoding kernel text.
//
// Cache sharing is safe for the same reason it is safe to share the frames
// themselves: cloned dcPages keep pointing at the parent's frozen frames,
// whose content generation can never change again, so the fgen/mgen
// validation that already guards every dispatch accepts them in the child
// until the child itself patches code (a CoW break swaps the frame behind a
// MapGen bump, which the same validation catches). Entry slices are shared
// with the parent capacity-clamped — the parent appending more decodes
// reallocates rather than touching the shared backing array — and block
// slices are deep-copied because chain links are re-pointed in place as
// they sever and re-form.
//
// Probes and trap probes are deliberately not carried over, mirroring
// State/RestoreState: observers are per-worker wiring, not machine state.
// Cumulative decode/block statistics restart at zero in the child.
func (c *CPU) Fork(as *mem.AddressSpace) *CPU {
	nc := &CPU{
		AS:             as,
		Regs:           c.Regs,
		RIP:            c.RIP,
		RFlags:         c.RFlags,
		Bnd:            c.Bnd,
		Mode:           c.Mode,
		Cycles:         c.Cycles,
		Instrs:         c.Instrs,
		SyscallEntry:   c.SyscallEntry,
		FaultEntry:     c.FaultEntry,
		KernelStackTop: c.KernelStackTop,
		SMEP:           c.SMEP,
		StopOnSysret:   c.StopOnSysret,
		StopOnIret:     c.StopOnIret,
		MPXKernel:      c.MPXKernel,
		KernelBnd0:     c.KernelBnd0,
		Pending:        c.Pending,
		savedUserRSP:   c.savedUserRSP,
		savedUserBnd0:  c.savedUserBnd0,
		inSyscall:      c.inSyscall,
		blocks:         c.blocks,
		compile:        c.compile,
		blockHot:       c.blockHot,
		seedHot:        c.seedHot, // read-only after SeedHotProfile; aliasable
		MSRs:           make(map[uint64]uint64, len(c.MSRs)),
	}
	for k, v := range c.MSRs {
		nc.MSRs[k] = v
	}
	if c.dc != nil {
		nc.dc = c.dc.clone(&nc.dstats)
	}
	return nc
}

// clone copies the decode cache for a forked CPU, wiring it to the child's
// own cumulative counters (stats; the child restarts at zero — see
// DecodeCacheStats). Page structs are copied by value (the offset-index,
// block-index, and heat arrays come along), entry slices are shared
// capacity-clamped, and block slices are deep-copied with their chain links
// re-pointed at the cloned pages — a link into a page the clone does not
// carry is severed, never followed into the parent's cache. The dcBlock
// value copy shares each block's ents and comp arrays with the parent:
// both are immutable after formation, and compiled thunks capture only
// decoded operand constants (never a *CPU), so the child executes the
// parent's thunks against its own state.
func (dc *decodeCache) clone(stats *DecodeCacheStats) *decodeCache {
	nd := newDecodeCache(stats)
	remap := make(map[*dcPage]*dcPage, len(dc.pages))
	for base, p := range dc.pages {
		np := new(dcPage)
		*np = *p
		np.entries = p.entries[:len(p.entries):len(p.entries)]
		if len(p.blocks) > 0 {
			np.blocks = make([]dcBlock, len(p.blocks))
			copy(np.blocks, p.blocks)
		} else {
			np.blocks = nil
		}
		nd.pages[base] = np
		remap[p] = np
	}
	for _, np := range nd.pages {
		for i := range np.blocks {
			remapLink(&np.blocks[i].taken, remap)
			remapLink(&np.blocks[i].fall, remap)
		}
	}
	return nd
}

func remapLink(l *blkLink, remap map[*dcPage]*dcPage) {
	if l.p == nil {
		return
	}
	if np, ok := remap[l.p]; ok {
		l.p = np
		return
	}
	*l = blkLink{}
}
