package isa

import "testing"

// TestEveryOpcodeRoundTrips constructs a minimal valid instance of every
// defined opcode and checks Length/Encode/Decode agreement — no opcode
// table entry may rot.
func TestEveryOpcodeRoundTrips(t *testing.T) {
	instance := func(op Opcode) Instr {
		in := Instr{Op: op}
		switch op.Format() {
		case fmtReg, fmtRegImm64, fmtRegImm32, fmtRegImm8:
			in.Dst = RAX
		case fmtRegReg:
			in.Dst, in.Src = RAX, RBX
		case fmtRegMem:
			in.Dst, in.M = RCX, Mem(RSI, 8)
		case fmtMemReg:
			in.Dst, in.M = RCX, Mem(RDI, 8)
		case fmtMemImm32, fmtMem:
			in.M = Mem(RDI, 8)
		case fmtCondRel32:
			in.CC = CondA
		case fmtString:
			in.SF = MakeStrFlags(8, true)
		case fmtBndMem:
			in.Bnd = BND0
			in.M = Mem(RSI, 8)
		}
		return in
	}
	count := 0
	for b := 0; b < 256; b++ {
		op := Opcode(b)
		if !op.Valid() {
			continue
		}
		count++
		in := instance(op)
		enc, err := in.Encode(nil)
		if err != nil {
			t.Errorf("opcode %s (0x%02x): encode: %v", op, b, err)
			continue
		}
		if len(enc) != in.Length() {
			t.Errorf("opcode %s: Length %d != encoded %d", op, in.Length(), len(enc))
		}
		dec, n, err := Decode(enc)
		if err != nil {
			t.Errorf("opcode %s: decode: %v", op, err)
			continue
		}
		if n != len(enc) || dec.Op != op {
			t.Errorf("opcode %s: decoded %s, %d bytes", op, dec.Op, n)
		}
		if in.String() == "" || in.Cost() == 0 {
			t.Errorf("opcode %s: missing String/Cost", op)
		}
	}
	if count < 60 {
		t.Fatalf("suspiciously few valid opcodes: %d", count)
	}
}

// TestOpcodeMetadataConsistency: every opcode that reads memory has a
// memory operand or is a string op; terminators never also report IsCall.
func TestOpcodeMetadataConsistency(t *testing.T) {
	for b := 0; b < 256; b++ {
		op := Opcode(b)
		if !op.Valid() {
			continue
		}
		in := Instr{Op: op, Dst: RAX, Src: RBX, M: Mem(RSI, 0), CC: CondE, Bnd: BND0}
		if in.IsCall() && in.IsTerminator() {
			t.Errorf("%s: both call and terminator", op)
		}
		if in.ReadsMemory() {
			isString := op == MOVS || op == LODS || op == CMPS || op == SCAS
			if in.MemOperand() == nil && !isString {
				t.Errorf("%s: reads memory but has no memory operand", op)
			}
		}
	}
}
