package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// jmpOver returns a raw rip-relative JMP skipping the given instructions
// (isa.Jmp takes a label and cannot Encode; raw Imm displacements can).
func jmpOver(t *testing.T, skip ...isa.Instr) isa.Instr {
	t.Helper()
	return isa.Instr{Op: isa.JMP, Imm: int64(len(encodeProg(t, skip...)))}
}

// TestBlockHotnessGate pins the formation gate: with the default threshold,
// the first threshold-1 passes over an entry point single-step (deferring
// formation cost that one-shot code never amortizes), and the threshold-th
// pass forms and dispatches the block. Results are identical throughout.
func TestBlockHotnessGate(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 5),
		isa.AddRI(isa.RAX, 7),
		isa.Ret(),
	)
	const offsets = 3 // every instruction start is a dispatch point while cold
	for i := 1; i < DefaultBlockHotThreshold; i++ {
		mustReturn(t, c, 100)
		if got := c.Reg(isa.RAX); got != 12 {
			t.Fatalf("pass %d: rax = %d, want 12", i, got)
		}
		s := c.BlockStats()
		if s.Formed != 0 || s.Dispatches != 0 || s.Instrs != 0 {
			t.Fatalf("pass %d must stay cold: %+v", i, s)
		}
		if want := uint64(i * offsets); s.Cold != want {
			t.Fatalf("pass %d: Cold = %d, want %d", i, s.Cold, want)
		}
		resetRaw(t, c)
	}
	mustReturn(t, c, 100)
	if got := c.Reg(isa.RAX); got != 12 {
		t.Fatalf("hot pass: rax = %d, want 12", got)
	}
	s := c.BlockStats()
	if s.Formed != 1 || s.Dispatches != 1 || s.Instrs != 3 || s.Blocks != 1 {
		t.Fatalf("threshold-th pass must form and dispatch one block: %+v", s)
	}
}

// TestBlockChainStraightLine drives both successor slots: a taken JMP over
// dead code (taken link), then a not-taken JCC (fallthrough link). The first
// pass resolves the links lazily; the second follows them from the cache
// with no severs, and every instruction still dispatches through blocks at
// single-step-identical results.
func TestBlockChainStraightLine(t *testing.T) {
	dead := isa.Nop()
	prog := []isa.Instr{
		// Block A: ends in a taken JMP over the dead NOP.
		isa.MovRI(isa.RAX, 5),
		jmpOver(t, dead),
		dead,
		// Block B: ADD leaves rax=12 (ZF clear), so the JCC falls through.
		isa.AddRI(isa.RAX, 7),
		{Op: isa.JCC, CC: isa.CondE, Imm: 0},
		// Block C.
		isa.MovRI(isa.RBX, 3),
		isa.Ret(),
	}

	ref := rawCPU(t, mem.PermX, prog...)
	ref.SetBlockEngine(false)
	refRes := mustReturn(t, ref, 100)

	c := rawCPU(t, mem.PermX, prog...)
	c.SetBlockHotThreshold(1)
	res1 := mustReturn(t, c, 100)
	s1 := c.BlockStats()
	if s1.Chained != 2 || s1.Severed != 0 || s1.Dispatches != 3 {
		t.Fatalf("first pass must chain A->B (taken) and B->C (fallthrough): %+v", s1)
	}
	resetRaw(t, c)
	res2 := mustReturn(t, c, 100)
	s2 := c.BlockStats()
	if s2.Chained != 4 || s2.Severed != 0 || s2.Formed != s1.Formed {
		t.Fatalf("second pass must follow cached links without re-forming: %+v", s2)
	}
	if s2.Instrs != c.Instrs {
		t.Fatalf("all %d instructions should dispatch via blocks, got %d", c.Instrs, s2.Instrs)
	}
	if c.Reg(isa.RAX) != ref.Reg(isa.RAX) || c.Reg(isa.RBX) != ref.Reg(isa.RBX) {
		t.Fatalf("chained run diverged: rax=%d rbx=%d want rax=%d rbx=%d",
			c.Reg(isa.RAX), c.Reg(isa.RBX), ref.Reg(isa.RAX), ref.Reg(isa.RBX))
	}
	for _, res := range []*RunResult{res1, res2} {
		if res.Instrs != refRes.Instrs || res.Cycles != refRes.Cycles {
			t.Fatalf("counters diverge: %+v vs reference %+v", res, refRes)
		}
	}
}

// TestBlockChainStaleSuccessor is the chain-invalidation gate: a chained
// successor's frame is overwritten between dispatches. The predecessor's
// page is untouched, so its block (and the cached link inside it) survives —
// following the link must fail the frame-generation check, sever, and
// re-resolve through the full lookup, executing the NEW bytes.
func TestBlockChainStaleSuccessor(t *testing.T) {
	const succVA = dcCodeVA + mem.PageSize
	c := rawCPU(t, mem.PermRWX,
		isa.MovRI(isa.RCX, succVA),
		isa.Instr{Op: isa.JMPR, Dst: isa.RCX},
	)
	c.SetBlockHotThreshold(1)
	install := func(imm int64) {
		t.Helper()
		if err := c.AS.Poke(succVA, encodeProg(t, isa.MovRI(isa.RAX, imm), isa.Ret())); err != nil {
			t.Fatal(err)
		}
	}

	install(1)
	mustReturn(t, c, 100)
	if got := c.Reg(isa.RAX); got != 1 {
		t.Fatalf("first pass: rax = %d, want 1", got)
	}
	s1 := c.BlockStats()
	if s1.Chained == 0 || s1.Severed != 0 {
		t.Fatalf("first pass must chain into the successor: %+v", s1)
	}

	install(42) // bumps only the successor frame's generation
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if got := c.Reg(isa.RAX); got != 42 {
		t.Fatalf("chain executed stale successor code: rax = %d, want 42", got)
	}
	s2 := c.BlockStats()
	if s2.Severed != 1 {
		t.Fatalf("stale link must sever exactly once: %+v", s2)
	}
	if s2.Formed != s1.Formed+1 {
		t.Fatalf("severed successor must re-form once: %+v after %+v", s2, s1)
	}
}

// TestBlockChainLimit: chaining must respect the Run instruction budget
// exactly — a chained successor larger than the remaining budget breaks the
// chain, and the dispatcher finishes by single-stepping to the precise
// limit, resumable with single-run-identical totals.
func TestBlockChainLimit(t *testing.T) {
	dead := isa.Nop()
	c := rawCPU(t, mem.PermX,
		// Block A: 2 instructions.
		isa.MovRI(isa.RAX, 1),
		jmpOver(t, dead),
		dead,
		// Block B: 3 instructions — larger than the post-A budget below.
		isa.MovRI(isa.RBX, 2),
		isa.MovRI(isa.RCX, 3),
		isa.Ret(),
	)
	c.SetBlockHotThreshold(1)
	res := c.Run(3)
	if res.Reason != StopLimit || res.Instrs != 3 {
		t.Fatalf("limit run: %+v", res)
	}
	if c.Reg(isa.RBX) != 2 || c.Reg(isa.RCX) == 3 {
		t.Fatalf("limit stopped at the wrong instruction: rbx=%d rcx=%d",
			c.Reg(isa.RBX), c.Reg(isa.RCX))
	}
	res2 := mustReturn(t, c, 100)
	if res.Instrs+res2.Instrs != 5 {
		t.Fatalf("resume: %+v after %+v", res2, res)
	}
}

// TestBlockStatsConsistency pins the satellite-audit semantics: the
// cumulative counters (everything but Blocks) are monotone and survive page
// flushes, SetBlockEngine toggles, and SetDecodeCache toggles; Blocks is a
// live recount that drops to zero whenever the formed blocks die (flush,
// disable) and comes back only by re-forming.
func TestBlockStatsConsistency(t *testing.T) {
	prog := []isa.Instr{
		isa.MovRI(isa.RAX, 5),
		isa.AddRI(isa.RAX, 7),
		isa.Ret(),
	}
	c := rawCPU(t, mem.PermRWX, prog...)
	c.SetBlockHotThreshold(1)

	cumulative := func(s BlockStats) BlockStats { s.Blocks = 0; return s }
	mono := func(step string, prev, cur BlockStats) {
		t.Helper()
		p, q := cumulative(prev), cumulative(cur)
		if q.Formed < p.Formed || q.Dispatches < p.Dispatches || q.Instrs < p.Instrs ||
			q.Aborts < p.Aborts || q.Chained < p.Chained || q.Severed < p.Severed ||
			q.Cold < p.Cold {
			t.Fatalf("%s: cumulative counters went backwards: %+v -> %+v", step, prev, cur)
		}
	}

	mustReturn(t, c, 100)
	s1 := c.BlockStats()
	if s1.Blocks == 0 || s1.Formed == 0 {
		t.Fatalf("warm run must form blocks: %+v", s1)
	}

	// A frame rewrite kills the formed blocks (live count) but no history.
	if err := c.AS.Poke(dcCodeVA, encodeProg(t, prog...)); err != nil {
		t.Fatal(err)
	}
	s2 := c.BlockStats()
	mono("poke", s1, s2)
	if s2.Blocks != 0 {
		t.Fatalf("stale blocks must not count as live: %+v", s2)
	}
	if cumulative(s2) != cumulative(s1) {
		t.Fatalf("a flush must not touch cumulative counters: %+v -> %+v", s1, s2)
	}

	// Re-running re-forms over the new bytes.
	resetRaw(t, c)
	mustReturn(t, c, 100)
	s3 := c.BlockStats()
	mono("re-form", s2, s3)
	if s3.Blocks == 0 || s3.Formed != s1.Formed+1 {
		t.Fatalf("rewritten page must re-form exactly once: %+v", s3)
	}

	// Engine toggle: live blocks drop, history survives, re-enable re-forms.
	c.SetBlockEngine(false)
	s4 := c.BlockStats()
	mono("disable", s3, s4)
	if s4.Blocks != 0 || cumulative(s4) != cumulative(s3) {
		t.Fatalf("disable must only drop live blocks: %+v", s4)
	}
	c.SetBlockEngine(true)
	resetRaw(t, c)
	mustReturn(t, c, 100)
	s5 := c.BlockStats()
	mono("re-enable", s4, s5)
	if s5.Blocks == 0 || s5.Formed <= s4.Formed {
		t.Fatalf("re-enabled engine must re-form: %+v", s5)
	}

	// Cache toggle: same story, and the heat counters restart from cold.
	c.SetDecodeCache(false)
	s6 := c.BlockStats()
	mono("cache off", s5, s6)
	if s6.Blocks != 0 || cumulative(s6) != cumulative(s5) {
		t.Fatalf("cache off must only drop live blocks: %+v", s6)
	}
	c.SetDecodeCache(true)
	resetRaw(t, c)
	mustReturn(t, c, 100)
	s7 := c.BlockStats()
	mono("cache on", s6, s7)
	if s7.Blocks == 0 {
		t.Fatalf("fresh cache must re-form on the next run: %+v", s7)
	}
}

// TestBlockHotThresholdClamp pins the setter's edge cases.
func TestBlockHotThresholdClamp(t *testing.T) {
	c := New(mem.NewAddressSpace())
	for _, tc := range []struct{ in, want int }{
		{0, DefaultBlockHotThreshold},
		{-5, DefaultBlockHotThreshold},
		{1, 1},
		{255, 255},
		{1000, 255},
	} {
		c.SetBlockHotThreshold(tc.in)
		if got := c.BlockHotThreshold(); got != tc.want {
			t.Errorf("SetBlockHotThreshold(%d): got %d, want %d", tc.in, got, tc.want)
		}
	}
}
