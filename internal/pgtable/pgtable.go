// Package pgtable models the x86 PAE page-table entry flag handling that
// Appendix A of the paper discusses: 64-bit entries whose most significant
// bit is the eXecute-Disable (XD) bit, the coalescing of 4KB pages into 2MB
// pages (and splitting back), and the pgprot conversion helpers between the
// two granularities.
//
// The appendix describes a critical Linux bug the kR^X authors found while
// developing kR^X-KAS: pgprot_large_2_4k() and pgprot_4k_2_large() built
// the converted flag mask in an `unsigned long` local, which is 32 bits
// wide on x86 — silently clearing the XD bit (bit 63) and marking pages
// executable (a W^X violation). This package implements the correct 64-bit
// conversion and retains a faithful reimplementation of the buggy 32-bit
// variant for the regression test. It also reproduces the second appendix
// bug: the module-area sanity check that compared against a complemented
// MODULES_LEN and therefore never failed.
package pgtable

// Page-table entry flag bits (PAE format).
const (
	FlagPresent  uint64 = 1 << 0
	FlagWrite    uint64 = 1 << 1
	FlagUser     uint64 = 1 << 2
	FlagAccessed uint64 = 1 << 5
	FlagDirty    uint64 = 1 << 6
	// FlagPSE marks a 2MB (large) page in a PMD entry.
	FlagPSE uint64 = 1 << 7
	// FlagPAT4K is the PAT bit position in a 4KB PTE...
	FlagPAT4K uint64 = 1 << 7
	// ...which collides with PSE, so 2MB entries carry PAT at bit 12.
	FlagPATLarge uint64 = 1 << 12
	FlagGlobal   uint64 = 1 << 8
	// FlagXD is eXecute-Disable: the *most significant* bit of the 64-bit
	// entry — precisely the bit a 32-bit flags mask drops.
	FlagXD uint64 = 1 << 63
)

// AddrMask extracts the physical address bits of an entry.
const AddrMask uint64 = 0x000FFFFFFFFFF000

// FlagsMask extracts the flag bits.
const FlagsMask = ^AddrMask

// Large2_4k converts 2MB-page protection flags to the equivalent 4KB-page
// flags: PSE is dropped, and the PAT bit moves from bit 12 to bit 7. The
// computation is carried out in 64 bits, preserving XD — the fixed version
// of the routine from Appendix A.
func Large2_4k(flags uint64) uint64 {
	val := flags &^ (FlagPSE | FlagPATLarge) // 64-bit local: XD survives
	if flags&FlagPATLarge != 0 {
		val |= FlagPAT4K
	}
	return val
}

// Small4k_2Large converts 4KB-page protection flags to 2MB-page flags:
// PSE is set and PAT moves from bit 7 to bit 12.
func Small4k_2Large(flags uint64) uint64 {
	val := flags &^ FlagPAT4K
	val |= FlagPSE
	if flags&FlagPAT4K != 0 {
		val |= FlagPATLarge
	}
	return val
}

// BuggyLarge2_4k reimplements the vulnerable routine: the mask is built in
// a 32-bit local (`unsigned long` on 32-bit x86), so every flag bit above
// bit 31 — most critically XD — is silently cleared, leaving the resulting
// 4KB pages executable. Retained for the Appendix A regression test and
// the krxstats demonstration; never used by the simulator.
func BuggyLarge2_4k(flags uint64) uint64 {
	val := uint32(flags) &^ uint32(FlagPSE|FlagPATLarge) // 32-bit local: XD lost
	if flags&FlagPATLarge != 0 {
		val |= uint32(FlagPAT4K)
	}
	return uint64(val)
}

// Entry is one page-table entry.
type Entry uint64

// Addr returns the physical address bits.
func (e Entry) Addr() uint64 { return uint64(e) & AddrMask }

// Flags returns the flag bits.
func (e Entry) Flags() uint64 { return uint64(e) & FlagsMask }

// Present reports the present bit.
func (e Entry) Present() bool { return uint64(e)&FlagPresent != 0 }

// Large reports whether the entry maps a 2MB page.
func (e Entry) Large() bool { return uint64(e)&FlagPSE != 0 }

// NX reports whether the entry forbids execution.
func (e Entry) NX() bool { return uint64(e)&FlagXD != 0 }

// Make builds an entry from a physical address and flags.
func Make(addr, flags uint64) Entry {
	return Entry((addr & AddrMask) | (flags & FlagsMask))
}

// entriesPer2MB is how many 4KB entries one large page covers.
const entriesPer2MB = 512

// Split expands a 2MB entry into 512 4KB entries with converted flags.
func Split(large Entry) []Entry {
	flags := Large2_4k(large.Flags())
	out := make([]Entry, entriesPer2MB)
	for i := range out {
		out[i] = Make(large.Addr()+uint64(i)*4096, flags)
	}
	return out
}

// Coalesce merges 512 physically contiguous 4KB entries with identical
// flags into one 2MB entry. It returns false when the run is not mergeable
// (mixed flags, non-contiguous, misaligned).
func Coalesce(small []Entry) (Entry, bool) {
	if len(small) != entriesPer2MB {
		return 0, false
	}
	base := small[0]
	if base.Addr()%(2<<20) != 0 {
		return 0, false
	}
	for i, e := range small {
		if e.Flags() != base.Flags() || e.Addr() != base.Addr()+uint64(i)*4096 {
			return 0, false
		}
	}
	return Make(base.Addr(), Small4k_2Large(base.Flags())), true
}

// ModulesLen is the size of the module area in the simulated layout.
const ModulesLen uint64 = 1 << 30

// ModuleFits is the fixed module-size sanity check: an image larger than
// the modules region must be rejected before any allocation is attempted.
func ModuleFits(imageSize uint64) bool {
	return imageSize <= ModulesLen
}

// BuggyModuleFits reimplements the second Appendix A bug: on 32-bit
// kernels MODULES_LEN was mistakenly assigned its complementary value, so
// the check compared against an enormous bound and never failed.
func BuggyModuleFits(imageSize uint64) bool {
	const buggyModulesLen = ^uint32(1 << 30) // complementary value
	return imageSize <= uint64(buggyModulesLen)
}
