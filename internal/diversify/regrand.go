package diversify

import (
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Register randomization: the complement §5.3 suggests for foiling
// call-preceded gadget chaining ("they can be easily complemented with a
// register randomization scheme"). Each function's use of the free scratch
// registers is permuted by a per-function random permutation, so a gadget
// that "pops into %r8" in one build pops into %r10 in another — harvested
// call-preceded code can no longer be chained with pre-planned register
// semantics.
//
// The permutation set is {%r8, %r9, %r10}: caller-saved scratch registers
// that, by the KX64 kernel ABI, never carry values across function
// boundaries (arguments travel in %rdi/%rsi/%rdx, results in %rax, and
// %r11 is the reserved instrumentation scratch). Renaming them uniformly
// within one function is therefore semantics-preserving.

// regRandSet is the permutable scratch-register set.
var regRandSet = []isa.Reg{isa.R8, isa.R9, isa.R10}

// applyRegRand permutes the scratch registers of fn in place.
func applyRegRand(fn *ir.Function, rng *rand.Rand) {
	perm := rng.Perm(len(regRandSet))
	m := make(map[isa.Reg]isa.Reg, len(regRandSet))
	identity := true
	for i, p := range perm {
		m[regRandSet[i]] = regRandSet[p]
		if i != p {
			identity = false
		}
	}
	if identity {
		// Force a non-identity permutation: rotate by one.
		for i := range regRandSet {
			m[regRandSet[i]] = regRandSet[(i+1)%len(regRandSet)]
		}
	}
	ren := func(r isa.Reg) isa.Reg {
		if nr, ok := m[r]; ok {
			return nr
		}
		return r
	}
	for _, b := range fn.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			// Register fields are renamed wherever the format uses them;
			// renaming an unused field is harmless (it is ignored).
			switch in.Op {
			case isa.RET, isa.RETI, isa.NOP, isa.HLT, isa.INT3, isa.UD2,
				isa.PUSHFQ, isa.POPFQ, isa.SYSCALL, isa.SYSRET, isa.IRET,
				isa.CLD, isa.STD, isa.WRMSR, isa.RDMSR, isa.SWAPGS,
				isa.MOVS, isa.STOS, isa.LODS, isa.CMPS, isa.SCAS:
				// no GPR operand fields (string ops use fixed registers)
			default:
				in.Dst = ren(in.Dst)
				in.Src = ren(in.Src)
			}
			if m := in.MemOperand(); m != nil {
				if m.HasBase() {
					m.Base = ren(m.Base)
				}
				if m.HasIndex() {
					m.Index = ren(m.Index)
				}
			}
		}
	}
}
