package fuzz

import (
	"reflect"
	"sort"
	"testing"
)

// TestForkReportIdentical is the fork-mode acceptance property: a campaign
// whose workers are copy-on-write forks of one golden kernel renders a
// report byte-identical to the same campaign with boot-per-worker kernels,
// at any worker count. The CI determinism gate runs the same comparison
// through the krxfuzz binary.
func TestForkReportIdentical(t *testing.T) {
	for _, tc := range []struct {
		workers int
		trace   bool
	}{
		{workers: 1}, {workers: 4}, {workers: 2, trace: true},
	} {
		boot := campaignOpts(120)
		boot.Workers = tc.workers
		boot.Trace = tc.trace
		rb, err := Fuzz(boot)
		if err != nil {
			t.Fatalf("workers=%d boot-mode: %v", tc.workers, err)
		}
		fork := boot
		fork.Fork = true
		rf, err := Fuzz(fork)
		if err != nil {
			t.Fatalf("workers=%d fork-mode: %v", tc.workers, err)
		}
		if rb.String() != rf.String() {
			t.Fatalf("workers=%d trace=%v: fork-mode report diverges:\n--- boot ---\n%s--- fork ---\n%s",
				tc.workers, tc.trace, rb, rf)
		}
	}
}

// sortedCover returns a sorted copy of an unordered coverage set so two
// executions can be compared element-wise.
func sortedCover(c []uint64) []uint64 {
	s := append([]uint64(nil), c...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// FuzzForkEquivalence drives randomized iteration prefixes through a forked
// executor and a fresh-boot executor of the same campaign and requires
// bit-identical outcomes — crash bucket, fault count, syscall count, audit
// findings, and the exact coverage set.
func FuzzForkEquivalence(f *testing.F) {
	f.Add(int64(42), uint8(6))
	f.Add(int64(7), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		iters := int(n%8) + 1
		opts := campaignOpts(iters)
		opts.Seed = seed
		if err := opts.Normalize(); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewExecutor(opts)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := NewExecutor(opts)
		if err != nil {
			t.Fatal(err)
		}
		child, err := golden.Fork()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			prog := PickProg(opts.Seed, i, nil, fresh.Kaddrs())
			want, err := fresh.Exec(prog, InjSeed(opts.Seed, i))
			if err != nil {
				t.Fatalf("iter %d fresh: %v", i, err)
			}
			got, err := child.Exec(PickProg(opts.Seed, i, nil, child.Kaddrs()), InjSeed(opts.Seed, i))
			if err != nil {
				t.Fatalf("iter %d fork: %v", i, err)
			}
			got.Cover, want.Cover = sortedCover(got.Cover), sortedCover(want.Cover)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: fork result diverges from fresh boot:\nfork:  %+v\nfresh: %+v", i, got, want)
			}
		}
	})
}
