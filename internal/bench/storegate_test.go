package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestStoreHitPerfGate holds the artifact store's headline number: a boot
// served from a populated on-disk store by a fresh ImageCache must be
// cheaper than re-running the link pipeline. The gate applies only to the
// protected preset — Vanilla's pipeline has no SFI or diversification
// passes, so its link cost sits at the blob-decode cost and the ratio is a
// coin flip; the store's win is precisely the pass work it skips. Like the
// other perf gates it is a same-host relative comparison, armed only under
// KRX_PERF_GATE.
func TestStoreHitPerfGate(t *testing.T) {
	if os.Getenv("KRX_PERF_GATE") == "" {
		t.Skip("perf gate disarmed (set KRX_PERF_GATE=1 to gate store-hit boot cost)")
	}
	presets := core.Presets()
	r, err := measureStore(presets[len(presets)-1])
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: cold %d ns, store hit %d ns (%.1fx)", r.Name, r.ColdNs, r.HitNs, r.StoreHitSpeedup)
	if r.StoreHitSpeedup <= 1 {
		t.Errorf("%s: store hit is not cheaper than a cold link (%.2fx, want > 1x)",
			r.Name, r.StoreHitSpeedup)
	}
}

// TestStoreBaselineRecorded keeps the committed BENCH_emulator.json honest
// without timing anything: the baseline must carry the v6 store rows, and
// the recorded numbers must show the store-hit win the gate above enforces
// live. Always on — it reads the file, it does not measure.
func TestStoreBaselineRecorded(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_emulator.json"))
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base EmuReport
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	if base.SchemaVersion != EmuSchemaVersion {
		t.Fatalf("baseline schema_version %d, want %d: regenerate with krxbench -json",
			base.SchemaVersion, EmuSchemaVersion)
	}
	if len(base.Store) < 2 {
		t.Fatalf("baseline has %d store rows, want >= 2 (vanilla + full preset)", len(base.Store))
	}
	for _, r := range base.Store {
		if r.ColdNs <= 0 || r.HitNs <= 0 || r.StoreHitSpeedup <= 0 {
			t.Errorf("%s: degenerate timing row: %+v", r.Name, r)
		}
		// Protected presets must show the win; Vanilla's link is nearly
		// free, so its ratio only has to be sane (see TestStoreHitPerfGate).
		if r.Name != "store/Vanilla" && r.StoreHitSpeedup <= 1 {
			t.Errorf("%s: recorded store_hit_speedup %.2fx, want > 1x", r.Name, r.StoreHitSpeedup)
		}
	}
}
