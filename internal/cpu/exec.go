package cpu

import (
	"encoding/binary"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mem"
)

// srcVal resolves the second operand of reg/imm ALU forms.
func immSx(in *isa.Instr) uint64 { return uint64(in.Imm) }

// exec executes one decoded instruction whose successor address is next.
func (c *CPU) exec(in *isa.Instr, next uint64) (StopReason, *Trap) {
	ea := func() uint64 { return c.effAddr(in.M, next) }
	trapUD := func() (StopReason, *Trap) {
		return StepContinue, &Trap{Kind: TrapUndefined, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
	}
	trapGP := func() (StopReason, *Trap) {
		return StepContinue, &Trap{Kind: TrapProtection, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
	}

	switch in.Op {
	case isa.NOP, isa.SWAPGS:
		// no effect

	case isa.HLT:
		if c.Mode != Kernel {
			return trapGP()
		}
		return StopHalt, nil

	case isa.INT3:
		return StepContinue, &Trap{Kind: TrapBreakpoint, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}

	case isa.UD2:
		return trapUD()

	// --- data movement ---
	case isa.MOVri:
		c.Regs[in.Dst] = uint64(in.Imm)
	case isa.MOVrr:
		c.Regs[in.Dst] = c.Regs[in.Src]
	case isa.MOVrm:
		v, t := c.load(ea(), in.AccessSize())
		if t != nil {
			return StepContinue, t
		}
		c.Regs[in.Dst] = v
	case isa.MOVmr:
		if t := c.store(ea(), c.Regs[in.Dst], in.AccessSize()); t != nil {
			return StepContinue, t
		}
	case isa.MOVmi:
		if t := c.store(ea(), uint64(in.Imm), in.AccessSize()); t != nil {
			return StepContinue, t
		}
	case isa.LEA:
		c.Regs[in.Dst] = ea()

	// --- stack ---
	case isa.PUSH:
		if t := c.push(c.Regs[in.Dst]); t != nil {
			return StepContinue, t
		}
	case isa.POP:
		v, t := c.pop()
		if t != nil {
			return StepContinue, t
		}
		c.Regs[in.Dst] = v
	case isa.PUSHFQ:
		if t := c.push(c.RFlags); t != nil {
			return StepContinue, t
		}
	case isa.POPFQ:
		v, t := c.pop()
		if t != nil {
			return StepContinue, t
		}
		c.RFlags = v

	// --- arithmetic ---
	case isa.ADDri, isa.ADDrr, isa.ADDrm:
		a := c.Regs[in.Dst]
		var b uint64
		switch in.Op {
		case isa.ADDri:
			b = immSx(in)
		case isa.ADDrr:
			b = c.Regs[in.Src]
		case isa.ADDrm:
			v, t := c.load(ea(), in.AccessSize())
			if t != nil {
				return StepContinue, t
			}
			b = v
		}
		r := a + b
		c.Regs[in.Dst] = r
		c.flagsAdd(a, b, r)
	case isa.SUBri, isa.SUBrr, isa.SUBrm:
		a := c.Regs[in.Dst]
		var b uint64
		switch in.Op {
		case isa.SUBri:
			b = immSx(in)
		case isa.SUBrr:
			b = c.Regs[in.Src]
		case isa.SUBrm:
			v, t := c.load(ea(), in.AccessSize())
			if t != nil {
				return StepContinue, t
			}
			b = v
		}
		r := a - b
		c.Regs[in.Dst] = r
		c.flagsSub(a, b, r)
	case isa.ANDri:
		c.Regs[in.Dst] &= immSx(in)
		c.flagsLogic(c.Regs[in.Dst])
	case isa.ANDrr:
		c.Regs[in.Dst] &= c.Regs[in.Src]
		c.flagsLogic(c.Regs[in.Dst])
	case isa.ORri:
		c.Regs[in.Dst] |= immSx(in)
		c.flagsLogic(c.Regs[in.Dst])
	case isa.ORrr:
		c.Regs[in.Dst] |= c.Regs[in.Src]
		c.flagsLogic(c.Regs[in.Dst])
	case isa.XORri:
		c.Regs[in.Dst] ^= immSx(in)
		c.flagsLogic(c.Regs[in.Dst])
	case isa.XORrr:
		c.Regs[in.Dst] ^= c.Regs[in.Src]
		c.flagsLogic(c.Regs[in.Dst])
	case isa.XORrm:
		v, t := c.load(ea(), in.AccessSize())
		if t != nil {
			return StepContinue, t
		}
		c.Regs[in.Dst] ^= v
		c.flagsLogic(c.Regs[in.Dst])
	case isa.XORmr:
		// read-modify-write: xor %reg into memory.
		a := ea()
		v, t := c.load(a, in.AccessSize())
		if t != nil {
			return StepContinue, t
		}
		r := v ^ c.Regs[in.Dst]
		if t := c.store(a, r, in.AccessSize()); t != nil {
			return StepContinue, t
		}
		c.flagsLogic(r)
	case isa.SHLri:
		sh := uint(in.Imm) & 63
		v := c.Regs[in.Dst]
		c.RFlags &^= isa.FlagCF | isa.FlagOF
		if sh > 0 && (v>>(64-sh))&1 != 0 {
			c.RFlags |= isa.FlagCF
		}
		c.Regs[in.Dst] = v << sh
		c.setSZP(c.Regs[in.Dst])
	case isa.SHRri:
		sh := uint(in.Imm) & 63
		v := c.Regs[in.Dst]
		c.RFlags &^= isa.FlagCF | isa.FlagOF
		if sh > 0 && (v>>(sh-1))&1 != 0 {
			c.RFlags |= isa.FlagCF
		}
		c.Regs[in.Dst] = v >> sh
		c.setSZP(c.Regs[in.Dst])
	case isa.SARri:
		sh := uint(in.Imm) & 63
		v := int64(c.Regs[in.Dst])
		c.RFlags &^= isa.FlagCF | isa.FlagOF
		if sh > 0 && (v>>(sh-1))&1 != 0 {
			c.RFlags |= isa.FlagCF
		}
		c.Regs[in.Dst] = uint64(v >> sh)
		c.setSZP(c.Regs[in.Dst])
	case isa.NOTr:
		c.Regs[in.Dst] = ^c.Regs[in.Dst]
	case isa.NEGr:
		v := c.Regs[in.Dst]
		c.Regs[in.Dst] = -v
		c.flagsSub(0, v, c.Regs[in.Dst])
	case isa.IMULrr:
		hi, lo := bits.Mul64(c.Regs[in.Dst], c.Regs[in.Src])
		c.Regs[in.Dst] = lo
		c.RFlags &^= isa.FlagCF | isa.FlagOF
		if hi != 0 && hi != ^uint64(0) {
			c.RFlags |= isa.FlagCF | isa.FlagOF
		}
		c.setSZP(lo)
	case isa.IMULri:
		hi, lo := bits.Mul64(c.Regs[in.Dst], immSx(in))
		c.Regs[in.Dst] = lo
		c.RFlags &^= isa.FlagCF | isa.FlagOF
		if hi != 0 && hi != ^uint64(0) {
			c.RFlags |= isa.FlagCF | isa.FlagOF
		}
		c.setSZP(lo)
	case isa.INCr:
		// inc preserves CF (genuine x86 quirk).
		cf := c.RFlags & isa.FlagCF
		a := c.Regs[in.Dst]
		r := a + 1
		c.Regs[in.Dst] = r
		c.flagsAdd(a, 1, r)
		c.RFlags = (c.RFlags &^ isa.FlagCF) | cf
	case isa.DECr:
		cf := c.RFlags & isa.FlagCF
		a := c.Regs[in.Dst]
		r := a - 1
		c.Regs[in.Dst] = r
		c.flagsSub(a, 1, r)
		c.RFlags = (c.RFlags &^ isa.FlagCF) | cf

	// --- comparison ---
	case isa.CMPri:
		a := c.Regs[in.Dst]
		b := immSx(in)
		c.flagsSub(a, b, a-b)
	case isa.CMPrr:
		a, b := c.Regs[in.Dst], c.Regs[in.Src]
		c.flagsSub(a, b, a-b)
	case isa.CMPrm:
		v, t := c.load(ea(), in.AccessSize())
		if t != nil {
			return StepContinue, t
		}
		a := c.Regs[in.Dst]
		c.flagsSub(a, v, a-v)
	case isa.CMPmi:
		v, t := c.load(ea(), in.AccessSize())
		if t != nil {
			return StepContinue, t
		}
		b := immSx(in)
		c.flagsSub(v, b, v-b)
	case isa.TESTrr:
		c.flagsLogic(c.Regs[in.Dst] & c.Regs[in.Src])
	case isa.TESTri:
		c.flagsLogic(c.Regs[in.Dst] & immSx(in))

	// --- control transfer ---
	case isa.JMP:
		c.RIP = next + uint64(in.Imm)
		return StepContinue, nil
	case isa.JMPR:
		c.RIP = c.Regs[in.Dst]
		return StepContinue, nil
	case isa.JMPM:
		v, t := c.load(ea(), 8)
		if t != nil {
			return StepContinue, t
		}
		c.RIP = v
		return StepContinue, nil
	case isa.JCC:
		if in.CC.Eval(c.RFlags) {
			c.RIP = next + uint64(in.Imm)
			return StepContinue, nil
		}
	case isa.CALL:
		if t := c.push(next); t != nil {
			return StepContinue, t
		}
		c.RIP = next + uint64(in.Imm)
		return StepContinue, nil
	case isa.CALLR:
		if t := c.push(next); t != nil {
			return StepContinue, t
		}
		c.RIP = c.Regs[in.Dst]
		return StepContinue, nil
	case isa.CALLM:
		v, t := c.load(ea(), 8)
		if t != nil {
			return StepContinue, t
		}
		if t := c.push(next); t != nil {
			return StepContinue, t
		}
		c.RIP = v
		return StepContinue, nil
	case isa.RET, isa.RETI:
		v, t := c.pop()
		if t != nil {
			return StepContinue, t
		}
		if in.Op == isa.RETI {
			c.Regs[isa.RSP] += uint64(in.Imm)
		}
		if v == StopMagic {
			return StopReturn, nil
		}
		c.RIP = v
		return StepContinue, nil

	// --- string operations ---
	case isa.MOVS, isa.STOS, isa.LODS, isa.CMPS, isa.SCAS:
		if t := c.execString(in); t != nil {
			return StepContinue, t
		}
	case isa.CLD:
		c.RFlags &^= isa.FlagDF
	case isa.STD:
		c.RFlags |= isa.FlagDF

	// --- system ---
	case isa.SYSCALL:
		if c.Mode != User {
			return trapUD()
		}
		if c.SyscallEntry == 0 {
			return trapGP()
		}
		c.EnterKernel(next)
		return StepContinue, nil
	case isa.SYSRET:
		if c.Mode != Kernel || !c.inSyscall {
			return trapUD()
		}
		c.ExitKernel()
		if c.StopOnSysret {
			return StopSysret, nil
		}
		return StepContinue, nil
	case isa.IRET:
		if c.Mode != Kernel {
			return trapGP()
		}
		rip, t := c.pop()
		if t != nil {
			return StepContinue, t
		}
		rsp, t := c.pop()
		if t != nil {
			return StepContinue, t
		}
		rflags, t := c.pop()
		if t != nil {
			return StepContinue, t
		}
		c.RIP, c.RFlags = rip, rflags
		c.Regs[isa.RSP] = rsp
		c.Mode = User
		if c.MPXKernel {
			c.Bnd[0] = c.savedUserBnd0
		}
		if c.StopOnIret {
			return StopIret, nil
		}
		return StepContinue, nil
	case isa.WRMSR:
		if c.Mode != Kernel {
			return trapGP()
		}
		c.MSRs[c.Regs[isa.RCX]] = c.Regs[isa.RDX]<<32 | c.Regs[isa.RAX]&0xFFFFFFFF
	case isa.RDMSR:
		if c.Mode != Kernel {
			return trapGP()
		}
		v := c.MSRs[c.Regs[isa.RCX]]
		c.Regs[isa.RAX] = v & 0xFFFFFFFF
		c.Regs[isa.RDX] = v >> 32

	// --- MPX ---
	case isa.BNDCU:
		if ea() > c.Bnd[in.Bnd].UB {
			return StepContinue, &Trap{Kind: TrapBoundRange, Addr: ea(), RIP: c.RIP, Mode: c.Mode}
		}
	case isa.BNDCL:
		if ea() < c.Bnd[in.Bnd].LB {
			return StepContinue, &Trap{Kind: TrapBoundRange, Addr: ea(), RIP: c.RIP, Mode: c.Mode}
		}
	case isa.BNDMK:
		c.Bnd[in.Bnd] = Bound{LB: 0, UB: ea()}
	case isa.BNDSTX:
		a := ea()
		if t := c.store(a, c.Bnd[in.Bnd].LB, 8); t != nil {
			return StepContinue, t
		}
		if t := c.store(a+8, c.Bnd[in.Bnd].UB, 8); t != nil {
			return StepContinue, t
		}
	case isa.BNDLDX:
		a := ea()
		lb, t := c.load(a, 8)
		if t != nil {
			return StepContinue, t
		}
		ub, t := c.load(a+8, 8)
		if t != nil {
			return StepContinue, t
		}
		c.Bnd[in.Bnd] = Bound{LB: lb, UB: ub}

	default:
		return trapUD()
	}
	c.RIP = next
	return StepContinue, nil
}

// execString executes a (possibly REP-prefixed) string instruction.
func (c *CPU) execString(in *isa.Instr) *Trap {
	w := uint64(in.SF.Width())
	step := int64(w)
	if c.RFlags&isa.FlagDF != 0 {
		step = -step
	}
	one := func() (stop bool, t *Trap) {
		switch in.Op {
		case isa.MOVS:
			v, t := c.load(c.Regs[isa.RSI], uint8(w))
			if t != nil {
				return false, t
			}
			if t := c.store(c.Regs[isa.RDI], v, uint8(w)); t != nil {
				return false, t
			}
			c.Regs[isa.RSI] += uint64(step)
			c.Regs[isa.RDI] += uint64(step)
		case isa.STOS:
			if t := c.store(c.Regs[isa.RDI], c.Regs[isa.RAX], uint8(w)); t != nil {
				return false, t
			}
			c.Regs[isa.RDI] += uint64(step)
		case isa.LODS:
			v, t := c.load(c.Regs[isa.RSI], uint8(w))
			if t != nil {
				return false, t
			}
			c.Regs[isa.RAX] = v
			c.Regs[isa.RSI] += uint64(step)
		case isa.CMPS:
			a, t := c.load(c.Regs[isa.RSI], uint8(w))
			if t != nil {
				return false, t
			}
			b, t := c.load(c.Regs[isa.RDI], uint8(w))
			if t != nil {
				return false, t
			}
			c.flagsSub(a, b, a-b)
			c.Regs[isa.RSI] += uint64(step)
			c.Regs[isa.RDI] += uint64(step)
			return c.RFlags&isa.FlagZF == 0, nil // repe semantics
		case isa.SCAS:
			b, t := c.load(c.Regs[isa.RDI], uint8(w))
			if t != nil {
				return false, t
			}
			a := c.Regs[isa.RAX]
			c.flagsSub(a, b, a-b)
			c.Regs[isa.RDI] += uint64(step)
			return c.RFlags&isa.FlagZF == 0, nil
		}
		return false, nil
	}
	if !in.SF.Rep() {
		_, t := one()
		return t
	}
	if step > 0 && (in.Op == isa.MOVS || in.Op == isa.STOS) {
		return c.execRepBulk(in, w, one)
	}
	// Guard: a hijacked control flow landing mid-stream can execute a rep
	// with a garbage (huge) %rcx; bound the per-instruction work so the
	// emulator cannot hang inside a single Step. Real code never gets
	// near the cap; runaway reps die on #GP like other emulator limits.
	const repCap = 1 << 22
	for n := 0; c.Regs[isa.RCX] != 0; n++ {
		if n >= repCap {
			return &Trap{Kind: TrapProtection, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
		}
		stop, t := one()
		if t != nil {
			return t
		}
		c.Regs[isa.RCX]--
		c.Cycles += isa.StrUnitCost
		if stop {
			break
		}
	}
	return nil
}

// execRepBulk executes an ascending REP MOVS/STOS in page-sized runs: one
// translation + permission check (mem.ReadRun/WriteRun) covers every element
// that fits wholly inside the current source and destination pages, instead
// of one per element — kernel memcpy/memset is the emulator's hottest
// instruction by a wide margin. Architected state evolves exactly as the
// per-element loop's: registers, cycles, and the rep cap advance per
// completed element, a faulting run traps with the registers reflecting the
// elements already done, and every case with per-element-visible semantics —
// an element straddling a page boundary (whose partial byte progress the
// byte-loop store defines), a user-mode access at the kernel boundary, or
// overlapping MOVS operands (ascending element copy replicates patterns;
// memmove would not) — falls back to the one() element closure.
func (c *CPU) execRepBulk(in *isa.Instr, w uint64, one func() (bool, *Trap)) *Trap {
	const repCap = 1 << 22 // same runaway-rep guard as the element loop
	for n := uint64(0); c.Regs[isa.RCX] != 0; {
		if n >= repCap {
			return &Trap{Kind: TrapProtection, Addr: c.RIP, RIP: c.RIP, Mode: c.Mode}
		}
		di := c.Regs[isa.RDI]
		k := (mem.PageSize - di&mem.PageMask) / w
		si := uint64(0)
		if in.Op == isa.MOVS {
			si = c.Regs[isa.RSI]
			if ks := (mem.PageSize - si&mem.PageMask) / w; ks < k {
				k = ks
			}
		}
		if rcx := c.Regs[isa.RCX]; rcx < k {
			k = rcx
		}
		if left := repCap - n; left < k {
			k = left
		}
		bytes := k * w
		if k == 0 || // element straddles a page boundary
			(c.Mode == User && (di >= UpperHalf || (in.Op == isa.MOVS && si >= UpperHalf))) ||
			(in.Op == isa.MOVS && si < di+bytes && di < si+bytes) {
			if _, t := one(); t != nil {
				return t
			}
			c.Regs[isa.RCX]--
			c.Cycles += isa.StrUnitCost
			n++
			continue
		}
		if in.Op == isa.MOVS {
			src, f := c.AS.ReadRun(si)
			if f != nil {
				return &Trap{Kind: TrapPageFault, Addr: si, RIP: c.RIP, Mode: c.Mode, Fault: f}
			}
			dst, f := c.AS.WriteRun(di)
			if f != nil {
				return &Trap{Kind: TrapPageFault, Addr: di, RIP: c.RIP, Mode: c.Mode, Fault: f}
			}
			copy(dst[:bytes], src[:bytes])
			c.Regs[isa.RSI] += bytes
		} else { // STOS
			dst, f := c.AS.WriteRun(di)
			if f != nil {
				return &Trap{Kind: TrapPageFault, Addr: di, RIP: c.RIP, Mode: c.Mode, Fault: f}
			}
			fill := dst[:bytes]
			var eb [8]byte
			binary.LittleEndian.PutUint64(eb[:], c.Regs[isa.RAX])
			copy(fill, eb[:w])
			for done := w; done < bytes; done *= 2 {
				copy(fill[done:], fill[:done])
			}
		}
		c.Regs[isa.RDI] += bytes
		c.Regs[isa.RCX] -= k
		c.Cycles += k * isa.StrUnitCost
		n += k
	}
	return nil
}
