// Command krxfuzz runs the syscall fuzzer with fault injection against the
// simulated kernel: seeded program generation, corpus-guided mutation,
// deterministic fault injection, crash triage with deduplication, and
// reproducer minimization. The same -seed always yields a byte-identical
// report.
//
// Two schedulers are available. The default runs the in-process fuzz.Fuzzer.
// -serve runs the same campaign through the fault-tolerant fuzzd service: a
// manager granting lease-based iteration batches to a worker fleet, with
// heartbeat renewal, expiry reclamation, bounded retries, dead-letter
// quarantine, and worker respawn — all invisible in the report, which stays
// byte-identical to the in-process run. -chaos injects a replayable fault
// schedule into the fleet to demonstrate exactly that.
//
// SIGINT/SIGTERM cancel the campaign gracefully under either scheduler: the
// in-flight batch drains and the report of every completed iteration is
// emitted with "partial": true.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/fuzz"
	"repro/internal/fuzzd"
	"repro/internal/fuzzd/chaos"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sfi"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "krxfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	iters := flag.Int("iters", 1000, "programs to execute")
	seed := flag.Int64("seed", 42, "master seed (generation, mutation, injection)")
	noInject := flag.Bool("no-inject", false, "disable fault injection")
	vanilla := flag.Bool("vanilla", false, "fuzz the unprotected kernel instead of SFI+X")
	budget := flag.Uint64("budget", 0, "per-syscall instruction watchdog budget (0 = default)")
	workers := flag.Int("workers", 1, "parallel execution workers (report is byte-identical for any count)")
	forkMode := flag.Bool("fork", false, "stand workers up as copy-on-write forks of one golden kernel instead of booting each (report is byte-identical either way)")
	jsonOut := flag.Bool("json", false, "emit the report as machine-readable JSON (schema_version marks the format)")
	traceOut := flag.String("trace", "", "record the campaign event stream (byte-identical for any -workers count); write Chrome trace-event JSON to this file")
	stats := flag.Bool("stats", false, "print the observability metric registry after the campaign")
	blocks := flag.Bool("blocks", true, "dispatch through the superblock engine (bit-identical either way; -blocks=false forces per-instruction stepping)")
	compile := flag.Bool("compile", true, "compile hot superblocks into per-opcode thunks (bit-identical either way; -compile=false keeps the interpreted block dispatcher)")
	hot := flag.Int("hot", 0, "block-formation hotness threshold: form a superblock after this many dispatches of an entry point (0 = engine default)")
	serve := flag.Bool("serve", false, "run through the fault-tolerant fuzzd manager/worker service instead of the in-process scheduler")
	leaseTimeout := flag.Duration("lease-timeout", time.Second, "serve: lease deadline; a lease unrenewed for this long is reclaimed and reassigned")
	leaseIters := flag.Int("lease-iters", 16, "serve: iterations per lease grant")
	retries := flag.Int("retries", 3, "serve: regrants of a lost lease before its range is quarantined to the manager")
	chaosSpec := flag.String("chaos", "", "serve: worker fault schedule (kill-one, expire-third, stall-recover, seeded:<seed>); the report must not change")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store directory: kernel images (and block heat profiles) are reused across invocations; a warm run performs zero link builds")
	cacheQuota := flag.String("cache-quota", "1G", "artifact store byte quota, LRU-evicted (accepts K/M/G suffixes; 0 = unlimited)")
	corpusDir := flag.String("corpus-dir", "", "campaign checkpoint store directory: the corpus, coverage, and crash ledger persist at batch boundaries and the campaign resumes from its last checkpoint (incompatible with -trace)")
	cpuProf := flag.String("cpuprofile", "", "write a host pprof CPU profile of the campaign to this file")
	memProf := flag.String("memprofile", "", "write a host pprof heap profile (collected after the campaign) to this file")
	flag.Parse()

	stopProf, err := obs.StartPprof(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	// Graceful shutdown: first SIGINT/SIGTERM cancels the campaign; the
	// in-flight batch drains and a partial report is emitted. A second
	// signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := core.Config{
		XOM: core.XOMSFI, SFILevel: sfi.O3,
		Diversify: true, RAProt: diversify.RAEncrypt,
		Seed:           *seed,
		WatchdogBudget: *budget,
	}
	if *vanilla {
		cfg = core.Config{Seed: *seed, WatchdogBudget: *budget}
	}
	opts := fuzz.Options{
		Iters: *iters, Seed: *seed, Config: cfg, Workers: *workers,
		Fork:  *forkMode,
		Trace: *traceOut != "",
	}
	if !*noInject {
		plan := inject.DefaultPlan(*seed)
		opts.Plan = &plan
	}

	// Persistent artifact store: every Boot(WithCache) in this process —
	// in-process workers and serve-mode fleets alike — builds through it, so
	// a populated store serves the image with zero link builds.
	var artifacts store.Store
	if *cacheDir != "" {
		var err error
		artifacts, err = store.Open(*cacheDir, *cacheQuota)
		if err != nil {
			return err
		}
		defer artifacts.Close()
		kernel.SetBuildCache(core.NewImageCache(artifacts))
	}
	if *corpusDir != "" {
		cs, err := store.Open(*corpusDir, "0")
		if err != nil {
			return err
		}
		defer cs.Close()
		opts.Checkpoint = cs
	}

	if *serve {
		return runServe(ctx, opts, serveFlags{
			leaseTimeout: *leaseTimeout,
			leaseIters:   *leaseIters,
			retries:      *retries,
			chaosSpec:    *chaosSpec,
			blocks:       *blocks,
			compile:      *compile,
			hot:          *hot,
			jsonOut:      *jsonOut,
			traceOut:     *traceOut,
			stats:        *stats,
		})
	}

	f, err := fuzz.New(opts)
	if err != nil {
		return err
	}
	ks, err := f.Kernels()
	if err != nil {
		return err
	}
	// The heat-profile key: one profile per (corpus, build) pair, like the
	// image itself.
	heatKey := store.Key{ProgID: "kernel-corpus", BuildKey: cfg.BuildKey()}
	var seedRips []uint64
	if artifacts != nil && *blocks {
		if data, gerr := artifacts.Get(store.KindHeat, heatKey); gerr == nil {
			seedRips, _ = decodeHeat(data)
		}
	}
	for _, k := range ks {
		k.CPU.SetBlockEngine(*blocks)
		k.CPU.SetBlockCompile(*compile)
		k.CPU.SetBlockHotThreshold(*hot)
		k.CPU.SeedHotProfile(seedRips)
	}
	rep, err := f.RunContext(ctx)
	if err != nil {
		return err
	}
	if artifacts != nil && *blocks {
		// Persist the superblocks this campaign formed so the next warm run
		// skips their hotness ramp (bit-identical either way).
		if k, kerr := f.Kernel(); kerr == nil {
			if rips := k.CPU.HotProfile(); len(rips) > 0 {
				if data, eerr := encodeHeat(rips); eerr == nil {
					_ = artifacts.Put(store.KindHeat, heatKey, data)
				}
			}
		}
	}
	if err := emitReport(rep, *jsonOut); err != nil {
		return err
	}
	if *traceOut != "" {
		b, err := obs.ChromeTrace(rep.Trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "krxfuzz: wrote %d trace events to %s\n", len(rep.Trace), *traceOut)
	}
	if *stats {
		k, err := f.Kernel()
		if err != nil {
			return err
		}
		reg := obs.NewRegistry()
		obs.RegisterCPU(reg, "cpu", k.CPU)
		obs.RegisterDecodeCache(reg, "decode_cache", k.CPU)
		obs.RegisterBlockEngine(reg, "block_engine", k.CPU)
		obs.RegisterDataTLB(reg, "dtlb", k.CPU.AS)
		obs.RegisterStore(reg, "store", kernel.BuildCache())
		if opts.Fork {
			// The first worker is the golden kernel every other worker
			// forked from; its space carries the frame-sharing counters.
			obs.RegisterFork(reg, "fork", kernel.Forks, func() *mem.AddressSpace { return k.CPU.AS })
		}
		fmt.Print(reg.Format())
	}
	return nil
}

type serveFlags struct {
	leaseTimeout time.Duration
	leaseIters   int
	retries      int
	chaosSpec    string
	blocks       bool
	compile      bool
	hot          int
	jsonOut      bool
	traceOut     string
	stats        bool
}

// runServe runs the campaign through the fuzzd service.
func runServe(ctx context.Context, opts fuzz.Options, sf serveFlags) error {
	fn, err := chaos.Parse(sf.chaosSpec)
	if err != nil {
		return err
	}
	m, err := fuzzd.New(fuzzd.Options{
		Fuzz:         opts,
		LeaseIters:   sf.leaseIters,
		LeaseTimeout: sf.leaseTimeout,
		MaxRetries:   sf.retries,
		Chaos:        fn,
		Tune: func(k *kernel.Kernel) {
			k.CPU.SetBlockEngine(sf.blocks)
			k.CPU.SetBlockCompile(sf.compile)
			k.CPU.SetBlockHotThreshold(sf.hot)
		},
	})
	if err != nil {
		return err
	}
	rep, err := m.Run(ctx)
	if err != nil {
		return err
	}
	if err := emitReport(rep, sf.jsonOut); err != nil {
		return err
	}
	if sf.traceOut != "" {
		// Two tracks: the deterministic campaign stream (emulated-cycle
		// timestamps) and the service-plane lease/death/respawn stream (host
		// microseconds since manager start).
		b, err := obs.ChromeTraceTracks(
			obs.Track{Name: "campaign", Pid: 1, Events: rep.Trace},
			obs.Track{Name: "fuzzd", Pid: 2, Events: m.Tracer().Events()},
		)
		if err != nil {
			return err
		}
		if err := os.WriteFile(sf.traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "krxfuzz: wrote %d campaign + %d service trace events to %s\n",
			len(rep.Trace), m.Tracer().Len(), sf.traceOut)
	}
	if sf.stats {
		obs.RegisterStore(m.Registry(), "store", kernel.BuildCache())
		fmt.Print(m.Registry().Format())
	}
	return nil
}

// encodeHeat/decodeHeat serialize a heat profile (sorted block entry RIPs)
// for the artifact store.
func encodeHeat(rips []uint64) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rips); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeHeat(data []byte) ([]uint64, error) {
	var rips []uint64
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rips); err != nil {
		return nil, err
	}
	return rips, nil
}

func emitReport(rep *fuzz.Report, jsonOut bool) error {
	if jsonOut {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Print(rep.String())
	return nil
}
