package store

import (
	"bytes"
	"testing"
)

func TestLayeredPromotesLowerHits(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem(0)
	l := NewLayered(mem, disk)

	k := Key{ProgID: "promote-me"}
	payload := []byte("artifact")
	// Seed only the lower layer — the warm-start situation.
	if err := disk.Put(KindImage, k, payload); err != nil {
		t.Fatal(err)
	}

	got, err := l.Get(KindImage, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q", got)
	}
	// The hit must have been promoted: a direct upper-layer Get now works.
	if _, err := mem.Get(KindImage, k); err != nil {
		t.Fatalf("lower hit not promoted to upper: %v", err)
	}
	// And the second layered Get is a memory hit (disk hit count unchanged).
	before := disk.Stats().Hits
	if _, err := l.Get(KindImage, k); err != nil {
		t.Fatal(err)
	}
	if after := disk.Stats().Hits; after != before {
		t.Fatalf("second Get went to disk (hits %d -> %d)", before, after)
	}
}

func TestLayeredPutWritesBothLayers(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem(0)
	l := NewLayered(mem, disk)
	k := Key{ProgID: "both"}
	if err := l.Put(KindImage, k, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get(KindImage, k); err != nil {
		t.Fatalf("upper layer missing put: %v", err)
	}
	if _, err := disk.Get(KindImage, k); err != nil {
		t.Fatalf("lower layer missing put: %v", err)
	}
}

func TestLayeredMissFallsThrough(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayered(NewMem(0), disk)
	if _, err := l.Get(KindImage, Key{ProgID: "absent"}); !IsNotFound(err) {
		t.Fatalf("want NotFoundError, got %v", err)
	}
}

func TestLayeredStatsFoldsLayers(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem(0)
	l := NewLayered(mem, disk)
	k := Key{ProgID: "stats"}
	if err := l.Put(KindImage, k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Get(KindImage, k); err != nil {
		t.Fatal(err)
	}
	want := mem.Stats().Add(disk.Stats())
	if got := l.Stats(); got != want {
		t.Fatalf("Stats = %+v, want fold %+v", got, want)
	}
	if l.Stats().Puts != 2 {
		t.Fatalf("Puts = %d, want 2 (one per layer)", l.Stats().Puts)
	}
}

func TestLayeredPinPinsBothLayers(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem(0)
	l := NewLayered(mem, disk)
	k := Key{ProgID: "pinned"}
	release := l.Pin(KindImage, k)
	if mem.Stats().Pins != 1 || disk.Stats().Pins != 1 {
		t.Fatalf("pins: mem=%d disk=%d, want 1/1", mem.Stats().Pins, disk.Stats().Pins)
	}
	release()
	if mem.Stats().Pins != 0 || disk.Stats().Pins != 0 {
		t.Fatalf("pins after release: mem=%d disk=%d", mem.Stats().Pins, disk.Stats().Pins)
	}
}
