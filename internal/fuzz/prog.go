package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kernel"
	"repro/internal/mem"
)

// ArgKind types one syscall argument, so the generator produces values that
// exercise the handler's interesting paths (valid, boundary, and hostile)
// instead of uniform 64-bit noise — the syzkaller lesson: typed generation
// reaches depth random bits never do.
type ArgKind int

// Argument kinds.
const (
	ArgNone    ArgKind = iota
	ArgFD              // file-descriptor index
	ArgUserPtr         // pointer into the user buffer/stack
	ArgPathPtr         // pointer to a NUL-terminated path in user memory
	ArgCount           // byte/element count
	ArgKAddr           // kernel address (leak/peek targets)
	ArgSignal          // signal number
	ArgIndex           // small table index (plant slot, pte index)
	ArgValue           // arbitrary 64-bit payload (planted pointers)
	ArgPages           // page count (mmap/munmap)
)

// Call is one syscall invocation: number plus the three register arguments.
type Call struct {
	Nr   uint64
	Args [3]uint64
}

// Prog is a syscall sequence — the fuzzer's unit of execution, corpus
// storage, and minimization.
type Prog struct {
	Calls []Call
}

// Clone returns a deep copy.
func (p *Prog) Clone() *Prog {
	q := &Prog{Calls: make([]Call, len(p.Calls))}
	copy(q.Calls, p.Calls)
	return q
}

// String renders the program as one line of pseudo-C, the reproducer format
// reports print.
func (p *Prog) String() string {
	var b strings.Builder
	for i, c := range p.Calls {
		if i > 0 {
			b.WriteString("; ")
		}
		name := "sys_?"
		var spec *SyscallSpec
		if int(c.Nr) < len(specs) {
			spec = &specs[c.Nr]
			name = spec.Name
		} else {
			name = fmt.Sprintf("sys_%d", c.Nr)
		}
		b.WriteString(name)
		b.WriteByte('(')
		n := 3
		if spec != nil {
			n = len(spec.Args)
		}
		for a := 0; a < n; a++ {
			if a > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%#x", c.Args[a])
		}
		b.WriteByte(')')
	}
	return b.String()
}

// SyscallSpec describes one syscall's fuzzing surface.
type SyscallSpec struct {
	Nr   uint64
	Name string
	Args []ArgKind
}

// specs covers the mini-kernel's full user-reachable surface, indexed by
// syscall number.
var specs = []SyscallSpec{
	kernel.SysNull:       {kernel.SysNull, "sys_null", nil},
	kernel.SysGetpid:     {kernel.SysGetpid, "sys_getpid", nil},
	kernel.SysOpen:       {kernel.SysOpen, "sys_open", []ArgKind{ArgPathPtr}},
	kernel.SysClose:      {kernel.SysClose, "sys_close", []ArgKind{ArgFD}},
	kernel.SysRead:       {kernel.SysRead, "sys_read", []ArgKind{ArgFD, ArgUserPtr, ArgCount}},
	kernel.SysWrite:      {kernel.SysWrite, "sys_write", []ArgKind{ArgFD, ArgUserPtr, ArgCount}},
	kernel.SysSelect:     {kernel.SysSelect, "sys_select", []ArgKind{ArgCount}},
	kernel.SysFstat:      {kernel.SysFstat, "sys_fstat", []ArgKind{ArgFD, ArgUserPtr}},
	kernel.SysMmap:       {kernel.SysMmap, "sys_mmap", []ArgKind{ArgPages}},
	kernel.SysMunmap:     {kernel.SysMunmap, "sys_munmap", []ArgKind{ArgIndex, ArgPages}},
	kernel.SysFork:       {kernel.SysFork, "sys_fork", nil},
	kernel.SysExecve:     {kernel.SysExecve, "sys_execve", []ArgKind{ArgPathPtr}},
	kernel.SysExit:       {kernel.SysExit, "sys_exit", []ArgKind{ArgValue}},
	kernel.SysSigaction:  {kernel.SysSigaction, "sys_sigaction", []ArgKind{ArgSignal, ArgValue}},
	kernel.SysKill:       {kernel.SysKill, "sys_kill", []ArgKind{ArgSignal}},
	kernel.SysPipeRead:   {kernel.SysPipeRead, "sys_pipe_read", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysPipeWrite:  {kernel.SysPipeWrite, "sys_pipe_write", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysUnixRead:   {kernel.SysUnixRead, "sys_unix_read", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysUnixWrite:  {kernel.SysUnixWrite, "sys_unix_write", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysTCPRead:    {kernel.SysTCPRead, "sys_tcp_read", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysTCPWrite:   {kernel.SysTCPWrite, "sys_tcp_write", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysUDPRead:    {kernel.SysUDPRead, "sys_udp_read", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysUDPWrite:   {kernel.SysUDPWrite, "sys_udp_write", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysFtracePeek: {kernel.SysFtracePeek, "sys_ftrace_peek", []ArgKind{ArgKAddr}},
	kernel.SysLeak:       {kernel.SysLeak, "sys_leak", []ArgKind{ArgKAddr}},
	kernel.SysPlant:      {kernel.SysPlant, "sys_plant", []ArgKind{ArgIndex, ArgValue}},
	kernel.SysTrigger:    {kernel.SysTrigger, "sys_trigger", []ArgKind{ArgValue}},
	kernel.SysStackSmash: {kernel.SysStackSmash, "sys_stack_smash", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysGetdents:   {kernel.SysGetdents, "sys_getdents", []ArgKind{ArgUserPtr, ArgCount}},
	kernel.SysUname:      {kernel.SysUname, "sys_uname", []ArgKind{ArgUserPtr}},
	kernel.SysYield:      {kernel.SysYield, "sys_yield", nil},
	kernel.SysBrk:        {kernel.SysBrk, "sys_brk", []ArgKind{ArgValue}},
	kernel.SysTriggerJmp: {kernel.SysTriggerJmp, "sys_trigger_jmp", []ArgKind{ArgValue}},
}

// pathOffsets are user-buffer offsets pre-seeded with path strings by the
// fuzzer's setup (before the boot snapshot), so ArgPathPtr can point at
// valid names, garbage, and an unterminated run.
var pathOffsets = []uint64{0x1000, 0x1040, 0x1080, 0x10c0}

// SetupUserMemory writes the path-string seeds into the user buffer. Call
// once after boot, before taking the execution snapshot.
func SetupUserMemory(k *kernel.Kernel) error {
	paths := [][]byte{
		append([]byte("testfile"), 0),
		append([]byte("dev_zero"), 0),
		append([]byte("no_such_file_with_a_very_long_name_"), 0),
		[]byte(strings.Repeat("A", 64)), // deliberately unterminated
	}
	for i, p := range paths {
		if err := k.WriteUser(pathOffsets[i], p); err != nil {
			return err
		}
	}
	return nil
}

// gen draws one argument value of the given kind. Roughly half the draws
// come from the kind's "interesting" set (valid values, boundaries, hostile
// addresses) and the rest are randomized within the kind's shape.
func (g *generator) gen(kind ArgKind) uint64 {
	r := g.rng
	switch kind {
	case ArgFD:
		return pick(r, 0, 1, 2, 3, 62, 63, 64, 65, 1<<32, ^uint64(0))
	case ArgUserPtr:
		base := kernel.UserBuf
		switch r.Intn(6) {
		case 0:
			return base + uint64(r.Intn(64))*8
		case 1: // last mapped byte region — boundary crossing
			return base + kernel.UserBufPages*mem.PageSize - uint64(1+r.Intn(16))
		case 2: // just past the mapping
			return base + kernel.UserBufPages*mem.PageSize + uint64(r.Intn(64))
		case 3: // user stack
			return kernel.UserStack + uint64(r.Intn(kernel.UserStackPgs))*mem.PageSize
		case 4: // null-ish
			return uint64(r.Intn(2))
		default: // kernel address smuggled as a "user" pointer
			return g.kaddr()
		}
	case ArgPathPtr:
		if r.Intn(4) == 0 {
			return kernel.UserBuf + uint64(r.Intn(1<<16))
		}
		return kernel.UserBuf + pathOffsets[r.Intn(len(pathOffsets))]
	case ArgCount:
		return pick(r, 0, 1, 7, 8, 63, 64, 4095, 4096, 8192, 1<<16, 1<<20, ^uint64(0))
	case ArgKAddr:
		return g.kaddr()
	case ArgSignal:
		return pick(r, 0, 1, 9, 11, 15, 16, 17, 64, ^uint64(0))
	case ArgIndex:
		return pick(r, 0, 1, 2, 3, 4, 7, 8, 511, 512, 1<<20, ^uint64(0))
	case ArgValue:
		switch r.Intn(4) {
		case 0:
			return g.kaddr()
		case 1:
			return uint64(r.Intn(256))
		default:
			return r.Uint64()
		}
	case ArgPages:
		return pick(r, 0, 1, 2, 8, 64, 511, 512, 513, ^uint64(0))
	}
	return r.Uint64()
}

// kaddr draws a kernel-space address of fuzzing interest: symbols, section
// boundaries, the physmap, and unmapped holes.
func (g *generator) kaddr() uint64 {
	r := g.rng
	if len(g.kaddrs) > 0 && r.Intn(3) != 0 {
		base := g.kaddrs[r.Intn(len(g.kaddrs))]
		return base + uint64(r.Intn(64))*8 - uint64(r.Intn(8))*8
	}
	return pick(r,
		0xffff880000000000, // physmap base
		0xffffffff80000000, // kernel base
		0xffff800000000000, // canonical boundary
		0xfffffffffffff000, // top of space
		r.Uint64()|1<<63,   // random upper-half
	)
}

func pick(r *rand.Rand, vals ...uint64) uint64 {
	return vals[r.Intn(len(vals))]
}

// generator produces and mutates programs deterministically from its rng.
type generator struct {
	rng    *rand.Rand
	kaddrs []uint64 // interesting kernel addresses, sorted at construction
}

// Generate builds a fresh program of n typed calls.
func (g *generator) Generate(n int) *Prog {
	p := &Prog{}
	for i := 0; i < n; i++ {
		p.Calls = append(p.Calls, g.genCall())
	}
	return p
}

func (g *generator) genCall() Call {
	r := g.rng
	var c Call
	if r.Intn(16) == 0 {
		// Out-of-table number: the dispatcher's bad-nr path.
		c.Nr = uint64(len(specs) + r.Intn(64))
	} else {
		c.Nr = uint64(r.Intn(len(specs)))
	}
	var spec *SyscallSpec
	if int(c.Nr) < len(specs) {
		spec = &specs[c.Nr]
	}
	for a := 0; a < 3; a++ {
		kind := ArgValue
		if spec != nil {
			if a < len(spec.Args) {
				kind = spec.Args[a]
			} else {
				kind = ArgNone
			}
		}
		if kind == ArgNone {
			c.Args[a] = 0
			continue
		}
		c.Args[a] = g.gen(kind)
	}
	return c
}

// Mutate derives a new program from p by one of the classic corpus
// mutations: insert, delete, replace-arg, duplicate, truncate, or splice
// with a second corpus program.
func (g *generator) Mutate(p *Prog, other *Prog) *Prog {
	r := g.rng
	q := p.Clone()
	switch op := r.Intn(6); {
	case op == 0 || len(q.Calls) == 0: // insert
		at := 0
		if len(q.Calls) > 0 {
			at = r.Intn(len(q.Calls) + 1)
		}
		q.Calls = append(q.Calls[:at], append([]Call{g.genCall()}, q.Calls[at:]...)...)
	case op == 1 && len(q.Calls) > 1: // delete
		at := r.Intn(len(q.Calls))
		q.Calls = append(q.Calls[:at], q.Calls[at+1:]...)
	case op == 2: // mutate one argument in place
		c := &q.Calls[r.Intn(len(q.Calls))]
		a := r.Intn(3)
		kind := ArgValue
		if int(c.Nr) < len(specs) && a < len(specs[c.Nr].Args) {
			kind = specs[c.Nr].Args[a]
		}
		if r.Intn(2) == 0 {
			c.Args[a] = g.gen(kind)
		} else {
			c.Args[a] ^= 1 << uint(r.Intn(64))
		}
	case op == 3: // duplicate a call
		at := r.Intn(len(q.Calls))
		q.Calls = append(q.Calls[:at], append([]Call{q.Calls[at]}, q.Calls[at:]...)...)
	case op == 4 && len(q.Calls) > 1: // truncate
		q.Calls = q.Calls[:1+r.Intn(len(q.Calls)-1)]
	default: // splice
		if other != nil && len(other.Calls) > 0 {
			cut := r.Intn(len(q.Calls) + 1)
			tail := other.Calls[r.Intn(len(other.Calls)):]
			q.Calls = append(q.Calls[:cut:cut], tail...)
		} else {
			q.Calls = append(q.Calls, g.genCall())
		}
	}
	const maxLen = 12
	if len(q.Calls) > maxLen {
		q.Calls = q.Calls[:maxLen]
	}
	return q
}
