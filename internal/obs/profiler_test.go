// External test package: exercising the profiler against a real booted
// kernel needs internal/kernel, which itself imports obs.
package obs_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
)

func bootProfiled(t *testing.T, cfg core.Config) (*kernel.Kernel, *obs.Profiler) {
	t.Helper()
	k, err := kernel.Boot(cfg, kernel.WithCache())
	if err != nil {
		t.Fatal(err)
	}
	p := obs.NewProfiler(k.Img)
	p.Attach(k.CPU)
	return k, p
}

func TestProfilerConservationSyscalls(t *testing.T) {
	k, p := bootProfiled(t, core.Vanilla)
	for i := 0; i < 4; i++ {
		if r := k.Syscall(kernel.SysGetpid); r.Failed {
			t.Fatalf("getpid: %v", r.Run.Reason)
		}
		k.Syscall(kernel.SysNull)
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	c, i := p.Attributed()
	if c != k.CPU.Cycles || i != k.CPU.Instrs {
		t.Fatalf("attributed %d/%d, CPU %d/%d", c, i, k.CPU.Cycles, k.CPU.Instrs)
	}
}

// TestProfilerConservationWithTraps: trap delivery charges isa.TrapCost
// outside any instruction; the TrapProbe channel must attribute it, keeping
// the invariant exact even on faulting runs.
func TestProfilerConservationWithTraps(t *testing.T) {
	k, p := bootProfiled(t, core.Vanilla)
	k.Syscall(kernel.SysGetpid)
	k.TriggerFault(0xdead0000)
	k.Syscall(kernel.SysNull)
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerSyscallDimension(t *testing.T) {
	k, p := bootProfiled(t, core.Vanilla)
	k.Syscall(kernel.SysGetpid)
	rep := p.Report()
	var sawGetpid, sawOutside bool
	for _, s := range rep.BySyscall {
		switch s.Nr {
		case int64(kernel.SysGetpid):
			sawGetpid = s.Cycles > 0
		case obs.NoSyscall:
			sawOutside = s.Cycles > 0
		}
	}
	if !sawGetpid {
		t.Error("no cycles attributed to sys_getpid")
	}
	if !sawOutside {
		t.Error("no cycles attributed outside the syscall window (entry stub runs before SYSCALL)")
	}
}

func TestProfilerReportAndFormat(t *testing.T) {
	k, p := bootProfiled(t, core.Vanilla)
	k.Syscall(kernel.SysGetpid)
	rep := p.Report()
	if rep.TotalCycles != k.CPU.Cycles || rep.Attributed != rep.TotalCycles {
		t.Fatalf("report totals %d/%d, CPU %d", rep.TotalCycles, rep.Attributed, k.CPU.Cycles)
	}
	var total uint64
	for _, f := range rep.Funcs {
		total += f.ExclCycles
		if f.InclCycles < f.ExclCycles && f.Name != "[user]" {
			// Inclusive covers the function's own work plus callees; virtual
			// unwind at report time must keep it >= exclusive.
			t.Errorf("%s: inclusive %d < exclusive %d", f.Name, f.InclCycles, f.ExclCycles)
		}
	}
	if total != rep.Attributed {
		t.Fatalf("function dimension sums to %d, attributed %d", total, rep.Attributed)
	}
	text := rep.Format(5, func(nr int64) string { return kernel.SyscallName(uint64(nr)) })
	for _, want := range []string{"profile:", "sys_getpid", "syscall_entry"} {
		if !strings.Contains(text, want) {
			t.Errorf("format missing %q:\n%s", want, text)
		}
	}
}

// TestProfilerObserverNeutral: attaching the profiler must not change the
// emulated outcome — same cycles, same instruction count, same return value.
func TestProfilerObserverNeutral(t *testing.T) {
	run := func(profiled bool) (uint64, uint64, uint64) {
		k, err := kernel.Boot(core.Vanilla, kernel.WithCache())
		if err != nil {
			t.Fatal(err)
		}
		if profiled {
			p := obs.NewProfiler(k.Img)
			p.Attach(k.CPU)
		}
		r := k.Syscall(kernel.SysGetpid)
		return r.Ret, k.CPU.Cycles, k.CPU.Instrs
	}
	r1, c1, i1 := run(false)
	r2, c2, i2 := run(true)
	if r1 != r2 || c1 != c2 || i1 != i2 {
		t.Fatalf("profiled run diverges: ret %d/%d cycles %d/%d instrs %d/%d", r1, r2, c1, c2, i1, i2)
	}
}
