// Package ir provides the RTL-like intermediate representation that the
// kR^X instrumentation passes operate on: functions made of labelled basic
// blocks of KX64 instructions, with a computable control-flow graph,
// %rflags liveness analysis (driving the O1 pushfq/popfq elimination), and
// dominator computation (driving the O3 cmp/ja coalescing).
//
// The register %r11 is reserved by convention as the instrumentation scratch
// register (range checks, xkey loads, tripwire addresses), mirroring the
// paper's use of %r11; hand-written kernel code must not keep live values
// in it across instructions.
package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Block is a basic block: a label and a straight-line instruction sequence.
// A block either ends in a terminator (jmp, jcc, ret, ...) or falls through
// to the next block in the function's Blocks order. (The diversification
// pass materializes explicit jmps for fallthroughs before permuting.)
type Block struct {
	Label string
	Ins   []isa.Instr
}

// Terminator returns the block's final instruction if it is a terminator.
func (b *Block) Terminator() (isa.Instr, bool) {
	if len(b.Ins) == 0 {
		return isa.Instr{}, false
	}
	last := b.Ins[len(b.Ins)-1]
	return last, last.IsTerminator()
}

// Function is a unit of compilation: an ordered list of basic blocks. The
// first block is the entry point.
type Function struct {
	Name   string
	Blocks []*Block

	// NoInstrument exempts the function from R^X range checks. It is used
	// for the kR^X-cloned accessor functions (the get_next/peek_next
	// family, memcpy/memcmp/bitmap_copy clones) that ftrace, KProbes, and
	// the module loader-linker need for legitimate code reads (§6).
	NoInstrument bool

	// NoDiversify exempts the function from fine-grained KASLR (boot
	// stubs whose entry layout is architectural).
	NoDiversify bool

	// AccessorClone marks the function as one of the kR^X accessor clones
	// (memcpy_krx and friends): these exist precisely to read code
	// legitimately and must never be instrumented, even under the
	// full-coverage (assembler-level) mode of §6.
	AccessorClone bool

	// Phantom marks compiler-generated tripwire carriers; set by the
	// diversification pass.
	Phantom bool
}

// Clone returns a deep copy of the function (passes mutate in place; the
// evaluation compiles one source corpus under many configurations).
func (f *Function) Clone() *Function {
	nf := &Function{
		Name: f.Name, NoInstrument: f.NoInstrument, NoDiversify: f.NoDiversify,
		AccessorClone: f.AccessorClone, Phantom: f.Phantom,
	}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{Label: b.Label, Ins: make([]isa.Instr, len(b.Ins))}
		copy(nb.Ins, b.Ins)
		nf.Blocks[i] = nb
	}
	return nf
}

// BlockIndex returns the index of the block with the given label, or -1.
func (f *Function) BlockIndex(label string) int {
	for i, b := range f.Blocks {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// NumInstrs returns the total instruction count of the function.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ins)
	}
	return n
}

// Successors returns the indices of the CFG successors of block i.
// Conditional branches may appear anywhere in a block (instrumentation
// inserts mid-block `ja` checks), so every JCC target contributes an edge.
// Unresolvable control flow (ret, indirect jumps, tail jumps to symbols)
// has no intra-function successors.
func (f *Function) Successors(i int) []int {
	b := f.Blocks[i]
	var out []int
	seen := make(map[int]bool)
	add := func(t int) {
		if t >= 0 && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	// Mid-block conditional branches.
	for k, in := range b.Ins {
		if in.Op == isa.JCC && k != len(b.Ins)-1 && in.Label != "" {
			add(f.BlockIndex(in.Label))
		}
	}
	term, ok := b.Terminator()
	if !ok {
		// Implicit fallthrough.
		if i+1 < len(f.Blocks) {
			add(i + 1)
		}
		return out
	}
	switch term.Op {
	case isa.JMP:
		if term.Label != "" {
			add(f.BlockIndex(term.Label))
		}
		// else: tail jump out of the function
	case isa.JCC:
		if term.Label != "" {
			add(f.BlockIndex(term.Label))
		}
		if i+1 < len(f.Blocks) {
			add(i + 1)
		}
	}
	return out
}

// Validate checks structural well-formedness: unique non-empty labels,
// branch targets that resolve, non-empty blocks, and JCC never being the
// final block's terminator without a fallthrough.
func (f *Function) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("ir: function with empty name")
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %s has no blocks", f.Name)
	}
	seen := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Label == "" {
			return fmt.Errorf("ir: %s: block with empty label", f.Name)
		}
		if seen[b.Label] {
			return fmt.Errorf("ir: %s: duplicate label %q", f.Name, b.Label)
		}
		seen[b.Label] = true
		if len(b.Ins) == 0 {
			return fmt.Errorf("ir: %s: empty block %q", f.Name, b.Label)
		}
		for k, in := range b.Ins {
			// Conditional branches may appear mid-block (inserted range
			// checks); unconditional terminators mid-block are dead code.
			if k != len(b.Ins)-1 && in.IsTerminator() && in.Op != isa.JCC {
				return fmt.Errorf("ir: %s: %q: terminator %q not at block end", f.Name, b.Label, in.String())
			}
		}
	}
	for i, b := range f.Blocks {
		for _, in := range b.Ins {
			if in.Label != "" && (in.Op == isa.JMP || in.Op == isa.JCC) {
				if !seen[in.Label] {
					return fmt.Errorf("ir: %s: %q: branch to unknown label %q", f.Name, b.Label, in.Label)
				}
			}
		}
		if _, hasTerm := b.Terminator(); !hasTerm && i == len(f.Blocks)-1 {
			return fmt.Errorf("ir: %s: final block %q falls off the end", f.Name, b.Label)
		}
		if term, ok := b.Terminator(); ok && term.Op == isa.JCC && i == len(f.Blocks)-1 {
			return fmt.Errorf("ir: %s: final block %q ends in conditional branch", f.Name, b.Label)
		}
	}
	return nil
}

// String renders the function as assembly text.
func (f *Function) String() string {
	s := f.Name + ":\n"
	for _, b := range f.Blocks {
		s += b.Label + ":\n"
		for _, in := range b.Ins {
			s += "\t" + in.String() + "\n"
		}
	}
	return s
}

// Program is a collection of functions plus data-section definitions,
// forming a complete translation unit for the linker.
type Program struct {
	Funcs []*Function

	// Data symbols to be placed in writable data sections.
	Data []DataSym
	// Rodata symbols to be placed in the read-only data section.
	Rodata []DataSym
	// BSS symbols (zero-initialized, size only).
	BSS []BSSSym
	// Relocs are absolute 8-byte pointer relocations inside data symbols
	// (e.g. the syscall dispatch table holding function addresses).
	Relocs []DataReloc
}

// DataReloc requests that the 8 bytes at offset Off inside data symbol In
// be filled with the address of Sym plus Addend at link time.
type DataReloc struct {
	In     string // containing data symbol
	Rodata bool   // In lives in .rodata rather than .data
	Off    uint64
	Sym    string // target symbol
	Addend uint64
}

// DataRelocs returns the program's data relocations.
func (p *Program) DataRelocs() []DataReloc { return p.Relocs }

// DataSym is an initialized data definition.
type DataSym struct {
	Name  string
	Bytes []byte
	Align uint64
}

// BSSSym is a zero-initialized data definition.
type BSSSym struct {
	Name  string
	Size  uint64
	Align uint64
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	np := &Program{
		Funcs:  make([]*Function, len(p.Funcs)),
		Data:   make([]DataSym, len(p.Data)),
		Rodata: make([]DataSym, len(p.Rodata)),
		BSS:    make([]BSSSym, len(p.BSS)),
	}
	for i, f := range p.Funcs {
		np.Funcs[i] = f.Clone()
	}
	for i, d := range p.Data {
		nb := make([]byte, len(d.Bytes))
		copy(nb, d.Bytes)
		np.Data[i] = DataSym{Name: d.Name, Bytes: nb, Align: d.Align}
	}
	for i, d := range p.Rodata {
		nb := make([]byte, len(d.Bytes))
		copy(nb, d.Bytes)
		np.Rodata[i] = DataSym{Name: d.Name, Bytes: nb, Align: d.Align}
	}
	copy(np.BSS, p.BSS)
	np.Relocs = make([]DataReloc, len(p.Relocs))
	copy(np.Relocs, p.Relocs)
	return np
}

// Validate validates every function and checks for duplicate symbol names.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for _, f := range p.Funcs {
		if err := f.Validate(); err != nil {
			return err
		}
		if seen[f.Name] {
			return fmt.Errorf("ir: duplicate symbol %q", f.Name)
		}
		seen[f.Name] = true
	}
	for _, d := range p.Data {
		if seen[d.Name] {
			return fmt.Errorf("ir: duplicate symbol %q", d.Name)
		}
		seen[d.Name] = true
	}
	for _, d := range p.Rodata {
		if seen[d.Name] {
			return fmt.Errorf("ir: duplicate symbol %q", d.Name)
		}
		seen[d.Name] = true
	}
	for _, d := range p.BSS {
		if seen[d.Name] {
			return fmt.Errorf("ir: duplicate symbol %q", d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}
