package attack

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/kernel"
)

// CoarseKASLRBypass mounts the classic attack that motivates fine-grained
// KASLR (§1–§2): base randomization slides the whole image by one secret
// delta, so leaking a *single* code pointer reveals every address. The
// attacker primes the target and a reference kernel (their own copy, built
// from the same distribution, different unknown slide) with the same
// syscall sequence, leaks the same stale stack slot from both, computes
// slide = leaked_target − leaked_ref, rebases the precomputed ROP chain,
// and fires it. Against coarse KASLR alone this succeeds; against
// fine-grained KASLR the rebased addresses still point at shuffled code.
func CoarseKASLRBypass(target, ref *kernel.Kernel) Result {
	res := Result{Name: "kaslr-bypass", Stage: "pointer-leak"}

	tPtr, tOff, ok := leakAnchor(target)
	if !ok {
		res.Detail = "no code pointer leaked from the target"
		return res
	}
	rPtr, rOff, ok := leakAnchor(ref)
	if !ok || tOff != rOff {
		res.Detail = fmt.Sprintf("anchor slots diverge (t=%d r=%d)", tOff, rOff)
		return res
	}
	slide := tPtr - rPtr

	res.Stage = "chain-rebase"
	gs := ScanGadgets(ref.Img.Text, ref.Sym("_text"))
	pop, ok := FindPopRet(gs, 7 /* %rdi */)
	if !ok {
		res.Detail = "no pop %rdi gadget in the reference image"
		return res
	}
	chain := []uint64{
		pop.Addr + slide,
		0,
		ref.Sym("do_set_uid") + slide,
		cpu.StopMagic,
	}

	res.Stage = "exploitation"
	a := &Attacker{K: target}
	a.SmashChain(chain, 64)
	if a.UID() == 0 {
		res.Success = true
		res.Detail = fmt.Sprintf("uid=0 with slide %#x recovered from one leaked pointer", slide)
		return res
	}
	res.Detail = fmt.Sprintf("rebased chain (slide %#x) landed nowhere useful", slide)
	return res
}

// leakAnchor primes the kernel stack and leaks the first stale slot holding
// a kernel-text-looking pointer, returning the pointer and its slot index.
func leakAnchor(k *kernel.Kernel) (ptr uint64, slot int, ok bool) {
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		return 0, 0, false
	}
	k.Syscall(kernel.SysOpen, kernel.UserBuf)
	a := &Attacker{K: k}
	top := k.CPU.KernelStackTop
	const words = 64
	raw, _ := a.LeakRange(top-words*8, words*8)
	for off := 0; off+8 <= len(raw); off += 8 {
		v := binary.LittleEndian.Uint64(raw[off:])
		if v >= 0xffffffff80000000 && v < 0xffffffffa0000000 && v != cpu.StopMagic {
			return v, off / 8, true
		}
	}
	return 0, 0, false
}
