package inject_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func bootKernel(t *testing.T, seed int64) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(core.Config{
		XOM: core.XOMSFI, SFILevel: sfi.O3,
		Diversify: true, RAProt: diversify.RAEncrypt,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		t.Fatal(err)
	}
	return k
}

// workload drives a fixed syscall sequence and returns each result's stop
// reason (the injector may kill any call partway through).
func workload(k *kernel.Kernel) []string {
	var out []string
	seq := [][]uint64{
		{kernel.SysOpen, kernel.UserBuf},
		{kernel.SysWrite, 3, kernel.UserBuf + 512, 256},
		{kernel.SysGetdents, kernel.UserBuf + 1024, 512},
		{kernel.SysUname, kernel.UserBuf + 2048},
		{kernel.SysMmap, 4},
		{kernel.SysRead, 3, kernel.UserBuf + 4096, 256},
	}
	for _, s := range seq {
		r := k.Syscall(s[0], s[1:]...)
		out = append(out, fmt.Sprintf("%s failed=%v", r.Run.Reason, r.Failed))
		if r.Failed {
			break
		}
	}
	return out
}

// eventLog renders the injector's fault log for comparison.
func eventLog(inj *inject.Injector) string {
	s := ""
	for _, e := range inj.Events {
		s += e.String() + "\n"
	}
	return s
}

// TestReplayDeterminism is the injector's core guarantee: the same (seed,
// workload) pair on a same-seed kernel produces an identical fault sequence
// and identical syscall outcomes — across separate boots.
func TestReplayDeterminism(t *testing.T) {
	plan := inject.DefaultPlan(1234)
	plan.Every = 64 // dense opportunities so several faults actually land
	plan.ByteFlip = 0.3
	plan.SpuriousTrap = 0.1

	run := func() (string, []string) {
		k := bootKernel(t, 55)
		inj := inject.New(plan)
		inj.Attach(k.CPU, k.Space.AS, k.FaultTargets())
		outcomes := workload(k)
		inj.Detach()
		return eventLog(inj), outcomes
	}

	ev1, out1 := run()
	ev2, out2 := run()
	if ev1 != ev2 {
		t.Fatalf("fault logs differ across same-seed runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", ev1, ev2)
	}
	if fmt.Sprint(out1) != fmt.Sprint(out2) {
		t.Fatalf("syscall outcomes differ: %v vs %v", out1, out2)
	}
	if ev1 == "" {
		t.Fatal("no faults injected — the plan or workload is too small to test replay")
	}
}

// TestSeedsDiverge sanity-checks that the seed actually matters.
func TestSeedsDiverge(t *testing.T) {
	logs := make(map[string]bool)
	for _, seed := range []int64{1, 2, 3} {
		plan := inject.DefaultPlan(seed)
		plan.Every = 64
		plan.ByteFlip = 0.3
		k := bootKernel(t, 55)
		inj := inject.New(plan)
		inj.Attach(k.CPU, k.Space.AS, k.FaultTargets())
		workload(k)
		inj.Detach()
		logs[eventLog(inj)] = true
	}
	if len(logs) < 2 {
		t.Fatal("three different seeds produced identical fault logs")
	}
}

// TestMaxFaults verifies the per-attachment cap.
func TestMaxFaults(t *testing.T) {
	plan := inject.DefaultPlan(7)
	plan.Every = 16
	plan.ByteFlip = 1.0 // fire at every opportunity
	plan.MaxFaults = 3
	k := bootKernel(t, 55)
	inj := inject.New(plan)
	inj.Attach(k.CPU, k.Space.AS, k.FaultTargets())
	workload(k)
	inj.Detach()
	if len(inj.Events) > 3 {
		t.Fatalf("injected %d faults, cap was 3", len(inj.Events))
	}
	if !inj.Fired() {
		t.Fatal("no faults at probability 1.0")
	}
}

// TestSpuriousTrap verifies a forced trap is delivered and contained: the
// kernel's fault path (or the harness boundary) turns it into a structured
// failed result, not a hang or panic.
func TestSpuriousTrap(t *testing.T) {
	plan := inject.Plan{Seed: 3, Every: 32, MaxFaults: 8, SpuriousTrap: 1.0}
	k := bootKernel(t, 55)
	inj := inject.New(plan)
	inj.Attach(k.CPU, k.Space.AS, k.FaultTargets())
	defer inj.Detach()
	r := k.Syscall(kernel.SysGetdents, kernel.UserBuf+1024, 512)
	if !inj.Fired() {
		t.Fatal("no spurious trap fired")
	}
	if r == nil || r.Run == nil {
		t.Fatal("nil result from a trap-bombed syscall")
	}
}
