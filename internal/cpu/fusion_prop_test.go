package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Flag-fusion soundness tests: the block compiler's liveness pass
// (compileBlock) elides CF/OF/SF/ZF/PF computation for arithmetic whose
// results are provably dead. These tests attack that proof from two sides —
// a property test over random straight-line ALU programs with injected
// observers, boundaries, and traps (TestFusionFlagProperty), and pinned
// liveness-scan expectations on hand-built blocks (TestCompileFusionCounts).

// fusionUnmappedVA is a virtual address no fusion-test harness maps: loads
// from it inject a #PF mid-sequence, which in kernel mode (no FaultEntry)
// stops the run right there — so every mode must agree on the architectural
// flags AT the trap point, not just at the final RET.
const fusionUnmappedVA = 0x50000

// fusionOutcome is everything architecturally visible after a program ran.
type fusionOutcome struct {
	res       RunResult
	trap      Trap
	faultKind mem.FaultKind
	faultAddr uint64
	regs      [isa.NumGPR]uint64
	rip       uint64
	flags     uint64
	instrs    uint64
	cycles    uint64
}

// runFusionProgram executes code (already encoded) 4 times on one CPU under
// the given engine configuration — enough repeats to cross the default
// hotness gate, so hot=DefaultBlockHotThreshold genuinely mixes stepped and
// block-dispatched executions of the same bytes — and returns the outcome
// of every repeat plus the CPU's cumulative Fused count.
func runFusionProgram(t *testing.T, code []byte, cacheOn, blocksOn, compileOn bool, hot int) ([]fusionOutcome, uint64) {
	t.Helper()
	as := mem.NewAddressSpace()
	for _, m := range []struct {
		va   uint64
		n    int
		perm mem.Perm
	}{
		{dcCodeVA, 2, mem.PermX},
		{dcDataVA, 1, mem.PermRW},
		{dcStackVA, 1, mem.PermRW},
	} {
		if _, err := as.Map(m.va, m.n, m.perm); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.Poke(dcCodeVA, code); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.SetDecodeCache(cacheOn)
	c.SetBlockEngine(blocksOn)
	c.SetBlockCompile(compileOn)
	c.SetBlockHotThreshold(hot)

	var outs []fusionOutcome
	for rep := 0; rep < 4; rep++ {
		c.Mode = Kernel
		c.RIP = dcCodeVA
		// Deterministic register state per repeat (flags carry over from the
		// previous repeat — more flag histories through the same blocks).
		for i := range c.Regs {
			c.Regs[i] = uint64(rep+1)*0x0101010101010101 + uint64(i)
		}
		c.Regs[isa.RSP] = dcStackVA + mem.PageSize - 64
		if f := as.Write(c.Regs[isa.RSP], StopMagic, 8); f != nil {
			t.Fatal(f)
		}
		res := c.Run(2048)
		o := fusionOutcome{
			res: *res, regs: c.Regs, rip: c.RIP, flags: c.RFlags,
			instrs: c.Instrs, cycles: c.Cycles,
		}
		if res.Trap != nil {
			o.trap = *res.Trap
			o.trap.Fault = nil
			o.res.Trap = nil
			if f := res.Trap.Fault; f != nil {
				o.faultKind, o.faultAddr = f.Kind, f.Addr
			}
		}
		outs = append(outs, o)
	}
	return outs, c.BlockStats().Fused
}

// genFusionProgram builds one random straight-line ALU program. The bulk is
// reg/imm arithmetic (the fusion candidates); sprinkled in are the events
// whose presence the liveness pass must respect:
//
//   - pushfq+pop: spills %rflags into a register — a mid-block flag read
//     whose value lands in compared architectural state;
//   - jcc over an inc marker: a conditional branch whose direction (and so
//     the marker register's final value) observes the flags at a block
//     boundary;
//   - jmp +0: a plain block boundary (liveness must stop at it);
//   - a load from an unmapped address: an injected trap — flags at the trap
//     instruction's entry become the run's final flags.
func genFusionProgram(rng *rand.Rand) []isa.Instr {
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	rr := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	ri := func() int32 { return int32(rng.Uint32()) }

	var prog []isa.Instr
	n := 5 + rng.Intn(36)
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 4:
			// Flag spill: pushfq; pop reg.
			prog = append(prog, isa.Pushfq(), isa.Pop(rr()))
		case r < 8:
			// Conditional skip over an inc marker: reads flags, makes the
			// branch direction architecturally visible, and ends the block.
			marker := isa.Inc(rr())
			mb, err := marker.Encode(nil)
			if err != nil {
				panic(err)
			}
			cc := isa.Cond(rng.Intn(isa.NumCond))
			prog = append(prog, isa.Instr{Op: isa.JCC, CC: cc, Imm: int64(len(mb))}, marker)
		case r < 11:
			// Plain block boundary.
			prog = append(prog, isa.Instr{Op: isa.JMP, Imm: 0})
		case r < 14:
			// Injected trap: #PF mid-sequence (kernel mode: stops the run, so
			// the flags at this point are the compared final flags).
			prog = append(prog, isa.Load(rr(), isa.Mem(isa.NoReg, fusionUnmappedVA)))
		default:
			switch rng.Intn(16) {
			case 0:
				prog = append(prog, isa.AddRI(rr(), ri()))
			case 1:
				prog = append(prog, isa.AddRR(rr(), rr()))
			case 2:
				prog = append(prog, isa.SubRI(rr(), ri()))
			case 3:
				prog = append(prog, isa.SubRR(rr(), rr()))
			case 4:
				prog = append(prog, isa.AndRI(rr(), ri()))
			case 5:
				prog = append(prog, isa.OrRI(rr(), ri()))
			case 6:
				prog = append(prog, isa.XorRR(rr(), rr()))
			case 7:
				prog = append(prog, isa.ShlRI(rr(), uint8(rng.Intn(64))))
			case 8:
				prog = append(prog, isa.ShrRI(rr(), uint8(rng.Intn(64))))
			case 9:
				prog = append(prog, isa.NotR(rr()))
			case 10:
				prog = append(prog, isa.Instr{Op: isa.NEGr, Dst: rr()})
			case 11:
				prog = append(prog, isa.ImulRI(rr(), ri()))
			case 12:
				prog = append(prog, isa.Inc(rr()))
			case 13:
				prog = append(prog, isa.Dec(rr()))
			case 14:
				prog = append(prog, isa.CmpRI(rr(), ri()))
			case 15:
				prog = append(prog, isa.TestRR(rr(), rr()))
			}
		}
	}
	prog = append(prog, isa.Ret())
	return prog
}

// TestFusionFlagProperty is the fused-thunk flag-semantics property test:
// for random straight-line ALU programs with injected flag observers, block
// boundaries, and traps, every engine configuration — uncached interpreter,
// cache-only, interpreted blocks, compiled blocks eager and hotness-gated —
// must agree on ALL of CF/OF/SF/ZF/PF (the full %rflags), registers,
// Instrs, Cycles, and the trap, at every run boundary and at every injected
// trap. The uncached interpreter is the semantic reference.
func TestFusionFlagProperty(t *testing.T) {
	modes := []struct {
		name                     string
		cache, blocks, compileOn bool
		hot                      int
	}{
		{"cache-only", true, false, false, 1},
		{"blocks-interp", true, true, false, 1},
		{"compiled-hot1", true, true, true, 1},
		{"compiled-gated", true, true, true, DefaultBlockHotThreshold},
	}
	var totalFused uint64
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := genFusionProgram(rng)
		code := encodeProg(t, prog...)
		ref, _ := runFusionProgram(t, code, false, false, false, 1)
		for _, m := range modes {
			got, fused := runFusionProgram(t, code, m.cache, m.blocks, m.compileOn, m.hot)
			if m.name == "compiled-hot1" {
				totalFused += fused
			}
			for rep := range ref {
				if got[rep] != ref[rep] {
					t.Fatalf("seed %d rep %d: %s diverges from uncached reference:\n got: %+v\nwant: %+v\nprogram:\n%v",
						seed, rep, m.name, got[rep], ref[rep], prog)
				}
			}
		}
	}
	if totalFused == 0 {
		t.Fatal("property corpus never exercised a fused thunk — generator or liveness pass is broken")
	}
}

// TestCompileFusionCounts pins the liveness scan itself on hand-built
// blocks: which entries get their flag computation elided and which must
// stay live.
func TestCompileFusionCounts(t *testing.T) {
	cases := []struct {
		name  string
		prog  []isa.Instr
		fused uint64
	}{
		{
			// Three adds all die into the cmp; the cmp feeds the block exit.
			name: "adds-die-into-cmp",
			prog: []isa.Instr{
				isa.AddRI(isa.RAX, 1),
				isa.AddRI(isa.RAX, 2),
				isa.AddRI(isa.RAX, 3),
				isa.CmpRI(isa.RAX, 5),
				isa.Ret(),
			},
			fused: 3,
		},
		{
			// The pushfq reads flags: the add before it must stay live; the
			// add after it dies into the cmp (the pop rebalances the stack
			// for the sentinel ret).
			name: "pushfq-blocks-fusion",
			prog: []isa.Instr{
				isa.AddRI(isa.RAX, 1),
				isa.Pushfq(),
				isa.Pop(isa.RBX),
				isa.AddRI(isa.RAX, 2),
				isa.CmpRI(isa.RAX, 5),
				isa.Ret(),
			},
			fused: 1,
		},
		{
			// A store can abort the block (self-mod resync) right after it
			// executes, and can itself trap: the add before it must stay
			// live even though the cmp later overwrites.
			name: "store-is-observable",
			prog: []isa.Instr{
				isa.AddRI(isa.RAX, 1),
				isa.StoreImm(isa.Mem(isa.NoReg, dcDataVA), 7),
				isa.AddRI(isa.RBX, 2),
				isa.CmpRI(isa.RAX, 5),
				isa.Ret(),
			},
			fused: 1,
		},
		{
			// inc preserves CF — it READS flags, so the sub before it must
			// stay live. The inc's own flag results die into the later cmp,
			// so the inc itself fuses (to a bare increment, skipping both
			// its CF read and its flag writes), as does the second sub.
			name: "inc-dec-read-cf",
			prog: []isa.Instr{
				isa.SubRI(isa.RAX, 1),
				isa.Inc(isa.RBX),
				isa.SubRI(isa.RAX, 2),
				isa.CmpRI(isa.RAX, 5),
				isa.Ret(),
			},
			fused: 2,
		},
		{
			// A conditional branch ends the block reading flags: nothing
			// before it may fuse (the cmp is the reader's input; the add
			// before the cmp dies into the cmp).
			name: "jcc-reads-flags",
			prog: []isa.Instr{
				isa.AddRI(isa.RAX, 1),
				isa.CmpRI(isa.RAX, 5),
				isa.Instr{Op: isa.JCC, CC: isa.CondE, Imm: 0},
				isa.Ret(),
			},
			fused: 1,
		},
		{
			// Block exit (ret) keeps the last writer live.
			name: "exit-keeps-flags-live",
			prog: []isa.Instr{
				isa.AddRI(isa.RAX, 1),
				isa.AddRI(isa.RAX, 2),
				isa.Ret(),
			},
			fused: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := rawCPU(t, mem.PermX, tc.prog...)
			c.SetBlockHotThreshold(1)
			// Lowering is lazy: each block compiles on its blockCompileHot'th
			// dispatch, so run the program that many times.
			for rep := 0; rep < blockCompileHot; rep++ {
				resetRaw(t, c)
				res := c.Run(1024)
				if res.Trap != nil {
					t.Fatalf("rep %d trapped: %v", rep, res.Trap)
				}
			}
			if got := c.BlockStats().Fused; got != tc.fused {
				t.Fatalf("Fused = %d, want %d (stats %+v)", got, tc.fused, c.BlockStats())
			}
			if c.BlockStats().Compiled == 0 {
				t.Fatal("no block compiled")
			}
		})
	}
}
