package module

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sfi"
)

// testModule builds a module with a function that reads its own module
// data, calls a kernel helper, and returns a computed value, plus a
// function with an attacker-reachable arbitrary read.
func testModule(t *testing.T) *Object {
	t.Helper()
	entry, err := ir.NewBuilder("mod_entry").
		I(
			isa.MovSym(isa.R8, "mod_counter"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 0)),
			isa.Inc(isa.RAX),
			isa.Store(isa.Mem(isa.R8, 0), isa.RAX),
			isa.MovRR(isa.RDI, isa.RAX),
			isa.Call("do_set_uid"), // kernel extern: sets cred.uid = rdi
			isa.MovSym(isa.R8, "mod_counter"),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 0)),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	peek, err := ir.NewBuilder("mod_peek").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	return &Object{
		Name: "krxtest",
		Prog: &ir.Program{
			Funcs: []*ir.Function{entry, peek},
			Data:  []ir.DataSym{{Name: "mod_counter", Bytes: make([]byte, 8)}},
		},
	}
}

func bootK(t *testing.T, cfg core.Config) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// callModFunc invokes a loaded module function directly in kernel mode.
func callModFunc(t *testing.T, k *kernel.Kernel, addr uint64, arg uint64) *cpu.RunResult {
	t.Helper()
	stack, err := k.Space.AllocMapped(2)
	if err != nil {
		t.Fatal(err)
	}
	top := stack + 2*mem.PageSize - 16
	c := k.CPU
	c.Mode = cpu.Kernel
	c.SetReg(isa.RSP, top)
	if f := c.AS.Write(top, cpu.StopMagic, 8); f != nil {
		t.Fatal(f)
	}
	c.SetReg(isa.RDI, arg)
	c.RIP = addr
	return c.Run(1 << 18)
}

func fullKRX() core.Config {
	return core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 31}
}

func TestLoadRunUnload(t *testing.T) {
	k := bootK(t, fullKRX())
	l := NewLoader(k)
	m, err := l.Load(testModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsLoaded("krxtest") {
		t.Fatal("module not tracked")
	}
	// The module function runs, updates module data, calls into the
	// kernel image across the modules_text -> .text boundary.
	res := callModFunc(t, k, m.Symbols["mod_entry"], 0)
	if res.Reason != cpu.StopReturn {
		t.Fatalf("mod_entry: %v trap=%v", res.Reason, res.Trap)
	}
	if got := k.CPU.Reg(isa.RAX); got != 1 {
		t.Fatalf("mod_counter = %d, want 1", got)
	}
	// Kernel extern was really invoked: uid == counter value.
	b, _ := k.Space.AS.Peek(k.Sym("cred"), 8)
	if b[0] != 1 {
		t.Fatalf("do_set_uid not reached: uid=%d", b[0])
	}
	if err := l.Unload("krxtest"); err != nil {
		t.Fatal(err)
	}
	if l.IsLoaded("krxtest") {
		t.Fatal("module still tracked after unload")
	}
	if k.Space.AS.Mapped(m.TextAddr) {
		t.Fatal("module text still mapped")
	}
}

func TestModuleTextIsExecuteOnly(t *testing.T) {
	k := bootK(t, fullKRX())
	l := NewLoader(k)
	m, err := l.Load(testModule(t))
	if err != nil {
		t.Fatal(err)
	}
	// The instrumented arbitrary read inside the module must not be able
	// to read module (or kernel) text.
	res := callModFunc(t, k, m.Symbols["mod_peek"], m.TextAddr)
	if res.Reason == cpu.StopReturn {
		t.Fatal("module text read through instrumented module code must be blocked")
	}
	// But module data reads work.
	res = callModFunc(t, k, m.Symbols["mod_peek"], m.Symbols["mod_counter"])
	if res.Reason != cpu.StopReturn {
		t.Fatalf("module data read: %v trap=%v", res.Reason, res.Trap)
	}
}

func TestModuleSynonymClosedUnderKRX(t *testing.T) {
	k := bootK(t, fullKRX())
	l := NewLoader(k)
	m, err := l.Load(testModule(t))
	if err != nil {
		t.Fatal(err)
	}
	// The physmap alias of the module's text frames must be unmapped.
	syn := k.Space.SynonymAddr
	_ = syn
	// (MapModuleText owns the pfn; reconstruct the physmap address.)
	if _, f := k.Space.AS.LoadByte(physAddr(m)); f == nil {
		t.Fatal("module text physmap synonym still readable")
	}
}

func physAddr(m *Loaded) uint64 {
	return 0xffff880000000000 + uint64(m.pfn)<<12
}

func TestUnloadZapsAndRestoresSynonym(t *testing.T) {
	k := bootK(t, fullKRX())
	l := NewLoader(k)
	m, err := l.Load(testModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Unload("krxtest"); err != nil {
		t.Fatal(err)
	}
	// Synonym restored, contents zapped.
	b, f := k.Space.AS.LoadByte(physAddr(m))
	if f != nil {
		t.Fatalf("synonym not restored: %v", f)
	}
	if b != 0 {
		t.Fatal("module text not zapped on unload")
	}
}

func TestModuleDiversifiedAcrossLoads(t *testing.T) {
	// Two kernels with different seeds must place/shuffle module code
	// differently (module diversification at load time).
	addrs := map[uint64]bool{}
	texts := map[string]bool{}
	for _, seed := range []int64{41, 42} {
		cfg := fullKRX()
		cfg.Seed = seed
		k := bootK(t, cfg)
		l := NewLoader(k)
		m, err := l.Load(testModule(t))
		if err != nil {
			t.Fatal(err)
		}
		addrs[m.Symbols["mod_entry"]-m.TextAddr] = true
		raw, err2 := k.Space.AS.Peek(m.TextAddr, int(m.TextSize))
		if err2 != nil {
			t.Fatal(err2)
		}
		texts[string(raw)] = true
	}
	if len(texts) != 2 {
		t.Fatal("module text identical across seeds (no diversification)")
	}
}

func TestVanillaModuleKeepsSynonym(t *testing.T) {
	k := bootK(t, core.Vanilla)
	l := NewLoader(k)
	m, err := l.Load(testModule(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, f := k.Space.AS.LoadByte(physAddr(m)); f != nil {
		t.Fatalf("vanilla module synonym should remain readable: %v", f)
	}
	res := callModFunc(t, k, m.Symbols["mod_entry"], 0)
	if res.Reason != cpu.StopReturn {
		t.Fatalf("vanilla module run: %v %v", res.Reason, res.Trap)
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	k := bootK(t, core.Vanilla)
	l := NewLoader(k)
	if _, err := l.Load(testModule(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(testModule(t)); err == nil {
		t.Fatal("double load must be rejected")
	}
	if err := l.Unload("nope"); err == nil {
		t.Fatal("unload of unknown module must fail")
	}
}

func TestMPXModuleEnforced(t *testing.T) {
	k := bootK(t, core.Config{XOM: core.XOMMPX, Seed: 44})
	l := NewLoader(k)
	m, err := l.Load(testModule(t))
	if err != nil {
		t.Fatal(err)
	}
	k.CPU.Bnd[0] = k.CPU.KernelBnd0 // as after kernel entry
	res := callModFunc(t, k, m.Symbols["mod_peek"], k.Sym("_text"))
	if res.Reason != cpu.StopTrap || res.Trap.Kind != cpu.TrapBoundRange {
		t.Fatalf("MPX module read of kernel text must #BR: %v %v", res.Reason, res.Trap)
	}
}

func TestMixedModeUnprotectedModule(t *testing.T) {
	// §6: kR^X supports mixed code — an unprotected module loads alongside
	// the protected kernel. Its own reads are uninstrumented, so it can
	// (dangerously, by design) read code.
	k := bootK(t, fullKRX())
	l := NewLoader(k)
	obj := testModule(t)
	obj.Name = "legacy"
	obj.Unprotected = true
	m, err := l.Load(obj)
	if err != nil {
		t.Fatal(err)
	}
	// Functional: runs and calls kernel externs.
	res := callModFunc(t, k, m.Symbols["mod_entry"], 0)
	if res.Reason != cpu.StopReturn {
		t.Fatalf("unprotected module run: %v %v", res.Reason, res.Trap)
	}
	// Its arbitrary read is NOT range-checked: it can read kernel text
	// (the hardware allows it — X implies R). This is the documented cost
	// of incremental deployment.
	res = callModFunc(t, k, m.Symbols["mod_peek"], k.Sym("_text"))
	if res.Reason != cpu.StopReturn {
		t.Fatalf("unprotected module read should be unchecked: %v %v", res.Reason, res.Trap)
	}
	// A protected module on the same kernel still cannot.
	prot := testModule(t)
	m2, err := l.Load(prot)
	if err != nil {
		t.Fatal(err)
	}
	res = callModFunc(t, k, m2.Symbols["mod_peek"], k.Sym("_text"))
	if res.Reason == cpu.StopReturn {
		t.Fatal("protected module read must be blocked")
	}
}

func TestOversizedModuleRejected(t *testing.T) {
	k := bootK(t, core.Vanilla)
	l := NewLoader(k)
	big := &Object{
		Name: "huge",
		Prog: &ir.Program{
			Funcs: []*ir.Function{mustRet(t)},
			BSS:   []ir.BSSSym{{Name: "blob", Size: 2 << 30}},
		},
	}
	if _, err := l.Load(big); err == nil {
		t.Fatal("oversized module must be rejected by the (fixed) sanity check")
	}
}

func mustRet(t *testing.T) *ir.Function {
	t.Helper()
	f, err := ir.NewBuilder("noop").I(isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	return f
}
