// Livepatch shows runtime kernel-code maintenance coexisting with kR^X:
// text is execute-only and its physmap synonym is closed, so patching goes
// through a short-lived text_poke-style writable alias. A vulnerable
// credential function is replaced at runtime with a hardened version
// delivered as a module, and the R^X invariants are audited before and
// after.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/module"
	"repro/internal/patch"
	"repro/internal/sfi"
)

func main() {
	cfg := core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 99}
	k, err := kernel.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := &attack.Attacker{K: k}

	// The hardened replacement, shipped as a module.
	fixed, err := ir.NewBuilder("do_set_uid_v2").
		I(
			isa.CmpRI(isa.RDI, 0),
			isa.Jcc(isa.CondNE, "ok"),
			isa.MovRI(isa.RDI, 1000), // refuse escalation to root
		).
		Label("ok").
		I(
			isa.MovSym(isa.R8, "cred"),
			isa.Store(isa.Mem(isa.R8, 0), isa.RDI),
			isa.Ret(),
		).Func()
	if err != nil {
		log.Fatal(err)
	}
	m, err := module.NewLoader(k).Load(&module.Object{
		Name: "cred-fix",
		Prog: &ir.Program{Funcs: []*ir.Function{fixed}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded cred-fix module at %#x\n", m.Symbols["do_set_uid_v2"])

	a.Hijack(k.Sym("do_set_uid"), 0)
	fmt.Printf("before patch: hijack(do_set_uid, 0) -> uid=%d (escalated!)\n", a.UID())
	a.Hijack(k.Sym("do_set_uid"), 1000) // reset

	revert, err := patch.Livepatch(k, "do_set_uid", m.Symbols["do_set_uid_v2"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live-patched do_set_uid -> do_set_uid_v2 (via temporary text_poke alias)")

	a.Hijack(k.Sym("do_set_uid"), 0)
	fmt.Printf("after patch:  hijack(do_set_uid, 0) -> uid=%d (clamped, escalation closed)\n", a.UID())

	rep := audit.Audit(k)
	fmt.Printf("\nsecurity audit after patching (ok=%v):\n%s", rep.OK(), rep)

	if err := patch.Revert(k, "do_set_uid", revert); err != nil {
		log.Fatal(err)
	}
	fmt.Println("patch reverted")
}
