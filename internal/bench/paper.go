package bench

import (
	"fmt"
	"math"
	"strings"
)

// The paper's published numbers (Tables 1 and 2), embedded so the harness
// can print measured-vs-paper comparisons and check shape agreement
// mechanically. Values are percent overheads; NaN marks "~0%" cells.
var tilde = math.NaN()

// PaperTable1 maps row -> column -> percent, for the columns this
// reproduction measures. Source: Table 1 of the paper.
var PaperTable1 = map[string]map[string]float64{
	"syscall()":           {"SFI(-O0)": 126.90, "SFI(-O1)": 13.41, "SFI(-O2)": 13.44, "SFI": 12.74, "MPX": 0.49, "D": 0.62, "X": 2.70, "SFI+D": 13.67, "SFI+X": 15.91, "MPX+D": 2.24, "MPX+X": 2.92},
	"open()/close()":      {"SFI(-O0)": 306.24, "SFI(-O1)": 39.01, "SFI(-O2)": 37.45, "SFI": 24.82, "MPX": 3.47, "D": 15.03, "X": 18.30, "SFI+D": 40.68, "SFI+X": 44.56, "MPX+D": 19.44, "MPX+X": 22.79},
	"read()/write()":      {"SFI(-O0)": 215.04, "SFI(-O1)": 22.05, "SFI(-O2)": 19.51, "SFI": 18.11, "MPX": 0.63, "D": 7.67, "X": 10.74, "SFI+D": 29.37, "SFI+X": 34.88, "MPX+D": 9.61, "MPX+X": 12.43},
	"select(10 fds)":      {"SFI(-O0)": 119.33, "SFI(-O1)": 10.24, "SFI(-O2)": 9.93, "SFI": 10.25, "MPX": 1.26, "D": 3.00, "X": 5.49, "SFI+D": 15.05, "SFI+X": 16.96, "MPX+D": 4.59, "MPX+X": 6.37},
	"select(100 TCP fds)": {"SFI(-O0)": 1037.33, "SFI(-O1)": 59.03, "SFI(-O2)": 49.00, "SFI": tilde, "MPX": tilde, "D": tilde, "X": 5.08, "SFI+D": 1.78, "SFI+X": 9.29, "MPX+D": 0.39, "MPX+X": 7.43},
	"fstat()":             {"SFI(-O0)": 489.79, "SFI(-O1)": 15.31, "SFI(-O2)": 13.22, "SFI": 7.91, "MPX": tilde, "D": 4.46, "X": 12.92, "SFI+D": 16.30, "SFI+X": 26.68, "MPX+D": 8.36, "MPX+X": 14.64},
	"mmap()/munmap()":     {"SFI(-O0)": 180.88, "SFI(-O1)": 7.24, "SFI(-O2)": 6.62, "SFI": 1.97, "MPX": 1.12, "D": 4.83, "X": 5.89, "SFI+D": 7.57, "SFI+X": 8.71, "MPX+D": 6.86, "MPX+X": 8.27},
	"fork()+exit()":       {"SFI(-O0)": 208.86, "SFI(-O1)": 14.32, "SFI(-O2)": 14.26, "SFI": 7.22, "MPX": tilde, "D": 12.37, "X": 16.57, "SFI+D": 24.03, "SFI+X": 21.48, "MPX+D": 13.77, "MPX+X": 11.64},
	"fork()+execve()":     {"SFI(-O0)": 191.83, "SFI(-O1)": 10.30, "SFI(-O2)": 21.75, "SFI": 23.15, "MPX": tilde, "D": 13.93, "X": 16.38, "SFI+D": 29.91, "SFI+X": 34.18, "MPX+D": 17.00, "MPX+X": 17.42},
	"fork()+/bin/sh":      {"SFI(-O0)": 113.77, "SFI(-O1)": 11.62, "SFI(-O2)": 19.22, "SFI": 12.98, "MPX": 6.27, "D": 12.37, "X": 15.44, "SFI+D": 23.66, "SFI+X": 22.94, "MPX+D": 18.40, "MPX+X": 16.66},
	"sigaction()":         {"SFI(-O0)": 63.49, "SFI(-O1)": 0.19, "SFI(-O2)": tilde, "SFI": 0.16, "MPX": 1.01, "D": 0.59, "X": 2.20, "SFI+D": 0.46, "SFI+X": 2.27, "MPX+D": 0.95, "MPX+X": 2.43},
	"Signal delivery":     {"SFI(-O0)": 123.29, "SFI(-O1)": 18.05, "SFI(-O2)": 16.74, "SFI": 7.81, "MPX": 1.12, "D": 3.49, "X": 4.94, "SFI+D": 11.39, "SFI+X": 13.31, "MPX+D": 5.37, "MPX+X": 6.52},
	"Protection fault":    {"SFI(-O0)": 13.40, "SFI(-O1)": 1.26, "SFI(-O2)": 0.97, "SFI": 1.33, "MPX": tilde, "D": 1.69, "X": 3.27, "SFI+D": 3.34, "SFI+X": 5.73, "MPX+D": 1.60, "MPX+X": 3.39},
	"Page fault":          {"SFI(-O0)": 202.84, "SFI(-O1)": tilde, "SFI(-O2)": tilde, "SFI": 7.38, "MPX": 1.64, "D": 7.83, "X": 9.40, "SFI+D": 15.69, "SFI+X": 17.30, "MPX+D": 10.80, "MPX+X": 12.11},
	"Pipe I/O":            {"SFI(-O0)": 126.26, "SFI(-O1)": 22.91, "SFI(-O2)": 21.39, "SFI": 15.12, "MPX": 0.42, "D": 4.30, "X": 6.89, "SFI+D": 19.39, "SFI+X": 22.39, "MPX+D": 6.07, "MPX+X": 7.62},
	"UNIX socket I/O":     {"SFI(-O0)": 148.11, "SFI(-O1)": 12.39, "SFI(-O2)": 17.31, "SFI": 11.69, "MPX": 4.74, "D": 7.34, "X": 10.04, "SFI+D": 16.09, "SFI+X": 16.64, "MPX+D": 6.88, "MPX+X": 8.80},
	"TCP socket I/O":      {"SFI(-O0)": 171.93, "SFI(-O1)": 25.15, "SFI(-O2)": 20.85, "SFI": 16.33, "MPX": 1.91, "D": 4.83, "X": 8.30, "SFI+D": 21.63, "SFI+X": 24.43, "MPX+D": 8.20, "MPX+X": 9.71},
	"UDP socket I/O":      {"SFI(-O0)": 208.75, "SFI(-O1)": 25.71, "SFI(-O2)": 30.89, "SFI": 16.96, "MPX": tilde, "D": 7.38, "X": 12.76, "SFI+D": 24.98, "SFI+X": 26.80, "MPX+D": 11.22, "MPX+X": 13.28},
}

// PaperTable1Bandwidth holds the bandwidth section of Table 1.
var PaperTable1Bandwidth = map[string]map[string]float64{
	"Pipe I/O":        {"SFI(-O0)": 46.70, "SFI(-O1)": 0.96, "SFI(-O2)": 1.62, "SFI": 0.68, "MPX": tilde, "D": 0.59, "X": 1.00, "SFI+D": 2.80, "SFI+X": 3.53, "MPX+D": 0.78, "MPX+X": 1.61},
	"UNIX socket I/O": {"SFI(-O0)": 35.77, "SFI(-O1)": 3.54, "SFI(-O2)": 4.81, "SFI": 6.43, "MPX": 1.43, "D": 2.79, "X": 3.39, "SFI+D": 5.71, "SFI+X": 7.00, "MPX+D": 3.17, "MPX+X": 3.41},
	"TCP socket I/O":  {"SFI(-O0)": 53.96, "SFI(-O1)": 10.90, "SFI(-O2)": 10.25, "SFI": 6.05, "MPX": tilde, "D": 3.71, "X": 4.40, "SFI+D": 9.82, "SFI+X": 9.85, "MPX+D": 3.64, "MPX+X": 4.87},
	"mmap() I/O":      {"SFI(-O0)": tilde, "SFI(-O1)": tilde, "SFI(-O2)": tilde, "SFI": tilde, "MPX": tilde, "D": tilde, "X": tilde, "SFI+D": tilde, "SFI+X": tilde, "MPX+D": tilde, "MPX+X": tilde},
	"File I/O":        {"SFI(-O0)": 23.57, "SFI(-O1)": tilde, "SFI(-O2)": tilde, "SFI": 0.67, "MPX": 0.28, "D": 1.21, "X": 1.46, "SFI+D": 1.81, "SFI+X": 2.23, "MPX+D": 1.74, "MPX+X": 1.92},
}

// PaperTable2 holds the paper's Phoronix overheads.
var PaperTable2 = map[string]map[string]float64{
	"Apache":     {"SFI": 0.54, "MPX": 0.48, "SFI+D": 0.97, "SFI+X": 1.00, "MPX+D": 0.81, "MPX+X": 0.68},
	"PostgreSQL": {"SFI": 3.36, "MPX": 1.06, "SFI+D": 6.15, "SFI+X": 6.02, "MPX+D": 3.45, "MPX+X": 4.74},
	"Kbuild":     {"SFI": 1.48, "MPX": 0.03, "SFI+D": 3.21, "SFI+X": 3.50, "MPX+D": 2.82, "MPX+X": 3.52},
	"Kextract":   {"SFI": 0.52, "MPX": tilde, "SFI+D": tilde, "SFI+X": tilde, "MPX+D": tilde, "MPX+X": tilde},
	"GnuPG":      {"SFI": 0.15, "MPX": tilde, "SFI+D": 0.15, "SFI+X": 0.15, "MPX+D": tilde, "MPX+X": tilde},
	"OpenSSL":    {"SFI": tilde, "MPX": tilde, "SFI+D": 0.03, "SFI+X": tilde, "MPX+D": 0.01, "MPX+X": tilde},
	"PyBench":    {"SFI": tilde, "MPX": tilde, "SFI+D": tilde, "SFI+X": 0.15, "MPX+D": tilde, "MPX+X": tilde},
	"PHPBench":   {"SFI": 0.06, "MPX": tilde, "SFI+D": 0.03, "SFI+X": 0.50, "MPX+D": 0.66, "MPX+X": tilde},
	"IOzone":     {"SFI": 4.65, "MPX": tilde, "SFI+D": 8.96, "SFI+X": 8.59, "MPX+D": 3.25, "MPX+X": 4.26},
	"DBench":     {"SFI": 0.86, "MPX": tilde, "SFI+D": 4.98, "SFI+X": tilde, "MPX+D": 4.28, "MPX+X": 3.54},
	"PostMark":   {"SFI": 13.51, "MPX": 1.81, "SFI+D": 19.99, "SFI+X": 19.98, "MPX+D": 10.09, "MPX+X": 12.07},
}

// paperCell looks up a paper value for a (row, kind, config), returning
// (value, found).
func paperCell(row string, kind OpKind, cfg string) (float64, bool) {
	var tbl map[string]map[string]float64
	if kind == Bandwidth {
		tbl = PaperTable1Bandwidth
	} else {
		tbl = PaperTable1
	}
	cols, ok := tbl[row]
	if !ok {
		return 0, false
	}
	v, ok := cols[cfg]
	return v, ok
}

// FormatComparison renders a measured table with the paper's numbers
// interleaved ("measured / paper"), for Table 1 or Table 2.
func FormatComparison(t *Table, paper map[string]map[string]float64, useKinds bool) string {
	var sb strings.Builder
	sb.WriteString(t.Title + " — measured / paper\n")
	fmt.Fprintf(&sb, "%-22s", "Benchmark")
	for _, c := range t.Configs {
		fmt.Fprintf(&sb, " %19s", c)
	}
	sb.WriteByte('\n')
	for ri, name := range t.RowNames {
		fmt.Fprintf(&sb, "%-22s", name)
		for ci, cfg := range t.Configs {
			var pv float64
			var ok bool
			if useKinds {
				pv, ok = paperCell(name, t.RowKinds[ri], cfg)
			} else if cols, found := paper[name]; found {
				pv, ok = cols[cfg]
			}
			measured := strings.TrimSpace(cell(t.Overhead[ri][ci]))
			ps := "--"
			if ok {
				ps = paperPct(pv)
			}
			fmt.Fprintf(&sb, " %19s", measured+" / "+ps)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func paperPct(v float64) string {
	if math.IsNaN(v) {
		return "~0%"
	}
	return fmt.Sprintf("%.2f%%", v)
}

// ShapeAgreement summarizes, per configuration column, the rank agreement
// between measured and paper values across rows (Spearman-like: fraction
// of row pairs ordered the same way). It quantifies "the shape holds".
func ShapeAgreement(t *Table, paper map[string]map[string]float64, useKinds bool) map[string]float64 {
	out := make(map[string]float64)
	for ci, cfg := range t.Configs {
		type pair struct{ m, p float64 }
		var vals []pair
		for ri, name := range t.RowNames {
			var pv float64
			var ok bool
			if useKinds {
				pv, ok = paperCell(name, t.RowKinds[ri], cfg)
			} else if cols, found := paper[name]; found {
				pv, ok = cols[cfg]
			}
			if !ok || math.IsNaN(pv) {
				continue
			}
			vals = append(vals, pair{t.Overhead[ri][ci], pv})
		}
		agree, total := 0, 0
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				total++
				if (vals[i].m < vals[j].m) == (vals[i].p < vals[j].p) {
					agree++
				}
			}
		}
		if total > 0 {
			out[cfg] = float64(agree) / float64(total)
		}
	}
	return out
}
