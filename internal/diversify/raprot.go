package diversify

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// TripOffset is the byte offset of the 0xCC tripwire inside a phantom
// instruction (mov $0xCC, %r11 encodes as [opcode][reg][imm64], so the
// tripwire is the first immediate byte).
const TripOffset = 2

// applyEncryption implements return-address encryption (X):
//
//	prologue / pre-return:  mov xkey.<fn>(%rip), %r11 ; xor %r11, (%rsp)
//
// The unmangled return address is pushed by the caller's callq, encrypted
// immediately by the callee, and decrypted just before retq (or before a
// tail jump, with the new callee re-encrypting). Return sites are
// instrumented to zap the decrypted return address lingering below %rsp.
// The xkey load is a %rip-relative safe read from the unreadable-by-
// instrumented-code .krxkeys region.
func applyEncryption(fn *ir.Function, s *Stats) {
	key := KeySym(fn.Name)
	crypt := []isa.Instr{
		isa.Load(isa.R11, isa.MemRIP(key, 0)),
		isa.XorMR(isa.Mem(isa.RSP, 0), isa.R11),
	}
	// Prologue: encrypt at function entry.
	entry := fn.Blocks[0]
	entry.Ins = append(append([]isa.Instr{}, crypt...), entry.Ins...)

	for _, b := range fn.Blocks {
		var out []isa.Instr
		for _, in := range b.Ins {
			switch {
			case in.Op == isa.RET || in.Op == isa.RETI:
				// Decrypt before returning.
				out = append(out, crypt...)
				out = append(out, in)
				s.RetSites++
			case (in.Op == isa.JMP && in.Sym != "") || in.Op == isa.JMPR || in.Op == isa.JMPM:
				// Tail call (direct or indirect/JOP-style dispatch):
				// decrypt; the new callee re-encrypts (§5.2.2).
				out = append(out, crypt...)
				out = append(out, in)
			case in.IsCall():
				out = append(out, in)
				// Return site: zap the (now stale, decrypted) return
				// address that sits below the stack pointer.
				out = append(out, isa.StoreImm(isa.Mem(isa.RSP, -8), 0))
			default:
				out = append(out, in)
			}
		}
		b.Ins = out
	}
}

// applyDecoys implements return-address decoys (D):
//
// Every call site loads the address of a tripwire — an int3 byte hidden in
// the immediate of a phantom instruction placed in a never-executed block of
// the same routine — into the scratch register %r11. The callee prologue
// stores decoy and real return addresses adjacently on the stack, in an
// order fixed randomly at compile time and encoded only in the (unreadable)
// code (Figure 3):
//
//	(a) decoy below:  push %r11
//	    epilogue:     add $8, %rsp ; retq
//	(b) decoy above:  mov (%rsp), %rax ; mov %r11, (%rsp) ; push %rax
//	    epilogue:     retq $8
//
// An attacker harvesting the kernel stack sees both addresses and cannot
// tell which is real; guessing wrong lands on int3 (#BR-class tripwire).
func applyDecoys(fn *ir.Function, rng *rand.Rand, s *Stats) {
	decoyBelow := rng.Intn(2) == 0

	// Callee prologue.
	entry := fn.Blocks[0]
	var pro []isa.Instr
	if decoyBelow {
		pro = []isa.Instr{isa.Push(isa.R11)}
	} else {
		pro = []isa.Instr{
			isa.Load(isa.RAX, isa.Mem(isa.RSP, 0)),
			isa.Store(isa.Mem(isa.RSP, 0), isa.R11),
			isa.Push(isa.RAX),
		}
	}
	entry.Ins = append(pro, entry.Ins...)

	// Call sites and epilogues.
	var tripBlocks []*ir.Block
	nTrip := 0
	for _, b := range fn.Blocks {
		var out []isa.Instr
		for _, in := range b.Ins {
			switch {
			case in.IsCall():
				// Pair this return site with a fresh phantom
				// instruction; pass the tripwire address via %r11.
				label := fmt.Sprintf("krx.trip.%d", nTrip)
				nTrip++
				tripBlocks = append(tripBlocks, &ir.Block{
					Label: label,
					Ins: []isa.Instr{
						isa.MovRI(isa.R11, 0xCC), // phantom: overlaps int3
						isa.Jmp(b.Label),         // never executed
					},
				})
				out = append(out, isa.Instr{
					Op: isa.MOVri, Dst: isa.R11,
					TripSym: label, TripOff: TripOffset,
				})
				out = append(out, in)
				s.CallSites++
				s.TripwireBlocks++
			case in.Op == isa.RET:
				s.RetSites++
				if decoyBelow {
					out = append(out, isa.AddRI(isa.RSP, 8), in)
				} else {
					out = append(out, isa.RetImm(8))
				}
			case in.Op == isa.RETI:
				// Fold the existing ret imm with the decoy slot.
				s.RetSites++
				if decoyBelow {
					out = append(out, isa.AddRI(isa.RSP, 8), in)
				} else {
					out = append(out, isa.RetImm(uint16(in.Imm)+8))
				}
			case (in.Op == isa.JMP && in.Sym != "") || in.Op == isa.JMPR || in.Op == isa.JMPM:
				// Tail call (direct or indirect): restore the stack to
				// [real RA] before jumping; the new callee pushes its own
				// decoy.
				if decoyBelow {
					out = append(out, isa.AddRI(isa.RSP, 8), in)
				} else {
					out = append(out,
						isa.Load(isa.RAX, isa.Mem(isa.RSP, 0)),
						isa.Store(isa.Mem(isa.RSP, 8), isa.RAX),
						isa.AddRI(isa.RSP, 8),
						in)
				}
			default:
				out = append(out, in)
			}
		}
		b.Ins = out
	}
	fn.Blocks = append(fn.Blocks, tripBlocks...)
}
