package chaos

import "testing"

func TestOnLease(t *testing.T) {
	fn := OnLease(2, 1, ActKill)
	if got := fn(2, 1); got != ActKill {
		t.Errorf("fn(2,1) = %v, want kill", got)
	}
	for _, c := range [][2]int{{2, 0}, {2, 2}, {0, 1}, {3, 1}} {
		if got := fn(c[0], c[1]); got != ActNone {
			t.Errorf("fn(%d,%d) = %v, want none", c[0], c[1], got)
		}
	}
}

func TestEveryNth(t *testing.T) {
	fn := EveryNth(3, ActStall)
	want := []Action{ActNone, ActNone, ActStall, ActNone, ActNone, ActStall}
	for l, w := range want {
		if got := fn(7, l); got != w {
			t.Errorf("lease %d: %v, want %v", l, got, w)
		}
	}
}

func TestMergeFirstWins(t *testing.T) {
	fn := Merge(nil, OnLease(0, 0, ActDelay), OnLease(0, 0, ActKill))
	if got := fn(0, 0); got != ActDelay {
		t.Errorf("merge = %v, want delay (first non-none wins)", got)
	}
	if got := fn(1, 5); got != ActNone {
		t.Errorf("merge miss = %v, want none", got)
	}
}

// TestSeededReplayable: the per-(worker, lease) decision is a pure
// derivation from the seed — calling in any order, any number of times,
// returns the same action (with the global cap disabled).
func TestSeededReplayable(t *testing.T) {
	a, b := Seeded(42, 0.3, 0.3, 0.3, 0), Seeded(42, 0.3, 0.3, 0.3, 0)
	for w := 0; w < 4; w++ {
		for l := 0; l < 32; l++ {
			if x, y := a(w, l), b(w, l); x != y {
				t.Fatalf("(%d,%d): %v vs %v — not replayable", w, l, x, y)
			}
		}
	}
	// Different seeds must produce different streams somewhere.
	c := Seeded(43, 0.3, 0.3, 0.3, 0)
	same := true
	for w := 0; w < 4 && same; w++ {
		for l := 0; l < 32; l++ {
			if a(w, l) != c(w, l) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 4x32 decision grids")
	}
}

func TestSeededMaxFaults(t *testing.T) {
	fn := Seeded(42, 1.0, 0, 0, 3)
	fired := 0
	for l := 0; l < 100; l++ {
		if fn(0, l) != ActNone {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d faults, want cap of 3", fired)
	}
}

func TestParse(t *testing.T) {
	if fn, err := Parse(""); err != nil || fn != nil {
		t.Errorf("Parse(\"\") = %v, %v, want nil, nil", fn, err)
	}
	for _, spec := range []string{"kill-one", "expire-third", "stall-recover", "seeded:7"} {
		fn, err := Parse(spec)
		if err != nil || fn == nil {
			t.Errorf("Parse(%q) = %v, %v", spec, fn, err)
		}
	}
	if _, err := Parse("explode"); err == nil {
		t.Error("Parse(\"explode\") succeeded, want error")
	}
	if _, err := Parse("seeded:xyz"); err == nil {
		t.Error("Parse(\"seeded:xyz\") succeeded, want error")
	}
}
