package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
)

func gateTolerance(t *testing.T, def float64) float64 {
	t.Helper()
	tolerance := def
	if s := os.Getenv("KRX_PERF_GATE_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("KRX_PERF_GATE_PCT: %v", err)
		}
		tolerance = v
	}
	return tolerance
}

// TestForkStartupPerfGate holds the tentpole's headline number: standing up
// a worker as a copy-on-write fork of a golden kernel must be at least 10x
// cheaper than booting one cold (ISSUE acceptance: "fork startup >= 10x
// cheaper than cold boot"). Like the other perf gates it is a same-host
// relative comparison, armed only under KRX_PERF_GATE.
func TestForkStartupPerfGate(t *testing.T) {
	if os.Getenv("KRX_PERF_GATE") == "" {
		t.Skip("perf gate disarmed (set KRX_PERF_GATE=1 to gate fork startup cost)")
	}
	presets := core.Presets()
	for _, cfg := range []core.Config{core.Vanilla, presets[len(presets)-1]} {
		r, err := measureFork(cfg, 42, 5)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: boot %d ns, fork %d ns (%.1fx, %.0f forks/sec)",
			r.Name, r.BootNs, r.ForkNs, r.BootOverFork, r.ForksPerSec)
		if r.BootOverFork < 10 {
			t.Errorf("%s: fork only %.1fx cheaper than cold boot, want >= 10x", r.Name, r.BootOverFork)
		}
	}
}

// TestForkIterationPerfGate holds the steady state: a fuzz iteration inside
// a forked worker — sharing every unwritten frame and the golden kernel's
// cloned decode cache — must run at least as fast as one inside a booted
// worker, within the KRX_PERF_GATE_PCT band: both windows run the same
// probe-free executor path over the same programs, so CoW bookkeeping on
// the write paths is exactly what a regression here would be measuring.
// The default band is wider than the other gates' 2%: the metric is a
// ratio of two multi-millisecond wall-clock windows, which swings several
// percent either way on a shared host even at min-of-reps, while the
// failure this gate guards against — CoW work that recurs every iteration
// instead of amortizing, like a break inside the restore loop — costs tens
// of percent.
func TestForkIterationPerfGate(t *testing.T) {
	if os.Getenv("KRX_PERF_GATE") == "" {
		t.Skip("perf gate disarmed (set KRX_PERF_GATE=1 to gate fork-mode iteration cost)")
	}
	tolerance := gateTolerance(t, 10.0)
	presets := core.Presets()
	for _, cfg := range []core.Config{core.Vanilla, presets[len(presets)-1]} {
		// A wider window than the startup gate: the fork/boot ratio sits
		// within a few percent of 1.0, so the timed windows must be long
		// enough (hundreds of iterations) for a min-of-reps ratio to settle
		// inside the KRX_PERF_GATE_PCT band.
		r, err := measureFork(cfg, 42, 25)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(r.IterNsFork) / float64(r.IterNsBoot)
		t.Logf("%s: fork-mode %d ns/iter vs boot-mode %d ns/iter (%.3fx)",
			r.Name, r.IterNsFork, r.IterNsBoot, ratio)
		if 100*(ratio-1) > tolerance {
			t.Errorf("%s: fork-mode iteration %.1f%% slower than boot-mode (> %.1f%% gate)",
				r.Name, 100*(ratio-1), tolerance)
		}
	}
}

// TestForkBaselineRecorded keeps the committed BENCH_emulator.json honest
// without timing anything: the baseline must carry the v5 fork rows, and
// the recorded numbers must show the >= 10x startup win the gate above
// enforces live. Always on — it reads the file, it does not measure.
func TestForkBaselineRecorded(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_emulator.json"))
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base EmuReport
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	if base.SchemaVersion != EmuSchemaVersion {
		t.Fatalf("baseline schema_version %d, want %d: regenerate with krxbench -json",
			base.SchemaVersion, EmuSchemaVersion)
	}
	if len(base.Fork) < 2 {
		t.Fatalf("baseline has %d fork rows, want >= 2 (vanilla + full preset)", len(base.Fork))
	}
	for _, r := range base.Fork {
		if r.ForksPerSec <= 0 || r.ForkNs <= 0 || r.BootNs <= 0 {
			t.Errorf("%s: degenerate timing row: %+v", r.Name, r)
		}
		if r.BootOverFork < 10 {
			t.Errorf("%s: recorded boot_over_fork %.1fx, want >= 10x", r.Name, r.BootOverFork)
		}
		if r.Cycles == 0 || r.IterNsFork <= 0 || r.IterNsBoot <= 0 {
			t.Errorf("%s: missing iteration window data: %+v", r.Name, r)
		}
	}
}
