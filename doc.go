// Package repro is a from-scratch Go reproduction of "kR^X: Comprehensive
// Kernel Protection against Just-In-Time Code Reuse" (Pomonis et al.,
// EuroSys 2017).
//
// The original system is a set of GCC plugins plus Linux kernel patches
// enforcing execute-only kernel memory (R^X) through SFI-style range checks
// or Intel MPX, combined with fine-grained KASLR (function and code-block
// permutation) and return-address protection (XOR encryption or decoys).
// Because a real kernel and compiler cannot be instrumented from Go, this
// repository rebuilds the entire stack as a faithful simulation:
//
//   - internal/isa, internal/cpu — a KX64 (x86-64-flavoured) instruction
//     set and emulator with x86 "execute-implies-read" semantics, MPX bound
//     registers, SMEP, SYSCALL/SYSRET, and cycle accounting;
//   - internal/ir, internal/sfi, internal/diversify, internal/link — the
//     compiler pipeline: RTL-like IR, the krx pass (range checks, O0–O3,
//     MPX), the kaslr pass (slicing, phantom blocks, permutation, return-
//     address encryption/decoys), and the assembler/linker;
//   - internal/kas, internal/mem, internal/pgtable — the kernel address
//     space (vanilla vs kR^X-KAS, physmap synonyms, the .krx_phantom
//     guard) and the Appendix A page-table machinery;
//   - internal/kernel, internal/module — a mini-kernel (syscalls, faults,
//     tracing clones, retrofitted vulnerabilities) and the kR^X-aware
//     module loader-linker;
//   - internal/attack — the §7.3 adversary: gadget scanning, direct ROP,
//     direct and indirect JIT-ROP, and the §5.3 substitution attack;
//   - internal/bench — the Table 1 / Table 2 harness and ablations.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for measured-vs-paper results.
package repro
