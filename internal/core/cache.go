package core

import (
	"fmt"
	"sync"

	"repro/internal/ir"
)

// BuildKey renders the canonical build-cache key of a configuration: every
// field that influences the compiled image, and nothing else. Runtime-only
// knobs (WatchdogBudget, FaultPlan) are deliberately excluded — two kernels
// that differ only in runtime policy share one compiled image.
func (c Config) BuildKey() string {
	return fmt.Sprintf("xom=%d,sfi=%d,div=%t,k=%d,ra=%d,rr=%t,fc=%t,seed=%d,guard=%d,kaslr=%t",
		c.XOM, c.SFILevel, c.Diversify, c.K, c.RAProt, c.RegRand, c.FullCoverage,
		c.Seed, c.GuardSize, c.KASLR)
}

// Cache memoizes Build results by (corpus identity, canonical config key).
// A BuildResult handed out by the cache is shared: callers must treat the
// Prog, Image, and stats as immutable, installing the image into fresh
// address spaces rather than mutating it (link.Image.Install only reads).
//
// Concurrent requests for the same key are single-flighted: exactly one
// build runs, the rest block on it — the build counter therefore counts
// distinct (corpus, config) compilations, which the sweep tests assert on.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	builds  int
	hits    int
}

type cacheEntry struct {
	once sync.Once
	res  *BuildResult
	err  error
}

// NewCache returns an empty build cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Build returns the cached BuildResult for (progID, cfg), compiling prog on
// the first request. progID must identify the corpus contents: callers that
// reuse one in-memory program pass a stable name; callers with distinct
// programs must pass distinct IDs or the cache would alias them.
func (c *Cache) Build(prog *ir.Program, progID string, cfg Config) (*BuildResult, error) {
	key := progID + "\x00" + cfg.BuildKey()
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = Build(prog, cfg)
		c.mu.Lock()
		c.builds++
		c.mu.Unlock()
	})
	return e.res, e.err
}

// Builds reports how many distinct compilations the cache has performed.
func (c *Cache) Builds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds
}

// Hits reports how many requests were served from the cache.
func (c *Cache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Reset drops every cached image and zeroes the counters (test isolation).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.builds, c.hits = 0, 0
}
