package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Builder constructs functions block by block. It is the "assembler syntax"
// used by the mini-kernel sources and by tests.
type Builder struct {
	fn  *Function
	cur *Block
	err error
}

// NewBuilder starts a function. The entry block is created implicitly with
// the label "entry".
func NewBuilder(name string) *Builder {
	b := &Builder{fn: &Function{Name: name}}
	b.Label("entry")
	return b
}

// Label starts a new basic block. Starting a block while the previous one is
// empty discards the empty block (convenient for entry relabeling).
func (b *Builder) Label(label string) *Builder {
	if b.cur != nil && len(b.cur.Ins) == 0 {
		b.cur.Label = label
		return b
	}
	b.cur = &Block{Label: label}
	b.fn.Blocks = append(b.fn.Blocks, b.cur)
	return b
}

// I appends instructions to the current block. The first construction error
// latches: subsequent appends are ignored and the error surfaces from Func.
func (b *Builder) I(ins ...isa.Instr) *Builder {
	if b.err != nil {
		return b
	}
	for _, in := range ins {
		if last := len(b.cur.Ins) - 1; last >= 0 && b.cur.Ins[last].IsTerminator() && b.cur.Ins[last].Op != isa.JCC {
			b.err = fmt.Errorf("ir: %s: instruction %q after terminator in block %q",
				b.fn.Name, in.String(), b.cur.Label)
			return b
		}
		b.cur.Ins = append(b.cur.Ins, in)
	}
	return b
}

// Err returns the first construction error recorded so far (nil if none),
// without finalizing. Useful for callers that build incrementally and want
// to fail fast.
func (b *Builder) Err() error { return b.err }

// NoInstrument marks the function as exempt from R^X instrumentation.
func (b *Builder) NoInstrument() *Builder {
	b.fn.NoInstrument = true
	return b
}

// NoDiversify marks the function as exempt from fine-grained KASLR.
func (b *Builder) NoDiversify() *Builder {
	b.fn.NoDiversify = true
	return b
}

// Func finalizes and validates the function. This is the canonical,
// error-propagating finalizer: every caller that assembles IR from dynamic
// or untrusted input (fuzzers, loaders, user-supplied programs) must use it
// and handle the error.
func (b *Builder) Func() (*Function, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.fn.Validate(); err != nil {
		return nil, err
	}
	return b.fn, nil
}

// MustFunc is the Must-style wrapper over Func for statically-known IR
// (package-level corpus definitions and test fixtures, where a construction
// error is a programmer error caught by the first test run). It panics on
// malformed input and must not be reached from dynamic or fuzzer-driven
// construction paths — those go through Func.
func (b *Builder) MustFunc() *Function {
	f, err := b.Func()
	if err != nil {
		panic(fmt.Errorf("ir: MustFunc(%s): %w", b.fn.Name, err))
	}
	return f
}
