package cpu

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// countProbe records every OnExec callback and, when it also acts as a
// TrapProbe, every trap delivery.
type countProbe struct {
	tag    string
	order  *[]string // shared dispatch log, appended to per callback
	execs  int
	cycles uint64
	traps  int
	trapC  uint64
}

func (p *countProbe) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	p.execs++
	p.cycles += cycles
	if p.order != nil {
		*p.order = append(*p.order, p.tag)
	}
}

func (p *countProbe) OnTrap(t *Trap, cycles uint64) {
	p.traps++
	p.trapC += cycles
}

func probeTestCPU(t *testing.T) *CPU {
	t.Helper()
	f := mustFunc(t, ir.NewBuilder("f").
		I(
			isa.MovRI(isa.RAX, 1),
			isa.AddRI(isa.RAX, 2),
			isa.Ret(),
		))
	c, img, sp := buildAndInstall(t, &ir.Program{Funcs: []*ir.Function{f}})
	callKernelFunc(t, c, img, sp, "f")
	return c
}

func TestProbeDispatchAndCounts(t *testing.T) {
	c := probeTestCPU(t)
	p := &countProbe{tag: "p"}
	c.AddProbe(p)
	before := c.Cycles
	res := c.Run(100)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v", res.Reason)
	}
	if p.execs != int(res.Instrs) {
		t.Errorf("probe saw %d instructions, CPU executed %d", p.execs, res.Instrs)
	}
	if p.cycles != c.Cycles-before {
		t.Errorf("probe cycles %d != CPU delta %d", p.cycles, c.Cycles-before)
	}
}

func TestMultiProbeOrderAndRemoval(t *testing.T) {
	c := probeTestCPU(t)
	var order []string
	a := &countProbe{tag: "a", order: &order}
	b := &countProbe{tag: "b", order: &order}
	c.AddProbe(a)
	c.AddProbe(b)
	if _, trap := c.Step(); trap != nil {
		t.Fatal(trap)
	}
	want := []string{"a", "b"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}

	// Removing b leaves a as the single-probe fast path: the dispatcher
	// must be the probe itself, not a fan-out wrapper.
	c.RemoveProbe(b)
	if c.probe != ExecProbe(a) {
		t.Fatalf("single-probe fast path not restored: %T", c.probe)
	}
	order = order[:0]
	if _, trap := c.Step(); trap != nil {
		t.Fatal(trap)
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("dispatch after removal %v", order)
	}
	if b.execs != 1 {
		t.Errorf("removed probe still dispatched: %d", b.execs)
	}

	c.RemoveProbe(a)
	if c.probe != nil || len(c.probes) != 0 {
		t.Fatalf("probe list not empty after removals: %v", c.probes)
	}
	// Removing an uninstalled probe is a no-op.
	c.RemoveProbe(a)
}

func TestTrapProbeSeesDeliveryCost(t *testing.T) {
	c := probeTestCPU(t)
	p := &countProbe{tag: "p"}
	c.AddProbe(p) // countProbe implements TrapProbe: auto-registered
	c.Pending = &Trap{Kind: TrapUndefined, RIP: c.RIP, Mode: Kernel}
	res := c.Run(100)
	if res.Reason != StopTrap {
		t.Fatalf("run: %v", res.Reason)
	}
	if p.traps != 1 || p.trapC != isa.TrapCost {
		t.Errorf("trap probe saw %d traps / %d cycles, want 1 / %d", p.traps, p.trapC, isa.TrapCost)
	}
	// Conservation across both channels: exec cycles + trap cost account
	// for every cycle the CPU charged.
	if p.cycles+p.trapC != c.Cycles {
		t.Errorf("exec %d + trap %d != CPU cycles %d", p.cycles, p.trapC, c.Cycles)
	}
	c.RemoveProbe(p)
	if len(c.trapProbes) != 0 {
		t.Errorf("trap probe not unregistered on RemoveProbe")
	}
}

func TestTrapOnlyProbe(t *testing.T) {
	c := probeTestCPU(t)
	p := &countProbe{tag: "p"}
	c.AddTrapProbe(p)
	c.Pending = &Trap{Kind: TrapProtection, RIP: c.RIP, Mode: Kernel}
	if res := c.Run(100); res.Reason != StopTrap {
		t.Fatalf("run: %v", res.Reason)
	}
	if p.traps != 1 {
		t.Errorf("trap-only probe saw %d traps, want 1", p.traps)
	}
	if p.execs != 0 {
		t.Errorf("trap-only probe saw %d exec callbacks, want 0", p.execs)
	}
	c.RemoveTrapProbe(p)
	if len(c.trapProbes) != 0 {
		t.Errorf("trap-only probe not removed")
	}
}

func TestExecProbeFunc(t *testing.T) {
	c := probeTestCPU(t)
	n := 0
	p := ExecProbeFunc(func(rip uint64, in *isa.Instr, cycles uint64) { n++ })
	c.AddProbe(p)
	res := c.Run(100)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v", res.Reason)
	}
	if n != int(res.Instrs) {
		t.Errorf("func probe saw %d, want %d", n, res.Instrs)
	}
}
