package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/store"
)

// Registry is a named counter/gauge collection: the one place the ad-hoc
// statistics previously scattered across the build cache, the decode cache,
// and the fuzzer report through. Counters are owned values incremented by
// the instrumented code; gauges are pull-based closures sampled at Snapshot
// time. Snapshot order is sorted by name, so every rendering is
// deterministic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() uint64
}

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() uint64),
	}
}

// Counter returns the named counter, creating it on first use. A name is
// either a counter or a gauge, never both; registering across kinds
// panics (a wiring bug, not a runtime condition).
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; ok {
		panic("obs: metric " + name + " already registered as a gauge")
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a pull-based metric sampled at Snapshot time.
// Re-registering a name replaces its closure.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; ok {
		panic("obs: metric " + name + " already registered as a counter")
	}
	r.gauges[name] = fn
}

// Metric is one sampled value.
type Metric struct {
	Name  string
	Value uint64
}

// Snapshot samples every metric, sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: c.Value()})
	}
	fns := make([]Metric, 0, len(r.gauges))
	gaugeFns := make(map[string]func() uint64, len(r.gauges))
	for name, fn := range r.gauges {
		gaugeFns[name] = fn
	}
	r.mu.Unlock()
	// Sample gauges outside the lock: a gauge closure may itself take
	// locks (e.g. the build cache's).
	for name, fn := range gaugeFns {
		fns = append(fns, Metric{Name: name, Value: fn()})
	}
	out = append(out, fns...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Format renders the snapshot one "name value" per line.
func (r *Registry) Format() string {
	var sb strings.Builder
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&sb, "%-40s %d\n", m.Name, m.Value)
	}
	return sb.String()
}

// RegisterDecodeCache publishes a CPU's decode-cache statistics under
// prefix (e.g. "decode_cache").
func RegisterDecodeCache(r *Registry, prefix string, c *cpu.CPU) {
	stat := func(pick func(cpu.DecodeCacheStats) uint64) func() uint64 {
		return func() uint64 { return pick(c.DecodeCacheStats()) }
	}
	r.Gauge(prefix+".hits", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Hits }))
	r.Gauge(prefix+".misses", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Misses }))
	r.Gauge(prefix+".decoded", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Decoded }))
	r.Gauge(prefix+".invalidations", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Invalidations }))
	r.Gauge(prefix+".remaps", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Remaps }))
	r.Gauge(prefix+".pages", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Pages }))
	r.Gauge(prefix+".entries", stat(func(s cpu.DecodeCacheStats) uint64 { return s.Entries }))
}

// RegisterBlockEngine publishes a CPU's superblock-engine statistics under
// prefix (e.g. "block_engine").
func RegisterBlockEngine(r *Registry, prefix string, c *cpu.CPU) {
	stat := func(pick func(cpu.BlockStats) uint64) func() uint64 {
		return func() uint64 { return pick(c.BlockStats()) }
	}
	r.Gauge(prefix+".blocks", stat(func(s cpu.BlockStats) uint64 { return s.Blocks }))
	r.Gauge(prefix+".formed", stat(func(s cpu.BlockStats) uint64 { return s.Formed }))
	r.Gauge(prefix+".compiled", stat(func(s cpu.BlockStats) uint64 { return s.Compiled }))
	r.Gauge(prefix+".fused", stat(func(s cpu.BlockStats) uint64 { return s.Fused }))
	r.Gauge(prefix+".dispatches", stat(func(s cpu.BlockStats) uint64 { return s.Dispatches }))
	r.Gauge(prefix+".instrs", stat(func(s cpu.BlockStats) uint64 { return s.Instrs }))
	r.Gauge(prefix+".aborts", stat(func(s cpu.BlockStats) uint64 { return s.Aborts }))
	r.Gauge(prefix+".chained", stat(func(s cpu.BlockStats) uint64 { return s.Chained }))
	r.Gauge(prefix+".severed", stat(func(s cpu.BlockStats) uint64 { return s.Severed }))
	r.Gauge(prefix+".cold", stat(func(s cpu.BlockStats) uint64 { return s.Cold }))
}

// RegisterDataTLB publishes an address space's data-TLB counters under
// prefix (e.g. "dtlb").
func RegisterDataTLB(r *Registry, prefix string, as *mem.AddressSpace) {
	r.Gauge(prefix+".hits", func() uint64 { return as.DataTLBStats().Hits })
	r.Gauge(prefix+".misses", func() uint64 { return as.DataTLBStats().Misses })
}

// RegisterStore publishes an artifact store's (or build cache's) counters
// under prefix (e.g. "store"). Anything implementing store.StatsSource
// registers the same way — a single layer, a layered composition, or the
// image cache folding its backing store in.
func RegisterStore(r *Registry, prefix string, src store.StatsSource) {
	stat := func(pick func(store.Stats) uint64) func() uint64 {
		return func() uint64 { return pick(src.Stats()) }
	}
	r.Gauge(prefix+".hits", stat(func(s store.Stats) uint64 { return s.Hits }))
	r.Gauge(prefix+".misses", stat(func(s store.Stats) uint64 { return s.Misses }))
	r.Gauge(prefix+".puts", stat(func(s store.Stats) uint64 { return s.Puts }))
	r.Gauge(prefix+".evictions", stat(func(s store.Stats) uint64 { return s.Evictions }))
	r.Gauge(prefix+".corrupt", stat(func(s store.Stats) uint64 { return s.Corrupt }))
	r.Gauge(prefix+".bytes", stat(func(s store.Stats) uint64 { return s.Bytes }))
	r.Gauge(prefix+".pins", stat(func(s store.Stats) uint64 { return s.Pins }))
	r.Gauge(prefix+".builds", stat(func(s store.Stats) uint64 { return s.Builds }))
}

// RegisterCPU publishes a CPU's cumulative execution counters under prefix
// (e.g. "cpu").
func RegisterCPU(r *Registry, prefix string, c *cpu.CPU) {
	r.Gauge(prefix+".instrs", func() uint64 { return c.Instrs })
	r.Gauge(prefix+".cycles", func() uint64 { return c.Cycles })
}

// RegisterTracer publishes a tracer's occupancy under prefix (e.g.
// "trace").
func RegisterTracer(r *Registry, prefix string, t *Tracer) {
	r.Gauge(prefix+".events", func() uint64 { return uint64(t.Len()) })
	r.Gauge(prefix+".dropped", func() uint64 { return t.Dropped() })
}

// RegisterFork publishes copy-on-write fork statistics under prefix (e.g.
// "fork"): the process-wide fork count (pass kernel.Forks — taking a func
// keeps obs from importing kernel) and one address space's frame-sharing
// counters. The space is a provider, not a pointer, because the space worth
// watching may not exist yet at registration time (fuzzd boots its golden
// kernel lazily on the first worker spawn); a nil provider result reads as
// zeros.
func RegisterFork(r *Registry, prefix string, forks func() uint64, as func() *mem.AddressSpace) {
	r.Gauge(prefix+".forks", forks)
	stat := func(pick func(mem.CowStats) uint64) func() uint64 {
		return func() uint64 {
			a := as()
			if a == nil {
				return 0
			}
			return pick(a.CowStats())
		}
	}
	r.Gauge(prefix+".shared_frames", stat(func(s mem.CowStats) uint64 { return s.SharedFrames }))
	r.Gauge(prefix+".cow_breaks", stat(func(s mem.CowStats) uint64 { return s.Breaks }))
	r.Gauge(prefix+".private_frames", stat(func(s mem.CowStats) uint64 { return s.PrivateFrames }))
}
