// Package audit verifies the kR^X security invariants of a booted kernel:
// the post-deployment checker a hardening project ships so operators can
// confirm the protections actually hold on a live system. It inspects the
// installed address space, the linked image, and the generated code, and
// reports every violation it finds.
package audit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// Finding is one audit result.
type Finding struct {
	Check  string
	OK     bool
	Detail string
}

func (f Finding) String() string {
	verdict := "ok  "
	if !f.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("[%s] %-28s %s", verdict, f.Check, f.Detail)
}

// Report is a full audit run.
type Report struct {
	Findings []Finding
}

// OK reports whether every finding passed.
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if !f.OK {
			return false
		}
	}
	return true
}

// String renders the report, one finding per line.
func (r *Report) String() string {
	s := ""
	for _, f := range r.Findings {
		s += f.String() + "\n"
	}
	return s
}

func (r *Report) add(check string, ok bool, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Check: check, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// Audit runs every applicable invariant check against the kernel.
func Audit(k *kernel.Kernel) *Report {
	r := &Report{}
	auditWX(k, r)
	if k.Img.Layout.Kind == kas.KRX {
		auditBoundary(k, r)
		auditSynonyms(k, r)
		auditGuard(k, r)
		auditKeys(k, r)
	}
	if k.Cfg.Diversify {
		auditEntryPhantoms(k, r)
	}
	if k.Cfg.XOM == core.XOMSFI {
		auditHandlerReachable(k, r)
	}
	if k.Cfg.XOM == core.XOMHideM {
		auditShadows(k, r)
	}
	return r
}

// auditShadows: under the HideM baseline every executable kernel page must
// serve the zero shadow to data reads while remaining fetchable.
func auditShadows(k *kernel.Kernel, r *Report) {
	bad := 0
	for _, rg := range k.Space.AS.Ranges() {
		if rg.Perm&mem.PermX == 0 || rg.Start < kas.KernelBase {
			continue
		}
		for va := rg.Start; va < rg.End; va += mem.PageSize {
			b, f := k.Space.AS.LoadByte(va)
			if f != nil || b != 0 {
				bad++
			}
			var buf [1]byte
			if _, f := k.Space.AS.Fetch(va, buf[:]); f != nil {
				bad++
			}
		}
	}
	r.add("hidem shadows", bad == 0, "%d pages with a readable code view", bad)
}

// auditWX: no page is simultaneously writable and executable (the W^X
// hardening assumption of §3).
func auditWX(k *kernel.Kernel, r *Report) {
	bad := 0
	var where uint64
	for _, rg := range k.Space.AS.Ranges() {
		if rg.Perm&mem.PermW != 0 && rg.Perm&mem.PermX != 0 {
			bad++
			where = rg.Start
		}
	}
	r.add("W^X", bad == 0, "%d W+X ranges (first at %#x)", bad, where)
}

// auditBoundary: under kR^X-KAS every executable page lies above
// _krx_edata and every writable page below it.
func auditBoundary(k *kernel.Kernel, r *Report) {
	// Kernel-image and module ranges only: user pages and the physmap
	// live far below the boundary by construction.
	edata := k.Sym("_krx_edata")
	badX, badW := 0, 0
	for _, rg := range k.Space.AS.Ranges() {
		if rg.Perm&mem.PermX != 0 && rg.Start < edata && rg.Start >= kas.KernelBase {
			badX++
		}
		if rg.Perm&mem.PermW != 0 && rg.Start >= edata && rg.Start < kas.FixmapBase {
			badW++
		}
	}
	r.add("R^X boundary", badX == 0 && badW == 0,
		"%d executable ranges below _krx_edata, %d writable above", badX, badW)
}

// auditSynonyms: no code-region page may have a readable physmap alias.
func auditSynonyms(k *kernel.Kernel, r *Report) {
	leaks := 0
	for _, rg := range k.Space.AS.Ranges() {
		if rg.Perm&mem.PermX == 0 || rg.Start < kas.KernelBase {
			continue
		}
		for va := rg.Start; va < rg.End; va += mem.PageSize {
			if syn, ok := k.Space.SynonymAddr(va); ok {
				if _, f := k.Space.AS.LoadByte(syn); f == nil {
					leaks++
				}
			}
		}
	}
	r.add("physmap synonyms", leaks == 0, "%d code pages readable through the physmap", leaks)
}

// auditGuard: the .krx_phantom guard is mapped with no permissions and is
// larger than the biggest uninstrumented %rsp displacement.
func auditGuard(k *kernel.Kernel, r *Report) {
	guard := k.Img.Layout.Region(".krx_phantom")
	if guard == nil {
		r.add("guard section", false, "missing")
		return
	}
	perm, ok := k.Space.AS.PermAt(guard.Start)
	inaccessible := ok && perm == 0
	big := uint64(k.Build.SFIStats.MaxStackDisp) < guard.Size
	r.add("guard section", inaccessible && big,
		"perm=%v size=%#x maxStackDisp=%#x", perm, guard.Size, k.Build.SFIStats.MaxStackDisp)
}

// auditKeys: every xkey slot lives above _krx_edata (unreachable by
// instrumented reads) and holds a non-zero value (replenished at boot).
func auditKeys(k *kernel.Kernel, r *Report) {
	if len(k.Img.KeyAddrs) == 0 {
		r.add("xkeys", true, "no keys (no return-address encryption)")
		return
	}
	edata := k.Sym("_krx_edata")
	badPlace, badValue := 0, 0
	for _, addr := range k.Img.KeyAddrs {
		if addr < edata {
			badPlace++
		}
		b, err := k.Space.AS.Peek(addr, 8)
		if err != nil {
			badPlace++
			continue
		}
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		if v == 0 {
			badValue++
		}
	}
	r.add("xkeys", badPlace == 0 && badValue == 0,
		"%d keys, %d misplaced, %d unreplenished", len(k.Img.KeyAddrs), badPlace, badValue)
}

// auditEntryPhantoms: every diversified function begins with a lone jmp
// (the entry phantom block), so leaked function pointers reveal no gadgets.
func auditEntryPhantoms(k *kernel.Kernel, r *Report) {
	bad := 0
	textStart := k.Sym("_text")
	for _, fs := range k.Img.Funcs {
		fn := k.Build.Prog.Func(fs.Name)
		if fn == nil || fn.NoDiversify {
			continue
		}
		off := fs.Addr - textStart
		if off >= uint64(len(k.Img.Text)) {
			bad++
			continue
		}
		in, _, err := isa.Decode(k.Img.Text[off:])
		if err != nil || in.Op != isa.JMP {
			bad++
		}
	}
	r.add("entry phantoms", bad == 0, "%d diversified functions lacking the entry jmp", bad)
}

// auditHandlerReachable: the SFI violation handler exists and halts.
func auditHandlerReachable(k *kernel.Kernel, r *Report) {
	addr, ok := k.Img.FuncAddr("krx_handler")
	if !ok {
		r.add("krx_handler", false, "symbol missing")
		return
	}
	var buf [16]byte
	n, f := k.Space.AS.Fetch(addr, buf[:])
	if f != nil || n == 0 {
		r.add("krx_handler", false, "not fetchable: %v", f)
		return
	}
	// The handler body must reach a hlt.
	found := false
	for _, line := range isa.Disassemble(buf[:n], addr) {
		if line.Err == nil && line.Instr.Op == isa.HLT {
			found = true
			break
		}
	}
	r.add("krx_handler", found, "halting handler at %#x", addr)
}
