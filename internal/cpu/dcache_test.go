package cpu

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Raw-page harness: the decode-cache tests work on hand-encoded bytes in
// plain mapped pages (no linker, no kR^X layout) so that they control every
// byte the cache sees.
const (
	dcCodeVA  = 0x100000
	dcDataVA  = 0x200000
	dcStackVA = 0x300000
)

// rawCPU maps two code pages (perm as given), a data page, and a stack
// page, installs the encoded program at dcCodeVA, and returns a kernel-mode
// CPU ready to Run until the sentinel RET.
func rawCPU(t *testing.T, codePerm mem.Perm, prog ...isa.Instr) *CPU {
	t.Helper()
	as := mem.NewAddressSpace()
	for _, m := range []struct {
		va   uint64
		n    int
		perm mem.Perm
	}{
		{dcCodeVA, 2, codePerm},
		{dcDataVA, 1, mem.PermRW},
		{dcStackVA, 1, mem.PermRW},
	} {
		if _, err := as.Map(m.va, m.n, m.perm); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.Poke(dcCodeVA, encodeProg(t, prog...)); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	resetRaw(t, c)
	return c
}

// resetRaw rewinds the CPU to the program entry with a fresh stop sentinel.
func resetRaw(t *testing.T, c *CPU) {
	t.Helper()
	c.Mode = Kernel
	c.RIP = dcCodeVA
	c.Regs[isa.RSP] = dcStackVA + mem.PageSize - 16
	if f := c.AS.Write(c.Regs[isa.RSP], StopMagic, 8); f != nil {
		t.Fatal(f)
	}
}

func encodeProg(t *testing.T, prog ...isa.Instr) []byte {
	t.Helper()
	var b []byte
	var err error
	for _, in := range prog {
		if b, err = in.Encode(b); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func mustReturn(t *testing.T, c *CPU, limit uint64) *RunResult {
	t.Helper()
	res := c.Run(limit)
	if res.Reason != StopReturn {
		t.Fatalf("run: %v trap=%v", res.Reason, res.Trap)
	}
	return res
}

func TestDecodeCacheHitsAndStats(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 5),
		isa.AddRI(isa.RAX, 7),
		isa.Ret(),
	)
	mustReturn(t, c, 100)
	s := c.DecodeCacheStats()
	if s.Decoded == 0 || s.Pages == 0 || s.Entries == 0 {
		t.Fatalf("cold run must populate the cache: %+v", s)
	}
	if s.Invalidations != 0 {
		t.Fatalf("nothing wrote code, yet %d invalidations", s.Invalidations)
	}

	// A second run of the same code is pure hits: no new decodes.
	resetRaw(t, c)
	mustReturn(t, c, 100)
	s2 := c.DecodeCacheStats()
	if s2.Decoded != s.Decoded {
		t.Errorf("warm run decoded %d new instructions", s2.Decoded-s.Decoded)
	}
	if s2.Hits != s.Hits+3 {
		t.Errorf("warm run: hits %d -> %d, want +3", s.Hits, s2.Hits)
	}
	if c.Reg(isa.RAX) != 12 {
		t.Errorf("rax = %d, want 12", c.Reg(isa.RAX))
	}
}

// TestDecodeCachePokeInvalidation: rewriting code through Poke (the module
// loader / boot path) must be observed on the very next Step.
func TestDecodeCachePokeInvalidation(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 1),
		isa.Ret(),
	)
	mustReturn(t, c, 100)
	if c.Reg(isa.RAX) != 1 {
		t.Fatalf("rax = %d, want 1", c.Reg(isa.RAX))
	}

	if err := c.AS.Poke(dcCodeVA, encodeProg(t, isa.MovRI(isa.RAX, 2))); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if c.Reg(isa.RAX) != 2 {
		t.Fatalf("stale decode executed: rax = %d, want 2", c.Reg(isa.RAX))
	}
	if s := c.DecodeCacheStats(); s.Invalidations == 0 {
		t.Error("poke must flush the page's decodes")
	}
}

// TestDecodeCacheAliasInvalidation: a store through a second mapping of the
// same frame (the physmap synonym attack surface, patch.TextPoke's
// mechanism) must invalidate decodes cached under the executable mapping.
func TestDecodeCacheAliasInvalidation(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 1),
		isa.Ret(),
	)
	frames, err := c.AS.FramesAt(dcCodeVA, 1)
	if err != nil {
		t.Fatal(err)
	}
	const alias = uint64(0x800000)
	if err := c.AS.MapFrames(alias, frames, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	mustReturn(t, c, 100)

	// MOVri encodes [op][reg][imm64]; flip the immediate's low byte
	// through the writable alias.
	if f := c.AS.StoreByte(alias+2, 9); f != nil {
		t.Fatal(f)
	}
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if c.Reg(isa.RAX) != 9 {
		t.Fatalf("alias write not observed: rax = %d, want 9", c.Reg(isa.RAX))
	}
}

// TestDecodeCacheCachedUD: a deterministic in-page decode failure is cached
// as a #UD slot and replayed without Instrs/Cycles side effects —
// bit-identical to the slow path's trap.
func TestDecodeCacheCachedUD(t *testing.T) {
	mkCPU := func(cacheOn bool) *CPU {
		as := mem.NewAddressSpace()
		if _, err := as.Map(dcCodeVA, 1, mem.PermX); err != nil {
			t.Fatal(err)
		}
		bad := byte(0x01)
		if isa.Opcode(bad).Valid() {
			t.Fatalf("test assumes 0x%02x is undefined", bad)
		}
		if err := as.Poke(dcCodeVA, []byte{bad}); err != nil {
			t.Fatal(err)
		}
		c := New(as)
		c.SetDecodeCache(cacheOn)
		c.Mode = Kernel
		c.RIP = dcCodeVA
		return c
	}

	ref := mkCPU(false)
	_, want := ref.Step()

	c := mkCPU(true)
	for i := 0; i < 2; i++ { // cold (fill -> -1 slot) then cached replay
		stop, trap := c.Step()
		if stop != StepContinue || trap == nil {
			t.Fatalf("step %d: stop=%v trap=%v", i, stop, trap)
		}
		if *trap != *want {
			t.Fatalf("step %d: trap %+v, slow path %+v", i, *trap, *want)
		}
		if c.Instrs != 0 || c.Cycles != 0 {
			t.Fatalf("step %d: #UD must not count: instrs=%d cycles=%d", i, c.Instrs, c.Cycles)
		}
	}
	if s := c.DecodeCacheStats(); s.Hits == 0 {
		t.Error("second #UD must replay from the cached slot")
	}
}

// TestDecodeCachePageTail: an instruction straddling the page boundary is
// never cached — its bytes extend past the frame — so a write to the second
// page alone must still be observed.
func TestDecodeCachePageTail(t *testing.T) {
	run := func(cacheOn bool) (*CPU, *RunResult) {
		as := mem.NewAddressSpace()
		if _, err := as.Map(dcCodeVA, 2, mem.PermX); err != nil {
			t.Fatal(err)
		}
		if _, err := as.Map(dcStackVA, 1, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		// Pad with NOPs so a MOVri [op][reg][imm64] starts 3 bytes before
		// the boundary: 3 bytes on page 0, 7 bytes on page 1.
		code := bytes.Repeat([]byte{byte(isa.NOP)}, mem.PageSize-3)
		code, err := isa.MovRI(isa.RBX, 0x1122334455667788).Encode(code)
		if err != nil {
			t.Fatal(err)
		}
		code, err = isa.Ret().Encode(code)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.Poke(dcCodeVA, code); err != nil {
			t.Fatal(err)
		}
		c := New(as)
		c.SetDecodeCache(cacheOn)
		resetRaw(t, c)
		res := c.Run(2 * mem.PageSize)
		if res.Reason != StopReturn {
			t.Fatalf("run: %v trap=%v", res.Reason, res.Trap)
		}
		return c, res
	}

	on, resOn := run(true)
	_, resOff := run(false)
	if on.Reg(isa.RBX) != 0x1122334455667788 {
		t.Fatalf("straddling mov: rbx = %#x", on.Reg(isa.RBX))
	}
	if resOn.Instrs != resOff.Instrs || resOn.Cycles != resOff.Cycles {
		t.Fatalf("cache on/off diverge: %+v vs %+v", resOn, resOff)
	}

	// Rewrite ONLY the second page's bytes (the straddling instruction's
	// immediate tail). If the straddler had been cached under page 0 —
	// whose frame never changed — this write would go unseen.
	if err := on.AS.Poke(dcCodeVA+mem.PageSize, make([]byte, 7)); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, on)
	if res := on.Run(2 * mem.PageSize); res.Reason != StopReturn {
		t.Fatalf("rerun: %v trap=%v", res.Reason, res.Trap)
	}
	if got := on.Reg(isa.RBX); got != 0x88 {
		t.Fatalf("page-tail instruction served stale: rbx = %#x, want 0x88", got)
	}
}

// TestDecodeCacheProtectUnmap: structural changes (permissions, unmapping)
// are observed through the map generation — the cached page must not keep
// executing after losing PermX or its mapping.
func TestDecodeCacheProtectUnmap(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 1),
		isa.Ret(),
	)
	mustReturn(t, c, 100)

	if err := c.AS.Protect(dcCodeVA, 1, mem.PermR); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, c)
	_, trap := c.Step()
	if trap == nil || trap.Kind != TrapPageFault || trap.Fault.Kind != mem.FaultNoExec {
		t.Fatalf("exec after Protect(R): %+v", trap)
	}

	if err := c.AS.Protect(dcCodeVA, 1, mem.PermX); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, c)
	mustReturn(t, c, 100)

	if err := c.AS.Unmap(dcCodeVA, 1); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, c)
	_, trap = c.Step()
	if trap == nil || trap.Kind != TrapPageFault || trap.Fault.Kind != mem.FaultNotMapped {
		t.Fatalf("exec after Unmap: %+v", trap)
	}
}

// TestDecodeCacheRollback: Checkpoint/Rollback restores both the bytes and
// the decodes — execution after rollback must match the pre-poke program.
func TestDecodeCacheRollback(t *testing.T) {
	c := rawCPU(t, mem.PermX,
		isa.MovRI(isa.RAX, 1),
		isa.Ret(),
	)
	c.AS.Checkpoint()
	mustReturn(t, c, 100)

	if err := c.AS.Poke(dcCodeVA, encodeProg(t, isa.MovRI(isa.RAX, 2))); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if c.Reg(isa.RAX) != 2 {
		t.Fatalf("post-poke rax = %d, want 2", c.Reg(isa.RAX))
	}

	if err := c.AS.Rollback(); err != nil {
		t.Fatal(err)
	}
	resetRaw(t, c)
	mustReturn(t, c, 100)
	if c.Reg(isa.RAX) != 1 {
		t.Fatalf("post-rollback rax = %d, want 1 (stale decode survived rollback)", c.Reg(isa.RAX))
	}
}

func TestSetDecodeCache(t *testing.T) {
	c := rawCPU(t, mem.PermX, isa.Nop(), isa.Ret())
	mustReturn(t, c, 100)
	if !c.DecodeCacheEnabled() {
		t.Fatal("cache must default on")
	}
	warm := c.DecodeCacheStats()
	if warm.Decoded == 0 || warm.Pages == 0 || warm.Entries == 0 {
		t.Fatalf("warm cache must report activity and footprint: %+v", warm)
	}
	c.SetDecodeCache(false)
	if c.DecodeCacheEnabled() {
		t.Fatal("disable failed")
	}
	// Cumulative counters survive the toggle (they live on the CPU, same
	// contract as BlockStats); only the live footprint reads zero while off.
	off := c.DecodeCacheStats()
	if off.Pages != 0 || off.Entries != 0 {
		t.Fatalf("disabled cache must report zero live footprint: %+v", off)
	}
	off.Pages, off.Entries = warm.Pages, warm.Entries
	if off != warm {
		t.Fatalf("cumulative stats must survive SetDecodeCache(false): got %+v, want %+v", off, warm)
	}
	resetRaw(t, c)
	mustReturn(t, c, 100) // slow path still executes correctly
	c.SetDecodeCache(true)
	resetRaw(t, c)
	mustReturn(t, c, 100)
	s := c.DecodeCacheStats()
	if s.Decoded <= warm.Decoded {
		t.Fatalf("re-enabled cache must keep accumulating on the surviving counters: %+v vs warm %+v", s, warm)
	}
}

// TestCacheStatsResetUnification pins the unified reset contract across
// every cache-layer toggle: both DecodeCacheStats and BlockStats counters
// are cumulative-on-CPU — SetDecodeCache and SetBlockEngine toggles must
// never zero history — and a forked CPU restarts both at zero.
func TestCacheStatsResetUnification(t *testing.T) {
	c := rawCPU(t, mem.PermX, isa.Nop(), isa.Ret())
	c.SetBlockHotThreshold(1)
	for i := 0; i < 4; i++ {
		resetRaw(t, c)
		mustReturn(t, c, 100)
	}
	ds, bs := c.DecodeCacheStats(), c.BlockStats()
	if ds.Hits == 0 || bs.Dispatches == 0 {
		t.Fatalf("warm-up produced no activity: dc=%+v blk=%+v", ds, bs)
	}

	// Toggling either layer off and on preserves every cumulative counter.
	c.SetBlockEngine(false)
	c.SetDecodeCache(false)
	c.SetDecodeCache(true)
	c.SetBlockEngine(true)
	ds2, bs2 := c.DecodeCacheStats(), c.BlockStats()
	ds2.Pages, ds2.Entries = ds.Pages, ds.Entries // live footprint: dropped by design
	bs2.Blocks = bs.Blocks
	if ds2 != ds {
		t.Fatalf("decode-cache counters reset across toggles: got %+v, want %+v", ds2, ds)
	}
	if bs2 != bs {
		t.Fatalf("block-engine counters reset across toggles: got %+v, want %+v", bs2, bs)
	}

	// A forked CPU is a new CPU for stats purposes: both sets restart at
	// zero even though it inherits the warm cache.
	fas, err := c.AS.Fork()
	if err != nil {
		t.Fatal(err)
	}
	f := c.Fork(fas)
	fd, fb := f.DecodeCacheStats(), f.BlockStats()
	if fd.Hits != 0 || fd.Misses != 0 || fd.Decoded != 0 {
		t.Fatalf("forked CPU must restart decode-cache counters at zero: %+v", fd)
	}
	if fb.Dispatches != 0 || fb.Formed != 0 || fb.Instrs != 0 {
		t.Fatalf("forked CPU must restart block-engine counters at zero: %+v", fb)
	}
	// And the parent's counters are untouched by the fork.
	ds3 := c.DecodeCacheStats()
	if ds3.Hits != ds.Hits || ds3.Decoded != ds.Decoded {
		t.Fatalf("fork disturbed parent decode-cache counters: got %+v, want %+v", ds3, ds)
	}
}

// dcDigest installs an exec probe folding the callback stream — rip,
// opcode, and cycle delta of every executed instruction, in order — into a
// hash readable through the returned pointer.
func dcDigest(c *CPU) *uint64 {
	h := fnv.New64a()
	out := new(uint64)
	var buf [17]byte
	c.AddProbe(ExecProbeFunc(func(rip uint64, in *isa.Instr, cycles uint64) {
		binary.LittleEndian.PutUint64(buf[0:], rip)
		buf[8] = byte(in.Op)
		binary.LittleEndian.PutUint64(buf[9:], cycles)
		h.Write(buf[:])
		*out = h.Sum64()
	}))
	return out
}

// FuzzDecodeCacheEquivalence is the bit-identical-semantics oracle: random
// bytes execute as code on a writable+executable page (so programs can and
// do overwrite themselves), and every architecturally visible outcome —
// stop reason, trap, Instrs, Cycles, registers, flags, memory, and the
// OnExec stream — must match between cache-on and cache-off.
func FuzzDecodeCacheEquivalence(f *testing.F) {
	f.Add([]byte{byte(isa.NOP), byte(isa.RET)}, uint64(1))
	f.Add(encodeProgF(isa.MovRI(isa.RAX, 5), isa.AddRI(isa.RAX, 7), isa.Ret()), uint64(2))
	// A self-modifying seed: store %rbx over our own first instruction.
	f.Add(encodeProgF(
		isa.MovRI(isa.RBX, int64(isa.RET)),
		isa.MovRI(isa.RCX, dcCodeVA),
		isa.StoreSz(isa.Mem(isa.RCX, 0), isa.RBX, 1),
		isa.Nop(),
	), uint64(3))

	f.Fuzz(func(t *testing.T, code []byte, seed uint64) {
		if len(code) > 2*mem.PageSize {
			code = code[:2*mem.PageSize]
		}
		type outcome struct {
			res       RunResult
			trap      Trap
			faultKind mem.FaultKind
			faultAddr uint64
			regs      [isa.NumGPR]uint64
			rip       uint64
			flags     uint64
			digest    uint64
			memory    []byte
		}
		run := func(cacheOn bool) outcome {
			as := mem.NewAddressSpace()
			for _, m := range []struct {
				va   uint64
				n    int
				perm mem.Perm
			}{
				{dcCodeVA, 2, mem.PermRWX}, // writable code: self-modification in play
				{dcDataVA, 1, mem.PermRW},
				{dcStackVA, 1, mem.PermRW},
			} {
				if _, err := as.Map(m.va, m.n, m.perm); err != nil {
					t.Fatal(err)
				}
			}
			if err := as.Poke(dcCodeVA, code); err != nil {
				t.Fatal(err)
			}
			c := New(as)
			c.SetDecodeCache(cacheOn)
			c.Mode = Kernel
			c.RIP = dcCodeVA
			// Deterministically seed registers with addresses into the
			// mapped regions so loads/stores/branches sometimes land.
			rng := rand.New(rand.NewSource(int64(seed)))
			bases := []uint64{dcCodeVA, dcDataVA, dcStackVA}
			for i := range c.Regs {
				c.Regs[i] = bases[rng.Intn(len(bases))] + uint64(rng.Intn(mem.PageSize))
			}
			c.Regs[isa.RSP] = dcStackVA + mem.PageSize - 64
			if f := as.Write(c.Regs[isa.RSP], StopMagic, 8); f != nil {
				t.Fatal(f)
			}
			digest := dcDigest(c)
			res := c.Run(512)
			o := outcome{res: *res, regs: c.Regs, rip: c.RIP, flags: c.RFlags, digest: *digest}
			if res.Trap != nil {
				o.trap = *res.Trap
				o.trap.Fault = nil // pointer field: compared via the two fields below
				o.res.Trap = nil
				if f := res.Trap.Fault; f != nil {
					o.faultKind, o.faultAddr = f.Kind, f.Addr
				}
			}
			for _, r := range []struct {
				va uint64
				n  int
			}{{dcCodeVA, 2 * mem.PageSize}, {dcDataVA, mem.PageSize}, {dcStackVA, mem.PageSize}} {
				b, err := as.Peek(r.va, r.n)
				if err != nil {
					t.Fatal(err)
				}
				o.memory = append(o.memory, b...)
			}
			return o
		}

		on, off := run(true), run(false)
		if on.res != off.res || on.trap != off.trap ||
			on.faultKind != off.faultKind || on.faultAddr != off.faultAddr ||
			on.regs != off.regs ||
			on.rip != off.rip || on.flags != off.flags || on.digest != off.digest {
			t.Fatalf("cache on/off diverge:\n on: %+v trap=%+v rip=%#x digest=%#x\noff: %+v trap=%+v rip=%#x digest=%#x",
				on.res, on.trap, on.rip, on.digest, off.res, off.trap, off.rip, off.digest)
		}
		if !bytes.Equal(on.memory, off.memory) {
			t.Fatal("cache on/off diverge in final memory")
		}
	})
}

func encodeProgF(prog ...isa.Instr) []byte {
	var b []byte
	for _, in := range prog {
		b, _ = in.Encode(b)
	}
	return b
}
