package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	if RAX.String() != "rax" || R11.String() != "r11" || RSP.String() != "rsp" {
		t.Fatalf("unexpected register names: %s %s %s", RAX, R11, RSP)
	}
	if NoReg.Valid() {
		t.Fatal("NoReg must not be valid")
	}
	for r := Reg(0); r < NumGPR; r++ {
		if !r.Valid() {
			t.Fatalf("register %d should be valid", r)
		}
	}
}

func TestCondNegate(t *testing.T) {
	pairs := [][2]Cond{{CondE, CondNE}, {CondA, CondBE}, {CondG, CondLE}, {CondB, CondAE}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("negate %s <-> %s failed", p[0], p[1])
		}
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		cc    Cond
		flags uint64
		want  bool
	}{
		{CondE, FlagZF, true},
		{CondE, 0, false},
		{CondNE, FlagZF, false},
		{CondA, 0, true},
		{CondA, FlagCF, false},
		{CondA, FlagZF, false},
		{CondB, FlagCF, true},
		{CondG, 0, true},
		{CondG, FlagZF, false},
		{CondG, FlagSF, false},
		{CondG, FlagSF | FlagOF, true},
		{CondL, FlagSF, true},
		{CondL, FlagSF | FlagOF, false},
		{CondLE, FlagZF, true},
		{CondS, FlagSF, true},
		{CondO, FlagOF, true},
	}
	for _, c := range cases {
		if got := c.cc.Eval(c.flags); got != c.want {
			t.Errorf("Eval(%s, %#x) = %v, want %v", c.cc, c.flags, got, c.want)
		}
	}
}

func TestPinnedOpcodeBytes(t *testing.T) {
	// These byte values are load-bearing: gadget scanning keys off 0xC3,
	// tripwires off 0xCC.
	pins := map[Opcode]byte{RET: 0xC3, INT3: 0xCC, CALL: 0xE8, JMP: 0xE9, NOP: 0x90}
	for op, b := range pins {
		if byte(op) != b {
			t.Errorf("opcode %s = 0x%02x, want 0x%02x", op, byte(op), b)
		}
	}
}

// sampleInstrs is a representative instruction set used by round-trip tests.
func sampleInstrs() []Instr {
	return []Instr{
		MovRI(R11, 0xCC),
		MovRI(RAX, -1),
		MovRR(RDI, RSI),
		Load(RCX, Mem(RSI, 0x140)),
		LoadSz(RDX, MemIdx(RDI, RCX, 8, -16), 4),
		Store(Mem(RDI, 8), RAX),
		StoreSz(Mem(RSP, 0), RBX, 1),
		StoreImm(Mem(RBP, -8), 42),
		Lea(R11, Mem(RSI, 0x154)),
		Push(RBP),
		Pop(RBP),
		Pushfq(),
		Popfq(),
		AddRI(RSP, 32),
		AddRR(RAX, RBX),
		SubRI(RSP, 32),
		XorRR(RDX, RDX),
		XorMR(Mem(RSP, 0), R11),
		ShlRI(RAX, 3),
		ShrRI(RDX, 0x20),
		CmpRI(RAX, 7),
		CmpRR(RAX, RBX),
		CmpRM(RDI, Mem(RSI, 0x130)),
		CmpMI(Mem(RSI, 0x154), 7),
		TestRR(RAX, RAX),
		Inc(RCX),
		Dec(RCX),
		{Op: JMP, Imm: 0x10},
		{Op: JCC, CC: CondA, Imm: -0x20},
		{Op: CALL, Imm: 0x1234},
		CallReg(RAX),
		CallMem(MemIdx(RAX, RBX, 8, 0)),
		Ret(),
		RetImm(8),
		Movs(8, true),
		Stos(1, true),
		Lods(8, false),
		Cmps(1, true),
		Scas(8, false),
		Bndcu(BND0, Mem(RSI, 0x154)),
		Bndmk(BND0, Mem(RAX, 0)),
		{Op: BNDSTX, Bnd: BND0, M: Mem(RSP, 0)},
		{Op: BNDLDX, Bnd: BND0, M: Mem(RSP, 0)},
		Int3(),
		Nop(),
		Hlt(),
		Syscall(),
		Sysret(),
		Iret(),
		Wrmsr(),
		{Op: LEA, Dst: RAX, M: MemRef{Base: NoReg, Index: NoReg, Scale: 1, RIPRel: true, Disp: 0x99}},
		{Op: MOVrm, Dst: RAX, M: MemRef{Base: NoReg, Index: NoReg, Scale: 1, Disp: -0x1000}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInstrs() {
		b, err := in.Encode(nil)
		if err != nil {
			t.Fatalf("encode %q: %v", in.String(), err)
		}
		if len(b) != in.Length() {
			t.Fatalf("%q: encoded %d bytes, Length() says %d", in.String(), len(b), in.Length())
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %q: %v", in.String(), err)
		}
		if n != len(b) {
			t.Fatalf("%q: decoded length %d != %d", in.String(), n, len(b))
		}
		// Normalize fields that legitimately differ after a round trip.
		want := in
		if want.Scale0() {
			want.M.Scale = 1
		}
		if want.M == (MemRef{}) && got.M == (MemRef{Base: NoReg, Index: NoReg, Scale: 1}) {
			// Instructions without memory operands decode with a zero M.
			got.M = MemRef{}
		}
		if want.Size == 0 && got.Size == 8 {
			got.Size = 0
		}
		if got.String() != want.String() {
			t.Errorf("round trip: got %q, want %q", got.String(), want.String())
		}
	}
}

// Scale0 reports whether the instruction has a memory operand with an
// unnormalized zero scale.
func (in Instr) Scale0() bool {
	m := in.MemOperand()
	return m != nil && m.Scale == 0
}

func TestEncodeRejectsUnresolved(t *testing.T) {
	cases := []Instr{
		Jmp("L1"),
		Call("krx_handler"),
		MovSym(RAX, "_text"),
		CmpSymNeg(RSI, "_krx_edata", 0x154),
		Load(RAX, MemRIP("xkey_foo", 0)),
	}
	for _, in := range cases {
		if _, err := in.Encode(nil); err == nil {
			t.Errorf("encode %q: expected error for unresolved reference", in.String())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("decode of empty buffer should fail")
	}
	if _, _, err := Decode([]byte{0x00}); err == nil {
		t.Error("decode of undefined opcode should fail")
	}
	// Truncated MOVri.
	if _, _, err := Decode([]byte{byte(MOVri), 0x00, 0x01}); err == nil {
		t.Error("decode of truncated instruction should fail")
	}
	// Bad register.
	if _, _, err := Decode([]byte{byte(PUSH), 0x20}); err == nil {
		t.Error("decode of bad register should fail")
	}
	// Bad mem mode byte.
	ld := Load(RAX, Mem(RSI, 0))
	b, err := ld.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	b[2] |= 0x80
	if _, _, err := Decode(b); err == nil {
		t.Error("decode of corrupt mem mode should fail")
	}
}

func TestTripwireEmbedding(t *testing.T) {
	// The canonical phantom instruction: mov $0xCC, %r11. Its immediate
	// bytes contain 0xCC; decoding at that offset must yield int3.
	ph := MovRI(R11, 0xCC)
	b, err := ph.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: [opcode][reg][imm64 LE] -> 0xCC is at offset 2.
	if b[2] != 0xCC {
		t.Fatalf("tripwire byte not at offset 2: % x", b)
	}
	in, n, err := Decode(b[2:])
	if err != nil || in.Op != INT3 || n != 1 {
		t.Fatalf("overlapping decode: got %v op=%v n=%d, want int3", err, in.Op, n)
	}
}

// TripwireOffset is validated here so the diversify package can rely on it.
func TestTripwireOffsetStable(t *testing.T) {
	ph := MovRI(R11, 0xCC)
	b, _ := ph.Encode(nil)
	for i, v := range b {
		if v == 0xCC {
			if i != 2 {
				t.Fatalf("tripwire offset %d, expected 2", i)
			}
			return
		}
	}
	t.Fatal("no tripwire byte found")
}

func TestDisassembleLinear(t *testing.T) {
	var code []byte
	ins := []Instr{MovRI(RAX, 1), AddRI(RAX, 2), Ret()}
	for _, in := range ins {
		var err error
		code, err = in.Encode(code)
		if err != nil {
			t.Fatal(err)
		}
	}
	lines := Disassemble(code, 0x1000)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if lines[0].Addr != 0x1000 || lines[2].Instr.Op != RET {
		t.Fatalf("unexpected disassembly: %+v", lines)
	}
}

func TestReadsWritesMemoryClassification(t *testing.T) {
	reads := []Instr{
		Load(RAX, Mem(RSI, 0)),
		CmpRM(RAX, Mem(RSI, 0)),
		CmpMI(Mem(RSI, 0), 1),
		XorMR(Mem(RSP, 0), R11),
		{Op: ADDrm, Dst: RAX, M: Mem(RBX, 0)},
		CallMem(Mem(RAX, 0)),
		Movs(8, true),
		Lods(8, false),
	}
	for _, in := range reads {
		if !in.ReadsMemory() {
			t.Errorf("%q should read memory", in.String())
		}
	}
	nonReads := []Instr{
		Store(Mem(RDI, 0), RAX),
		StoreImm(Mem(RDI, 0), 1),
		Lea(RAX, Mem(RSI, 0x100)),
		Push(RAX),
		MovRI(RAX, 5),
		Stos(8, true),
	}
	for _, in := range nonReads {
		if in.ReadsMemory() {
			t.Errorf("%q should not count as a data memory read", in.String())
		}
	}
	if w := (&Instr{Op: XORmr, Dst: R11, M: Mem(RSP, 0)}); !w.WritesMemory() {
		t.Error("xor mem should write memory")
	}
}

func TestFlagsClassification(t *testing.T) {
	if !CmpRI(RAX, 1).WritesFlags() {
		t.Error("cmp writes flags")
	}
	if MovRR(RAX, RBX).WritesFlags() {
		t.Error("mov does not write flags")
	}
	if !(&Instr{Op: JCC, CC: CondA}).ReadsFlags() {
		t.Error("jcc reads flags")
	}
	if !Pushfq().ReadsFlags() {
		t.Error("pushfq reads flags")
	}
	if Movs(8, true).ReadsFlags() {
		t.Error("movs reads only DF, which cmp never clobbers")
	}
	if !Popfq().WritesFlags() {
		t.Error("popfq writes flags")
	}
	if Lea(RAX, Mem(RSI, 8)).WritesFlags() {
		t.Error("lea does not write flags")
	}
}

func TestRegsReadWritten(t *testing.T) {
	in := Load(RCX, MemIdx(RSI, RDI, 8, 0x10))
	reads := in.RegsRead(nil)
	if !containsReg(reads, RSI) || !containsReg(reads, RDI) {
		t.Errorf("load reads base+index, got %v", reads)
	}
	writes := in.RegsWritten(nil)
	if !containsReg(writes, RCX) || len(writes) != 1 {
		t.Errorf("load writes dst only, got %v", writes)
	}

	cmp := CmpRR(RAX, RBX)
	if w := cmp.RegsWritten(nil); len(w) != 0 {
		t.Errorf("cmp writes no registers, got %v", w)
	}
	if r := cmp.RegsRead(nil); !containsReg(r, RAX) || !containsReg(r, RBX) {
		t.Errorf("cmp reads both operands, got %v", r)
	}

	movs := Movs(8, true)
	r := movs.RegsRead(nil)
	if !containsReg(r, RSI) || !containsReg(r, RDI) || !containsReg(r, RCX) {
		t.Errorf("rep movs reads rsi/rdi/rcx, got %v", r)
	}
}

func containsReg(s []Reg, r Reg) bool {
	for _, v := range s {
		if v == r {
			return true
		}
	}
	return false
}

func TestTerminatorsAndCalls(t *testing.T) {
	terms := []Instr{Ret(), RetImm(8), Jmp("x"), Jcc(CondE, "x"), {Op: JMPR, Dst: RAX}, Iret(), Sysret(), Hlt()}
	for _, in := range terms {
		if !in.IsTerminator() {
			t.Errorf("%q should be a terminator", in.String())
		}
	}
	calls := []Instr{Call("f"), CallReg(RAX), CallMem(Mem(RAX, 0))}
	for _, in := range calls {
		if !in.IsCall() || in.IsTerminator() {
			t.Errorf("%q should be a non-terminator call", in.String())
		}
	}
}

func TestMemRefString(t *testing.T) {
	cases := []struct {
		m    MemRef
		want string
	}{
		{Mem(RSI, 0x154), "0x154(%rsi)"},
		{Mem(RSI, 0), "(%rsi)"},
		{Mem(RBP, -8), "-0x8(%rbp)"},
		{MemIdx(RAX, RBX, 8, 0), "(%rax,%rbx,8)"},
		{MemRIP("xkey", 0), "xkey(%rip)"},
		{MemAbs("table", 16), "table+0x10"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("MemRef.String() = %q, want %q", got, c.want)
		}
	}
}

func TestStrFlags(t *testing.T) {
	for _, w := range []uint8{1, 2, 4, 8} {
		f := MakeStrFlags(w, true)
		if f.Width() != w || !f.Rep() {
			t.Errorf("MakeStrFlags(%d, true): width=%d rep=%v", w, f.Width(), f.Rep())
		}
		f = MakeStrFlags(w, false)
		if f.Width() != w || f.Rep() {
			t.Errorf("MakeStrFlags(%d, false): width=%d rep=%v", w, f.Width(), f.Rep())
		}
	}
}

func TestCostsOrdering(t *testing.T) {
	// The relationships the evaluation depends on.
	pushfq := Pushfq().Cost()
	cmp := CmpRI(RAX, 0).Cost()
	ja := Jcc(CondA, "x").Cost()
	lea := Lea(R11, Mem(RSI, 0)).Cost()
	bndcu := Bndcu(BND0, Mem(RSI, 0)).Cost()
	sysc := Syscall().Cost()
	if pushfq < 5*(cmp+ja) {
		t.Errorf("pushfq (%d) must dwarf a cmp+ja pair (%d)", pushfq, cmp+ja)
	}
	if bndcu > cmp+ja+lea {
		t.Errorf("bndcu (%d) must be cheaper than the SFI triplet", bndcu)
	}
	if sysc < 50 {
		t.Errorf("mode switch (%d) must dominate a null syscall", sysc)
	}
}

// Property: every encodable instruction decodes to an instruction that
// re-encodes to identical bytes (byte-level fixpoint).
func TestQuickEncodeDecodeFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := sampleInstrs()
	f := func(pick uint16, immSeed int64) bool {
		in := samples[int(pick)%len(samples)]
		// Perturb immediates where legal to widen coverage.
		switch in.Op.Format() {
		case fmtRegImm64:
			in.Imm = immSeed
		case fmtRegImm32, fmtMemImm32, fmtRel32:
			in.Imm = int64(int32(immSeed))
		case fmtRegImm8:
			in.Imm = int64(uint8(immSeed))
		case fmtImm16:
			in.Imm = int64(uint16(immSeed))
		}
		if m := in.MemOperand(); m != nil {
			m.Disp = int32(rng.Uint32())
		}
		b1, err := in.Encode(nil)
		if err != nil {
			return false
		}
		dec, n, err := Decode(b1)
		if err != nil || n != len(b1) {
			return false
		}
		b2, err := dec.Encode(nil)
		if err != nil {
			return false
		}
		return bytes.Equal(b1, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the decoder never panics and never reports a length that
// overruns the buffer, for arbitrary byte soup.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(b []byte) bool {
		_, n, err := Decode(b)
		if err != nil {
			return true
		}
		return n > 0 && n <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInstrStringSmoke(t *testing.T) {
	for _, in := range sampleInstrs() {
		if in.String() == "" {
			t.Errorf("empty String() for opcode %v", in.Op)
		}
	}
	want := "cmp $(_krx_edata-0x154), %rsi"
	if got := CmpSymNeg(RSI, "_krx_edata", 0x154).String(); got != want {
		t.Errorf("O2 range check renders as %q, want %q", got, want)
	}
}
