// Package fuzz is the syscall fuzzer for the simulated kernel: a
// syzkaller-style loop of typed program generation, corpus-guided mutation,
// coverage feedback, optional fault injection, crash triage with
// deduplication, and reproducer minimization. Everything flows from one
// seed, so a run is replayable end to end: the same (seed, config, plan)
// triple produces a byte-identical report.
package fuzz

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// Options configures one fuzzing campaign.
type Options struct {
	// Iters is the number of programs to execute.
	Iters int
	// Seed drives generation, mutation, and the per-iteration injector
	// seeds.
	Seed int64
	// Config is the kernel protection configuration to boot under.
	Config core.Config
	// Plan, when non-nil, arms fault injection: each iteration runs under a
	// fresh injector whose seed is derived from (Seed, iteration), so any
	// crash replays from its iteration number alone.
	Plan *inject.Plan
	// MaxMinimize caps the executions spent minimizing one crash (0 = 64).
	MaxMinimize int
}

// Crash is one deduplicated crash bucket.
type Crash struct {
	Bucket string // trap kind + containing function (the dedup key)
	Count  int    // programs that landed in this bucket
	Iter   int    // first iteration that hit it (replay handle)
	Prog   *Prog  // first crashing program
	Min    *Prog  // minimized reproducer
}

// Report is the campaign result. String() is deterministic: same options in,
// same bytes out.
type Report struct {
	Iters    int
	Seed     int64
	Config   string
	Crashes  []*Crash // sorted by bucket
	Cover    int      // distinct kernel RIPs executed
	Faults   int      // total injected faults
	Executed int      // total syscalls issued (incl. minimization)

	// AuditViolations counts failed audit checks observed after injected
	// faults, keyed by check name — the "graceful degradation" ledger:
	// invariant breakage is reported, never silently absorbed.
	AuditViolations map[string]int
}

// String renders the report deterministically (sorted buckets, sorted
// checks, no map iteration).
func (r *Report) String() string {
	s := fmt.Sprintf("fuzz: config=%s seed=%d iters=%d syscalls=%d cover=%d faults=%d crashes=%d\n",
		r.Config, r.Seed, r.Iters, r.Executed, r.Cover, r.Faults, len(r.Crashes))
	for _, c := range r.Crashes {
		s += fmt.Sprintf("  crash %-40s count=%-5d iter=%-5d repro: %s\n",
			c.Bucket, c.Count, c.Iter, c.Min.String())
	}
	checks := make([]string, 0, len(r.AuditViolations))
	for k := range r.AuditViolations {
		checks = append(checks, k)
	}
	sort.Strings(checks)
	for _, k := range checks {
		s += fmt.Sprintf("  audit-violation %-30s count=%d\n", k, r.AuditViolations[k])
	}
	return s
}

// Fuzzer is one campaign in progress.
type Fuzzer struct {
	opts   Options
	k      *kernel.Kernel
	snap   *kernel.Snapshot
	gen    *generator
	funcs  []funcSpan // image functions sorted by address, for bucketing
	corpus []*Prog

	cover    map[uint64]struct{} // global coverage
	curCover map[uint64]struct{} // this execution's coverage

	report *Report
}

type funcSpan struct {
	name       string
	start, end uint64
}

// New boots a kernel under opts.Config and prepares the campaign. The boot
// snapshot is taken after user memory seeding, so every iteration starts
// from an identical machine.
func New(opts Options) (*Fuzzer, error) {
	if opts.Iters <= 0 {
		opts.Iters = 1000
	}
	if opts.MaxMinimize <= 0 {
		opts.MaxMinimize = 64
	}
	k, err := kernel.Boot(opts.Config)
	if err != nil {
		return nil, fmt.Errorf("fuzz: boot: %w", err)
	}
	if err := SetupUserMemory(k); err != nil {
		return nil, fmt.Errorf("fuzz: seeding user memory: %w", err)
	}
	f := &Fuzzer{
		opts:     opts,
		k:        k,
		gen:      &generator{rng: rand.New(rand.NewSource(opts.Seed))},
		cover:    make(map[uint64]struct{}),
		curCover: make(map[uint64]struct{}),
		report: &Report{
			Iters:           opts.Iters,
			Seed:            opts.Seed,
			Config:          opts.Config.Name(),
			AuditViolations: make(map[string]int),
		},
	}
	f.gen.kaddrs = interestingKaddrs(k)
	for _, fn := range k.Img.Funcs {
		f.funcs = append(f.funcs, funcSpan{name: fn.Name, start: fn.Addr, end: fn.Addr + fn.Size})
	}
	sort.Slice(f.funcs, func(i, j int) bool { return f.funcs[i].start < f.funcs[j].start })

	// Coverage hook, installed once; Snapshot/Restore leaves OnExec alone.
	k.CPU.OnExec = func(rip uint64, in isa.Instr, cycles uint64) {
		f.curCover[rip] = struct{}{}
	}
	f.snap = k.Snapshot()
	return f, nil
}

// interestingKaddrs collects the kernel addresses worth aiming leak/plant
// style arguments at, in deterministic order.
func interestingKaddrs(k *kernel.Kernel) []uint64 {
	names := []string{
		"_text", "_krx_edata", "cred", "sys_call_table", "dentry_table",
		"fault_count", "task_cur", "sigactions", "vma_table", "pgtable_arr",
		"brk_ptr", "krx_handler", "syscall_entry",
	}
	var out []uint64
	for _, n := range names {
		if a := k.Sym(n); a != 0 {
			out = append(out, a)
		}
	}
	out = append(out, k.KernelStackBase)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// injSeed derives the iteration's injector seed from the master seed. The
// mixing constant keeps adjacent iterations' streams unrelated.
func (f *Fuzzer) injSeed(iter int) int64 {
	return f.opts.Seed ^ (int64(iter)+1)*0x2545f4914f6cdd1d
}

// execResult is one program execution's outcome.
type execResult struct {
	bucket   string // "" = clean run
	crashIdx int    // index of the crashing call
	faults   int    // faults injected during the run
	auditBad []string
	newCover bool
}

// exec restores the snapshot and runs prog, with fault injection when the
// campaign has a plan. The injector seed is passed explicitly so
// minimization can replay an iteration's exact fault stream.
func (f *Fuzzer) exec(prog *Prog, injSeed int64) (execResult, error) {
	var res execResult
	if err := f.k.Restore(f.snap); err != nil {
		return res, fmt.Errorf("fuzz: restore: %w", err)
	}
	for rip := range f.curCover {
		delete(f.curCover, rip)
	}

	var inj *inject.Injector
	if f.opts.Plan != nil {
		plan := *f.opts.Plan
		plan.Seed = injSeed
		inj = inject.New(plan)
		inj.Attach(f.k.CPU, f.k.Space.AS, f.k.FaultTargets())
	}

	res.crashIdx = -1
	for i, c := range prog.Calls {
		r := f.k.Syscall(c.Nr, c.Args[0], c.Args[1], c.Args[2])
		f.report.Executed++
		if r.Failed {
			res.bucket = f.bucketOf(r)
			res.crashIdx = i
			break
		}
	}
	if inj != nil {
		inj.Detach()
		res.faults = len(inj.Events)
	}

	// Invariant check: after any injected fault (or crash), the protections
	// must either still hold or report exactly which check broke.
	if res.faults > 0 || res.bucket != "" {
		rep := audit.Audit(f.k)
		for _, fd := range rep.Findings {
			if !fd.OK {
				res.auditBad = append(res.auditBad, fd.Check)
			}
		}
	}

	for rip := range f.curCover {
		if _, ok := f.cover[rip]; !ok {
			res.newCover = true
			f.cover[rip] = struct{}{}
		}
	}
	return res, nil
}

// bucketOf maps a failed syscall to its dedup bucket: the failure class plus
// the function containing the faulting RIP (so the same root cause at
// different addresses across diversified layouts still groups sensibly
// within one image).
func (f *Fuzzer) bucketOf(r *kernel.SyscallResult) string {
	if r.Err != nil {
		if be, ok := r.Err.(*cpu.BudgetError); ok {
			return "watchdog/" + f.funcAt(be.RIP)
		}
		return "harness-panic"
	}
	res := r.Run
	switch res.Reason {
	case cpu.StopHalt:
		return "halt/" + f.funcAt(res.HaltRIP)
	case cpu.StopTrap:
		if res.Trap != nil {
			return res.Trap.Kind.String() + "/" + f.funcAt(res.Trap.RIP)
		}
		return "trap/?"
	default:
		return "stop-" + res.Reason.String()
	}
}

// funcAt names the image function containing rip; addresses outside the
// image coarsen to 64-byte buckets so unknown-RIP crashes still dedup.
func (f *Fuzzer) funcAt(rip uint64) string {
	i := sort.Search(len(f.funcs), func(i int) bool { return f.funcs[i].end > rip })
	if i < len(f.funcs) && rip >= f.funcs[i].start {
		return f.funcs[i].name
	}
	if rip < kernel.UserStack+16*4096 {
		return "user"
	}
	return fmt.Sprintf("rip-%#x", rip>>6<<6)
}

// Run executes the campaign and returns its report.
func (f *Fuzzer) Run() (*Report, error) {
	crashes := make(map[string]*Crash)
	for i := 0; i < f.opts.Iters; i++ {
		prog := f.pickProg()
		res, err := f.exec(prog, f.injSeed(i))
		if err != nil {
			return nil, err
		}
		f.report.Faults += res.faults
		for _, check := range res.auditBad {
			f.report.AuditViolations[check]++
		}
		if res.bucket != "" {
			repro := &Prog{Calls: prog.Calls[:res.crashIdx+1]}
			if c, ok := crashes[res.bucket]; ok {
				c.Count++
			} else {
				c = &Crash{Bucket: res.bucket, Count: 1, Iter: i, Prog: repro.Clone()}
				c.Min = f.minimize(repro, res.bucket, f.injSeed(i))
				crashes[res.bucket] = c
			}
			continue
		}
		if res.newCover {
			f.corpus = append(f.corpus, prog)
		}
	}
	for _, c := range crashes {
		f.report.Crashes = append(f.report.Crashes, c)
	}
	sort.Slice(f.report.Crashes, func(i, j int) bool {
		return f.report.Crashes[i].Bucket < f.report.Crashes[j].Bucket
	})
	f.report.Cover = len(f.cover)
	return f.report, nil
}

// pickProg draws the next program: a fresh generation while the corpus is
// cold, afterwards mostly mutations of corpus entries.
func (f *Fuzzer) pickProg() *Prog {
	r := f.gen.rng
	if len(f.corpus) == 0 || r.Intn(4) == 0 {
		return f.gen.Generate(1 + r.Intn(5))
	}
	base := f.corpus[r.Intn(len(f.corpus))]
	var other *Prog
	if len(f.corpus) > 1 {
		other = f.corpus[r.Intn(len(f.corpus))]
	}
	return f.gen.Mutate(base, other)
}

// minimize shrinks a crashing program to the shortest syscall sequence that
// still lands in the same bucket, re-executing candidates under the
// iteration's exact injector seed. Delta-removal repeats until a full pass
// removes nothing (or the execution budget runs out).
func (f *Fuzzer) minimize(prog *Prog, bucket string, injSeed int64) *Prog {
	min := prog.Clone()
	budget := f.opts.MaxMinimize
	for changed := true; changed && len(min.Calls) > 1; {
		changed = false
		for i := len(min.Calls) - 1; i >= 0 && len(min.Calls) > 1; i-- {
			if budget <= 0 {
				return min
			}
			cand := &Prog{Calls: append(append([]Call{}, min.Calls[:i]...), min.Calls[i+1:]...)}
			res, err := f.exec(cand, injSeed)
			budget--
			if err == nil && res.bucket == bucket {
				min = cand
				changed = true
			}
		}
	}
	return min
}

// Fuzz is the one-call entry point: boot, run, report.
func Fuzz(opts Options) (*Report, error) {
	f, err := New(opts)
	if err != nil {
		return nil, err
	}
	return f.Run()
}
