// Package attack implements the adversary of §7.3: a Galileo-style gadget
// scanner, ROP chain construction, and the three exploitation scenarios —
// direct ROP with precomputed addresses, direct JIT-ROP (arbitrary-read
// driven code harvesting), and indirect JIT-ROP (return-address harvesting
// from kernel stacks) — plus the §5.3 substitution attack. Attackers
// interact with the kernel exclusively through its user-reachable syscall
// interface (the leak, plant/trigger, and stack-smash vulnerabilities).
package attack

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/isa"
)

// Gadget is a decodable instruction sequence ending in ret.
type Gadget struct {
	Addr uint64
	Ins  []isa.Instr
}

// String renders the gadget.
func (g Gadget) String() string {
	s := ""
	for i, in := range g.Ins {
		if i > 0 {
			s += " ; "
		}
		s += in.String()
	}
	return s
}

// maxGadgetBack is how many bytes before a ret the scanner explores.
const maxGadgetBack = 24

// scanChunkMin is the smallest per-goroutine slice of the ret-index range
// worth the spawn overhead; images below it are scanned inline.
const scanChunkMin = 4096

// ScanGadgets performs backward disassembly from every 0xC3 (ret) byte in
// code (mapped at base), collecting every window that decodes cleanly into
// instructions ending exactly at the ret — including sequences that start
// inside the encoding of legitimate instructions (unaligned gadgets).
//
// The scan is sharded across goroutines: each ret byte is examined
// independently (its gadget windows reach back at most maxGadgetBack bytes
// into the shared, read-only code slice), so the ret-index range is split
// into contiguous chunks scanned in parallel and the per-chunk results are
// concatenated in chunk order — reproducing the sequential output exactly,
// byte for byte, for any core count.
func ScanGadgets(code []byte, base uint64) []Gadget {
	nw := runtime.GOMAXPROCS(0)
	if max := (len(code) + scanChunkMin - 1) / scanChunkMin; nw > max {
		nw = max
	}
	if nw <= 1 {
		return scanRange(code, base, 0, len(code))
	}
	chunks := make([][]Gadget, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * len(code) / nw
		hi := (w + 1) * len(code) / nw
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			chunks[w] = scanRange(code, base, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var out []Gadget
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// scanRange scans the ret bytes whose index falls in [lo, hi). Gadget
// windows may begin before lo — the chunk boundary partitions ret
// positions, not window bytes.
func scanRange(code []byte, base uint64, lo, hi int) []Gadget {
	var out []Gadget
	for i := lo; i < hi; i++ {
		if code[i] != 0xC3 {
			continue
		}
		for back := 1; back <= maxGadgetBack && back <= i; back++ {
			start := i - back
			ins, ok := decodesTo(code[start : i+1])
			if ok {
				out = append(out, Gadget{Addr: base + uint64(start), Ins: ins})
			}
		}
	}
	return out
}

// decodesTo decodes b as a full instruction sequence whose final
// instruction is ret, consuming exactly len(b) bytes.
func decodesTo(b []byte) ([]isa.Instr, bool) {
	var ins []isa.Instr
	off := 0
	for off < len(b) {
		in, n, err := isa.Decode(b[off:])
		if err != nil {
			return nil, false
		}
		ins = append(ins, in)
		off += n
		if in.Op == isa.RET {
			return ins, off == len(b)
		}
		if in.IsTerminator() || in.Op == isa.INT3 {
			return nil, false
		}
	}
	return nil, false
}

// FindPopRet locates a "pop %reg ; ret" gadget for the requested register.
func FindPopRet(gs []Gadget, reg isa.Reg) (Gadget, bool) {
	for _, g := range gs {
		if len(g.Ins) == 2 && g.Ins[0].Op == isa.POP && g.Ins[0].Dst == reg {
			return g, true
		}
	}
	return Gadget{}, false
}

// FindPattern returns the offsets of every occurrence of pat in code.
func FindPattern(code, pat []byte) []int {
	var out []int
	for i := 0; i+len(pat) <= len(code); i++ {
		match := true
		for j := range pat {
			if code[i+j] != pat[j] {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// MovR8ImmPattern builds the byte pattern of "mov $imm, %r8" — the
// signature used to locate do_set_uid (its first instruction loads the
// well-known cred address, and data addresses are not randomized). An
// unencodable immediate is reported as an error, not a panic: the scanner
// runs inside attack scenarios that must degrade to a failed stage, never
// tear down the harness.
func MovR8ImmPattern(imm uint64) ([]byte, error) {
	in := isa.MovRI(isa.R8, int64(imm))
	b, err := in.Encode(nil)
	if err != nil {
		return nil, fmt.Errorf("attack: encoding mov-imm pattern for %#x: %w", imm, err)
	}
	return b, nil
}
