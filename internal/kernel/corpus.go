package kernel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Kernel object geometry.
const (
	numFDs        = 64
	fdEntrySize   = 32 // +0 inuse, +8 inode, +16 pos, +24 ready-flags
	numInodes     = 16
	inodeSize     = 64 // +0..31 name, +32 size, +40 cache offset, +48 mode
	numDentries   = 16
	dentrySize    = 40 // +0..31 name, +32 inode index
	taskSize      = 256
	numSigs       = 16
	sigEntrySize  = 16 // +0 handler, +8 flags
	ringSize      = 8192
	ringMask      = ringSize - 1
	pageCacheSize = 128 << 10
	numPTEs       = 512
	numVMAs       = 8
	vmaSize       = 32
	numAuditNodes = 8
)

func le64(vals ...uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out
}

func paddedName(s string, n int) []byte {
	b := make([]byte, n)
	copy(b, s)
	return b
}

// BuildCorpus constructs the complete kernel program: entry stubs, fault
// path, syscalls, helpers, kR^X clones, the retrofitted vulnerabilities,
// data/bss objects, and the synthetic corpus functions that give the image
// a realistically shaped .text for diversification and gadget statistics.
func BuildCorpus() (*ir.Program, error) {
	p := &ir.Program{}

	// ---- data objects ----
	// File system: dentries name the inodes; inode 0 is a /dev/zero-like
	// stream at page_cache offset 0, inode 1 a regular test file.
	dentries := make([]byte, numDentries*dentrySize)
	inodes := make([]byte, numInodes*inodeSize)
	names := []string{"dev_zero", "testfile", "console", "urandom", "proc_stat", "tmp_a"}
	for i, n := range names {
		copy(dentries[i*dentrySize:], paddedName(n, 32))
		binary.LittleEndian.PutUint64(dentries[i*dentrySize+32:], uint64(i))
		copy(inodes[i*inodeSize:], paddedName(n, 32))
		binary.LittleEndian.PutUint64(inodes[i*inodeSize+32:], 64<<10)            // size
		binary.LittleEndian.PutUint64(inodes[i*inodeSize+40:], uint64(i)*(8<<10)) // cache offset
		binary.LittleEndian.PutUint64(inodes[i*inodeSize+48:], 0644)
	}
	vmas := make([]byte, numVMAs*vmaSize)
	for i := 0; i < numVMAs; i++ {
		binary.LittleEndian.PutUint64(vmas[i*vmaSize:], UserBuf+uint64(i)<<16)
		binary.LittleEndian.PutUint64(vmas[i*vmaSize+8:], UserBuf+uint64(i+1)<<16)
	}

	p.Data = []ir.DataSym{
		{Name: "sys_call_table", Bytes: make([]byte, NumSyscalls*8)},
		{Name: "cred", Bytes: le64(1000, 1000)}, // +0 uid, +8 gid
		{Name: "task_cur", Bytes: le64(1 /*state*/, 1 /*pid*/, 0, 0, uint64(UserCode), uint64(UserStack), 0, 0)},
		{Name: "pid_counter", Bytes: le64(1)},
		{Name: "fd_table", Bytes: make([]byte, numFDs*fdEntrySize)},
		{Name: "dentry_table", Bytes: dentries},
		{Name: "inode_table", Bytes: inodes},
		{Name: "sigactions", Bytes: make([]byte, numSigs*sigEntrySize)},
		{Name: "vma_table", Bytes: vmas},
		{Name: "fault_count", Bytes: le64(0)},
		{Name: "dev_ops", Bytes: make([]byte, 4*8)},
		{Name: "state_pipe", Bytes: le64(0, 0, 0, 0)}, // +0 head, +8 tail, +16 csum, +24 acks
		{Name: "state_unix", Bytes: le64(0, 0, 0, 0)},
		{Name: "state_tcp", Bytes: le64(0, 0, 0, 0)},
		{Name: "state_udp", Bytes: le64(0, 0, 0, 0)},
		{Name: "poll_bitmap", Bytes: le64(0)},
		{Name: "brk_ptr", Bytes: le64(uint64(UserBuf) + 4<<20)},
		{Name: "audit_chain", Bytes: make([]byte, numAuditNodes*16)}, // +0 flags, +8 next
	}
	masks := make([]uint64, 64)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	p.Rodata = []ir.DataSym{
		{Name: "bit_masks", Bytes: le64(masks...)},
		{Name: "uname_str", Bytes: paddedName("KX64 krx 3.19.0-krx x86_64", 64)},
	}
	p.BSS = []ir.BSSSym{
		{Name: "page_cache", Size: pageCacheSize},
		{Name: "name_buf", Size: 64},
		{Name: "kbuf", Size: 256},
		{Name: "task_pool", Size: 4 * taskSize},
		{Name: "pgtable_arr", Size: numPTEs * 8},
		{Name: "pgtable_child", Size: numPTEs * 8},
		{Name: "exec_image", Size: 4096},
		{Name: "ring_pipe", Size: ringSize},
		{Name: "ring_unix", Size: ringSize},
		{Name: "ring_tcp", Size: ringSize},
		{Name: "ring_udp", Size: ringSize},
		{Name: "stat_scratch", Size: 64},
	}
	p.Relocs = []ir.DataReloc{
		{In: "dev_ops", Off: 0, Sym: "dev_default_op"},
		{In: "dev_ops", Off: 8, Sym: "dev_default_op"},
	}
	// Link the audit filter chain: node i points at node i+1; the last
	// next pointer stays nil.
	for i := 0; i < numAuditNodes-1; i++ {
		p.Relocs = append(p.Relocs, ir.DataReloc{
			In: "audit_chain", Off: uint64(i)*16 + 8,
			Sym: "audit_chain", Addend: uint64(i+1) * 16,
		})
	}

	// Syscall table relocations.
	sysFuncs := map[int]string{
		SysNull: "sys_null", SysGetpid: "sys_getpid",
		SysOpen: "sys_open", SysClose: "sys_close",
		SysRead: "sys_read", SysWrite: "sys_write",
		SysSelect: "sys_select", SysFstat: "sys_fstat",
		SysMmap: "sys_mmap", SysMunmap: "sys_munmap",
		SysFork: "sys_fork", SysExecve: "sys_execve", SysExit: "sys_exit",
		SysSigaction: "sys_sigaction", SysKill: "sys_kill",
		SysPipeRead: "sys_pipe_read", SysPipeWrite: "sys_pipe_write",
		SysUnixRead: "sys_unix_read", SysUnixWrite: "sys_unix_write",
		SysTCPRead: "sys_tcp_read", SysTCPWrite: "sys_tcp_write",
		SysUDPRead: "sys_udp_read", SysUDPWrite: "sys_udp_write",
		SysFtracePeek: "sys_ftrace_peek",
		SysLeak:       "sys_leak", SysPlant: "sys_plant", SysTrigger: "sys_trigger",
		SysStackSmash: "sys_stack_smash",
		SysGetdents:   "sys_getdents",
		SysUname:      "sys_uname",
		SysYield:      "sys_yield",
		SysBrk:        "sys_brk",
		SysTriggerJmp: "sys_trigger_jmp",
	}
	for nr, fn := range sysFuncs {
		p.Relocs = append(p.Relocs, ir.DataReloc{In: "sys_call_table", Off: uint64(nr) * 8, Sym: fn})
	}

	// ---- functions ----
	var fns []*ir.Function
	add := func(f *ir.Function, err error) error {
		if err != nil {
			return err
		}
		fns = append(fns, f)
		return nil
	}
	builders := []func() (*ir.Function, error){
		fnKrxHandler, fnSyscallEntry, fnFaultEntry, fnSyscallBookkeeping, fnDoProtFault,
		fnStrncpyFromUser, fnPathLookup, fnDentryCmp, fnCopyBytes, fnCopyQuads,
		fnCsumPartial, fnMemsetQuads, fnDoFault, fnDoSetUID, fnDevDefaultOp,
		fnMemcpyKrx, fnMemcmpKrx, fnBitmapCopyKrx, fnGetNextKrx,
		fnPeekNextKrx, fnGetNextInsnKrx, fnPeekNextInsnKrx,
		fnGetNextEventKrx, fnPeekNextEventKrx, fnStrnlenKrx,
		fnSysNull, fnSysGetpid, fnSysOpen, fnSysClose, fnSysRead, fnSysWrite,
		fnSysSelect, fnSysFstat, fnSysMmap, fnSysMunmap,
		fnSysFork, fnSysExecve, fnSysExit, fnSysSigaction, fnSysKill,
		fnSysFtracePeek, fnSysLeak, fnSysPlant, fnSysTrigger, fnSysStackSmash,
		fnSysGetdents, fnSysUname, fnSysYield, fnSysBrk, fnSysTriggerJmp,
	}
	for _, mk := range builders {
		if err := add(mk()); err != nil {
			return nil, err
		}
	}
	// Ring-buffer syscalls: one read/write pair per channel, with the
	// INET flavours paying for checksumming (so TCP/UDP latencies exceed
	// UNIX-socket ones, as in Table 1).
	for _, ch := range []struct {
		name  string
		csum  bool
		extra bool // TCP: ack bookkeeping reads
	}{
		{"pipe", false, false},
		{"unix", false, false},
		{"tcp", true, true},
		{"udp", true, false},
	} {
		if err := add(fnRingWrite(ch.name, ch.csum, ch.extra)); err != nil {
			return nil, err
		}
		if err := add(fnRingRead(ch.name, ch.extra)); err != nil {
			return nil, err
		}
	}
	synth, err := SynthCorpus(120, 1789)
	if err != nil {
		return nil, err
	}
	fns = append(fns, synth...)
	p.Funcs = fns
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("kernel corpus: %w", err)
	}
	return p, nil
}

// ---- stubs (NoInstrument + NoDiversify: these are the hand-written
// assembly parts of a kernel, which the RTL-level plugins cannot see — §6)

func fnKrxHandler() (*ir.Function, error) {
	f, err := ir.NewBuilder("krx_handler").
		I(isa.Hlt()).
		Func()
	if err != nil {
		return nil, err
	}
	f.NoInstrument, f.NoDiversify = true, true
	return f, nil
}

func fnSyscallEntry() (*ir.Function, error) {
	// %rcx holds the user return address and %r11 the user %rflags (the
	// SYSCALL convention); both are clobbered freely by kernel code — %r11
	// doubly so, being the kR^X scratch register — so the stub preserves
	// them across the dispatch, exactly like the Linux entry code.
	f, err := ir.NewBuilder("syscall_entry").
		I(
			isa.CmpRI(isa.RAX, NumSyscalls),
			isa.Jcc(isa.CondAE, "bad"),
			isa.Push(isa.RCX),
			isa.Push(isa.R11),
			// Context tracking / audit (instrumented C, like Linux's
			// syscall-entry work), with the argument registers preserved.
			isa.Push(isa.RDI),
			isa.Push(isa.RSI),
			isa.Push(isa.RDX),
			isa.Push(isa.RAX),
			isa.Call("syscall_bookkeeping"),
			isa.Pop(isa.RAX),
			isa.Pop(isa.RDX),
			isa.Pop(isa.RSI),
			isa.Pop(isa.RDI),
			isa.MovSym(isa.R10, "sys_call_table"),
			isa.CallMem(isa.MemIdx(isa.R10, isa.RAX, 8, 0)),
			isa.Pop(isa.R11),
			isa.Pop(isa.RCX),
			isa.Sysret(),
		).
		Label("bad").
		I(isa.MovRI(isa.RAX, -1), isa.Sysret()).
		Func()
	if err != nil {
		return nil, err
	}
	f.NoInstrument, f.NoDiversify = true, true
	return f, nil
}

func fnFaultEntry() (*ir.Function, error) {
	// Exception frame on entry: [rip][rsp][rflags], fault address in %r9
	// (the simulated CR2). Accesses to kernel addresses take the short
	// protection-fault path; ordinary page faults walk the VMAs and fill
	// page-table entries. Both handlers are instrumented C; the stub then
	// resumes the user past the faulting instruction.
	f, err := ir.NewBuilder("fault_entry").
		I(
			isa.MovRI(isa.R10, -0x800000000000), // upper canonical half
			isa.CmpRR(isa.R9, isa.R10),
			isa.Jcc(isa.CondB, "pf"),
			isa.Call("do_prot_fault"),
			isa.Jmp("resume"),
		).
		Label("pf").
		I(isa.Call("do_fault")).
		Label("resume").
		I(
			isa.Load(isa.R10, isa.Mem(isa.RSP, 0)),
			isa.AddRI(isa.R10, FaultSkip),
			isa.Store(isa.Mem(isa.RSP, 0), isa.R10),
			isa.Iret(),
		).
		Func()
	if err != nil {
		return nil, err
	}
	f.NoInstrument, f.NoDiversify = true, true
	return f, nil
}

// ---- helpers (instrumented, diversified) ----

// strncpy_from_user(%rdi=dst, %rsi=user src, %rdx=max) -> %rax=len.
func fnStrncpyFromUser() (*ir.Function, error) {
	return ir.NewBuilder("strncpy_from_user").
		I(isa.XorRR(isa.RAX, isa.RAX)).
		Label("loop").
		I(
			isa.CmpRR(isa.RAX, isa.RDX),
			isa.Jcc(isa.CondAE, "done"),
			isa.LoadSz(isa.R8, isa.Mem(isa.RSI, 0), 1),
			isa.StoreSz(isa.Mem(isa.RDI, 0), isa.R8, 1),
			isa.Inc(isa.RAX),
			isa.AddRI(isa.RSI, 1),
			isa.AddRI(isa.RDI, 1),
			isa.CmpRI(isa.R8, 0),
			isa.Jcc(isa.CondNE, "loop"),
		).
		Label("done").
		I(isa.Ret()).
		Func()
}

// dentry_cmp(%rdi=name, %rsi=dentry entry) -> %rax = 0 if the 32-byte
// names match. The quad-by-quad same-base loads are prime coalescing
// material.
func fnDentryCmp() (*ir.Function, error) {
	b := ir.NewBuilder("dentry_cmp")
	for q := int32(0); q < 4; q++ {
		b.I(
			isa.Load(isa.RCX, isa.Mem(isa.RSI, q*8)),
			isa.CmpRM(isa.RCX, isa.Mem(isa.RDI, q*8)),
			isa.Jcc(isa.CondNE, "ne"),
		)
	}
	return b.
		I(isa.XorRR(isa.RAX, isa.RAX), isa.Ret()).
		Label("ne").
		I(isa.MovRI(isa.RAX, 1), isa.Ret()).
		Func()
}

// path_lookup(%rdi=name in kernel memory) -> %rax=inode index or -1.
// Walks the dentry table, comparing names through dentry_cmp (the nested
// call gives the VFS path its realistic stack depth).
func fnPathLookup() (*ir.Function, error) {
	return ir.NewBuilder("path_lookup").
		I(isa.XorRR(isa.R9, isa.R9)).
		Label("outer").
		I(
			isa.CmpRI(isa.R9, numDentries),
			isa.Jcc(isa.CondAE, "notfound"),
			isa.MovSym(isa.RSI, "dentry_table"),
			isa.MovRR(isa.R10, isa.R9),
			isa.ImulRI(isa.R10, dentrySize),
			isa.AddRR(isa.RSI, isa.R10),
			isa.Push(isa.RDI),
			isa.Push(isa.R9),
			isa.Call("dentry_cmp"),
			isa.Pop(isa.R9),
			isa.Pop(isa.RDI),
			isa.TestRR(isa.RAX, isa.RAX),
			isa.Jcc(isa.CondE, "found"),
			isa.Inc(isa.R9),
			isa.Jmp("outer"),
		).
		Label("found").
		I(
			isa.MovSym(isa.R8, "dentry_table"),
			isa.MovRR(isa.R10, isa.R9),
			isa.ImulRI(isa.R10, dentrySize),
			isa.AddRR(isa.R8, isa.R10),
			isa.Load(isa.RAX, isa.Mem(isa.R8, 32)),
			isa.Ret(),
		).
		Label("notfound").
		I(isa.MovRI(isa.RAX, -1), isa.Ret()).
		Func()
}

// copy_bytes(%rdi=dst, %rsi=src, %rdx=n).
func fnCopyBytes() (*ir.Function, error) {
	return ir.NewBuilder("copy_bytes").
		I(isa.MovRR(isa.RCX, isa.RDX), isa.Movs(1, true), isa.Ret()).
		Func()
}

// copy_quads(%rdi=dst, %rsi=src, %rdx=quads).
func fnCopyQuads() (*ir.Function, error) {
	return ir.NewBuilder("copy_quads").
		I(isa.MovRR(isa.RCX, isa.RDX), isa.Movs(8, true), isa.Ret()).
		Func()
}

// csum_partial(%rdi=buf, %rsi=quads, quads a multiple of 8) -> %rax.
// Unrolled by eight same-base loads per iteration, the way the real
// (hand-optimized) csum_partial is: under O3 each iteration carries a
// single coalesced range check.
func fnCsumPartial() (*ir.Function, error) {
	b := ir.NewBuilder("csum_partial").
		I(isa.XorRR(isa.RAX, isa.RAX), isa.XorRR(isa.RCX, isa.RCX)).
		Label("loop").
		I(
			isa.CmpRR(isa.RCX, isa.RSI),
			isa.Jcc(isa.CondAE, "done"),
		)
	for q := int32(0); q < 8; q++ {
		b.I(isa.Instr{Op: isa.ADDrm, Dst: isa.RAX, M: isa.Mem(isa.RDI, q*8)})
	}
	return b.I(
		isa.AddRI(isa.RDI, 64),
		isa.AddRI(isa.RCX, 8),
		isa.Jmp("loop"),
	).
		Label("done").
		I(isa.Ret()).
		Func()
}

// memset_quads(%rdi=dst, %rsi=value, %rdx=quads).
func fnMemsetQuads() (*ir.Function, error) {
	return ir.NewBuilder("memset_quads").
		I(
			isa.MovRR(isa.RAX, isa.RSI),
			isa.MovRR(isa.RCX, isa.RDX),
			isa.Stos(8, true),
			isa.Ret(),
		).
		Func()
}

// do_fault: the C-level fault path — bumps the fault counter and scans the
// VMA list (reads).
func fnDoFault() (*ir.Function, error) {
	return ir.NewBuilder("do_fault").
		I(
			isa.MovSym(isa.R8, "fault_count"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.Inc(isa.R9),
			isa.Store(isa.Mem(isa.R8, 0), isa.R9),
			isa.MovSym(isa.R8, "vma_table"),
			isa.XorRR(isa.R9, isa.R9),
		).
		Label("scan").
		I(
			isa.CmpRI(isa.R9, numVMAs),
			isa.Jcc(isa.CondAE, "out"),
			isa.MovRR(isa.R10, isa.R9),
			isa.ShlRI(isa.R10, 5),
			isa.Load(isa.RCX, isa.MemIdx(isa.R8, isa.R10, 1, 0)),
			isa.Load(isa.RCX, isa.MemIdx(isa.R8, isa.R10, 1, 8)),
			isa.Inc(isa.R9),
			isa.Jmp("scan"),
		).
		Label("out").
		I(
			// Fill the faulted page's PTE (the page-allocation side).
			isa.MovSym(isa.R8, "pgtable_arr"),
			isa.Load(isa.RCX, isa.Mem(isa.R8, 128)),
			isa.OrRI(isa.RCX, 0x7),
			isa.Store(isa.Mem(isa.R8, 128), isa.RCX),
			isa.Ret(),
		).
		Func()
}

// do_prot_fault: the short path for privilege-violating accesses — record
// the event and read the offender's sigaction (a SIGSEGV would follow).
func fnDoProtFault() (*ir.Function, error) {
	return ir.NewBuilder("do_prot_fault").
		I(
			isa.MovSym(isa.R8, "fault_count"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),
			isa.Inc(isa.R9),
			isa.Store(isa.Mem(isa.R8, 0), isa.R9),
			isa.MovSym(isa.R8, "sigactions"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 11*16)), // SIGSEGV slot
			isa.Ret(),
		).
		Func()
}

// syscall_bookkeeping: the instrumented C-level work on every syscall
// entry — context tracking on the task struct plus an audit-filter chain
// walk. The pointer-chasing loop re-defines its base register every
// iteration, so its range checks cannot coalesce: this is the fixed
// instrumentation cost that dominates null-syscall latency (Table 1, first
// row).
func fnSyscallBookkeeping() (*ir.Function, error) {
	return ir.NewBuilder("syscall_bookkeeping").
		I(
			isa.MovSym(isa.R8, "task_cur"),
			isa.Load(isa.R9, isa.Mem(isa.R8, 0)),  // state
			isa.Load(isa.R9, isa.Mem(isa.R8, 24)), // flags (coalesces)
			isa.MovSym(isa.RBX, "audit_chain"),
		).
		Label("walk").
		I(
			isa.TestRR(isa.RBX, isa.RBX),
			isa.Jcc(isa.CondE, "done"),
			isa.Load(isa.RCX, isa.Mem(isa.RBX, 0)), // filter flags
			isa.Load(isa.RBX, isa.Mem(isa.RBX, 8)), // next node
			isa.Jmp("walk"),
		).
		Label("done").
		I(isa.Ret()).
		Func()
}

// do_set_uid(%rdi=uid): the privilege-escalation target (commit_creds-like).
func fnDoSetUID() (*ir.Function, error) {
	return ir.NewBuilder("do_set_uid").
		I(
			isa.MovSym(isa.R8, "cred"),
			isa.Store(isa.Mem(isa.R8, 0), isa.RDI),
			isa.Ret(),
		).
		Func()
}

func fnDevDefaultOp() (*ir.Function, error) {
	return ir.NewBuilder("dev_default_op").
		I(isa.MovRI(isa.RAX, 0x11), isa.Ret()).
		Func()
}

// ---- kR^X clones (§6): uninstrumented accessors for subsystems with
// legitimate code-region reads (ftrace, KProbes, module loader-linker).

func noInstr(f *ir.Function, err error) (*ir.Function, error) {
	if err != nil {
		return nil, err
	}
	f.NoInstrument = true
	f.AccessorClone = true
	return f, nil
}

func fnMemcpyKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("memcpy_krx").
		I(isa.MovRR(isa.RCX, isa.RDX), isa.Movs(1, true), isa.Ret()).
		Func())
}

func fnMemcmpKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("memcmp_krx").
		I(isa.MovRR(isa.RCX, isa.RDX), isa.Cmps(1, true), isa.MovRI(isa.RAX, 0), isa.Jcc(isa.CondE, "eq"), isa.MovRI(isa.RAX, 1)).
		Label("eq").
		I(isa.Ret()).
		Func())
}

func fnBitmapCopyKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("bitmap_copy_krx").
		I(isa.MovRR(isa.RCX, isa.RDX), isa.Movs(8, true), isa.Ret()).
		Func())
}

func fnGetNextKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("get_next_krx").
		I(isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)), isa.Ret()).
		Func())
}

// The remaining get_next/peek_next-family clones (§6 clones ten functions
// in total: the accessor family plus memcpy, memcmp, and bitmap_copy).
// peek variants read without advancing; get variants return the element
// and the advanced cursor.

func fnPeekNextKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("peek_next_krx").
		I(isa.LoadSz(isa.RAX, isa.Mem(isa.RDI, 0), 1), isa.Ret()).
		Func())
}

func fnGetNextInsnKrx() (*ir.Function, error) {
	// Return the quad at the cursor and advance it by the decoded length
	// in %rsi (the caller's decoder supplies it).
	return noInstr(ir.NewBuilder("get_next_insn_krx").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)),
			isa.AddRR(isa.RDI, isa.RSI),
			isa.Ret(),
		).Func())
}

func fnPeekNextInsnKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("peek_next_insn_krx").
		I(isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)), isa.Ret()).
		Func())
}

func fnGetNextEventKrx() (*ir.Function, error) {
	// Tracing ring cursor: load the event word, bump the cursor cell.
	return noInstr(ir.NewBuilder("get_next_event_krx").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)),
			isa.Load(isa.RCX, isa.Mem(isa.RSI, 0)),
			isa.AddRI(isa.RCX, 8),
			isa.Store(isa.Mem(isa.RSI, 0), isa.RCX),
			isa.Ret(),
		).Func())
}

func fnPeekNextEventKrx() (*ir.Function, error) {
	return noInstr(ir.NewBuilder("peek_next_event_krx").
		I(isa.Load(isa.RAX, isa.MemIdx(isa.RDI, isa.RSI, 8, 0)), isa.Ret()).
		Func())
}

func fnStrnlenKrx() (*ir.Function, error) {
	// strnlen over (possibly code) bytes: scan for NUL up to %rsi bytes.
	return noInstr(ir.NewBuilder("strnlen_krx").
		I(isa.XorRR(isa.RAX, isa.RAX)).
		Label("loop").
		I(
			isa.CmpRR(isa.RAX, isa.RSI),
			isa.Jcc(isa.CondAE, "done"),
			isa.LoadSz(isa.RCX, isa.MemIdx(isa.RDI, isa.RAX, 1, 0), 1),
			isa.CmpRI(isa.RCX, 0),
			isa.Jcc(isa.CondE, "done"),
			isa.Inc(isa.RAX),
			isa.Jmp("loop"),
		).
		Label("done").
		I(isa.Ret()).
		Func())
}
