package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// TestSeedHotProfileFormsOnFirstDispatch pins the heat-profile contract:
// entry RIPs named by SeedHotProfile bypass the hotness ramp and form a
// superblock on their first dispatch, while unseeded entries at the default
// threshold stay cold — and seeding never changes architectural results.
func TestSeedHotProfileFormsOnFirstDispatch(t *testing.T) {
	prog := []isa.Instr{
		isa.MovRI(isa.RAX, 5),
		isa.AddRI(isa.RAX, 7),
		isa.Ret(),
	}

	// Reference run at hot=1: forms eagerly; its HotProfile is the artifact
	// a prior campaign would have persisted.
	ref := rawCPU(t, mem.PermX, prog...)
	ref.SetBlockHotThreshold(1)
	mustReturn(t, ref, 100)
	profile := ref.HotProfile()
	if len(profile) == 0 {
		t.Fatal("eager run formed blocks but HotProfile is empty")
	}
	for i := 1; i < len(profile); i++ {
		if profile[i-1] >= profile[i] {
			t.Fatalf("HotProfile not sorted: %#x after %#x", profile[i], profile[i-1])
		}
	}

	// Unseeded at the default threshold: a single pass stays cold.
	cold := rawCPU(t, mem.PermX, prog...)
	mustReturn(t, cold, 100)
	if s := cold.BlockStats(); s.Formed != 0 || s.Cold == 0 {
		t.Fatalf("one unseeded pass at threshold %d must single-step: %+v",
			DefaultBlockHotThreshold, s)
	}

	// Seeded at the default threshold: first dispatch forms, zero cold
	// passes, identical architectural result.
	warm := rawCPU(t, mem.PermX, prog...)
	warm.SeedHotProfile(profile)
	mustReturn(t, warm, 100)
	s := warm.BlockStats()
	if s.Formed == 0 {
		t.Fatalf("seeded entry must form on first dispatch: %+v", s)
	}
	if s.Cold != 0 {
		t.Fatalf("seeded run must skip the cold ramp entirely: %+v", s)
	}
	if warm.Reg(isa.RAX) != cold.Reg(isa.RAX) {
		t.Fatalf("seeding changed architectural state: rax=%d vs %d",
			warm.Reg(isa.RAX), cold.Reg(isa.RAX))
	}

	// SeedHotProfile(nil) clears: the ramp applies again.
	cleared := rawCPU(t, mem.PermX, prog...)
	cleared.SeedHotProfile(profile)
	cleared.SeedHotProfile(nil)
	mustReturn(t, cleared, 100)
	if s := cleared.BlockStats(); s.Formed != 0 {
		t.Fatalf("cleared profile must restore the ramp: %+v", s)
	}
}
