package attack

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/link"
	"repro/internal/mem"
)

// shellcodeAddr is where the attacker stages their user-space payload.
const shellcodeAddr uint64 = 0x0000000000450000

// Ret2usr mounts the classic return-to-user attack the paper's threat model
// assumes already mitigated (§1, §3): the attacker overwrites a kernel
// function pointer with the address of *user-space* shellcode and triggers
// the dereference. Because the kernel and user share the address space, a
// kernel without SMEP/KERNEXEC/kGuard happily executes attacker-controlled
// memory with kernel rights; with SMEP the fetch faults. The shellcode
// writes uid=0 straight into the kernel cred structure (no gadgets needed —
// that is what makes ret2usr the historical "de facto" technique).
func Ret2usr(target *kernel.Kernel) Result {
	res := Result{Name: "ret2usr", Stage: "shellcode-staging"}

	// Assemble the shellcode: cred.uid = 0; ret. The attacker knows the
	// cred address from their own kernel copy (data is not randomized).
	sc, err := ir.NewBuilder("shellcode").
		I(
			isa.MovRI(isa.R8, int64(target.Sym("cred"))),
			isa.MovRI(isa.RAX, 0),
			isa.Store(isa.Mem(isa.R8, 0), isa.RAX),
			isa.Ret(),
		).Func()
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	obj, err := link.LinkObject(&ir.Program{Funcs: []*ir.Function{sc}}, shellcodeAddr, shellcodeAddr+0x1000, map[string]uint64{})
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	// Stage it in user memory (attacker-controlled pages).
	if !target.Space.AS.Mapped(shellcodeAddr) {
		if _, err := target.Space.AS.Map(shellcodeAddr, 1, mem.PermRX); err != nil {
			res.Detail = err.Error()
			return res
		}
	}
	if err := target.Space.AS.Poke(shellcodeAddr, obj.Text); err != nil {
		res.Detail = err.Error()
		return res
	}

	// Corrupt the kernel function pointer and trigger.
	res.Stage = "hijack"
	a := &Attacker{K: target}
	r := a.Hijack(shellcodeAddr, 0)
	if a.UID() == 0 {
		res.Success = true
		res.Detail = "kernel executed user-space shellcode (no SMEP)"
		return res
	}
	how := "hijack failed"
	if r.Run != nil && r.Run.Trap != nil {
		how = fmt.Sprintf("fetch blocked: %v", r.Run.Trap)
	}
	res.Detail = how
	return res
}
