package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

// KSweepResult reports the cost of one entropy setting.
type KSweepResult struct {
	K             int
	TextBytes     int
	PhantomBlocks int
	EntropyFloor  float64
	SyscallCycles float64 // null-syscall latency
}

// KSweep measures the code-size and runtime cost of the per-function
// entropy parameter k (DESIGN ablation 4): more entropy means more phantom
// padding and connector jmps.
func KSweep(ks []int, iters int) ([]KSweepResult, error) {
	if len(ks) == 0 {
		ks = []int{10, 20, 30, 40}
	}
	var out []KSweepResult
	for _, k := range ks {
		cfg := core.Config{Diversify: true, K: k, RAProt: diversify.RAEncrypt, Seed: 7}
		kn, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			return nil, err
		}
		var total uint64
		for i := 0; i < iters; i++ {
			r := kn.Syscall(kernel.SysNull)
			if r.Failed {
				return nil, fmt.Errorf("bench: k=%d null syscall failed", k)
			}
			total += r.Run.Cycles
		}
		out = append(out, KSweepResult{
			K:             k,
			TextBytes:     len(kn.Img.Text),
			PhantomBlocks: kn.Build.DivStats.PhantomBlocks,
			EntropyFloor:  kn.Build.DivStats.MinEntropyBits,
			SyscallCycles: float64(total) / float64(iters),
		})
	}
	return out, nil
}

// FormatKSweep renders the sweep.
func FormatKSweep(rs []KSweepResult) string {
	var sb strings.Builder
	sb.WriteString("Ablation: entropy parameter k vs code size\n")
	fmt.Fprintf(&sb, "%4s %12s %16s %14s %16s\n", "k", ".text bytes", "phantom blocks", "entropy bits", "syscall cycles")
	for _, r := range rs {
		fmt.Fprintf(&sb, "%4d %12d %16d %14.1f %16.1f\n", r.K, r.TextBytes, r.PhantomBlocks, r.EntropyFloor, r.SyscallCycles)
	}
	return sb.String()
}

// XOMCompareResult is one row of the enforcement-mechanism ablation.
type XOMCompareResult struct {
	Name          string
	SyscallCycles float64
	ReadWriteC    float64
	Note          string
}

// XOMCompare contrasts the self-protection schemes (SFI, MPX) with the
// hierarchically-privileged EPT baseline (DESIGN ablation 2). The EPT
// row's measured overhead excludes the virtualization tax; the paper's
// argument (§4) is that nesting a dedicated hypervisor costs ~6–8% per
// nesting level on top, which the Note column records.
func XOMCompare(iters int) ([]XOMCompareResult, error) {
	cfgs := []struct {
		name string
		cfg  core.Config
		note string
	}{
		{"Vanilla", core.Vanilla, ""},
		{"kR^X-SFI (O3)", core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 9}, "self-protection"},
		{"kR^X-MPX", core.Config{XOM: core.XOMMPX, Seed: 9}, "self-protection, hw-assisted"},
		{"EPT (hypervisor)", core.Config{XOM: core.XOMEPT, Seed: 9}, "+~6-8%/nesting level of VMM overhead not shown"},
		{"HideM (split TLB)", core.Config{XOM: core.XOMHideM, Seed: 9}, "reads return shadows; TLB-desync cost not modeled"},
	}
	var out []XOMCompareResult
	for _, c := range cfgs {
		k, err := kernel.Boot(c.cfg, kernel.WithCache())
		if err != nil {
			return nil, err
		}
		var null, rw uint64
		if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
			return nil, err
		}
		for i := 0; i < iters; i++ {
			r := k.Syscall(kernel.SysNull)
			if r.Failed {
				return nil, fmt.Errorf("bench: %s null failed", c.name)
			}
			null += r.Run.Cycles
			fd := k.Syscall(kernel.SysOpen, kernel.UserBuf)
			r2 := k.Syscall(kernel.SysRead, fd.Ret, kernel.UserBuf+4096, 64)
			if r2.Failed {
				return nil, fmt.Errorf("bench: %s read failed", c.name)
			}
			rw += r2.Run.Cycles
			k.Syscall(kernel.SysClose, fd.Ret)
		}
		out = append(out, XOMCompareResult{
			Name:          c.name,
			SyscallCycles: float64(null) / float64(iters),
			ReadWriteC:    float64(rw) / float64(iters),
			Note:          c.note,
		})
	}
	return out, nil
}

// FormatXOMCompare renders the comparison with overheads over the first
// (vanilla) row.
func FormatXOMCompare(rs []XOMCompareResult) string {
	var sb strings.Builder
	sb.WriteString("Ablation: R^X enforcement mechanisms\n")
	fmt.Fprintf(&sb, "%-18s %14s %10s %14s %10s  %s\n", "mechanism", "syscall cyc", "overhead", "read cyc", "overhead", "note")
	base := rs[0]
	for _, r := range rs {
		fmt.Fprintf(&sb, "%-18s %14.1f %9.2f%% %14.1f %9.2f%%  %s\n",
			r.Name, r.SyscallCycles, 100*(r.SyscallCycles-base.SyscallCycles)/base.SyscallCycles,
			r.ReadWriteC, 100*(r.ReadWriteC-base.ReadWriteC)/base.ReadWriteC, r.Note)
	}
	return sb.String()
}

// GuardCheck verifies the guard-section sizing invariant for a set of
// configurations (DESIGN ablation 5) and reports each margin.
func GuardCheck() (string, error) {
	var sb strings.Builder
	sb.WriteString("Ablation: guard section vs uninstrumented %rsp displacements\n")
	for _, cfg := range []core.Config{
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 3},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 3},
	} {
		k, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			return "", err
		}
		maxDisp := k.Build.SFIStats.MaxStackDisp
		guard := k.Img.Layout.GuardSize
		ok := uint64(maxDisp) < guard
		fmt.Fprintf(&sb, "%-10s max %%rsp disp %#6x, guard %#8x  safe=%v\n", cfg.Name(), maxDisp, guard, ok)
		if !ok {
			return sb.String(), fmt.Errorf("bench: guard smaller than max stack displacement under %s", cfg.Name())
		}
	}
	return sb.String(), nil
}
