package kas

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func sizes() SectionSizes {
	return SectionSizes{
		Text:    3 * mem.PageSize,
		KrxKeys: mem.PageSize,
		Rodata:  mem.PageSize,
		Data:    2 * mem.PageSize,
		Bss:     mem.PageSize,
		Brk:     mem.PageSize,
	}
}

func TestPlanVanillaLayout(t *testing.T) {
	l := PlanVanilla(sizes())
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vanilla: .text at the very start of the image.
	if l.Symbols["_text"] != KernelBase {
		t.Errorf("_text = %#x, want %#x", l.Symbols["_text"], KernelBase)
	}
	text := l.Region(".text")
	rodata := l.Region(".rodata")
	if text == nil || rodata == nil || text.End() != rodata.Start {
		t.Fatal("vanilla: .rodata must immediately follow .text")
	}
	// Vanilla layout interleaves: code sits below data (the problem!).
	if text.Start > rodata.Start {
		t.Error("vanilla: .text must precede data")
	}
}

func TestPlanKRXLayout(t *testing.T) {
	l := PlanKRX(sizes(), 0)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	edata := l.Symbols["_krx_edata"]
	text := l.Symbols["_text"]
	if text <= edata {
		t.Fatalf("_text (%#x) must lie above _krx_edata (%#x)", text, edata)
	}
	// The flip: .rodata now starts the image.
	if l.Symbols["_sdata"] != KernelBase {
		t.Errorf("_sdata = %#x, want %#x", l.Symbols["_sdata"], KernelBase)
	}
	// Guard section separates data from code and is at least the default.
	guard := l.Region(".krx_phantom")
	if guard == nil || guard.Size < DefaultGuardSize {
		t.Fatalf("guard section missing or too small: %+v", guard)
	}
	if guard.Start != edata {
		t.Errorf("guard must start at _krx_edata")
	}
	// .krxkeys is in the code region but non-executable.
	keys := l.Region(".krxkeys")
	if keys == nil || !keys.Code || keys.Perm&mem.PermX != 0 {
		t.Fatalf(".krxkeys misplaced: %+v", keys)
	}
	if keys.Start < edata {
		t.Error(".krxkeys must be above _krx_edata (unreadable by instrumented code)")
	}
	// modules split per §5.1.1.
	if l.Symbols["__start_modules_text"] != ModulesBase {
		t.Error("modules_text must occupy the original modules area")
	}
	if l.Symbols["__end_modules_data"] != KRXFixmapBase {
		t.Error("modules_data must end at the (relocated) fixmap")
	}
	// The crucial invariant: module data is readable, so it must sit
	// below _krx_edata — only code may live above the boundary.
	if l.Symbols["__end_modules_data"] > l.Symbols["_krx_edata"] {
		t.Error("modules_data must lie below _krx_edata")
	}
	if l.Symbols["__start_modules_text"] < l.Symbols["_krx_edata"] {
		t.Error("modules_text must lie above _krx_edata")
	}
}

func TestLayoutValidateCatchesViolations(t *testing.T) {
	l := PlanKRX(sizes(), 0)
	// Force a data region above _krx_edata.
	l.Regions = append(l.Regions, Region{
		Name: ".evil", Start: l.Symbols["_etext"] + 0x10000, Size: mem.PageSize, Perm: mem.PermRW,
	})
	if err := l.Validate(); err == nil {
		t.Error("data region above _krx_edata must be rejected")
	}

	l2 := PlanKRX(sizes(), 0)
	l2.Regions[0].Start = l2.Regions[1].Start // overlap
	if err := l2.Validate(); err == nil {
		t.Error("overlapping regions must be rejected")
	}
}

func TestInstallAndSynonyms(t *testing.T) {
	pool := NewPhysPool(4 << 20)
	l := PlanKRX(sizes(), 0)
	sp, err := Install(l, pool)
	if err != nil {
		t.Fatal(err)
	}
	// Before synonym unmapping, kernel text is readable via physmap.
	textVA := l.Symbols["_text"]
	if err := sp.AS.Poke(textVA, []byte{0xC3}); err != nil {
		t.Fatal(err)
	}
	syn, ok := sp.SynonymAddr(textVA)
	if !ok {
		t.Fatal("no synonym for text")
	}
	b, f := sp.AS.LoadByte(syn)
	if f != nil || b != 0xC3 {
		t.Fatalf("physmap synonym read: %v %#x", f, b)
	}
	// Unmap code synonyms; the alias disappears, the text stays fetchable.
	n, err := sp.UnmapCodeSynonyms()
	if err != nil || n == 0 {
		t.Fatalf("UnmapCodeSynonyms: n=%d err=%v", n, err)
	}
	if _, f := sp.AS.LoadByte(syn); f == nil {
		t.Fatal("code synonym still readable after unmapping")
	}
	var buf [1]byte
	if _, f := sp.AS.Fetch(textVA, buf[:]); f != nil || buf[0] != 0xC3 {
		t.Fatalf("text must remain fetchable: %v", f)
	}
	// Data sections keep their synonyms (they're legitimately readable).
	dataVA := l.Region(".data").Start
	if _, ok := sp.SynonymAddr(dataVA); !ok {
		t.Fatal("data synonym lookup failed")
	}
}

func TestInstallVanillaKeepsAllSynonyms(t *testing.T) {
	pool := NewPhysPool(4 << 20)
	sp, err := Install(PlanVanilla(sizes()), pool)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sp.UnmapCodeSynonyms()
	if err != nil || n != 0 {
		t.Fatalf("vanilla layout must not unmap synonyms: n=%d err=%v", n, err)
	}
}

func TestModuleTextLifecycle(t *testing.T) {
	pool := NewPhysPool(4 << 20)
	l := PlanKRX(sizes(), 0)
	sp, err := Install(l, pool)
	if err != nil {
		t.Fatal(err)
	}
	code := []byte{0x90, 0x90, 0xC3}
	va := l.Symbols["__start_modules_text"]
	frames, pfn, err := sp.MapModuleText(va, code)
	if err != nil {
		t.Fatal(err)
	}
	// Module text is fetchable...
	var buf [3]byte
	if _, f := sp.AS.Fetch(va, buf[:]); f != nil || buf[2] != 0xC3 {
		t.Fatalf("module text fetch: %v %v", f, buf)
	}
	// ...but its physmap synonym has been closed.
	if _, f := sp.AS.LoadByte(PhysmapAddr(pfn)); f == nil {
		t.Fatal("module text synonym must be unmapped under kR^X")
	}
	// Unload: frames zapped, synonym restored.
	if err := sp.UnmapModuleText(va, frames, pfn); err != nil {
		t.Fatal(err)
	}
	b, f := sp.AS.LoadByte(PhysmapAddr(pfn))
	if f != nil || b != 0 {
		t.Fatalf("unloaded module frame must be zapped and remapped: %v %#x", f, b)
	}
	if sp.AS.Mapped(va) {
		t.Fatal("module text mapping must be gone")
	}
}

func TestAllocMapped(t *testing.T) {
	pool := NewPhysPool(1 << 20)
	sp, err := Install(PlanKRX(sizes(), 0), pool)
	if err != nil {
		t.Fatal(err)
	}
	va, err := sp.AllocMapped(2)
	if err != nil {
		t.Fatal(err)
	}
	if va < PhysmapBase {
		t.Fatalf("AllocMapped outside physmap: %#x", va)
	}
	if f := sp.AS.Write(va, 42, 8); f != nil {
		t.Fatal(f)
	}
}

func TestPoolExhaustion(t *testing.T) {
	pool := NewPhysPool(2 * mem.PageSize)
	if _, _, err := pool.Alloc(3); err == nil {
		t.Error("over-allocation must fail")
	}
	if _, _, err := pool.Alloc(2); err != nil {
		t.Error(err)
	}
	if _, _, err := pool.Alloc(1); err == nil {
		t.Error("pool must be exhausted")
	}
}

func TestDescribeFigure1(t *testing.T) {
	v := PlanVanilla(sizes()).Describe()
	k := PlanKRX(sizes(), 0).Describe()
	vs, ks := strings.Join(v, "\n"), strings.Join(k, "\n")
	if !strings.Contains(vs, "modules") || strings.Contains(vs, "modules_text") {
		t.Error("vanilla description must show a unified modules region")
	}
	if !strings.Contains(ks, "modules_text") || !strings.Contains(ks, "modules_data") {
		t.Error("kR^X description must show the split module regions")
	}
	if !strings.Contains(ks, ".krx_phantom") {
		t.Error("kR^X description must show the guard section")
	}
}
