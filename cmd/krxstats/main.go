// Command krxstats reports the §7.2 instrumentation and diversification
// statistics (pushfq/popfq elimination rate, lea elimination rate,
// coalescing rate, safe-read fraction, single-basic-block fraction,
// per-function entropy) and demonstrates the Appendix A page-table bug.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/audit"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pgtable"
	"repro/internal/sfi"
	"repro/internal/store"
)

func main() {
	appendixA := flag.Bool("appendix-a", false, "demonstrate the Appendix A XD-bit bug")
	runAudit := flag.Bool("audit", false, "audit the security invariants of every preset")
	metrics := flag.Bool("metrics", false, "print the observability metric registry (CPU, decode cache, artifact store) for every preset")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store directory: kernel images are reused across invocations instead of re-linked")
	quota := flag.String("cache-quota", "1G", "artifact store byte quota, LRU-evicted (accepts K/M/G suffixes; 0 = unlimited)")
	flag.Parse()

	if *cacheDir != "" {
		artifacts, err := store.Open(*cacheDir, *quota)
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxstats:", err)
			os.Exit(1)
		}
		defer artifacts.Close()
		kernel.SetBuildCache(core.NewImageCache(artifacts))
	}

	if *appendixA {
		demoAppendixA()
		return
	}
	if *metrics {
		if err := printMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "krxstats:", err)
			os.Exit(1)
		}
		return
	}
	if *runAudit {
		for _, cfg := range core.Presets() {
			cfg.Seed = 7
			k, err := kernel.Boot(cfg, kernel.WithCache())
			if err != nil {
				fmt.Fprintln(os.Stderr, "krxstats:", err)
				os.Exit(1)
			}
			rep := audit.Audit(k)
			fmt.Printf("=== %s ===\n%s\n", cfg.Name(), rep)
			if !rep.OK() {
				fmt.Fprintf(os.Stderr, "krxstats: audit failed for %s\n", cfg.Name())
				os.Exit(1)
			}
			// Exercise the kernel so the decode-cache counters reflect real
			// execution under this configuration (the audit itself is a
			// static inspection and runs no instructions).
			for i := 0; i < 8; i++ {
				k.Syscall(kernel.SysNull)
				if err := k.WriteUser(0, append([]byte("testfile"), 0)); err == nil {
					if r := k.Syscall(kernel.SysOpen, kernel.UserBuf); !r.Failed {
						k.Syscall(kernel.SysClose, r.Ret)
					}
				}
			}
			fmt.Println(bench.DecodeCacheReport(k))
			fmt.Println(bench.BlockEngineReport(k))
			fmt.Println(bench.DataTLBReport(k))
			fmt.Println()
		}
		return
	}

	for _, cfg := range []core.Config{
		{XOM: core.XOMSFI, SFILevel: sfi.O1, Seed: 5},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 5},
		{XOM: core.XOMMPX, Seed: 5},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 5},
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 5},
	} {
		k, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxstats:", err)
			os.Exit(1)
		}
		fmt.Println(bench.StatsReport(k))
	}
}

// printMetrics boots every preset from the shared build cache, exercises a
// few syscalls so the execution counters reflect real work, and prints the
// unified metric registry — the one-stop view of the stats previously
// scattered across DecodeCacheReport and the build-cache counters.
func printMetrics() error {
	for _, cfg := range core.Presets() {
		cfg.Seed = 7
		k, err := kernel.Boot(cfg, kernel.WithCache())
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			k.Syscall(kernel.SysNull)
			k.Syscall(kernel.SysGetpid)
		}
		// Fork the exercised kernel and run the same mix in the child: the
		// fork.* gauges then show real sharing (the frames the child still
		// shares with the parent) and real CoW traffic (the pages the
		// child's syscalls wrote, each now a private copy).
		child, err := k.Fork()
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			child.Syscall(kernel.SysNull)
			child.Syscall(kernel.SysGetpid)
		}
		reg := obs.NewRegistry()
		obs.RegisterCPU(reg, "cpu", k.CPU)
		obs.RegisterDecodeCache(reg, "decode_cache", k.CPU)
		obs.RegisterBlockEngine(reg, "block_engine", k.CPU)
		obs.RegisterDataTLB(reg, "dtlb", k.CPU.AS)
		obs.RegisterStore(reg, "store", kernel.BuildCache())
		obs.RegisterFork(reg, "fork", kernel.Forks, func() *mem.AddressSpace { return child.Space.AS })
		fmt.Printf("=== %s ===\n%s\n", cfg.Name(), reg.Format())
	}
	return nil
}

func demoAppendixA() {
	fmt.Println("Appendix A: the pgprot_large_2_4k() XD-truncation bug")
	flags := pgtable.FlagPresent | pgtable.FlagWrite | pgtable.FlagPSE | pgtable.FlagXD
	fmt.Printf("  2MB entry flags:        %#016x (W=1, XD=1: writable, non-executable)\n", flags)
	fmt.Printf("  buggy 32-bit conversion: %#016x (XD silently cleared -> W+X violation!)\n",
		pgtable.BuggyLarge2_4k(flags))
	fmt.Printf("  fixed 64-bit conversion: %#016x (XD preserved)\n", pgtable.Large2_4k(flags))
	fmt.Println()
	fmt.Println("Appendix A: the MODULES_LEN sanity-check bug")
	huge := pgtable.ModulesLen * 2
	fmt.Printf("  module of %d bytes: buggy check accepts=%v, fixed check accepts=%v\n",
		huge, pgtable.BuggyModuleFits(huge), pgtable.ModuleFits(huge))
}
