package store

// Layered composes two stores into one: Gets try the upper layer first and
// promote lower-layer hits upward; Puts and Pins go to both. The canonical
// composition is Layered(NewMem(q), disk) — hot artifacts served from
// memory, the disk layer holding the cross-process truth — but layers are
// just Stores, so deeper stacks compose the same way.
type Layered struct {
	upper Store
	lower Store
}

// NewLayered stacks upper over lower.
func NewLayered(upper, lower Store) *Layered {
	return &Layered{upper: upper, lower: lower}
}

// Get returns the blob from the upper layer if present, otherwise fetches
// it from the lower layer and promotes it into the upper so the next Get
// is a memory hit.
func (l *Layered) Get(kind string, key Key) ([]byte, error) {
	if data, err := l.upper.Get(kind, key); err == nil {
		return data, nil
	}
	data, err := l.lower.Get(kind, key)
	if err != nil {
		return nil, err
	}
	// Promotion failure is not a Get failure: the artifact is in hand.
	_ = l.upper.Put(kind, key, data)
	return data, nil
}

// Put writes to both layers. The lower (persistent) layer's error wins —
// that is the write that matters across processes.
func (l *Layered) Put(kind string, key Key, data []byte) error {
	uerr := l.upper.Put(kind, key, data)
	if err := l.lower.Put(kind, key, data); err != nil {
		return err
	}
	return uerr
}

// Pin pins in both layers; the returned release frees both.
func (l *Layered) Pin(kind string, key Key) func() {
	ru := l.upper.Pin(kind, key)
	rl := l.lower.Pin(kind, key)
	return func() {
		ru()
		rl()
	}
}

// Stats folds both layers' counters into one snapshot.
func (l *Layered) Stats() Stats {
	return l.upper.Stats().Add(l.lower.Stats())
}

// Close closes both layers.
func (l *Layered) Close() error {
	uerr := l.upper.Close()
	if err := l.lower.Close(); err != nil {
		return err
	}
	return uerr
}

// Open is the flag-level constructor behind -cache-dir/-cache-quota: the
// canonical memory-over-disk stack rooted at dir, both layers bounded by
// the parsed quota spec (see ParseBytes).
func Open(dir, quotaSpec string) (Store, error) {
	quota, err := ParseBytes(quotaSpec)
	if err != nil {
		return nil, err
	}
	disk, err := OpenDisk(dir, quota)
	if err != nil {
		return nil, err
	}
	return NewLayered(NewMem(quota), disk), nil
}
