// Service robustness and determinism tests. The load-bearing assertion,
// repeated under every fault schedule: the service's report is byte-identical
// to the in-process fuzz.Fuzzer's for the same campaign options — crash
// recovery, lease expiry, retries, and quarantine must never show in the
// output.
package fuzzd

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/fuzz"
	"repro/internal/fuzzd/chaos"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/sfi"
)

// campaign is the reference workload: protected config with fault injection,
// so the report exercises crashes, minimization, and audit accounting.
func campaign(iters, workers int) fuzz.Options {
	plan := inject.DefaultPlan(42)
	return fuzz.Options{
		Iters: iters,
		Seed:  42,
		Config: core.Config{
			XOM: core.XOMSFI, SFILevel: sfi.O3,
			Diversify: true, RAProt: diversify.RAEncrypt,
			Seed: 42,
		},
		Plan:    &plan,
		Workers: workers,
	}
}

// serviceOpts wraps a campaign in test-friendly service timings: leases
// expire fast so chaos schedules resolve in milliseconds, not seconds.
func serviceOpts(iters, workers int) Options {
	return Options{
		Fuzz:         campaign(iters, workers),
		LeaseIters:   16,
		LeaseTimeout: 50 * time.Millisecond,
	}
}

// direct runs the in-process fuzzer — the byte-identity baseline. Memoized
// per iteration count: the baseline itself is deterministic, so computing it
// once per process is both faster and part of the point.
var (
	baselineMu sync.Mutex
	baselines  = map[int]string{}
)

func direct(t *testing.T, iters int) string {
	t.Helper()
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if s, ok := baselines[iters]; ok {
		return s
	}
	rep, err := fuzz.Fuzz(campaign(iters, 1))
	if err != nil {
		t.Fatal(err)
	}
	baselines[iters] = rep.String()
	return rep.String()
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"NegativeLeaseIters", func(o *Options) { o.LeaseIters = -1 }, "LeaseIters"},
		{"LeaseSpansBatches", func(o *Options) { o.LeaseIters = fuzz.BatchSize + 1 }, "LeaseIters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := serviceOpts(64, 1)
			tc.mut(&o)
			_, err := New(o)
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("New = %v, want *OptionsError", err)
			}
			if oe.Field != tc.field {
				t.Errorf("error field = %q, want %q", oe.Field, tc.field)
			}
		})
	}
	// Campaign-level validation propagates as the fuzz package's typed error.
	o := serviceOpts(64, 1)
	o.Fuzz.Iters = -1
	var fe *fuzz.OptionsError
	if _, err := New(o); !errors.As(err, &fe) {
		t.Fatalf("New with bad Fuzz options = %v, want *fuzz.OptionsError", err)
	}
}

// TestChaosDeterminismMatrix is the acceptance gate: byte-identical reports
// across worker counts and fault schedules, against the in-process baseline.
// The schedules cover the full failure surface — worker death (containment +
// respawn), every-third-lease expiry (reclaim + reassignment + fencing), and
// a one-shot stall (expiry then late delivery).
func TestChaosDeterminismMatrix(t *testing.T) {
	iters := 192 // three full batches
	workerCounts := []int{1, 2, 4}
	if raceEnabled {
		iters = 128
		workerCounts = []int{1, 4}
	}
	baseline := direct(t, iters)
	for _, workers := range workerCounts {
		for _, spec := range []string{"", "kill-one", "expire-third", "stall-recover"} {
			name := spec
			if name == "" {
				name = "no-faults"
			}
			t.Run(name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				fn, err := chaos.Parse(spec)
				if err != nil {
					t.Fatal(err)
				}
				o := serviceOpts(iters, workers)
				o.Chaos = fn
				m, err := New(o)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := m.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if got := rep.String(); got != baseline {
					t.Errorf("report diverges from direct run:\n--- service ---\n%s--- direct ---\n%s", got, baseline)
				}
			})
		}
	}
}

// TestAllButOneWorkerKilled: three of four workers die on their very first
// lease with no respawn budget — the campaign degrades to a single worker
// and still terminates with the canonical report.
func TestAllButOneWorkerKilled(t *testing.T) {
	const iters = 128
	baseline := direct(t, iters)
	o := serviceOpts(iters, 4)
	o.MaxRespawns = -1 // no replacements: genuinely down to one worker
	o.Chaos = func(worker, lease int) chaos.Action {
		if worker < 3 && lease == 0 {
			return chaos.ActKill
		}
		return chaos.ActNone
	}
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != baseline {
		t.Errorf("degraded campaign diverges:\n--- service ---\n%s--- direct ---\n%s", got, baseline)
	}
	if n := m.cDeaths.Value(); n != 3 {
		t.Errorf("deaths = %d, want 3", n)
	}
	if n := m.cRespawns.Value(); n != 0 {
		t.Errorf("respawns = %d, want 0 (budget disabled)", n)
	}
}

// TestWholeFleetKilled: every worker (and every respawned replacement) dies
// on its first lease. Once the respawn budget is spent the manager executes
// the rest of the campaign inline — graceful degradation to zero workers.
func TestWholeFleetKilled(t *testing.T) {
	const iters = 64
	baseline := direct(t, iters)
	o := serviceOpts(iters, 2)
	o.Chaos = func(worker, lease int) chaos.Action {
		if lease == 0 {
			return chaos.ActKill
		}
		return chaos.ActNone
	}
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != baseline {
		t.Errorf("zero-worker campaign diverges:\n--- service ---\n%s--- direct ---\n%s", got, baseline)
	}
	if n := m.cInline.Value(); n == 0 {
		t.Error("expected inline executions after the fleet died")
	}
	// 2 initial workers + the full respawn budget (default 2x2), all dead.
	if n := m.cDeaths.Value(); n < 2 {
		t.Errorf("deaths = %d, want >= 2", n)
	}
}

// blackHole is a Transport whose workers accept leases and never respond —
// no heartbeat, no result, no death message. The pathological remote worker.
type blackHole struct {
	mu      sync.Mutex
	spawned int
}

type blackHoleWorker struct{}

func (blackHoleWorker) Send(Lease) {}
func (blackHoleWorker) Stop()      {}

func (b *blackHole) Spawn(id int, msgs chan<- Msg) (Worker, error) {
	b.mu.Lock()
	b.spawned++
	b.mu.Unlock()
	return blackHoleWorker{}, nil
}

// TestDeadLetterQuarantine: against a fleet of black holes, every lease
// expires unanswered; once a chunk burns its retry budget it must be
// dead-lettered — executed inline on the manager's triage executor — and the
// report must still be byte-identical and complete.
func TestDeadLetterQuarantine(t *testing.T) {
	const iters = 64
	baseline := direct(t, iters)
	o := serviceOpts(iters, 2)
	o.LeaseTimeout = 25 * time.Millisecond
	o.MaxRetries = 1
	o.Transport = &blackHole{}
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != baseline {
		t.Errorf("quarantined campaign diverges:\n--- service ---\n%s--- direct ---\n%s", got, baseline)
	}
	if n := m.cDeadletter.Value(); n == 0 {
		t.Error("expected dead-lettered chunks against a black-hole fleet")
	}
	if n := m.cExpired.Value(); n == 0 {
		t.Error("expected expired leases against a black-hole fleet")
	}
	if rep.Partial {
		t.Error("report marked partial; black-hole fleet must not lose iterations")
	}
}

// TestStallAccounting: a stalled worker's lease expires, and its eventual
// result is either accepted late (chunk not regranted) or fenced off as
// stale (chunk regranted under a new generation) — exactly one of the two
// per stall, never folded twice. The byte-identity of the report (asserted
// in the matrix test) plus these counters pin the behavior.
func TestStallAccounting(t *testing.T) {
	const iters = 128
	o := serviceOpts(iters, 2)
	o.Chaos = chaos.EveryNth(3, chaos.ActStall)
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := m.cExpired.Value(); n == 0 {
		t.Error("expected lease expiries under an every-third-lease stall schedule")
	}
	if m.cLate.Value()+m.cStale.Value() == 0 {
		t.Error("stalled leases resolved neither late-accepted nor stale-dropped")
	}
}

// TestPartialReportOnCancel: cancelling mid-campaign drains the in-flight
// batch and finalizes a partial report that is a byte-identical prefix (bar
// the partial marker) of a full campaign over the completed iterations.
func TestPartialReportOnCancel(t *testing.T) {
	const iters, cutoff = 192, 128
	o := serviceOpts(iters, 2)
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.batchHook = func(done int) {
		if done >= cutoff {
			cancel()
		}
	}
	rep, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("cancelled campaign not marked partial")
	}
	if rep.Iters != cutoff {
		t.Fatalf("partial report folded %d iters, want %d", rep.Iters, cutoff)
	}
	full := direct(t, cutoff)
	got := strings.Replace(rep.String(), " partial=true", "", 1)
	if got != full {
		t.Errorf("partial report is not a prefix campaign:\n--- partial ---\n%s--- full(%d) ---\n%s", got, cutoff, full)
	}
}

// TestServiceTraceIsolation: with campaign tracing on and chaos active, the
// merged campaign trace stays byte-identical to the in-process fuzzer's —
// service-plane events (leases, expiries, deaths) live on the manager's own
// host-clocked tracer and never leak into Report.Trace.
func TestServiceTraceIsolation(t *testing.T) {
	const iters = 128
	base := campaign(iters, 1)
	base.Trace = true
	f, err := fuzz.New(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}

	o := serviceOpts(iters, 2)
	o.Fuzz.Trace = true
	o.Chaos = chaos.Merge(
		chaos.OnLease(0, 1, chaos.ActKill),
		chaos.OnLease(1, 2, chaos.ActStall),
	)
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if obs.TraceText(rep.Trace) != obs.TraceText(want.Trace) {
		t.Error("campaign trace diverges under the service")
	}
	if rep.String() != want.String() {
		t.Error("traced report diverges under the service")
	}
	events := m.Tracer().Events()
	if len(events) == 0 {
		t.Fatal("service tracer recorded no lease-plane events")
	}
	var sawLease, sawDeath bool
	for _, e := range events {
		switch e.Kind {
		case obs.EvLease:
			sawLease = true
		case obs.EvWorkerDeath:
			sawDeath = true
		}
	}
	if !sawLease || !sawDeath {
		t.Errorf("service trace missing lease/death events (lease=%v death=%v)", sawLease, sawDeath)
	}
}

// TestSeededChaosSoak: the replayable seeded schedule — mixed kills, stalls,
// and delays, capped by its fault budget — against the byte-identity
// contract, at two worker counts.
func TestSeededChaosSoak(t *testing.T) {
	iters := 128
	if raceEnabled {
		iters = 64
	}
	baseline := direct(t, iters)
	for _, workers := range []int{2, 4} {
		o := serviceOpts(iters, workers)
		o.Chaos = chaos.Seeded(7, 0.15, 0.15, 0.1, 6)
		m, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.String(); got != baseline {
			t.Errorf("workers=%d: seeded-chaos report diverges:\n--- service ---\n%s--- direct ---\n%s",
				workers, got, baseline)
		}
	}
}

// TestForkModeServiceReport drives the golden-fork transport end to end:
// every worker — the initial fleet and the respawns a kill schedule forces —
// is a copy-on-write fork of one lazily booted golden kernel, and the report
// must still be byte-identical to the in-process boot-per-worker baseline.
// The fork.* gauges must land on the manager's registry and show the golden
// actually shared its frames.
func TestForkModeServiceReport(t *testing.T) {
	const iters = 128
	baseline := direct(t, iters)
	o := serviceOpts(iters, 4)
	o.Fuzz.Fork = true
	o.Chaos = func(worker, lease int) chaos.Action {
		if worker == 1 && lease == 0 {
			return chaos.ActKill // force a respawn, which must also fork
		}
		return chaos.ActNone
	}
	m, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != baseline {
		t.Errorf("fork-mode service report diverges from direct run:\n--- service ---\n%s--- direct ---\n%s", got, baseline)
	}
	stats := map[string]uint64{}
	for _, mt := range m.Registry().Snapshot() {
		stats[mt.Name] = mt.Value
	}
	if stats["fork.shared_frames"] == 0 {
		t.Error("fork.shared_frames = 0: golden kernel never froze its frames")
	}
	if spawned := stats["fuzzd.workers.spawned"]; spawned < 5 {
		t.Errorf("workers spawned = %d, want >= 5 (fleet of 4 + 1 respawn)", spawned)
	}
}
