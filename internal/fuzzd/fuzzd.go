// Package fuzzd is the fault-tolerant fuzzing service: a manager that owns
// the campaign ledger — frozen-corpus batches, the coverage map, the crash
// buckets — and a fleet of workers that lease fixed-size iteration ranges
// and report coverage deltas and crashes back.
//
// The service is built on one load-bearing claim: fault tolerance must not
// cost determinism. The in-process fuzz.Fuzzer already guarantees that a
// campaign report is a pure function of (seed, config, plan); fuzzd keeps
// that guarantee while workers die, stall past their lease deadlines, and
// get replaced, because every mechanism it adds is invisible to the ledger:
//
//   - Work is granted as leases over sub-ranges of the same fixed
//     fuzz.BatchSize batches the in-process scheduler uses, against the same
//     frozen corpus snapshots. What a lease executes is a pure function of
//     (seed, range, snapshot) — PickProg/InjSeed per iteration — so WHO runs
//     it, WHEN, and HOW MANY TIMES cannot show in the results.
//   - Each grant carries a generation number (a fencing token). A lease that
//     expires is reclaimed and regranted under a new generation; results
//     arriving under a superseded generation are dropped, so a stalled
//     worker reappearing late cannot double-fold a range.
//   - A range that exhausts its retry budget is not abandoned — it is
//     quarantined: the manager executes it inline on its own triage
//     executor. Dead-lettering bounds *which scheduler* runs the range,
//     never whether it runs, so the report stays complete.
//   - When the whole fleet is gone and the respawn budget is spent, the
//     manager degrades to executing every remaining range inline — a
//     zero-worker campaign still terminates with the canonical report.
//   - Batches complete in full before the ledger folds them, in canonical
//     iteration order, exactly as fuzz.Fuzzer merges its shards.
//
// Chaos schedules (internal/fuzzd/chaos) inject worker kills, stalls, and
// delays at lease boundaries; the determinism tests assert byte-identical
// reports across worker counts and schedules — the service's contract,
// continuously self-tested.
package fuzzd

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fuzz"
	"repro/internal/fuzzd/chaos"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Options configures the service around a fuzzing campaign.
type Options struct {
	// Fuzz is the campaign being served. Fuzz.Workers is the fleet size.
	Fuzz fuzz.Options

	// LeaseIters is the number of iterations per lease (0 = 16). Must not
	// exceed fuzz.BatchSize: leases subdivide batches, never span them.
	LeaseIters int

	// LeaseTimeout is how long a lease may go without a heartbeat before the
	// manager reclaims it (0 = 1s).
	LeaseTimeout time.Duration

	// Heartbeat is the interval workers renew their lease at
	// (0 = LeaseTimeout/4).
	Heartbeat time.Duration

	// MaxRetries caps regrants of one lease range after its first grant
	// (0 = 3, negative = no retries). A range that fails 1+MaxRetries grants
	// is dead-lettered: the manager quarantines it and executes it inline on
	// its triage executor.
	MaxRetries int

	// Backoff is the base requeue delay after a lost lease, doubled per
	// failed grant and capped at LeaseTimeout (0 = LeaseTimeout/8).
	Backoff time.Duration

	// MaxRespawns caps replacement workers spawned after deaths
	// (0 = 2 x Fuzz.Workers, negative = no respawns).
	MaxRespawns int

	// Chaos, when non-nil, is the fault schedule the (local) transport
	// self-injects — the service's self-test hook.
	Chaos chaos.Func

	// Transport spawns workers (nil = in-process LocalTransport).
	Transport Transport

	// Registry receives the service counters (nil = a private registry,
	// reachable via Manager.Registry).
	Registry *obs.Registry

	// Tracer receives service-plane events: leases, expiries, deaths,
	// respawns, dead-letters (nil = a private tracer). Service events are
	// stamped with host microseconds since Manager start — they are
	// scheduling observations, deliberately kept off the deterministic
	// campaign trace.
	Tracer *obs.Tracer

	// Tune, when non-nil, adjusts each booted kernel (triage and workers)
	// after boot — e.g. enabling the block engine.
	Tune func(*kernel.Kernel)
}

// OptionsError is the typed validation error New returns for an
// out-of-range service option.
type OptionsError struct {
	Field  string
	Value  int
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("fuzzd: invalid Options.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// Normalize validates the options and fills defaults (idempotent).
func (o *Options) Normalize() error {
	if err := o.Fuzz.Normalize(); err != nil {
		return err
	}
	switch {
	case o.LeaseIters < 0:
		return &OptionsError{Field: "LeaseIters", Value: o.LeaseIters, Reason: "must be >= 0 (0 = default 16)"}
	case o.LeaseIters > fuzz.BatchSize:
		return &OptionsError{Field: "LeaseIters", Value: o.LeaseIters,
			Reason: fmt.Sprintf("must be <= BatchSize (%d): leases subdivide batches", fuzz.BatchSize)}
	}
	if o.LeaseIters == 0 {
		o.LeaseIters = 16
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTimeout / 4
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 3
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = o.LeaseTimeout / 8
	}
	switch {
	case o.MaxRespawns == 0:
		o.MaxRespawns = 2 * o.Fuzz.Workers
	case o.MaxRespawns < 0:
		o.MaxRespawns = 0
	}
	return nil
}

// chunk states.
const (
	chunkPending = iota // waiting for a grant (readyAt gates retries)
	chunkLeased         // granted; deadline gates expiry
	chunkDone           // results accepted (or executed inline)
)

// chunk is one leasable iteration range of the current batch.
type chunk struct {
	lo, hi   int
	state    int
	gen      int // fencing token of the latest grant (kept across expiry for late-accept)
	worker   int
	grants   int
	deadline time.Time // chunkLeased: expiry
	readyAt  time.Time // chunkPending: earliest regrant (retry backoff)
	results  []IterResult
}

// wstate is the manager's view of one worker.
type wstate struct {
	id     int
	h      Worker
	gen    int  // fencing token of its current lease, 0 = idle
	lost   bool // lease expired; ungrantable until it reports back in
	lostAt time.Time
	dead   bool
}

// Manager owns the campaign state and runs the lease loop.
type Manager struct {
	opts   Options
	triage *fuzz.Executor // manager-owned: minimization + quarantined ranges
	ledger *fuzz.Ledger
	reg    *obs.Registry
	tracer *obs.Tracer
	epoch  time.Time

	msgs     chan Msg
	workers  map[int]*wstate
	nextID   int
	leaseSeq int // global grant counter; each grant's gen is unique
	respawns int

	cGranted, cExpired, cRenewed, cRetried *obs.Counter
	cStale, cLate, cDeadletter, cInline    *obs.Counter
	cSpawned, cDeaths, cRespawns           *obs.Counter

	// batchHook, when set, runs after every merged batch with the count of
	// iterations folded so far — the test seam for cancelling at a
	// deterministic boundary (mirrors fuzz.Fuzzer's).
	batchHook func(done int)
}

// New validates opts, boots the manager's triage executor, and prepares the
// service. Workers are spawned by Run.
func New(opts Options) (*Manager, error) {
	if err := opts.Normalize(); err != nil {
		return nil, err
	}
	triage, err := fuzz.NewExecutor(opts.Fuzz)
	if err != nil {
		return nil, err
	}
	if opts.Tune != nil {
		opts.Tune(triage.Kernel())
	}
	if opts.Transport == nil {
		opts.Transport = &LocalTransport{
			Opts:      opts.Fuzz,
			Chaos:     opts.Chaos,
			Heartbeat: opts.Heartbeat,
			StallFor:  3 * opts.LeaseTimeout,
			Tune:      opts.Tune,
		}
	}
	ledger := fuzz.NewLedger(opts.Fuzz, triage)
	// Warm start: with Options.Fuzz.Checkpoint set, the service resumes the
	// campaign from its stored batch-aligned checkpoint, exactly like the
	// in-process fuzzer.
	if _, err := ledger.LoadCheckpoint(); err != nil {
		return nil, err
	}
	m := &Manager{
		opts:   opts,
		triage: triage,
		ledger: ledger,
		reg:    opts.Registry,
		tracer: opts.Tracer,
		epoch:  time.Now(),
		// Sized so a full fleet's final results plus a burst of heartbeats
		// never block a worker against an inlining manager.
		msgs:    make(chan Msg, 64+8*opts.Fuzz.Workers),
		workers: make(map[int]*wstate),
	}
	if m.reg == nil {
		m.reg = obs.NewRegistry()
	}
	if m.tracer == nil {
		m.tracer = obs.NewTracer(0)
	}
	if m.tracer.Now == nil {
		m.tracer.Now = func() (uint64, uint64) {
			us := uint64(time.Since(m.epoch).Microseconds())
			return us, us
		}
	}
	m.cGranted = m.reg.Counter("fuzzd.leases.granted")
	m.cExpired = m.reg.Counter("fuzzd.leases.expired")
	m.cRenewed = m.reg.Counter("fuzzd.leases.renewed")
	m.cRetried = m.reg.Counter("fuzzd.leases.retried")
	m.cStale = m.reg.Counter("fuzzd.leases.stale_dropped")
	m.cLate = m.reg.Counter("fuzzd.leases.late_accepted")
	m.cDeadletter = m.reg.Counter("fuzzd.deadletter")
	m.cInline = m.reg.Counter("fuzzd.inline")
	m.cSpawned = m.reg.Counter("fuzzd.workers.spawned")
	m.cDeaths = m.reg.Counter("fuzzd.workers.deaths")
	m.cRespawns = m.reg.Counter("fuzzd.workers.respawns")
	// Fork-mode observability: the golden kernel does not exist until the
	// first worker spawns, so the gauges resolve it at read time (and read
	// zero before then).
	if lt, ok := m.opts.Transport.(*LocalTransport); ok && opts.Fuzz.Fork {
		obs.RegisterFork(m.reg, "fork", kernel.Forks, func() *mem.AddressSpace {
			if lt.golden == nil {
				return nil
			}
			return lt.golden.Kernel().Space.AS
		})
	}
	return m, nil
}

// Registry returns the service metrics registry.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Tracer returns the service-plane tracer (leases, expiries, deaths,
// respawns — host-clocked, separate from the campaign trace).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// Run serves the campaign and returns its report — byte-identical to
// fuzz.Fuzz on the same Options.Fuzz, whatever the fleet does. Cancellation
// is graceful and batch-aligned: the in-flight batch drains (in-flight
// leases are collected or reclaimed, never torn), completed batches are
// merged, and the report is finalized with Partial set.
func (m *Manager) Run(ctx context.Context) (*fuzz.Report, error) {
	for i := 0; i < m.opts.Fuzz.Workers; i++ {
		// A failed spawn thins the fleet rather than killing the campaign;
		// the degradation floor below guarantees progress regardless.
		m.spawn()
	}
	defer m.stopAll()
	total := m.opts.Fuzz.Iters
	// A checkpoint-restored ledger starts at its last completed batch.
	for lo := m.ledger.Done(); lo < total; lo += fuzz.BatchSize {
		if ctx.Err() != nil {
			break
		}
		hi := lo + fuzz.BatchSize
		if hi > total {
			hi = total
		}
		if err := m.runBatch(lo, hi); err != nil {
			return nil, err
		}
		if err := m.ledger.SaveCheckpoint(); err != nil {
			return nil, err
		}
		if m.batchHook != nil {
			m.batchHook(m.ledger.Done())
		}
	}
	return m.ledger.Finalize(m.ledger.Done() < total), nil
}

// runBatch drives iterations [lo, hi) to completion through the lease loop,
// then folds them into the ledger in canonical order.
func (m *Manager) runBatch(lo, hi int) error {
	corpus := m.ledger.Corpus()
	var chunks []*chunk
	for clo := lo; clo < hi; clo += m.opts.LeaseIters {
		chi := clo + m.opts.LeaseIters
		if chi > hi {
			chi = hi
		}
		chunks = append(chunks, &chunk{lo: clo, hi: chi, state: chunkPending})
	}

	for {
		now := time.Now()
		if err := m.expire(chunks, corpus, now); err != nil {
			return err
		}
		if err := m.grant(chunks, corpus, now); err != nil {
			return err
		}
		if countState(chunks, chunkDone) == len(chunks) {
			break
		}
		if !m.waitWorthwhile(chunks) {
			// Graceful-degradation floor: nothing is leased, nobody is left
			// to lease to, and the respawn budget is spent — the manager
			// becomes the last worker and finishes the batch inline.
			for _, c := range chunks {
				if c.state == chunkPending {
					m.cInline.Inc()
					if err := m.inline(c, corpus); err != nil {
						return err
					}
				}
			}
			continue
		}
		timer, timerC := m.nextWake(chunks, time.Now())
		var err error
		select {
		case msg := <-m.msgs:
			err = m.handle(msg, chunks, corpus)
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
		if err != nil {
			return err
		}
	}

	// Canonical merge: chunks are in iteration order, each result slice is
	// in iteration order, and every iteration was accepted exactly once.
	for _, c := range chunks {
		for _, ir := range c.results {
			m.ledger.Fold(ir.Iter, ir.Prog, ir.Res)
		}
	}
	return nil
}

// spawn starts one worker through the transport.
func (m *Manager) spawn() *wstate {
	id := m.nextID
	m.nextID++
	h, err := m.opts.Transport.Spawn(id, m.msgs)
	if err != nil {
		return nil
	}
	ws := &wstate{id: id, h: h}
	m.workers[id] = ws
	m.cSpawned.Inc()
	return ws
}

// stopAll tells every live worker to exit.
func (m *Manager) stopAll() {
	for _, ws := range m.workers {
		if !ws.dead {
			ws.h.Stop()
		}
	}
}

// patience is how long a lost worker may stay silent after its lease
// expired before the manager presumes it dead. It must comfortably exceed
// the local transport's stall window so a merely-stalled worker delivers its
// late result before being written off; presuming too early is still safe —
// a "dead" worker's eventual result is accepted or fenced by generation like
// any other — it just spends respawn budget sooner than necessary.
func (m *Manager) patience() time.Duration { return 4 * m.opts.LeaseTimeout }

// expire reclaims leased chunks whose deadline passed: the worker is marked
// lost (ungrantable until it reports back), the chunk goes back to the
// queue — or to quarantine if its retry budget is spent. Lost workers that
// stay silent past the patience window are presumed dead, so a worker that
// never comes back cannot stall the campaign forever.
func (m *Manager) expire(chunks []*chunk, corpus []*fuzz.Prog, now time.Time) error {
	for _, c := range chunks {
		if c.state != chunkLeased || now.Before(c.deadline) {
			continue
		}
		m.cExpired.Inc()
		m.trace(obs.EvLeaseExpire, fmt.Sprintf("worker-%d", c.worker), uint64(c.lo), uint64(c.gen))
		if ws := m.workers[c.worker]; ws != nil && ws.gen == c.gen {
			ws.gen = 0
			ws.lost = true
			ws.lostAt = now
		}
		if err := m.reclaim(c, corpus); err != nil {
			return err
		}
	}
	for _, ws := range m.workers {
		if ws.lost && !ws.dead && now.Sub(ws.lostAt) >= m.patience() {
			ws.dead = true
			m.cDeaths.Inc()
			m.trace(obs.EvWorkerDeath, fmt.Sprintf("worker-%d-presumed", ws.id), 0, 0)
		}
	}
	return nil
}

// reclaim requeues a lost chunk with exponential backoff, or dead-letters it
// once its grants exhaust the retry budget. The chunk keeps its last gen so
// a late result from the lost lease can still be accepted while it waits.
func (m *Manager) reclaim(c *chunk, corpus []*fuzz.Prog) error {
	if c.grants >= 1+m.opts.MaxRetries {
		m.cDeadletter.Inc()
		m.trace(obs.EvDeadLetter, "quarantine", uint64(c.lo), uint64(c.hi))
		m.cInline.Inc()
		return m.inline(c, corpus)
	}
	m.cRetried.Inc()
	backoff := m.opts.Backoff << (c.grants - 1)
	if backoff > m.opts.LeaseTimeout {
		backoff = m.opts.LeaseTimeout
	}
	c.state = chunkPending
	c.readyAt = time.Now().Add(backoff)
	return nil
}

// inline executes a chunk on the manager's own triage executor — the
// quarantine and degradation path. Same PickProg/InjSeed derivation, same
// corpus snapshot, so the results are indistinguishable from a worker's.
func (m *Manager) inline(c *chunk, corpus []*fuzz.Prog) error {
	c.results = c.results[:0]
	for i := c.lo; i < c.hi; i++ {
		prog := fuzz.PickProg(m.opts.Fuzz.Seed, i, corpus, m.triage.Kaddrs())
		res, err := m.triage.Exec(prog, fuzz.InjSeed(m.opts.Fuzz.Seed, i))
		if err != nil {
			return fmt.Errorf("fuzzd: inline iteration %d: %w", i, err)
		}
		c.results = append(c.results, IterResult{Iter: i, Prog: prog, Res: res})
	}
	c.state = chunkDone
	return nil
}

// grant hands ready pending chunks to idle workers. When the whole fleet is
// dead and budget remains, it respawns ahead of granting so the batch keeps
// moving without waiting for another death message.
func (m *Manager) grant(chunks []*chunk, corpus []*fuzz.Prog, now time.Time) error {
	for _, c := range chunks {
		if c.state != chunkPending || now.Before(c.readyAt) {
			continue
		}
		ws := m.idleWorker()
		if ws == nil && m.countLive() == 0 && m.respawns < m.opts.MaxRespawns {
			m.respawns++
			if ws = m.spawn(); ws != nil {
				m.cRespawns.Inc()
				m.trace(obs.EvRespawn, fmt.Sprintf("worker-%d", ws.id), 0, uint64(m.respawns))
			}
		}
		if ws == nil {
			return nil
		}
		m.leaseSeq++
		c.gen = m.leaseSeq
		c.state = chunkLeased
		c.worker = ws.id
		c.grants++
		c.deadline = now.Add(m.opts.LeaseTimeout)
		ws.gen = c.gen
		m.cGranted.Inc()
		m.trace(obs.EvLease, fmt.Sprintf("worker-%d", ws.id), uint64(c.lo), uint64(c.gen))
		ws.h.Send(Lease{Gen: c.gen, Lo: c.lo, Hi: c.hi, Corpus: corpus})
	}
	return nil
}

// idleWorker returns a grantable worker: alive, not lost, no lease.
func (m *Manager) idleWorker() *wstate {
	// Lowest id wins, for stable (though behaviorally irrelevant) grants.
	var best *wstate
	for _, ws := range m.workers {
		if ws.dead || ws.lost || ws.gen != 0 {
			continue
		}
		if best == nil || ws.id < best.id {
			best = ws
		}
	}
	return best
}

// countLive counts workers that are alive and not lost.
func (m *Manager) countLive() int {
	n := 0
	for _, ws := range m.workers {
		if !ws.dead && !ws.lost {
			n++
		}
	}
	return n
}

func countState(chunks []*chunk, state int) int {
	n := 0
	for _, c := range chunks {
		if c.state == state {
			n++
		}
	}
	return n
}

// waitWorthwhile reports whether blocking can make progress: an outstanding
// lease will complete or expire, a worker (possibly lost — it reports back
// eventually, dead or alive) may come up for work, or the respawn budget can
// buy a replacement. When all fail, only the inline floor remains.
func (m *Manager) waitWorthwhile(chunks []*chunk) bool {
	if countState(chunks, chunkLeased) > 0 {
		return true
	}
	for _, ws := range m.workers {
		if !ws.dead {
			return true
		}
	}
	return m.respawns < m.opts.MaxRespawns
}

// nextWake arms a timer for the earliest actionable instant: a lease
// deadline, a retry readyAt when an idle worker could take the grant, or a
// lost worker's presumed-death deadline. Returns a nil channel (blocks
// forever) when nothing is timed.
func (m *Manager) nextWake(chunks []*chunk, now time.Time) (*time.Timer, <-chan time.Time) {
	var at time.Time
	// A pending chunk is actionable at readyAt if a worker is idle — or if
	// the fleet is gone but the respawn budget could buy one (grant's
	// respawn-ahead case: the retry must not depend on a message arriving).
	grantable := m.idleWorker() != nil ||
		(m.countLive() == 0 && m.respawns < m.opts.MaxRespawns)
	for _, c := range chunks {
		var t time.Time
		switch {
		case c.state == chunkLeased:
			t = c.deadline
		case c.state == chunkPending && grantable:
			t = c.readyAt
		default:
			continue
		}
		if at.IsZero() || t.Before(at) {
			at = t
		}
	}
	for _, ws := range m.workers {
		if ws.lost && !ws.dead {
			if t := ws.lostAt.Add(m.patience()); at.IsZero() || t.Before(at) {
				at = t
			}
		}
	}
	if at.IsZero() {
		return nil, nil
	}
	d := at.Sub(now)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	timer := time.NewTimer(d)
	return timer, timer.C
}

// handle applies one worker message to the batch state.
func (m *Manager) handle(msg Msg, chunks []*chunk, corpus []*fuzz.Prog) error {
	ws := m.workers[msg.Worker]
	switch msg.Kind {
	case MsgHeartbeat:
		for _, c := range chunks {
			if c.state == chunkLeased && c.gen == msg.Gen {
				c.deadline = time.Now().Add(m.opts.LeaseTimeout)
				m.cRenewed.Inc()
				return nil
			}
		}
		// A heartbeat for a superseded lease: the worker is stalled-but-alive
		// on work we already reassigned. Ignore; its result will be fenced.

	case MsgResult:
		// Whatever the verdict on the payload, the sender has finished its
		// lease and is grantable again.
		if ws != nil {
			ws.gen = 0
			ws.lost = false
		}
		for _, c := range chunks {
			if c.gen != msg.Gen {
				continue
			}
			switch c.state {
			case chunkLeased:
				c.results = msg.Iters
				c.state = chunkDone
			case chunkPending:
				// The lease expired but the range was never regranted — the
				// late result is still the current generation's, and identical
				// to what any regrant would have produced. Accept it.
				m.cLate.Inc()
				c.results = msg.Iters
				c.state = chunkDone
			default:
				m.cStale.Inc()
			}
			return nil
		}
		// Generation superseded (or from a previous batch): fence it out.
		m.cStale.Inc()

	case MsgDeath:
		m.cDeaths.Inc()
		m.trace(obs.EvWorkerDeath, fmt.Sprintf("worker-%d", msg.Worker), 0, uint64(msg.Gen))
		if ws != nil {
			ws.dead = true
			ws.gen = 0
		}
		for _, c := range chunks {
			if c.state == chunkLeased && c.gen == msg.Gen {
				// The lease died with the worker; requeue or quarantine.
				if err := m.reclaim(c, corpus); err != nil {
					return err
				}
				break
			}
		}
		if m.respawns < m.opts.MaxRespawns {
			m.respawns++
			if nw := m.spawn(); nw != nil {
				m.cRespawns.Inc()
				m.trace(obs.EvRespawn, fmt.Sprintf("worker-%d", nw.id), 0, uint64(m.respawns))
			}
		}
	}
	return nil
}

// trace emits one service-plane event.
func (m *Manager) trace(kind obs.EventKind, name string, addr, arg uint64) {
	m.tracer.Emit(kind, name, addr, arg)
}
