// Command krxfuzz runs the syscall fuzzer with fault injection against the
// simulated kernel: seeded program generation, corpus-guided mutation,
// deterministic fault injection, crash triage with deduplication, and
// reproducer minimization. The same -seed always yields a byte-identical
// report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/fuzz"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/sfi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "krxfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	iters := flag.Int("iters", 1000, "programs to execute")
	seed := flag.Int64("seed", 42, "master seed (generation, mutation, injection)")
	noInject := flag.Bool("no-inject", false, "disable fault injection")
	vanilla := flag.Bool("vanilla", false, "fuzz the unprotected kernel instead of SFI+X")
	budget := flag.Uint64("budget", 0, "per-syscall instruction watchdog budget (0 = default)")
	workers := flag.Int("workers", 1, "parallel execution workers (report is byte-identical for any count)")
	jsonOut := flag.Bool("json", false, "emit the report as machine-readable JSON (schema_version marks the format)")
	traceOut := flag.String("trace", "", "record the campaign event stream (byte-identical for any -workers count); write Chrome trace-event JSON to this file")
	stats := flag.Bool("stats", false, "print the observability metric registry after the campaign")
	blocks := flag.Bool("blocks", true, "dispatch through the superblock engine (bit-identical either way; -blocks=false forces per-instruction stepping)")
	flag.Parse()

	cfg := core.Config{
		XOM: core.XOMSFI, SFILevel: sfi.O3,
		Diversify: true, RAProt: diversify.RAEncrypt,
		Seed:           *seed,
		WatchdogBudget: *budget,
	}
	if *vanilla {
		cfg = core.Config{Seed: *seed, WatchdogBudget: *budget}
	}
	opts := fuzz.Options{
		Iters: *iters, Seed: *seed, Config: cfg, Workers: *workers,
		Trace: *traceOut != "",
	}
	if !*noInject {
		plan := inject.DefaultPlan(*seed)
		opts.Plan = &plan
	}
	f, err := fuzz.New(opts)
	if err != nil {
		return err
	}
	for _, k := range f.Kernels() {
		k.CPU.SetBlockEngine(*blocks)
	}
	rep, err := f.Run()
	if err != nil {
		return err
	}
	if *jsonOut {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(rep.String())
	}
	if *traceOut != "" {
		b, err := obs.ChromeTrace(rep.Trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "krxfuzz: wrote %d trace events to %s\n", len(rep.Trace), *traceOut)
	}
	if *stats {
		reg := obs.NewRegistry()
		obs.RegisterCPU(reg, "cpu", f.Kernel().CPU)
		obs.RegisterDecodeCache(reg, "decode_cache", f.Kernel().CPU)
		obs.RegisterBlockEngine(reg, "block_engine", f.Kernel().CPU)
		obs.RegisterDataTLB(reg, "dtlb", f.Kernel().CPU.AS)
		obs.RegisterBuildCache(reg, "build_cache", kernel.BuildCache())
		fmt.Print(reg.Format())
	}
	return nil
}
