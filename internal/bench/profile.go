package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// Profile is a cycle-attribution breakdown of one workload run: where the
// kernel time goes by function, and how much of it is protection machinery
// (the overhead decomposition behind Table 1's percentages).
type Profile struct {
	Config string

	TotalCycles uint64
	// Category cycles.
	RangeCheck uint64 // pushfq/popfq, RC lea/cmp/ja, bndcu
	RAProt     uint64 // xkey loads, xor (%rsp), zaps, decoy prologue/epilogue
	Base       uint64 // everything else

	// ByFunc attributes cycles to the containing function.
	ByFunc map[string]uint64
}

// profiler classifies executed instructions. Classification uses the
// instruction patterns the passes emit:
//
//	range checks:  pushfq/popfq; lea into %r11; cmp %r11 or cmp-imm in the
//	               _krx_edata band followed by ja; bndcu
//	ra protection: rip-relative load into %r11; xor %r11,(%rsp);
//	               movq $0,-8(%rsp); push %r11; ret $8 / add $8,%rsp+ret
type profiler struct {
	p         *Profile
	k         *kernel.Kernel
	edataLo   uint64
	edataHi   uint64
	funcAt    []funcRangeEntry
	prevWasRC bool // a cmp classified as RC: its ja belongs to the RC too

	// Pattern gating: only look for a scheme's signature instructions
	// when the kernel was actually built with that scheme (the patterns
	// are unambiguous within such kernels but could collide with ordinary
	// code otherwise — e.g. the entry stub's push %r11).
	wantRC    bool
	wantX     bool
	wantDecoy bool
}

type funcRangeEntry struct {
	start, end uint64
	name       string
}

func newProfiler(k *kernel.Kernel) *profiler {
	edata := k.Sym("_krx_edata")
	pr := &profiler{
		p: &Profile{Config: k.Cfg.Name(), ByFunc: make(map[string]uint64)},
		k: k,
		// RC immediates are _krx_edata minus a small displacement.
		edataLo: edata - (1 << 20),
		edataHi: edata,
	}
	pr.wantRC = k.Cfg.XOM == core.XOMSFI || k.Cfg.XOM == core.XOMMPX
	pr.wantX = k.Cfg.RAProt == diversify.RAEncrypt
	pr.wantDecoy = k.Cfg.RAProt == diversify.RADecoy
	for _, f := range k.Img.Funcs {
		pr.funcAt = append(pr.funcAt, funcRangeEntry{f.Addr, f.Addr + f.Size, f.Name})
	}
	sort.Slice(pr.funcAt, func(i, j int) bool { return pr.funcAt[i].start < pr.funcAt[j].start })
	return pr
}

func (pr *profiler) funcName(rip uint64) string {
	i := sort.Search(len(pr.funcAt), func(i int) bool { return pr.funcAt[i].end > rip })
	if i < len(pr.funcAt) && rip >= pr.funcAt[i].start {
		return pr.funcAt[i].name
	}
	if rip < 0xffff800000000000 {
		return "[user]"
	}
	return "[module]"
}

// OnExec implements cpu.ExecProbe.
func (pr *profiler) OnExec(rip uint64, in *isa.Instr, cycles uint64) {
	p := pr.p
	p.TotalCycles += cycles
	p.ByFunc[pr.funcName(rip)] += cycles

	wasRC := pr.prevWasRC
	pr.prevWasRC = false
	switch {
	case pr.wantRC && (in.Op == isa.PUSHFQ || in.Op == isa.POPFQ || in.Op == isa.BNDCU):
		p.RangeCheck += cycles
	case pr.wantRC && in.Op == isa.LEA && in.Dst == isa.R11:
		p.RangeCheck += cycles
		// The cmp/ja that follow belong to the same check.
	case pr.wantRC && in.Op == isa.CMPri && in.Dst == isa.R11:
		p.RangeCheck += cycles
		pr.prevWasRC = true
	case pr.wantRC && in.Op == isa.CMPri && uint64(in.Imm) >= pr.edataLo && uint64(in.Imm) <= pr.edataHi:
		p.RangeCheck += cycles
		pr.prevWasRC = true
	case pr.wantRC && in.Op == isa.JCC && in.CC == isa.CondA && wasRC:
		p.RangeCheck += cycles
	case pr.wantX && in.Op == isa.MOVrm && in.Dst == isa.R11 && in.M.RIPRel:
		p.RAProt += cycles // xkey load
	case pr.wantX && in.Op == isa.XORmr && in.Dst == isa.R11 && in.M.Base == isa.RSP:
		p.RAProt += cycles // return-address (de|en)cryption
	case pr.wantX && in.Op == isa.MOVmi && in.M.Base == isa.RSP && in.M.Disp == -8 && in.Imm == 0:
		p.RAProt += cycles // return-site zap
	case pr.wantDecoy && in.Op == isa.PUSH && in.Dst == isa.R11:
		p.RAProt += cycles // decoy prologue (a)
	case pr.wantDecoy && in.Op == isa.RETI && in.Imm == 8:
		p.RAProt += cycles // decoy epilogue (b)
	case pr.wantDecoy && in.Op == isa.MOVri && in.Dst == isa.R11:
		p.RAProt += cycles // tripwire address load
	default:
		p.Base += cycles
	}
}

// RunProfile executes one transaction of every Table 2 workload under the
// configuration and returns the cycle decomposition.
func RunProfile(cfg core.Config) (*Profile, error) {
	k, err := kernel.Boot(cfg, kernel.WithCache())
	if err != nil {
		return nil, err
	}
	pr := newProfiler(k)
	k.CPU.AddProbe(pr)
	defer k.CPU.RemoveProbe(pr)
	for _, w := range Workloads() {
		if _, err := w.Txn(k); err != nil {
			return nil, fmt.Errorf("profile: %s: %w", w.Name, err)
		}
	}
	return pr.p, nil
}

// Format renders the decomposition plus the hottest functions.
func (p *Profile) Format(topN int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Profile (%s): %d kernel cycles\n", p.Config, p.TotalCycles)
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(p.TotalCycles) }
	fmt.Fprintf(&sb, "  base work:          %8d (%5.1f%%)\n", p.Base, pct(p.Base))
	fmt.Fprintf(&sb, "  range checks:       %8d (%5.1f%%)\n", p.RangeCheck, pct(p.RangeCheck))
	fmt.Fprintf(&sb, "  ra protection:      %8d (%5.1f%%)\n", p.RAProt, pct(p.RAProt))
	type kv struct {
		name string
		c    uint64
	}
	var funcs []kv
	for n, c := range p.ByFunc {
		funcs = append(funcs, kv{n, c})
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].c > funcs[j].c })
	fmt.Fprintf(&sb, "  hottest functions:\n")
	for i, f := range funcs {
		if i >= topN {
			break
		}
		fmt.Fprintf(&sb, "    %-28s %8d (%5.1f%%)\n", f.name, f.c, pct(f.c))
	}
	return sb.String()
}
