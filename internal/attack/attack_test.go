package attack

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func boot(t *testing.T, cfg core.Config) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestScannerFindsPlantedGadgets(t *testing.T) {
	k := boot(t, core.Vanilla)
	gs := ScanGadgets(k.Img.Text, k.Sym("_text"))
	if len(gs) == 0 {
		t.Fatal("no gadgets in a full kernel image?")
	}
	if _, ok := FindPopRet(gs, isa.RDI); !ok {
		t.Fatal("no pop %rdi ; ret gadget (donor functions missing?)")
	}
	if _, ok := FindPopRet(gs, isa.RSI); !ok {
		t.Fatal("no pop %rsi ; ret gadget")
	}
}

func TestScannerUnalignedDecoding(t *testing.T) {
	// A mov imm embedding "pop rdi; ret" bytes yields an unaligned gadget.
	mov := isa.MovRI(isa.RAX, int64(0xC3_07_27)) // 27 07 C3 little-endian
	code, err := mov.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	gs := ScanGadgets(code, 0x1000)
	found := false
	for _, g := range gs {
		if len(g.Ins) == 2 && g.Ins[0].Op == isa.POP && g.Ins[0].Dst == isa.RDI {
			found = true
		}
	}
	if !found {
		t.Fatalf("unaligned gadget not found in % x (gadgets: %v)", code, gs)
	}
}

func TestDirectROPAgainstVanilla(t *testing.T) {
	// Same layout (vanilla has no randomization): precomputed chain works.
	target := boot(t, core.Vanilla)
	ref := boot(t, core.Vanilla)
	r := DirectROP(target, ref)
	if !r.Success {
		t.Fatalf("direct ROP must succeed on vanilla: %v", r)
	}
}

func TestDirectROPDefeatedByDiversification(t *testing.T) {
	// §7.3 "Direct ROP/JOP": the exploit fails, as the payload relied on
	// pre-computed gadget addresses, none of which remained correct.
	target := boot(t, core.Config{Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1001})
	ref := boot(t, core.Config{Diversify: true, RAProt: diversify.RAEncrypt, Seed: 2002})
	r := DirectROP(target, ref)
	if r.Success {
		t.Fatalf("direct ROP must fail across seeds: %v", r)
	}
}

func TestNoFunctionAtOriginalLocation(t *testing.T) {
	// §7.3: "under kR^X no function remained at its original location".
	a := boot(t, core.Config{Diversify: true, Seed: 1})
	b := boot(t, core.Config{Diversify: true, Seed: 2})
	same := 0
	for _, f := range a.Img.Funcs {
		if f.Name == "krx_handler" || f.Name == "syscall_entry" || f.Name == "fault_entry" {
			continue
		}
		if bf, ok := b.Img.FuncAddr(f.Name); ok && bf == f.Addr {
			same++
		}
	}
	if same > len(a.Img.Funcs)/20 {
		t.Fatalf("%d/%d functions stayed put across seeds", same, len(a.Img.Funcs))
	}
}

func TestJITROPSucceedsWithoutXOM(t *testing.T) {
	// Fine-grained KASLR alone is bypassed by JIT-ROP (the paper's
	// verification step before enabling R^X).
	target := boot(t, core.Config{Diversify: true, RAProt: diversify.RAEncrypt, Seed: 77})
	r := JITROP(target)
	if !r.Success {
		t.Fatalf("JIT-ROP must bypass diversification without R^X: %v", r)
	}
}

func TestJITROPBlockedBySFI(t *testing.T) {
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 78})
	r := JITROP(target)
	if r.Success {
		t.Fatalf("JIT-ROP must be blocked by kR^X-SFI: %v", r)
	}
	if r.Stage != "code-harvest" {
		t.Fatalf("attack should die at the code-harvest stage, died at %s", r.Stage)
	}
}

func TestJITROPBlockedByMPX(t *testing.T) {
	target := boot(t, core.Config{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RADecoy, Seed: 79})
	r := JITROP(target)
	if r.Success {
		t.Fatalf("JIT-ROP must be blocked by kR^X-MPX: %v", r)
	}
}

func TestJITROPBlockedByEPT(t *testing.T) {
	target := boot(t, core.Config{XOM: core.XOMEPT, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 80})
	r := JITROP(target)
	if r.Success {
		t.Fatalf("JIT-ROP must be blocked by the EPT baseline: %v", r)
	}
}

func TestIndirectJITROPHarvestsRawReturnAddresses(t *testing.T) {
	// Without return-address protection, stale return addresses litter the
	// kernel stack and every harvested pointer is usable.
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, Seed: 81})
	r := IndirectJITROP(target)
	if !r.Success {
		t.Fatalf("indirect JIT-ROP must harvest raw return addresses without X/D: %v", r)
	}
}

func TestIndirectJITROPDefeatedByEncryption(t *testing.T) {
	// §7.3: encrypted return addresses leak nothing; zapping removes the
	// stale plaintext.
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 82})
	r := IndirectJITROP(target)
	if r.Success {
		t.Fatalf("indirect JIT-ROP must fail under return-address encryption: %v", r)
	}
}

func TestIndirectJITROPDecoysTrapGuesses(t *testing.T) {
	// Under decoys the harvest yields pairs: roughly half of the wielded
	// pointers land on tripwires, and any tripwire hit burns the exploit
	// (P_succ = 1/2^n per §7.3). Aggregate across seeds.
	usable, tripped := 0, 0
	for seed := int64(90); seed < 95; seed++ {
		target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: seed})
		r := IndirectJITROP(target)
		if r.Success {
			t.Fatalf("seed %d: decoys must defeat the indirect attack: %v", seed, r)
		}
		var n, u, tr, cr int
		if _, err := fmt.Sscanf(r.Detail, "%d harvested, %d usable, %d tripwires, %d crashed", &n, &u, &tr, &cr); err != nil {
			t.Fatalf("seed %d: cannot parse detail %q", seed, r.Detail)
		}
		usable += u
		tripped += tr
	}
	if tripped == 0 {
		t.Fatal("decoys never placed a tripwire in the harvest")
	}
	frac := float64(tripped) / float64(usable+tripped)
	if frac < 0.2 {
		t.Fatalf("tripwire fraction %.2f too low for decoy pairs", frac)
	}
}

func TestSubstitutionAttackStillPossible(t *testing.T) {
	// §5.3: substitution among same-key ciphertexts is a documented
	// limitation of return-address encryption — the reproduction must
	// confirm it works.
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 96})
	r := Substitution(target)
	if !r.Success {
		t.Fatalf("substitution attack should remain possible: %v", r)
	}
}

func TestHijackWholeFunctionResidualChannel(t *testing.T) {
	// §7.3: kR^X restricts attackers to data-only function-pointer attacks
	// (same or lower arity). With *host-side* knowledge of the target
	// address, the hijack itself still works under full kR^X — the
	// defense denies address discovery, not indirect calls.
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 97})
	a := &Attacker{K: target}
	a.Hijack(target.Sym("do_set_uid"), 0)
	if a.UID() != 0 {
		t.Fatal("arity-matched whole-function reuse should remain possible (documented residual)")
	}
}

func TestLeakPrimitiveScopedToData(t *testing.T) {
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 98})
	a := &Attacker{K: target}
	if _, ok := a.Leak(target.Sym("cred")); !ok {
		t.Fatal("data leak must work")
	}
	if _, ok := a.Leak(target.Sym("_text") + 32); ok {
		t.Fatal("code leak must be blocked")
	}
}

func TestJITROPBlindedByHideM(t *testing.T) {
	// Under the HideM baseline the code harvest "succeeds" but returns
	// only the zero shadow, so the gadget search comes up empty.
	target := boot(t, core.Config{XOM: core.XOMHideM, Diversify: true, Seed: 83})
	r := JITROP(target)
	if r.Success {
		t.Fatalf("JIT-ROP must be blinded by HideM: %v", r)
	}
	if r.Stage != "gadget-search" {
		t.Fatalf("HideM failure mode is an empty harvest (gadget-search), got %s", r.Stage)
	}
}

func TestJOPHijackResidual(t *testing.T) {
	// JOP flavour of the residual whole-function-reuse channel: corrupt
	// the jmp-dispatched slot (dev_ops[1]) with a host-known address.
	target := boot(t, core.Config{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 85})
	a := &Attacker{K: target}
	target.Syscall(kernel.SysPlant, 1, target.Sym("do_set_uid"))
	target.Syscall(kernel.SysTriggerJmp, 0)
	if a.UID() != 0 {
		t.Fatal("JOP-style whole-function reuse should remain possible given an address")
	}
}
