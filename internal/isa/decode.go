package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decoding errors.
var (
	// ErrTruncated indicates the byte stream ended mid-instruction.
	ErrTruncated = errors.New("isa: truncated instruction")
	// ErrBadOpcode indicates an undefined opcode byte.
	ErrBadOpcode = errors.New("isa: undefined opcode")
	// ErrBadEncoding indicates malformed operand bytes.
	ErrBadEncoding = errors.New("isa: malformed operand encoding")
)

func decodeMem(b []byte) (MemRef, uint8, error) {
	if len(b) < memRefBytes {
		return MemRef{}, 0, ErrTruncated
	}
	mode := b[0]
	if mode&0xC8 != 0 {
		return MemRef{}, 0, fmt.Errorf("%w: mem mode byte 0x%02x", ErrBadEncoding, mode)
	}
	m := MemRef{Base: NoReg, Index: NoReg, Scale: b[3], Disp: int32(binary.LittleEndian.Uint32(b[4:8]))}
	if mode&1 != 0 {
		if b[1] >= NumGPR {
			return MemRef{}, 0, fmt.Errorf("%w: base register %d", ErrBadEncoding, b[1])
		}
		m.Base = Reg(b[1])
	} else if b[1] != 0xFF {
		return MemRef{}, 0, fmt.Errorf("%w: absent base encoded as %d", ErrBadEncoding, b[1])
	}
	if mode&2 != 0 {
		if b[2] >= NumGPR {
			return MemRef{}, 0, fmt.Errorf("%w: index register %d", ErrBadEncoding, b[2])
		}
		m.Index = Reg(b[2])
	} else if b[2] != 0xFF {
		return MemRef{}, 0, fmt.Errorf("%w: absent index encoded as %d", ErrBadEncoding, b[2])
	}
	if mode&4 != 0 {
		if m.HasBase() || m.HasIndex() {
			return MemRef{}, 0, fmt.Errorf("%w: rip-relative with base/index", ErrBadEncoding)
		}
		m.RIPRel = true
	}
	switch m.Scale {
	case 1, 2, 4, 8:
	default:
		return MemRef{}, 0, fmt.Errorf("%w: scale %d", ErrBadEncoding, m.Scale)
	}
	size := uint8(1) << ((mode >> 4) & 3)
	return m, size, nil
}

// Decode decodes the instruction at the start of b. It returns the decoded
// instruction and its length in bytes. Decoding is possible from any byte
// offset (instructions are self-delimiting once the opcode byte is read),
// which is what makes unaligned gadget discovery — and the overlapping
// tripwires of the decoy scheme — possible.
func Decode(b []byte) (Instr, int, error) {
	if len(b) == 0 {
		return Instr{}, 0, ErrTruncated
	}
	op := Opcode(b[0])
	if !op.Valid() {
		return Instr{}, 0, fmt.Errorf("%w: 0x%02x", ErrBadOpcode, b[0])
	}
	in := Instr{Op: op}
	n := formatLength(op.Format())
	if len(b) < n {
		return Instr{}, 0, ErrTruncated
	}
	body := b[1:n]
	switch op.Format() {
	case fmtNone:
	case fmtReg:
		if body[0] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: register %d", ErrBadEncoding, body[0])
		}
		in.Dst = Reg(body[0])
	case fmtRegImm64:
		if body[0] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: register %d", ErrBadEncoding, body[0])
		}
		in.Dst = Reg(body[0])
		in.Imm = int64(binary.LittleEndian.Uint64(body[1:9]))
	case fmtRegImm32:
		if body[0] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: register %d", ErrBadEncoding, body[0])
		}
		in.Dst = Reg(body[0])
		in.Imm = int64(int32(binary.LittleEndian.Uint32(body[1:5])))
	case fmtRegImm8:
		if body[0] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: register %d", ErrBadEncoding, body[0])
		}
		in.Dst = Reg(body[0])
		in.Imm = int64(body[1])
	case fmtRegReg:
		if body[0] >= NumGPR || body[1] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: registers %d,%d", ErrBadEncoding, body[0], body[1])
		}
		in.Dst, in.Src = Reg(body[0]), Reg(body[1])
	case fmtRegMem:
		if body[0] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: register %d", ErrBadEncoding, body[0])
		}
		in.Dst = Reg(body[0])
		m, size, err := decodeMem(body[1:])
		if err != nil {
			return Instr{}, 0, err
		}
		in.M, in.Size = m, size
	case fmtMemReg:
		m, size, err := decodeMem(body)
		if err != nil {
			return Instr{}, 0, err
		}
		if body[memRefBytes] >= NumGPR {
			return Instr{}, 0, fmt.Errorf("%w: register %d", ErrBadEncoding, body[memRefBytes])
		}
		in.M, in.Size, in.Dst = m, size, Reg(body[memRefBytes])
	case fmtMemImm32:
		m, size, err := decodeMem(body)
		if err != nil {
			return Instr{}, 0, err
		}
		in.M, in.Size = m, size
		in.Imm = int64(int32(binary.LittleEndian.Uint32(body[memRefBytes : memRefBytes+4])))
	case fmtMem:
		m, size, err := decodeMem(body)
		if err != nil {
			return Instr{}, 0, err
		}
		in.M, in.Size = m, size
	case fmtRel32:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(body[0:4])))
	case fmtCondRel32:
		if body[0] >= NumCond {
			return Instr{}, 0, fmt.Errorf("%w: condition %d", ErrBadEncoding, body[0])
		}
		in.CC = Cond(body[0])
		in.Imm = int64(int32(binary.LittleEndian.Uint32(body[1:5])))
	case fmtImm16:
		in.Imm = int64(binary.LittleEndian.Uint16(body[0:2]))
	case fmtString:
		if body[0]&^0x0D != 0 {
			return Instr{}, 0, fmt.Errorf("%w: string flags 0x%02x", ErrBadEncoding, body[0])
		}
		in.SF = StrFlags(body[0])
	case fmtBndMem:
		if body[0] >= NumBnd {
			return Instr{}, 0, fmt.Errorf("%w: bound register %d", ErrBadEncoding, body[0])
		}
		in.Bnd = BndReg(body[0])
		m, size, err := decodeMem(body[1:])
		if err != nil {
			return Instr{}, 0, err
		}
		in.M, in.Size = m, size
	}
	return in, n, nil
}

// DisasmLine is one disassembled instruction with its address.
type DisasmLine struct {
	Addr  uint64
	Bytes []byte
	Instr Instr
	Err   error // non-nil if the bytes do not decode
}

// Disassemble linearly decodes code starting at addr, skipping one byte on
// decode failure (recording the failure), until the buffer is exhausted.
func Disassemble(code []byte, addr uint64) []DisasmLine {
	var out []DisasmLine
	off := 0
	for off < len(code) {
		in, n, err := Decode(code[off:])
		if err != nil {
			out = append(out, DisasmLine{Addr: addr + uint64(off), Bytes: code[off : off+1], Err: err})
			off++
			continue
		}
		out = append(out, DisasmLine{Addr: addr + uint64(off), Bytes: code[off : off+n], Instr: in})
		off += n
	}
	return out
}
