// Copy-on-write forking of address spaces.
//
// Freeze marks every frame reachable from the page table, the shadow map,
// and the armed checkpoint as frozen — immutable forever. Fork then clones
// the page table itself (one maps.Clone) into a child space that shares
// every frozen frame with its parent. Any write, in parent or child, breaks
// the sharing for that frame first: breakCoW copies the frame, repoints
// every synonym mapping of the *writing* space at the copy, and leaves the
// frozen original — and therefore every other member of the fork family —
// untouched.
//
// Why consumers' warm caches survive forking: the CPU's decode cache and
// superblock chains validate cached views against frame identity plus
// Frame.Gen, and cached translations against MapGen. A frozen frame's gen
// never changes, so decode-cache pages cloned into a forked CPU stay valid
// indefinitely; a CoW break substitutes a NEW frame (fresh identity, higher
// gen) behind a MapGen bump whenever an executable mapping moves, which the
// existing validation catches exactly like a text_poke remap. No new
// invalidation protocol is needed — immutability plus the generation
// machinery already on hand do all the work.

package mem

import (
	"fmt"
	"maps"
	"sort"
)

// CowStats reports copy-on-write frame sharing for one address space.
type CowStats struct {
	// SharedFrames is the number of distinct frames this space may still
	// share with its fork family: the count frozen at the last Freeze scan,
	// minus the ones this space has privatized since.
	SharedFrames uint64
	// Breaks counts the CoW breaks this space performed.
	Breaks uint64
	// PrivateFrames is the number of private frame copies this space
	// allocated — equal to Breaks (a break privatizes exactly one frame),
	// kept separate because the two answer different capacity questions.
	PrivateFrames uint64
}

// CowStats returns a snapshot of the space's copy-on-write counters.
func (as *AddressSpace) CowStats() CowStats {
	s := CowStats{Breaks: as.cowBreaks, PrivateFrames: as.cowBreaks}
	if as.frozenFrames > as.cowBreaks {
		s.SharedFrames = as.frozenFrames - as.cowBreaks
	}
	return s
}

// Freeze marks every frame reachable from the page table, the data-shadow
// map, and the armed checkpoint as frozen, and records the synonym sets of
// multi-mapped frames so a later CoW break can repoint them together. It is
// the preparation step of Fork and is idempotent; frames only ever go
// unfrozen→frozen, never back.
//
// Freezing with dirtied frames in the undo log is an error: Rollback would
// later restore their pre-images in place, mutating frames that forks might
// share by then. Roll back (or checkpoint afresh) first.
func (as *AddressSpace) Freeze() error {
	if len(as.undo) > 0 {
		return fmt.Errorf("mem: freeze with %d dirty frames in the undo log (rollback first)", len(as.undo))
	}
	collect := make(map[*Frame][]uint64, len(as.pages))
	for v, pg := range as.pages {
		collect[pg.frame] = append(collect[pg.frame], v)
	}
	as.frozenFrames = uint64(len(collect))
	// Checkpoint-time mappings matter too: a structural Rollback can remap a
	// frame at synonyms the current page table no longer shows, and a break
	// after that must know to repoint them as well.
	for v, pg := range as.snapPages {
		if cur, ok := as.pages[v]; !ok || cur.frame != pg.frame {
			collect[pg.frame] = append(collect[pg.frame], v)
		}
	}
	if as.aliases == nil {
		as.aliases = make(map[*Frame][]uint64)
	}
	for f, vs := range collect {
		// Write the frozen bit only when it flips: re-freezing a family's
		// long-shared frames must not issue writes that would race with
		// sibling forks concurrently reading them.
		if !f.frozen {
			f.frozen = true
		}
		if len(vs) > 1 {
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			as.aliases[f] = vs
		}
	}
	for _, sh := range as.shadow {
		if !sh.frozen {
			sh.frozen = true
		}
	}
	for _, sh := range as.snapShadow {
		if !sh.frozen {
			sh.frozen = true
		}
	}
	as.frozenClean = true
	return nil
}

// Fork returns a copy-on-write child of the address space: a structural
// clone of the page table (and shadow map) sharing every frame with the
// parent. The child inherits the parent's mapGen — cached translations
// cloned alongside (a forked CPU's decode cache) remain valid — but not its
// checkpoint state: the child arms its own with Checkpoint.
//
// Fork freezes the space first if anything unfrozen is reachable (the first
// fork always pays this scan; consecutive forks of an untouched parent are
// a handful of map clones). Forking with a dirty undo log is an error, for
// the reason Freeze documents.
func (as *AddressSpace) Fork() (*AddressSpace, error) {
	if !as.frozenClean {
		if err := as.Freeze(); err != nil {
			return nil, fmt.Errorf("mem: fork: %w", err)
		}
	}
	return &AddressSpace{
		pages:        maps.Clone(as.pages),
		EPT:          as.EPT,
		shadow:       maps.Clone(as.shadow),
		mapGen:       as.mapGen,
		aliases:      maps.Clone(as.aliases),
		frozenFrames: as.frozenFrames,
		frozenClean:  true,
	}, nil
}

// breakCoW privatizes the frozen frame mapped at virtual page number v: it
// allocates a private copy and repoints every mapping of that frame in THIS
// space — v's synonyms included — at the copy, leaving the frozen original
// (shared with the rest of the fork family) untouched. The copy's content
// generation starts above the original's, so any cached derived view of the
// old bytes fails its generation compare. mapGen is bumped only when an
// executable mapping moved: data-only breaks stay invisible to the decode
// cache and block engine, whose views cover executable pages only.
//
// Armed checkpoints are rewritten alongside: a snapPages entry holding the
// frozen frame switches to the private copy, which holds byte-identical
// contents (Freeze and Fork require a clean undo log, so a frozen frame
// always still carries its checkpoint-time bytes). Rollback then restores
// the private copy's pre-image from the undo log exactly as if the space
// had never been forked.
//
// Returns the private frame, now mapped at v.
func (as *AddressSpace) breakCoW(v uint64) *Frame {
	f := as.pages[v].frame
	pf := new(Frame)
	pf.Data = f.Data
	pf.gen = f.gen + 1
	var one [1]uint64
	vs := as.aliases[f]
	if vs == nil {
		one[0] = v
		vs = one[:]
	}
	bumpMap := false
	for _, av := range vs {
		if apg, ok := as.pages[av]; ok && apg.frame == f {
			as.pages[av] = &page{frame: pf, perm: apg.perm}
			if apg.perm&PermX != 0 {
				bumpMap = true
			}
			// Data-only breaks do not bump mapGen, so the data TLB cannot
			// self-invalidate; shoot the affected slots down directly.
			if sl := &as.dtlb[av&(dtlbSize-1)]; sl.pg != nil && sl.vpn == av {
				*sl = dtlbEntry{}
			}
		}
		// Rewrite the checkpoint even where the current table no longer maps
		// f (or never did): a structural Rollback rebuilds from snapPages,
		// and checkpoint-time synonyms must come back aliasing ONE frame.
		if s, ok := as.snapPages[av]; ok && s.frame == f {
			as.snapPages[av] = &page{frame: pf, perm: s.perm}
		}
	}
	if bumpMap {
		as.mapGen++
	}
	as.cowBreaks++
	as.frozenClean = false
	return pf
}

// registerFrozenAliases refreshes the alias lists of the frozen frames just
// (re)mapped by MapFrames: a frozen frame gaining a new synonym (text_poke
// scratch mappings, the module loader re-aliasing pool frames) must have its
// full mapping set on record, or a later CoW break would repoint only part
// of it. Lists are rebuilt into fresh slices — never extended in place,
// because forks share the backing arrays of cloned alias maps.
func (as *AddressSpace) registerFrozenAliases(frames []*Frame) {
	if as.aliases == nil {
		as.aliases = make(map[*Frame][]uint64)
	}
	set := make(map[*Frame]map[uint64]bool, len(frames))
	for _, f := range frames {
		if f.frozen && set[f] == nil {
			set[f] = make(map[uint64]bool)
		}
	}
	add := func(f *Frame, v uint64) {
		if m, ok := set[f]; ok {
			m[v] = true
		}
	}
	for v, pg := range as.pages {
		add(pg.frame, v)
	}
	for v, pg := range as.snapPages {
		add(pg.frame, v)
	}
	for f, m := range set {
		for _, v := range as.aliases[f] {
			m[v] = true
		}
		vs := make([]uint64, 0, len(m))
		for v := range m {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		as.aliases[f] = vs
	}
}
