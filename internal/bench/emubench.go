// Emulator host-performance benchmarks: unlike every other measurement in
// this package (which reports emulated cycles — numbers the acceleration
// layers are forbidden to change), these measure host wall-clock of the
// emulator itself in four modes: compiled superblocks + decode cache (the
// default), interpreted superblocks + decode cache, decode cache only, and
// neither. Each workload runs all four ways and the harness asserts the
// emulated cycle totals are identical — the bit-identical-semantics
// invariant — before reporting the speedups.

package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/kernel"
)

// EmuResult is one workload measured in four modes: compiled blocks +
// decode cache, interpreted blocks + decode cache, decode cache only, and
// neither. Cycles is the emulated total over the timed iterations; it is
// asserted equal across all modes, so a single field suffices. Speedup
// compares the decode cache against raw interpretation (cache_off /
// cache_on, the PR 3 metric); BlockSpeedup compares interpreted block
// dispatch against the decode-cache-only path (cache_on / blocks_on, the
// PR 7 metric); CompiledSpeedup compares compiled thunk dispatch against
// interpreted block dispatch (blocks_on / compiled, this PR's metric).
type EmuResult struct {
	Name            string  `json:"name"`
	Iters           int     `json:"iters"`
	Reps            int     `json:"reps"`
	HostNsCompiled  int64   `json:"host_ns_per_op_compiled"`
	HostNsBlocks    int64   `json:"host_ns_per_op_blocks_on"`
	HostNsOn        int64   `json:"host_ns_per_op_cache_on"`
	HostNsOff       int64   `json:"host_ns_per_op_cache_off"`
	Speedup         float64 `json:"speedup"`
	BlockSpeedup    float64 `json:"block_speedup"`
	CompiledSpeedup float64 `json:"compiled_speedup"`
	Cycles          uint64  `json:"emulated_cycles"`
}

// EmuSchemaVersion identifies the JSON layout of EmuReport. Bump it on any
// field change so downstream consumers can detect the format.
// v3: added host_ns_per_op_blocks_on and block_speedup (superblock engine).
// v4: added reps; per-mode times are now min-of-reps, not a single-sample
// mean — a mean folds GC pauses and scheduler noise into the baseline,
// which is how v3 recorded physically impossible sub-1.0 speedups on
// noise-dominated rows.
// v5: added fork rows (ForkResult): copy-on-write kernel fork cost vs cold
// boot, and fuzz-iteration cost in a forked vs booted worker.
// v6: added store rows (StoreResult): cold-link boot cost vs a boot served
// from the persistent artifact store by a fresh ImageCache.
// v7: added host_ns_per_op_compiled and compiled_speedup (block compiler:
// per-opcode thunk specialization with flag-dead fusion); the blocks_on
// mode now measures interpreted block dispatch (SetBlockCompile(false)).
const EmuSchemaVersion = 7

// emuReps is the number of repetitions per mode; the reported time is the
// minimum over them (the min estimates the noise-free cost; means are
// biased up by arbitrary amounts of host interference). Five repetitions,
// up from three: the compiled-vs-interpreted gate compares two fast modes
// whose difference is a fraction of the scheduler noise on a shared host,
// and min-of-3 left the ratio swinging across the 1.15 floor run to run.
const emuReps = 5

// ForkResult is one configuration's fork-mode measurement: what a kernel
// fork costs next to a cold boot, and what a fuzz iteration costs inside a
// forked worker next to a booted one. Cycles is the emulated total over the
// timed iterations, asserted identical between the fork-mode and boot-mode
// windows (the determinism invariant — a fork may only change host time).
type ForkResult struct {
	Name         string  `json:"name"`
	Reps         int     `json:"reps"`
	BootNs       int64   `json:"host_ns_per_boot"`
	ForkNs       int64   `json:"host_ns_per_fork"`
	ForksPerSec  float64 `json:"forks_per_sec"`
	BootOverFork float64 `json:"boot_over_fork"`
	IterNsFork   int64   `json:"host_ns_per_fork_iteration"`
	IterNsBoot   int64   `json:"host_ns_per_boot_iteration"`
	Cycles       uint64  `json:"emulated_cycles"`
}

// EmuReport is the machine-readable emulator benchmark baseline
// (BENCH_emulator.json).
type EmuReport struct {
	Schema        string        `json:"schema"`
	SchemaVersion int           `json:"schema_version"`
	GoOS          string        `json:"goos"`
	GoArch        string        `json:"goarch"`
	Results       []EmuResult   `json:"results"`
	Fork          []ForkResult  `json:"fork"`
	Store         []StoreResult `json:"store"`
}

// JSON renders the report for the BENCH_emulator.json trajectory file.
func (r *EmuReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// emuWorkload builds a closure that executes one unit of emulated work and
// returns its cycle cost. make is called once per mode per repetition, so
// each measurement gets a fresh kernel and an identical iteration sequence.
// warm is how many untimed ops precede the timed window (0 = 1): one op
// populates the decode cache, but workloads whose op is much smaller than
// the Table 1 suite (a single fuzz iteration) need several to reach the
// block engine's steady state — the hotness gate defers formation until an
// entry point has been dispatched BlockHotThreshold times, and a campaign's
// per-iteration cost is the steady-state number, not the ramp.
// mult scales the timed iteration count (0 = 1), for the same reason from
// the other side: a fuzz iteration is tens of microseconds, so the default
// iteration count would time a sub-millisecond window — below the host's
// scheduling noise floor, where even a min-of-reps ratio is a coin flip.
// The reported per-op time still divides by the scaled count.
type emuWorkload struct {
	name string
	warm int
	mult int
	make func(cacheOn, blocksOn, compileOn bool) (func() (uint64, error), error)
}

// RunTable1Suite executes every Table 1 micro-op once against k and returns
// the total emulated cycles (the per-op suite BenchmarkTable1 sweeps; also
// the workload krxbench traces and profiles).
func RunTable1Suite(k *kernel.Kernel) (uint64, error) {
	var total uint64
	for _, op := range MicroOps() {
		for fd := uint64(0); fd < 64; fd++ {
			k.Syscall(kernel.SysClose, fd)
		}
		if op.Setup != nil {
			if err := op.Setup(k); err != nil {
				return 0, fmt.Errorf("%s: %w", op.Name, err)
			}
		}
		c, err := op.Run(k)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", op.Name, err)
		}
		total += c
	}
	return total, nil
}

func table1Workload(cfg core.Config) emuWorkload {
	return emuWorkload{
		name: "table1-suite/" + cfg.Name(),
		// Three warmup passes, not one: block formation waits out the
		// hotness gate (BlockHotThreshold dispatches per entry point) and
		// compilation waits out the lazy-lowering gate on top of that
		// (blockCompileHot executions per block), so a single pass would
		// leave formation and thunk-lowering work inside the timed window —
		// ramp cost, not the steady state every mode is supposed to report.
		warm: 3,
		make: func(cacheOn, blocksOn, compileOn bool) (func() (uint64, error), error) {
			k, err := kernel.Boot(cfg, kernel.WithCache())
			if err != nil {
				return nil, err
			}
			k.CPU.SetDecodeCache(cacheOn)
			k.CPU.SetBlockEngine(blocksOn)
			k.CPU.SetBlockCompile(compileOn)
			return func() (uint64, error) { return RunTable1Suite(k) }, nil
		},
	}
}

func fuzzWorkload(cfg core.Config, seed int64) emuWorkload {
	return emuWorkload{
		name: "fuzz-iteration/" + cfg.Name(),
		// A fuzz iteration is a few orders of magnitude smaller than the
		// Table 1 suite, so one warmup op leaves the hotness gate mid-ramp
		// (formation cost inside the timed window, payoff outside it);
		// enough warmup iterations put the timed window in steady state —
		// the regime a real campaign (thousands of iterations) runs in.
		// The multiplier keeps the timed window in the milliseconds for the
		// same reason (see emuWorkload.mult).
		warm: 8,
		mult: 10,
		make: func(cacheOn, blocksOn, compileOn bool) (func() (uint64, error), error) {
			// NoCoverage: a campaign's coverage probe would disarm the block
			// fast path (probes need per-instruction callbacks), turning the
			// blocks-on and cache-only modes into the same code path and the
			// reported block_speedup into pure timer noise. Probe-free, the
			// row measures what the iteration loop itself can reach.
			f, err := fuzz.New(fuzz.Options{Iters: 1, Seed: seed, Config: cfg, Workers: 1, NoCoverage: true})
			if err != nil {
				return nil, err
			}
			k, err := f.Kernel()
			if err != nil {
				return nil, err
			}
			k.CPU.SetDecodeCache(cacheOn)
			k.CPU.SetBlockEngine(blocksOn)
			k.CPU.SetBlockCompile(compileOn)
			// The iteration counter restarts per mode, so both modes execute
			// the identical (seed, i)-derived program sequence.
			i := 0
			return func() (uint64, error) {
				c, err := f.ExecIteration(i)
				i++
				return c, err
			}, nil
		},
	}
}

// measureEmu times one workload in all three modes and enforces the
// bit-identical-cycles invariant across every pair. Each mode is measured
// emuReps times — each repetition rebuilding the workload from scratch, so
// every rep times the identical iteration sequence — and the reported
// per-op time is the minimum over repetitions (the min-of-N convention the
// KRX_PERF_GATE tests use): the min converges on the noise-free cost,
// where a single-sample mean folds whatever GC pauses and scheduler
// preemptions happened to land in the timed window into the baseline.
func measureEmu(w emuWorkload, iters int) (EmuResult, error) {
	iters *= max(w.mult, 1)
	res := EmuResult{Name: w.name, Iters: iters, Reps: emuReps}
	modes := []struct {
		name                         string
		cacheOn, blocksOn, compileOn bool
	}{
		{"compiled", true, true, true},
		{"blocks+cache", true, true, false},
		{"cache-only", true, false, false},
		{"uncached", false, false, false},
	}
	var cycles [4]uint64
	var host [4]time.Duration
	for m, mode := range modes {
		for rep := 0; rep < emuReps; rep++ {
			run, err := w.make(mode.cacheOn, mode.blocksOn, mode.compileOn)
			if err != nil {
				return res, fmt.Errorf("bench: %s: %w", w.name, err)
			}
			for wi := 0; wi < max(w.warm, 1); wi++ { // warmup (populates the caches)
				if _, err := run(); err != nil {
					return res, fmt.Errorf("bench: %s: %w", w.name, err)
				}
			}
			var c uint64
			start := time.Now()
			for n := 0; n < iters; n++ {
				cc, err := run()
				if err != nil {
					return res, fmt.Errorf("bench: %s: %w", w.name, err)
				}
				c += cc
			}
			d := time.Since(start)
			if rep == 0 {
				cycles[m], host[m] = c, d
				continue
			}
			if c != cycles[m] {
				return res, fmt.Errorf("bench: %s: %s: emulated cycles diverge across reps: %d vs %d",
					w.name, mode.name, cycles[m], c)
			}
			if d < host[m] {
				host[m] = d
			}
		}
	}
	for m := 1; m < len(modes); m++ {
		if cycles[m] != cycles[0] {
			return res, fmt.Errorf("bench: %s: emulated cycles diverge: %s %d vs %s %d",
				w.name, modes[0].name, cycles[0], modes[m].name, cycles[m])
		}
	}
	res.Cycles = cycles[0]
	res.HostNsCompiled = host[0].Nanoseconds() / int64(iters)
	res.HostNsBlocks = host[1].Nanoseconds() / int64(iters)
	res.HostNsOn = host[2].Nanoseconds() / int64(iters)
	res.HostNsOff = host[3].Nanoseconds() / int64(iters)
	if res.HostNsOn > 0 {
		res.Speedup = float64(res.HostNsOff) / float64(res.HostNsOn)
	}
	if res.HostNsBlocks > 0 {
		res.BlockSpeedup = float64(res.HostNsOn) / float64(res.HostNsBlocks)
	}
	if res.HostNsCompiled > 0 {
		res.CompiledSpeedup = float64(res.HostNsBlocks) / float64(res.HostNsCompiled)
	}
	return res, nil
}

// forkBatch is how many forks one timed repetition performs: a single fork
// is sub-millisecond, so the per-fork time comes from a batch window, like
// emuWorkload.mult keeps the iteration windows above the noise floor.
const forkBatch = 64

// measureFork times what snapshot-fork execution buys under one
// configuration: the cost of a cold executor boot (build served from the
// warm cache) against the cost of a copy-on-write fork of a golden
// executor, and the steady-state cost of a fuzz iteration inside a forked
// worker against one inside a booted worker. All timings are min-of-emuReps;
// the iteration windows additionally enforce the determinism invariant —
// identical emulated cycles in fork mode and boot mode, every repetition.
func measureFork(cfg core.Config, seed int64, iters int) (ForkResult, error) {
	res := ForkResult{Name: "fork/" + cfg.Name(), Reps: emuReps}
	opts := fuzz.Options{Iters: 1, Seed: seed, Config: cfg, Workers: 1, NoCoverage: true}
	// The golden executor doubles as the build-cache warmer: every boot
	// timed below compiles nothing, so the boot number is kernel
	// construction, not toolchain work.
	golden, err := fuzz.NewExecutor(opts)
	if err != nil {
		return res, fmt.Errorf("bench: %s: golden: %w", res.Name, err)
	}
	var boot, fork time.Duration
	for rep := 0; rep < emuReps; rep++ {
		start := time.Now()
		if _, err := fuzz.NewExecutor(opts); err != nil {
			return res, fmt.Errorf("bench: %s: boot: %w", res.Name, err)
		}
		if d := time.Since(start); rep == 0 || d < boot {
			boot = d
		}
	}
	for rep := 0; rep < emuReps; rep++ {
		start := time.Now()
		for i := 0; i < forkBatch; i++ {
			if _, err := golden.Fork(); err != nil {
				return res, fmt.Errorf("bench: %s: fork: %w", res.Name, err)
			}
		}
		if d := time.Since(start) / forkBatch; rep == 0 || d < fork {
			fork = d
		}
	}
	res.BootNs = boot.Nanoseconds()
	res.ForkNs = fork.Nanoseconds()
	if res.ForkNs > 0 {
		res.ForksPerSec = 1e9 / float64(res.ForkNs)
		res.BootOverFork = float64(res.BootNs) / float64(res.ForkNs)
	}

	// Iteration cost, fork-mode vs boot-mode. The warmup runs the full
	// iteration window once, not a fixed prefix: each iteration's program
	// touches its own set of pages, so a short warmup would leave
	// first-touch CoW breaks inside the timed window — a one-time ramp cost
	// a real campaign amortizes over thousands of iterations, not the
	// steady state this row reports. (A full-window warmup also covers the
	// fuzzWorkload rationale: the block engine's hotness gate is past its
	// ramp by the time timing starts.)
	iters *= 10
	var host [2]time.Duration
	var cycles [2]uint64
	for m, forked := range [2]bool{true, false} {
		for rep := 0; rep < emuReps; rep++ {
			var ex *fuzz.Executor
			var err error
			if forked {
				ex, err = golden.Fork()
			} else {
				ex, err = fuzz.NewExecutor(opts)
			}
			if err != nil {
				return res, fmt.Errorf("bench: %s: %w", res.Name, err)
			}
			k := ex.Kernel()
			base := k.CPU.Cycles
			run := func(i int) error {
				prog := fuzz.PickProg(seed, i, nil, ex.Kaddrs())
				_, err := ex.Exec(prog, fuzz.InjSeed(seed, i))
				return err
			}
			for wi := 0; wi < iters; wi++ {
				if err := run(wi); err != nil {
					return res, fmt.Errorf("bench: %s: warmup: %w", res.Name, err)
				}
			}
			var c uint64
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := run(i); err != nil {
					return res, fmt.Errorf("bench: %s: %w", res.Name, err)
				}
				c += k.CPU.Cycles - base
			}
			d := time.Since(start)
			if rep == 0 {
				cycles[m], host[m] = c, d
				continue
			}
			if c != cycles[m] {
				return res, fmt.Errorf("bench: %s: emulated cycles diverge across reps: %d vs %d",
					res.Name, cycles[m], c)
			}
			if d < host[m] {
				host[m] = d
			}
		}
	}
	if cycles[0] != cycles[1] {
		return res, fmt.Errorf("bench: %s: fork-mode cycles %d != boot-mode cycles %d — fork changed semantics",
			res.Name, cycles[0], cycles[1])
	}
	res.Cycles = cycles[0]
	res.IterNsFork = host[0].Nanoseconds() / int64(iters)
	res.IterNsBoot = host[1].Nanoseconds() / int64(iters)
	return res, nil
}

// EmuBench measures the emulator's host performance with the decode cache
// on and off: the Table 1 micro-op suite under vanilla and a fully
// protected column, a fuzzing iteration (restore + program execution), the
// fork rows (copy-on-write worker startup and steady state), and the store
// rows (cold-link boot vs a boot served from the persistent artifact store).
func EmuBench(iters int) (*EmuReport, error) {
	if iters <= 0 {
		iters = 20
	}
	presets := core.Presets()
	full := presets[len(presets)-1] // the most protected preset column
	workloads := []emuWorkload{
		table1Workload(core.Vanilla),
		table1Workload(full),
		fuzzWorkload(core.Vanilla, 42),
		fuzzWorkload(full, 42),
	}
	rep := &EmuReport{
		Schema:        "krx-emubench",
		SchemaVersion: EmuSchemaVersion,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
	}
	for _, w := range workloads {
		r, err := measureEmu(w, iters)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	for _, cfg := range []core.Config{core.Vanilla, full} {
		fr, err := measureFork(cfg, 42, iters)
		if err != nil {
			return nil, err
		}
		rep.Fork = append(rep.Fork, fr)
	}
	for _, cfg := range []core.Config{core.Vanilla, full} {
		sr, err := measureStore(cfg)
		if err != nil {
			return nil, err
		}
		rep.Store = append(rep.Store, sr)
	}
	return rep, nil
}

// DecodeCacheReport formats a kernel CPU's decode-cache statistics — the
// observability line krxstats prints after the invariant audit.
func DecodeCacheReport(k *kernel.Kernel) string {
	if !k.CPU.DecodeCacheEnabled() {
		return "decode-cache: disabled"
	}
	s := k.CPU.DecodeCacheStats()
	return fmt.Sprintf(
		"decode-cache: pages=%d entries=%d hits=%d misses=%d decoded=%d invalidations=%d remaps=%d",
		s.Pages, s.Entries, s.Hits, s.Misses, s.Decoded, s.Invalidations, s.Remaps)
}

// BlockEngineReport formats a kernel CPU's superblock-engine statistics —
// the companion line to DecodeCacheReport in krxstats -audit.
func BlockEngineReport(k *kernel.Kernel) string {
	if !k.CPU.BlockEngineEnabled() {
		return "block-engine: disabled"
	}
	s := k.CPU.BlockStats()
	return fmt.Sprintf(
		"block-engine: blocks=%d formed=%d compiled=%d fused=%d dispatches=%d instrs=%d aborts=%d chained=%d severed=%d cold=%d",
		s.Blocks, s.Formed, s.Compiled, s.Fused, s.Dispatches, s.Instrs, s.Aborts, s.Chained, s.Severed, s.Cold)
}

// DataTLBReport formats the kernel address space's data-TLB counters.
func DataTLBReport(k *kernel.Kernel) string {
	s := k.CPU.AS.DataTLBStats()
	return fmt.Sprintf("data-tlb: hits=%d misses=%d", s.Hits, s.Misses)
}
