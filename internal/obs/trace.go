package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cpu"
)

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvTrap         EventKind = iota // exception delivered by the CPU
	EvSyscallEnter                  // kernel.Syscall round trip begins
	EvSyscallExit                   // kernel.Syscall round trip ends
	EvSnapshot                      // kernel.Snapshot taken
	EvRestore                       // kernel.Restore rewound the machine
	EvFault                         // injected fault (internal/inject)

	// Service-plane events emitted by the fuzzd manager. They ride a
	// separate, host-clocked tracer — never the deterministic iteration
	// stream — because which worker holds which lease is scheduling noise.
	EvLease       // lease granted to a worker
	EvLeaseExpire // lease deadline passed; batch reclaimed
	EvWorkerDeath // worker panic contained (or executor broke)
	EvRespawn     // replacement worker spawned
	EvDeadLetter  // batch exhausted its retries; quarantined to the manager
)

func (k EventKind) String() string {
	switch k {
	case EvTrap:
		return "trap"
	case EvSyscallEnter:
		return "syscall-enter"
	case EvSyscallExit:
		return "syscall-exit"
	case EvSnapshot:
		return "snapshot"
	case EvRestore:
		return "restore"
	case EvFault:
		return "fault"
	case EvLease:
		return "lease"
	case EvLeaseExpire:
		return "lease-expire"
	case EvWorkerDeath:
		return "worker-death"
	case EvRespawn:
		return "respawn"
	case EvDeadLetter:
		return "dead-letter"
	}
	return "?"
}

// Event is one trace record. Timestamps are emulated, not host: the CPU's
// cumulative instruction and cycle counters at emission. Two runs of the
// same workload therefore produce identical event streams — the property
// the replay-comparison and worker-count-invariance tests assert.
type Event struct {
	Seq    uint64 // per-tracer emission index (rewritten on merge)
	Instrs uint64 // CPU.Instrs at emission
	Cycles uint64 // CPU.Cycles at emission
	Kind   EventKind
	Name   string // trap kind, syscall name, fault class
	Addr   uint64 // faulting/affected address (0 when not applicable)
	Arg    uint64 // kind-specific payload (syscall nr, return value, ...)
}

func (e Event) String() string {
	return fmt.Sprintf("#%d i=%d c=%d %s %s addr=%#x arg=%#x",
		e.Seq, e.Instrs, e.Cycles, e.Kind, e.Name, e.Addr, e.Arg)
}

// DefaultTraceCap is the ring capacity when NewTracer is given none.
const DefaultTraceCap = 4096

// Tracer is a bounded ring-buffer event recorder. When the ring is full the
// oldest event is overwritten and Dropped is incremented — tracing is
// observability, never backpressure. It implements cpu.TrapProbe, so
// cpu.AddTrapProbe(t) (which Attach does) captures every delivered
// exception without paying a per-instruction callback.
type Tracer struct {
	c       *cpu.CPU
	buf     []Event
	start   int
	n       int
	seq     uint64
	dropped uint64

	// Now, when set on a tracer with no attached CPU, supplies the
	// (Instrs, Cycles) stamp for each emitted event. The fuzzd manager uses
	// it to stamp service-plane events with host microseconds — those events
	// live on their own trace track and are not part of any deterministic
	// stream, which is exactly why a wall clock is acceptable there.
	Now func() (instrs, cycles uint64)
}

// NewTracer creates a tracer. capacity <= 0 uses DefaultTraceCap. Events
// are unstamped until the tracer is attached to a CPU.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Attach binds the tracer's timestamp source to c and registers it for
// trap-delivery events.
func (t *Tracer) Attach(c *cpu.CPU) {
	t.c = c
	c.AddTrapProbe(t)
}

// Detach unregisters the tracer from its CPU.
func (t *Tracer) Detach() {
	if t.c != nil {
		t.c.RemoveTrapProbe(t)
	}
}

// Emit records one event, stamped with the CPU's current counters.
func (t *Tracer) Emit(kind EventKind, name string, addr, arg uint64) {
	ev := Event{
		Seq:  t.seq,
		Kind: kind,
		Name: name,
		Addr: addr,
		Arg:  arg,
	}
	if t.c != nil {
		ev.Instrs, ev.Cycles = t.c.Instrs, t.c.Cycles
	} else if t.Now != nil {
		ev.Instrs, ev.Cycles = t.Now()
	}
	t.seq++
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// OnTrap implements cpu.TrapProbe.
func (t *Tracer) OnTrap(tr *cpu.Trap, cycles uint64) {
	t.Emit(EvTrap, tr.Kind.String(), tr.Addr, tr.RIP)
}

// Events returns the buffered events, oldest first (a copy).
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Take returns the buffered events and clears the ring (sequence numbers
// restart at zero — per-iteration capture uses this so every iteration's
// stream is self-contained and scheduling-independent).
func (t *Tracer) Take() []Event {
	out := t.Events()
	t.Reset()
	return out
}

// Reset clears the ring, the sequence counter, and the drop counter.
func (t *Tracer) Reset() {
	t.start, t.n, t.seq, t.dropped = 0, 0, 0, 0
}

// Dropped reports how many events were overwritten since the last Reset.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Len reports the number of buffered events.
func (t *Tracer) Len() int { return t.n }

// Renumber rewrites Seq over a merged event slice — used after folding
// per-iteration streams into one campaign trace in canonical order.
func Renumber(events []Event) {
	for i := range events {
		events[i].Seq = uint64(i)
	}
}

// TraceText renders events one per line — the deterministic format the
// replay-comparison tests diff byte-for-byte.
func TraceText(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// chromeEvent is one Chrome trace-event record (the about://tracing and
// Perfetto JSON array format). Emulated cycles stand in for microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func chromeEvents(events []Event, pid int) []chromeEvent {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Ts:   e.Cycles,
			Pid:  pid,
			Tid:  1,
			Args: map[string]any{"seq": e.Seq, "instrs": e.Instrs, "addr": e.Addr, "arg": e.Arg},
		}
		switch e.Kind {
		case EvSyscallEnter:
			ce.Ph = "B"
		case EvSyscallExit:
			ce.Ph = "E"
		default:
			ce.Ph = "i"
			ce.Scope = "t"
			ce.Name = e.Kind.String() + ":" + e.Name
		}
		out = append(out, ce)
	}
	return out
}

// ChromeTrace renders events as Chrome trace-event JSON: syscall
// enter/exit pairs become duration begin/end slices, everything else an
// instant event. Load the output in about://tracing or Perfetto.
func ChromeTrace(events []Event) ([]byte, error) {
	return json.MarshalIndent(chromeEvents(events, 1), "", " ")
}

// Track is one named event stream in a multi-track Chrome export: the fuzzd
// service renders the deterministic iteration stream and the host-clocked
// service-plane stream (leases, expiries, deaths, respawns) as separate
// process rows of one trace file.
type Track struct {
	Name   string
	Pid    int
	Events []Event
}

// ChromeTraceTracks renders several event streams into one Chrome
// trace-event JSON document, one pid row per track, each labelled with a
// process_name metadata record.
func ChromeTraceTracks(tracks ...Track) ([]byte, error) {
	var out []chromeEvent
	for _, tk := range tracks {
		out = append(out, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  tk.Pid,
			Tid:  1,
			Args: map[string]any{"name": tk.Name},
		})
		out = append(out, chromeEvents(tk.Events, tk.Pid)...)
	}
	return json.MarshalIndent(out, "", " ")
}
