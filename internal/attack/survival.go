package attack

import (
	"bytes"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// GadgetSurvival quantifies the §7.3 byte-for-byte comparison ("under kR^X
// no gadget remained at its original location"): it scans kernel a for
// gadgets and counts how many still decode to identical bytes at the same
// address in kernel b. The two kernels must be built from the same sources
// (typically with different seeds).
func GadgetSurvival(a, b *kernel.Kernel) (total, surviving int) {
	gs := ScanGadgets(a.Img.Text, a.Sym("_text"))
	aStart := a.Sym("_text")
	for _, g := range gs {
		total++
		off := g.Addr - aStart
		end := off + uint64(gadgetLen(g))
		if end > uint64(len(b.Img.Text)) {
			continue
		}
		if bytes.Equal(a.Img.Text[off:end], b.Img.Text[off:end]) {
			surviving++
		}
	}
	return total, surviving
}

func gadgetLen(g Gadget) int {
	n := 0
	for _, in := range g.Ins {
		n += in.Length()
	}
	return n
}

// RaceHazard demonstrates the §5.3 race window of return-address
// encryption: the caller's callq pushes the return address in cleartext,
// and only the callee's prologue (1–3 instructions later) encrypts it. An
// attacker who can probe the stack inside that window — here modelled by
// single-stepping, standing in for a racing sibling thread with the leak
// primitive — observes the raw return address.
func RaceHazard(target *kernel.Kernel) Result {
	res := Result{Name: "race-hazard", Stage: "window-probe"}
	if err := target.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		res.Detail = "user setup failed"
		return res
	}
	fStart, fEnd, ok := funcRange(target, "strncpy_from_user")
	if !ok {
		res.Detail = "victim function not found"
		return res
	}
	textStart, textEnd := target.Sym("_text"), target.Sym("_etext")

	c := target.CPU
	c.Mode = cpu.User
	c.RIP = kernel.UserCode
	c.SetReg(isa.RSP, kernel.UserStack+kernel.UserStackPgs*mem.PageSize-128)
	c.SetReg(isa.RAX, kernel.SysOpen)
	c.SetReg(isa.RDI, kernel.UserBuf)
	for i := 0; i < 1<<20; i++ {
		if c.RIP >= fStart && c.RIP < fEnd {
			// First instruction inside the victim: its prologue has not
			// yet run. The slot at (%rsp) holds the cleartext RA.
			v, f := c.AS.Read(c.Reg(isa.RSP), 8)
			if f == nil && v >= textStart && v < textEnd {
				res.Success = true
				res.Detail = "cleartext return address observed before prologue encryption"
				return res
			}
			res.Detail = "slot already mangled at function entry"
			return res
		}
		stop, trap := c.Step()
		if trap != nil || stop != cpu.StepContinue {
			res.Detail = "victim never reached"
			return res
		}
	}
	res.Detail = "window not found"
	return res
}
