package diversify

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/link"
	"repro/internal/testkit"
)

// sumFunc computes rax = rdi + rsi + 100 via a small CFG with a call.
func sumFunc(t *testing.T) *ir.Program {
	t.Helper()
	helper, err := ir.NewBuilder("helper").
		I(isa.AddRI(isa.RDI, 100), isa.MovRR(isa.RAX, isa.RDI), isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	main, err := ir.NewBuilder("kmain").
		I(
			isa.AddRR(isa.RDI, isa.RSI),
			isa.CmpRI(isa.RDI, 1000),
			isa.Jcc(isa.CondA, "big"),
		).
		Label("small").
		I(isa.Call("helper"), isa.Jmp("out")).
		Label("big").
		I(isa.MovRI(isa.RAX, 0)).
		Label("out").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	return &ir.Program{Funcs: []*ir.Function{main, helper}}
}

func runKmain(t *testing.T, prog *ir.Program, a, b uint64) uint64 {
	t.Helper()
	env := testkit.Build(t, prog, kas.KRX)
	env.FillKeys(t, 0xdeadbeef)
	res := env.Call(t, "kmain", a, b)
	if res.Reason != cpu.StopReturn {
		t.Fatalf("run failed: %v trap=%v", res.Reason, res.Trap)
	}
	return env.CPU.Reg(isa.RAX)
}

func TestSemanticPreservationPlain(t *testing.T) {
	for _, cfg := range []Config{
		{K: 30, RAProt: RANone},
		{K: 30, RAProt: RAEncrypt},
		{K: 30, RAProt: RADecoy},
		{K: 10, RAProt: RADecoy},
	} {
		for seed := int64(1); seed <= 5; seed++ {
			prog := sumFunc(t)
			c := cfg
			c.Rand = rand.New(rand.NewSource(seed))
			if _, err := DiversifyProgram(prog, c); err != nil {
				t.Fatal(err)
			}
			if got := runKmain(t, prog, 3, 4); got != 107 {
				t.Fatalf("cfg=%+v seed=%d: kmain(3,4) = %d, want 107", cfg, seed, got)
			}
			if got := runKmain(t, prog, 900, 200); got != 0 {
				t.Fatalf("cfg=%+v seed=%d: kmain(900,200) = %d, want 0", cfg, seed, got)
			}
		}
	}
}

func TestVanillaBaselineWorks(t *testing.T) {
	if got := runKmain(t, sumFunc(t), 3, 4); got != 107 {
		t.Fatalf("undiversified kmain(3,4) = %d", got)
	}
}

func TestEntryPhantomBlock(t *testing.T) {
	prog := sumFunc(t)
	if _, err := DiversifyProgram(prog, Config{K: 30, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		if f.Blocks[0].Label != EntryLabel {
			t.Fatalf("%s: first block is %q, want entry phantom", f.Name, f.Blocks[0].Label)
		}
		if len(f.Blocks[0].Ins) != 1 || f.Blocks[0].Ins[0].Op != isa.JMP {
			t.Fatalf("%s: entry phantom must be a single jmp, got %v", f.Name, f.Blocks[0].Ins)
		}
	}
}

func TestEntropyTarget(t *testing.T) {
	for _, k := range []int{10, 20, 30, 40} {
		prog := sumFunc(t)
		st, err := DiversifyProgram(prog, Config{K: k, Rand: rand.New(rand.NewSource(3))})
		if err != nil {
			t.Fatal(err)
		}
		if st.MinEntropyBits < float64(k) {
			t.Errorf("k=%d: achieved entropy %.1f bits", k, st.MinEntropyBits)
		}
	}
}

func TestChunksNeeded(t *testing.T) {
	// lg(13!) ≈ 32.5 >= 30 > lg(12!) ≈ 28.8.
	if n := chunksNeeded(30); n != 13 {
		t.Errorf("chunksNeeded(30) = %d, want 13", n)
	}
	if n := chunksNeeded(0); n != 1 {
		t.Errorf("chunksNeeded(0) = %d, want 1", n)
	}
}

func TestSingleBlockFunctionGetsPhantoms(t *testing.T) {
	f, err := ir.NewBuilder("leaf").
		I(isa.MovRI(isa.RAX, 7), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Diversify(f, Config{K: 30, Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if st.SingleBlockFuncs != 1 || st.Padded != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PhantomBlocks < 11 {
		t.Errorf("phantom blocks = %d, expected >= 11 for k=30", st.PhantomBlocks)
	}
	// And the function still behaves.
	prog := &ir.Program{Funcs: []*ir.Function{f}}
	env := testkit.Build(t, prog, kas.KRX)
	res := env.Call(t, "leaf")
	if res.Reason != cpu.StopReturn || env.CPU.Reg(isa.RAX) != 7 {
		t.Fatalf("leaf: %v rax=%d", res.Reason, env.CPU.Reg(isa.RAX))
	}
}

func TestLayoutsDifferAcrossSeeds(t *testing.T) {
	var images [][]byte
	for seed := int64(1); seed <= 3; seed++ {
		prog := sumFunc(t)
		if _, err := DiversifyProgram(prog, Config{K: 30, Rand: rand.New(rand.NewSource(seed))}); err != nil {
			t.Fatal(err)
		}
		img, err := link.Link(prog, link.Options{Layout: kas.KRX})
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, img.Text)
	}
	if bytes.Equal(images[0], images[1]) && bytes.Equal(images[1], images[2]) {
		t.Fatal("three seeds produced identical text layouts")
	}
}

func TestFunctionPermutation(t *testing.T) {
	// With many functions, at least one seed must reorder them.
	mk := func() *ir.Program {
		p := &ir.Program{}
		for i := 0; i < 8; i++ {
			f, err := ir.NewBuilder(string(rune('a'+i))).
				I(isa.MovRI(isa.RAX, int64(i)), isa.Ret()).Func()
			if err != nil {
				t.Fatal(err)
			}
			p.Funcs = append(p.Funcs, f)
		}
		return p
	}
	prog := mk()
	if _, err := DiversifyProgram(prog, Config{K: 1, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
	moved := false
	for i, f := range prog.Funcs {
		if f.Name != string(rune('a'+i)) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("function permutation left all functions in place")
	}
}

func TestNoDiversifyExemption(t *testing.T) {
	f, err := ir.NewBuilder("stub").I(isa.Sysret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	f.NoDiversify = true
	st, err := Diversify(f, Config{K: 30})
	if err != nil {
		t.Fatal(err)
	}
	if st.Funcs != 0 || len(f.Blocks) != 1 {
		t.Fatalf("NoDiversify function must stay untouched: %+v", st)
	}
}

func TestDoubleDiversifyRejected(t *testing.T) {
	prog := sumFunc(t)
	f := prog.Funcs[0]
	if _, err := Diversify(f, Config{K: 10, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
	if _, err := Diversify(f, Config{K: 10}); err == nil {
		t.Fatal("re-diversification must be rejected")
	}
}

// spyProg builds caller/callee where the callee copies its two top-of-stack
// words into globals — simulating an attacker-visible stack snapshot while
// the callee runs.
func spyProg(t *testing.T) *ir.Program {
	t.Helper()
	callee, err := ir.NewBuilder("callee").
		I(
			isa.Load(isa.RAX, isa.Mem(isa.RSP, 0)),
			isa.Store(isa.MemAbs("slot0", 0), isa.RAX),
			isa.Load(isa.RAX, isa.Mem(isa.RSP, 8)),
			isa.Store(isa.MemAbs("slot1", 0), isa.RAX),
			isa.MovRI(isa.RAX, 1),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	caller, err := ir.NewBuilder("caller").
		I(
			isa.Call("callee"),
			isa.MovRR(isa.RBX, isa.RAX),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	return &ir.Program{
		Funcs: []*ir.Function{caller, callee},
		Data: []ir.DataSym{
			{Name: "slot0", Bytes: make([]byte, 8)},
			{Name: "slot1", Bytes: make([]byte, 8)},
		},
	}
}

func peek64(t *testing.T, env *testkit.Env, sym string) uint64 {
	t.Helper()
	b, err := env.Space.AS.Peek(env.Img.Symbols[sym], 8)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestEncryptionHidesReturnAddress(t *testing.T) {
	prog := spyProg(t)
	if _, err := DiversifyProgram(prog, Config{K: 10, RAProt: RAEncrypt, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
	env := testkit.Build(t, prog, kas.KRX)
	env.FillKeys(t, 0x1122334455667788)
	res := env.Call(t, "caller")
	if res.Reason != cpu.StopReturn || env.CPU.Reg(isa.RBX) != 1 {
		t.Fatalf("run: %v rbx=%d trap=%v", res.Reason, env.CPU.Reg(isa.RBX), res.Trap)
	}
	// The value the callee saw at (%rsp) must NOT be a code address: it is
	// RA^xkey. The real return site lies inside caller's body.
	seen := peek64(t, env, "slot0")
	textStart, textEnd := env.Img.Symbols["_text"], env.Img.Symbols["_etext"]
	if seen >= textStart && seen < textEnd {
		t.Fatalf("encrypted return address %#x still looks like a code pointer", seen)
	}
	// Decrypting with the key recovers a text address.
	keyAddr := env.Img.KeyAddrs[KeySym("callee")]
	kb, err := env.Space.AS.Peek(keyAddr, 8)
	if err != nil {
		t.Fatal(err)
	}
	var key uint64
	for i := 0; i < 8; i++ {
		key |= uint64(kb[i]) << (8 * i)
	}
	if ra := seen ^ key; ra < textStart || ra >= textEnd {
		t.Fatalf("decrypted RA %#x not in text", ra)
	}
}

func TestEncryptionZapsReturnSite(t *testing.T) {
	// After the call returns, the stale decrypted RA below %rsp must have
	// been zapped.
	callee, err := ir.NewBuilder("callee").
		I(isa.MovRI(isa.RAX, 1), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	caller, err := ir.NewBuilder("caller").
		I(
			isa.Call("callee"),
			isa.Load(isa.RBX, isa.Mem(isa.RSP, -8)), // stale RA slot
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	prog := &ir.Program{Funcs: []*ir.Function{caller, callee}}
	if _, err := DiversifyProgram(prog, Config{K: 5, RAProt: RAEncrypt, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
	env := testkit.Build(t, prog, kas.KRX)
	env.FillKeys(t, 0xabc)
	res := env.Call(t, "caller")
	if res.Reason != cpu.StopReturn {
		t.Fatalf("run: %v %v", res.Reason, res.Trap)
	}
	if env.CPU.Reg(isa.RBX) != 0 {
		t.Fatalf("stale return address not zapped: %#x", env.CPU.Reg(isa.RBX))
	}
}

func TestDecoysPlantTripwirePair(t *testing.T) {
	foundTrip, foundReal := false, false
	for seed := int64(1); seed <= 8 && !(foundTrip && foundReal); seed++ {
		prog := spyProg(t)
		if _, err := DiversifyProgram(prog, Config{K: 10, RAProt: RADecoy, Rand: rand.New(rand.NewSource(seed))}); err != nil {
			t.Fatal(err)
		}
		env := testkit.Build(t, prog, kas.KRX)
		res := env.Call(t, "caller")
		if res.Reason != cpu.StopReturn || env.CPU.Reg(isa.RBX) != 1 {
			t.Fatalf("seed %d: %v rbx=%d trap=%v", seed, res.Reason, env.CPU.Reg(isa.RBX), res.Trap)
		}
		// The two adjacent stack words are the decoy/real pair (order
		// random per compile). One must point at an int3 tripwire, the
		// other at the true return site.
		textStart := env.Img.Symbols["_text"]
		for _, sym := range []string{"slot0", "slot1"} {
			v := peek64(t, env, sym)
			off := v - textStart
			if off >= uint64(len(env.Img.Text)) {
				t.Fatalf("seed %d: %s=%#x outside text", seed, sym, v)
			}
			if env.Img.Text[off] == 0xCC {
				foundTrip = true
			} else {
				foundReal = true
			}
		}
	}
	if !foundTrip || !foundReal {
		t.Fatalf("decoy pair not found (trip=%v real=%v)", foundTrip, foundReal)
	}
}

func TestDecoyGuessingTrapsHalfTheTime(t *testing.T) {
	// Simulate the §7.3 analysis: jumping to the decoy must hit int3.
	prog := spyProg(t)
	if _, err := DiversifyProgram(prog, Config{K: 10, RAProt: RADecoy, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
	env := testkit.Build(t, prog, kas.KRX)
	res := env.Call(t, "caller")
	if res.Reason != cpu.StopReturn {
		t.Fatalf("%v %v", res.Reason, res.Trap)
	}
	v0, v1 := peek64(t, env, "slot0"), peek64(t, env, "slot1")
	textStart := env.Img.Symbols["_text"]
	trapped := 0
	for _, target := range []uint64{v0, v1} {
		if env.Img.Text[target-textStart] != 0xCC {
			continue
		}
		// Divert execution to the candidate (the attacker's guess).
		env.CPU.Mode = cpu.Kernel
		env.CPU.RIP = target
		r := env.CPU.Run(10)
		if r.Reason == cpu.StopTrap && r.Trap.Kind == cpu.TrapBreakpoint {
			trapped++
		}
	}
	if trapped != 1 {
		t.Fatalf("exactly one of the pair must be a trapping tripwire, got %d", trapped)
	}
}

func TestDiversifiedProgramStillLinksEverywhere(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		prog := sumFunc(t)
		cfg := Config{K: 30, RAProt: RAProt(seed % 3), Rand: rand.New(rand.NewSource(seed))}
		if _, err := DiversifyProgram(prog, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := link.Link(prog, link.Options{Layout: kas.KRX}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLgFactorial(t *testing.T) {
	if LgFactorial(1) != 0 || LgFactorial(0) != 0 {
		t.Error("lg(0!)=lg(1!)=0")
	}
	if v := LgFactorial(13); v < 32 || v > 33 {
		t.Errorf("lg(13!) = %f", v)
	}
}
