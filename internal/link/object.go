package link

import (
	"fmt"

	"repro/internal/ir"
)

// ObjectImage is a relocated module object: text and data bytes ready to
// be copied to their assigned load addresses. It is the in-memory
// equivalent of a loaded .ko after relocation and eager symbol binding.
type ObjectImage struct {
	Text     []byte
	Data     []byte // .rodata + .data, merged
	BssSize  uint64
	Symbols  map[string]uint64 // module-defined symbols, absolute
	KeyAddrs map[string]uint64 // xkey slots (inside the text allocation)
	NumKeys  int
}

// TotalTextSize returns the size of the text allocation including the
// trailing xkey slots.
func (o *ObjectImage) TotalTextSize() uint64 {
	return uint64(len(o.Text)) + uint64(o.NumKeys)*8
}

// LinkObject links a module program against a kernel symbol table, placing
// .text at textBase and all data sections at dataBase (the kR^X module
// loader-linker slices text away from data — §5.1.1 "Kernel Modules").
// Module xkeys are placed directly after the text (inside the execute-only
// region), to be replenished by the loader.
func LinkObject(prog *ir.Program, textBase, dataBase uint64, externs map[string]uint64) (*ObjectImage, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	tp, err := planText(prog.Funcs)
	if err != nil {
		return nil, err
	}
	rodataOff, rodataSize := dataPlan(prog.Rodata)
	rodataSize = (rodataSize + 7) &^ 7
	dataOff, dataSize := dataPlan(prog.Data)
	dataSize = (dataSize + 7) &^ 7
	bssOff, bssSize := bssPlan(prog.BSS)

	obj := &ObjectImage{
		Symbols:  make(map[string]uint64),
		KeyAddrs: make(map[string]uint64),
		BssSize:  bssSize,
		NumKeys:  len(tp.keys),
	}
	syms := make(map[string]uint64, len(externs)+len(prog.Funcs))
	for k, v := range externs {
		syms[k] = v
	}
	define := func(name string, addr uint64) error {
		if _, dup := syms[name]; dup {
			return fmt.Errorf("link: module symbol %q collides", name)
		}
		syms[name] = addr
		obj.Symbols[name] = addr
		return nil
	}
	for _, f := range prog.Funcs {
		if err := define(f.Name, textBase+tp.funcOff[f.Name]); err != nil {
			return nil, err
		}
	}
	keysBase := textBase + ((tp.size + 7) &^ 7)
	for i, k := range tp.keys {
		a := keysBase + uint64(i)*8
		if err := define(k, a); err != nil {
			return nil, err
		}
		obj.KeyAddrs[k] = a
	}
	for _, d := range prog.Rodata {
		if err := define(d.Name, dataBase+rodataOff[d.Name]); err != nil {
			return nil, err
		}
	}
	for _, d := range prog.Data {
		if err := define(d.Name, dataBase+rodataSize+dataOff[d.Name]); err != nil {
			return nil, err
		}
	}
	for _, d := range prog.BSS {
		if err := define(d.Name, dataBase+rodataSize+dataSize+bssOff[d.Name]); err != nil {
			return nil, err
		}
	}

	var text []byte
	for _, f := range prog.Funcs {
		for uint64(len(text)) < tp.funcOff[f.Name] {
			text = append(text, 0xCC)
		}
		enc, err := encodeFunc(f, textBase, tp, syms)
		if err != nil {
			return nil, err
		}
		text = append(text, enc...)
	}
	obj.Text = text

	data := make([]byte, rodataSize+dataSize)
	for _, d := range prog.Rodata {
		copy(data[rodataOff[d.Name]:], d.Bytes)
	}
	for _, d := range prog.Data {
		copy(data[rodataSize+dataOff[d.Name]:], d.Bytes)
	}
	for _, rel := range prog.DataRelocs() {
		target, ok := syms[rel.Sym]
		if !ok {
			return nil, fmt.Errorf("link: module data relocation against undefined %q", rel.Sym)
		}
		off := dataOff[rel.In] + rodataSize + rel.Off
		if rel.Rodata {
			off = rodataOff[rel.In] + rel.Off
		}
		v := target + rel.Addend
		for i := 0; i < 8; i++ {
			data[off+uint64(i)] = byte(v >> (8 * i))
		}
	}
	obj.Data = data
	return obj, nil
}
