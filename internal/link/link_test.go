package link

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
)

// testProg builds a tiny two-function program with data, rodata, bss,
// a dispatch-table relocation, and an xkey reference.
func testProg(t *testing.T) *ir.Program {
	t.Helper()
	main, err := ir.NewBuilder("kmain").
		I(
			isa.Load(isa.R11, isa.MemRIP(KeyPrefix+"kmain", 0)),
			isa.MovSym(isa.RAX, "message"),
			isa.Call("helper"),
			isa.CmpSymNeg(isa.RSI, "_krx_edata", 0x154),
			isa.Jcc(isa.CondA, "out"),
		).
		Label("mid").
		I(isa.AddRI(isa.RAX, 1), isa.Jmp("out")).
		Label("out").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	helper, err := ir.NewBuilder("helper").
		I(isa.Load(isa.RCX, isa.MemAbs("counter", 0)), isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	return &ir.Program{
		Funcs:  []*ir.Function{main, helper},
		Rodata: []ir.DataSym{{Name: "message", Bytes: []byte("hello")}},
		Data: []ir.DataSym{
			{Name: "counter", Bytes: make([]byte, 8)},
			{Name: "dispatch", Bytes: make([]byte, 16)},
		},
		BSS:    []ir.BSSSym{{Name: "scratch", Size: 128}},
		Relocs: []ir.DataReloc{{In: "dispatch", Off: 8, Sym: "helper"}},
	}
}

func TestLinkKRX(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	if img.Layout.Kind != kas.KRX {
		t.Fatal("wrong layout kind")
	}
	// Both functions placed, aligned, inside .text.
	textStart := img.Symbols["_text"]
	textEnd := img.Symbols["_etext"]
	for _, fs := range img.Funcs {
		if fs.Addr < textStart || fs.Addr+fs.Size > textEnd {
			t.Errorf("function %s at %#x outside .text [%#x,%#x)", fs.Name, fs.Addr, textStart, textEnd)
		}
		if fs.Addr%FuncAlign != 0 {
			t.Errorf("function %s not %d-aligned", fs.Name, FuncAlign)
		}
	}
	// The xkey slot was merged into .krxkeys above _krx_edata.
	ka, ok := img.KeyAddrs[KeyPrefix+"kmain"]
	if !ok {
		t.Fatal("xkey.kmain not allocated")
	}
	if ka <= img.Symbols["_krx_edata"] {
		t.Error("xkey slot must live above _krx_edata (unreadable by instrumented code)")
	}
	if img.NumKeys != 1 {
		t.Errorf("NumKeys = %d", img.NumKeys)
	}
	// Data relocation applied: dispatch+8 holds helper's address.
	off := img.Symbols["dispatch"] - img.Layout.Region(".data").Start
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(img.Data[off+8+uint64(i)]) << (8 * i)
	}
	if v != img.Symbols["helper"] {
		t.Errorf("dispatch[1] = %#x, want helper %#x", v, img.Symbols["helper"])
	}
}

func TestLinkVanilla(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.Vanilla})
	if err != nil {
		t.Fatal(err)
	}
	// Vanilla: .text at KernelBase; _krx_edata is +inf so every range
	// check passes trivially.
	if img.Symbols["_text"] != kas.KernelBase {
		t.Errorf("_text = %#x", img.Symbols["_text"])
	}
	if img.Symbols["_krx_edata"] != ^uint64(0) {
		t.Errorf("vanilla _krx_edata = %#x", img.Symbols["_krx_edata"])
	}
}

func TestLinkedBranchesDecodeAndResolve(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble kmain and follow the call: the rel32 must land exactly
	// on helper's entry.
	kmainAddr := img.Symbols["kmain"]
	textStart := img.Symbols["_text"]
	code := img.Text[kmainAddr-textStart:]
	var pc = kmainAddr
	found := false
	for off := 0; off < len(code); {
		in, n, err := isa.Decode(code[off:])
		if err != nil {
			t.Fatalf("decode at +%d: %v", off, err)
		}
		if in.Op == isa.CALL {
			target := pc + uint64(n) + uint64(int64(in.Imm))
			if target != img.Symbols["helper"] {
				t.Errorf("call target %#x, want helper %#x", target, img.Symbols["helper"])
			}
			found = true
		}
		if in.Op == isa.RET {
			break
		}
		off += n
		pc += uint64(n)
	}
	if !found {
		t.Fatal("no call instruction found in kmain")
	}
}

func TestLinkUndefinedSymbol(t *testing.T) {
	f, err := ir.NewBuilder("f").I(isa.Call("missing"), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(&ir.Program{Funcs: []*ir.Function{f}}, Options{Layout: kas.KRX}); err == nil {
		t.Fatal("undefined symbol must fail the link")
	}
}

func TestLinkUndefinedDataReloc(t *testing.T) {
	p := testProg(t)
	p.Relocs = append(p.Relocs, ir.DataReloc{In: "dispatch", Off: 0, Sym: "missing"})
	if _, err := Link(p, Options{Layout: kas.KRX}); err == nil {
		t.Fatal("undefined reloc target must fail the link")
	}
}

func TestInterFunctionPadding(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	// Bytes between function end and next function start are int3.
	first := img.Funcs[0]
	second := img.Funcs[1]
	textStart := img.Symbols["_text"]
	for a := first.Addr + first.Size; a < second.Addr; a++ {
		if img.Text[a-textStart] != 0xCC {
			t.Fatalf("padding byte at %#x is %#x, want 0xCC", a, img.Text[a-textStart])
		}
	}
}

func TestInstallImage(t *testing.T) {
	img, err := Link(testProg(t), Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	pool := kas.NewPhysPool(8 << 20)
	sp, err := kas.Install(img.Layout, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Install(sp); err != nil {
		t.Fatal(err)
	}
	// The first byte of kmain is fetchable at its symbol address.
	var buf [1]byte
	if _, f := sp.AS.Fetch(img.Symbols["kmain"], buf[:]); f != nil {
		t.Fatalf("fetch of installed text: %v", f)
	}
	if buf[0] != img.Text[img.Symbols["kmain"]-img.Symbols["_text"]] {
		t.Error("installed text mismatch")
	}
	// rodata visible.
	b, err2 := sp.AS.Peek(img.Symbols["message"], 5)
	if err2 != nil || string(b) != "hello" {
		t.Fatalf("rodata: %v %q", err2, b)
	}
}

func TestTripwireResolution(t *testing.T) {
	// A function with a phantom block; a MOVri with TripSym resolves to
	// the phantom block's address + offset 2 (the int3 byte).
	f, err := ir.NewBuilder("f").
		I(
			isa.Instr{Op: isa.MOVri, Dst: isa.R11, TripSym: "phantom.0", TripOff: 2},
			isa.Call("g"),
			isa.Ret(),
		).
		Label("phantom.0").
		I(isa.MovRI(isa.R11, 0xCC), isa.Jmp("done")).
		Label("done").
		I(isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ir.NewBuilder("g").I(isa.Ret()).Func()
	img, err := Link(&ir.Program{Funcs: []*ir.Function{f, g}}, Options{Layout: kas.KRX})
	if err != nil {
		t.Fatal(err)
	}
	// Decode the first instruction of f: its imm must point 2 bytes into
	// the phantom block, and the byte there must be 0xCC.
	textStart := img.Symbols["_text"]
	in, _, err := isa.Decode(img.Text[img.Symbols["f"]-textStart:])
	if err != nil || in.Op != isa.MOVri {
		t.Fatalf("decode: %v %v", err, in.Op)
	}
	trip := uint64(in.Imm)
	if img.Text[trip-textStart] != 0xCC {
		t.Errorf("tripwire target byte = %#x, want 0xCC", img.Text[trip-textStart])
	}
}

func TestSignExt32Constraint(t *testing.T) {
	if !signExt32OK(0xFFFFFFFF80000000) {
		t.Error("kernel base must fit sign-extended imm32")
	}
	if !signExt32OK(0x7FFFFFFF) || signExt32OK(0x80000000) {
		t.Error("boundary cases wrong")
	}
	if signExt32OK(0xFFFFFFF000000000) {
		t.Error("mid-range high address must not fit")
	}
}
