package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The on-disk blob container. Every artifact is wrapped in a versioned,
// checksummed envelope so a reader can reject torn, truncated, or
// bit-rotted files without knowing anything about the payload:
//
//	magic "KRXBLOB1"
//	u32   container version (1)
//	u64   payload length
//	[32]  sha256(payload)
//	payload
//
// Writes never expose a partial file under the final name: the blob is
// written to a *.tmp sibling and renamed into place (atomic on POSIX), so
// a kill at any instant leaves either the old blob, the new blob, or a
// *.tmp orphan that the next OpenDisk reaps. No fsync is issued — this is
// a cache, and the failure a lost blob costs is one rebuild; the property
// the container defends is never serving a corrupt artifact, which the
// checksum enforces on every read.

var blobMagic = [8]byte{'K', 'R', 'X', 'B', 'L', 'O', 'B', '1'}

const blobVersion = 1

// blobHeaderSize is the fixed envelope size: magic + version + length +
// checksum.
const blobHeaderSize = 8 + 4 + 8 + sha256.Size

// Disk is the persistent layer: a content-addressed file tree under a root
// directory, with LRU eviction under a byte quota. Blobs live at
// <dir>/<kind>/<hash[:2]>/<hash>.blob; recency is tracked in memory
// (seeded from file mtimes at open, so LRU order survives across
// processes approximately — exact within one).
type Disk struct {
	dir   string
	quota uint64 // 0 = unlimited

	mu    sync.Mutex
	seq   uint64
	ents  map[string]*diskEnt // addr (kind/hash) -> entry
	bytes uint64
	stats Stats
	pins  map[string]int
}

type diskEnt struct {
	path string
	size uint64
	seq  uint64 // LRU clock: higher = more recently used
}

// OpenDisk opens (creating if needed) the store rooted at dir, bounded by
// quota bytes (0 = unlimited). Partial *.tmp files from killed writers are
// reaped, and the resident blobs are indexed for LRU eviction in
// modification-time order.
func OpenDisk(dir string, quota uint64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d := &Disk{
		dir:   dir,
		quota: quota,
		ents:  make(map[string]*diskEnt),
		pins:  make(map[string]int),
	}
	type seeded struct {
		addr string
		ent  *diskEnt
		mod  int64
	}
	var seen []seeded
	err := filepath.WalkDir(dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		if strings.Contains(de.Name(), ".tmp") {
			// A writer died mid-write; the rename never happened, so the
			// orphan is garbage by construction.
			os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(de.Name(), ".blob") {
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil // raced with a concurrent evictor; skip
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return nil
		}
		parts := strings.Split(filepath.ToSlash(rel), "/")
		if len(parts) != 3 {
			return nil
		}
		a := parts[0] + "/" + strings.TrimSuffix(parts[2], ".blob")
		seen = append(seen, seeded{
			addr: a,
			ent:  &diskEnt{path: path, size: uint64(info.Size())},
			mod:  info.ModTime().UnixNano(),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	// Oldest first, so eviction order approximates the access order of the
	// previous process.
	sort.Slice(seen, func(i, j int) bool { return seen[i].mod < seen[j].mod })
	for _, s := range seen {
		d.seq++
		s.ent.seq = d.seq
		d.ents[s.addr] = s.ent
		d.bytes += s.ent.size
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) blobPath(kind, hash string) string {
	return filepath.Join(d.dir, kind, hash[:2], hash+".blob")
}

// Get reads and validates the blob under (kind, key). A blob that fails
// container validation — bad magic, bad version, bad length, checksum
// mismatch — is deleted and reported as a corrupt miss: the caller
// rebuilds, and the store never hands out a torn artifact.
func (d *Disk) Get(kind string, key Key) ([]byte, error) {
	a := addr(kind, key)
	d.mu.Lock()
	ent, ok := d.ents[a]
	if ok {
		d.seq++
		ent.seq = d.seq
	}
	d.mu.Unlock()
	if !ok {
		d.mu.Lock()
		d.stats.Misses++
		d.mu.Unlock()
		return nil, &NotFoundError{Kind: kind, Key: key}
	}
	raw, err := os.ReadFile(ent.path)
	if err != nil {
		// Indexed but unreadable (evicted by another process, permissions):
		// drop the index entry and miss.
		d.drop(a, false)
		return nil, &NotFoundError{Kind: kind, Key: key}
	}
	payload, verr := unwrapBlob(raw)
	if verr != nil {
		os.Remove(ent.path)
		d.drop(a, true)
		return nil, &NotFoundError{Kind: kind, Key: key, Corrupt: true}
	}
	d.mu.Lock()
	d.stats.Hits++
	d.mu.Unlock()
	return payload, nil
}

// drop removes an index entry after its file disappeared or failed
// validation.
func (d *Disk) drop(a string, corrupt bool) {
	d.mu.Lock()
	if ent, ok := d.ents[a]; ok {
		delete(d.ents, a)
		d.bytes -= ent.size
	}
	d.stats.Misses++
	if corrupt {
		d.stats.Corrupt++
	}
	d.mu.Unlock()
}

// unwrapBlob validates the container envelope and returns the payload.
func unwrapBlob(raw []byte) ([]byte, error) {
	if len(raw) < blobHeaderSize {
		return nil, fmt.Errorf("store: blob truncated (%d bytes)", len(raw))
	}
	if [8]byte(raw[:8]) != blobMagic {
		return nil, fmt.Errorf("store: bad blob magic")
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != blobVersion {
		return nil, fmt.Errorf("store: blob version %d, want %d", v, blobVersion)
	}
	n := binary.LittleEndian.Uint64(raw[12:20])
	payload := raw[blobHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("store: blob payload %d bytes, header says %d", len(payload), n)
	}
	var want [sha256.Size]byte
	copy(want[:], raw[20:blobHeaderSize])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("store: blob checksum mismatch")
	}
	return payload, nil
}

// wrapBlob builds the container envelope around payload.
func wrapBlob(payload []byte) []byte {
	out := make([]byte, blobHeaderSize+len(payload))
	copy(out[:8], blobMagic[:])
	binary.LittleEndian.PutUint32(out[8:12], blobVersion)
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[20:blobHeaderSize], sum[:])
	copy(out[blobHeaderSize:], payload)
	return out
}

// Put writes data under (kind, key) crash-safely: the enveloped blob lands
// in a *.tmp sibling first and is renamed into place, then LRU eviction
// brings the store back under quota.
func (d *Disk) Put(kind string, key Key, data []byte) error {
	hash := key.Hash()
	path := d.blobPath(kind, hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	// The temp file must live in the final file's directory: rename is only
	// atomic within one filesystem.
	tmp, err := os.CreateTemp(filepath.Dir(path), hash+".tmp*")
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	blob := wrapBlob(data)
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	a := addr(kind, key)
	d.mu.Lock()
	if old, ok := d.ents[a]; ok {
		d.bytes -= old.size
	}
	d.seq++
	d.ents[a] = &diskEnt{path: path, size: uint64(len(blob)), seq: d.seq}
	d.bytes += uint64(len(blob))
	d.stats.Puts++
	d.evictLocked()
	d.mu.Unlock()
	return nil
}

// evictLocked deletes least-recently-used unpinned blobs until the byte
// quota holds. Pinned entries are immune; if only pinned entries remain
// the store runs over quota rather than evicting an in-flight artifact.
func (d *Disk) evictLocked() {
	if d.quota == 0 {
		return
	}
	for d.bytes > d.quota {
		var victim string
		var vent *diskEnt
		for a, ent := range d.ents {
			if d.pins[a] > 0 {
				continue
			}
			if vent == nil || ent.seq < vent.seq {
				victim, vent = a, ent
			}
		}
		if vent == nil {
			return // everything left is pinned
		}
		os.Remove(vent.path)
		delete(d.ents, victim)
		d.bytes -= vent.size
		d.stats.Evictions++
	}
}

// Pin marks (kind, key) unevictable until released. Pinning before the
// blob exists is allowed — it covers the window between a build's Put and
// the boots that consume it.
func (d *Disk) Pin(kind string, key Key) func() {
	a := addr(kind, key)
	d.mu.Lock()
	d.pins[a]++
	d.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			d.mu.Lock()
			if d.pins[a]--; d.pins[a] == 0 {
				delete(d.pins, a)
			}
			d.evictLocked()
			d.mu.Unlock()
		})
	}
}

// Stats returns a snapshot of the layer's counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Bytes = d.bytes
	s.Pins = uint64(len(d.pins))
	return s
}

// Close releases the in-memory index. The files stay — that is the point.
func (d *Disk) Close() error {
	d.mu.Lock()
	d.ents = make(map[string]*diskEnt)
	d.bytes = 0
	d.mu.Unlock()
	return nil
}
