package bench

import (
	"strings"
	"testing"
)

func TestKSweepCodeSizeGrows(t *testing.T) {
	rs, err := KSweep([]int{10, 30}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].TextBytes <= rs[0].TextBytes {
		t.Errorf("k=30 text (%d) should exceed k=10 text (%d)", rs[1].TextBytes, rs[0].TextBytes)
	}
	if rs[1].PhantomBlocks <= rs[0].PhantomBlocks {
		t.Error("more entropy needs more phantom padding")
	}
	for _, r := range rs {
		if r.EntropyFloor < float64(r.K) {
			t.Errorf("k=%d entropy floor %.1f below target", r.K, r.EntropyFloor)
		}
	}
	if out := FormatKSweep(rs); !strings.Contains(out, ".text bytes") {
		t.Error("sweep formatting broken")
	}
}

func TestXOMCompareOrdering(t *testing.T) {
	rs, err := XOMCompare(3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]XOMCompareResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	v := byName["Vanilla"].SyscallCycles
	sfiC := byName["kR^X-SFI (O3)"].SyscallCycles
	mpx := byName["kR^X-MPX"].SyscallCycles
	ept := byName["EPT (hypervisor)"].SyscallCycles
	if !(v < mpx && mpx < sfiC) {
		t.Errorf("ordering violated: vanilla %.0f, mpx %.0f, sfi %.0f", v, mpx, sfiC)
	}
	// EPT enforcement itself is free at runtime (the cost is the VMM,
	// which the note records).
	if ept > mpx {
		t.Errorf("EPT (%.0f) should not exceed MPX (%.0f)", ept, mpx)
	}
	if out := FormatXOMCompare(rs); !strings.Contains(out, "nesting") {
		t.Error("EPT note missing")
	}
}

func TestGuardCheckHolds(t *testing.T) {
	out, err := GuardCheck()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "safe=true") {
		t.Errorf("guard check output unexpected:\n%s", out)
	}
}
