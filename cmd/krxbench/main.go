// Command krxbench runs the evaluation harness: Table 1 (LMBench-style
// micro-benchmarks across all eleven protection configurations), Table 2
// (Phoronix-style macro workloads across the six full-protection columns),
// and the DESIGN.md ablation sweeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/sfi"
	"repro/internal/store"
)

func main() {
	var (
		t1       = flag.Bool("table1", false, "run the Table 1 micro-benchmarks")
		t2       = flag.Bool("table2", false, "run the Table 2 macro workloads")
		ablation = flag.Bool("ablation", false, "run the ablation sweeps (k, XOM mechanisms, guard)")
		compare  = flag.Bool("compare", false, "interleave the paper's numbers (measured / paper)")
		profile  = flag.Bool("profile", false, "cycle-attribution profile (overhead decomposition)")
		jsonOut  = flag.Bool("json", false, "emulator host-performance benchmark, machine-readable JSON (host ns/op + emulated cycles, decode cache on/off)")
		traceOut = flag.String("trace", "", "run the Table 1 suite under the fully protected preset with event tracing; write Chrome trace-event JSON to this file")
		funcs    = flag.Bool("funcs", false, "cycle-attributed per-function profile of the Table 1 suite (conservation-checked)")
		stats    = flag.Bool("stats", false, "print the observability metric registry after the traced/profiled run")
		blocks   = flag.Bool("blocks", true, "dispatch through the superblock engine where no probes are armed (bit-identical either way)")
		compile  = flag.Bool("compile", true, "compile hot superblocks into per-opcode thunks (bit-identical either way; -compile=false keeps the interpreted block dispatcher)")
		hot      = flag.Int("hot", 0, "block-formation hotness threshold: form a superblock after this many dispatches of an entry point (0 = engine default)")
		iters    = flag.Int("iters", 10, "measured iterations per data point")
		cacheDir = flag.String("cache-dir", "", "persistent artifact store directory: kernel images are reused across invocations instead of re-linked")
		quota    = flag.String("cache-quota", "1G", "artifact store byte quota, LRU-evicted (accepts K/M/G suffixes; 0 = unlimited)")
		cpuProf  = flag.String("cpuprofile", "", "write a host pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a host pprof heap profile (collected after the run) to this file")
	)
	flag.Parse()
	observe := *traceOut != "" || *funcs || *stats
	if !*t1 && !*t2 && !*ablation && !*profile && !*jsonOut && !observe {
		*t1, *t2, *ablation = true, true, true
	}
	stopProf, err := obs.StartPprof(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "krxbench:", err)
		os.Exit(1)
	}
	defer stopProf()
	fail := func(err error) {
		stopProf()
		fmt.Fprintln(os.Stderr, "krxbench:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		artifacts, err := store.Open(*cacheDir, *quota)
		if err != nil {
			fail(err)
		}
		defer artifacts.Close()
		kernel.SetBuildCache(core.NewImageCache(artifacts))
	}

	if *jsonOut {
		rep, err := bench.EmuBench(*iters)
		if err != nil {
			fail(err)
		}
		b, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(b))
		return
	}

	if observe {
		if err := runObserved(*traceOut, *funcs, *stats, *blocks, *compile, *hot); err != nil {
			fail(err)
		}
		return
	}

	if *t1 {
		tbl, err := bench.RunTable1(*iters)
		if err != nil {
			fail(err)
		}
		if *compare {
			fmt.Println(bench.FormatComparison(tbl, nil, true))
			printAgreement(bench.ShapeAgreement(tbl, nil, true))
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if *t2 {
		tbl, err := bench.RunTable2(*iters)
		if err != nil {
			fail(err)
		}
		if *compare {
			fmt.Println(bench.FormatComparison(tbl, bench.PaperTable2, false))
			printAgreement(bench.ShapeAgreement(tbl, bench.PaperTable2, false))
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if *profile {
		for _, cfg := range []core.Config{
			core.Vanilla,
			{XOM: core.XOMSFI, SFILevel: sfi.O0, Seed: 9},
			{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 9},
			{XOM: core.XOMMPX, Seed: 9},
			{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 9},
			{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 9},
		} {
			p, err := bench.RunProfile(cfg)
			if err != nil {
				fail(err)
			}
			fmt.Println(p.Format(6))
		}
	}
	if *ablation {
		ks, err := bench.KSweep(nil, *iters)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatKSweep(ks))
		xs, err := bench.XOMCompare(*iters)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatXOMCompare(xs))
		gc, err := bench.GuardCheck()
		if err != nil {
			fail(err)
		}
		fmt.Println(gc)
	}
}

// runObserved executes the Table 1 suite once under the fully protected
// preset with the observability layer armed: an event tracer (exported as
// Chrome trace-event JSON), the cycle-attributed function profiler, and the
// metric registry. Tracing and profiling never perturb the emulated
// machine, so the suite's cycle totals match an unobserved run exactly.
func runObserved(traceOut string, funcs, stats, blocks, compile bool, hot int) error {
	presets := core.Presets()
	cfg := presets[len(presets)-1]
	tr := obs.NewTracer(1 << 16)
	k, err := kernel.Boot(cfg, kernel.WithCache(), kernel.WithTracer(tr))
	if err != nil {
		return err
	}
	k.CPU.SetBlockEngine(blocks)
	k.CPU.SetBlockCompile(compile)
	k.CPU.SetBlockHotThreshold(hot)
	var prof *obs.Profiler
	if funcs {
		prof = obs.NewProfiler(k.Img)
		prof.Attach(k.CPU)
	}
	cycles, err := bench.RunTable1Suite(k)
	if err != nil {
		return err
	}
	fmt.Printf("table1-suite/%s: %d emulated cycles, %d trace events\n", cfg.Name(), cycles, tr.Len())
	if prof != nil {
		if err := prof.CheckConservation(); err != nil {
			return fmt.Errorf("profiler conservation: %w", err)
		}
		fmt.Println(prof.Report().Format(12, func(nr int64) string {
			return kernel.SyscallName(uint64(nr))
		}))
	}
	if traceOut != "" {
		b, err := obs.ChromeTrace(tr.Events())
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (load in about://tracing or Perfetto)\n", tr.Len(), traceOut)
	}
	if stats {
		reg := obs.NewRegistry()
		obs.RegisterCPU(reg, "cpu", k.CPU)
		obs.RegisterDecodeCache(reg, "decode_cache", k.CPU)
		obs.RegisterBlockEngine(reg, "block_engine", k.CPU)
		obs.RegisterDataTLB(reg, "dtlb", k.CPU.AS)
		obs.RegisterStore(reg, "store", kernel.BuildCache())
		obs.RegisterTracer(reg, "trace", tr)
		fmt.Print(reg.Format())
	}
	return nil
}

func printAgreement(agree map[string]float64) {
	cfgs := make([]string, 0, len(agree))
	for cfg := range agree {
		cfgs = append(cfgs, cfg)
	}
	sort.Strings(cfgs)
	fmt.Print("rank agreement with the paper:")
	for _, cfg := range cfgs {
		fmt.Printf("  %s=%.0f%%", cfg, 100*agree[cfg])
	}
	fmt.Println()
	fmt.Println()
}
