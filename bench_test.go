package repro

// The root benchmark harness: one testing.B target per paper table and
// figure. Benchmarks report emulated kernel cycles per operation
// ("kcycles/op") alongside wall time; the full sweeps with overhead
// percentages are produced by `go run ./cmd/krxbench`.

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/figures"
	"repro/internal/fuzz"
	"repro/internal/kas"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

// table1Configs is the column subset exercised by the per-row benchmarks
// (the full eleven-column sweep lives in cmd/krxbench).
var table1Configs = []core.Config{
	core.Vanilla,
	{XOM: core.XOMSFI, SFILevel: sfi.O0, Seed: 1},
	{XOM: core.XOMSFI, SFILevel: sfi.O3, Seed: 1},
	{XOM: core.XOMMPX, Seed: 1},
	{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 1},
	{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RADecoy, Seed: 1},
}

// BenchmarkTable1 regenerates the Table 1 rows: every LMBench-style
// micro-op under representative protection columns.
func BenchmarkTable1(b *testing.B) {
	for _, op := range bench.MicroOps() {
		op := op
		b.Run(op.Name, func(b *testing.B) {
			for _, cfg := range table1Configs {
				cfg := cfg
				b.Run(cfg.Name(), func(b *testing.B) {
					k, err := kernel.Boot(cfg, kernel.WithCache())
					if err != nil {
						b.Fatal(err)
					}
					if op.Setup != nil {
						if err := op.Setup(k); err != nil {
							b.Fatal(err)
						}
					}
					var cycles uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c, err := op.Run(k)
						if err != nil {
							b.Fatal(err)
						}
						cycles += c
					}
					b.ReportMetric(float64(cycles)/float64(b.N), "kcycles/op")
				})
			}
		})
	}
}

// BenchmarkTable2 regenerates the Table 2 rows: the Phoronix-style macro
// workloads under vanilla and full kR^X.
func BenchmarkTable2(b *testing.B) {
	cfgs := []core.Config{
		core.Vanilla,
		{XOM: core.XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RADecoy, Seed: 2},
		{XOM: core.XOMMPX, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 2},
	}
	for _, w := range bench.Workloads() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for _, cfg := range cfgs {
				cfg := cfg
				b.Run(cfg.Name(), func(b *testing.B) {
					k, err := kernel.Boot(cfg, kernel.WithCache())
					if err != nil {
						b.Fatal(err)
					}
					var cycles uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c, err := w.Txn(k)
						if err != nil {
							b.Fatal(err)
						}
						cycles += c
					}
					b.ReportMetric(float64(cycles)/float64(b.N), "kcycles/op")
				})
			}
		})
	}
}

// BenchmarkFigure1 regenerates the Figure 1 layout rendering.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := figures.Figure1(kas.SectionSizes{}); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2 regenerates the Figure 2 instrumentation phases (the
// complete O0-O3+MPX pipeline on the paper's example routine).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := figures.Figure2(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure3 regenerates the Figure 3 decoy prologues.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := figures.Figure3(); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkKernelBuild measures the full kR^X pipeline (corpus through
// linking and boot) per configuration — the "compile the kernel ten times"
// step of §7.
func BenchmarkKernelBuild(b *testing.B) {
	for _, cfg := range table1Configs {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				if _, err := kernel.Boot(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGadgetScan measures the §7.3 attacker's Galileo-style scan over
// a full kernel image.
func BenchmarkGadgetScan(b *testing.B) {
	k, err := kernel.Boot(core.Vanilla, kernel.WithCache())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if gs := attack.ScanGadgets(k.Img.Text, k.Sym("_text")); len(gs) == 0 {
			b.Fatal("no gadgets")
		}
	}
}

// BenchmarkFuzzIteration measures one fuzzing iteration — snapshot restore
// plus program execution — with the decode cache on and off. Emulated
// cycles are identical in both modes; only host wall-clock moves.
func BenchmarkFuzzIteration(b *testing.B) {
	for _, cacheOn := range []bool{true, false} {
		name := "cache-on"
		if !cacheOn {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			f, err := fuzz.New(fuzz.Options{Iters: 1, Seed: 42, Config: core.Vanilla, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			k, err := f.Kernel()
			if err != nil {
				b.Fatal(err)
			}
			k.CPU.SetDecodeCache(cacheOn)
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := f.ExecIteration(i)
				if err != nil {
					b.Fatal(err)
				}
				cycles += c
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "kcycles/op")
		})
	}
}
