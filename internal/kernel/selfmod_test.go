// Self-modifying-code scenarios for the decode cache, driven through the
// real kernel surfaces that rewrite text at runtime: patch.TextPoke,
// kprobes, livepatching, module load/unload, and Snapshot/Restore. These
// live in an external test package because they need patch and module,
// which import kernel.
package kernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/module"
	"repro/internal/patch"
)

func bootK(t *testing.T) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(core.Vanilla, kernel.WithCache())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// warm drives a syscall through the kernel so the decode cache holds the
// entry path and the target function before the test rewrites text.
func warm(t *testing.T, k *kernel.Kernel) {
	t.Helper()
	if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 1 {
		t.Fatalf("warmup syscall: %v ret=%d", r.Run.Reason, r.Ret)
	}
}

// TestKProbeOnWarmCache plants and removes a 0xCC probe on a function the
// decode cache has already decoded. The plant must trap on the next call;
// the removal must restore the original behaviour.
func TestKProbeOnWarmCache(t *testing.T) {
	k := bootK(t)
	warm(t, k)
	if s := k.CPU.DecodeCacheStats(); s.Hits == 0 {
		t.Fatal("warmup must populate the decode cache")
	}

	orig, addr, err := patch.InstallProbe(k, "sys_getpid")
	if err != nil {
		t.Fatal(err)
	}
	r := k.Syscall(kernel.SysGetpid)
	if !r.Failed || r.Run.Trap == nil || r.Run.Trap.Kind != cpu.TrapBreakpoint {
		t.Fatalf("warm cache served stale bytes: probe did not trap: %v %v", r.Run.Reason, r.Run.Trap)
	}
	if err := patch.RemoveProbe(k, addr, orig); err != nil {
		t.Fatal(err)
	}
	if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 1 {
		t.Fatalf("probe removal not observed: %v ret=%d", r.Run.Reason, r.Ret)
	}
	if s := k.CPU.DecodeCacheStats(); s.Invalidations == 0 {
		t.Error("text pokes must invalidate cached decodes")
	}
}

// TestLivepatchOnWarmCache live-patches a warm function to a module-hosted
// replacement and reverts it; both transitions must be observed.
func TestLivepatchOnWarmCache(t *testing.T) {
	k := bootK(t)
	warm(t, k)

	// A replacement sys_getpid that returns 42.
	v2, err := ir.NewBuilder("sys_getpid_v2").
		I(
			isa.MovRI(isa.RAX, 42),
			isa.Ret(),
		).Func()
	if err != nil {
		t.Fatal(err)
	}
	loader := module.NewLoader(k)
	m, err := loader.Load(&module.Object{
		Name: "getpid-v2",
		Prog: &ir.Program{Funcs: []*ir.Function{v2}},
	})
	if err != nil {
		t.Fatal(err)
	}

	revert, err := patch.Livepatch(k, "sys_getpid", m.Symbols["sys_getpid_v2"])
	if err != nil {
		t.Fatal(err)
	}
	if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 42 {
		t.Fatalf("livepatch not observed (stale decode?): %v ret=%d", r.Run.Reason, r.Ret)
	}
	if err := patch.Revert(k, "sys_getpid", revert); err != nil {
		t.Fatal(err)
	}
	if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 1 {
		t.Fatalf("revert not observed: %v ret=%d", r.Run.Reason, r.Ret)
	}
}

// TestModuleReloadOnWarmCache loads a module, executes it (decoding its
// pages), unloads it, and loads a different module over the same region.
// The second module's code must execute, not the first's cached decodes.
func TestModuleReloadOnWarmCache(t *testing.T) {
	k := bootK(t)
	loader := module.NewLoader(k)

	mk := func(name string, ret int64) *module.Object {
		f, err := ir.NewBuilder(name + "_fn").
			I(
				isa.MovRI(isa.RAX, ret),
				isa.Ret(),
			).Func()
		if err != nil {
			t.Fatal(err)
		}
		return &module.Object{Name: name, Prog: &ir.Program{Funcs: []*ir.Function{f}}}
	}
	call := func(addr uint64) uint64 { return callAddr(t, k, addr) }

	m1, err := loader.Load(mk("mod1", 111))
	if err != nil {
		t.Fatal(err)
	}
	addr1 := m1.Symbols["mod1_fn"]
	if got := call(addr1); got != 111 {
		t.Fatalf("mod1 returned %d, want 111", got)
	}
	if err := loader.Unload("mod1"); err != nil {
		t.Fatal(err)
	}
	m2, err := loader.Load(mk("mod2", 222))
	if err != nil {
		t.Fatal(err)
	}
	addr2 := m2.Symbols["mod2_fn"]
	if addr2 != addr1 {
		t.Logf("loader did not reuse the region (%#x -> %#x); reload still exercised", addr1, addr2)
	}
	if got := call(addr2); got != 222 {
		t.Fatalf("mod2 returned %d, want 222 (stale decode from mod1?)", got)
	}
}

// TestSelfModBlockEngineParity re-runs the text-rewrite ladder — kprobe,
// livepatch, module reload over a warm region, Snapshot/Restore — with the
// superblock engine (and its chaining) on and off, requiring identical
// syscall returns and identical Instrs/Cycles — and proving the engine was
// actually in the loop: the warm path dispatches AND chains through blocks,
// and every text rewrite invalidates cached blocks mid-flight.
func TestSelfModBlockEngineParity(t *testing.T) {
	run := func(blocksOn bool) (rets []uint64, instrs, cycles uint64, bs cpu.BlockStats) {
		k := bootK(t)
		k.CPU.SetBlockEngine(blocksOn)
		// Form on first dispatch so a single pass over each rewritten path
		// exercises the engine deterministically.
		k.CPU.SetBlockHotThreshold(1)
		warm(t, k)

		// kprobe plant + remove.
		orig, addr, err := patch.InstallProbe(k, "sys_getpid")
		if err != nil {
			t.Fatal(err)
		}
		r := k.Syscall(kernel.SysGetpid)
		if !r.Failed || r.Run.Trap == nil || r.Run.Trap.Kind != cpu.TrapBreakpoint {
			t.Fatalf("blocks=%v: probe did not trap: %v %v", blocksOn, r.Run.Reason, r.Run.Trap)
		}
		if err := patch.RemoveProbe(k, addr, orig); err != nil {
			t.Fatal(err)
		}
		rets = append(rets, k.Syscall(kernel.SysGetpid).Ret)

		// livepatch + revert through a loaded module.
		v2, err := ir.NewBuilder("sys_getpid_v2").
			I(isa.MovRI(isa.RAX, 42), isa.Ret()).Func()
		if err != nil {
			t.Fatal(err)
		}
		loader := module.NewLoader(k)
		m, err := loader.Load(&module.Object{
			Name: "getpid-v2",
			Prog: &ir.Program{Funcs: []*ir.Function{v2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		revert, err := patch.Livepatch(k, "sys_getpid", m.Symbols["sys_getpid_v2"])
		if err != nil {
			t.Fatal(err)
		}
		rets = append(rets, k.Syscall(kernel.SysGetpid).Ret)
		if err := patch.Revert(k, "sys_getpid", revert); err != nil {
			t.Fatal(err)
		}
		rets = append(rets, k.Syscall(kernel.SysGetpid).Ret)

		// Module reload over the warm region: mod2's code must execute, not
		// mod1's cached blocks (or a stale chain link into them).
		mkMod := func(name string, ret int64) *module.Object {
			f, err := ir.NewBuilder(name + "_fn").
				I(isa.MovRI(isa.RAX, ret), isa.Ret()).Func()
			if err != nil {
				t.Fatal(err)
			}
			return &module.Object{Name: name, Prog: &ir.Program{Funcs: []*ir.Function{f}}}
		}
		m1, err := loader.Load(mkMod("mod1", 111))
		if err != nil {
			t.Fatal(err)
		}
		rets = append(rets, callAddr(t, k, m1.Symbols["mod1_fn"]))
		if err := loader.Unload("mod1"); err != nil {
			t.Fatal(err)
		}
		m2, err := loader.Load(mkMod("mod2", 222))
		if err != nil {
			t.Fatal(err)
		}
		rets = append(rets, callAddr(t, k, m2.Symbols["mod2_fn"]))

		// Snapshot/Restore: rollback bumps the map generation, so every
		// cached chain link severs and re-validates; the restored machine
		// must behave exactly like the snapshot.
		snap := k.Snapshot()
		rets = append(rets, k.Syscall(kernel.SysGetpid).Ret)
		if err := k.Restore(snap); err != nil {
			t.Fatal(err)
		}
		rets = append(rets, k.Syscall(kernel.SysGetpid).Ret)
		return rets, k.CPU.Instrs, k.CPU.Cycles, k.CPU.BlockStats()
	}

	retsOn, iOn, cOn, bsOn := run(true)
	retsOff, iOff, cOff, bsOff := run(false)
	want := []uint64{1, 42, 1, 111, 222, 1, 1}
	for i := range want {
		if retsOn[i] != want[i] || retsOff[i] != want[i] {
			t.Fatalf("returns diverge: on=%v off=%v want %v", retsOn, retsOff, want)
		}
	}
	if iOn != iOff || cOn != cOff {
		t.Errorf("counters diverge: instrs %d/%d cycles %d/%d", iOn, iOff, cOn, cOff)
	}
	if bsOn.Dispatches == 0 || bsOn.Instrs == 0 {
		t.Errorf("blocks=on must dispatch through the engine: %+v", bsOn)
	}
	if bsOn.Chained == 0 {
		t.Errorf("the syscall path must chain block-to-block: %+v", bsOn)
	}
	if bsOff.Dispatches != 0 || bsOff.Chained != 0 {
		t.Errorf("blocks=off must not dispatch: %+v", bsOff)
	}
}

// callAddr calls a kernel address directly on the CPU with a sentinel
// return address and returns RAX.
func callAddr(t *testing.T, k *kernel.Kernel, addr uint64) uint64 {
	t.Helper()
	c := k.CPU
	c.Mode = cpu.Kernel
	sp := c.KernelStackTop - 16
	if f := c.AS.Write(sp, cpu.StopMagic, 8); f != nil {
		t.Fatal(f)
	}
	c.Regs[isa.RSP] = sp
	c.RIP = addr
	res := c.Run(10000)
	if res.Reason != cpu.StopReturn {
		t.Fatalf("call to %#x: %v trap=%v", addr, res.Reason, res.Trap)
	}
	return c.Reg(isa.RAX)
}

// TestSnapshotRestoreWarmCache: after Restore, re-running the same syscall
// must cost exactly the same emulated cycles — the decode cache must not
// leak state (or stale decodes) across rollback boundaries. Text poked
// between snapshot and restore must be rolled back both in bytes and in
// observed behaviour.
func TestSnapshotRestoreWarmCache(t *testing.T) {
	k := bootK(t)
	warm(t, k)

	snap := k.Snapshot()
	var cycles []uint64
	for i := 0; i < 3; i++ {
		before := k.CPU.Cycles
		if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 1 {
			t.Fatalf("iter %d: %v ret=%d", i, r.Run.Reason, r.Ret)
		}
		cycles = append(cycles, k.CPU.Cycles-before)

		// Dirty the text before restoring: plant a probe mid-iteration.
		if _, _, err := patch.InstallProbe(k, "sys_getpid"); err != nil {
			t.Fatal(err)
		}
		if err := k.Restore(snap); err != nil {
			t.Fatal(err)
		}
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Fatalf("restored iterations diverge in cycles: %v", cycles)
	}
	// After the final restore the probe must be gone.
	if r := k.Syscall(kernel.SysGetpid); r.Failed || r.Ret != 1 {
		t.Fatalf("restore did not undo the probe: %v %v", r.Run.Reason, r.Run.Trap)
	}
}
