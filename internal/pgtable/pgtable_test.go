package pgtable

import (
	"testing"
	"testing/quick"
)

func TestLarge2_4kPreservesXD(t *testing.T) {
	flags := FlagPresent | FlagWrite | FlagPSE | FlagXD
	got := Large2_4k(flags)
	if got&FlagXD == 0 {
		t.Fatal("fixed conversion must preserve the XD bit")
	}
	if got&FlagPSE != 0 {
		t.Fatal("4KB flags must not carry PSE")
	}
}

func TestAppendixABugReproduced(t *testing.T) {
	// The W^X violation from Appendix A: a writable, non-executable 2MB
	// page split through the buggy routine yields WRITABLE+EXECUTABLE
	// 4KB flags (XD cleared by the 32-bit truncation).
	flags := FlagPresent | FlagWrite | FlagPSE | FlagXD
	buggy := BuggyLarge2_4k(flags)
	if buggy&FlagXD != 0 {
		t.Fatal("the buggy routine should drop XD — otherwise it is not the bug")
	}
	if buggy&FlagWrite == 0 || buggy&FlagPresent == 0 {
		t.Fatal("lower flag bits must survive the truncation")
	}
	// And the fixed routine differs exactly in the high bits.
	if Large2_4k(flags)&^FlagXD != buggy&^FlagXD {
		t.Fatal("fixed and buggy routines must agree below bit 32")
	}
}

func TestPATBitMigration(t *testing.T) {
	// 2MB PAT (bit 12) becomes 4KB PAT (bit 7) and back.
	large := FlagPresent | FlagPSE | FlagPATLarge
	small := Large2_4k(large)
	if small&FlagPAT4K == 0 {
		t.Fatal("PAT bit must move to bit 7")
	}
	back := Small4k_2Large(small)
	if back&FlagPATLarge == 0 || back&FlagPSE == 0 {
		t.Fatal("PAT bit must move back to bit 12 with PSE set")
	}
}

func TestQuickConversionRoundTrip(t *testing.T) {
	// Property: converting 2MB->4KB->2MB preserves all flags.
	f := func(raw uint64) bool {
		// In large entries bit 7 is PSE (there is no 4K PAT bit), and the
		// large PAT bit (12) lives outside the flag mask.
		flags := (raw & FlagsMask) | FlagPSE
		return Small4k_2Large(Large2_4k(flags)) == flags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	large := Make(0x40000000, FlagPresent|FlagWrite|FlagPSE|FlagXD)
	small := Split(large)
	if len(small) != 512 {
		t.Fatalf("split produced %d entries", len(small))
	}
	for i, e := range small {
		if !e.NX() {
			t.Fatalf("entry %d lost XD after split", i)
		}
		if e.Large() {
			t.Fatalf("entry %d still marked PSE", i)
		}
		if e.Addr() != 0x40000000+uint64(i)*4096 {
			t.Fatalf("entry %d wrong address %#x", i, e.Addr())
		}
	}
	merged, ok := Coalesce(small)
	if !ok {
		t.Fatal("contiguous identical entries must coalesce")
	}
	if merged != large {
		t.Fatalf("coalesce round trip: %#x != %#x", merged, large)
	}
}

func TestCoalesceRejectsMixedFlags(t *testing.T) {
	large := Make(0x40000000, FlagPresent|FlagPSE)
	small := Split(large)
	small[7] = Entry(uint64(small[7]) | FlagXD)
	if _, ok := Coalesce(small); ok {
		t.Fatal("mixed flags must not coalesce")
	}
	// Misaligned base.
	s2 := Split(Make(0x40000000, FlagPresent|FlagPSE))
	for i := range s2 {
		s2[i] = Make(s2[i].Addr()+4096, s2[i].Flags())
	}
	if _, ok := Coalesce(s2); ok {
		t.Fatal("misaligned run must not coalesce")
	}
	if _, ok := Coalesce(s2[:100]); ok {
		t.Fatal("short run must not coalesce")
	}
}

func TestModuleFitsSanityCheck(t *testing.T) {
	if !ModuleFits(4096) || ModuleFits(ModulesLen+1) {
		t.Fatal("fixed check misbehaves")
	}
	// The Appendix A bug: the complemented bound never rejects anything
	// realistic.
	if !BuggyModuleFits(ModulesLen + 1) {
		t.Fatal("the buggy check should (wrongly) accept oversized modules")
	}
	if !BuggyModuleFits(2 << 30) {
		t.Fatal("the buggy check accepts wildly oversized modules — that is the bug")
	}
}
