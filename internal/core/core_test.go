package core

import (
	"testing"

	"repro/internal/diversify"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/sfi"
)

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "Vanilla"},
		{Config{XOM: XOMSFI, SFILevel: sfi.O0}, "SFI(-O0)"},
		{Config{XOM: XOMSFI, SFILevel: sfi.O3}, "SFI"},
		{Config{XOM: XOMMPX}, "MPX"},
		{Config{XOM: XOMEPT}, "EPT"},
		{Config{Diversify: true}, "FG"},
		{Config{Diversify: true, RAProt: diversify.RAEncrypt}, "X"},
		{Config{Diversify: true, RAProt: diversify.RADecoy}, "D"},
		{Config{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt}, "SFI+X"},
		{Config{XOM: XOMMPX, Diversify: true, RAProt: diversify.RADecoy}, "MPX+D"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestConfigLayoutSelection(t *testing.T) {
	if (Config{}).Layout() != kas.Vanilla {
		t.Error("vanilla config must use the vanilla layout")
	}
	for _, cfg := range []Config{
		{XOM: XOMSFI}, {XOM: XOMMPX}, {XOM: XOMEPT}, {XOM: XOMHideM}, {Diversify: true},
	} {
		if cfg.Layout() != kas.KRX {
			t.Errorf("%s must use kR^X-KAS", cfg.Name())
		}
	}
}

func TestPresetsCoverTheEvaluation(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Presets() {
		names[p.Name()] = true
	}
	for _, want := range []string{
		"Vanilla", "SFI(-O0)", "SFI(-O1)", "SFI(-O2)", "SFI", "MPX",
		"D", "X", "SFI+D", "SFI+X", "MPX+D", "MPX+X",
	} {
		if !names[want] {
			t.Errorf("preset %q missing", want)
		}
	}
}

func miniProg(t *testing.T) *ir.Program {
	t.Helper()
	handler, err := ir.NewBuilder("krx_handler").I(isa.Hlt()).Func()
	if err != nil {
		t.Fatal(err)
	}
	handler.NoInstrument, handler.NoDiversify = true, true
	f, err := ir.NewBuilder("f").
		I(isa.Load(isa.RAX, isa.Mem(isa.RSI, 8)), isa.Ret()).
		Func()
	if err != nil {
		t.Fatal(err)
	}
	return &ir.Program{Funcs: []*ir.Function{f, handler}}
}

func TestBuildDoesNotMutateSource(t *testing.T) {
	src := miniProg(t)
	before := src.Funcs[0].String()
	if _, err := Build(src, Config{XOM: XOMSFI, SFILevel: sfi.O3, Diversify: true, RAProt: diversify.RAEncrypt, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if src.Funcs[0].String() != before {
		t.Fatal("Build must operate on a clone")
	}
}

func TestBuildFullCoverageLiftsStubExemption(t *testing.T) {
	src := miniProg(t)
	stub, err := ir.NewBuilder("entry_stub").
		I(isa.Load(isa.RAX, isa.Mem(isa.RBX, 0)), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	stub.NoInstrument = true
	clone, err := ir.NewBuilder("memcpy_krx").
		I(isa.Load(isa.RAX, isa.Mem(isa.RDI, 0)), isa.Ret()).Func()
	if err != nil {
		t.Fatal(err)
	}
	clone.NoInstrument, clone.AccessorClone = true, true
	src.Funcs = append(src.Funcs, stub, clone)

	plain, err := Build(src, Config{XOM: XOMSFI, SFILevel: sfi.O3})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(src, Config{XOM: XOMSFI, SFILevel: sfi.O3, FullCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.SFIStats.ReadsTotal != plain.SFIStats.ReadsTotal+1 {
		t.Fatalf("full coverage must pick up exactly the stub's read: %d vs %d",
			full.SFIStats.ReadsTotal, plain.SFIStats.ReadsTotal)
	}
	// The clone stays exempt in both.
	if cf := full.Prog.Func("memcpy_krx"); cf.NumInstrs() != 2 {
		t.Fatal("accessor clone must stay uninstrumented under full coverage")
	}
}

func TestKASLRSlideDeterministicPerSeed(t *testing.T) {
	a1, err := Build(miniProg(t), Config{KASLR: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Build(miniProg(t), Config{KASLR: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(miniProg(t), Config{KASLR: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Image.Symbols["_text"] != a2.Image.Symbols["_text"] {
		t.Error("same seed must give the same slide")
	}
	if a1.Image.Symbols["_text"] == b.Image.Symbols["_text"] {
		t.Error("different seeds should slide differently (w.h.p.)")
	}
	slide := a1.Image.Symbols["_sdata"] - kas.KernelBase
	if slide >= kas.MaxSlide || slide%4096 != 0 {
		t.Errorf("slide %#x out of spec", slide)
	}
}
