package isa

import (
	"fmt"
	"strings"
)

// MemRef is a memory operand: base + index*scale + disp, optionally
// %rip-relative, optionally referring to a link-time symbol. A MemRef with
// neither base nor index and RIPRel=false is absolute addressing (disp32,
// sign-extended, reaching the negative 2GB of the address space exactly like
// -mcmodel=kernel on x86-64).
type MemRef struct {
	Base   Reg   // NoReg if absent
	Index  Reg   // NoReg if absent
	Scale  uint8 // 1, 2, 4, or 8 (ignored when Index == NoReg)
	Disp   int32 // displacement
	RIPRel bool  // %rip-relative addressing

	// Sym, if non-empty, names a symbol whose address is added to Disp at
	// link time. After linking, Sym is cleared and Disp holds the final
	// value (for RIP-relative and absolute references).
	Sym string
}

// HasBase reports whether the reference uses a base register.
func (m MemRef) HasBase() bool { return m.Base != NoReg }

// HasIndex reports whether the reference uses an index register.
func (m MemRef) HasIndex() bool { return m.Index != NoReg }

// IsSafe reports whether a read through this reference is a "safe read" in
// the kR^X sense: its effective address is encoded entirely within the
// instruction (absolute or %rip-relative) and cannot be influenced at
// runtime, so no range check is required (W^X protects the instruction
// bytes themselves).
func (m MemRef) IsSafe() bool { return !m.HasBase() && !m.HasIndex() }

// String renders the reference in AT&T syntax.
func (m MemRef) String() string {
	var sb strings.Builder
	if m.Sym != "" {
		sb.WriteString(m.Sym)
		if m.Disp > 0 {
			fmt.Fprintf(&sb, "+0x%x", m.Disp)
		} else if m.Disp < 0 {
			fmt.Fprintf(&sb, "-0x%x", -m.Disp)
		}
	} else if m.Disp != 0 || m.IsSafe() {
		if m.Disp < 0 {
			fmt.Fprintf(&sb, "-0x%x", uint32(-m.Disp))
		} else {
			fmt.Fprintf(&sb, "0x%x", uint32(m.Disp))
		}
	}
	if m.RIPRel {
		sb.WriteString("(%rip)")
		return sb.String()
	}
	if m.HasBase() || m.HasIndex() {
		sb.WriteByte('(')
		if m.HasBase() {
			sb.WriteByte('%')
			sb.WriteString(m.Base.String())
		}
		if m.HasIndex() {
			fmt.Fprintf(&sb, ",%%%s,%d", m.Index, m.Scale)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Mem constructs a base+disp memory reference.
func Mem(base Reg, disp int32) MemRef {
	return MemRef{Base: base, Index: NoReg, Scale: 1, Disp: disp}
}

// MemIdx constructs a base+index*scale+disp memory reference.
func MemIdx(base, index Reg, scale uint8, disp int32) MemRef {
	return MemRef{Base: base, Index: index, Scale: scale, Disp: disp}
}

// MemRIP constructs a %rip-relative reference to sym+disp.
func MemRIP(sym string, disp int32) MemRef {
	return MemRef{Base: NoReg, Index: NoReg, Scale: 1, RIPRel: true, Sym: sym, Disp: disp}
}

// MemAbs constructs an absolute reference to sym+disp.
func MemAbs(sym string, disp int32) MemRef {
	return MemRef{Base: NoReg, Index: NoReg, Scale: 1, Sym: sym, Disp: disp}
}

// StrFlags carries the modifiers of a string instruction.
type StrFlags uint8

// String-instruction flag bits.
const (
	StrRep StrFlags = 1 << 0 // REP/REPE prefix: repeat %rcx times
	// Width is stored in bits 2-3 as log2(bytes): 0=1, 1=2, 2=4, 3=8.
)

// StrWidth returns the element width in bytes (1, 2, 4, or 8).
func (f StrFlags) Width() uint8 { return 1 << ((f >> 2) & 3) }

// Rep reports whether the REP prefix is present.
func (f StrFlags) Rep() bool { return f&StrRep != 0 }

// MakeStrFlags builds string-instruction flags from a width in bytes and a
// REP prefix indicator.
func MakeStrFlags(width uint8, rep bool) StrFlags {
	var l2 uint8
	switch width {
	case 1:
		l2 = 0
	case 2:
		l2 = 1
	case 4:
		l2 = 2
	default:
		l2 = 3
	}
	f := StrFlags(l2 << 2)
	if rep {
		f |= StrRep
	}
	return f
}

// Instr is one KX64 instruction. Depending on the opcode format, a subset
// of the fields is meaningful. Before assembly, control-transfer targets may
// be symbolic (Label for intra-function branches, Sym for inter-function
// calls/jumps); the assembler resolves them to rel32 displacements.
type Instr struct {
	Op   Opcode
	Dst  Reg    // destination register (fmtReg*, fmtMemReg source reg)
	Src  Reg    // source register (fmtRegReg)
	Imm  int64  // immediate value
	M    MemRef // memory operand
	CC   Cond   // condition (JCC)
	SF   StrFlags
	Bnd  BndReg // bound register (MPX formats)
	Size uint8  // memory access width in bytes (1,2,4,8); 0 means 8

	// Label is a symbolic intra-function branch target (JMP/JCC); resolved
	// by the assembler.
	Label string
	// Sym is a symbolic call/jump target or immediate symbol reference.
	// For MOVri it requests imm = address of Sym (+Imm as addend). For
	// CMPri with SymNeg, imm = address of Sym - Imm (the O2-eliminated
	// range-check form "cmp $(_krx_edata-disp), %reg").
	Sym string
	// SymNeg, with Sym set on an immediate-format instruction, requests
	// imm = Sym - Imm instead of Sym + Imm.
	SymNeg bool

	// TripSym/TripOff request imm = address of label TripSym + TripOff
	// bytes for MOVri: used by the return-address decoy scheme to point a
	// register into the middle of a phantom instruction (the tripwire).
	TripSym string
	TripOff int32
}

// AccessSize returns the memory access width in bytes.
func (in Instr) AccessSize() uint8 {
	if in.Size == 0 {
		return 8
	}
	return in.Size
}

// ReadsMemory reports whether executing the instruction loads from a
// data memory address (stack pushes/pops excluded; those are classified
// separately because kR^X handles %rsp-relative accesses via the guard
// section).
func (in Instr) ReadsMemory() bool {
	switch in.Op {
	case MOVrm, ADDrm, SUBrm, XORrm, CMPrm, CMPmi, XORmr, CALLM, JMPM:
		return true
	case MOVS, LODS, CMPS, SCAS:
		return true
	}
	return false
}

// WritesMemory reports whether the instruction stores to a data memory
// address (again excluding push/call return-address pushes).
func (in Instr) WritesMemory() bool {
	switch in.Op {
	case MOVmr, MOVmi, XORmr, MOVS, STOS:
		return true
	}
	return false
}

// MemOperand returns a pointer to the instruction's explicit memory operand,
// or nil if the format has none. String operations access memory implicitly
// through %rsi/%rdi and return nil here.
func (in *Instr) MemOperand() *MemRef {
	switch in.Op.Format() {
	case fmtRegMem, fmtMemReg, fmtMemImm32, fmtMem, fmtBndMem:
		return &in.M
	}
	return nil
}

// WritesFlags reports whether the instruction overwrites %rflags status
// bits. %rflags is tracked as a single unit (matching the paper's
// over-preserving O1 analysis).
func (in Instr) WritesFlags() bool {
	switch in.Op {
	case ADDri, ADDrr, ADDrm, SUBri, SUBrr, SUBrm, ANDri, ANDrr,
		ORri, ORrr, XORri, XORrr, XORrm, XORmr, SHLri, SHRri, SARri,
		NEGr, IMULrr, IMULri, CMPri, CMPrr, CMPrm, CMPmi,
		TESTrr, TESTri, INCr, DECr, CMPS, SCAS, POPFQ, CLD, STD, IRET:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction reads the arithmetic status
// flags — the bits a range-check cmp clobbers. String operations read only
// the direction flag, which cmp never modifies, so they do not extend the
// liveness region for the O1 analysis.
func (in Instr) ReadsFlags() bool {
	switch in.Op {
	case JCC, PUSHFQ:
		return true
	}
	return false
}

// RegsRead appends to dst the general-purpose registers whose values the
// instruction reads, and returns the extended slice.
func (in Instr) RegsRead(dst []Reg) []Reg {
	addMem := func() {
		if m := in.MemOperand(); m != nil {
			if m.HasBase() {
				dst = append(dst, m.Base)
			}
			if m.HasIndex() {
				dst = append(dst, m.Index)
			}
		}
	}
	switch in.Op.Format() {
	case fmtReg:
		switch in.Op {
		case PUSH, CALLR, JMPR, NOTr, NEGr, INCr, DECr:
			dst = append(dst, in.Dst)
		}
		if in.Op == PUSH || in.Op == POP {
			dst = append(dst, RSP)
		}
	case fmtRegImm64:
		// pure write
	case fmtRegImm32, fmtRegImm8:
		if in.Op != MOVri {
			dst = append(dst, in.Dst)
		}
	case fmtRegReg:
		dst = append(dst, in.Src)
		if in.Op != MOVrr {
			dst = append(dst, in.Dst)
		}
	case fmtRegMem:
		addMem()
		if in.Op != MOVrm && in.Op != LEA {
			dst = append(dst, in.Dst)
		}
	case fmtMemReg:
		addMem()
		dst = append(dst, in.Dst)
	case fmtMemImm32, fmtMem:
		addMem()
	case fmtBndMem:
		addMem()
	case fmtString:
		switch in.Op {
		case MOVS, CMPS:
			dst = append(dst, RSI, RDI)
		case STOS, SCAS:
			dst = append(dst, RDI, RAX)
		case LODS:
			dst = append(dst, RSI)
		}
		if in.SF.Rep() {
			dst = append(dst, RCX)
		}
	}
	switch in.Op {
	case PUSHFQ, POPFQ, RET, RETI:
		dst = append(dst, RSP)
	}
	return dst
}

// RegsWritten appends to dst the general-purpose registers the instruction
// overwrites, and returns the extended slice.
func (in Instr) RegsWritten(dst []Reg) []Reg {
	switch in.Op.Format() {
	case fmtReg:
		switch in.Op {
		case POP, NOTr, NEGr, INCr, DECr:
			dst = append(dst, in.Dst)
		}
		if in.Op == PUSH || in.Op == POP {
			dst = append(dst, RSP)
		}
	case fmtRegImm64, fmtRegImm32, fmtRegImm8:
		if in.Op != TESTri && in.Op != CMPri {
			dst = append(dst, in.Dst)
		}
	case fmtRegReg:
		if in.Op != TESTrr && in.Op != CMPrr {
			dst = append(dst, in.Dst)
		}
	case fmtRegMem:
		if in.Op != CMPrm && in.Op != BNDCU && in.Op != BNDCL {
			dst = append(dst, in.Dst)
		}
	case fmtString:
		switch in.Op {
		case MOVS, CMPS:
			dst = append(dst, RSI, RDI)
		case STOS, SCAS:
			dst = append(dst, RDI)
		case LODS:
			dst = append(dst, RSI, RAX)
		}
		if in.SF.Rep() {
			dst = append(dst, RCX)
		}
	}
	switch in.Op {
	case PUSHFQ, POPFQ, RET, RETI, CALL, CALLR, CALLM:
		dst = append(dst, RSP)
	case SYSCALL:
		dst = append(dst, RCX, R11)
	case RDMSR:
		dst = append(dst, RAX, RDX)
	}
	return dst
}

// IsTerminator reports whether the instruction ends a basic block.
func (in Instr) IsTerminator() bool {
	switch in.Op {
	case JMP, JMPR, JMPM, JCC, RET, RETI, IRET, SYSRET, HLT, UD2:
		return true
	}
	return false
}

// IsCall reports whether the instruction is any flavour of call.
func (in Instr) IsCall() bool {
	return in.Op == CALL || in.Op == CALLR || in.Op == CALLM
}

// String renders the instruction in AT&T-flavoured assembly.
func (in Instr) String() string {
	name := in.Op.Name()
	switch in.Op.Format() {
	case fmtNone:
		return name
	case fmtReg:
		switch in.Op {
		case CALLR:
			return fmt.Sprintf("callq *%%%s", in.Dst)
		case JMPR:
			return fmt.Sprintf("jmp *%%%s", in.Dst)
		}
		return fmt.Sprintf("%s %%%s", name, in.Dst)
	case fmtRegImm64:
		if in.TripSym != "" {
			return fmt.Sprintf("%s $%s+%d, %%%s", name, in.TripSym, in.TripOff, in.Dst)
		}
		if in.Sym != "" {
			return fmt.Sprintf("%s $%s, %%%s", name, in.Sym, in.Dst)
		}
		return fmt.Sprintf("%s $0x%x, %%%s", name, uint64(in.Imm), in.Dst)
	case fmtRegImm32, fmtRegImm8:
		if in.Sym != "" {
			switch {
			case in.SymNeg:
				return fmt.Sprintf("%s $(%s-0x%x), %%%s", name, in.Sym, in.Imm, in.Dst)
			case in.Imm == 0:
				return fmt.Sprintf("%s $%s, %%%s", name, in.Sym, in.Dst)
			default:
				return fmt.Sprintf("%s $%s+0x%x, %%%s", name, in.Sym, in.Imm, in.Dst)
			}
		}
		return fmt.Sprintf("%s $0x%x, %%%s", name, uint64(in.Imm), in.Dst)
	case fmtRegReg:
		return fmt.Sprintf("%s %%%s, %%%s", name, in.Src, in.Dst)
	case fmtRegMem:
		return fmt.Sprintf("%s %s, %%%s", name, in.M, in.Dst)
	case fmtMemReg:
		return fmt.Sprintf("%s %%%s, %s", name, in.Dst, in.M)
	case fmtMemImm32:
		return fmt.Sprintf("%s $0x%x, %s", name, uint64(in.Imm), in.M)
	case fmtMem:
		if in.Op == CALLM {
			return fmt.Sprintf("callq *%s", in.M)
		}
		if in.Op == JMPM {
			return fmt.Sprintf("jmp *%s", in.M)
		}
		return fmt.Sprintf("%s %s", name, in.M)
	case fmtRel32:
		target := in.Label
		if target == "" {
			target = in.Sym
		}
		if target == "" {
			target = fmt.Sprintf(".%+d", in.Imm)
		}
		return fmt.Sprintf("%s %s", name, target)
	case fmtCondRel32:
		target := in.Label
		if target == "" {
			target = in.Sym
		}
		if target == "" {
			target = fmt.Sprintf(".%+d", in.Imm)
		}
		return fmt.Sprintf("j%s %s", in.CC, target)
	case fmtImm16:
		return fmt.Sprintf("retq $0x%x", uint64(in.Imm))
	case fmtString:
		prefix := ""
		if in.SF.Rep() {
			prefix = "rep "
		}
		suffix := map[uint8]string{1: "b", 2: "w", 4: "l", 8: "q"}[in.SF.Width()]
		return prefix + name + suffix
	case fmtBndMem:
		return fmt.Sprintf("%s %s, %%%s", name, in.M, in.Bnd)
	}
	return name
}
