// Command krximage builds kernel images to disk and inspects them — the
// simulation's equivalent of producing and examining a vmlinux. The saved
// artifact is also the starting point of the offline attacker workflow
// (direct ROP chains are precomputed against the distribution image).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/kernel"
	"repro/internal/link"
	"repro/internal/sfi"
)

func main() {
	var (
		out     = flag.String("o", "", "build the kernel corpus and write the image here")
		inspect = flag.String("inspect", "", "print the contents of an image file")
		gadgets = flag.Bool("gadgets", false, "with -inspect: scan the image for gadgets")
		disasm  = flag.String("disasm", "", "with -inspect: disassemble the named function")
		zip     = flag.Bool("z", false, "with -o: write the compressed (vmlinuz-style) container")
		xom     = flag.String("xom", "sfi", "R^X mode: none|sfi|mpx|ept")
		level   = flag.Int("O", 3, "SFI optimization level")
		divers  = flag.Bool("diversify", true, "apply fine-grained KASLR")
		raprot  = flag.String("ra", "x", "return-address protection: none|x|d")
		seed    = flag.Int64("seed", 1, "diversification seed")
	)
	flag.Parse()
	switch {
	case *out != "":
		if err := build(*out, *xom, *level, *divers, *raprot, *seed, *zip); err != nil {
			fmt.Fprintln(os.Stderr, "krximage:", err)
			os.Exit(1)
		}
	case *inspect != "":
		if err := dump(*inspect, *gadgets, *disasm); err != nil {
			fmt.Fprintln(os.Stderr, "krximage:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func build(path, xom string, level int, divers bool, raprot string, seed int64, zip bool) error {
	cfg := core.Config{Seed: seed, Diversify: divers}
	switch xom {
	case "sfi":
		cfg.XOM, cfg.SFILevel = core.XOMSFI, sfi.Level(level)
	case "mpx":
		cfg.XOM = core.XOMMPX
	case "ept":
		cfg.XOM = core.XOMEPT
	case "none":
	default:
		return fmt.Errorf("unknown -xom %q", xom)
	}
	switch raprot {
	case "x":
		cfg.RAProt = diversify.RAEncrypt
	case "d":
		cfg.RAProt = diversify.RADecoy
	case "none":
	default:
		return fmt.Errorf("unknown -ra %q", raprot)
	}
	prog, err := kernel.BuildCorpus()
	if err != nil {
		return err
	}
	res, err := core.Build(prog, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	write := res.Image.WriteImage
	if zip {
		write = res.Image.WriteCompressedImage
	}
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s, %d functions, %d bytes .text\n",
		path, cfg.Name(), len(res.Image.Funcs), len(res.Image.Text))
	return nil
}

func dump(path string, gadgets bool, disasm string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	img, err := link.ReadCompressedImage(f)
	if err != nil {
		return err
	}
	if disasm != "" {
		out, err := img.DisassembleFunc(disasm)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	fmt.Printf("layout: %s, guard %#x\n", img.Layout.Kind, img.Layout.GuardSize)
	fmt.Printf("sections: .text %d  .rodata %d  .data %d  .bss %d\n",
		len(img.Text), len(img.Rodata), len(img.Data), img.BssSize)
	fmt.Printf("functions: %d, xkeys: %d, symbols: %d\n", len(img.Funcs), img.NumKeys, len(img.Symbols))
	funcs := append([]link.FuncSym(nil), img.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Addr < funcs[j].Addr })
	for i, fs := range funcs {
		if i >= 12 {
			fmt.Printf("  ... %d more\n", len(funcs)-i)
			break
		}
		fmt.Printf("  %#016x +%-6d %s\n", fs.Addr, fs.Size, fs.Name)
	}
	if gadgets {
		gs := attack.ScanGadgets(img.Text, img.Symbols["_text"])
		fmt.Printf("gadgets: %d ret-terminated sequences\n", len(gs))
		for i, g := range gs {
			if i >= 8 {
				fmt.Printf("  ... %d more\n", len(gs)-i)
				break
			}
			fmt.Printf("  %#016x  %s\n", g.Addr, g)
		}
	}
	return nil
}
