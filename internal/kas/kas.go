// Package kas models the x86-64 Linux kernel address space and the kR^X-KAS
// layout of Figure 1. The vanilla layout interleaves code and data (kernel
// image .text first, then data sections; per-module .text next to its
// .data). kR^X-KAS rearranges sections so that all code lives in a single
// contiguous region at the top of the address space and everything below
// _krx_edata is data:
//
//	vanilla x86-64                     kR^X x86-64
//	------------------                 ------------------
//	fixmap area                        fixmap area
//	modules (text+data mixed)          modules_data
//	                                   modules_text        \
//	kernel .text                       kernel .text          | code (X)
//	kernel .rodata                     .krx_phantom (guard) /
//	kernel .data/.bss/.brk             kernel .rodata/.data/.bss/.brk
//	vmemmap space                      vmemmap space
//	vmalloc arena                      vmalloc arena
//	physmap                            physmap (code synonyms unmapped)
//
// (In the scaled simulation the code region sits immediately above the
// kernel image's data sections, separated by the .krx_phantom guard; module
// text is placed in modules_text inside the code region.)
package kas

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Virtual-address constants (x86-64 Linux, upper canonical half).
const (
	// PhysmapBase is the base of the direct physical mapping (physmap).
	PhysmapBase uint64 = 0xffff880000000000
	// VmallocBase is the base of the vmalloc arena.
	VmallocBase uint64 = 0xffffc90000000000
	// VmemmapBase is the base of the vmemmap space.
	VmemmapBase uint64 = 0xffffea0000000000
	// KernelBase is __START_KERNEL_map, where the kernel image is mapped.
	KernelBase uint64 = 0xffffffff80000000
	// ModulesBase is the start of the modules area.
	ModulesBase uint64 = 0xffffffffa0000000
	// FixmapBase is the base of the fixmap area (top of the usable space).
	FixmapBase uint64 = 0xffffffffff578000

	// ModulesTextSize and ModulesDataSize are the defaults for the two
	// kR^X module regions: the original modules area divided in two
	// equally-sized parts (sizeof(modules)/2 each; the paper's default is
	// 512MB — the simulation reserves the virtual span but maps on
	// demand).
	ModulesTextSize uint64 = 512 << 20
	ModulesDataSize uint64 = 512 << 20

	// DefaultGuardSize is the size of the .krx_phantom guard section
	// placed between _krx_edata and _text. It must exceed the maximum
	// static offset of any uninstrumented %rsp-based memory read
	// (see sfi.MaxStackDisp).
	DefaultGuardSize uint64 = 64 << 10
)

// kR^X-KAS pushes fixmap towards lower addresses (§5.1.1) — below the
// kernel image — so that everything above _krx_edata is code: the single
// upper-bound range check must never reject a legitimate data read.
// modules_data sits right below the relocated fixmap.
const (
	KRXFixmapBase      = KernelBase - (16 << 20)
	KRXModulesDataBase = KRXFixmapBase - ModulesDataSize
)

// SectionSizes describes the section byte sizes of a linked kernel image.
type SectionSizes struct {
	Text    uint64 // .text (+ code-region sections such as .krxkeys)
	KrxKeys uint64 // .krxkeys (inside the code region, NX)
	Rodata  uint64
	Data    uint64
	Bss     uint64
	Brk     uint64
}

// Kind distinguishes the two supported layouts.
type Kind int

// Layout kinds.
const (
	Vanilla Kind = iota
	KRX
)

func (k Kind) String() string {
	if k == KRX {
		return "kR^X-KAS"
	}
	return "vanilla"
}

// Region is one placed section or area.
type Region struct {
	Name  string
	Start uint64
	Size  uint64 // mapped size, page-rounded
	Perm  mem.Perm
	Code  bool // lives in the code (execute) region of kR^X-KAS
}

// End returns the exclusive end address.
func (r Region) End() uint64 { return r.Start + r.Size }

// Layout is a planned kernel address-space layout: the placed kernel-image
// regions plus the derived symbols.
type Layout struct {
	Kind    Kind
	Regions []Region
	// Symbols holds layout-derived link symbols: _text, _etext,
	// _krx_edata, _sdata, and the module region bounds.
	Symbols map[string]uint64

	// GuardSize is the .krx_phantom guard size used (KRX only).
	GuardSize uint64
}

func pageRound(v uint64) uint64 {
	return (v + mem.PageMask) &^ uint64(mem.PageMask)
}

// MaxSlide bounds the coarse-KASLR image slide (the kernel image must stay
// below the modules area).
const MaxSlide uint64 = 256 << 20

// PlanVanilla computes the traditional layout: .text at the start of the
// kernel image, data sections following, modules region shared by module
// text and data.
func PlanVanilla(s SectionSizes) *Layout { return PlanVanillaAt(s, KernelBase) }

// PlanVanillaAt is PlanVanilla with an explicit image base (coarse KASLR
// slides the base by a boot-time random, page-aligned delta).
func PlanVanillaAt(s SectionSizes, base uint64) *Layout {
	l := &Layout{Kind: Vanilla, Symbols: make(map[string]uint64)}
	at := base
	place := func(name string, size uint64, perm mem.Perm, code bool) Region {
		r := Region{Name: name, Start: at, Size: pageRound(size), Perm: perm, Code: code}
		if r.Size > 0 {
			l.Regions = append(l.Regions, r)
		}
		at += r.Size
		return r
	}
	text := place(".text", s.Text+s.KrxKeys, mem.PermRX, true)
	rodata := place(".rodata", s.Rodata, mem.PermR, false)
	place(".data", s.Data, mem.PermRW, false)
	place(".bss", s.Bss, mem.PermRW, false)
	place(".brk", s.Brk, mem.PermRW, false)
	l.Symbols["_text"] = text.Start
	l.Symbols["_etext"] = text.End()
	l.Symbols["_sdata"] = rodata.Start
	// Vanilla has no R^X boundary; _krx_edata is defined for uniformity as
	// the top of the address space so that range checks (if any were
	// emitted) always pass.
	l.Symbols["_krx_edata"] = ^uint64(0)
	l.Symbols["__start_modules"] = ModulesBase
	l.Symbols["__end_modules"] = ModulesBase + ModulesTextSize + ModulesDataSize
	return l
}

// PlanKRX computes the kR^X-KAS layout: the image is "flipped" — data
// sections land at KernelBase, then the .krx_phantom guard, then the code
// region (.text and .krxkeys). modules_text extends the code region;
// modules_data is placed just below fixmap. _krx_edata marks the end of all
// readable data; everything at or above the guard is the code region.
func PlanKRX(s SectionSizes, guardSize uint64) *Layout {
	return PlanKRXAt(s, KernelBase, guardSize)
}

// PlanKRXAt is PlanKRX with an explicit image base (coarse KASLR).
func PlanKRXAt(s SectionSizes, base uint64, guardSize uint64) *Layout {
	if guardSize == 0 {
		guardSize = DefaultGuardSize
	}
	l := &Layout{Kind: KRX, Symbols: make(map[string]uint64), GuardSize: guardSize}
	at := base
	place := func(name string, size uint64, perm mem.Perm, code bool) Region {
		r := Region{Name: name, Start: at, Size: pageRound(size), Perm: perm, Code: code}
		if r.Size > 0 {
			l.Regions = append(l.Regions, r)
		}
		at += r.Size
		return r
	}
	rodata := place(".rodata", s.Rodata, mem.PermR, false)
	place(".data", s.Data, mem.PermRW, false)
	place(".bss", s.Bss, mem.PermRW, false)
	brk := place(".brk", s.Brk, mem.PermRW, false)
	l.Symbols["_sdata"] = rodata.Start
	l.Symbols["_krx_edata"] = brk.End()
	guard := place(".krx_phantom", guardSize, 0, true) // mapped with no permissions: pure tripwire
	text := place(".text", s.Text, mem.PermX, true)
	// .krxkeys holds the per-function XOR keys: inside the code region
	// (above _krx_edata, hence unreadable by instrumented code) but marked
	// non-executable, like __ex_table and friends (§5.1.1 footnote).
	keys := place(".krxkeys", s.KrxKeys, mem.PermR, true)
	l.Symbols["_text"] = text.Start
	l.Symbols["_etext"] = text.End()
	l.Symbols["_guard"] = guard.Start
	if s.KrxKeys > 0 {
		l.Symbols["_krxkeys"] = keys.Start
	}
	l.Symbols["__start_modules_text"] = ModulesBase
	l.Symbols["__end_modules_text"] = ModulesBase + ModulesTextSize
	l.Symbols["__start_modules_data"] = KRXModulesDataBase
	l.Symbols["__end_modules_data"] = KRXModulesDataBase + ModulesDataSize
	l.Symbols["_fixmap"] = KRXFixmapBase
	return l
}

// CodeRegionStart returns the lowest address of the code region (the
// boundary that range checks enforce: reads must stay strictly below it —
// kR^X compares against _krx_edata).
func (l *Layout) CodeRegionStart() uint64 {
	if l.Kind != KRX {
		return ^uint64(0)
	}
	return l.Symbols["_guard"]
}

// Validate checks layout invariants: regions are sorted, non-overlapping,
// page-aligned; under KRX every code region lies entirely above
// _krx_edata and every data region below it.
func (l *Layout) Validate() error {
	rs := append([]Region(nil), l.Regions...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	for i, r := range rs {
		if !mem.PageAligned(r.Start) || !mem.PageAligned(r.Size) {
			return fmt.Errorf("kas: region %s not page aligned", r.Name)
		}
		if i > 0 && rs[i-1].End() > r.Start {
			return fmt.Errorf("kas: regions %s and %s overlap", rs[i-1].Name, r.Name)
		}
	}
	if l.Kind == KRX {
		edata := l.Symbols["_krx_edata"]
		for _, r := range l.Regions {
			if r.Code && r.Start < edata {
				return fmt.Errorf("kas: code region %s below _krx_edata", r.Name)
			}
			if !r.Code && r.End() > edata {
				return fmt.Errorf("kas: data region %s above _krx_edata", r.Name)
			}
			if !r.Code && r.Perm&mem.PermX != 0 {
				return fmt.Errorf("kas: data region %s is executable", r.Name)
			}
		}
		if l.Symbols["_text"] < edata {
			return fmt.Errorf("kas: _text below _krx_edata")
		}
	}
	return nil
}

// Region returns the named region, or nil.
func (l *Layout) Region(name string) *Region {
	for i := range l.Regions {
		if l.Regions[i].Name == name {
			return &l.Regions[i]
		}
	}
	return nil
}

// Describe renders the layout in the style of Figure 1, top of the address
// space first.
func (l *Layout) Describe() []string {
	rs := append([]Region(nil), l.Regions...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start > rs[j].Start })
	out := []string{fmt.Sprintf("%s layout", l.Kind)}
	if l.Kind == KRX {
		out = append(out, fmt.Sprintf("  %-22s @ %#018x  [code]", "modules_text", ModulesBase))
	} else {
		out = append(out, fmt.Sprintf("  %-22s @ %#018x", "fixmap area", FixmapBase))
		out = append(out, fmt.Sprintf("  %-22s @ %#018x", "modules", ModulesBase))
	}
	for _, r := range rs {
		tag := "data"
		if r.Code {
			tag = "code"
		}
		out = append(out, fmt.Sprintf("  %-22s @ %#018x +%#x %s [%s]", "kernel "+r.Name, r.Start, r.Size, r.Perm, tag))
	}
	if l.Kind == KRX {
		// Pushed towards lower addresses so that the code region is the
		// only occupant above _krx_edata.
		out = append(out, fmt.Sprintf("  %-22s @ %#018x", "fixmap area", KRXFixmapBase))
		out = append(out, fmt.Sprintf("  %-22s @ %#018x", "modules_data", KRXModulesDataBase))
	}
	out = append(out, fmt.Sprintf("  %-22s @ %#018x", "vmemmap space", VmemmapBase))
	out = append(out, fmt.Sprintf("  %-22s @ %#018x", "vmalloc arena", VmallocBase))
	out = append(out, fmt.Sprintf("  %-22s @ %#018x", "physmap", PhysmapBase))
	return out
}
