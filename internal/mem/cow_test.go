package mem

import (
	"bytes"
	"testing"
)

// forkPair maps a small layout, freezes+forks, and returns parent and child.
func forkPair(t *testing.T) (*AddressSpace, *AddressSpace) {
	t.Helper()
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 2, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(0x1000, []byte("parent data")); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	return as, child
}

func peek(t *testing.T, as *AddressSpace, va uint64, n int) []byte {
	t.Helper()
	b, err := as.Peek(va, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestForkSharesUntilWrite(t *testing.T) {
	parent, child := forkPair(t)
	pf, _ := parent.FramesAt(0x1000, 1)
	cf, _ := child.FramesAt(0x1000, 1)
	if pf[0] != cf[0] {
		t.Fatal("fork should share frames")
	}
	if got := child.CowStats(); got.SharedFrames != 2 || got.Breaks != 0 {
		t.Fatalf("child CowStats = %+v, want 2 shared / 0 breaks", got)
	}

	// Child write breaks CoW: the parent's bytes must not move.
	if f := child.StoreByte(0x1000, 'X'); f != nil {
		t.Fatal(f)
	}
	if got := peek(t, parent, 0x1000, 6); !bytes.Equal(got, []byte("parent")) {
		t.Fatalf("parent sees child's write: %q", got)
	}
	if got := peek(t, child, 0x1000, 6); !bytes.Equal(got, []byte("Xarent")) {
		t.Fatalf("child write lost: %q", got)
	}
	cf2, _ := child.FramesAt(0x1000, 1)
	if cf2[0] == pf[0] {
		t.Fatal("child still maps the shared frame after a write")
	}
	if got := child.CowStats(); got.Breaks != 1 || got.PrivateFrames != 1 {
		t.Fatalf("child CowStats after break = %+v", got)
	}

	// Parent writes break too — the parent's frames froze at Fork.
	if f := parent.StoreByte(0x1001, 'Y'); f != nil {
		t.Fatal(f)
	}
	if got := peek(t, child, 0x1001, 1); got[0] != 'a' {
		t.Fatalf("child sees parent's post-fork write: %q", got)
	}
}

func TestForkAliasedFramesBreakTogether(t *testing.T) {
	// Model the physmap: one frame mapped at two virtual addresses. A CoW
	// break through either synonym must repoint both, or the synonym
	// invariant (writes through one visible through the other) dies.
	as := NewAddressSpace()
	frames, err := as.Map(0x1000, 1, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.MapFrames(0x9000, frames, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(0x1000, []byte("alias")); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f := child.StoreByte(0x9002, 'Z'); f != nil {
		t.Fatal(f)
	}
	if got := peek(t, child, 0x1000, 5); !bytes.Equal(got, []byte("alZas")) {
		t.Fatalf("child synonym broken: %q", got)
	}
	if got := peek(t, as, 0x1000, 5); !bytes.Equal(got, []byte("alias")) {
		t.Fatalf("parent disturbed: %q", got)
	}
	c1, _ := child.FramesAt(0x1000, 1)
	c9, _ := child.FramesAt(0x9000, 1)
	if c1[0] != c9[0] {
		t.Fatal("child synonyms point at different frames after the break")
	}
}

func TestForkAliasRegisteredAfterFreeze(t *testing.T) {
	// A frozen frame gaining a new synonym post-fork (text_poke's scratch
	// alias) must still break as a unit.
	as := NewAddressSpace()
	frames, err := as.Map(0x1000, 1, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(0x1000, []byte("orig")); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.MapFrames(0xa000, frames, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := child.StoreByte(0xa000, 'T'); f != nil {
		t.Fatal(f)
	}
	if got := peek(t, child, 0x1000, 4); !bytes.Equal(got, []byte("Trig")) {
		t.Fatalf("scratch-alias write not visible through original mapping: %q", got)
	}
	if got := peek(t, as, 0x1000, 4); !bytes.Equal(got, []byte("orig")) {
		t.Fatalf("parent disturbed through scratch alias: %q", got)
	}
}

func TestForkOfFork(t *testing.T) {
	parent, child := forkPair(t)
	if f := child.StoreByte(0x1000, 'C'); f != nil {
		t.Fatal(f)
	}
	// Fork the dirtied child: its private frame re-freezes, so the
	// grandchild shares it until either side writes again.
	grand, err := child.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := peek(t, grand, 0x1000, 2); !bytes.Equal(got, []byte("Ca")) {
		t.Fatalf("grandchild state: %q", got)
	}
	if f := grand.StoreByte(0x1001, 'G'); f != nil {
		t.Fatal(f)
	}
	if got := peek(t, child, 0x1000, 2); !bytes.Equal(got, []byte("Ca")) {
		t.Fatalf("child sees grandchild write: %q", got)
	}
	if f := child.StoreByte(0x1000, 'D'); f != nil {
		t.Fatal(f)
	}
	if got := peek(t, grand, 0x1000, 2); !bytes.Equal(got, []byte("CG")) {
		t.Fatalf("grandchild sees child's re-write: %q", got)
	}
	if got := peek(t, parent, 0x1000, 2); !bytes.Equal(got, []byte("pa")) {
		t.Fatalf("parent disturbed two forks down: %q", got)
	}
}

func TestForkShadowPages(t *testing.T) {
	// HideM split-TLB forks: data reads see the shared shadow, stores land
	// on a private copy of the real frame, and the shadow itself — frozen —
	// is never written.
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermRWX); err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(0x1000, []byte("realcode")); err != nil {
		t.Fatal(err)
	}
	sh := new(Frame)
	copy(sh.Data[:], "shadowed")
	if err := as.ShadowData(0x1000, 1, []*Frame{sh}); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if b, f := child.LoadByte(0x1000); f != nil || b != 's' {
		t.Fatalf("child data read should see shadow: %q %v", b, f)
	}
	if f := child.StoreByte(0x1000, 'W'); f != nil {
		t.Fatal(f)
	}
	// The store broke CoW on the real frame; the shadow still rules reads.
	if b, _ := child.LoadByte(0x1000); b != 's' {
		t.Fatalf("child read after store should still see shadow, got %q", b)
	}
	if got := peek(t, child, 0x1000, 4); !bytes.Equal(got, []byte("Weal")) {
		t.Fatalf("child real frame: %q", got)
	}
	if got := peek(t, as, 0x1000, 4); !bytes.Equal(got, []byte("real")) {
		t.Fatalf("parent real frame disturbed: %q", got)
	}
}

func TestForkRollbackInChild(t *testing.T) {
	// Checkpoint/rollback inside a child must restore the child without
	// touching shared frames — the fuzzing loop's per-iteration pattern.
	parent, child := forkPair(t)
	child.Checkpoint()
	if f := child.StoreByte(0x1000, 'A'); f != nil {
		t.Fatal(f)
	}
	if err := child.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, child, 0x1000, 6); !bytes.Equal(got, []byte("parent")) {
		t.Fatalf("child rollback: %q", got)
	}
	// Repeat: the broken (now private) frame stays writable and rollable.
	if f := child.StoreByte(0x1000, 'B'); f != nil {
		t.Fatal(f)
	}
	if err := child.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, child, 0x1000, 6); !bytes.Equal(got, []byte("parent")) {
		t.Fatalf("child second rollback: %q", got)
	}
	if got := peek(t, parent, 0x1000, 6); !bytes.Equal(got, []byte("parent")) {
		t.Fatalf("parent disturbed by child rollback: %q", got)
	}
}

func TestForkRollbackRestoresSynonyms(t *testing.T) {
	// A checkpoint-time synonym unmapped before a CoW break must come back
	// (after rollback) still aliasing the SAME frame as its counterpart.
	as := NewAddressSpace()
	frames, err := as.Map(0x1000, 1, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.MapFrames(0x9000, frames, PermRW); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	child.Checkpoint()
	if err := child.Unmap(0x9000, 1); err != nil {
		t.Fatal(err)
	}
	if f := child.StoreByte(0x1000, 'Q'); f != nil {
		t.Fatal(f)
	}
	if err := child.Rollback(); err != nil {
		t.Fatal(err)
	}
	a, _ := child.FramesAt(0x1000, 1)
	b, _ := child.FramesAt(0x9000, 1)
	if a[0] != b[0] {
		t.Fatal("rollback resurrected the synonym on a different frame")
	}
	if f := child.StoreByte(0x1000, 'R'); f != nil {
		t.Fatal(f)
	}
	if got, _ := child.LoadByte(0x9000); got != 'R' {
		t.Fatalf("post-rollback synonym not coherent: %q", got)
	}
}

func TestForkWithDirtyUndoLogFails(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	as.Checkpoint()
	if f := as.StoreByte(0x1000, 'D'); f != nil {
		t.Fatal(f)
	}
	if _, err := as.Fork(); err == nil {
		t.Fatal("fork with a dirty undo log should fail")
	}
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Fork(); err != nil {
		t.Fatalf("fork after rollback should succeed: %v", err)
	}
}

func TestZapFrozenPanics(t *testing.T) {
	as := NewAddressSpace()
	frames, err := as.Map(0x1000, 1, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Fork(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Zap of a frozen frame should panic")
		}
	}()
	frames[0].Zap()
}

func TestForkExecBreakBumpsMapGen(t *testing.T) {
	// Breaking CoW on an executable page must bump mapGen (the decode
	// cache's re-resolution trigger); a data-only break must not (the data
	// TLB is shot down directly instead).
	as := NewAddressSpace()
	if _, err := as.Map(0x1000, 1, PermRWX); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x2000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	g := child.MapGen()
	if f := child.StoreByte(0x2000, 1); f != nil {
		t.Fatal(f)
	}
	if child.MapGen() != g {
		t.Fatal("data-only CoW break bumped mapGen")
	}
	// The dtlb was shot down, so the same vpn re-resolves to the private
	// frame even without a mapGen change.
	if b, _ := child.LoadByte(0x2000); b != 1 {
		t.Fatalf("stale dtlb after data-only break: got %d", b)
	}
	if f := child.StoreByte(0x1000, 0x90); f != nil {
		t.Fatal(f)
	}
	if child.MapGen() == g {
		t.Fatal("executable CoW break did not bump mapGen")
	}
	ef, ok := child.ExecFrame(0x1000)
	if !ok || ef.Data[0] != 0x90 {
		t.Fatal("exec view did not follow the CoW break")
	}
	pf, _ := as.ExecFrame(0x1000)
	if pf.Data[0] == 0x90 {
		t.Fatal("parent exec frame disturbed")
	}
}

func TestForkChildMapGenMatchesParent(t *testing.T) {
	// A forked CPU's cloned decode cache validates against mapGen; the
	// child must present the parent's value or every cloned page would
	// re-resolve (correct but cold).
	parent, child := forkPair(t)
	if parent.MapGen() != child.MapGen() {
		t.Fatalf("mapGen diverged at fork: parent %d child %d", parent.MapGen(), child.MapGen())
	}
}
