// Command krxcc is the kR^X "compiler driver": it dumps the instrumented
// assembly that the krx and kaslr passes produce. Its flagship mode
// regenerates Figure 2 (the SFI O0–O3 and MPX instrumentation phases on
// nhm_uncore_msr_enable_event) and Figure 3 (the decoy prologues); it can
// also compile and dump any function of the kernel corpus under a chosen
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/figures"
	"repro/internal/kernel"
	"repro/internal/sfi"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list the kernel corpus functions")
		fig2   = flag.Bool("figure2", false, "regenerate Figure 2 (instrumentation phases)")
		fig3   = flag.Bool("figure3", false, "regenerate Figure 3 (decoy prologues)")
		fn     = flag.String("fn", "", "dump a kernel corpus function after the passes")
		mode   = flag.String("xom", "sfi", "R^X mode for -fn: none|sfi|mpx")
		level  = flag.Int("O", 3, "SFI optimization level (0-3)")
		divers = flag.Bool("diversify", false, "apply fine-grained KASLR for -fn")
		raprot = flag.String("ra", "none", "return-address protection for -fn: none|x|d")
		seed   = flag.Int64("seed", 1, "diversification seed")
	)
	flag.Parse()

	switch {
	case *list:
		prog, err := kernel.BuildCorpus()
		if err != nil {
			fmt.Fprintln(os.Stderr, "krxcc:", err)
			os.Exit(1)
		}
		for _, f := range prog.Funcs {
			tag := ""
			if f.AccessorClone {
				tag = "  [clone]"
			} else if f.NoInstrument {
				tag = "  [asm stub]"
			}
			fmt.Printf("%-28s %3d blocks %4d instrs%s\n", f.Name, len(f.Blocks), f.NumInstrs(), tag)
		}
	case *fig2:
		fmt.Print(figures.Figure2())
	case *fig3:
		fmt.Print(figures.Figure3())
	case *fn != "":
		if err := dumpFunc(*fn, *mode, *level, *divers, *raprot, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "krxcc:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func dumpFunc(name, mode string, level int, divers bool, raprot string, seed int64) error {
	prog, err := kernel.BuildCorpus()
	if err != nil {
		return err
	}
	cfg := core.Config{Seed: seed, Diversify: divers}
	switch mode {
	case "sfi":
		cfg.XOM = core.XOMSFI
		cfg.SFILevel = sfi.Level(level)
	case "mpx":
		cfg.XOM = core.XOMMPX
	case "none":
	default:
		return fmt.Errorf("unknown -xom %q", mode)
	}
	switch raprot {
	case "x":
		cfg.RAProt = diversify.RAEncrypt
	case "d":
		cfg.RAProt = diversify.RADecoy
	case "none":
	default:
		return fmt.Errorf("unknown -ra %q", raprot)
	}
	res, err := core.Build(prog, cfg)
	if err != nil {
		return err
	}
	f := res.Prog.Func(name)
	if f == nil {
		return fmt.Errorf("no function %q in the corpus", name)
	}
	fmt.Printf("// %s under %s\n%s", name, cfg.Name(), f.String())
	return nil
}
