// Package kernel implements the simulated mini-kernel: a syscall layer,
// fault handling, file/pipe/socket/process subsystems, tracing clones, and
// deliberately retrofitted vulnerabilities — all written in KX64 IR,
// compiled through the kR^X pipeline, and executed on the emulator. It is
// the substrate the paper's evaluation (Tables 1–2) and security analysis
// (§7.3) run against.
package kernel

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/link"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Syscall numbers.
const (
	SysNull = iota
	SysGetpid
	SysOpen
	SysClose
	SysRead
	SysWrite
	SysSelect
	SysFstat
	SysMmap
	SysMunmap
	SysFork
	SysExecve
	SysExit
	SysSigaction
	SysKill
	SysPipeRead
	SysPipeWrite
	SysUnixRead
	SysUnixWrite
	SysTCPRead
	SysTCPWrite
	SysUDPRead
	SysUDPWrite
	SysFtracePeek // legitimate code read via the uninstrumented clone (§6)
	SysLeak       // retrofitted arbitrary-read vulnerability (§7.3)
	SysPlant      // retrofitted pointer-corruption vulnerability
	SysTrigger    // dereference the (possibly corrupted) dev_ops pointer
	SysStackSmash // retrofitted kernel stack overflow
	SysGetdents   // directory listing (read-heavy copy loop)
	SysUname      // copy the utsname string to user space
	SysYield      // scheduler touch (task-state reads)
	SysBrk        // program-break bump
	SysTriggerJmp // JOP-style dispatch through dev_ops[1] (jmp *mem)
	NumSyscalls
)

// User-space fixed addresses (the simulated process image).
const (
	UserCode     uint64 = 0x0000000000401000
	UserBuf      uint64 = 0x0000000000600000 // 64 pages of user data
	UserBufPages        = 64
	UserStack    uint64 = 0x00007f0000000000 // 16 pages
	UserStackPgs        = 16

	// userSyscallOff is the offset of the syscall stub in the user page;
	// userFaultOff is the offset of the faulting-load stub; userCopyOff is
	// the offset of the user-mode rep-movs copy stub (uninstrumented user
	// code — used by the mmap-I/O bandwidth benchmark, whose work happens
	// entirely in user space).
	userSyscallOff = 0
	userFaultOff   = 64
	userCopyOff    = 128

	// FaultSkip is the byte length of the user faulting instruction that
	// the fault handler skips over on resume.
	FaultSkip = 10
)

// KernelStackPages is the size of the (single) kernel stack.
const KernelStackPages = 8

// PhysMemBytes is the simulated machine's physical memory.
const PhysMemBytes = 64 << 20

// Kernel is a booted simulated kernel.
type Kernel struct {
	Cfg   core.Config
	Build *core.BuildResult
	Img   *link.Image
	Space *kas.Space
	CPU   *cpu.CPU

	// KernelStackBase is the physmap address of the kernel stack's lowest
	// page (its contents are attacker-readable data — §5.2.2).
	KernelStackBase uint64
	// Keys holds the boot-time xkey values (host-side ground truth for
	// tests; emulated code can only reach them via the %rip-relative
	// loads in prologues/epilogues).
	Keys map[string]uint64

	// Inj is the armed fault injector when Cfg.FaultPlan was set at boot
	// (nil otherwise). Harnesses that manage their own per-iteration
	// injectors leave Cfg.FaultPlan nil and attach directly.
	Inj *inject.Injector

	// Trace, when non-nil, receives syscall enter/exit and
	// snapshot/restore events (and, because Boot attaches it for trap
	// delivery too, every exception the CPU delivers). Set it with
	// WithTracer or assign before issuing syscalls.
	Trace *obs.Tracer

	// snapSeq numbers this kernel's snapshots; Restore refuses any snapshot
	// that is not the most recent one (see StaleSnapshotError).
	snapSeq uint64
}

// BootOption customizes Boot. The zero set of options compiles the shared
// kernel corpus uncached — exactly what the original Boot(cfg) did.
type BootOption func(*bootOptions)

type bootOptions struct {
	cached bool
	prog   *ir.Program
	image  *core.BuildResult
	probes []cpu.ExecProbe
	tracer *obs.Tracer
}

// WithCache boots through the process-wide build cache: the first boot of
// a configuration compiles the corpus, every later boot of the same
// configuration (per Config.BuildKey — runtime knobs like WatchdogBudget
// and FaultPlan do not fragment the cache) reuses the compiled image and
// only pays for installing it into a fresh address space. Safe for
// concurrent use: multi-worker fuzzing campaigns and parallel benchmark
// sweeps boot their kernels through here. Incompatible with WithProgram
// (the cache is keyed to the shared corpus).
func WithCache() BootOption {
	return func(o *bootOptions) { o.cached = true }
}

// WithProgram boots a caller-supplied corpus instead of the shared one.
func WithProgram(prog *ir.Program) BootOption {
	return func(o *bootOptions) { o.prog = prog }
}

// WithImage installs an already-built image, skipping compilation. The
// result may be shared: everything it holds is only read.
func WithImage(res *core.BuildResult) BootOption {
	return func(o *bootOptions) { o.image = res }
}

// WithProbes installs execution probes on the booted CPU (in order), before
// any instruction runs.
func WithProbes(ps ...cpu.ExecProbe) BootOption {
	return func(o *bootOptions) { o.probes = append(o.probes, ps...) }
}

// WithTracer wires an event tracer into the kernel: syscall enter/exit and
// snapshot/restore events are emitted by the kernel itself, and the tracer
// is attached to the CPU for trap-delivery events.
func WithTracer(t *obs.Tracer) BootOption {
	return func(o *bootOptions) { o.tracer = t }
}

// Boot builds a kernel under cfg, installs it into a fresh machine,
// performs the kR^X boot-time steps (xkey replenishment, physmap synonym
// unmapping), and sets up a user process ready to issue syscalls. Options
// select where the image comes from (WithCache, WithProgram, WithImage —
// default: an uncached compile of the shared corpus) and what observers
// ride along (WithProbes, WithTracer).
func Boot(cfg core.Config, opts ...BootOption) (*Kernel, error) {
	var o bootOptions
	for _, opt := range opts {
		opt(&o)
	}
	res := o.image
	switch {
	case res != nil:
		// Pre-built image wins; a redundant WithCache/WithProgram is a
		// caller bug worth surfacing.
		if o.cached || o.prog != nil {
			return nil, fmt.Errorf("kernel: WithImage is exclusive with WithCache/WithProgram")
		}
	case o.cached:
		if o.prog != nil {
			return nil, fmt.Errorf("kernel: WithCache builds the shared corpus; it cannot cache a caller-supplied program")
		}
		prog, err := sharedCorpus()
		if err != nil {
			return nil, fmt.Errorf("kernel: corpus: %w", err)
		}
		res, err = buildCache.Build(prog, corpusID, cfg)
		if err != nil {
			return nil, err
		}
	default:
		prog := o.prog
		if prog == nil {
			var err error
			prog, err = BuildCorpus()
			if err != nil {
				return nil, fmt.Errorf("kernel: corpus: %w", err)
			}
		}
		var err error
		res, err = core.Build(prog, cfg)
		if err != nil {
			return nil, err
		}
	}
	k, err := bootImage(res, cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range o.probes {
		k.CPU.AddProbe(p)
	}
	if o.tracer != nil {
		k.Trace = o.tracer
		o.tracer.Attach(k.CPU)
	}
	return k, nil
}

// The shared corpus and build cache behind Boot(cfg, WithCache()). The corpus program
// is built once and never mutated afterwards (core.Build clones before
// instrumenting), so every cached build compiles the same input.
var (
	corpusOnce sync.Once
	corpusProg *ir.Program
	corpusErr  error

	buildCache = core.NewImageCache(nil)
)

// corpusID names the shared corpus in the build-cache key. Bump it if the
// corpus generator changes shape within one process lifetime (it cannot —
// BuildCorpus is deterministic — so a constant is the honest identity).
const corpusID = "kernel-corpus"

// sharedCorpus returns the memoized kernel corpus program. Callers must not
// mutate it.
func sharedCorpus() (*ir.Program, error) {
	corpusOnce.Do(func() {
		corpusProg, corpusErr = BuildCorpus()
	})
	return corpusProg, corpusErr
}

// BuildCache exposes the process-wide build cache (Stats() feeds the
// store.* gauges and the sweep tests).
func BuildCache() *core.ImageCache { return buildCache }

// SetBuildCache replaces the process-wide build cache — how a CLI wires a
// persistent -cache-dir store under every Boot(cfg, WithCache()) — and
// returns the previous cache so tests can restore it. Boot-time wiring
// only: swapping while boots are in flight races with them.
func SetBuildCache(c *core.ImageCache) *core.ImageCache {
	old := buildCache
	buildCache = c
	return old
}

// bootImage installs an already-built image into a fresh machine and
// performs the boot-time steps. res may be shared (cached): everything it
// holds is only read — section bytes are poked into the new space, xkeys
// are replenished in the space, never in the image.
func bootImage(res *core.BuildResult, cfg core.Config) (*Kernel, error) {
	pool := kas.NewPhysPool(PhysMemBytes)
	sp, err := kas.Install(res.Image.Layout, pool)
	if err != nil {
		return nil, err
	}
	if cfg.XOM == core.XOMEPT {
		// Hypervisor baseline: nested paging gives true execute-only
		// semantics to the X-only text mapping.
		sp.AS.EPT = true
	}
	if err := res.Image.Install(sp); err != nil {
		return nil, err
	}
	k := &Kernel{Cfg: cfg, Build: res, Img: res.Image, Space: sp, Keys: make(map[string]uint64)}

	// Replenish xkeys with random values (boot-time step (d) of §6). The
	// keys live in the code region; boot writes them through the
	// privileged installer before synonyms are closed. Assignment follows
	// sorted symbol order — map iteration would hand different key values
	// to different slots on every process run, breaking seeded replay.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6b52585f)) // "kRX_"
	keySyms := make([]string, 0, len(res.Image.KeyAddrs))
	for sym := range res.Image.KeyAddrs {
		keySyms = append(keySyms, sym)
	}
	sort.Strings(keySyms)
	for _, sym := range keySyms {
		addr := res.Image.KeyAddrs[sym]
		v := rng.Uint64() | 1
		k.Keys[sym] = v
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		if err := sp.AS.Poke(addr, b[:]); err != nil {
			return nil, err
		}
	}

	// kR^X boot step: unmap physmap synonyms of the code region.
	if _, err := sp.UnmapCodeSynonyms(); err != nil {
		return nil, err
	}

	if cfg.XOM == core.XOMHideM {
		// HideM baseline (§2): desynchronize the split TLBs so data reads
		// of executable pages observe zero-filled shadow frames while
		// fetches keep executing the real code. Non-executable code-region
		// sections (.krxkeys) keep their data view — HideM shadows code
		// pages only.
		for _, rg := range res.Image.Layout.Regions {
			if !rg.Code || rg.Perm&mem.PermX == 0 || rg.Size == 0 {
				continue
			}
			if err := sp.AS.ShadowData(rg.Start, mem.PagesFor(rg.Size), nil); err != nil {
				return nil, err
			}
		}
	}

	// Kernel stack.
	stackPFN, _, err := pool.Alloc(KernelStackPages)
	if err != nil {
		return nil, err
	}
	k.KernelStackBase = kas.PhysmapAddr(stackPFN)

	// User process: code page, data buffer, stack.
	if _, err := sp.AS.Map(UserCode&^uint64(mem.PageMask), 1, mem.PermRX); err != nil {
		return nil, err
	}
	if _, err := sp.AS.Map(UserBuf, UserBufPages, mem.PermRW); err != nil {
		return nil, err
	}
	if _, err := sp.AS.Map(UserStack, UserStackPgs, mem.PermRW); err != nil {
		return nil, err
	}
	if err := installUserStubs(sp); err != nil {
		return nil, err
	}

	// CPU wiring (the MSR/boot-parameter setup).
	c := cpu.New(sp.AS)
	c.SyscallEntry = res.Image.Symbols["syscall_entry"]
	c.FaultEntry = res.Image.Symbols["fault_entry"]
	c.KernelStackTop = k.KernelStackBase + KernelStackPages*mem.PageSize - 64
	c.SMEP = true
	if cfg.XOM == core.XOMMPX {
		c.MPXKernel = true
		c.KernelBnd0 = cpu.Bound{LB: 0, UB: res.Image.Symbols["_krx_edata"]}
	}
	k.CPU = c

	if cfg.FaultPlan != nil {
		k.Inj = inject.New(*cfg.FaultPlan)
		k.Inj.Attach(c, sp.AS, k.FaultTargets())
	}
	return k, nil
}

// FaultTargets returns the injection surface of this kernel: every mapped
// data region (kernel image data sections, the kernel stack, the user
// buffer) plus the xkey slots. Ordering is deterministic — the injector's
// replay guarantee depends on it.
func (k *Kernel) FaultTargets() inject.Targets {
	var t inject.Targets
	for _, rg := range k.Img.Layout.Regions {
		if rg.Code || rg.Size == 0 || rg.Perm&mem.PermW == 0 {
			continue
		}
		t.Data = append(t.Data, inject.Range{Start: rg.Start, End: rg.Start + rg.Size})
	}
	t.Data = append(t.Data,
		inject.Range{Start: k.KernelStackBase, End: k.KernelStackBase + KernelStackPages*mem.PageSize},
		inject.Range{Start: UserBuf, End: UserBuf + UserBufPages*mem.PageSize},
	)
	for _, addr := range k.Img.KeyAddrs {
		t.KeyAddrs = append(t.KeyAddrs, addr)
	}
	sort.Slice(t.KeyAddrs, func(i, j int) bool { return t.KeyAddrs[i] < t.KeyAddrs[j] })
	return t
}

// Snapshot captures the complete machine state: CPU registers and MSRs, the
// physical-pool watermark, and a copy-on-write checkpoint of the address
// space. Restore rewinds to it, so a crashed or fault-injected run rolls
// back instead of poisoning subsequent iterations.
type Snapshot struct {
	cpu      cpu.State
	poolMark int
	owner    *Kernel
	seq      uint64
}

// StaleSnapshotError reports a Restore with a snapshot that is not the
// kernel's most recent one — superseded by a later Snapshot, or taken from
// a different kernel entirely (a fork's snapshots do not transfer). The
// address-space checkpoint that backs a snapshot is replaced wholesale by
// the next Checkpoint, so restoring a stale snapshot would silently rewind
// to the *newer* checkpoint's state under the old snapshot's CPU registers
// and pool watermark — a torn machine state. Restore refuses instead.
type StaleSnapshotError struct {
	// Seq is the stale snapshot's sequence number; Current the kernel's
	// live one. Both are 0 when the snapshot belongs to another kernel.
	Seq     uint64
	Current uint64
	// Foreign is set when the snapshot was taken from a different kernel.
	Foreign bool
}

func (e *StaleSnapshotError) Error() string {
	if e.Foreign {
		return "kernel: restore of a snapshot taken from a different kernel"
	}
	return fmt.Sprintf("kernel: restore of a stale snapshot (seq %d, superseded by %d)", e.Seq, e.Current)
}

// Snapshot checkpoints the kernel. Only the most recent snapshot is
// restorable: taking a new one supersedes the old, and Restore with a
// superseded snapshot fails with a StaleSnapshotError.
func (k *Kernel) Snapshot() *Snapshot {
	k.Space.AS.Checkpoint()
	if k.Trace != nil {
		k.Trace.Emit(obs.EvSnapshot, "snapshot", 0, 0)
	}
	k.snapSeq++
	return &Snapshot{cpu: k.CPU.SaveState(), poolMark: k.Space.Pool.Mark(), owner: k, seq: k.snapSeq}
}

// Restore rewinds the kernel to a snapshot. It may be called repeatedly on
// the same snapshot (the fuzzing loop restores once per iteration), but only
// the kernel's most recent snapshot is restorable.
func (k *Kernel) Restore(s *Snapshot) error {
	if s.owner != k {
		return &StaleSnapshotError{Foreign: true}
	}
	if s.seq != k.snapSeq {
		return &StaleSnapshotError{Seq: s.seq, Current: k.snapSeq}
	}
	if err := k.Space.AS.Rollback(); err != nil {
		return err
	}
	k.CPU.RestoreState(s.cpu)
	k.Space.Pool.Reset(s.poolMark)
	if k.Trace != nil {
		// Emitted after the CPU state rewinds, so the timestamp is the
		// restored (deterministic) counter value, not the pre-rollback one
		// — the property that keeps per-iteration traces byte-identical
		// across worker counts.
		k.Trace.Emit(obs.EvRestore, "restore", 0, 0)
	}
	return nil
}

// installUserStubs writes the two user-mode stubs:
//
//	+0:  syscall ; jmp .       (the syscall trampoline)
//	+64: mov (%rbx), %rax ; jmp .   (the faulting load for #PF benches)
func installUserStubs(sp *kas.Space) error {
	var stub []byte
	var err error
	emit := func(ins ...isa.Instr) {
		for _, in := range ins {
			if err != nil {
				return
			}
			stub, err = in.Encode(stub)
		}
	}
	emit(isa.Syscall())
	emit(isa.Instr{Op: isa.JMP, Imm: -5}) // jmp self
	if err != nil {
		return err
	}
	if f := len(stub); f > userFaultOff {
		return fmt.Errorf("kernel: user stub overflow (%d)", f)
	}
	pad := make([]byte, userFaultOff-len(stub))
	for i := range pad {
		pad[i] = 0xCC
	}
	stub = append(stub, pad...)
	ld := isa.Load(isa.RAX, isa.Mem(isa.RBX, 0))
	if n := ld.Length(); n != FaultSkip {
		return fmt.Errorf("kernel: FaultSkip (%d) != load length (%d)", FaultSkip, n)
	}
	emit(ld)
	emit(isa.Instr{Op: isa.JMP, Imm: -5})
	if err != nil {
		return err
	}
	if len(stub) > userCopyOff {
		return fmt.Errorf("kernel: user stub overflow (%d)", len(stub))
	}
	pad = make([]byte, userCopyOff-len(stub))
	for i := range pad {
		pad[i] = 0xCC
	}
	stub = append(stub, pad...)
	// User copy stub: rep movsq, then a null syscall to hand control back.
	emit(isa.Movs(8, true))
	emit(isa.Syscall())
	emit(isa.Instr{Op: isa.JMP, Imm: -5})
	if err != nil {
		return err
	}
	return sp.AS.Poke(UserCode, stub)
}

// UserCopy runs the user-mode copy stub: rep movsq of quads quadwords from
// src to dst (both user addresses), followed by a null syscall. It models
// workloads whose data movement happens in (uninstrumented) user code.
func (k *Kernel) UserCopy(dst, src uint64, quads uint64) *SyscallResult {
	c := k.CPU
	c.Mode = cpu.User
	c.RIP = UserCode + userCopyOff
	c.SetReg(isa.RSP, UserStack+UserStackPgs*mem.PageSize-128)
	c.SetReg(isa.RDI, dst)
	c.SetReg(isa.RSI, src)
	c.SetReg(isa.RCX, quads)
	c.SetReg(isa.RAX, SysNull)
	c.StopOnSysret = true
	defer func() { c.StopOnSysret = false }()
	res := c.Run(k.WatchdogBudget())
	r := &SyscallResult{Ret: c.Reg(isa.RAX), Run: res, Failed: res.Reason != cpu.StopSysret}
	if res.Reason == cpu.StopLimit {
		r.Err = &cpu.BudgetError{Budget: k.WatchdogBudget(), RIP: c.RIP, Mode: c.Mode}
	}
	return r
}

// SyscallResult reports one syscall round trip.
type SyscallResult struct {
	Ret    uint64
	Run    *cpu.RunResult
	Failed bool  // the kernel trapped, halted, or overran instead of returning
	Err    error // structured failure detail: *cpu.BudgetError (watchdog) or a recovered harness panic
}

// DefaultWatchdogBudget is the per-syscall instruction budget when the
// configuration does not override it. The heaviest legitimate syscall in the
// corpus (fork's page-table copy under SFI-O0) stays well under it.
const DefaultWatchdogBudget = 4 << 20

// WatchdogBudget returns the effective per-syscall instruction budget.
func (k *Kernel) WatchdogBudget() uint64 {
	if k.Cfg.WatchdogBudget != 0 {
		return k.Cfg.WatchdogBudget
	}
	return DefaultWatchdogBudget
}

// Syscall executes one complete user->kernel->user round trip: the user
// stub issues the syscall instruction, the kernel entry dispatches through
// the syscall table, and the run stops right after sysret. Up to three
// arguments travel in %rdi/%rsi/%rdx, the syscall number in %rax.
//
// The boundary is hardened for adversarial workloads: the run is bounded by
// the watchdog budget (exhaustion is reported as a *cpu.BudgetError, never a
// hang or a silent truncation), and any panic escaping the emulator — a
// harness bug tickled by a corrupted machine — is recovered into the result
// instead of tearing down the whole process.
func (k *Kernel) Syscall(nr uint64, args ...uint64) (result *SyscallResult) {
	c := k.CPU
	defer func() {
		if p := recover(); p != nil {
			c.StopOnSysret = false
			result = &SyscallResult{
				Run:    &cpu.RunResult{Reason: cpu.StopTrap},
				Failed: true,
				Err:    fmt.Errorf("kernel: panic during syscall %d: %v", nr, p),
			}
		}
	}()
	c.Mode = cpu.User
	c.RIP = UserCode + userSyscallOff
	c.SetReg(isa.RSP, UserStack+UserStackPgs*mem.PageSize-128)
	c.SetReg(isa.RAX, nr)
	regs := []isa.Reg{isa.RDI, isa.RSI, isa.RDX}
	for i := range regs {
		var v uint64
		if i < len(args) {
			v = args[i]
		}
		c.SetReg(regs[i], v)
	}
	c.StopOnSysret = true
	defer func() { c.StopOnSysret = false }()
	if k.Trace != nil {
		var a0 uint64
		if len(args) > 0 {
			a0 = args[0]
		}
		k.Trace.Emit(obs.EvSyscallEnter, SyscallName(nr), a0, nr)
	}
	res := c.Run(k.WatchdogBudget())
	r := &SyscallResult{
		Ret:    c.Reg(isa.RAX),
		Run:    res,
		Failed: res.Reason != cpu.StopSysret,
	}
	if res.Reason == cpu.StopLimit {
		r.Err = &cpu.BudgetError{Budget: k.WatchdogBudget(), RIP: c.RIP, Mode: c.Mode}
	}
	if k.Trace != nil {
		ret := r.Ret
		if r.Failed {
			ret = uint64(res.Reason)
		}
		k.Trace.Emit(obs.EvSyscallExit, SyscallName(nr), ret, nr)
	}
	return r
}

// syscallNames renders syscall numbers for trace events and profiler
// reports, indexed by number.
var syscallNames = [NumSyscalls]string{
	SysNull: "sys_null", SysGetpid: "sys_getpid", SysOpen: "sys_open",
	SysClose: "sys_close", SysRead: "sys_read", SysWrite: "sys_write",
	SysSelect: "sys_select", SysFstat: "sys_fstat", SysMmap: "sys_mmap",
	SysMunmap: "sys_munmap", SysFork: "sys_fork", SysExecve: "sys_execve",
	SysExit: "sys_exit", SysSigaction: "sys_sigaction", SysKill: "sys_kill",
	SysPipeRead: "sys_pipe_read", SysPipeWrite: "sys_pipe_write",
	SysUnixRead: "sys_unix_read", SysUnixWrite: "sys_unix_write",
	SysTCPRead: "sys_tcp_read", SysTCPWrite: "sys_tcp_write",
	SysUDPRead: "sys_udp_read", SysUDPWrite: "sys_udp_write",
	SysFtracePeek: "sys_ftrace_peek", SysLeak: "sys_leak",
	SysPlant: "sys_plant", SysTrigger: "sys_trigger",
	SysStackSmash: "sys_stack_smash", SysGetdents: "sys_getdents",
	SysUname: "sys_uname", SysYield: "sys_yield", SysBrk: "sys_brk",
	SysTriggerJmp: "sys_trigger_jmp",
}

// SyscallName returns the canonical name of a syscall number
// ("sys_<nr>" for numbers outside the table).
func SyscallName(nr uint64) string {
	if nr < NumSyscalls {
		return syscallNames[nr]
	}
	return fmt.Sprintf("sys_%d", nr)
}

// TriggerFault executes the user faulting-load stub against addr, stopping
// after the kernel fault handler irets (the protection/page-fault
// benchmark round trip).
func (k *Kernel) TriggerFault(addr uint64) *cpu.RunResult {
	c := k.CPU
	c.Mode = cpu.User
	c.RIP = UserCode + userFaultOff
	c.SetReg(isa.RSP, UserStack+UserStackPgs*mem.PageSize-128)
	c.SetReg(isa.RBX, addr)
	c.StopOnIret = true
	defer func() { c.StopOnIret = false }()
	return c.Run(1 << 20)
}

// WriteUser copies bytes into the user buffer region (what a user program
// would have placed there before a syscall).
func (k *Kernel) WriteUser(off uint64, b []byte) error {
	if f := k.Space.AS.StoreBytes(UserBuf+off, b); f != nil {
		return f
	}
	return nil
}

// ReadUser reads back from the user buffer region.
func (k *Kernel) ReadUser(off uint64, n int) ([]byte, error) {
	b, f := k.Space.AS.LoadBytes(UserBuf+off, n)
	if f != nil {
		return nil, f
	}
	return b, nil
}

// Sym returns the address of a linked symbol.
func (k *Kernel) Sym(name string) uint64 { return k.Img.Symbols[name] }

// Violated reports whether a syscall result represents a stopped system due
// to a kR^X violation: the SFI path halts inside krx_handler, the MPX path
// dies on #BR, and the EPT path on a read #PF.
func (k *Kernel) Violated(r *SyscallResult) bool {
	if !r.Failed {
		return false
	}
	res := r.Run
	if res.Reason == cpu.StopHalt {
		h := k.Sym("krx_handler")
		// The halt must come from the handler body.
		return res.HaltRIP >= h && res.HaltRIP < h+64
	}
	if res.Reason == cpu.StopTrap && res.Trap != nil {
		return res.Trap.Kind == cpu.TrapBoundRange ||
			(res.Trap.Kind == cpu.TrapPageFault && res.Trap.Fault != nil &&
				res.Trap.Fault.Kind == mem.FaultNoRead)
	}
	return false
}
