package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// readRef is the byte-at-a-time model the Read word fast path must match
// exactly: the same little-endian value, or a fault naming the same first
// bad byte. Reads have no side effects, so partial progress is not
// observable — only the fault identity is.
func readRef(as *AddressSpace, va uint64, size uint8) (uint64, *Fault) {
	var v uint64
	for i := uint8(0); i < size; i++ {
		b, f := as.LoadByte(va + uint64(i))
		if f != nil {
			return 0, f
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// writeRef is the byte-at-a-time model for Write: bytes preceding the first
// unwritable byte persist, and the fault names that byte.
func writeRef(as *AddressSpace, va uint64, v uint64, size uint8) *Fault {
	for i := uint8(0); i < size; i++ {
		if f := as.StoreByte(va+uint64(i), byte(v>>(8*i))); f != nil {
			return f
		}
	}
	return nil
}

// TestWordReadEquivalence: Read's in-page word path against the byte loop,
// over every access size, at aligned and unaligned offsets, crossing into
// holes, and against unreadable (execute-only under EPT) pages.
func TestWordReadEquivalence(t *testing.T) {
	as := layout(t)
	if _, err := as.Map(0x6000, 1, PermX); err != nil {
		t.Fatal(err)
	}
	as.EPT = true // execute-only becomes unreadable: the R check must be live
	cases := []struct {
		va   uint64
		size uint8
	}{
		{0x1000, 8}, {0x1000, 4}, {0x1000, 2}, {0x1000, 1},
		{0x1003, 8}, {0x1001, 2}, {0x1005, 4}, // unaligned in-page
		{0x1ffc, 8}, {0x1fff, 2},              // page-crossing, both mapped
		{0x3ffc, 8},                           // crosses into the hole at 0x4000
		{0x3fff, 1},                           // last mapped byte
		{0x4000, 8}, {0x4000, 1},              // starts in the hole
		{0x5000, 8},                           // read-only page reads fine
		{0x6000, 8}, {0x6004, 2},              // execute-only: unreadable under EPT
		{0x5ffc, 8},                           // readable page crossing into unreadable
		{0x1002, 3}, {0x1007, 5},              // odd sizes take the generic path
	}
	for _, c := range cases {
		want, wf := readRef(as, c.va, c.size)
		got, gf := as.Read(c.va, c.size)
		if !sameFault(wf, gf) {
			t.Errorf("Read(%#x,%d): fault %v, byte-loop %v", c.va, c.size, gf, wf)
			continue
		}
		if wf == nil && got != want {
			t.Errorf("Read(%#x,%d): %#x, byte-loop %#x", c.va, c.size, got, want)
		}
	}
}

// TestWordWriteEquivalence: Write's in-page word path against the byte loop
// on a twin address space — identical faults and byte-identical memory,
// including partial progress where a cross-page store runs into a hole or a
// read-only page.
func TestWordWriteEquivalence(t *testing.T) {
	cases := []struct {
		va   uint64
		size uint8
	}{
		{0x1000, 8}, {0x1000, 4}, {0x1000, 2}, {0x1000, 1},
		{0x1003, 8}, {0x1001, 2}, // unaligned in-page
		{0x1ffc, 8}, {0x1fff, 2}, // page-crossing, both writable
		{0x3ffc, 8},              // partial progress, then faults at the hole
		{0x4000, 8},              // starts in the hole
		{0x5000, 8}, {0x5004, 1}, // read-only page
		{0x1002, 3}, {0x1007, 5}, // odd sizes take the generic path
	}
	for _, c := range cases {
		word, ref := layout(t), layout(t)
		v := rand.New(rand.NewSource(int64(c.va))).Uint64()
		gf := word.Write(c.va, v, c.size)
		wf := writeRef(ref, c.va, v, c.size)
		if !sameFault(wf, gf) {
			t.Errorf("Write(%#x,%d): fault %v, byte-loop %v", c.va, c.size, gf, wf)
			continue
		}
		for _, r := range []struct {
			va uint64
			n  int
		}{{0x1000, 3 * PageSize}, {0x5000, PageSize}} {
			b, err1 := word.Peek(r.va, r.n)
			w, err2 := ref.Peek(r.va, r.n)
			if err1 != nil || err2 != nil {
				t.Fatalf("peek: %v %v", err1, err2)
			}
			if !bytes.Equal(b, w) {
				t.Errorf("Write(%#x,%d): divergent memory at %#x", c.va, c.size, r.va)
			}
		}
	}
	// A cross-page store into a read-only page: bytes before the boundary
	// persist, the fault names the first read-only byte.
	as := layout(t)
	if _, err := as.Map(0x4000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	f := as.Write(0x4ffe, 0x04030201, 4)
	if f == nil || f.Kind != FaultNoWrite || f.Addr != 0x5000 {
		t.Fatalf("cross-page store into read-only: %v", f)
	}
	got, _ := as.Peek(0x4ffe, 2)
	if !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("bytes before the fault must persist: % x", got)
	}
}

// TestDataTLBInvalidation: every structural mutation — Protect, Unmap,
// ShadowData, Unshadow, remap — must be visible through accesses that just
// primed the data TLB. The TLB validates against MapGen, so these all
// invalidate by construction; this pins it.
func TestDataTLBInvalidation(t *testing.T) {
	as := layout(t)

	// Prime, then revoke write permission: the next store must fault.
	if f := as.Write(0x1000, 0xAB, 1); f != nil {
		t.Fatal(f)
	}
	if err := as.Protect(0x1000, 1, PermR); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x1000, 0xCD, 1); f == nil || f.Kind != FaultNoWrite {
		t.Fatalf("store after Protect: %v", f)
	}
	if v, f := as.Read(0x1000, 1); f != nil || v != 0xAB {
		t.Fatalf("read after Protect: %#x %v", v, f)
	}

	// Prime, then unmap: the next access must fault.
	if _, f := as.Read(0x2000, 8); f != nil {
		t.Fatal(f)
	}
	if err := as.Unmap(0x2000, 1); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0x2000, 8); f == nil || f.Kind != FaultNotMapped {
		t.Fatalf("read after Unmap: %v", f)
	}

	// Prime, then shadow: reads flip to the shadow view, stores keep landing
	// on the real frame (the ITLB/DTLB split), and Unshadow flips back.
	if f := as.Write(0x3000, 0x11, 1); f != nil {
		t.Fatal(f)
	}
	if err := as.ShadowData(0x3000, 1, nil); err != nil {
		t.Fatal(err)
	}
	if v, f := as.Read(0x3000, 1); f != nil || v != 0 {
		t.Fatalf("shadowed read must see the zero shadow: %#x %v", v, f)
	}
	if f := as.Write(0x3000, 0x22, 1); f != nil {
		t.Fatal(f)
	}
	if v, _ := as.Read(0x3000, 1); v != 0 {
		t.Fatalf("stores must not write through to the shadow: %#x", v)
	}
	as.Unshadow(0x3000, 1)
	if v, f := as.Read(0x3000, 1); f != nil || v != 0x22 {
		t.Fatalf("unshadowed read must see the real frame: %#x %v", v, f)
	}
}

// TestDataTLBRollback: a content-only Rollback restores frames in place, so
// primed TLB entries stay valid and must observe the restored bytes; a
// structural rollback bumps MapGen and drops mappings added afterwards.
func TestDataTLBRollback(t *testing.T) {
	as := layout(t)
	orig, _ := as.Read(0x1000, 8)
	as.Checkpoint()

	if f := as.Write(0x1000, ^orig, 8); f != nil {
		t.Fatal(f)
	}
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	if v, f := as.Read(0x1000, 8); f != nil || v != orig {
		t.Fatalf("read after content rollback: %#x want %#x (%v)", v, orig, f)
	}

	// Structural: a page mapped (and primed) after the checkpoint vanishes.
	if _, err := as.Map(0xa000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0xa000, 42, 8); f != nil {
		t.Fatal(f)
	}
	if err := as.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0xa000, 8); f == nil || f.Kind != FaultNotMapped {
		t.Fatalf("read of rolled-back mapping: %v", f)
	}
}

// TestDataTLBStats: the hit/miss counters move the way a direct-mapped,
// MapGen-validated TLB must.
func TestDataTLBStats(t *testing.T) {
	as := layout(t)
	s0 := as.DataTLBStats()
	if _, f := as.Read(0x1000, 8); f != nil {
		t.Fatal(f)
	}
	s1 := as.DataTLBStats()
	if s1.Misses != s0.Misses+1 {
		t.Fatalf("first touch must miss: %+v -> %+v", s0, s1)
	}
	for i := 0; i < 4; i++ {
		if _, f := as.Read(0x1008, 8); f != nil {
			t.Fatal(f)
		}
	}
	s2 := as.DataTLBStats()
	if s2.Hits < s1.Hits+4 {
		t.Fatalf("warm accesses must hit: %+v -> %+v", s1, s2)
	}
	// A structural bump invalidates: the next access misses again.
	if _, err := as.Map(0xb000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0x1000, 8); f != nil {
		t.Fatal(f)
	}
	if got := as.DataTLBStats(); got.Misses != s2.Misses+1 {
		t.Fatalf("access after MapGen bump must refill: %+v -> %+v", s2, got)
	}
	// Faults are never cached: repeated unmapped reads never count as hits.
	h := as.DataTLBStats().Hits
	as.Read(0x4000, 8)
	as.Read(0x4000, 8)
	if got := as.DataTLBStats(); got.Hits != h {
		t.Fatalf("unmapped accesses must not hit: %+v", got)
	}
}

// TestDataTLBAliasing: two virtual pages sharing one frame — a store through
// one alias is observable through the other even when both TLB entries are
// warm, because entries cache the frame, not its bytes.
func TestDataTLBAliasing(t *testing.T) {
	as := layout(t)
	fr, err := as.FramesAt(0x1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.MapFrames(0x9000, fr, PermRW); err != nil {
		t.Fatal(err)
	}
	// Warm both aliases.
	if _, f := as.Read(0x1000, 8); f != nil {
		t.Fatal(f)
	}
	if _, f := as.Read(0x9000, 8); f != nil {
		t.Fatal(f)
	}
	if f := as.Write(0x9010, 0xDEADBEEF, 8); f != nil {
		t.Fatal(f)
	}
	if v, f := as.Read(0x1010, 8); f != nil || v != 0xDEADBEEF {
		t.Fatalf("aliased store invisible: %#x %v", v, f)
	}
}
