package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

// stepOne executes a single encoded instruction on a scratch CPU with the
// given initial register values and returns the CPU afterwards.
func stepOne(t *testing.T, in isa.Instr, init map[isa.Reg]uint64, flags uint64) (*CPU, *Trap) {
	t.Helper()
	as := mem.NewAddressSpace()
	if _, err := as.Map(0x1000, 1, mem.PermX); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x8000, 4, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	code, err := in.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Poke(0x1000, code); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.Mode = Kernel
	c.RIP = 0x1000
	c.RFlags = flags
	c.SetReg(isa.RSP, 0x9000)
	for r, v := range init {
		c.SetReg(r, v)
	}
	_, trap := c.Step()
	return c, trap
}

// Property: ADD/SUB/CMP flag semantics agree with a direct reference
// computation for arbitrary operands.
func TestQuickAddSubFlags(t *testing.T) {
	f := func(a, b uint64, sub bool) bool {
		var in isa.Instr
		if sub {
			in = isa.SubRR(isa.RAX, isa.RBX)
		} else {
			in = isa.AddRR(isa.RAX, isa.RBX)
		}
		c, trap := stepOne(t, in, map[isa.Reg]uint64{isa.RAX: a, isa.RBX: b}, 0)
		if trap != nil {
			return false
		}
		var want uint64
		var cf, of bool
		if sub {
			want = a - b
			cf = a < b
			of = (a^b)&(a^want)>>63 != 0
		} else {
			want = a + b
			cf = want < a
			of = (^(a ^ b) & (a ^ want) >> 63) != 0
		}
		if c.Reg(isa.RAX) != want {
			return false
		}
		if (c.RFlags&isa.FlagCF != 0) != cf || (c.RFlags&isa.FlagOF != 0) != of {
			return false
		}
		if (c.RFlags&isa.FlagZF != 0) != (want == 0) {
			return false
		}
		if (c.RFlags&isa.FlagSF != 0) != (want>>63 != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: after CMP, every unsigned and signed condition code agrees
// with Go's comparison operators.
func TestQuickCmpConditions(t *testing.T) {
	f := func(a, b uint64) bool {
		c, trap := stepOne(t, isa.CmpRR(isa.RAX, isa.RBX),
			map[isa.Reg]uint64{isa.RAX: a, isa.RBX: b}, 0)
		if trap != nil {
			return false
		}
		fl := c.RFlags
		sa, sb := int64(a), int64(b)
		checks := []struct {
			cc   isa.Cond
			want bool
		}{
			{isa.CondE, a == b},
			{isa.CondNE, a != b},
			{isa.CondA, a > b},
			{isa.CondAE, a >= b},
			{isa.CondB, a < b},
			{isa.CondBE, a <= b},
			{isa.CondG, sa > sb},
			{isa.CondGE, sa >= sb},
			{isa.CondL, sa < sb},
			{isa.CondLE, sa <= sb},
		}
		for _, ch := range checks {
			if ch.cc.Eval(fl) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: logic ops clear CF/OF and set ZF/SF from the result.
func TestQuickLogicFlags(t *testing.T) {
	f := func(a, b uint64, sel uint8) bool {
		var in isa.Instr
		var want uint64
		switch sel % 3 {
		case 0:
			in, want = isa.AndRR(isa.RAX, isa.RBX), a&b
		case 1:
			in, want = isa.OrRR(isa.RAX, isa.RBX), a|b
		default:
			in, want = isa.XorRR(isa.RAX, isa.RBX), a^b
		}
		c, trap := stepOne(t, in, map[isa.Reg]uint64{isa.RAX: a, isa.RBX: b}, isa.FlagCF|isa.FlagOF)
		if trap != nil {
			return false
		}
		if c.Reg(isa.RAX) != want {
			return false
		}
		if c.RFlags&(isa.FlagCF|isa.FlagOF) != 0 {
			return false
		}
		return (c.RFlags&isa.FlagZF != 0) == (want == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: push then pop round-trips any value and preserves %rsp.
func TestQuickPushPopRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		as := mem.NewAddressSpace()
		if _, err := as.Map(0x1000, 1, mem.PermX); err != nil {
			return false
		}
		if _, err := as.Map(0x8000, 4, mem.PermRW); err != nil {
			return false
		}
		var code []byte
		var err error
		for _, in := range []isa.Instr{isa.Push(isa.RAX), isa.Pop(isa.RBX)} {
			code, err = in.Encode(code)
			if err != nil {
				return false
			}
		}
		if err := as.Poke(0x1000, code); err != nil {
			return false
		}
		c := New(as)
		c.Mode = Kernel
		c.RIP = 0x1000
		c.SetReg(isa.RSP, 0x9000)
		c.SetReg(isa.RAX, v)
		for i := 0; i < 2; i++ {
			if _, trap := c.Step(); trap != nil {
				return false
			}
		}
		return c.Reg(isa.RBX) == v && c.Reg(isa.RSP) == 0x9000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: DF controls string-op direction symmetrically — copying forward
// then backward returns the pointers to their start positions.
func TestQuickStringDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := uint64(1 + rng.Intn(16))
		as := mem.NewAddressSpace()
		if _, err := as.Map(0x1000, 1, mem.PermX); err != nil {
			t.Fatal(err)
		}
		if _, err := as.Map(0x8000, 4, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		code, err := isa.Movs(8, true).Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.Poke(0x1000, code); err != nil {
			t.Fatal(err)
		}
		c := New(as)
		c.Mode = Kernel
		c.RIP = 0x1000
		c.SetReg(isa.RSI, 0x8100)
		c.SetReg(isa.RDI, 0x8800)
		c.SetReg(isa.RCX, n)
		if _, trap := c.Step(); trap != nil {
			t.Fatal(trap)
		}
		if c.Reg(isa.RSI) != 0x8100+8*n || c.Reg(isa.RDI) != 0x8800+8*n {
			t.Fatalf("forward movs pointers wrong: rsi=%#x rdi=%#x n=%d", c.Reg(isa.RSI), c.Reg(isa.RDI), n)
		}
		// Backward.
		c.RIP = 0x1000
		c.RFlags |= isa.FlagDF
		c.SetReg(isa.RCX, n)
		if _, trap := c.Step(); trap != nil {
			t.Fatal(trap)
		}
		if c.Reg(isa.RSI) != 0x8100 || c.Reg(isa.RDI) != 0x8800 {
			t.Fatalf("backward movs did not return pointers: rsi=%#x rdi=%#x", c.Reg(isa.RSI), c.Reg(isa.RDI))
		}
	}
}

// Property: shifts match Go's shift semantics for counts 0-63.
func TestQuickShifts(t *testing.T) {
	f := func(v uint64, count uint8, sel uint8) bool {
		sh := count & 63
		var in isa.Instr
		var want uint64
		switch sel % 3 {
		case 0:
			in, want = isa.ShlRI(isa.RAX, sh), v<<sh
		case 1:
			in, want = isa.ShrRI(isa.RAX, sh), v>>sh
		default:
			in, want = isa.Instr{Op: isa.SARri, Dst: isa.RAX, Imm: int64(sh)}, uint64(int64(v)>>sh)
		}
		c, trap := stepOne(t, in, map[isa.Reg]uint64{isa.RAX: v}, 0)
		return trap == nil && c.Reg(isa.RAX) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
