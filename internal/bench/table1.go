// Package bench implements the evaluation harness: the LMBench-style
// micro-benchmarks of Table 1, the Phoronix-style macro workloads of
// Table 2, the §7.2 instrumentation statistics, and the ablation sweeps
// called out in DESIGN.md. All measurements are in emulated cycles; the
// reported numbers are percentage overheads over the vanilla kernel, like
// the paper's tables.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/kernel"
)

// OpKind distinguishes the two Table 1 sections.
type OpKind int

// Operation kinds.
const (
	Latency OpKind = iota
	Bandwidth
)

// MicroOp is one Table 1 row: Run performs a single operation against a
// booted kernel and returns the cycles consumed (only the timed syscalls
// count; setup calls are untimed, as in LMBench).
type MicroOp struct {
	Name  string
	Kind  OpKind
	Setup func(k *kernel.Kernel) error
	Run   func(k *kernel.Kernel) (uint64, error)
}

// timed accumulates the cycles of one syscall, failing loudly on kernel
// violations (a benchmark must never trip the protection).
func timed(r *kernel.SyscallResult, what string) (uint64, error) {
	if r.Failed {
		return 0, fmt.Errorf("bench: %s failed: %v (trap %v)", what, r.Run.Reason, r.Run.Trap)
	}
	return r.Run.Cycles, nil
}

func openTestFile(k *kernel.Kernel) (uint64, error) {
	if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
		return 0, err
	}
	r := k.Syscall(kernel.SysOpen, kernel.UserBuf)
	if r.Failed || int64(r.Ret) < 0 {
		return 0, fmt.Errorf("bench: open failed (ret %d)", int64(r.Ret))
	}
	return r.Ret, nil
}

// MicroOps returns the Table 1 rows.
func MicroOps() []MicroOp {
	pair := func(a, b uint64, args ...uint64) func(*kernel.Kernel) (uint64, error) {
		return func(k *kernel.Kernel) (uint64, error) {
			c1, err := timed(k.Syscall(a, args...), "op")
			if err != nil {
				return 0, err
			}
			c2, err := timed(k.Syscall(b, args...), "op")
			if err != nil {
				return 0, err
			}
			return c1 + c2, nil
		}
	}
	ops := []MicroOp{
		{
			Name: "syscall()", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysNull), "null")
			},
		},
		{
			Name: "open()/close()", Kind: Latency,
			Setup: func(k *kernel.Kernel) error {
				return k.WriteUser(0, append([]byte("testfile"), 0))
			},
			Run: func(k *kernel.Kernel) (uint64, error) {
				r := k.Syscall(kernel.SysOpen, kernel.UserBuf)
				c1, err := timed(r, "open")
				if err != nil {
					return 0, err
				}
				c2, err := timed(k.Syscall(kernel.SysClose, r.Ret), "close")
				return c1 + c2, err
			},
		},
		{
			Name: "read()/write()", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				fd, err := openTestFile(k)
				if err != nil {
					return 0, err
				}
				defer k.Syscall(kernel.SysClose, fd)
				c1, err := timed(k.Syscall(kernel.SysRead, fd, kernel.UserBuf+4096, 64), "read")
				if err != nil {
					return 0, err
				}
				c2, err := timed(k.Syscall(kernel.SysWrite, fd, kernel.UserBuf+4096, 64), "write")
				return c1 + c2, err
			},
		},
		{
			Name: "select(10 fds)", Kind: Latency,
			Setup: setupFDs(10),
			Run: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysSelect, 10), "select")
			},
		},
		{
			Name: "select(100 TCP fds)", Kind: Latency,
			Setup: setupFDs(60),
			Run: func(k *kernel.Kernel) (uint64, error) {
				// Scaled to the simulated fd-table size (60 of 64 slots).
				return timed(k.Syscall(kernel.SysSelect, 60), "select")
			},
		},
		{
			Name: "fstat()", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				fd, err := openTestFile(k)
				if err != nil {
					return 0, err
				}
				defer k.Syscall(kernel.SysClose, fd)
				return timed(k.Syscall(kernel.SysFstat, fd, kernel.UserBuf+2048), "fstat")
			},
		},
		{
			Name: "mmap()/munmap()", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				r := k.Syscall(kernel.SysMmap, 16)
				c1, err := timed(r, "mmap")
				if err != nil {
					return 0, err
				}
				c2, err := timed(k.Syscall(kernel.SysMunmap, r.Ret, 16), "munmap")
				return c1 + c2, err
			},
		},
		{Name: "fork()+exit()", Kind: Latency, Run: pair(kernel.SysFork, kernel.SysExit)},
		{
			Name: "fork()+execve()", Kind: Latency,
			Setup: func(k *kernel.Kernel) error {
				return k.WriteUser(0, append([]byte("testfile"), 0))
			},
			Run: func(k *kernel.Kernel) (uint64, error) {
				c1, err := timed(k.Syscall(kernel.SysFork), "fork")
				if err != nil {
					return 0, err
				}
				c2, err := timed(k.Syscall(kernel.SysExecve, kernel.UserBuf), "execve")
				return c1 + c2, err
			},
		},
		{
			Name: "fork()+/bin/sh", Kind: Latency,
			Setup: func(k *kernel.Kernel) error {
				return k.WriteUser(0, append([]byte("testfile"), 0))
			},
			Run: func(k *kernel.Kernel) (uint64, error) {
				// fork + shell: execve of the shell, which opens and
				// execves the target.
				var total uint64
				for _, c := range [][]uint64{
					{kernel.SysFork},
					{kernel.SysExecve, kernel.UserBuf},
					{kernel.SysOpen, kernel.UserBuf},
					{kernel.SysExecve, kernel.UserBuf},
				} {
					cy, err := timed(k.Syscall(c[0], c[1:]...), "sh step")
					if err != nil {
						return 0, err
					}
					total += cy
				}
				return total, nil
			},
		},
		{
			Name: "sigaction()", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysSigaction, 5, 0x1000), "sigaction")
			},
		},
		{
			Name: "Signal delivery", Kind: Latency,
			Setup: func(k *kernel.Kernel) error {
				r := k.Syscall(kernel.SysSigaction, 5, 0x1000)
				if r.Failed {
					return fmt.Errorf("sigaction setup failed")
				}
				return nil
			},
			Run: func(k *kernel.Kernel) (uint64, error) {
				return timed(k.Syscall(kernel.SysKill, 5), "kill")
			},
		},
		{
			Name: "Protection fault", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				res := k.TriggerFault(0xffffea0000000000) // kernel address from user
				if res.Reason.String() != "iret" {
					return 0, fmt.Errorf("prot fault: %v %v", res.Reason, res.Trap)
				}
				return res.Cycles, nil
			},
		},
		{
			Name: "Page fault", Kind: Latency,
			Run: func(k *kernel.Kernel) (uint64, error) {
				res := k.TriggerFault(0x0000000000a00000) // unmapped user page
				if res.Reason.String() != "iret" {
					return 0, fmt.Errorf("page fault: %v %v", res.Reason, res.Trap)
				}
				return res.Cycles, nil
			},
		},
		ringLatency("Pipe I/O", kernel.SysPipeWrite, kernel.SysPipeRead, 64),
		ringLatency("UNIX socket I/O", kernel.SysUnixWrite, kernel.SysUnixRead, 64),
		ringLatency("TCP socket I/O", kernel.SysTCPWrite, kernel.SysTCPRead, 64),
		ringLatency("UDP socket I/O", kernel.SysUDPWrite, kernel.SysUDPRead, 64),

		ringBandwidth("Pipe I/O", kernel.SysPipeWrite, kernel.SysPipeRead),
		ringBandwidth("UNIX socket I/O", kernel.SysUnixWrite, kernel.SysUnixRead),
		ringBandwidth("TCP socket I/O", kernel.SysTCPWrite, kernel.SysTCPRead),
		{
			Name: "mmap() I/O", Kind: Bandwidth,
			Run: func(k *kernel.Kernel) (uint64, error) {
				// Copying out of a mapped file happens in user code; the
				// kernel is only entered to return.
				r := k.UserCopy(kernel.UserBuf+65536, kernel.UserBuf, 2048)
				return timed(r, "user copy")
			},
		},
		{
			Name: "File I/O", Kind: Bandwidth,
			Run: func(k *kernel.Kernel) (uint64, error) {
				fd, err := openTestFile(k)
				if err != nil {
					return 0, err
				}
				defer k.Syscall(kernel.SysClose, fd)
				c1, err := timed(k.Syscall(kernel.SysRead, fd, kernel.UserBuf+4096, 16384), "read 16k")
				if err != nil {
					return 0, err
				}
				c2, err := timed(k.Syscall(kernel.SysWrite, fd, kernel.UserBuf+4096, 16384), "write 16k")
				return c1 + c2, err
			},
		},
	}
	return ops
}

func setupFDs(n int) func(*kernel.Kernel) error {
	return func(k *kernel.Kernel) error {
		if err := k.WriteUser(0, append([]byte("testfile"), 0)); err != nil {
			return err
		}
		// Start from a clean fd table.
		for fd := uint64(0); fd < 64; fd++ {
			k.Syscall(kernel.SysClose, fd)
		}
		for i := 0; i < n; i++ {
			if r := k.Syscall(kernel.SysOpen, kernel.UserBuf); r.Failed || int64(r.Ret) < 0 {
				return fmt.Errorf("bench: fd setup open %d failed", i)
			}
		}
		return nil
	}
}

func ringLatency(name string, wr, rd uint64, size uint64) MicroOp {
	return MicroOp{
		Name: name, Kind: Latency,
		Setup: func(k *kernel.Kernel) error {
			return k.WriteUser(4096, make([]byte, 4096))
		},
		Run: func(k *kernel.Kernel) (uint64, error) {
			c1, err := timed(k.Syscall(wr, kernel.UserBuf+4096, size), "ring write")
			if err != nil {
				return 0, err
			}
			c2, err := timed(k.Syscall(rd, kernel.UserBuf+8192, size), "ring read")
			return c1 + c2, err
		},
	}
}

func ringBandwidth(name string, wr, rd uint64) MicroOp {
	op := ringLatency(name, wr, rd, 4096)
	op.Kind = Bandwidth
	return op
}

// Table holds measured overheads: Rows x Configs percentages over vanilla.
type Table struct {
	Title    string
	RowNames []string
	RowKinds []OpKind
	Configs  []string
	Baseline []float64   // vanilla cycles per op (or per workload run)
	Overhead [][]float64 // [row][config] percent
}

// Table1Configs returns the eleven protection columns of Table 1.
func Table1Configs() []core.Config {
	p := core.Presets()
	return p[1:] // everything except vanilla
}

// measureOps boots one kernel (from the shared build cache) and measures
// every op. Cycle counts are emulated and therefore deterministic, so
// columns measured concurrently report exactly what a sequential sweep
// would.
func measureOps(cfg core.Config, ops []MicroOp, iters int) ([]float64, error) {
	k, err := kernel.Boot(cfg, kernel.WithCache())
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ops))
	for i, op := range ops {
		// Each op starts from a clean fd table (ops like fork()+/bin/sh
		// leak descriptors by design, as the real workloads do).
		for fd := uint64(0); fd < 64; fd++ {
			k.Syscall(kernel.SysClose, fd)
		}
		if op.Setup != nil {
			if err := op.Setup(k); err != nil {
				return nil, fmt.Errorf("%s (%s): %w", op.Name, cfg.Name(), err)
			}
		}
		// Warmup.
		if _, err := op.Run(k); err != nil {
			return nil, fmt.Errorf("%s (%s): %w", op.Name, cfg.Name(), err)
		}
		var total uint64
		for n := 0; n < iters; n++ {
			c, err := op.Run(k)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", op.Name, cfg.Name(), err)
			}
			total += c
		}
		out[i] = float64(total) / float64(iters)
	}
	return out, nil
}

// RunTable1 measures every micro-op under every configuration and returns
// the overhead table. The columns (and the vanilla baseline) are measured
// in parallel, one kernel per column, all columns sharing cached builds;
// results are folded in column order, so the table is identical to the
// sequential sweep's.
func RunTable1(iters int) (*Table, error) {
	if iters <= 0 {
		iters = 10
	}
	ops := MicroOps()
	cfgs := Table1Configs()
	t := &Table{Title: "Table 1: LMBench micro-benchmark overhead (%)"}
	for _, op := range ops {
		t.RowNames = append(t.RowNames, op.Name)
		t.RowKinds = append(t.RowKinds, op.Kind)
	}
	// Column 0 is the vanilla baseline, columns 1..len(cfgs) the protected
	// configurations.
	cols, err := sweep(append([]core.Config{core.Vanilla}, cfgs...), func(cfg core.Config) ([]float64, error) {
		return measureOps(cfg, MicroOps(), iters)
	})
	if err != nil {
		return nil, err
	}
	base := cols[0]
	t.Baseline = base
	t.Overhead = make([][]float64, len(ops))
	for i := range t.Overhead {
		t.Overhead[i] = make([]float64, len(cfgs))
	}
	for ci, cfg := range cfgs {
		t.Configs = append(t.Configs, cfg.Name())
		for ri := range ops {
			t.Overhead[ri][ci] = 100 * (cols[ci+1][ri] - base[ri]) / base[ri]
		}
	}
	return t, nil
}

// sweep measures one column per configuration concurrently and returns the
// per-config results in input order. The first error (in input order) wins.
func sweep(cfgs []core.Config, measure func(core.Config) ([]float64, error)) ([][]float64, error) {
	cols := make([][]float64, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg core.Config) {
			defer wg.Done()
			cols[i], errs[i] = measure(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cols, nil
}
