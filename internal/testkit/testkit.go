// Package testkit provides shared helpers for tests that need to build,
// link, install, and execute small IR programs on the emulator.
package testkit

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kas"
	"repro/internal/link"
	"repro/internal/mem"
)

// Env is an installed test environment.
type Env struct {
	CPU   *cpu.CPU
	Img   *link.Image
	Space *kas.Space
}

// Build links prog under the given layout, installs it into a fresh address
// space, and returns the environment.
func Build(t testing.TB, prog *ir.Program, layout kas.Kind) *Env {
	t.Helper()
	img, err := link.Link(prog, link.Options{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	pool := kas.NewPhysPool(32 << 20)
	sp, err := kas.Install(img.Layout, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Install(sp); err != nil {
		t.Fatal(err)
	}
	return &Env{CPU: cpu.New(sp.AS), Img: img, Space: sp}
}

// FillKeys writes deterministic-but-nontrivial values into every xkey slot
// (the boot-time key replenishment).
func (e *Env) FillKeys(t testing.TB, seed uint64) {
	t.Helper()
	x := seed | 1
	for _, addr := range e.Img.KeyAddrs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		var b [8]byte
		for i := range b {
			b[i] = byte(x >> (8 * i))
		}
		if err := e.Space.AS.Poke(addr, b[:]); err != nil {
			t.Fatal(err)
		}
	}
}

// Call positions the CPU at the named kernel function with up to four
// arguments in %rdi/%rsi/%rdx/%rcx, a fresh kernel stack topped with the
// stop sentinel, and runs to completion.
func (e *Env) Call(t testing.TB, fn string, args ...uint64) *cpu.RunResult {
	t.Helper()
	stack, err := e.Space.AllocMapped(4)
	if err != nil {
		t.Fatal(err)
	}
	top := stack + 4*mem.PageSize - 64
	e.CPU.Mode = cpu.Kernel
	e.CPU.SetReg(isa.RSP, top)
	if f := e.Space.AS.Write(top, cpu.StopMagic, 8); f != nil {
		t.Fatal(f)
	}
	regs := []isa.Reg{isa.RDI, isa.RSI, isa.RDX, isa.RCX}
	for i, a := range args {
		if i >= len(regs) {
			t.Fatalf("too many arguments (%d)", len(args))
		}
		e.CPU.SetReg(regs[i], a)
	}
	addr, ok := e.Img.FuncAddr(fn)
	if !ok {
		t.Fatalf("no function %q", fn)
	}
	e.CPU.RIP = addr
	return e.CPU.Run(1 << 20)
}

// KrxHandler returns the standard violation handler function: it simply
// halts the system (the paper's default handler logs and halts).
func KrxHandler() *ir.Function {
	f, err := ir.NewBuilder("krx_handler").
		I(isa.Hlt()).
		Func()
	if err != nil {
		panic(err)
	}
	f.NoInstrument = true
	f.NoDiversify = true
	return f
}
