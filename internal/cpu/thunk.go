package cpu

import (
	"math/bits"

	"repro/internal/isa"
)

// The block compiler: per-opcode dispatch specialization.
//
// The superblock engine (bcache.go) amortizes lookup and validation over
// straight-line regions, but until this layer every instruction inside a
// block still re-entered the ~400-line exec switch: opcode dispatch, operand
// field loads, effective-address shape branches, access-size normalization,
// and the full CF/OF/SF/ZF/PF computation on every ALU op. All of that is
// invariant for a given decoded instruction at a given address, so it can be
// resolved ONCE, at block formation time, into a specialized closure — a
// thunk — that the steady-state dispatch loop calls directly.
//
// Three families of specialization happen here:
//
//   - Operand capture. A thunk closes over the decoded operands as Go
//     locals: register indices, sign-extended immediates, the access size,
//     and — because a block executes at a fixed virtual address — the
//     CONSTANT successor address `next` and any %rip-relative or absolute
//     effective address, folded to a single uint64 at compile time. Branch
//     targets (JMP/JCC/CALL rel32) fold the same way.
//
//   - Effective-address folding. compileEA flattens every operand shape
//     (constant, base+disp, index*scale+disp, base+index*scale+disp) into
//     one branchless three-term expression (eaCap) instead of re-testing
//     HasBase/HasIndex/RIPRel per execution.
//
//   - Flag-dead fusion. compileBlock runs a backward liveness pass over the
//     block: an arithmetic instruction whose CF/OF/SF/ZF/PF results are
//     provably overwritten before ANY observable point gets the fused
//     no-flags thunk variant — a bare register update (or, for CMP/TEST, a
//     pure no-op) with no flagsAdd/flagsSub/setSZP/parity work at all.
//
// Soundness of the fusion rests on a conservative definition of "observable
// point". The architectural %rflags must be bit-exact whenever anything can
// legally look at it:
//
//   - a flag READER executes (JCC, PUSHFQ, SYSCALL's %r11 spill, INC/DEC's
//     CF preservation, REPE CMPS/SCAS) — dcFR entries;
//   - an instruction that can TRAP executes (the trap handler and the
//     post-trap stop path both see %rflags; a trapping instruction may fault
//     BEFORE writing its own flags, so it cannot count as an overwriter
//     either) — dcTrap entries;
//   - the block EXITS (fallthrough, terminator, limit stop: the dispatcher,
//     a chained successor, a probe-armed re-entry, or the caller may all
//     read flags next) — liveness starts pessimistic at the block tail;
//   - the block ABORTS after a self-modifying store (the remaining entries
//     are stale; their liveness promises are void) — every dcStore entry is
//     treated as a block exit for the instruction it follows.
//
// Only an entry followed — with no such point in between — by an
// instruction that unconditionally overwrites ALL arithmetic flags and
// cannot trap (dcFW: the reg/imm ALU, shift, NEG, IMUL, CMP, TEST forms)
// may be fused. Everything the pass is unsure about stays live, and the
// probe-armed path never executes thunks at all (Run falls back to Step,
// exactly like today), so per-instruction observers always see interpreter
// semantics.
//
// Thunks capture NO *CPU and no page state — only immutable decoded
// operands — so compiled blocks are shared freely across COW forks
// (fork.go) and are invalidated by exactly the machinery that already
// drops the blocks that own them.

// thunk executes one compiled instruction against c. It mirrors exec's trap
// behaviour bit for bit and sets c.RIP to the successor on completion.
// Instrs/Cycles accounting is NOT done per thunk: the dispatch loop charges
// a whole (possibly partial) block run in one shot from the cumulative
// cycle sums the compiler stores in cthunk.cyc — two fewer memory
// read-modify-writes on every instruction of the steady state.
type thunk func(c *CPU) (StopReason, *Trap)

// cthunk is one compiled block entry: the specialized thunk, the cumulative
// base cycle cost and instruction count of the block through this entry (so
// the dispatch loop can account a run ending here with one addition each —
// and so a tail-fused entry, which retires TWO instructions, charges both),
// and the decode flags the loop needs (dcStore for the self-modification
// abort check). Kept small so the compiled dispatch loop walks a dense
// array. A nil fn marks an entry with no specialized form; the dispatch
// loop interprets it from the block's entry array at the same index —
// indices align because fusion only ever shortens the tail.
type cthunk struct {
	fn    thunk
	cyc   uint64
	ni    uint32
	flags uint8
}

// compileBlock lowers a formed block to compiled thunks. va is the virtual
// address of the block's first instruction (blocks never outlive a remap of
// their page, so it is a formation-time constant). It returns the thunk
// array and the number of entries whose flag computation was elided by the
// liveness pass.
//
// The liveness pass walks backwards. dead == true means: the arithmetic
// flags as they stand RIGHT AFTER the current entry are provably
// overwritten before any observable point, so the entry need not compute
// them. See the package comment above for what counts as observable.
func compileBlock(ents []blkEnt, va uint64) (comp []cthunk, fused uint64) {
	// Forward pass: per-entry successor addresses and the running sum of
	// base cycle costs — the dispatch loop charges a whole run from the
	// last executed entry's cumulative total instead of per instruction.
	comp = make([]cthunk, len(ents))
	nexts := make([]uint64, len(ents))
	var cyc uint64
	for i := range ents {
		va += uint64(ents[i].ilen)
		nexts[i] = va
		cyc += ents[i].cost
		comp[i].cyc = cyc
		comp[i].ni = uint32(i + 1)
	}
	dead := false // block exit: flags live
	for i := len(ents) - 1; i >= 0; i-- {
		e := &ents[i]
		d := dead
		if e.flags&dcStore != 0 {
			// A store can abort the block right after this entry
			// (self-modification resync): treat the position after it as an
			// exit, whatever the (possibly stale) rest of the block promised.
			d = false
		}
		fn, elided := compileEnt(&e.in, nexts[i], d)
		comp[i].fn = fn
		comp[i].flags = e.flags
		if elided {
			fused++
		}
		switch {
		case e.flags&(dcFR|dcTrap) != 0:
			// Reads flags, or may trap before (fully) writing them: every
			// earlier flag result must be architectural here.
			dead = false
		case e.flags&dcFW != 0:
			// Unconditionally overwrites all arithmetic flags, trap-free:
			// earlier results die here.
			dead = true
		}
	}
	// Tail fusion: a trap-free register compare/arith feeding the block's
	// terminating JCC collapses into one thunk, so the hottest two-entry
	// sequence in loop code (cmp/test/dec ; jcc) pays one dispatch round
	// instead of two. The combined thunk still computes the architectural
	// flags first and branches on them — bit-identical, just one call. The
	// fused entry's cumulative cyc/ni are the terminator's, so accounting
	// charges both instructions.
	if n := len(ents); n >= 2 && ents[n-1].in.Op == isa.JCC {
		if fn := compileCmpJcc(&ents[n-2].in, &ents[n-1].in, nexts[n-1]); fn != nil {
			comp[n-2] = cthunk{fn: fn, cyc: comp[n-1].cyc, ni: comp[n-1].ni, flags: ents[n-2].flags}
			comp = comp[:n-1]
		}
	}
	return comp, fused
}

// compileCmpJcc fuses a trap-free register-form flag producer with the
// block-terminating conditional branch that consumes it. jnext is the
// branch's successor (fallthrough) address. Returns nil for producers that
// can trap (memory forms) or have no fused constructor — the pair then
// dispatches as two ordinary entries.
func compileCmpJcc(p, j *isa.Instr, jnext uint64) thunk {
	d, s := p.Dst, p.Src
	imm := uint64(p.Imm)
	cc := j.CC
	target := jnext + uint64(j.Imm)
	branch := func(c *CPU) {
		if cc.Eval(c.RFlags) {
			c.RIP = target
		} else {
			c.RIP = jnext
		}
	}
	switch p.Op {
	case isa.CMPri:
		return func(c *CPU) (StopReason, *Trap) {
			a := c.Regs[d]
			c.flagsSub(a, imm, a-imm)
			branch(c)
			return StepContinue, nil
		}
	case isa.CMPrr:
		return func(c *CPU) (StopReason, *Trap) {
			a, b := c.Regs[d], c.Regs[s]
			c.flagsSub(a, b, a-b)
			branch(c)
			return StepContinue, nil
		}
	case isa.TESTrr:
		return func(c *CPU) (StopReason, *Trap) {
			c.flagsLogic(c.Regs[d] & c.Regs[s])
			branch(c)
			return StepContinue, nil
		}
	case isa.TESTri:
		return func(c *CPU) (StopReason, *Trap) {
			c.flagsLogic(c.Regs[d] & imm)
			branch(c)
			return StepContinue, nil
		}
	case isa.ADDri:
		return func(c *CPU) (StopReason, *Trap) {
			a := c.Regs[d]
			r := a + imm
			c.Regs[d] = r
			c.flagsAdd(a, imm, r)
			branch(c)
			return StepContinue, nil
		}
	case isa.ADDrr:
		return func(c *CPU) (StopReason, *Trap) {
			a, b := c.Regs[d], c.Regs[s]
			r := a + b
			c.Regs[d] = r
			c.flagsAdd(a, b, r)
			branch(c)
			return StepContinue, nil
		}
	case isa.SUBri:
		return func(c *CPU) (StopReason, *Trap) {
			a := c.Regs[d]
			r := a - imm
			c.Regs[d] = r
			c.flagsSub(a, imm, r)
			branch(c)
			return StepContinue, nil
		}
	case isa.SUBrr:
		return func(c *CPU) (StopReason, *Trap) {
			a, b := c.Regs[d], c.Regs[s]
			r := a - b
			c.Regs[d] = r
			c.flagsSub(a, b, r)
			branch(c)
			return StepContinue, nil
		}
	case isa.INCr:
		return func(c *CPU) (StopReason, *Trap) {
			cf := c.RFlags & isa.FlagCF
			a := c.Regs[d]
			r := a + 1
			c.Regs[d] = r
			c.flagsAdd(a, 1, r)
			c.RFlags = (c.RFlags &^ isa.FlagCF) | cf
			branch(c)
			return StepContinue, nil
		}
	case isa.DECr:
		return func(c *CPU) (StopReason, *Trap) {
			cf := c.RFlags & isa.FlagCF
			a := c.Regs[d]
			r := a - 1
			c.Regs[d] = r
			c.flagsSub(a, 1, r)
			c.RFlags = (c.RFlags &^ isa.FlagCF) | cf
			branch(c)
			return StepContinue, nil
		}
	}
	return nil
}

// eaCap is a captured effective-address computation, branchless:
// addr(c) = Regs[b]*bm + Regs[x]*xs + disp. An absent base or index keeps a
// zero multiplier (its register index then reads %rax, harmlessly), and
// %rip-relative or absolute operands fold entirely into disp — so every
// operand shape evaluates as the same three-term expression, which inlines
// into each memory thunk with no nested call per execution.
type eaCap struct {
	b, x   uint8  // GPR indices (masked on use, so addr stays bounds-check-free)
	bm, xs uint64 // base multiplier (0 or 1) and index scale (0 = no index)
	disp   uint64
}

func (e eaCap) addr(c *CPU) uint64 {
	return c.Regs[e.b&(isa.NumGPR-1)]*e.bm + c.Regs[e.x&(isa.NumGPR-1)]*e.xs + e.disp
}

// compileEA folds a memory operand into an eaCap. next is the instruction's
// successor address (the anchor of %rip-relative references — a compile-time
// constant, so RIP-relative and absolute operands fold to a single uint64).
func compileEA(m isa.MemRef, next uint64) eaCap {
	disp := uint64(int64(m.Disp))
	if m.RIPRel {
		return eaCap{disp: next + disp}
	}
	e := eaCap{disp: disp}
	if m.HasBase() {
		e.b, e.bm = uint8(m.Base), 1
	}
	if m.HasIndex() {
		e.x, e.xs = uint8(m.Index), uint64(m.Scale)
	}
	return e
}

// compileEnt builds the specialized thunk for one decoded instruction with
// constant successor address next. dead reports that the instruction's
// arithmetic-flag results are never observed (see compileBlock); the
// returned bool reports whether flag computation was actually elided on
// that basis. Opcodes with no specialized constructor (string, system, MPX
// spill/fill, trap instructions — all block-rare) return a nil thunk, which
// the dispatch loop interprets in place through the exec switch — always
// semantically exact.
func compileEnt(in *isa.Instr, next uint64, dead bool) (thunk, bool) {
	d, s := in.Dst, in.Src
	imm := uint64(in.Imm)

	switch in.Op {
	case isa.NOP, isa.SWAPGS:
		return func(c *CPU) (StopReason, *Trap) {
			c.RIP = next
			return StepContinue, nil
		}, false

	// --- data movement ---
	case isa.MOVri:
		return func(c *CPU) (StopReason, *Trap) {
			c.Regs[d] = imm
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.MOVrr:
		return func(c *CPU) (StopReason, *Trap) {
			c.Regs[d] = c.Regs[s]
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.LEA:
		ea := compileEA(in.M, next)
		return func(c *CPU) (StopReason, *Trap) {
			c.Regs[d] = ea.addr(c)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.MOVrm:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.load(ea.addr(c), sz)
			if t != nil {
				return StepContinue, t
			}
			c.Regs[d] = v
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.MOVmr:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			if t := c.store(ea.addr(c), c.Regs[d], sz); t != nil {
				return StepContinue, t
			}
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.MOVmi:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			if t := c.store(ea.addr(c), imm, sz); t != nil {
				return StepContinue, t
			}
			c.RIP = next
			return StepContinue, nil
		}, false

	// --- stack ---
	case isa.PUSH:
		return func(c *CPU) (StopReason, *Trap) {
			if t := c.push(c.Regs[d]); t != nil {
				return StepContinue, t
			}
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.POP:
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.pop()
			if t != nil {
				return StepContinue, t
			}
			c.Regs[d] = v
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.PUSHFQ:
		return func(c *CPU) (StopReason, *Trap) {
			if t := c.push(c.RFlags); t != nil {
				return StepContinue, t
			}
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.POPFQ:
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.pop()
			if t != nil {
				return StepContinue, t
			}
			c.RFlags = v
			c.RIP = next
			return StepContinue, nil
		}, false

	// --- arithmetic (fused no-flags variants when the result flags are
	// provably dead; the live variants call the shared flag helpers) ---
	case isa.ADDri:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] += imm
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			a := c.Regs[d]
			r := a + imm
			c.Regs[d] = r
			c.flagsAdd(a, imm, r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.ADDrr:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] += c.Regs[s]
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			a, b := c.Regs[d], c.Regs[s]
			r := a + b
			c.Regs[d] = r
			c.flagsAdd(a, b, r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.ADDrm:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			b, t := c.load(ea.addr(c), sz)
			if t != nil {
				return StepContinue, t
			}
			a := c.Regs[d]
			r := a + b
			c.Regs[d] = r
			c.flagsAdd(a, b, r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.SUBri:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] -= imm
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			a := c.Regs[d]
			r := a - imm
			c.Regs[d] = r
			c.flagsSub(a, imm, r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.SUBrr:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] -= c.Regs[s]
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			a, b := c.Regs[d], c.Regs[s]
			r := a - b
			c.Regs[d] = r
			c.flagsSub(a, b, r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.SUBrm:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			b, t := c.load(ea.addr(c), sz)
			if t != nil {
				return StepContinue, t
			}
			a := c.Regs[d]
			r := a - b
			c.Regs[d] = r
			c.flagsSub(a, b, r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.ANDri, isa.ORri, isa.XORri:
		op := in.Op
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				switch op {
				case isa.ANDri:
					c.Regs[d] &= imm
				case isa.ORri:
					c.Regs[d] |= imm
				default:
					c.Regs[d] ^= imm
				}
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			switch op {
			case isa.ANDri:
				c.Regs[d] &= imm
			case isa.ORri:
				c.Regs[d] |= imm
			default:
				c.Regs[d] ^= imm
			}
			c.flagsLogic(c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.ANDrr, isa.ORrr, isa.XORrr:
		op := in.Op
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				switch op {
				case isa.ANDrr:
					c.Regs[d] &= c.Regs[s]
				case isa.ORrr:
					c.Regs[d] |= c.Regs[s]
				default:
					c.Regs[d] ^= c.Regs[s]
				}
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			switch op {
			case isa.ANDrr:
				c.Regs[d] &= c.Regs[s]
			case isa.ORrr:
				c.Regs[d] |= c.Regs[s]
			default:
				c.Regs[d] ^= c.Regs[s]
			}
			c.flagsLogic(c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.XORrm:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.load(ea.addr(c), sz)
			if t != nil {
				return StepContinue, t
			}
			c.Regs[d] ^= v
			c.flagsLogic(c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.XORmr:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			a := ea.addr(c)
			v, t := c.load(a, sz)
			if t != nil {
				return StepContinue, t
			}
			r := v ^ c.Regs[d]
			if t := c.store(a, r, sz); t != nil {
				return StepContinue, t
			}
			c.flagsLogic(r)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.SHLri:
		sh := uint(imm) & 63
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] <<= sh
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			v := c.Regs[d]
			c.RFlags &^= isa.FlagCF | isa.FlagOF
			if sh > 0 && (v>>(64-sh))&1 != 0 {
				c.RFlags |= isa.FlagCF
			}
			c.Regs[d] = v << sh
			c.setSZP(c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.SHRri:
		sh := uint(imm) & 63
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] >>= sh
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			v := c.Regs[d]
			c.RFlags &^= isa.FlagCF | isa.FlagOF
			if sh > 0 && (v>>(sh-1))&1 != 0 {
				c.RFlags |= isa.FlagCF
			}
			c.Regs[d] = v >> sh
			c.setSZP(c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.SARri:
		sh := uint(imm) & 63
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] = uint64(int64(c.Regs[d]) >> sh)
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			v := int64(c.Regs[d])
			c.RFlags &^= isa.FlagCF | isa.FlagOF
			if sh > 0 && (v>>(sh-1))&1 != 0 {
				c.RFlags |= isa.FlagCF
			}
			c.Regs[d] = uint64(v >> sh)
			c.setSZP(c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.NOTr:
		return func(c *CPU) (StopReason, *Trap) {
			c.Regs[d] = ^c.Regs[d]
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.NEGr:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] = -c.Regs[d]
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			v := c.Regs[d]
			c.Regs[d] = -v
			c.flagsSub(0, v, c.Regs[d])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.IMULrr:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] *= c.Regs[s]
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			hi, lo := bits.Mul64(c.Regs[d], c.Regs[s])
			c.Regs[d] = lo
			c.RFlags &^= isa.FlagCF | isa.FlagOF
			if hi != 0 && hi != ^uint64(0) {
				c.RFlags |= isa.FlagCF | isa.FlagOF
			}
			c.setSZP(lo)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.IMULri:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d] *= imm
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			hi, lo := bits.Mul64(c.Regs[d], imm)
			c.Regs[d] = lo
			c.RFlags &^= isa.FlagCF | isa.FlagOF
			if hi != 0 && hi != ^uint64(0) {
				c.RFlags |= isa.FlagCF | isa.FlagOF
			}
			c.setSZP(lo)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.INCr:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d]++
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			cf := c.RFlags & isa.FlagCF
			a := c.Regs[d]
			r := a + 1
			c.Regs[d] = r
			c.flagsAdd(a, 1, r)
			c.RFlags = (c.RFlags &^ isa.FlagCF) | cf
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.DECr:
		if dead {
			return func(c *CPU) (StopReason, *Trap) {
				c.Regs[d]--
				c.RIP = next
				return StepContinue, nil
			}, true
		}
		return func(c *CPU) (StopReason, *Trap) {
			cf := c.RFlags & isa.FlagCF
			a := c.Regs[d]
			r := a - 1
			c.Regs[d] = r
			c.flagsSub(a, 1, r)
			c.RFlags = (c.RFlags &^ isa.FlagCF) | cf
			c.RIP = next
			return StepContinue, nil
		}, false

	// --- comparison (a dead compare has no architectural effect at all) ---
	case isa.CMPri:
		if dead {
			return nopThunk(next), true
		}
		return func(c *CPU) (StopReason, *Trap) {
			a := c.Regs[d]
			c.flagsSub(a, imm, a-imm)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.CMPrr:
		if dead {
			return nopThunk(next), true
		}
		return func(c *CPU) (StopReason, *Trap) {
			a, b := c.Regs[d], c.Regs[s]
			c.flagsSub(a, b, a-b)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.CMPrm:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.load(ea.addr(c), sz)
			if t != nil {
				return StepContinue, t
			}
			a := c.Regs[d]
			c.flagsSub(a, v, a-v)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.CMPmi:
		ea := compileEA(in.M, next)
		sz := in.AccessSize()
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.load(ea.addr(c), sz)
			if t != nil {
				return StepContinue, t
			}
			c.flagsSub(v, imm, v-imm)
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.TESTrr:
		if dead {
			return nopThunk(next), true
		}
		return func(c *CPU) (StopReason, *Trap) {
			c.flagsLogic(c.Regs[d] & c.Regs[s])
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.TESTri:
		if dead {
			return nopThunk(next), true
		}
		return func(c *CPU) (StopReason, *Trap) {
			c.flagsLogic(c.Regs[d] & imm)
			c.RIP = next
			return StepContinue, nil
		}, false

	// --- control transfer (targets fold to constants) ---
	case isa.JMP:
		target := next + imm
		return func(c *CPU) (StopReason, *Trap) {
			c.RIP = target
			return StepContinue, nil
		}, false
	case isa.JMPR:
		return func(c *CPU) (StopReason, *Trap) {
			c.RIP = c.Regs[d]
			return StepContinue, nil
		}, false
	case isa.JMPM:
		ea := compileEA(in.M, next)
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.load(ea.addr(c), 8)
			if t != nil {
				return StepContinue, t
			}
			c.RIP = v
			return StepContinue, nil
		}, false
	case isa.JCC:
		cc := in.CC
		target := next + imm
		return func(c *CPU) (StopReason, *Trap) {
			if cc.Eval(c.RFlags) {
				c.RIP = target
			} else {
				c.RIP = next
			}
			return StepContinue, nil
		}, false
	case isa.CALL:
		target := next + imm
		return func(c *CPU) (StopReason, *Trap) {
			if t := c.push(next); t != nil {
				return StepContinue, t
			}
			c.RIP = target
			return StepContinue, nil
		}, false
	case isa.CALLR:
		return func(c *CPU) (StopReason, *Trap) {
			if t := c.push(next); t != nil {
				return StepContinue, t
			}
			c.RIP = c.Regs[d]
			return StepContinue, nil
		}, false
	case isa.CALLM:
		ea := compileEA(in.M, next)
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.load(ea.addr(c), 8)
			if t != nil {
				return StepContinue, t
			}
			if t := c.push(next); t != nil {
				return StepContinue, t
			}
			c.RIP = v
			return StepContinue, nil
		}, false
	case isa.RET:
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.pop()
			if t != nil {
				return StepContinue, t
			}
			if v == StopMagic {
				return StopReturn, nil
			}
			c.RIP = v
			return StepContinue, nil
		}, false
	case isa.RETI:
		return func(c *CPU) (StopReason, *Trap) {
			v, t := c.pop()
			if t != nil {
				return StepContinue, t
			}
			c.Regs[isa.RSP] += imm
			if v == StopMagic {
				return StopReturn, nil
			}
			c.RIP = v
			return StepContinue, nil
		}, false

	// --- flags housekeeping ---
	case isa.CLD:
		return func(c *CPU) (StopReason, *Trap) {
			c.RFlags &^= isa.FlagDF
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.STD:
		return func(c *CPU) (StopReason, *Trap) {
			c.RFlags |= isa.FlagDF
			c.RIP = next
			return StepContinue, nil
		}, false

	// --- MPX checks (the hot half of kR^X-MPX; spill/fill stay generic) ---
	case isa.BNDCU:
		ea := compileEA(in.M, next)
		bnd := in.Bnd
		return func(c *CPU) (StopReason, *Trap) {
			a := ea.addr(c)
			if a > c.Bnd[bnd].UB {
				return StepContinue, &Trap{Kind: TrapBoundRange, Addr: a, RIP: c.RIP, Mode: c.Mode}
			}
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.BNDCL:
		ea := compileEA(in.M, next)
		bnd := in.Bnd
		return func(c *CPU) (StopReason, *Trap) {
			a := ea.addr(c)
			if a < c.Bnd[bnd].LB {
				return StepContinue, &Trap{Kind: TrapBoundRange, Addr: a, RIP: c.RIP, Mode: c.Mode}
			}
			c.RIP = next
			return StepContinue, nil
		}, false
	case isa.BNDMK:
		ea := compileEA(in.M, next)
		bnd := in.Bnd
		return func(c *CPU) (StopReason, *Trap) {
			c.Bnd[bnd] = Bound{LB: 0, UB: ea.addr(c)}
			c.RIP = next
			return StepContinue, nil
		}, false
	}

	// Generic fallback: string operations, mode switches, MSR access, trap
	// instructions, MPX spill/fill — all either block terminators or rare.
	// A nil thunk tells the compiled dispatch loop (runBlockCompiled) to
	// interpret the entry in place through the exec switch — the identical
	// instruction-step the interpreted loop performs, with no closure
	// allocated and no extra indirect call layered on top.
	return nil, false
}

// nopThunk is the fused form of a dead CMP/TEST: fall-through only — the
// instruction's sole architectural effect was flags that nothing can
// observe.
func nopThunk(next uint64) thunk {
	return func(c *CPU) (StopReason, *Trap) {
		c.RIP = next
		return StepContinue, nil
	}
}
